// The canonical-form cache (src/dvicl/cert_cache.h) in isolation and
// end-to-end. The two properties everything rests on:
//
//  (1) Key invariance: KeyOf is a function of the isomorphism class of the
//      local colored graph — relabeling vertices (and permuting colors with
//      them) NEVER changes the key, so isomorphic subproblems always meet in
//      the same bucket.
//  (2) Verified reuse: equal keys are never trusted. Near-miss pairs — same
//      n, m, degree profile, even the same equitable refinement — collide on
//      the key, and exact colored-graph verification must reject the reuse
//      and count a collision instead of serving a wrong canonical form.
//
// Plus the cache mechanics (LRU + byte budget eviction, first-writer-wins
// publication) and a threads-hammering test that scripts/run_sanitizers.sh
// runs under TSan.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "datasets/generators.h"
#include "dvicl/cert_cache.h"
#include "dvicl/dvicl.h"
#include "graph/graph.h"
#include "perm/permutation.h"
#include "refine/coloring.h"
#include "test_util.h"

namespace dvicl {
namespace {

using testing_util::RandomGraph;
using testing_util::RandomPermutation;

Graph Permuted(const Graph& g, const Permutation& gamma) {
  std::vector<VertexId> image(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) image[v] = gamma(v);
  return g.RelabeledBy(image);
}

// A self-consistent entry for a local colored graph: identity labeling, no
// generators. Unit tests only need the verification payload to be exact.
CachedLeaf LeafFor(const Graph& g, std::vector<uint32_t> colors) {
  CachedLeaf leaf;
  leaf.num_vertices = g.NumVertices();
  leaf.edges = g.Edges();
  leaf.colors = std::move(colors);
  leaf.canonical_images.resize(g.NumVertices());
  std::iota(leaf.canonical_images.begin(), leaf.canonical_images.end(), 0);
  return leaf;
}

// ---- Property: key invariance under relabeling ----------------------------

TEST(CertCacheKeyTest, IsomorphicRelabelingsAlwaysCollideOnTheKey) {
  // 40 random colored graphs x 3 random relabelings each: the permuted copy
  // (colors carried along) must hash to the SAME key every single time.
  for (uint64_t seed = 0; seed < 40; ++seed) {
    const VertexId n = 6 + static_cast<VertexId>(seed % 25);
    const Graph g = RandomGraph(n, 0.1 + 0.02 * (seed % 10), seed);
    Rng rng(seed + 10000);
    std::vector<uint32_t> colors(n);
    for (uint32_t& c : colors) {
      c = static_cast<uint32_t>(rng.NextBounded(1 + seed % 4));
    }
    const uint64_t key = CertCache::KeyOf(g, colors);
    for (uint64_t round = 0; round < 3; ++round) {
      const Permutation gamma =
          RandomPermutation(n, seed * 7 + round + 20000);
      const Graph h = Permuted(g, gamma);
      std::vector<uint32_t> permuted_colors(n);
      for (VertexId v = 0; v < n; ++v) permuted_colors[gamma(v)] = colors[v];
      EXPECT_EQ(CertCache::KeyOf(h, permuted_colors), key)
          << "seed " << seed << " round " << round;
    }
  }
}

TEST(CertCacheKeyTest, KeyDependsOnColors) {
  // Same graph, different coloring = different subproblem; the (color,
  // degree) profile in the key must separate them.
  const Graph g = CycleGraph(8);
  std::vector<uint32_t> unit(8, 0);
  std::vector<uint32_t> split(8, 0);
  split[0] = 1;
  EXPECT_NE(CertCache::KeyOf(g, unit), CertCache::KeyOf(g, split));
}

// ---- Property: near-misses collide on the key but verification rejects ----

TEST(CertCacheNearMissTest, CycleVersusTwoTrianglesIsARejectedCollision) {
  // C6 and C3 ⊔ C3: both 2-regular on 6 vertices with 6 edges, and the unit
  // coloring is already equitable with a single cell of quotient degree 2 —
  // every component of the key agrees, so this is a GUARANTEED key
  // collision between non-isomorphic graphs. Exact verification must
  // refuse the reuse.
  const Graph c6 = CycleGraph(6);
  const Graph two_triangles = Graph::FromEdges(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  const std::vector<uint32_t> colors(6, 0);

  const uint64_t key_c6 = CertCache::KeyOf(c6, colors);
  ASSERT_EQ(key_c6, CertCache::KeyOf(two_triangles, colors))
      << "expected a structural key collision for this pair";

  CertCache cache;
  cache.Insert(key_c6, LeafFor(c6, colors));
  EXPECT_EQ(cache.Lookup(key_c6, two_triangles, colors), nullptr);
  const CertCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_GE(stats.collisions, 1u);
  EXPECT_EQ(stats.hits, 0u);

  // The graph the entry was built from still hits.
  EXPECT_NE(cache.Lookup(key_c6, c6, colors), nullptr);
  EXPECT_EQ(cache.Stats().hits, 1u);
}

TEST(CertCacheNearMissTest, CfiTwistedPairIsARejectedCollision) {
  // The CFI twisted/untwisted pair is 1-WL-equivalent: equitable refinement
  // — and with it the refine-trace component of the key — cannot tell them
  // apart, so they collide on the key despite being non-isomorphic. This is
  // exactly the adversarial case the exact-verification design exists for.
  const Graph untwisted = CfiGraph(6, false);
  const Graph twisted = CfiGraph(6, true);
  ASSERT_EQ(untwisted.NumVertices(), twisted.NumVertices());
  const std::vector<uint32_t> colors(untwisted.NumVertices(), 0);

  const uint64_t key = CertCache::KeyOf(untwisted, colors);
  ASSERT_EQ(key, CertCache::KeyOf(twisted, colors))
      << "CFI pair should be indistinguishable to the invariant key";

  CertCache cache;
  cache.Insert(key, LeafFor(untwisted, colors));
  EXPECT_EQ(cache.Lookup(key, twisted, colors), nullptr);
  EXPECT_GE(cache.Stats().collisions, 1u);
  EXPECT_NE(cache.Lookup(key, untwisted, colors), nullptr);
}

// ---- Cache mechanics ------------------------------------------------------

TEST(CertCacheTest, FirstWriterWinsAndDuplicateInsertIsDropped) {
  const Graph g = CycleGraph(10);
  const std::vector<uint32_t> colors(10, 0);
  const uint64_t key = CertCache::KeyOf(g, colors);

  CertCache cache;
  cache.Insert(key, LeafFor(g, colors));
  const std::shared_ptr<const CachedLeaf> first =
      cache.Lookup(key, g, colors);
  ASSERT_NE(first, nullptr);

  cache.Insert(key, LeafFor(g, colors));  // racer loses, no-op
  EXPECT_EQ(cache.Lookup(key, g, colors), first);  // same object, not a copy
  const CertCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(CertCacheTest, EntryCountBudgetEvictsLeastRecentlyUsed) {
  CertCacheConfig config;
  config.max_entries = 4;
  config.max_bytes = 0;  // unlimited, isolate the entry budget
  config.shards = 1;     // single shard = exact global LRU, deterministic
  CertCache cache(config);

  // Paths of distinct lengths: all keys distinct, so each insert is a new
  // entry and the budget must start evicting from the cold end.
  for (VertexId n = 2; n <= 12; ++n) {
    const Graph g = PathGraph(n);
    const std::vector<uint32_t> colors(n, 0);
    cache.Insert(CertCache::KeyOf(g, colors), LeafFor(g, colors));
  }
  const CertCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_EQ(stats.evictions, 11u - 4u);

  // The most recent entries survived, the oldest were dropped.
  const Graph newest = PathGraph(12);
  const std::vector<uint32_t> newest_colors(12, 0);
  EXPECT_NE(cache.Lookup(CertCache::KeyOf(newest, newest_colors), newest,
                         newest_colors),
            nullptr);
  const Graph oldest = PathGraph(2);
  const std::vector<uint32_t> oldest_colors(2, 0);
  EXPECT_EQ(cache.Lookup(CertCache::KeyOf(oldest, oldest_colors), oldest,
                         oldest_colors),
            nullptr);
}

TEST(CertCacheTest, ByteBudgetEvictsButNeverTheNewestEntry) {
  CertCacheConfig config;
  config.max_entries = 0;
  config.max_bytes = 1;  // absurdly small: every insert overflows
  config.shards = 1;
  CertCache cache(config);

  for (VertexId n = 20; n <= 24; ++n) {
    const Graph g = CycleGraph(n);
    const std::vector<uint32_t> colors(n, 0);
    cache.Insert(CertCache::KeyOf(g, colors), LeafFor(g, colors));
    // The entry just inserted is never evicted by its own overflow — a
    // budget too small for one entry must not make the cache useless.
    EXPECT_NE(cache.Lookup(CertCache::KeyOf(g, colors), g, colors), nullptr)
        << "n=" << n;
  }
  EXPECT_EQ(cache.Stats().entries, 1u);
  EXPECT_EQ(cache.Stats().evictions, 4u);
}

TEST(CertCacheTest, LookupRefreshesLruPosition) {
  CertCacheConfig config;
  config.max_entries = 2;
  config.max_bytes = 0;
  config.shards = 1;
  CertCache cache(config);

  const Graph a = PathGraph(3);
  const Graph b = PathGraph(4);
  const Graph c = PathGraph(5);
  const std::vector<uint32_t> ca(3, 0), cb(4, 0), cc(5, 0);
  cache.Insert(CertCache::KeyOf(a, ca), LeafFor(a, ca));
  cache.Insert(CertCache::KeyOf(b, cb), LeafFor(b, cb));
  // Touch `a` so `b` becomes the LRU victim when `c` arrives.
  ASSERT_NE(cache.Lookup(CertCache::KeyOf(a, ca), a, ca), nullptr);
  cache.Insert(CertCache::KeyOf(c, cc), LeafFor(c, cc));

  EXPECT_NE(cache.Lookup(CertCache::KeyOf(a, ca), a, ca), nullptr);
  EXPECT_EQ(cache.Lookup(CertCache::KeyOf(b, cb), b, cb), nullptr);
}

// ---- Concurrency (run under TSan by scripts/run_sanitizers.sh) ------------

TEST(CertCacheThreadedTest, ConcurrentLookupInsertEvictIsRaceFree) {
  // 8 threads hammer a 2-shard cache with a tiny budget over a shared set
  // of graphs: concurrent verified lookups, racing first-writer inserts and
  // constant evictions. Correctness here is "TSan stays silent and every
  // returned entry verifies"; the shared_ptr handoff must keep entries
  // alive across evictions.
  CertCacheConfig config;
  config.max_entries = 6;
  config.shards = 2;
  CertCache cache(config);

  std::vector<Graph> graphs;
  std::vector<std::vector<uint32_t>> colorings;
  for (VertexId n = 3; n <= 14; ++n) {
    graphs.push_back(CycleGraph(n));
    colorings.emplace_back(n, 0);
  }

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, &graphs, &colorings, t] {
      Rng rng(t + 1);
      for (int round = 0; round < 300; ++round) {
        const size_t i = rng.NextBounded(graphs.size());
        const uint64_t key = CertCache::KeyOf(graphs[i], colorings[i]);
        std::shared_ptr<const CachedLeaf> entry =
            cache.Lookup(key, graphs[i], colorings[i]);
        if (entry == nullptr) {
          cache.Insert(key, LeafFor(graphs[i], colorings[i]));
        } else {
          // The entry must be the exact colored graph we asked about, and
          // must stay readable even if it is evicted right now.
          ASSERT_EQ(entry->num_vertices, graphs[i].NumVertices());
          ASSERT_EQ(entry->edges, graphs[i].Edges());
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const CertCacheStats stats = cache.Stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.entries, 6u);
}

TEST(CertCacheThreadedTest, SharedCacheAcrossConcurrentRunsStaysCorrect) {
  // Several DviCL runs sharing one caller-owned cache, racing on the same
  // gadget-forest subproblems. Every run must produce the sequential
  // cache-off certificate regardless of who published which leaf first.
  const Graph g = GadgetForestGraph(4, 6);
  DviclOptions base;
  const DviclResult reference =
      DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), base);
  ASSERT_TRUE(reference.completed());

  CertCache shared;
  std::vector<std::thread> threads;
  std::vector<Certificate> certs(6);
  for (size_t t = 0; t < certs.size(); ++t) {
    threads.emplace_back([&g, &shared, &certs, t] {
      DviclOptions options;
      options.shared_cert_cache = &shared;
      options.num_threads = 1 + t % 3;
      options.parallel_grain_vertices = 2;
      DviclResult r =
          DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), options);
      ASSERT_TRUE(r.completed());
      certs[t] = std::move(r.certificate);
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (size_t t = 0; t < certs.size(); ++t) {
    EXPECT_EQ(certs[t], reference.certificate) << "run " << t;
  }
  // 4 identical components per run, 6 runs, one shared cache: at most one
  // miss per distinct subproblem shape can have escaped reuse per thread
  // race, so hits dominate.
  EXPECT_GT(shared.Stats().hits, 0u);
}

// ---- End-to-end telemetry -------------------------------------------------

TEST(CertCacheEndToEndTest, GadgetForestHitsAndMatchesCacheOff) {
  const Graph g = GadgetForestGraph(6, 6);
  const Coloring unit = Coloring::Unit(g.NumVertices());

  DviclOptions off;
  const DviclResult r_off = DviclCanonicalLabeling(g, unit, off);
  ASSERT_TRUE(r_off.completed());
  if (std::getenv("DVICL_CERT_CACHE") == nullptr) {
    // Telemetry stays silent with the cache off — unless the CI cache-on
    // matrix leg force-enabled it underneath us, in which case only the
    // canonical output (checked below) is comparable.
    EXPECT_EQ(r_off.stats.cert_cache.hits, 0u);
    EXPECT_EQ(r_off.stats.cert_cache.misses, 0u);
  }

  DviclOptions on;
  on.cert_cache = true;
  const DviclResult r_on = DviclCanonicalLabeling(g, unit, on);
  ASSERT_TRUE(r_on.completed());
  EXPECT_EQ(r_on.certificate, r_off.certificate);
  EXPECT_TRUE(r_on.canonical_labeling == r_off.canonical_labeling);
  // 6 identical components: the first leaf of the shape misses, the other
  // five reuse it.
  EXPECT_GT(r_on.stats.cert_cache.hits, 0u);
  EXPECT_GT(r_on.stats.cert_cache.misses, 0u);
  EXPECT_GT(r_on.stats.cert_cache.insertions, 0u);
  EXPECT_GT(r_on.stats.cert_cache.entries, 0u);
  EXPECT_GT(r_on.stats.cert_cache.bytes, 0u);
}

}  // namespace
}  // namespace dvicl
