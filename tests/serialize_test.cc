// Round-trip and corruption tests for the AutoTree index persistence.

#include <gtest/gtest.h>

#include <sstream>

#include "datasets/generators.h"
#include "dvicl/dvicl.h"
#include "dvicl/serialize.h"
#include "ssm/ssm_at.h"
#include "test_util.h"

namespace dvicl {
namespace {

using testing_util::PaperFigure1Graph;
using testing_util::PaperFigure3Graph;
using testing_util::RandomGraph;

std::string SaveToString(const DviclResult& result) {
  std::ostringstream out(std::ios::binary);
  EXPECT_TRUE(SaveDviclResult(result, out).ok());
  return out.str();
}

void ExpectEqualResults(const DviclResult& a, const DviclResult& b) {
  EXPECT_EQ(a.colors, b.colors);
  EXPECT_EQ(a.canonical_labeling, b.canonical_labeling);
  EXPECT_EQ(a.certificate, b.certificate);
  ASSERT_EQ(a.generators.size(), b.generators.size());
  for (size_t i = 0; i < a.generators.size(); ++i) {
    EXPECT_EQ(a.generators[i].moves, b.generators[i].moves);
  }
  ASSERT_EQ(a.tree.NumNodes(), b.tree.NumNodes());
  for (uint32_t id = 0; id < a.tree.NumNodes(); ++id) {
    const AutoTreeNode& na = a.tree.Node(id);
    const AutoTreeNode& nb = b.tree.Node(id);
    EXPECT_EQ(na.vertices, nb.vertices);
    EXPECT_EQ(na.edges, nb.edges);
    EXPECT_EQ(na.labels, nb.labels);
    EXPECT_EQ(na.parent, nb.parent);
    EXPECT_EQ(na.depth, nb.depth);
    EXPECT_EQ(na.children, nb.children);
    EXPECT_EQ(na.child_sym_class, nb.child_sym_class);
    EXPECT_EQ(na.is_leaf, nb.is_leaf);
    EXPECT_EQ(na.divided_by_s, nb.divided_by_s);
    EXPECT_EQ(na.form_hash, nb.form_hash);
  }
}

TEST(SerializeTest, RoundTripPreservesEverything) {
  const Graph graphs[] = {PaperFigure1Graph(), PaperFigure3Graph(),
                          RandomGraph(40, 0.12, 9),
                          WithTwins(PreferentialAttachmentGraph(60, 3, 2),
                                    0.2, 3)};
  for (const Graph& g : graphs) {
    DviclResult original =
        DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
    ASSERT_TRUE(original.completed());
    const std::string blob = SaveToString(original);
    std::istringstream in(blob, std::ios::binary);
    Result<DviclResult> loaded = LoadDviclResult(in);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ExpectEqualResults(original, loaded.value());
  }
}

TEST(SerializeTest, LoadedIndexAnswersSsmQueries) {
  Graph g = PaperFigure3Graph();
  DviclResult original = DviclCanonicalLabeling(g, Coloring::Unit(14), {});
  const std::string blob = SaveToString(original);
  std::istringstream in(blob, std::ios::binary);
  Result<DviclResult> loaded = LoadDviclResult(in);
  ASSERT_TRUE(loaded.ok());

  SsmIndex index(g, loaded.value());
  EXPECT_EQ(index.SymmetricImages({3, 2, 6}).size(), 12u);
  EXPECT_EQ(index.CountSymmetricImages({3, 2, 6}), BigUint(12));
}

TEST(SerializeTest, RefusesIncompleteResult) {
  DviclResult incomplete;
  incomplete.outcome = RunOutcome::kCancelled;
  std::ostringstream out(std::ios::binary);
  EXPECT_FALSE(SaveDviclResult(incomplete, out).ok());
}

TEST(SerializeTest, RejectsBadMagic) {
  std::istringstream in(std::string("NOPE") + std::string(200, '\0'),
                        std::ios::binary);
  Result<DviclResult> loaded = LoadDviclResult(in);
  EXPECT_FALSE(loaded.ok());
}

TEST(SerializeTest, RejectsTruncation) {
  Graph g = PaperFigure1Graph();
  DviclResult original = DviclCanonicalLabeling(g, Coloring::Unit(8), {});
  const std::string blob = SaveToString(original);
  // Cut at various points: header, mid-payload, missing checksum.
  for (size_t cut : {2ul, 10ul, blob.size() / 2, blob.size() - 3}) {
    std::istringstream in(blob.substr(0, cut), std::ios::binary);
    EXPECT_FALSE(LoadDviclResult(in).ok()) << "cut=" << cut;
  }
}

TEST(SerializeTest, RejectsBitFlips) {
  Graph g = PaperFigure1Graph();
  DviclResult original = DviclCanonicalLabeling(g, Coloring::Unit(8), {});
  const std::string blob = SaveToString(original);
  // Flip one byte in the payload region: the checksum must catch it.
  for (size_t offset : {20ul, blob.size() / 2, blob.size() - 12}) {
    std::string corrupt = blob;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x40);
    std::istringstream in(corrupt, std::ios::binary);
    EXPECT_FALSE(LoadDviclResult(in).ok()) << "offset=" << offset;
  }
}

TEST(SerializeTest, FileRoundTrip) {
  Graph g = RandomGraph(25, 0.2, 5);
  DviclResult original = DviclCanonicalLabeling(g, Coloring::Unit(25), {});
  const std::string path = ::testing::TempDir() + "/dvicl_index.bin";
  ASSERT_TRUE(SaveDviclResultToFile(original, path).ok());
  Result<DviclResult> loaded = LoadDviclResultFromFile(path);
  ASSERT_TRUE(loaded.ok());
  ExpectEqualResults(original, loaded.value());
  EXPECT_FALSE(LoadDviclResultFromFile("/nonexistent/index.bin").ok());
}

TEST(SerializeTest, EmptyGraphRoundTrip) {
  Graph empty = Graph::FromEdges(0, {});
  DviclResult original = DviclCanonicalLabeling(empty, Coloring::Unit(0), {});
  const std::string blob = SaveToString(original);
  std::istringstream in(blob, std::ios::binary);
  Result<DviclResult> loaded = LoadDviclResult(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().tree.NumNodes(), 1u);
}

}  // namespace
}  // namespace dvicl
