#include <gtest/gtest.h>

#include <sstream>

#include "graph/certificate.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "test_util.h"

namespace dvicl {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g = Graph::FromEdges(0, {});
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.MaxDegree(), 0u);
  EXPECT_EQ(g.AverageDegree(), 0.0);
}

TEST(GraphTest, NormalizesSelfLoopsAndDuplicates) {
  Graph g = Graph::FromEdges(4, {{1, 0}, {0, 1}, {2, 2}, {3, 2}, {2, 3}});
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.HasEdge(2, 2));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(GraphTest, NeighborsSortedAndDegrees) {
  Graph g = Graph::FromEdges(5, {{0, 3}, {0, 1}, {0, 2}, {1, 2}});
  auto n0 = g.Neighbors(0);
  ASSERT_EQ(n0.size(), 3u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
  EXPECT_EQ(n0[2], 3u);
  EXPECT_EQ(g.Degree(0), 3u);
  EXPECT_EQ(g.Degree(4), 0u);
  EXPECT_EQ(g.MaxDegree(), 3u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 2.0 * 4 / 5);
}

TEST(GraphTest, RelabeledBy) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}});
  const std::vector<VertexId> image = {2, 0, 1};  // 0->2, 1->0, 2->1
  Graph h = g.RelabeledBy(image);
  EXPECT_TRUE(h.HasEdge(2, 0));
  EXPECT_TRUE(h.HasEdge(0, 1));
  EXPECT_FALSE(h.HasEdge(1, 2));
}

TEST(GraphTest, EqualityIsLabeled) {
  Graph a = Graph::FromEdges(3, {{0, 1}});
  Graph b = Graph::FromEdges(3, {{0, 1}});
  Graph c = Graph::FromEdges(3, {{1, 2}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(GraphBuilderTest, AutoSizesFromEdges) {
  GraphBuilder builder;
  builder.AddEdge(2, 9);
  builder.AddEdge(0, 2);
  Graph g = std::move(builder).Build();
  EXPECT_EQ(g.NumVertices(), 10u);
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(GraphBuilderTest, EnsureVertexCreatesIsolated) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.EnsureVertex(5);
  Graph g = std::move(builder).Build();
  EXPECT_EQ(g.NumVertices(), 6u);
  EXPECT_EQ(g.Degree(5), 0u);
}

TEST(GraphIoTest, EdgeListRoundTrip) {
  Graph g = testing_util::RandomGraph(20, 0.3, 7);
  std::ostringstream out;
  ASSERT_TRUE(WriteEdgeList(g, out).ok());
  std::istringstream in(out.str());
  Result<Graph> back = ReadEdgeList(in);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), g);
}

TEST(GraphIoTest, EdgeListSkipsCommentsAndBlankLines) {
  std::istringstream in("# comment\n\n% other comment\n0 1\n1 2\n");
  Result<Graph> g = ReadEdgeList(in);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().NumEdges(), 2u);
}

TEST(GraphIoTest, EdgeListRejectsMalformedLine) {
  std::istringstream in("0 1\nbogus\n");
  Result<Graph> g = ReadEdgeList(in);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), Status::Code::kInvalidArgument);
}

TEST(GraphIoTest, EdgeListRejectsNegativeIds) {
  std::istringstream in("0 -3\n");
  Result<Graph> g = ReadEdgeList(in);
  EXPECT_FALSE(g.ok());
}

TEST(GraphIoTest, DimacsRoundTrip) {
  Graph g = testing_util::RandomGraph(15, 0.25, 13);
  std::ostringstream out;
  ASSERT_TRUE(WriteDimacs(g, out).ok());
  std::istringstream in(out.str());
  Result<Graph> back = ReadDimacs(in);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), g);
}

TEST(GraphIoTest, DimacsParsesColors) {
  std::istringstream in("c colored\np edge 3 2\ne 1 2\ne 2 3\nn 2 5\n");
  std::vector<uint32_t> colors;
  Result<Graph> g = ReadDimacs(in, &colors);
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(colors.size(), 3u);
  EXPECT_EQ(colors[0], 0u);
  EXPECT_EQ(colors[1], 5u);
  EXPECT_EQ(colors[2], 0u);
}

TEST(GraphIoTest, DimacsRejectsMissingHeader) {
  std::istringstream in("e 1 2\n");
  EXPECT_FALSE(ReadDimacs(in).ok());
}

TEST(GraphIoTest, DimacsRejectsOutOfRangeEndpoint) {
  std::istringstream in("p edge 2 1\ne 1 5\n");
  EXPECT_FALSE(ReadDimacs(in).ok());
}

TEST(GraphIoTest, FileNotFound) {
  Result<Graph> g = ReadEdgeListFile("/nonexistent/path/graph.txt");
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), Status::Code::kIOError);
}

TEST(CertificateTest, EncodesColorsAndEdges) {
  Graph g = Graph::FromEdges(3, {{0, 1}});
  const std::vector<uint32_t> colors = {0, 0, 2};
  const std::vector<VertexId> labels = {1, 0, 2};
  Certificate cert = MakeCertificate(g, colors, labels);
  // [n, m, colors by label, packed edges]
  ASSERT_EQ(cert.size(), 2u + 3u + 1u);
  EXPECT_EQ(cert[0], 3u);
  EXPECT_EQ(cert[1], 1u);
  EXPECT_EQ(cert[2], 0u);  // label 0 = vertex 1, color 0
  EXPECT_EQ(cert[3], 0u);  // label 1 = vertex 0, color 0
  EXPECT_EQ(cert[4], 2u);  // label 2 = vertex 2, color 2
  EXPECT_EQ(cert[5], (0ull << 32) | 1ull);
}

TEST(CertificateTest, InvariantUnderLabelSwapsOfTwins) {
  // 0 and 1 are twins (both adjacent only to 2): swapping their labels
  // yields the same certificate.
  Graph g = Graph::FromEdges(3, {{0, 2}, {1, 2}});
  const std::vector<uint32_t> colors = {0, 0, 2};
  Certificate a = MakeCertificate(g, colors, std::vector<VertexId>{0, 1, 2});
  Certificate b = MakeCertificate(g, colors, std::vector<VertexId>{1, 0, 2});
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace dvicl
