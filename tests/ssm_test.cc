#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "dvicl/dvicl.h"
#include "ssm/ssm_at.h"
#include "ssm/ssm_count.h"
#include "ssm/subgraph_match.h"
#include "test_util.h"

namespace dvicl {
namespace {

using testing_util::BruteForceAutomorphisms;
using testing_util::PaperFigure1Graph;
using testing_util::PaperFigure3Graph;
using testing_util::RandomGraph;

// Brute-force symmetric images: the orbit of `query` under all
// automorphisms of the graph (n <= 8).
std::set<std::vector<VertexId>> BruteForceImages(
    const Graph& graph, const std::vector<VertexId>& query) {
  std::set<std::vector<VertexId>> images;
  for (const Permutation& gamma : BruteForceAutomorphisms(graph)) {
    std::vector<VertexId> image;
    image.reserve(query.size());
    for (VertexId v : query) image.push_back(gamma(v));
    std::sort(image.begin(), image.end());
    images.insert(std::move(image));
  }
  return images;
}

TEST(SubgraphMatchTest, FindsAllTrianglesOfK4) {
  Graph k4 = Graph::FromEdges(
      4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  auto matches = FindInducedSubgraphs(k4, {0, 1, 2});
  EXPECT_EQ(matches.size(), 4u);  // all 4 triangles of K4
}

TEST(SubgraphMatchTest, InducedSemantics) {
  // Path 0-1-2 plus edge 0-2 makes a triangle; a path query must not match
  // a triangle (induced!).
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}});
  // Query: induced path 2-3-4.
  auto matches = FindInducedSubgraphs(g, {2, 3, 4});
  for (const auto& m : matches) {
    // The triangle {0,1,2} must not appear.
    EXPECT_NE(m, (std::vector<VertexId>{0, 1, 2}));
  }
  // 2-3-4 itself must be found.
  EXPECT_TRUE(std::find(matches.begin(), matches.end(),
                        std::vector<VertexId>({2, 3, 4})) != matches.end());
}

TEST(SubgraphMatchTest, RespectsResultCap) {
  Graph k5 = Graph::FromEdges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4},
                                  {1, 2}, {1, 3}, {1, 4},
                                  {2, 3}, {2, 4}, {3, 4}});
  auto matches = FindInducedSubgraphs(k5, {0, 1}, 3);
  EXPECT_EQ(matches.size(), 3u);
}

TEST(SsmAtTest, SingleVertexOrbitPaperGraph) {
  Graph g = PaperFigure1Graph();
  DviclResult r = DviclCanonicalLabeling(g, Coloring::Unit(8), {});
  ASSERT_TRUE(r.completed());
  SsmIndex index(g, r);
  // Vertex 4 (triangle corner) has 3 symmetric images: {4},{5},{6}.
  auto images = index.SymmetricImages({4});
  EXPECT_EQ(images.size(), 3u);
  EXPECT_EQ(index.CountSymmetricImages({4}), BigUint(3));
  // Vertex 7 (hub) is fixed.
  EXPECT_EQ(index.SymmetricImages({7}).size(), 1u);
  // Cycle vertex 0 has 4 images.
  EXPECT_EQ(index.SymmetricImages({0}).size(), 4u);
}

TEST(SsmAtTest, MatchesBruteForceOnPaperGraph) {
  Graph g = PaperFigure1Graph();
  DviclResult r = DviclCanonicalLabeling(g, Coloring::Unit(8), {});
  ASSERT_TRUE(r.completed());
  SsmIndex index(g, r);

  const std::vector<std::vector<VertexId>> queries = {
      {4},       {0},       {7},       {0, 1},   {4, 5},
      {0, 2},    {0, 4},    {0, 7},    {4, 5, 6}, {0, 1, 2},
      {0, 4, 7}, {1, 3, 5}, {0, 1, 4, 5}};
  for (const auto& query : queries) {
    const auto expected = BruteForceImages(g, query);
    const auto actual = index.SymmetricImages(query);
    std::set<std::vector<VertexId>> actual_set(actual.begin(), actual.end());
    EXPECT_EQ(actual_set, expected) << "query size " << query.size();
    EXPECT_EQ(actual.size(), actual_set.size()) << "duplicates returned";
    // The count estimator is exact on these inputs.
    EXPECT_EQ(index.CountSymmetricImages(query), BigUint(expected.size()));
  }
}

TEST(SsmAtTest, Example611PathQuery) {
  // Paper Example 6.11: query 3-2-6 on the Fig. 3 graph has 6 symmetric
  // images inside wing g1 and 6 more in the other wing.
  Graph g = PaperFigure3Graph();
  DviclResult r = DviclCanonicalLabeling(g, Coloring::Unit(14), {});
  ASSERT_TRUE(r.completed());
  SsmIndex index(g, r);
  auto images = index.SymmetricImages({3, 2, 6});
  EXPECT_EQ(images.size(), 12u);
  EXPECT_EQ(index.CountSymmetricImages({3, 2, 6}), BigUint(12));
  // All returned images are genuinely symmetric: same sorted degree
  // sequence and containment of one pendant + two triangle corners.
  for (const auto& image : images) {
    ASSERT_EQ(image.size(), 3u);
    std::vector<uint32_t> degrees;
    for (VertexId v : image) degrees.push_back(g.Degree(v));
    std::sort(degrees.begin(), degrees.end());
    EXPECT_EQ(degrees, (std::vector<uint32_t>{1, 4, 4}));
  }
}

TEST(SsmAtTest, RandomGraphsMatchBruteForce) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Graph g = RandomGraph(7, 0.3, seed);
    DviclResult r = DviclCanonicalLabeling(g, Coloring::Unit(7), {});
    ASSERT_TRUE(r.completed());
    SsmIndex index(g, r);
    const std::vector<std::vector<VertexId>> queries = {
        {0}, {3}, {0, 1}, {2, 5}, {0, 1, 2}, {1, 3, 6}};
    for (const auto& query : queries) {
      const auto expected = BruteForceImages(g, query);
      const auto actual = index.SymmetricImages(query);
      std::set<std::vector<VertexId>> actual_set(actual.begin(),
                                                 actual.end());
      EXPECT_EQ(actual_set, expected) << "seed=" << seed;
      EXPECT_EQ(index.CountSymmetricImages(query), BigUint(expected.size()))
          << "seed=" << seed;
    }
  }
}

TEST(SsmAtTest, NonSingletonLeafQueriesMatchBruteForce) {
  // A wheel: anchor 0 joined to the 5-ring {1..5}, plus a pendant 6 on the
  // anchor. The ring survives as a non-singleton IR leaf, so these queries
  // exercise the LeafOrbit path (orbit BFS over the leaf's generators).
  Graph g = Graph::FromEdges(7, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5},
                                 {1, 2}, {2, 3}, {3, 4}, {4, 5}, {1, 5},
                                 {0, 6}});
  DviclResult r = DviclCanonicalLabeling(g, Coloring::Unit(7), {});
  ASSERT_TRUE(r.completed());
  EXPECT_EQ(r.tree.NumNonSingletonLeaves(), 1u);

  SsmIndex index(g, r);
  const std::vector<std::vector<VertexId>> queries = {
      {1}, {1, 2}, {1, 3}, {1, 2, 3}, {1, 3, 5}, {0, 1}, {1, 6}};
  for (const auto& query : queries) {
    const auto expected = BruteForceImages(g, query);
    const auto actual = index.SymmetricImages(query);
    std::set<std::vector<VertexId>> actual_set(actual.begin(), actual.end());
    EXPECT_EQ(actual_set, expected) << "query size " << query.size();
    EXPECT_EQ(index.CountSymmetricImages(query), BigUint(expected.size()));
  }
}

TEST(SsmAtTest, EnumerationCapSetsTruncatedFlag) {
  Graph g = PaperFigure3Graph();
  DviclResult r = DviclCanonicalLabeling(g, Coloring::Unit(14), {});
  ASSERT_TRUE(r.completed());
  SsmIndex index(g, r);
  bool truncated = false;
  auto images = index.SymmetricImages({3, 2, 6}, 4, &truncated);
  EXPECT_LE(images.size(), 4u);
  EXPECT_TRUE(truncated);
}

TEST(SsmAtTest, EmptyQuery) {
  Graph g = PaperFigure1Graph();
  DviclResult r = DviclCanonicalLabeling(g, Coloring::Unit(8), {});
  SsmIndex index(g, r);
  EXPECT_EQ(index.SymmetricImages({}).size(), 1u);
  EXPECT_EQ(index.CountSymmetricImages({}), BigUint(1));
}

TEST(SsmCountTest, ClusterTrianglesOfTwoDisjointTriangles) {
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {0, 2},
                                 {3, 4}, {4, 5}, {3, 5}});
  DviclResult r = DviclCanonicalLabeling(g, Coloring::Unit(6), {});
  ASSERT_TRUE(r.completed());
  const std::vector<std::vector<VertexId>> triangles = {{0, 1, 2}, {3, 4, 5}};
  auto clustering = ClusterSubgraphsBySymmetry(6, r.generators, triangles);
  EXPECT_EQ(clustering.num_clusters, 1u);
  EXPECT_EQ(clustering.max_cluster_size, 2u);
}

TEST(SsmCountTest, ClusterDistinguishesAsymmetricSubgraphs) {
  // Fig. 1(a): the triangle {4,5,6} vs triangles through the hub, e.g.
  // {4,5,7}: different orbits.
  Graph g = PaperFigure1Graph();
  DviclResult r = DviclCanonicalLabeling(g, Coloring::Unit(8), {});
  ASSERT_TRUE(r.completed());
  const std::vector<std::vector<VertexId>> triangles = {
      {4, 5, 6}, {4, 5, 7}, {4, 6, 7}, {5, 6, 7}};
  auto clustering = ClusterSubgraphsBySymmetry(8, r.generators, triangles);
  EXPECT_EQ(clustering.num_clusters, 2u);
  EXPECT_EQ(clustering.max_cluster_size, 3u);
  EXPECT_NE(clustering.cluster_id[0], clustering.cluster_id[1]);
  EXPECT_EQ(clustering.cluster_id[1], clustering.cluster_id[2]);
  EXPECT_EQ(clustering.cluster_id[1], clustering.cluster_id[3]);
}

TEST(SsmCountTest, EmptyFamily) {
  auto clustering = ClusterSubgraphsBySymmetry(5, {}, {});
  EXPECT_EQ(clustering.num_clusters, 0u);
  EXPECT_EQ(clustering.max_cluster_size, 0u);
}

}  // namespace
}  // namespace dvicl
