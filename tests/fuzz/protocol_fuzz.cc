// libFuzzer harness for the serving codec (DESIGN.md §11): every byte
// string must either decode into a well-formed Request/Reply or fail with
// a Status — never crash, never allocate from a declared-count lie (the
// vertex/edge/query counts are attacker-controlled), and whatever is
// accepted must survive an encode → decode round trip unchanged. The first
// input byte selects the decoder so one corpus covers the request codec,
// the reply codec, and the stream framing layer.
//
// Build: cmake -DDVICL_FUZZ=ON (clang only); run with the seed corpus:
//   ./protocol_fuzz tests/fuzz/corpus/protocol -max_total_time=60

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

#include "common/wire.h"
#include "server/protocol.h"

namespace {

using dvicl::server::DecodeReply;
using dvicl::server::DecodeRequest;
using dvicl::server::EncodeReply;
using dvicl::server::EncodeRequest;
using dvicl::server::Reply;
using dvicl::server::Request;

void CheckRequest(std::string_view payload) {
  Request request;
  if (!DecodeRequest(payload, &request).ok()) return;
  // Decode invariants: a graph that got through is structurally sound and
  // under the wire vertex cap.
  const dvicl::Graph& g = request.graph;
  if (g.NumVertices() > dvicl::server::kMaxWireVertices) __builtin_trap();
  for (const dvicl::Edge& e : g.Edges()) {
    if (e.first >= g.NumVertices() || e.second >= g.NumVertices()) {
      __builtin_trap();
    }
  }
  if (!request.colors.empty() && request.colors.size() != g.NumVertices()) {
    __builtin_trap();
  }
  // Accepted bytes must round-trip: re-encoding and re-decoding yields the
  // same encoding (the codec has one canonical form per request).
  std::string encoded;
  EncodeRequest(request, &encoded);
  Request again;
  if (!DecodeRequest(encoded, &again).ok()) __builtin_trap();
  std::string reencoded;
  EncodeRequest(again, &reencoded);
  if (encoded != reencoded) __builtin_trap();
}

void CheckReply(std::string_view payload) {
  Reply reply;
  if (!DecodeReply(payload, &reply).ok()) return;
  std::string encoded;
  EncodeReply(reply, &encoded);
  Reply again;
  if (!DecodeReply(encoded, &again).ok()) __builtin_trap();
  std::string reencoded;
  EncodeReply(again, &reencoded);
  if (encoded != reencoded) __builtin_trap();
}

void CheckFraming(const std::string& bytes) {
  // The framing layer must classify every stream without crashing: a clean
  // EOF (kNotFound), a mid-frame truncation (kIOError), an oversized
  // prefix (kInvalidArgument), or a complete frame no larger than the cap.
  std::istringstream in(bytes);
  std::string payload;
  for (;;) {
    const dvicl::Status status = dvicl::wire::ReadFrame(in, &payload);
    if (!status.ok()) break;
    if (payload.size() > dvicl::wire::kMaxPayloadBytes) __builtin_trap();
    // Frames pulled off a stream are exactly what the peer would hand the
    // payload codecs; exercise both on each one.
    CheckRequest(payload);
    CheckReply(payload);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const uint8_t selector = data[0];
  const std::string payload(reinterpret_cast<const char*>(data + 1),
                            size - 1);
  switch (selector % 3) {
    case 0:
      CheckRequest(payload);
      break;
    case 1:
      CheckReply(payload);
      break;
    case 2:
      CheckFraming(payload);
      break;
  }
  return 0;
}
