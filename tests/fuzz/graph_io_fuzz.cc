// libFuzzer harness for the graph readers: every byte string must either
// parse into a well-formed Graph or fail with a Status — never crash,
// never allocate unboundedly from a declared-size lie, never produce a
// graph that violates its own invariants. The first input byte selects the
// format so one corpus covers all three readers.
//
// Build: cmake -DDVICL_FUZZ=ON (clang only); run with the seed corpus:
//   ./graph_io_fuzz tests/fuzz/corpus/graph_io -max_total_time=60

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_io.h"

namespace {

void CheckParsedGraph(const dvicl::Result<dvicl::Graph>& result) {
  if (!result.ok()) return;
  const dvicl::Graph& g = result.value();
  // Invariants every reader must deliver: endpoints in range, normalized
  // edge list (oriented, no self-loops), adjacency consistent with edges.
  uint64_t degree_sum = 0;
  for (dvicl::VertexId v = 0; v < g.NumVertices(); ++v) {
    degree_sum += g.Degree(v);
  }
  if (degree_sum != 2 * g.NumEdges()) __builtin_trap();
  for (const dvicl::Edge& e : g.Edges()) {
    if (e.first >= g.NumVertices() || e.second >= g.NumVertices()) {
      __builtin_trap();
    }
    if (e.first >= e.second) __builtin_trap();
    if (!g.HasEdge(e.first, e.second)) __builtin_trap();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const uint8_t selector = data[0];
  const std::string payload(reinterpret_cast<const char*>(data + 1),
                            size - 1);
  switch (selector % 3) {
    case 0: {
      std::istringstream in(payload);
      CheckParsedGraph(dvicl::ReadEdgeList(in));
      break;
    }
    case 1: {
      std::istringstream in(payload);
      std::vector<uint32_t> colors;
      CheckParsedGraph(dvicl::ReadDimacs(in, &colors));
      break;
    }
    case 2: {
      CheckParsedGraph(dvicl::ParseGraph6(payload));
      break;
    }
  }
  return 0;
}
