// Unit tests for the bump arena and SmallVec that back the refine+IR hot
// path (common/arena.h, DESIGN.md §13): alignment and large-block behavior
// of the chunked bump allocator, O(1) Reset/Rewind with chunk retention,
// SmallVec inline→heap and inline→arena spill round-trips, the copy
// semantics that keep arena pointers from escaping frames, the thread-local
// allocation counters the dvicl.alloc.* metrics are built on, and a
// multi-threaded ThreadScratchArena hammer aimed at TSan.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "common/arena.h"

namespace dvicl {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena(/*min_chunk_bytes=*/256);
  struct Span {
    uintptr_t begin;
    uintptr_t end;
  };
  std::vector<Span> spans;
  // Mixed sizes and alignments, enough to cross several chunk boundaries.
  const size_t sizes[] = {1, 3, 8, 17, 64, 100, 256, 513};
  const size_t aligns[] = {1, 2, 4, 8, 16, 64};
  for (int round = 0; round < 50; ++round) {
    const size_t bytes = sizes[round % (sizeof(sizes) / sizeof(sizes[0]))];
    const size_t align = aligns[round % (sizeof(aligns) / sizeof(aligns[0]))];
    void* p = arena.Allocate(bytes, align);
    ASSERT_NE(p, nullptr);
    // Address arithmetic IS the property under test (alignment and span
    // disjointness); nothing derived from it reaches any output, so the
    // pointer-order rule is waived. NOLINT(dvicl-determinism)
    const uintptr_t addr = reinterpret_cast<uintptr_t>(p);
    EXPECT_EQ(addr % align, 0u) << "round " << round;
    // Writing the full span must not trample any earlier live allocation.
    std::memset(p, 0xAB, bytes);
    spans.push_back({addr, addr + bytes});
  }
  for (size_t i = 0; i < spans.size(); ++i) {
    for (size_t j = i + 1; j < spans.size(); ++j) {
      EXPECT_TRUE(spans[i].end <= spans[j].begin ||
                  spans[j].end <= spans[i].begin)
          << "allocations " << i << " and " << j << " overlap";
    }
  }
}

TEST(ArenaTest, ZeroByteAllocationsAreDistinct) {
  Arena arena;
  void* a = arena.Allocate(0);
  void* b = arena.Allocate(0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(a, b);
}

TEST(ArenaTest, ResetRetainsChunksAndReusesMemory) {
  Arena arena(/*min_chunk_bytes=*/1024);
  void* first = arena.Allocate(64, 16);
  for (int i = 0; i < 100; ++i) arena.Allocate(128, 8);
  const size_t chunks = arena.NumChunks();
  const size_t reserved = arena.ReservedBytes();
  EXPECT_GT(chunks, 1u);

  arena.Reset();
  EXPECT_EQ(arena.NumChunks(), chunks) << "Reset must retain chunks";
  EXPECT_EQ(arena.ReservedBytes(), reserved);
  EXPECT_EQ(arena.UsedBytes(), 0u);

  // Same request stream after Reset replays into the SAME memory — no new
  // chunk is acquired and the first allocation lands on the same address.
  void* again = arena.Allocate(64, 16);
  EXPECT_EQ(again, first);
  for (int i = 0; i < 100; ++i) arena.Allocate(128, 8);
  EXPECT_EQ(arena.NumChunks(), chunks);
  EXPECT_EQ(arena.ReservedBytes(), reserved);
}

TEST(ArenaTest, LargeBlockFallbackGetsOwnChunkAndIsRetained) {
  Arena arena(/*min_chunk_bytes=*/256);
  // Far larger than the chunk size: the arena must mint a chunk big enough
  // for the request rather than fail or loop.
  const size_t big = 1 << 20;  // 1 MiB
  void* p = arena.Allocate(big, 64);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x5A, big);
  EXPECT_GE(arena.ReservedBytes(), big);

  const size_t chunks = arena.NumChunks();
  arena.Reset();
  // The oversized chunk stays reserved; the same big request after Reset
  // does not touch the system allocator again.
  const uint64_t count_before = ThreadAllocCount();
  void* q = arena.Allocate(big, 64);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(arena.NumChunks(), chunks);
  EXPECT_EQ(ThreadAllocCount(), count_before);
}

TEST(ArenaTest, RequestsLargerThanMaxChunkStillSucceed) {
  Arena arena;
  const size_t huge = Arena::kMaxChunkBytes + 4096;
  void* p = arena.Allocate(huge, 8);
  ASSERT_NE(p, nullptr);
  static_cast<unsigned char*>(p)[0] = 1;
  static_cast<unsigned char*>(p)[huge - 1] = 2;
}

TEST(ArenaTest, MarkRewindNestsAndReclaims) {
  Arena arena(/*min_chunk_bytes=*/512);
  arena.Allocate(100);
  const Arena::Mark outer = arena.Position();
  void* a = arena.Allocate(200, 8);

  const Arena::Mark inner = arena.Position();
  void* b = arena.Allocate(300, 8);
  arena.Rewind(inner);
  // The inner region is reclaimed: the next allocation reuses b's address.
  EXPECT_EQ(arena.Allocate(300, 8), b);

  arena.Rewind(outer);
  EXPECT_EQ(arena.Allocate(200, 8), a);
}

TEST(ArenaTest, ArenaFrameIsRaiiAndNullSafe) {
  Arena arena(/*min_chunk_bytes=*/512);
  arena.Allocate(64);
  const size_t used = arena.UsedBytes();
  {
    ArenaFrame frame(&arena);
    arena.Allocate(4096);
    EXPECT_GT(arena.UsedBytes(), used);
  }
  EXPECT_EQ(arena.UsedBytes(), used);

  // Null arena: the frame must be a no-op, not a crash.
  { ArenaFrame frame(nullptr); }
}

TEST(ArenaTest, ReleaseReturnsEverything) {
  Arena arena(/*min_chunk_bytes=*/256);
  for (int i = 0; i < 32; ++i) arena.Allocate(512);
  EXPECT_GT(arena.NumChunks(), 0u);
  arena.Release();
  EXPECT_EQ(arena.NumChunks(), 0u);
  EXPECT_EQ(arena.ReservedBytes(), 0u);
  EXPECT_EQ(arena.UsedBytes(), 0u);
  // Still usable after Release.
  EXPECT_NE(arena.Allocate(64), nullptr);
}

TEST(ArenaTest, ChunkAcquisitionsAreCounted) {
  const uint64_t count_before = ThreadAllocCount();
  const uint64_t bytes_before = ThreadAllocBytes();
  Arena arena(/*min_chunk_bytes=*/1024);
  arena.Allocate(64);
  EXPECT_EQ(ThreadAllocCount(), count_before + 1);
  EXPECT_GE(ThreadAllocBytes(), bytes_before + 1024);
  // Bump allocations within the reserved chunk are free.
  arena.Allocate(64);
  arena.Allocate(64);
  EXPECT_EQ(ThreadAllocCount(), count_before + 1);
}

TEST(SmallVecTest, InlineCapacityAllocatesNothing) {
  const uint64_t count_before = ThreadAllocCount();
  SmallVec<uint32_t, 8> v;
  for (uint32_t i = 0; i < 8; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 8u);
  EXPECT_EQ(v.capacity(), 8u);
  for (uint32_t i = 0; i < 8; ++i) EXPECT_EQ(v[i], i);
  EXPECT_EQ(ThreadAllocCount(), count_before)
      << "filling inline capacity must not allocate";
}

TEST(SmallVecTest, HeapSpillRoundTrips) {
  const uint64_t count_before = ThreadAllocCount();
  SmallVec<uint32_t, 4> v;
  for (uint32_t i = 0; i < 1000; ++i) v.push_back(i * 7);
  EXPECT_EQ(v.size(), 1000u);
  for (uint32_t i = 0; i < 1000; ++i) ASSERT_EQ(v[i], i * 7);
  EXPECT_GT(ThreadAllocCount(), count_before)
      << "heap spill must be visible to the allocation counters";

  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back(42);
  EXPECT_EQ(v.back(), 42u);
}

TEST(SmallVecTest, ArenaSpillRoundTripsWithoutHeap) {
  Arena arena;
  arena.Allocate(1);  // pay for the first chunk up front
  const uint64_t count_before = ThreadAllocCount();
  SmallVec<uint32_t, 4> v(&arena);
  for (uint32_t i = 0; i < 1000; ++i) v.push_back(i + 3);
  EXPECT_EQ(v.size(), 1000u);
  for (uint32_t i = 0; i < 1000; ++i) ASSERT_EQ(v[i], i + 3);
  EXPECT_EQ(ThreadAllocCount(), count_before)
      << "arena-backed growth within a reserved chunk must not hit the heap";
}

TEST(SmallVecTest, PairElementsWork) {
  // std::pair has a non-trivial assignment operator; the SmallVec
  // trivially-copy-constructible criterion must still admit it.
  SmallVec<std::pair<uint64_t, uint32_t>, 2> v;
  for (uint32_t i = 0; i < 100; ++i) v.emplace_back(uint64_t{i} * 11, i);
  EXPECT_EQ(v.size(), 100u);
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(v[i].first, uint64_t{i} * 11);
    EXPECT_EQ(v[i].second, i);
  }
}

TEST(SmallVecTest, ResizeAndAssign) {
  SmallVec<uint64_t, 2> v;
  v.resize(10);
  EXPECT_EQ(v.size(), 10u);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(v[i], 0u) << i;

  v.assign(5, 99u);
  EXPECT_EQ(v.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(v[i], 99u);

  const std::vector<uint64_t> src = {1, 2, 3, 4, 5, 6, 7};
  v.assign(src.begin(), src.end());
  EXPECT_EQ(v.size(), 7u);
  for (size_t i = 0; i < 7; ++i) EXPECT_EQ(v[i], src[i]);
}

TEST(SmallVecTest, CopyConstructorFromArenaBackedIsHeapBacked) {
  // Copying must never smuggle an arena pointer out of a frame: the copy
  // constructor produces a plain heap/inline copy regardless of the
  // source's allocator, and stays valid after the source frame rewinds.
  Arena arena;
  SmallVec<uint32_t, 2> copy;
  {
    ArenaFrame frame(&arena);
    SmallVec<uint32_t, 2> src(&arena);
    for (uint32_t i = 0; i < 256; ++i) src.push_back(i ^ 0xF0F0);
    SmallVec<uint32_t, 2> local_copy(src);
    EXPECT_EQ(local_copy.arena(), nullptr);
    copy = local_copy;
  }
  arena.Allocate(4096);  // scribble over the rewound region
  ASSERT_EQ(copy.size(), 256u);
  for (uint32_t i = 0; i < 256; ++i) ASSERT_EQ(copy[i], i ^ 0xF0F0);
}

TEST(SmallVecTest, ArenaCloneConstructorBindsToArena) {
  Arena arena;
  SmallVec<uint32_t, 2> heap_src;
  for (uint32_t i = 0; i < 64; ++i) heap_src.push_back(i * 3);
  SmallVec<uint32_t, 2> clone(heap_src, &arena);
  EXPECT_EQ(clone.arena(), &arena);
  ASSERT_EQ(clone.size(), 64u);
  for (uint32_t i = 0; i < 64; ++i) EXPECT_EQ(clone[i], i * 3);
}

TEST(SmallVecTest, CopyAssignmentKeepsDestinationAllocator) {
  Arena arena;
  SmallVec<uint32_t, 2> arena_backed(&arena);
  SmallVec<uint32_t, 2> heap_backed;
  for (uint32_t i = 0; i < 32; ++i) heap_backed.push_back(i);

  arena_backed = heap_backed;
  EXPECT_EQ(arena_backed.arena(), &arena) << "assignment must not rebind";
  ASSERT_EQ(arena_backed.size(), 32u);

  heap_backed = arena_backed;
  EXPECT_EQ(heap_backed.arena(), nullptr) << "assignment must not rebind";
  ASSERT_EQ(heap_backed.size(), 32u);
  for (uint32_t i = 0; i < 32; ++i) EXPECT_EQ(heap_backed[i], i);
}

TEST(SmallVecTest, MoveTransfersBufferAndLeavesSourceEmpty) {
  SmallVec<uint32_t, 2> src;
  for (uint32_t i = 0; i < 500; ++i) src.push_back(i);
  const uint32_t* buffer = src.data();
  SmallVec<uint32_t, 2> dst(std::move(src));
  EXPECT_EQ(dst.data(), buffer) << "heap move must steal the buffer";
  EXPECT_EQ(dst.size(), 500u);
  EXPECT_TRUE(src.empty());  // NOLINT(bugprone-use-after-move)
  src.push_back(7);          // moved-from object must remain usable
  EXPECT_EQ(src.back(), 7u);
}

TEST(SmallVecTest, EqualityComparesElements) {
  Arena arena;
  SmallVec<uint32_t, 4> a;
  SmallVec<uint32_t, 4> b(&arena);
  for (uint32_t i = 0; i < 20; ++i) {
    a.push_back(i);
    b.push_back(i);
  }
  EXPECT_TRUE(a == b) << "allocator must not participate in equality";
  b.push_back(99);
  EXPECT_TRUE(a != b);
}

TEST(ArenaThreadingTest, PerThreadScratchArenasAreIndependent) {
  // TSan target: 8 threads hammering their own ThreadScratchArena() with
  // nested frames, arena-backed SmallVec growth, and counter updates. The
  // arenas and counters are thread-local, so there is nothing to race on —
  // which is exactly what this proves under -fsanitize=thread.
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::vector<std::thread> threads;
  std::vector<uint64_t> checksum(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &checksum] {
      Arena& arena = ThreadScratchArena();
      uint64_t sum = 0;
      for (int round = 0; round < kRounds; ++round) {
        ArenaFrame frame(&arena);
        SmallVec<uint64_t, 8> v(&arena);
        const int n = 16 + (round % 200);
        for (int i = 0; i < n; ++i) {
          v.push_back(static_cast<uint64_t>(t) * 1000003 + i);
        }
        {
          ArenaFrame inner(&arena);
          SmallVec<uint64_t, 8> w(v, &arena);
          for (uint64_t x : w) sum += x;
        }
        sum += v.back();
      }
      checksum[t] = sum;
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_NE(checksum[t], 0u) << "thread " << t;
  }
}

}  // namespace
}  // namespace dvicl
