// Tests for the DVICL_DCHECK invariant layer (common/check.h and the
// verifiers threaded through the hot paths). Each corruption test has two
// personalities selected by kDcheckEnabled:
//   - DCHECK builds (-DDVICL_DCHECK=ON): the verifier must abort with a
//     message containing "DVICL_DCHECK" (gtest death test);
//   - release builds: the same call must be a complete no-op.
// CI runs the suite in both configurations.

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "dvicl/auto_tree.h"
#include "dvicl/dvicl.h"
#include "graph/certificate.h"
#include "graph/graph.h"
#include "perm/permutation.h"
#include "perm/schreier_sims.h"
#include "refine/coloring.h"
#include "refine/refiner.h"

namespace dvicl {
namespace {

// Disjoint union of two triangles: the smallest graph whose AutoTree has a
// root plus two symmetric leaf children (DivideI splits the components),
// i.e. enough structure for every VerifyAutoTree invariant to be live.
Graph TwoTriangles() {
  return Graph::FromEdges(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
}

TEST(DcheckMacroTest, PassingChecksAreSilent) {
  DVICL_DCHECK(true) << "never printed";
  DVICL_DCHECK_EQ(2 + 2, 4);
  DVICL_DCHECK_LT(1, 2) << "also never printed";
}

TEST(DcheckMacroTest, DisabledBuildDoesNotEvaluateOperands) {
  int evaluations = 0;
  const auto count_and_pass = [&evaluations] {
    ++evaluations;
    return true;
  };
  DVICL_DCHECK(count_and_pass());
  // Enabled: the condition runs (once). Disabled: `true || cond` must
  // short-circuit, so expensive verification is genuinely free in release.
  EXPECT_EQ(evaluations, kDcheckEnabled ? 1 : 0);
}

TEST(DcheckMacroDeathTest, FailedCheckAbortsWithExpressionText) {
  if constexpr (kDcheckEnabled) {
    EXPECT_DEATH(DVICL_DCHECK(1 == 2) << "extra context",
                 "DVICL_DCHECK.*1 == 2.*extra context");
  } else {
    DVICL_DCHECK(1 == 2) << "no-op in release";
  }
}

TEST(DcheckMacroDeathTest, ComparisonMacroReportsBothOperands) {
  if constexpr (kDcheckEnabled) {
    EXPECT_DEATH(DVICL_DCHECK_EQ(2 + 2, 5), "DVICL_DCHECK.*4 vs 5");
  } else {
    DVICL_DCHECK_EQ(2 + 2, 5);
  }
}

TEST(VerifyPermutationDeathTest, NonBijectiveImageArray) {
  if constexpr (kDcheckEnabled) {
    // The Permutation constructor runs VerifyPermutation itself.
    EXPECT_DEATH(Permutation(std::vector<VertexId>{0, 0, 2}),
                 "DVICL_DCHECK.*not a bijection");
  } else {
    const Permutation broken(std::vector<VertexId>{0, 0, 2});
    EXPECT_EQ(broken.Size(), 3u);
  }
}

TEST(VerifyEquitableDeathTest, NonEquitableColoring) {
  // Path 0-1-2 under the unit coloring: one cell with degrees 1, 2, 1 —
  // members of the cell see different neighbor-color profiles.
  const Graph path = Graph::FromEdges(3, {{0, 1}, {1, 2}});
  const Coloring unit = Coloring::Unit(3);
  if constexpr (kDcheckEnabled) {
    EXPECT_DEATH(VerifyEquitable(path, unit), "DVICL_DCHECK");
  } else {
    VerifyEquitable(path, unit);
  }
}

TEST(VerifyEquitableDeathTest, RefinedColoringPasses) {
  const Graph path = Graph::FromEdges(3, {{0, 1}, {1, 2}});
  Coloring pi = Coloring::Unit(3);
  RefineToEquitable(path, &pi);  // runs VerifyEquitable internally
  VerifyEquitable(path, pi);     // and explicitly: must not abort
}

TEST(SchreierSimsTest, CheckInvariantsOnBuiltChain) {
  // (0 1) and (0 1 2 3) generate S4; AddGenerator already self-checks,
  // this exercises the public entry point on a finished chain.
  SchreierSims chain(4);
  chain.AddGenerator(Permutation(std::vector<VertexId>{1, 0, 2, 3}));
  chain.AddGenerator(Permutation(std::vector<VertexId>{1, 2, 3, 0}));
  chain.CheckInvariants();
  EXPECT_EQ(chain.Order(), BigUint(24));
}

// The DVICL_CHECK layer (no D) is always on — these abort in every build,
// including plain release, so there is no kDcheckEnabled branch. They guard
// the API boundary: caller-supplied edges, relabelings and label arrays.
TEST(AlwaysOnCheckDeathTest, FromEdgesRejectsOutOfRangeEndpoint) {
  EXPECT_DEATH(Graph::FromEdges(3, {{0, 1}, {1, 3}}),
               "DVICL_CHECK failed.*endpoint outside");
}

TEST(AlwaysOnCheckDeathTest, RelabeledByRejectsWrongImageSize) {
  const Graph triangle = Graph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_DEATH(triangle.RelabeledBy(std::vector<VertexId>{0, 1}),
               "DVICL_CHECK failed.*image size");
}

TEST(AlwaysOnCheckDeathTest, MakeCertificateRejectsWrongLabelCount) {
  const Graph triangle = Graph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}});
  const std::vector<VertexId> short_labels = {0, 1};
  EXPECT_DEATH(MakeCertificate(triangle, {}, short_labels),
               "DVICL_CHECK failed");
}

TEST(AlwaysOnCheckDeathTest, MakeCertificateRejectsOutOfRangeLabel) {
  const Graph triangle = Graph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}});
  const std::vector<VertexId> bad_labels = {0, 1, 7};
  EXPECT_DEATH(MakeCertificate(triangle, {}, bad_labels),
               "DVICL_CHECK failed.*out of range");
}

class VerifyAutoTreeDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    result_ = DviclCanonicalLabeling(TwoTriangles(), Coloring::Unit(6));
    ASSERT_TRUE(result_.completed());
    ASSERT_GE(result_.tree.NumNodes(), 3u)
        << "two triangles must divide into root + two leaves";
    // The pristine tree passes in any build (the builder already verified
    // it once under DCHECK).
    VerifyAutoTree(result_.tree, result_.colors);
  }

  DviclResult result_;
};

TEST_F(VerifyAutoTreeDeathTest, ChildrenNoLongerPartitionParent) {
  AutoTree tree = result_.tree;
  AutoTreeNode& leaf = tree.MutableNodes()[1];
  leaf.vertices.pop_back();
  leaf.labels.pop_back();
  if constexpr (kDcheckEnabled) {
    EXPECT_DEATH(VerifyAutoTree(tree, result_.colors), "DVICL_DCHECK");
  } else {
    VerifyAutoTree(tree, result_.colors);
  }
}

TEST_F(VerifyAutoTreeDeathTest, DuplicateLabelWithinNode) {
  AutoTree tree = result_.tree;
  AutoTreeNode& leaf = tree.MutableNodes()[1];
  ASSERT_GE(leaf.labels.size(), 2u);
  leaf.labels[1] = leaf.labels[0];
  if constexpr (kDcheckEnabled) {
    EXPECT_DEATH(VerifyAutoTree(tree, result_.colors), "DVICL_DCHECK");
  } else {
    VerifyAutoTree(tree, result_.colors);
  }
}

TEST_F(VerifyAutoTreeDeathTest, BrokenParentLink) {
  AutoTree tree = result_.tree;
  tree.MutableNodes()[1].parent = 1;  // child claims to be its own parent
  if constexpr (kDcheckEnabled) {
    EXPECT_DEATH(VerifyAutoTree(tree, result_.colors), "DVICL_DCHECK");
  } else {
    VerifyAutoTree(tree, result_.colors);
  }
}

TEST_F(VerifyAutoTreeDeathTest, StaleFormHash) {
  AutoTree tree = result_.tree;
  tree.MutableNodes()[1].form_hash ^= 1;
  if constexpr (kDcheckEnabled) {
    EXPECT_DEATH(VerifyAutoTree(tree, result_.colors), "DVICL_DCHECK");
  } else {
    VerifyAutoTree(tree, result_.colors);
  }
}

TEST_F(VerifyAutoTreeDeathTest, SymClassIgnoresFormEquality) {
  // The two triangle leaves have equal canonical forms, so they must share
  // a symmetry class; splitting them is the §5 bug the verifier guards.
  AutoTree tree = result_.tree;
  AutoTreeNode& root = tree.MutableNodes()[0];
  ASSERT_EQ(root.children.size(), 2u);
  ASSERT_EQ(root.child_sym_class[0], root.child_sym_class[1]);
  root.child_sym_class[1] = root.child_sym_class[0] + 1;
  if constexpr (kDcheckEnabled) {
    EXPECT_DEATH(VerifyAutoTree(tree, result_.colors), "DVICL_DCHECK");
  } else {
    VerifyAutoTree(tree, result_.colors);
  }
}

}  // namespace
}  // namespace dvicl
