#include <gtest/gtest.h>

#include "common/big_uint.h"
#include "ir/ir_canonical.h"
#include "perm/schreier_sims.h"
#include "refine/coloring.h"
#include "test_util.h"

namespace dvicl {
namespace {

using testing_util::BruteForceAutomorphisms;
using testing_util::PaperFigure1Graph;
using testing_util::RandomGraph;
using testing_util::RandomPermutation;

const IrPreset kAllPresets[] = {IrPreset::kNautyLike, IrPreset::kBlissLike,
                                IrPreset::kTracesLike};

IrResult Canonical(const Graph& g, IrPreset preset) {
  IrOptions options;
  options.preset = preset;
  return IrCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), options);
}

TEST(IrTest, TrivialGraphs) {
  for (IrPreset preset : kAllPresets) {
    Graph empty = Graph::FromEdges(0, {});
    IrResult r = Canonical(empty, preset);
    EXPECT_TRUE(r.completed());
    EXPECT_TRUE(r.automorphism_generators.empty());

    Graph one = Graph::FromEdges(1, {});
    r = Canonical(one, preset);
    EXPECT_TRUE(r.completed());
    EXPECT_EQ(r.canonical_labeling.Size(), 1u);
  }
}

TEST(IrTest, CanonicalLabelingIsValidPermutation) {
  Graph g = PaperFigure1Graph();
  for (IrPreset preset : kAllPresets) {
    IrResult r = Canonical(g, preset);
    ASSERT_TRUE(r.completed());
    EXPECT_EQ(r.canonical_labeling.Size(), 8u);
    // The relabeled graph is isomorphic to g: it has the same degree
    // multiset and the certificate's edge count matches.
    EXPECT_EQ(r.certificate[0], 8u);
    EXPECT_EQ(r.certificate[1], g.NumEdges());
    Graph relabeled = g.RelabeledBy(r.canonical_labeling.ImageArray());
    EXPECT_EQ(relabeled.NumEdges(), g.NumEdges());
  }
}

TEST(IrTest, GeneratorsAreAutomorphisms) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Graph g = RandomGraph(12, 0.3, seed);
    for (IrPreset preset : kAllPresets) {
      IrResult r = Canonical(g, preset);
      ASSERT_TRUE(r.completed());
      for (const Permutation& gen : r.automorphism_generators) {
        EXPECT_TRUE(IsAutomorphism(g, gen)) << "seed=" << seed;
      }
    }
  }
}

TEST(IrTest, CertificateInvariantUnderRelabeling) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = RandomGraph(14, 0.25, seed);
    Permutation gamma = RandomPermutation(14, seed + 77);
    Graph h = g.RelabeledBy(gamma.ImageArray());
    for (IrPreset preset : kAllPresets) {
      IrResult rg = Canonical(g, preset);
      IrResult rh = Canonical(h, preset);
      ASSERT_TRUE(rg.completed() && rh.completed());
      EXPECT_EQ(rg.certificate, rh.certificate)
          << "seed=" << seed << " preset=" << static_cast<int>(preset);
    }
  }
}

TEST(IrTest, DistinguishesNonIsomorphicGraphs) {
  // Path P4 vs star K1,3: same vertex and edge counts, not isomorphic.
  Graph path = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  Graph star = Graph::FromEdges(4, {{0, 1}, {0, 2}, {0, 3}});
  for (IrPreset preset : kAllPresets) {
    EXPECT_NE(Canonical(path, preset).certificate,
              Canonical(star, preset).certificate);
  }
}

TEST(IrTest, DistinguishesCospectralPair) {
  // C4 + K1 vs star K1,3 + isolated? Use the classic pair: K1,4 vs C4+K1
  // (both 5 vertices 4 edges).
  Graph star = Graph::FromEdges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  Graph cycle_plus =
      Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  for (IrPreset preset : kAllPresets) {
    EXPECT_NE(Canonical(star, preset).certificate,
              Canonical(cycle_plus, preset).certificate);
  }
}

TEST(IrTest, AutomorphismGroupOrderMatchesBruteForce) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = RandomGraph(7, 0.35, seed);
    const auto brute = BruteForceAutomorphisms(g);
    for (IrPreset preset : kAllPresets) {
      IrResult r = Canonical(g, preset);
      ASSERT_TRUE(r.completed());
      SchreierSims chain(7);
      for (const Permutation& gen : r.automorphism_generators) {
        chain.AddGenerator(gen);
      }
      EXPECT_EQ(chain.Order(), BigUint(brute.size()))
          << "seed=" << seed << " preset=" << static_cast<int>(preset);
    }
  }
}

TEST(IrTest, StructuredGraphsGroupOrders) {
  // Complete graph K5: |Aut| = 120.
  std::vector<Edge> k5;
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) k5.emplace_back(u, v);
  }
  Graph complete = Graph::FromEdges(5, std::move(k5));
  // Cycle C6: |Aut| = 12. Paper graph: 48.
  Graph cycle = Graph::FromEdges(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}});
  Graph paper = PaperFigure1Graph();

  struct Case {
    const Graph* graph;
    uint64_t order;
  } cases[] = {{&complete, 120}, {&cycle, 12}, {&paper, 48}};

  for (const Case& c : cases) {
    for (IrPreset preset : kAllPresets) {
      IrResult r = Canonical(*c.graph, preset);
      ASSERT_TRUE(r.completed());
      SchreierSims chain(c.graph->NumVertices());
      for (const Permutation& gen : r.automorphism_generators) {
        chain.AddGenerator(gen);
      }
      EXPECT_EQ(chain.Order(), BigUint(c.order))
          << "preset=" << static_cast<int>(preset);
    }
  }
}

TEST(IrTest, RespectsInitialColoring) {
  // A 4-cycle with two opposite vertices colored distinctly has only the
  // reflection fixing them: |Aut(G, pi)| = 2 (swap of 1 and 3) x swap of
  // colored pair? Coloring {0}=a, {2}=a, {1,3}=b: automorphisms preserving
  // colors: identity, (1 3), (0 2), (0 2)(1 3) -> order 4.
  Graph cycle = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  Coloring pi = Coloring::FromLabels(std::vector<uint32_t>{0, 1, 0, 1});
  IrResult r = IrCanonicalLabeling(cycle, pi, {});
  ASSERT_TRUE(r.completed());
  SchreierSims chain(4);
  for (const Permutation& gen : r.automorphism_generators) {
    chain.AddGenerator(gen);
  }
  EXPECT_EQ(chain.Order(), BigUint(4));
}

TEST(IrTest, ColoredIsomorphismDistinguishesColorings) {
  // Same graph, different colorings that are NOT color-isomorphic.
  Graph path = Graph::FromEdges(3, {{0, 1}, {1, 2}});
  Coloring end_colored =
      Coloring::FromLabels(std::vector<uint32_t>{1, 0, 0});
  Coloring mid_colored =
      Coloring::FromLabels(std::vector<uint32_t>{0, 1, 0});
  IrResult a = IrCanonicalLabeling(path, end_colored, {});
  IrResult b = IrCanonicalLabeling(path, mid_colored, {});
  EXPECT_NE(a.certificate, b.certificate);
}

TEST(IrTest, NodeBudgetAbortsCleanly) {
  // A cycle keeps the unit coloring equitable, so the search tree is
  // non-trivial; with a budget of one node the run must report
  // incompletion.
  std::vector<Edge> edges;
  for (VertexId v = 0; v < 16; ++v) edges.emplace_back(v, (v + 1) % 16);
  Graph g = Graph::FromEdges(16, std::move(edges));
  IrOptions options;
  options.max_tree_nodes = 1;
  IrResult r = IrCanonicalLabeling(g, Coloring::Unit(16), options);
  EXPECT_FALSE(r.completed());
}

TEST(IrTest, PresetsAgreeOnIsomorphismDecisions) {
  // Different presets produce different canonical forms, but their
  // same-preset certificate comparisons must agree on iso/non-iso.
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph g1 = RandomGraph(12, 0.3, seed);
    Graph g2 = RandomGraph(12, 0.3, seed + 100);
    Graph g1_relabeled =
        g1.RelabeledBy(RandomPermutation(12, seed + 200).ImageArray());
    for (IrPreset preset : kAllPresets) {
      EXPECT_EQ(Canonical(g1, preset).certificate,
                Canonical(g1_relabeled, preset).certificate);
      // g1 vs g2 with different edge counts: trivially different.
      if (g1.NumEdges() != g2.NumEdges()) {
        EXPECT_NE(Canonical(g1, preset).certificate,
                  Canonical(g2, preset).certificate);
      }
    }
  }
}

}  // namespace
}  // namespace dvicl
