// Must-compile control for the thread-safety analysis leg: the same shape
// as thread_safety_fail.cc with the locking done right. Compiled standalone
// by scripts/check_thread_safety.sh with
// `clang++ -Wthread-safety -Werror=thread-safety`; if THIS fails, the
// smoke's flags (or the wrappers themselves) are broken, not the caller.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dvicl {

class Account {
 public:
  void Deposit(int amount) {
    MutexLock lock(mu_);
    DepositLocked(amount);
  }

  int Balance() const {
    MutexLock lock(mu_);
    return balance_;
  }

 private:
  void DepositLocked(int amount) DVICL_REQUIRES(mu_) { balance_ += amount; }

  mutable Mutex mu_;
  int balance_ DVICL_GUARDED_BY(mu_) = 0;
};

}  // namespace dvicl

int main() {
  dvicl::Account account;
  account.Deposit(1);
  return account.Balance() == 1 ? 0 : 1;
}
