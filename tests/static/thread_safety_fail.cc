// Must-NOT-compile smoke for the thread-safety analysis leg.
//
// This TU is deliberately excluded from every CMake target. It is compiled
// standalone by scripts/check_thread_safety.sh with
// `clang++ -Wthread-safety -Werror=thread-safety`, and the script PASSES
// only when this compilation FAILS: each function below violates the
// annotation contract in one canonical way, so if the analysis ever stops
// diagnosing them (a macro regressed to a no-op, a wrapper lost its
// attribute, the warning group was demoted), the smoke catches it.
//
// The companion tests/static/thread_safety_ok.cc is the control: the same
// class accessed correctly must compile clean under the same flags.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dvicl {

class Account {
 public:
  // Violation 1: writing a DVICL_GUARDED_BY field with no lock held.
  void UnguardedWrite(int amount) { balance_ += amount; }

  // Violation 2: calling a DVICL_REQUIRES helper without the capability.
  void CallLockedHelperUnlocked() { DepositLocked(1); }

  // Violation 3: releasing a mutex this path never acquired.
  void UnlockWithoutLock() { mu_.Unlock(); }

 private:
  void DepositLocked(int amount) DVICL_REQUIRES(mu_) { balance_ += amount; }

  Mutex mu_;
  int balance_ DVICL_GUARDED_BY(mu_) = 0;
};

}  // namespace dvicl

int main() {
  dvicl::Account account;
  account.UnguardedWrite(1);
  account.CallLockedHelperUnlocked();
  account.UnlockWithoutLock();
  return 0;
}
