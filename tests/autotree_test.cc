// Structural invariants of the AutoTree itself, checked on random and
// structured graphs: children partition their parent, labels are unique and
// color-consistent, symmetry classes align with canonical-form hashes, and
// the root labeling is the bijection the certificate is built from.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "datasets/generators.h"
#include "dvicl/dvicl.h"
#include "test_util.h"

namespace dvicl {
namespace {

using testing_util::PaperFigure1Graph;
using testing_util::PaperFigure3Graph;
using testing_util::RandomGraph;

void CheckInvariants(const Graph& g, const DviclResult& r) {
  const AutoTree& tree = r.tree;
  ASSERT_TRUE(r.completed());

  for (uint32_t id = 0; id < tree.NumNodes(); ++id) {
    const AutoTreeNode& node = tree.Node(id);

    // Vertices sorted, unique, non-empty (except possibly an empty root).
    ASSERT_TRUE(std::is_sorted(node.vertices.begin(), node.vertices.end()));
    ASSERT_TRUE(std::adjacent_find(node.vertices.begin(),
                                   node.vertices.end()) ==
                node.vertices.end());
    if (g.NumVertices() > 0) {
      ASSERT_FALSE(node.vertices.empty());
    }

    // Edges lie within the node and are a subset of G's edges (divide only
    // removes).
    std::unordered_set<VertexId> members(node.vertices.begin(),
                                         node.vertices.end());
    for (const Edge& e : node.edges) {
      EXPECT_LT(e.first, e.second);
      EXPECT_TRUE(members.count(e.first));
      EXPECT_TRUE(members.count(e.second));
      EXPECT_TRUE(g.HasEdge(e.first, e.second));
    }

    // Labels: aligned with vertices, unique within the node, and each label
    // lies in [color, color + cell size) — i.e., it encodes the color.
    ASSERT_EQ(node.labels.size(), node.vertices.size());
    std::set<VertexId> label_set(node.labels.begin(), node.labels.end());
    EXPECT_EQ(label_set.size(), node.labels.size()) << "labels not unique";
    for (size_t i = 0; i < node.vertices.size(); ++i) {
      EXPECT_GE(node.labels[i], r.colors[node.vertices[i]]);
    }

    if (!node.is_leaf) {
      // Children partition the parent's vertex set.
      ASSERT_FALSE(node.children.empty());
      ASSERT_EQ(node.child_sym_class.size(), node.children.size());
      size_t total = 0;
      std::unordered_set<VertexId> seen;
      for (uint32_t child_id : node.children) {
        const AutoTreeNode& child = tree.Node(child_id);
        EXPECT_EQ(child.parent, static_cast<int32_t>(id));
        EXPECT_EQ(child.depth, node.depth + 1);
        total += child.vertices.size();
        for (VertexId v : child.vertices) {
          EXPECT_TRUE(members.count(v));
          EXPECT_TRUE(seen.insert(v).second) << "vertex in two children";
        }
      }
      EXPECT_EQ(total, node.vertices.size());

      // Symmetry classes: non-decreasing along the sorted children, equal
      // class => equal form hash and equal label multiset.
      for (size_t i = 1; i < node.children.size(); ++i) {
        EXPECT_GE(node.child_sym_class[i], node.child_sym_class[i - 1]);
        if (node.child_sym_class[i] == node.child_sym_class[i - 1]) {
          const AutoTreeNode& a = tree.Node(node.children[i - 1]);
          const AutoTreeNode& b = tree.Node(node.children[i]);
          EXPECT_EQ(a.form_hash, b.form_hash);
          std::vector<VertexId> la(a.labels);
          std::vector<VertexId> lb(b.labels);
          std::sort(la.begin(), la.end());
          std::sort(lb.begin(), lb.end());
          EXPECT_EQ(la, lb);
        }
      }
    } else {
      EXPECT_TRUE(node.children.empty());
      // leaf_of points back at this leaf.
      for (VertexId v : node.vertices) {
        EXPECT_EQ(tree.LeafOf(v), id);
      }
    }
  }

  // Root labels are exactly the canonical labeling.
  const AutoTreeNode& root = tree.Root();
  for (size_t i = 0; i < root.vertices.size(); ++i) {
    EXPECT_EQ(root.labels[i], r.canonical_labeling(root.vertices[i]));
  }
}

TEST(AutoTreeInvariantsTest, PaperGraphs) {
  for (const Graph& g : {PaperFigure1Graph(), PaperFigure3Graph()}) {
    DviclResult r =
        DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
    CheckInvariants(g, r);
  }
}

TEST(AutoTreeInvariantsTest, RandomGraphSweep) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = RandomGraph(40, 0.1, seed);
    DviclResult r = DviclCanonicalLabeling(g, Coloring::Unit(40), {});
    CheckInvariants(g, r);
  }
}

TEST(AutoTreeInvariantsTest, TwinRichGraphs) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Graph g = WithTwins(PreferentialAttachmentGraph(80, 3, seed), 0.3,
                        seed + 100);
    DviclResult r =
        DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
    CheckInvariants(g, r);
  }
}

TEST(AutoTreeInvariantsTest, StructuredFamilies) {
  const Graph graphs[] = {CycleGraph(12),      Torus3dGraph(3),
                          HadamardGraph(8),    CfiGraph(8, true),
                          AffinePlaneGraph(3), CompleteBipartiteGraph(4, 6)};
  for (const Graph& g : graphs) {
    DviclResult r =
        DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
    CheckInvariants(g, r);
  }
}

TEST(AutoTreeInvariantsTest, ColoredInputs) {
  Graph g = PaperFigure1Graph();
  // Force the cycle/triangle split by initial colors.
  Coloring pi = Coloring::FromLabels(
      std::vector<uint32_t>{0, 0, 0, 0, 1, 1, 1, 2});
  DviclResult r = DviclCanonicalLabeling(g, pi, {});
  CheckInvariants(g, r);
}

TEST(AutoTreeInvariantsTest, DisconnectedAndDegenerate) {
  const Graph graphs[] = {
      Graph::FromEdges(0, {}),
      Graph::FromEdges(1, {}),
      Graph::FromEdges(5, {}),  // 5 isolated vertices
      Graph::FromEdges(6, {{0, 1}, {2, 3}, {4, 5}}),  // perfect matching
  };
  for (const Graph& g : graphs) {
    DviclResult r =
        DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
    CheckInvariants(g, r);
  }
}

}  // namespace
}  // namespace dvicl
