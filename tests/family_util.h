#ifndef DVICL_TESTS_FAMILY_UTIL_H_
#define DVICL_TESTS_FAMILY_UTIL_H_

#include <functional>
#include <string>
#include <vector>

#include "datasets/generators.h"
#include "graph/graph.h"
#include "test_util.h"

namespace dvicl {
namespace testing_util {

// A named graph family instance shared by the parallel-determinism suite
// and the golden-certificate regression corpus (tests/golden/). The exact
// parameters are part of the golden contract: changing any of them changes
// certificates and requires regenerating the corpus via
// scripts/regen_golden.sh.
struct Family {
  std::string name;
  std::function<Graph()> make;
};

// Every public family of datasets/generators.h, at sizes that keep the
// whole parameterized suite fast enough for a sanitizer build. These are
// the 22 families the parallel-determinism test sweeps across thread
// counts; the golden corpus pins their certificates and group orders.
inline std::vector<Family> DeterminismFamilies() {
  return {
      {"Cycle", [] { return CycleGraph(24); }},
      {"Path", [] { return PathGraph(17); }},
      {"Complete", [] { return CompleteGraph(9); }},
      {"CompleteBipartite", [] { return CompleteBipartiteGraph(5, 7); }},
      {"Star", [] { return StarGraph(12); }},
      {"Torus3d", [] { return Torus3dGraph(3); }},
      {"ErdosRenyi", [] { return ErdosRenyiGraph(60, 0.08, 11); }},
      {"PreferentialAttachment",
       [] { return PreferentialAttachmentGraph(80, 3, 12); }},
      {"RandomTree", [] { return RandomTreeGraph(90, 13); }},
      {"RandomRegular", [] { return RandomRegularGraph(30, 3, 14); }},
      {"CopyingModel", [] { return CopyingModelGraph(70, 3, 0.5, 15); }},
      {"WithTwins",
       [] { return WithTwins(ErdosRenyiGraph(50, 0.1, 16), 0.3, 17); }},
      {"WithTwinClasses",
       [] {
         return WithTwinClasses(PreferentialAttachmentGraph(60, 2, 18), 0.3,
                                4, 19);
       }},
      {"WithPendantPaths",
       [] {
         return WithPendantPaths(ErdosRenyiGraph(50, 0.1, 20), 0.4, 3, 21);
       }},
      {"WithWheelGadgets",
       [] { return WithWheelGadgets(ErdosRenyiGraph(40, 0.12, 22), 4, 5, 23); }},
      {"Hadamard", [] { return HadamardGraph(8); }},
      {"CfiUntwisted", [] { return CfiGraph(8, false); }},
      {"CfiTwisted", [] { return CfiGraph(8, true); }},
      {"MiyazakiLike", [] { return MiyazakiLikeGraph(4); }},
      {"ProjectivePlane", [] { return ProjectivePlaneGraph(3); }},
      {"AffinePlane", [] { return AffinePlaneGraph(3); }},
      {"CircuitLike", [] { return CircuitLikeGraph(8, 40, 24); }},
  };
}

// The golden corpus: the 22 determinism families plus the paper's worked
// examples (Fig. 1(a) running example and the Fig. 3 axis/wings graph) and
// the gadget forest that headlines the canonical-form cache.
inline std::vector<Family> GoldenFamilies() {
  std::vector<Family> families = DeterminismFamilies();
  families.push_back({"PaperFigure1", [] { return PaperFigure1Graph(); }});
  families.push_back({"PaperFigure3", [] { return PaperFigure3Graph(); }});
  families.push_back({"GadgetForest", [] { return GadgetForestGraph(6, 6); }});
  return families;
}

}  // namespace testing_util
}  // namespace dvicl

#endif  // DVICL_TESTS_FAMILY_UTIL_H_
