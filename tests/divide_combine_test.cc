// Direct unit tests for the divide (Algorithm 2/3) and combine
// (Algorithm 4/5) building blocks, independent of the DviCL driver.

#include <gtest/gtest.h>

#include <numeric>

#include "dvicl/combine.h"
#include "dvicl/divide.h"
#include "refine/coloring.h"
#include "refine/refiner.h"
#include "test_util.h"

namespace dvicl {
namespace {

using testing_util::PaperFigure1Graph;

std::vector<VertexId> AllVertices(VertexId n) {
  std::vector<VertexId> vertices(n);
  std::iota(vertices.begin(), vertices.end(), 0);
  return vertices;
}

std::vector<uint32_t> RefinedColors(const Graph& g) {
  Coloring pi = Coloring::Unit(g.NumVertices());
  RefineToEquitable(g, &pi);
  return pi.ColorOffsets();
}

TEST(DivideITest, PaperGraphSplitsOnHubAxis) {
  // Fig. 1(a): hub 7 is the singleton cell; removing it leaves the 4-cycle
  // and the triangle as components -> 3 pieces.
  Graph g = PaperFigure1Graph();
  const auto colors = RefinedColors(g);
  DivideWorkspace ws(8);
  std::vector<GraphPiece> pieces;
  ASSERT_TRUE(DivideI(AllVertices(8), g.Edges(), colors, &ws, &pieces));
  ASSERT_EQ(pieces.size(), 3u);
  // Singleton piece first (vertex order), then components by least vertex.
  EXPECT_EQ(pieces[0].vertices, (std::vector<VertexId>{7}));
  EXPECT_TRUE(pieces[0].edges.empty());
  EXPECT_EQ(pieces[1].vertices, (std::vector<VertexId>{0, 1, 2, 3}));
  EXPECT_EQ(pieces[1].edges.size(), 4u);  // the 4-cycle
  EXPECT_EQ(pieces[2].vertices, (std::vector<VertexId>{4, 5, 6}));
  EXPECT_EQ(pieces[2].edges.size(), 3u);  // the triangle
}

TEST(DivideITest, FailsWithoutSingletonsOnConnectedGraph) {
  // A 6-cycle: one cell, connected -> DivideI cannot divide.
  Graph cycle = Graph::FromEdges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4},
                                     {4, 5}, {5, 0}});
  const auto colors = RefinedColors(cycle);
  DivideWorkspace ws(6);
  std::vector<GraphPiece> pieces;
  EXPECT_FALSE(DivideI(AllVertices(6), cycle.Edges(), colors, &ws, &pieces));
  EXPECT_TRUE(pieces.empty());
}

TEST(DivideITest, SplitsDisconnectedGraphWithoutSingletons) {
  // Two disjoint triangles, one cell, two components.
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {0, 2},
                                 {3, 4}, {4, 5}, {3, 5}});
  const auto colors = RefinedColors(g);
  DivideWorkspace ws(6);
  std::vector<GraphPiece> pieces;
  ASSERT_TRUE(DivideI(AllVertices(6), g.Edges(), colors, &ws, &pieces));
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0].vertices, (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(pieces[1].vertices, (std::vector<VertexId>{3, 4, 5}));
}

TEST(DivideITest, SingleVertexNodeNeverDivides) {
  Graph g = Graph::FromEdges(3, {{0, 1}});
  const auto colors = RefinedColors(g);
  DivideWorkspace ws(3);
  std::vector<GraphPiece> pieces;
  const std::vector<VertexId> one = {2};
  EXPECT_FALSE(DivideI(one, {}, colors, &ws, &pieces));
}

TEST(DivideSTest, CliqueCellExplodes) {
  // A triangle with one cell: DivideS removes the clique edges and yields
  // three singleton pieces.
  Graph triangle = Graph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}});
  const auto colors = RefinedColors(triangle);
  DivideWorkspace ws(3);
  std::vector<Edge> edges = triangle.Edges();
  std::vector<GraphPiece> pieces;
  ASSERT_TRUE(DivideS(AllVertices(3), &edges, colors, &ws, &pieces));
  EXPECT_EQ(pieces.size(), 3u);
  for (const GraphPiece& piece : pieces) {
    EXPECT_EQ(piece.vertices.size(), 1u);
    EXPECT_TRUE(piece.edges.empty());
  }
}

TEST(DivideSTest, CompleteBipartitePairExplodes) {
  // K_{2,3}: two cells (sides), all cross edges complete bipartite.
  Graph k23 = Graph::FromEdges(5, {{0, 2}, {0, 3}, {0, 4},
                                   {1, 2}, {1, 3}, {1, 4}});
  const auto colors = RefinedColors(k23);
  DivideWorkspace ws(5);
  std::vector<Edge> edges = k23.Edges();
  std::vector<GraphPiece> pieces;
  ASSERT_TRUE(DivideS(AllVertices(5), &edges, colors, &ws, &pieces));
  EXPECT_EQ(pieces.size(), 5u);
}

TEST(DivideSTest, NonCliqueCellDoesNotDivide) {
  // A 4-cycle: one cell, not a clique -> no removable pairs, untouched.
  Graph c4 = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const auto colors = RefinedColors(c4);
  DivideWorkspace ws(4);
  std::vector<Edge> edges = c4.Edges();
  const std::vector<Edge> before = edges;
  std::vector<GraphPiece> pieces;
  EXPECT_FALSE(DivideS(AllVertices(4), &edges, colors, &ws, &pieces));
  EXPECT_EQ(edges, before);  // edges untouched on a no-op
}

TEST(DivideSTest, ReducesEdgesEvenWhenStillConnected) {
  // K4 plus a pendant: refinement gives cells {pendant-neighbor}, {rest of
  // K4}, {pendant}. After DivideI-style thinking is excluded, DivideS on
  // the 3-clique cell removes its intra-cell edges; with the singleton
  // cells' biclique edges also removable the graph disconnects, so build a
  // case that stays connected: C5 with chords making one cell a clique is
  // hard to arrange — instead verify the reduction path via the complete
  // tripartite graph K_{2,2,2} (octahedron): cells stay one, no reduction.
  Graph octahedron = Graph::FromEdges(6, {{0, 2}, {0, 3}, {0, 4}, {0, 5},
                                          {1, 2}, {1, 3}, {1, 4}, {1, 5},
                                          {2, 4}, {2, 5}, {3, 4}, {3, 5}});
  const auto colors = RefinedColors(octahedron);
  DivideWorkspace ws(6);
  std::vector<Edge> edges = octahedron.Edges();
  std::vector<GraphPiece> pieces;
  // One vertex-transitive cell, 4-regular, not a clique: no division.
  EXPECT_FALSE(DivideS(AllVertices(6), &edges, colors, &ws, &pieces));
}

TEST(NodeFormTest, EqualFormsIffSameLabeledStructure) {
  AutoTreeNode a;
  a.vertices = {3, 7};
  a.labels = {0, 1};
  a.edges = {{3, 7}};
  AutoTreeNode b;
  b.vertices = {10, 20};
  b.labels = {0, 1};
  b.edges = {{10, 20}};
  EXPECT_EQ(ComputeNodeForm(a), ComputeNodeForm(b));

  // Different labels -> different form.
  AutoTreeNode c = b;
  c.labels = {1, 0};
  // Same edge {0,1} under labels in both cases; labels multiset equal, so
  // the form is STILL equal (the packed edge normalizes orientation).
  EXPECT_EQ(ComputeNodeForm(b), ComputeNodeForm(c));

  // Missing edge -> different form.
  AutoTreeNode d = b;
  d.edges.clear();
  EXPECT_NE(ComputeNodeForm(b), ComputeNodeForm(d));

  // Different label values -> different form.
  AutoTreeNode e = b;
  e.labels = {0, 5};
  EXPECT_NE(ComputeNodeForm(b), ComputeNodeForm(e));
}

TEST(CombineCLTest, LabelsRankWithinColors) {
  // A 4-cycle leaf with a single color: CombineCL must produce labels
  // 0..3 and at least one automorphism generator.
  Graph c4 = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const auto colors = RefinedColors(c4);
  AutoTreeNode node;
  node.vertices = {0, 1, 2, 3};
  node.edges = c4.Edges();
  IrOptions options;
  IrStats stats;
  ASSERT_EQ(CombineCL(&node, colors, options, &stats),
            RunOutcome::kCompleted);
  std::vector<VertexId> sorted_labels = node.labels;
  std::sort(sorted_labels.begin(), sorted_labels.end());
  EXPECT_EQ(sorted_labels, (std::vector<VertexId>{0, 1, 2, 3}));
  EXPECT_FALSE(node.leaf_generators.empty());
  EXPECT_GT(stats.tree_nodes, 0u);
}

TEST(CombineCLTest, BudgetFailurePropagates) {
  Graph c16 = [] {
    std::vector<Edge> edges;
    for (VertexId v = 0; v < 16; ++v) edges.emplace_back(v, (v + 1) % 16);
    return Graph::FromEdges(16, std::move(edges));
  }();
  const auto colors = RefinedColors(c16);
  AutoTreeNode node;
  node.vertices = AllVertices(16);
  node.edges = c16.Edges();
  IrOptions options;
  options.max_tree_nodes = 1;
  EXPECT_EQ(CombineCL(&node, colors, options, nullptr),
            RunOutcome::kNodeBudget);
}

}  // namespace
}  // namespace dvicl
