#include <gtest/gtest.h>

#include "common/big_uint.h"
#include "perm/perm_group.h"
#include "perm/permutation.h"
#include "perm/schreier_sims.h"
#include "test_util.h"

namespace dvicl {
namespace {

using testing_util::PaperFigure1Graph;

TEST(PermutationTest, IdentityBasics) {
  Permutation id = Permutation::Identity(5);
  EXPECT_TRUE(id.IsIdentity());
  EXPECT_EQ(id.ToCycleString(), "()");
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(id(v), v);
}

TEST(PermutationTest, CycleParsingMatchesPaperExample) {
  // Paper §2: gamma1 = (4,5,6) relabels 4 as 5, 5 as 6, 6 as 4.
  auto gamma = Permutation::FromCycles(8, "(4,5,6)");
  ASSERT_TRUE(gamma.ok());
  EXPECT_EQ(gamma.value()(4), 5u);
  EXPECT_EQ(gamma.value()(5), 6u);
  EXPECT_EQ(gamma.value()(6), 4u);
  EXPECT_EQ(gamma.value()(0), 0u);
}

TEST(PermutationTest, MultiCycleParsing) {
  // Paper §2: gamma* = (0,7)(1,5)(2,4)(3,6).
  auto gamma = Permutation::FromCycles(8, "(0,7)(1,5)(2,4)(3,6)");
  ASSERT_TRUE(gamma.ok());
  EXPECT_EQ(gamma.value()(0), 7u);
  EXPECT_EQ(gamma.value()(7), 0u);
  EXPECT_EQ(gamma.value()(2), 4u);
  EXPECT_EQ(gamma.value().ToCycleString(), "(0,7)(1,5)(2,4)(3,6)");
}

TEST(PermutationTest, FromCyclesRejectsBadInput) {
  EXPECT_FALSE(Permutation::FromCycles(3, "(0,5)").ok());   // out of range
  EXPECT_FALSE(Permutation::FromCycles(3, "(0,1)(1,2)").ok());  // repeated
  EXPECT_FALSE(Permutation::FromCycles(3, "0,1").ok());     // no parens
}

TEST(PermutationTest, FromImageRejectsNonBijection) {
  EXPECT_FALSE(Permutation::FromImage({0, 0, 1}).ok());
  EXPECT_FALSE(Permutation::FromImage({0, 3, 1}).ok());
  EXPECT_TRUE(Permutation::FromImage({2, 0, 1}).ok());
}

TEST(PermutationTest, ComposeAndInverse) {
  auto a = Permutation::FromCycles(4, "(0,1)").value();
  auto b = Permutation::FromCycles(4, "(1,2)").value();
  // a.Then(b): v -> b(a(v)). 0 -> a:1 -> b:2.
  Permutation c = a.Then(b);
  EXPECT_EQ(c(0), 2u);
  EXPECT_EQ(c(1), 0u);
  EXPECT_EQ(c(2), 1u);
  EXPECT_TRUE(c.Then(c.Inverse()).IsIdentity());
  EXPECT_TRUE(c.Inverse().Then(c).IsIdentity());
}

TEST(PermutationTest, AutomorphismCheckOnPaperGraph) {
  Graph g = PaperFigure1Graph();
  // Paper §2: (4,5,6) is an automorphism; (0,1) is not.
  EXPECT_TRUE(
      IsAutomorphism(g, Permutation::FromCycles(8, "(4,5,6)").value()));
  EXPECT_FALSE(
      IsAutomorphism(g, Permutation::FromCycles(8, "(0,1)").value()));
  // (0,2) swaps structurally equivalent vertices.
  EXPECT_TRUE(IsAutomorphism(g, Permutation::FromCycles(8, "(0,2)").value()));
}

TEST(PermutationTest, ColorPreservingAutomorphism) {
  Graph g = PaperFigure1Graph();
  std::vector<uint32_t> colors = {0, 0, 0, 0, 1, 1, 1, 2};
  auto rot = Permutation::FromCycles(8, "(4,5,6)").value();
  EXPECT_TRUE(IsColorPreservingAutomorphism(g, colors, rot));
  // Force 4 into a different color: rotation no longer color-preserving.
  colors[4] = 3;
  EXPECT_FALSE(IsColorPreservingAutomorphism(g, colors, rot));
}

TEST(PermGroupTest, OrbitsOfCyclicGenerator) {
  PermGroup group(6);
  group.AddGenerator(Permutation::FromCycles(6, "(0,1,2)").value());
  group.AddGenerator(Permutation::FromCycles(6, "(4,5)").value());
  const auto orbits = group.Orbits();
  ASSERT_EQ(orbits.size(), 3u);
  EXPECT_EQ(orbits[0], (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(orbits[1], (std::vector<VertexId>{3}));
  EXPECT_EQ(orbits[2], (std::vector<VertexId>{4, 5}));
  EXPECT_TRUE(group.SameOrbit(0, 2));
  EXPECT_FALSE(group.SameOrbit(0, 3));
}

TEST(PermGroupTest, IgnoresIdentityGenerators) {
  PermGroup group(4);
  group.AddGenerator(Permutation::Identity(4));
  EXPECT_TRUE(group.generators().empty());
}

TEST(SchreierSimsTest, SymmetricGroupOrder) {
  // <(0,1), (0,1,...,n-1)> = S_n.
  for (VertexId n : {3u, 5u, 8u}) {
    SchreierSims chain(n);
    chain.AddGenerator(Permutation::FromCycles(n, "(0,1)").value());
    std::string big_cycle = "(";
    for (VertexId v = 0; v < n; ++v) {
      big_cycle += std::to_string(v);
      big_cycle += (v + 1 < n) ? "," : ")";
    }
    chain.AddGenerator(Permutation::FromCycles(n, big_cycle).value());
    EXPECT_EQ(chain.Order(), BigUint::Factorial(n)) << "n=" << n;
  }
}

TEST(SchreierSimsTest, CyclicGroupOrder) {
  SchreierSims chain(7);
  chain.AddGenerator(Permutation::FromCycles(7, "(0,1,2,3,4,5,6)").value());
  EXPECT_EQ(chain.Order(), BigUint(7));
}

TEST(SchreierSimsTest, TrivialGroup) {
  SchreierSims chain(5);
  EXPECT_EQ(chain.Order(), BigUint(1));
  EXPECT_TRUE(chain.Contains(Permutation::Identity(5)));
  EXPECT_FALSE(chain.Contains(Permutation::FromCycles(5, "(0,1)").value()));
}

TEST(SchreierSimsTest, MembershipQueries) {
  SchreierSims chain(4);
  chain.AddGenerator(Permutation::FromCycles(4, "(0,1)").value());
  chain.AddGenerator(Permutation::FromCycles(4, "(2,3)").value());
  EXPECT_TRUE(chain.Contains(Permutation::FromCycles(4, "(0,1)(2,3)").value()));
  EXPECT_FALSE(chain.Contains(Permutation::FromCycles(4, "(0,2)").value()));
  EXPECT_EQ(chain.Order(), BigUint(4));
}

TEST(SchreierSimsTest, MatchesBruteForceOnRandomGraphAutomorphisms) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph g = testing_util::RandomGraph(6, 0.4, seed);
    const auto autos = testing_util::BruteForceAutomorphisms(g);
    SchreierSims chain(6);
    for (const Permutation& a : autos) chain.AddGenerator(a);
    EXPECT_EQ(chain.Order(), BigUint(autos.size())) << "seed=" << seed;
    for (const Permutation& a : autos) EXPECT_TRUE(chain.Contains(a));
  }
}

TEST(SchreierSimsTest, PaperGraphAutomorphismOrderIs48) {
  // Fig. 1(a): Aut = Dih(C4) x Sym(triangle) = 8 * 6 = 48.
  Graph g = PaperFigure1Graph();
  const auto autos = testing_util::BruteForceAutomorphisms(g);
  EXPECT_EQ(autos.size(), 48u);
  SchreierSims chain(8);
  for (const Permutation& a : autos) chain.AddGenerator(a);
  EXPECT_EQ(chain.Order(), BigUint(48));
}

}  // namespace
}  // namespace dvicl
