// Tests for the secondary applications of paper §1: network simplification
// (quotients), structure entropy, certificate indexing, and the graph6
// interchange format.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/cert_index.h"
#include "analysis/quotient.h"
#include "analysis/symmetry_profile.h"
#include "datasets/generators.h"
#include "dvicl/dvicl.h"
#include "graph/graph_io.h"
#include "test_util.h"

namespace dvicl {
namespace {

using testing_util::PaperFigure1Graph;
using testing_util::PaperFigure3Graph;
using testing_util::RandomGraph;
using testing_util::RandomPermutation;

std::vector<VertexId> OrbitsOf(const Graph& g) {
  DviclResult r =
      DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
  EXPECT_TRUE(r.completed());
  return OrbitIdsFromGenerators(g.NumVertices(), r.generators);
}

TEST(QuotientTest, PaperGraphQuotient) {
  // Fig. 1(a) orbits: {0,1,2,3}, {4,5,6}, {7} -> 3 quotient vertices.
  Graph g = PaperFigure1Graph();
  QuotientGraph q = BuildQuotient(g, OrbitsOf(g));
  EXPECT_EQ(q.graph.NumVertices(), 3u);
  // Orbit sizes 4, 3, 1 in some order.
  std::vector<uint32_t> sizes = q.orbit_size;
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<uint32_t>{1, 3, 4}));
  // Hub orbit adjacent to both others; cycle and triangle orbits not
  // adjacent to each other (intra-orbit edges become dropped loops).
  EXPECT_EQ(q.graph.NumEdges(), 2u);
  EXPECT_LT(q.vertex_ratio, 1.0);
  EXPECT_LT(q.edge_ratio, 1.0);
}

TEST(QuotientTest, AsymmetricGraphQuotientIsIdentity) {
  // A graph with trivial Aut: quotient == original (up to renumbering).
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5},
                                 {0, 2}, {1, 4}});
  const auto orbits = OrbitsOf(g);
  QuotientGraph q = BuildQuotient(g, orbits);
  EXPECT_EQ(q.graph.NumVertices(), g.NumVertices());
  EXPECT_EQ(q.graph.NumEdges(), g.NumEdges());
  EXPECT_DOUBLE_EQ(q.vertex_ratio, 1.0);
}

TEST(QuotientTest, VertexTransitiveGraphCollapsesToOnePoint) {
  Graph cycle = CycleGraph(12);
  QuotientGraph q = BuildQuotient(cycle, OrbitsOf(cycle));
  EXPECT_EQ(q.graph.NumVertices(), 1u);
  EXPECT_EQ(q.graph.NumEdges(), 0u);  // loops dropped
  EXPECT_EQ(q.orbit_size[0], 12u);
}

TEST(QuotientTest, Figure3Compression) {
  // 14 vertices -> orbits {0},{1},{2,4,6,8,10,12},{3,...,13}: 4 orbits
  // (isolated 0 is its own orbit).
  Graph g = PaperFigure3Graph();
  QuotientGraph q = BuildQuotient(g, OrbitsOf(g));
  EXPECT_EQ(q.graph.NumVertices(), 4u);
}

TEST(StructureEntropyTest, ExtremesAndMonotonicity) {
  // Vertex-transitive: zero entropy (maximally symmetric).
  Graph cycle = CycleGraph(16);
  EXPECT_DOUBLE_EQ(StructureEntropy(16, OrbitsOf(cycle)), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedStructureEntropy(16, OrbitsOf(cycle)), 0.0);

  // Rigid graph: entropy = log2(n) (all orbits singleton).
  Graph rigid = Graph::FromEdges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5},
                                     {0, 2}, {1, 4}});
  EXPECT_NEAR(StructureEntropy(6, OrbitsOf(rigid)), std::log2(6.0), 1e-9);
  EXPECT_NEAR(NormalizedStructureEntropy(6, OrbitsOf(rigid)), 1.0, 1e-9);

  // Fig. 1(a) sits strictly between.
  Graph paper = PaperFigure1Graph();
  const double h = NormalizedStructureEntropy(8, OrbitsOf(paper));
  EXPECT_GT(h, 0.0);
  EXPECT_LT(h, 1.0);
}

TEST(StructureEntropyTest, EmptyGraph) {
  EXPECT_DOUBLE_EQ(StructureEntropy(0, {}), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedStructureEntropy(0, {}), 0.0);
}

TEST(CertificateIndexTest, GroupsIsomorphsTogether) {
  CertificateIndex index;
  Graph g = RandomGraph(12, 0.3, 1);
  Graph g_relabeled = g.RelabeledBy(RandomPermutation(12, 2).ImageArray());
  Graph other = RandomGraph(12, 0.3, 3);

  const int64_t c1 = index.Insert("g", g);
  const int64_t c2 = index.Insert("g'", g_relabeled);
  const int64_t c3 = index.Insert("other", other);
  EXPECT_EQ(c1, c2);
  EXPECT_NE(c1, c3);
  EXPECT_EQ(index.NumGraphs(), 3u);
  EXPECT_EQ(index.NumClasses(), 2u);

  const auto hits = index.FindIsomorphic(
      g.RelabeledBy(RandomPermutation(12, 4).ImageArray()));
  EXPECT_EQ(hits, (std::vector<std::string>{"g", "g'"}));
  EXPECT_TRUE(index
                  .FindIsomorphic(Graph::FromEdges(12, {{0, 1}}))
                  .empty());
}

TEST(CertificateIndexTest, DeduplicatesChemicalLikeCollection) {
  // A small "compound database": cycles, paths, stars of various sizes,
  // inserted under random relabelings; classes must equal distinct shapes.
  CertificateIndex index;
  int inserted = 0;
  for (VertexId n : {5u, 6u, 7u}) {
    for (uint64_t seed = 0; seed < 3; ++seed) {
      const Permutation gamma = RandomPermutation(n, 100 * n + seed);
      index.Insert("cycle", CycleGraph(n).RelabeledBy(gamma.ImageArray()));
      index.Insert("path", PathGraph(n).RelabeledBy(gamma.ImageArray()));
      index.Insert("star",
                   StarGraph(n - 1).RelabeledBy(gamma.ImageArray()));
      inserted += 3;
    }
  }
  EXPECT_EQ(index.NumGraphs(), static_cast<size_t>(inserted));
  EXPECT_EQ(index.NumClasses(), 9u);  // 3 shapes x 3 sizes
}

TEST(SymmetryProfileTest, PaperGraphProfile) {
  Graph g = PaperFigure1Graph();
  DviclResult r = DviclCanonicalLabeling(g, Coloring::Unit(8), {});
  ASSERT_TRUE(r.completed());
  SymmetryProfile profile = ComputeSymmetryProfile(g, r);
  EXPECT_EQ(profile.aut_order, BigUint(48));
  EXPECT_EQ(profile.num_orbits, 3u);       // {0..3}, {4..6}, {7}
  EXPECT_EQ(profile.singleton_orbits, 1u);
  EXPECT_EQ(profile.largest_orbit, 4u);
  EXPECT_DOUBLE_EQ(profile.symmetric_vertex_fraction, 7.0 / 8.0);
  EXPECT_GT(profile.normalized_structure_entropy, 0.0);
  EXPECT_LT(profile.normalized_structure_entropy, 1.0);
  EXPECT_DOUBLE_EQ(profile.quotient_vertex_ratio, 3.0 / 8.0);
}

TEST(SymmetryProfileTest, RigidGraphProfile) {
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5},
                                 {0, 2}, {1, 4}});
  DviclResult r = DviclCanonicalLabeling(g, Coloring::Unit(6), {});
  SymmetryProfile profile = ComputeSymmetryProfile(g, r);
  EXPECT_EQ(profile.aut_order, BigUint(1));
  EXPECT_EQ(profile.num_orbits, 6u);
  EXPECT_DOUBLE_EQ(profile.symmetric_vertex_fraction, 0.0);
  EXPECT_DOUBLE_EQ(profile.quotient_vertex_ratio, 1.0);
}

TEST(Graph6Test, RoundTripSmall) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = RandomGraph(17, 0.3, seed);
    Result<Graph> back = ParseGraph6(FormatGraph6(g));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back.value(), g);
  }
}

TEST(Graph6Test, RoundTripLargeHeader) {
  // n > 62 exercises the '~' extended size header.
  Graph g = RandomGraph(100, 0.05, 7);
  Result<Graph> back = ParseGraph6(FormatGraph6(g));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), g);
}

TEST(Graph6Test, KnownEncodings) {
  // The worked example from nauty's formats.txt: the graph on 5 vertices
  // with edges 0-2, 0-4, 1-3, 3-4 encodes as "DQc".
  Graph example = Graph::FromEdges(5, {{0, 2}, {0, 4}, {1, 3}, {3, 4}});
  EXPECT_EQ(FormatGraph6(example), "DQc");
  Result<Graph> parsed = ParseGraph6("DQc");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), example);
  // The empty graph on 0 vertices is "?".
  EXPECT_EQ(FormatGraph6(Graph::FromEdges(0, {})), "?");
}

TEST(Graph6Test, AcceptsHeaderPrefixAndNewline) {
  Graph example = Graph::FromEdges(5, {{0, 2}, {0, 4}, {1, 3}, {3, 4}});
  Result<Graph> parsed = ParseGraph6(">>graph6<<DQc\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), example);
}

TEST(Graph6Test, RejectsMalformed) {
  EXPECT_FALSE(ParseGraph6("").ok());
  EXPECT_FALSE(ParseGraph6("D").ok());        // truncated bits
  EXPECT_FALSE(ParseGraph6("DQcX").ok());     // trailing bytes
  EXPECT_FALSE(ParseGraph6("D\x01\x02").ok());  // out-of-range bytes
}

}  // namespace
}  // namespace dvicl
