// The backtracking isomorphism oracle, and differential tests pitting it
// against the canonical-labeling deciders at sizes where brute force over
// n! permutations is impossible.

#include <gtest/gtest.h>

#include <functional>

#include "datasets/generators.h"
#include "dvicl/dvicl.h"
#include "ssm/iso_backtrack.h"
#include "test_util.h"

namespace dvicl {
namespace {

using testing_util::RandomGraph;
using testing_util::RandomPermutation;

TEST(IsoBacktrackTest, FindsWitnessOnRelabeledCopies) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g1 = RandomGraph(30, 0.15, seed);
    Permutation gamma = RandomPermutation(30, seed + 40);
    Graph g2 = g1.RelabeledBy(gamma.ImageArray());
    auto witness = FindIsomorphismBacktracking(g1, g2);
    ASSERT_TRUE(witness.has_value()) << "seed=" << seed;
    EXPECT_EQ(g1.RelabeledBy(witness->ImageArray()), g2);
  }
}

TEST(IsoBacktrackTest, RejectsNonIsomorphicPairs) {
  // Same degree sequence, different structure.
  Graph k33 = Graph::FromEdges(6, {{0, 3}, {0, 4}, {0, 5}, {1, 3}, {1, 4},
                                   {1, 5}, {2, 3}, {2, 4}, {2, 5}});
  Graph prism = Graph::FromEdges(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5},
                                     {5, 3}, {0, 3}, {1, 4}, {2, 5}});
  EXPECT_FALSE(FindIsomorphismBacktracking(k33, prism).has_value());
}

TEST(IsoBacktrackTest, CfiPairsAreWhereBacktrackingDies) {
  // Refuting isomorphism of a CFI pair by plain backtracking requires
  // exhausting an exponential search space — the very reason the CFI
  // family exists and why canonical labelers are needed. The oracle must
  // hit its step budget (never a wrong "isomorphic" answer), while DviCL
  // separates the pair instantly.
  Graph straight = CfiGraph(6, false);
  Graph twisted = CfiGraph(6, true);
  bool aborted = false;
  auto witness =
      FindIsomorphismBacktracking(straight, twisted, 200000, &aborted);
  EXPECT_FALSE(witness.has_value());
  // Either it proved non-isomorphism in budget or it aborted; both are
  // acceptable for the oracle — and DviCL decides it outright.
  EXPECT_FALSE(DviclIsomorphic(straight, twisted));
  (void)aborted;
}

TEST(IsoBacktrackTest, StepBudgetAborts) {
  // A Hadamard graph forces heavy backtracking; two distinct relabelings
  // with a tiny budget must abort rather than hang.
  Graph g1 = HadamardGraph(16);
  Graph g2 = g1.RelabeledBy(
      RandomPermutation(g1.NumVertices(), 5).ImageArray());
  bool aborted = false;
  auto witness = FindIsomorphismBacktracking(g1, g2, 10, &aborted);
  EXPECT_TRUE(aborted || witness.has_value());
}

TEST(IsoBacktrackTest, TrivialCases) {
  Graph empty = Graph::FromEdges(0, {});
  EXPECT_TRUE(FindIsomorphismBacktracking(empty, empty).has_value());
  EXPECT_FALSE(FindIsomorphismBacktracking(Graph::FromEdges(2, {}),
                                           Graph::FromEdges(3, {}))
                   .has_value());
}

// Differential testing: the two independent deciders must agree on pairs
// drawn from the same distribution (where neither is the other's oracle).
TEST(IsoBacktrackTest, AgreesWithDviclOnRandomPairs) {
  int isomorphic_pairs = 0;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    // Half the pairs are relabeled copies, half independent draws with the
    // same (n, p) — occasionally isomorphic by chance at this size.
    Graph g1 = RandomGraph(16, 0.25, seed);
    Graph g2 = (seed % 2 == 0)
                   ? g1.RelabeledBy(RandomPermutation(16, seed + 7)
                                        .ImageArray())
                   : RandomGraph(16, 0.25, seed + 1000);
    const bool backtrack = FindIsomorphismBacktracking(g1, g2).has_value();
    bool decided = false;
    const bool dvicl = DviclIsomorphic(g1, g2, {}, &decided);
    ASSERT_TRUE(decided);
    EXPECT_EQ(backtrack, dvicl) << "seed=" << seed;
    isomorphic_pairs += backtrack ? 1 : 0;
  }
  EXPECT_GE(isomorphic_pairs, 15);  // at least the relabeled half
}

TEST(IsoBacktrackTest, AgreesWithDviclOnTrees) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph t1 = RandomTreeGraph(40, seed);
    Graph t2 = (seed % 2 == 0)
                   ? t1.RelabeledBy(RandomPermutation(40, seed + 3)
                                        .ImageArray())
                   : RandomTreeGraph(40, seed + 500);
    const bool backtrack = FindIsomorphismBacktracking(t1, t2).has_value();
    EXPECT_EQ(backtrack, DviclIsomorphic(t1, t2)) << "seed=" << seed;
  }
}

TEST(IsoBacktrackTest, AgreesWithDviclOnSocialGraphs) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph g1 = WithTwins(PreferentialAttachmentGraph(50, 3, seed), 0.2,
                         seed + 1);
    Graph g2 = g1.RelabeledBy(
        RandomPermutation(g1.NumVertices(), seed + 9).ImageArray());
    EXPECT_TRUE(FindIsomorphismBacktracking(g1, g2).has_value());
    EXPECT_TRUE(DviclIsomorphic(g1, g2));
  }
}

TEST(GeneratorsTest, RandomTreeIsATree) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const VertexId n = 3 + static_cast<VertexId>(seed * 13 % 80);
    Graph t = RandomTreeGraph(n, seed);
    ASSERT_EQ(t.NumVertices(), n);
    ASSERT_EQ(t.NumEdges(), static_cast<uint64_t>(n) - 1);
    // Connected: union-find over edges reaches one component.
    std::vector<VertexId> parent(n);
    for (VertexId v = 0; v < n; ++v) parent[v] = v;
    std::function<VertexId(VertexId)> find = [&](VertexId x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    for (const Edge& e : t.Edges()) {
      parent[find(e.first)] = find(e.second);
    }
    for (VertexId v = 1; v < n; ++v) {
      EXPECT_EQ(find(v), find(0)) << "seed=" << seed;
    }
  }
}

TEST(GeneratorsTest, RandomRegularHasUniformDegrees) {
  Graph g = RandomRegularGraph(100, 4, 11);
  EXPECT_EQ(g.NumVertices(), 100u);
  uint32_t correct = 0;
  for (VertexId v = 0; v < 100; ++v) {
    correct += (g.Degree(v) == 4) ? 1 : 0;
  }
  // The bounded fallback may perturb a few degrees; the bulk must be 4.
  EXPECT_GE(correct, 95u);
}

TEST(GeneratorsTest, TreesThroughDviclPipeline) {
  // Trees stress deep DivideI chains; certificates must stay invariant.
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph t = RandomTreeGraph(60, seed);
    DviclResult base = DviclCanonicalLabeling(t, Coloring::Unit(60), {});
    ASSERT_TRUE(base.completed());
    // Trees decompose fully: no IR leaf should ever be needed.
    EXPECT_EQ(base.tree.NumNonSingletonLeaves(), 0u) << "seed=" << seed;
    Graph relabeled =
        t.RelabeledBy(RandomPermutation(60, seed + 77).ImageArray());
    DviclResult other =
        DviclCanonicalLabeling(relabeled, Coloring::Unit(60), {});
    EXPECT_EQ(base.certificate, other.certificate);
  }
}

}  // namespace
}  // namespace dvicl
