// Tests that encode the paper's worked examples: the Fig. 1(a) running
// example and the Fig. 3/4 AutoTree narratives.

#include <gtest/gtest.h>

#include "dvicl/dvicl.h"
#include "refine/refiner.h"
#include "test_util.h"

namespace dvicl {
namespace {

using testing_util::PaperFigure1Graph;
using testing_util::PaperFigure3Graph;

TEST(PaperExamplesTest, Figure1GraphShape) {
  Graph g = PaperFigure1Graph();
  EXPECT_EQ(g.NumVertices(), 8u);
  EXPECT_EQ(g.NumEdges(), 14u);
  EXPECT_EQ(g.Degree(7), 7u);  // hub adjacent to everything
  for (VertexId v = 0; v < 7; ++v) EXPECT_EQ(g.Degree(v), 3u);
}

// Fig. 4: the AutoTree of Fig. 1(a). Root divides (by the singleton axis 7)
// into {7}, the triangle {4,5,6}, and the 4-cycle {0,1,2,3}. The triangle
// is a one-cell clique, so DivideS explodes it into three symmetric
// singleton leaves; the 4-cycle cannot be divided and becomes the single
// non-singleton leaf handled by the IR backend.
TEST(PaperExamplesTest, Figure4AutoTreeStructure) {
  Graph g = PaperFigure1Graph();
  DviclResult r = DviclCanonicalLabeling(g, Coloring::Unit(8), {});
  ASSERT_TRUE(r.completed());

  const AutoTreeNode& root = r.tree.Root();
  ASSERT_EQ(root.children.size(), 3u);

  uint32_t singleton_leaf_children = 0;
  uint32_t triangle_node = 0;
  uint32_t cycle_node = 0;
  for (uint32_t child : root.children) {
    const AutoTreeNode& node = r.tree.Node(child);
    if (node.IsSingleton()) {
      ++singleton_leaf_children;
      EXPECT_EQ(node.vertices[0], 7u);
    } else if (node.vertices == std::vector<VertexId>({4, 5, 6})) {
      triangle_node = child;
    } else {
      EXPECT_EQ(node.vertices, (std::vector<VertexId>{0, 1, 2, 3}));
      cycle_node = child;
    }
  }
  EXPECT_EQ(singleton_leaf_children, 1u);

  // Triangle: divided by DivideS into three singleton leaves that share a
  // canonical form (paper: "vertices 4, 5 and 6 are mutually automorphic
  // since these three leaf nodes have the same canonical labeling").
  const AutoTreeNode& triangle = r.tree.Node(triangle_node);
  EXPECT_FALSE(triangle.is_leaf);
  EXPECT_TRUE(triangle.divided_by_s);
  ASSERT_EQ(triangle.children.size(), 3u);
  EXPECT_EQ(triangle.child_sym_class[0], triangle.child_sym_class[1]);
  EXPECT_EQ(triangle.child_sym_class[1], triangle.child_sym_class[2]);

  // 4-cycle: a non-singleton leaf (paper: "The 4th leaf node from the left
  // is non-singleton ... We use bliss to obtain its permutation").
  const AutoTreeNode& cycle = r.tree.Node(cycle_node);
  EXPECT_TRUE(cycle.is_leaf);
  EXPECT_FALSE(cycle.IsSingleton());
  EXPECT_FALSE(cycle.leaf_generators.empty());

  // Tree totals: 1 root + 3 children + 3 triangle singletons = 7 nodes;
  // 4 singleton leaves, 1 non-singleton leaf; depth 2.
  EXPECT_EQ(r.tree.NumNodes(), 7u);
  EXPECT_EQ(r.tree.NumSingletonLeaves(), 4u);
  EXPECT_EQ(r.tree.NumNonSingletonLeaves(), 1u);
  EXPECT_EQ(r.tree.Depth(), 2u);
  EXPECT_DOUBLE_EQ(r.tree.AverageNonSingletonLeafSize(), 4.0);
}

// Orbit structure of Fig. 1(a): {0,1,2,3}, {4,5,6}, {7}.
TEST(PaperExamplesTest, Figure1Orbits) {
  Graph g = PaperFigure1Graph();
  DviclResult r = DviclCanonicalLabeling(g, Coloring::Unit(8), {});
  ASSERT_TRUE(r.completed());
  const auto orbit = OrbitIdsFromGenerators(8, r.generators);
  EXPECT_EQ(orbit[0], orbit[1]);
  EXPECT_EQ(orbit[0], orbit[2]);
  EXPECT_EQ(orbit[0], orbit[3]);
  EXPECT_EQ(orbit[4], orbit[5]);
  EXPECT_EQ(orbit[4], orbit[6]);
  EXPECT_NE(orbit[0], orbit[4]);
  EXPECT_NE(orbit[0], orbit[7]);
  EXPECT_NE(orbit[4], orbit[7]);
}

// Fig. 3: the axis vertex 1 divides g into two symmetric wings; inside a
// wing the one-color triangle is a DivideS axis; the remaining pairs
// divide into singletons. All leaves are singleton (the paper's Fig. 3 has
// "all the leaf nodes singleton").
TEST(PaperExamplesTest, Figure3AutoTreeAllSingletonLeaves) {
  Graph g = PaperFigure3Graph();
  DviclResult r = DviclCanonicalLabeling(g, Coloring::Unit(14), {});
  ASSERT_TRUE(r.completed());
  EXPECT_EQ(r.tree.NumNonSingletonLeaves(), 0u);
  // Wings are symmetric: the root has two children in one symmetry class.
  const AutoTreeNode& root = r.tree.Root();
  uint32_t wing_class_members = 0;
  for (size_t i = 0; i < root.children.size(); ++i) {
    const AutoTreeNode& child = r.tree.Node(root.children[i]);
    if (child.vertices.size() == 6) ++wing_class_members;
  }
  EXPECT_EQ(wing_class_members, 2u);
}

// Paper §5 on Fig. 3: "two vertices, 2 and 6 are automorphic ... Similarly,
// 2 and 12 are automorphic".
TEST(PaperExamplesTest, Figure3AutomorphicVertices) {
  Graph g = PaperFigure3Graph();
  DviclResult r = DviclCanonicalLabeling(g, Coloring::Unit(14), {});
  ASSERT_TRUE(r.completed());
  const auto orbit = OrbitIdsFromGenerators(14, r.generators);
  EXPECT_EQ(orbit[2], orbit[6]);
  EXPECT_EQ(orbit[2], orbit[12]);
  EXPECT_EQ(orbit[3], orbit[9]);
  EXPECT_NE(orbit[1], orbit[2]);
  EXPECT_NE(orbit[2], orbit[3]);
}

// Theorem 6.10: symmetric vertices lie in leaves sharing a canonical form.
TEST(PaperExamplesTest, SymmetricVerticesShareLeafForm) {
  Graph g = PaperFigure3Graph();
  DviclResult r = DviclCanonicalLabeling(g, Coloring::Unit(14), {});
  ASSERT_TRUE(r.completed());
  // 2 and 12 are automorphic: their (singleton) leaves have equal hashes
  // and equal labels.
  const AutoTreeNode& leaf2 = r.tree.Node(r.tree.LeafOf(2));
  const AutoTreeNode& leaf12 = r.tree.Node(r.tree.LeafOf(12));
  EXPECT_EQ(leaf2.labels, leaf12.labels);
  // 1 is fixed: no other leaf shares its labels' color.
  const AutoTreeNode& leaf1 = r.tree.Node(r.tree.LeafOf(1));
  EXPECT_NE(leaf1.labels, leaf2.labels);
}

// Theorem 6.9 construction: G1 iso G2 via the auxiliary-graph argument is
// exercised directly — two isomorphic wings produce equal child forms.
TEST(PaperExamplesTest, IsomorphicComponentsGetEqualForms) {
  Graph g = PaperFigure3Graph();
  DviclResult r = DviclCanonicalLabeling(g, Coloring::Unit(14), {});
  ASSERT_TRUE(r.completed());
  const AutoTreeNode& root = r.tree.Root();
  std::vector<uint64_t> wing_hashes;
  for (uint32_t child : root.children) {
    if (r.tree.Node(child).vertices.size() == 6) {
      wing_hashes.push_back(r.tree.Node(child).form_hash);
    }
  }
  ASSERT_EQ(wing_hashes.size(), 2u);
  EXPECT_EQ(wing_hashes[0], wing_hashes[1]);
}

}  // namespace
}  // namespace dvicl
