// Deterministic fault-injection coverage (common/failpoint.h): every
// compiled-in site, exercised at threads {1, 8} with the cert cache off and
// on, must unwind to the documented RunOutcome, never leak a partial
// certificate, never pollute a shared cache, and — after disarming — leave
// the process able to reproduce the never-faulted result byte for byte.
//
// The framework registry is compiled in every build, so the framework unit
// tests below run unconditionally; the library-site matrix checks
// failpoint::kEnabled and degrades to "arming has no effect" assertions
// when sites are compiled out (-DDVICL_FAILPOINTS=OFF).

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/memory_budget.h"
#include "common/outcome.h"
#include "datasets/generators.h"
#include "dvicl/cert_cache.h"
#include "dvicl/dvicl.h"
#include "graph/graph_io.h"
#include "ir/ir_canonical.h"
#include "obs/metrics.h"
#include "perm/schreier_sims.h"
#include "server/client.h"
#include "server/server.h"
#include "test_util.h"

namespace dvicl {
namespace {

// ---- framework unit tests (run in every build) ------------------------------

// Arms are process-global; every test must leave the registry clean.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(FailpointTest, SkipAndTriggerCounters) {
  const std::string site = "test.only.site";
  EXPECT_FALSE(failpoint::IsArmed(site));
  failpoint::Arm(site, {.skip_hits = 2, .max_triggers = 2});
  EXPECT_TRUE(failpoint::IsArmed(site));
  ASSERT_TRUE(failpoint::internal::AnyArmed());

  // Hits 0,1 are skipped; 2,3 trigger; 4,5 exhausted the trigger cap.
  const bool expected[] = {false, false, true, true, false, false};
  for (size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(failpoint::internal::Evaluate(site.c_str()), expected[i])
        << "evaluation " << i;
  }
  EXPECT_EQ(failpoint::HitCount(site), 6u);
  EXPECT_EQ(failpoint::TriggerCount(site), 2u);
  EXPECT_EQ(failpoint::TotalTriggers(), 2u);
}

TEST_F(FailpointTest, UnlimitedTriggersWhenCapIsZero) {
  const std::string site = "test.unlimited";
  failpoint::Arm(site, {.skip_hits = 0, .max_triggers = 0});
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(failpoint::internal::Evaluate(site.c_str()));
  }
  EXPECT_EQ(failpoint::TriggerCount(site), 5u);
}

TEST_F(FailpointTest, RearmResetsCounters) {
  const std::string site = "test.rearm";
  failpoint::Arm(site);
  EXPECT_TRUE(failpoint::internal::Evaluate(site.c_str()));
  EXPECT_EQ(failpoint::TriggerCount(site), 1u);
  failpoint::Arm(site);  // re-arm: counters restart, trigger fires again
  EXPECT_EQ(failpoint::HitCount(site), 0u);
  EXPECT_EQ(failpoint::TriggerCount(site), 0u);
  EXPECT_TRUE(failpoint::internal::Evaluate(site.c_str()));
}

TEST_F(FailpointTest, DisarmedSiteNeverTriggers) {
  const std::string site = "test.disarm";
  failpoint::Arm(site);
  failpoint::Disarm(site);
  EXPECT_FALSE(failpoint::IsArmed(site));
  // Another armed site keeps AnyArmed() true, so evaluation still runs —
  // and must not trigger the disarmed one.
  failpoint::Arm("test.other");
  EXPECT_FALSE(failpoint::internal::Evaluate(site.c_str()));
  EXPECT_EQ(failpoint::TriggerCount(site), 0u);
}

TEST_F(FailpointTest, DisarmAllRestoresFastPath) {
  failpoint::Arm("test.a");
  failpoint::Arm("test.b");
  ASSERT_TRUE(failpoint::internal::AnyArmed());
  failpoint::DisarmAll();
  EXPECT_FALSE(failpoint::internal::AnyArmed());
  EXPECT_EQ(failpoint::TotalTriggers(), 0u);
}

TEST_F(FailpointTest, CatalogueListsEveryCompiledSite) {
  const std::vector<std::string> sites = failpoint::AllSites();
  const char* expected[] = {
      failpoint::sites::kIrSearchNode, failpoint::sites::kDivide,
      failpoint::sites::kCombineSt,    failpoint::sites::kCombineCl,
      failpoint::sites::kTaskRun,      failpoint::sites::kCacheProbe,
      failpoint::sites::kCacheVerify,  failpoint::sites::kCachePublish,
      failpoint::sites::kGraphIoRead,  failpoint::sites::kSchreierInsert,
      failpoint::sites::kServerDecode, failpoint::sites::kServerDispatch,
      failpoint::sites::kServerWriteReply,
      // Process-level chaos sites: never armed in-process (a trigger kills
      // or freezes the whole binary); tests/supervisor_test.cc arms them
      // pre-fork so only worker children evaluate them.
      failpoint::sites::kWorkerKill,   failpoint::sites::kWorkerHang,
  };
  EXPECT_EQ(sites.size(), std::size(expected));
  for (const char* site : expected) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), std::string(site)),
              sites.end())
        << site << " missing from AllSites()";
  }
}

TEST_F(FailpointTest, InjectedFaultNamesItsSite) {
  const failpoint::InjectedFault fault("some.site");
  EXPECT_EQ(fault.site(), "some.site");
  EXPECT_NE(std::string(fault.what()).find("some.site"), std::string::npos);
}

TEST(OutcomeTest, NamesAreStableIdentifiers) {
  EXPECT_STREQ(RunOutcomeName(RunOutcome::kCompleted), "completed");
  EXPECT_STREQ(RunOutcomeName(RunOutcome::kDeadline), "deadline");
  EXPECT_STREQ(RunOutcomeName(RunOutcome::kNodeBudget), "node_budget");
  EXPECT_STREQ(RunOutcomeName(RunOutcome::kMemoryBudget), "memory_budget");
  EXPECT_STREQ(RunOutcomeName(RunOutcome::kCancelled), "cancelled");
  EXPECT_STREQ(RunOutcomeName(RunOutcome::kInvalidInput), "invalid_input");
  EXPECT_STREQ(RunOutcomeName(RunOutcome::kInternalFault), "internal_fault");
}

// ---- library-site matrix ----------------------------------------------------

struct MatrixConfig {
  uint32_t threads;
  bool cache;
};

DviclOptions MatrixOptions(const MatrixConfig& config) {
  DviclOptions options;
  options.num_threads = config.threads;
  options.cert_cache = config.cache;
  // Dispatch even tiny subtrees so task_pool.run_task is reachable.
  options.parallel_grain_vertices = 1;
  return options;
}

// Forest of identical Miyazaki-like gadgets: DivideI splits the copies
// (internal node + divide + CombineST live), each copy survives as a
// non-singleton leaf (CombineCL + IR search live), and the copies are
// isomorphic (cache probe/verify/publish live when the cache is on).
Graph MatrixGraph() { return GadgetForestGraph(3, 3); }

void ExpectDegradedResult(const DviclResult& result, const Graph& g) {
  EXPECT_FALSE(result.completed());
  EXPECT_TRUE(result.certificate.empty())
      << "a partial certificate escaped an aborted run";
  EXPECT_EQ(result.canonical_labeling.Size(), 0u);
  EXPECT_EQ(result.colors.size(), g.NumVertices())
      << "the root equitable coloring must survive the abort";
  EXPECT_FALSE(result.fault_detail.empty());
}

TEST_F(FailpointTest, EverySiteAtEveryThreadAndCacheConfig) {
  const Graph g = MatrixGraph();
  const Coloring unit = Coloring::Unit(g.NumVertices());
  const DviclResult baseline =
      DviclCanonicalLabeling(g, unit, MatrixOptions({1, false}));
  ASSERT_TRUE(baseline.completed());
  ASSERT_FALSE(baseline.certificate.empty());

  struct SiteCase {
    const char* site;
    RunOutcome on_trigger;  // kCompleted = graceful degradation site
  };
  const SiteCase cases[] = {
      {failpoint::sites::kIrSearchNode, RunOutcome::kInternalFault},
      {failpoint::sites::kDivide, RunOutcome::kInternalFault},
      {failpoint::sites::kCombineSt, RunOutcome::kInternalFault},
      {failpoint::sites::kCombineCl, RunOutcome::kInternalFault},
      {failpoint::sites::kTaskRun, RunOutcome::kInternalFault},
      {failpoint::sites::kCacheProbe, RunOutcome::kCompleted},
      {failpoint::sites::kCacheVerify, RunOutcome::kCompleted},
      {failpoint::sites::kCachePublish, RunOutcome::kCompleted},
  };
  const MatrixConfig configs[] = {
      {1, false}, {1, true}, {8, false}, {8, true}};

  std::vector<std::string> ever_triggered;
  for (const SiteCase& site_case : cases) {
    for (const MatrixConfig& config : configs) {
      SCOPED_TRACE(std::string(site_case.site) + " threads=" +
                   std::to_string(config.threads) +
                   (config.cache ? " cache=on" : " cache=off"));
      failpoint::DisarmAll();
      failpoint::Arm(site_case.site);
      const DviclResult faulted =
          DviclCanonicalLabeling(g, unit, MatrixOptions(config));
      const bool triggered = failpoint::TriggerCount(site_case.site) > 0;
      failpoint::DisarmAll();

      if (!failpoint::kEnabled) {
        // Sites compiled out: arming must be inert.
        EXPECT_FALSE(triggered);
      }
      if (triggered) ever_triggered.push_back(site_case.site);

      if (triggered && site_case.on_trigger != RunOutcome::kCompleted) {
        EXPECT_EQ(faulted.outcome, site_case.on_trigger)
            << RunOutcomeName(faulted.outcome);
        ExpectDegradedResult(faulted, g);
      } else {
        // Never hit, or a graceful-degradation site: byte-identical output.
        EXPECT_EQ(faulted.outcome, RunOutcome::kCompleted);
        EXPECT_EQ(faulted.certificate, baseline.certificate);
        EXPECT_EQ(faulted.canonical_labeling, baseline.canonical_labeling);
      }

      // Disarm-then-retry with the same options: the fault must leave no
      // residue (wedged pool, poisoned cache, stuck cancel flag) behind.
      const DviclResult retry =
          DviclCanonicalLabeling(g, unit, MatrixOptions(config));
      EXPECT_TRUE(retry.completed());
      EXPECT_EQ(retry.certificate, baseline.certificate);
      EXPECT_EQ(retry.canonical_labeling, baseline.canonical_labeling);
    }
  }

  if (failpoint::kEnabled) {
    // The matrix is vacuous if a site never fires in any configuration.
    for (const SiteCase& site_case : cases) {
      EXPECT_NE(std::find(ever_triggered.begin(), ever_triggered.end(),
                          std::string(site_case.site)),
                ever_triggered.end())
          << site_case.site << " never triggered in any configuration";
    }
  }
}

TEST_F(FailpointTest, FaultedRunReportsItsNode) {
  if (!failpoint::kEnabled) GTEST_SKIP() << "sites compiled out";
  const Graph g = MatrixGraph();
  const Coloring unit = Coloring::Unit(g.NumVertices());
  failpoint::Arm(failpoint::sites::kCombineCl);
  const DviclResult faulted =
      DviclCanonicalLabeling(g, unit, MatrixOptions({1, false}));
  ASSERT_GT(failpoint::TriggerCount(failpoint::sites::kCombineCl), 0u);
  EXPECT_EQ(faulted.outcome, RunOutcome::kInternalFault);
  // Single-threaded and node-tied: the faulting leaf must be identified.
  ASSERT_GE(faulted.fault_node_id, 0);
  EXPECT_LT(static_cast<uint32_t>(faulted.fault_node_id),
            faulted.tree.NumNodes());
  EXPECT_NE(faulted.fault_detail.find("CombineCL"), std::string::npos)
      << faulted.fault_detail;
}

TEST_F(FailpointTest, AbortedRunNeverPollutesSharedCache) {
  if (!failpoint::kEnabled) GTEST_SKIP() << "sites compiled out";
  const Graph g = MatrixGraph();
  const Coloring unit = Coloring::Unit(g.NumVertices());
  const DviclResult baseline = DviclCanonicalLabeling(g, unit, {});
  ASSERT_TRUE(baseline.completed());

  for (const uint32_t threads : {1u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    CertCache shared;
    DviclOptions options;
    options.num_threads = threads;
    options.parallel_grain_vertices = 1;
    options.shared_cert_cache = &shared;

    failpoint::Arm(failpoint::sites::kCombineCl);
    const DviclResult aborted = DviclCanonicalLabeling(g, unit, options);
    ASSERT_GT(failpoint::TriggerCount(failpoint::sites::kCombineCl), 0u);
    EXPECT_FALSE(aborted.completed());
    failpoint::DisarmAll();

    // Whatever the aborted run left in the shared cache must be harmless:
    // a later run through the same cache reproduces the baseline exactly.
    const DviclResult after = DviclCanonicalLabeling(g, unit, options);
    ASSERT_TRUE(after.completed());
    EXPECT_EQ(after.certificate, baseline.certificate);
    EXPECT_EQ(after.canonical_labeling, baseline.canonical_labeling);
  }
}

TEST_F(FailpointTest, AbortMetricsAreExported) {
  if (!failpoint::kEnabled) GTEST_SKIP() << "sites compiled out";
  const Graph g = MatrixGraph();
  const Coloring unit = Coloring::Unit(g.NumVertices());
  obs::MetricsRegistry metrics;
  DviclOptions options;
  options.metrics = &metrics;
  failpoint::Arm(failpoint::sites::kDivide);
  const DviclResult faulted = DviclCanonicalLabeling(g, unit, options);
  ASSERT_FALSE(faulted.completed());
  EXPECT_EQ(metrics.GetCounter("dvicl.aborts.total")->Value(), 1u);
  EXPECT_EQ(metrics.GetCounter("dvicl.aborts.internal_fault")->Value(), 1u);
  EXPECT_EQ(metrics.GetCounter("dvicl.incomplete_runs")->Value(), 1u);
  EXPECT_EQ(metrics.GetCounter("failpoint.triggered")->Value(), 1u);
}

// ---- sites outside the DviclCanonicalLabeling path --------------------------

TEST_F(FailpointTest, GraphReadersReturnIoErrorWhenFaulted) {
  failpoint::Arm(failpoint::sites::kGraphIoRead,
                 {.skip_hits = 0, .max_triggers = 0});
  {
    std::istringstream in("0 1\n1 2\n");
    const Result<Graph> r = ReadEdgeList(in);
    EXPECT_EQ(r.ok(), !failpoint::kEnabled);
  }
  {
    std::istringstream in("p edge 2 1\ne 1 2\n");
    const Result<Graph> r = ReadDimacs(in, nullptr);
    EXPECT_EQ(r.ok(), !failpoint::kEnabled);
  }
  failpoint::DisarmAll();
  std::istringstream in("0 1\n1 2\n");
  const Result<Graph> r = ReadEdgeList(in);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().NumEdges(), 2u);
}

TEST_F(FailpointTest, SchreierInsertFaultLeavesChainValid) {
  const Permutation swap01(std::vector<VertexId>{1, 0, 2, 3});
  const Permutation cycle(std::vector<VertexId>{1, 2, 3, 0});
  SchreierSims chain(4);
  chain.AddGenerator(swap01);
  const BigUint before = chain.Order();

  failpoint::Arm(failpoint::sites::kSchreierInsert);
  if (failpoint::kEnabled) {
    EXPECT_THROW(chain.AddGenerator(cycle), failpoint::InjectedFault);
    // The site fires before any mutation: the chain is untouched and the
    // interrupted insertion can simply be retried.
    EXPECT_EQ(chain.Order(), before);
    chain.CheckInvariants();
    failpoint::DisarmAll();
    chain.AddGenerator(cycle);
  } else {
    chain.AddGenerator(cycle);  // site compiled out: insertion unaffected
  }
  EXPECT_EQ(chain.Order(), BigUint(24));
}

// ---- resource budgets: deterministic unwinding ------------------------------

class BudgetUnwindTest : public ::testing::TestWithParam<uint32_t> {};

INSTANTIATE_TEST_SUITE_P(Threads, BudgetUnwindTest, ::testing::Values(1, 8));

TEST_P(BudgetUnwindTest, NodeBudgetOnCfi) {
  // A CFI graph is one giant indivisible leaf; a one-node IR budget must
  // unwind as kNodeBudget with the degradation contract intact.
  const Graph g = CfiGraph(10, false);
  const Coloring unit = Coloring::Unit(g.NumVertices());
  DviclOptions options;
  options.num_threads = GetParam();
  options.parallel_grain_vertices = 1;
  options.leaf_max_tree_nodes = 1;
  const DviclResult r = DviclCanonicalLabeling(g, unit, options);
  EXPECT_EQ(r.outcome, RunOutcome::kNodeBudget)
      << RunOutcomeName(r.outcome);
  EXPECT_FALSE(r.completed());
  EXPECT_TRUE(r.certificate.empty());
  EXPECT_EQ(r.colors.size(), g.NumVertices());
  EXPECT_NE(r.fault_detail.find("max_tree_nodes"), std::string::npos)
      << r.fault_detail;

  // Lifting the budget must fully recover.
  options.leaf_max_tree_nodes = 0;
  const DviclResult recovered = DviclCanonicalLabeling(g, unit, options);
  EXPECT_TRUE(recovered.completed());
  EXPECT_FALSE(recovered.certificate.empty());
}

TEST_P(BudgetUnwindTest, DeadlineOnMiyazaki) {
  const Graph g = MiyazakiLikeGraph(8);
  const Coloring unit = Coloring::Unit(g.NumVertices());
  DviclOptions options;
  options.num_threads = GetParam();
  options.parallel_grain_vertices = 1;
  options.time_limit_seconds = 1e-9;  // expired before the first frame
  const DviclResult r = DviclCanonicalLabeling(g, unit, options);
  EXPECT_EQ(r.outcome, RunOutcome::kDeadline) << RunOutcomeName(r.outcome);
  EXPECT_TRUE(r.certificate.empty());
  EXPECT_EQ(r.canonical_labeling.Size(), 0u);
  EXPECT_FALSE(r.fault_detail.empty());
}

// ---- memory budget ----------------------------------------------------------

TEST(MemoryBudgetTest, DisabledBudgetNeverTripsOrPolls) {
  MemoryBudget budget(0);
  EXPECT_FALSE(budget.enabled());
  EXPECT_FALSE(budget.Exceeded());
  EXPECT_FALSE(budget.PollNow());
}

TEST(MemoryBudgetTest, LatchesOnceRssGrowsPastTheLimit) {
  MemoryBudget budget(8);
  ASSERT_TRUE(budget.enabled());
  EXPECT_FALSE(budget.PollNow());
  {
    // 64 MiB of touched pages: well past the 8 MiB delta budget. A single
    // allocation this size is mmap-backed, so RSS genuinely grows.
    std::vector<char> ballast(64u << 20, 1);
    EXPECT_TRUE(budget.PollNow());
    EXPECT_GT(budget.LastDeltaMib(), 8.0);
  }
  // Latched: stays exceeded even after the ballast is released.
  EXPECT_TRUE(budget.Exceeded());
}

TEST(MemoryBudgetTest, LatchedBudgetAbortsTheIrSearch) {
  MemoryBudget budget(1);
  std::vector<char> ballast(32u << 20, 1);
  ASSERT_TRUE(budget.PollNow());

  const Graph g = CfiGraph(8, false);
  IrOptions options;
  options.memory_budget = &budget;
  const IrResult r =
      IrCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), options);
  EXPECT_EQ(r.outcome, RunOutcome::kMemoryBudget);
  EXPECT_TRUE(r.certificate.empty());
  EXPECT_EQ(r.canonical_labeling.Size(), 0u);
}

TEST(MemoryBudgetTest, LatchedBudgetAbortsTheDviclRun) {
  // The run's own budget polls RSS it cannot deterministically exceed in a
  // unit test, so drive the same unwind through the leaf options instead:
  // a huge limit must never trip...
  const Graph g = GadgetForestGraph(2, 3);
  const Coloring unit = Coloring::Unit(g.NumVertices());
  DviclOptions options;
  options.memory_limit_mib = 1u << 20;  // 1 TiB delta: unreachable
  const DviclResult r = DviclCanonicalLabeling(g, unit, options);
  EXPECT_TRUE(r.completed());
  EXPECT_EQ(r.outcome, RunOutcome::kCompleted);
}

// ---- invalid input ----------------------------------------------------------

TEST(InvalidInputTest, ColoringSizeMismatchIsAStructuredOutcome) {
  const Graph g = CycleGraph(6);
  const DviclResult r = DviclCanonicalLabeling(g, Coloring::Unit(5), {});
  EXPECT_EQ(r.outcome, RunOutcome::kInvalidInput);
  EXPECT_FALSE(r.completed());
  EXPECT_TRUE(r.certificate.empty());
  EXPECT_FALSE(r.fault_detail.empty());
}

// ---- serving-path sites (server.decode_request / dispatch / write_reply) ----
//
// The server contract under injected faults: exactly the targeted request
// degrades to a structured kInternalFault reply naming the site, its
// batch-mates' replies are byte-identical to a never-faulted run, the
// connection keeps serving, and the shared certificate cache is never fed
// from the faulted request. When sites are compiled out, arming must have
// no effect at all.

// Replays `requests` pipelined over one loopback connection (all sends,
// then all receives) and returns each decoded reply with its re-encoded
// bytes — the byte-determinism comparand.
struct ServedReply {
  server::Reply reply;
  std::string bytes;
};

std::vector<ServedReply> ServePipelined(
    server::Server* srv, const std::vector<server::Request>& requests) {
  int fds[2] = {-1, -1};
  EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread serve([srv, fd = fds[1]] {
    srv->ServeConnection(fd);
    close(fd);
  });
  std::vector<ServedReply> replies;
  {
    server::Client client(fds[0]);
    for (const server::Request& request : requests) {
      EXPECT_TRUE(client.Send(request).ok());
    }
    for (size_t i = 0; i < requests.size(); ++i) {
      ServedReply served;
      EXPECT_TRUE(client.Receive(&served.reply).ok());
      server::EncodeReply(served.reply, &served.bytes);
      replies.push_back(std::move(served));
    }
  }  // closes the client fd: the serve loop sees a clean EOF
  serve.join();
  return replies;
}

std::vector<server::Request> ThreeCanonicalRequests() {
  std::vector<server::Request> requests(3);
  const Graph graphs[] = {CycleGraph(14), GadgetForestGraph(2, 3),
                          CompleteGraph(7)};
  for (size_t i = 0; i < 3; ++i) {
    requests[i].id = i + 1;
    requests[i].cls = server::RequestClass::kCanonicalForm;
    requests[i].graph = graphs[i];
  }
  return requests;
}

class ServerFailpointTest : public FailpointTest {};

TEST_F(ServerFailpointTest, EachServingSiteIsolatesTheTargetedRequest) {
  server::Server srv{server::ServerOptions{}};
  const std::vector<server::Request> requests = ThreeCanonicalRequests();
  const std::vector<ServedReply> reference = ServePipelined(&srv, requests);
  ASSERT_EQ(reference.size(), 3u);
  for (const ServedReply& served : reference) {
    ASSERT_TRUE(served.reply.ok()) << served.reply.detail;
  }

  // Each site targets the middle request via skip_hits; the decode and
  // write sites evaluate on the connection thread in frame order, and the
  // dispatch site keeps that order because submission order is evaluation
  // order for the skip counter.
  const char* const sites[] = {failpoint::sites::kServerDecode,
                               failpoint::sites::kServerDispatch,
                               failpoint::sites::kServerWriteReply};
  for (const char* site : sites) {
    failpoint::Arm(site, {.skip_hits = 1, .max_triggers = 1});
    const std::vector<ServedReply> served = ServePipelined(&srv, requests);
    failpoint::DisarmAll();
    ASSERT_EQ(served.size(), 3u) << site;
    if (failpoint::kEnabled) {
      EXPECT_EQ(served[1].reply.status, wire::WireStatus::kInternalFault)
          << site;
      EXPECT_EQ(served[1].reply.id, 2u) << site;
      EXPECT_NE(served[1].reply.detail.find(site), std::string::npos)
          << site << ": detail was \"" << served[1].reply.detail << "\"";
      EXPECT_TRUE(served[1].reply.certificate.empty()) << site;
      EXPECT_EQ(served[0].bytes, reference[0].bytes)
          << site << ": a fault bled into batch-mate 1";
      EXPECT_EQ(served[2].bytes, reference[2].bytes)
          << site << ": a fault bled into batch-mate 3";
    } else {
      for (size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(served[i].bytes, reference[i].bytes)
            << site << ": arming a compiled-out site changed reply " << i;
      }
    }
    // The connection above closed after the fault; the server must keep
    // serving, and the shared cache must still hold only verified entries:
    // a fresh never-faulted replay is byte-identical to the reference.
    const std::vector<ServedReply> after = ServePipelined(&srv, requests);
    ASSERT_EQ(after.size(), 3u) << site;
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(after[i].bytes, reference[i].bytes)
          << site << ": reply " << i << " changed after disarming";
    }
  }
}

TEST_F(ServerFailpointTest, DispatchFaultNeverFeedsTheSharedCache) {
  server::ServerOptions options;
  options.cert_cache = true;
  server::Server srv{server::ServerOptions{}};
  server::Server armed_srv{options};
  std::vector<server::Request> one(1);
  one[0].id = 1;
  one[0].cls = server::RequestClass::kCanonicalForm;
  one[0].graph = GadgetForestGraph(2, 3);
  const std::vector<ServedReply> reference = ServePipelined(&srv, one);
  ASSERT_TRUE(reference[0].reply.ok());

  failpoint::Arm(failpoint::sites::kServerDispatch, {.max_triggers = 1});
  const std::vector<ServedReply> faulted = ServePipelined(&armed_srv, one);
  failpoint::DisarmAll();
  if (failpoint::kEnabled) {
    EXPECT_EQ(faulted[0].reply.status, wire::WireStatus::kInternalFault);
    uint64_t cache_entries = 0;
    for (const auto& [name, value] : armed_srv.StatsSnapshot()) {
      if (name == "cache.entries") cache_entries = value;
    }
    EXPECT_EQ(cache_entries, 0u)
        << "a faulted request populated the shared cache";
  } else {
    EXPECT_EQ(faulted[0].bytes, reference[0].bytes);
  }

  // The next clean request on the armed server serves the true bytes.
  const std::vector<ServedReply> after = ServePipelined(&armed_srv, one);
  ASSERT_TRUE(after[0].reply.ok());
  EXPECT_EQ(after[0].bytes, reference[0].bytes);
}

}  // namespace
}  // namespace dvicl
