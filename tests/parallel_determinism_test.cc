// Determinism of the parallel AutoTree build: for every generator family in
// src/datasets/generators.cc, the certificate, canonical labeling, generator
// set, automorphism group order (Schreier-Sims) and the complete AutoTree
// byte image must be identical across num_threads in {1, 2, 4, 8} and across
// repeated runs. Thread count may only change wall-clock time. The same
// holds with the canonical-form cache enabled: a cache hit reconstructs the
// exact bytes the IR search would have produced, so cache-on runs at any
// thread count must match the cache-off single-thread baseline.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/big_uint.h"
#include "datasets/generators.h"
#include "dvicl/auto_tree.h"
#include "dvicl/dvicl.h"
#include "family_util.h"
#include "perm/schreier_sims.h"
#include "refine/coloring.h"

namespace dvicl {
namespace {

using testing_util::DeterminismFamilies;
using testing_util::Family;

// Full byte image of the tree: every persistent field of every node, in id
// order, plus the leaf_of map. Two trees with equal fingerprints are
// indistinguishable to any downstream consumer (SSM-AT, serialization,
// analysis passes).
std::vector<uint64_t> TreeFingerprint(const AutoTree& tree, VertexId n) {
  std::vector<uint64_t> out;
  out.push_back(tree.NumNodes());
  for (uint32_t id = 0; id < tree.NumNodes(); ++id) {
    const AutoTreeNode& node = tree.Node(id);
    out.push_back(node.vertices.size());
    for (VertexId v : node.vertices) out.push_back(v);
    out.push_back(node.edges.size());
    for (const Edge& e : node.edges) {
      out.push_back((static_cast<uint64_t>(e.first) << 32) | e.second);
    }
    out.push_back(node.labels.size());
    for (VertexId label : node.labels) out.push_back(label);
    out.push_back(static_cast<uint64_t>(static_cast<int64_t>(node.parent)));
    out.push_back(node.depth);
    out.push_back(node.children.size());
    for (uint32_t kid : node.children) out.push_back(kid);
    for (uint32_t cls : node.child_sym_class) out.push_back(cls);
    out.push_back(node.is_leaf ? 1 : 0);
    out.push_back(node.divided_by_s ? 1 : 0);
    out.push_back(node.form_hash);
    out.push_back(node.leaf_generators.size());
    for (const SparseAut& gen : node.leaf_generators) {
      out.push_back(gen.moves.size());
      for (const auto& [v, image] : gen.moves) {
        out.push_back((static_cast<uint64_t>(v) << 32) | image);
      }
    }
  }
  for (VertexId v = 0; v < n; ++v) out.push_back(tree.LeafOf(v));
  return out;
}

bool SameGenerators(const std::vector<SparseAut>& a,
                    const std::vector<SparseAut>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].moves != b[i].moves) return false;
  }
  return true;
}

BigUint GroupOrderOf(VertexId n, const std::vector<SparseAut>& gens) {
  SchreierSims chain(n);
  for (const SparseAut& gen : gens) chain.AddGenerator(gen.ToDense(n));
  return chain.Order();
}

class ParallelDeterminismTest : public ::testing::TestWithParam<Family> {};

DviclResult RunWithThreads(const Graph& g, uint32_t threads,
                           bool cert_cache = false, bool arena = true) {
  DviclOptions options;
  options.num_threads = threads;
  // Tiny grain so even small test graphs actually exercise cross-thread
  // dispatch instead of degenerating to inline execution.
  options.parallel_grain_vertices = 2;
  options.cert_cache = cert_cache;
  options.arena = arena;
  return DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), options);
}

TEST_P(ParallelDeterminismTest, IdenticalAcrossThreadCounts) {
  const Graph g = GetParam().make();
  const VertexId n = g.NumVertices();

  const DviclResult base = RunWithThreads(g, 1);
  ASSERT_TRUE(base.completed());
  const std::vector<uint64_t> base_print = TreeFingerprint(base.tree, n);
  const BigUint base_order = GroupOrderOf(n, base.generators);

  for (uint32_t threads : {2u, 4u, 8u}) {
    const DviclResult r = RunWithThreads(g, threads);
    ASSERT_TRUE(r.completed()) << "threads=" << threads;
    EXPECT_EQ(r.certificate, base.certificate) << "threads=" << threads;
    EXPECT_TRUE(r.canonical_labeling == base.canonical_labeling)
        << "threads=" << threads;
    EXPECT_TRUE(SameGenerators(r.generators, base.generators))
        << "threads=" << threads;
    EXPECT_EQ(TreeFingerprint(r.tree, n), base_print) << "threads=" << threads;
    EXPECT_EQ(GroupOrderOf(n, r.generators), base_order)
        << "threads=" << threads;
  }
}

TEST_P(ParallelDeterminismTest, RepeatedParallelRunsAreStable) {
  // Work stealing makes execution order nondeterministic between runs of the
  // SAME thread count; the output still may not vary.
  const Graph g = GetParam().make();
  const VertexId n = g.NumVertices();

  const DviclResult first = RunWithThreads(g, 4);
  ASSERT_TRUE(first.completed());
  const std::vector<uint64_t> first_print = TreeFingerprint(first.tree, n);

  for (int round = 0; round < 3; ++round) {
    const DviclResult r = RunWithThreads(g, 4);
    ASSERT_TRUE(r.completed()) << "round " << round;
    EXPECT_EQ(r.certificate, first.certificate) << "round " << round;
    EXPECT_TRUE(r.canonical_labeling == first.canonical_labeling)
        << "round " << round;
    EXPECT_TRUE(SameGenerators(r.generators, first.generators))
        << "round " << round;
    EXPECT_EQ(TreeFingerprint(r.tree, n), first_print) << "round " << round;
  }
}

TEST_P(ParallelDeterminismTest, CertCacheHitsAreBitIdentical) {
  // A cache hit replays a memoized leaf result instead of running the IR
  // search; the reconstruction must be indistinguishable from the search it
  // replaced, for every thread count, even though WHICH leaves hit depends
  // on scheduling (only the telemetry counters may vary).
  const Graph g = GetParam().make();
  const VertexId n = g.NumVertices();

  const DviclResult base = RunWithThreads(g, 1, /*cert_cache=*/false);
  ASSERT_TRUE(base.completed());
  const std::vector<uint64_t> base_print = TreeFingerprint(base.tree, n);
  const BigUint base_order = GroupOrderOf(n, base.generators);

  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    const DviclResult r = RunWithThreads(g, threads, /*cert_cache=*/true);
    ASSERT_TRUE(r.completed()) << "threads=" << threads;
    EXPECT_EQ(r.certificate, base.certificate) << "threads=" << threads;
    EXPECT_TRUE(r.canonical_labeling == base.canonical_labeling)
        << "threads=" << threads;
    EXPECT_TRUE(SameGenerators(r.generators, base.generators))
        << "threads=" << threads;
    EXPECT_EQ(TreeFingerprint(r.tree, n), base_print) << "threads=" << threads;
    EXPECT_EQ(GroupOrderOf(n, r.generators), base_order)
        << "threads=" << threads;
  }
}

TEST_P(ParallelDeterminismTest, ArenaLegsAreBitIdentical) {
  // The arena only changes where the refine+IR hot path gets its transient
  // memory from; the canonical outputs — certificate, labeling, generator
  // set, |Aut|, tree bytes — must be identical between the heap leg and the
  // arena leg for every thread count and both cache legs. DVICL_ARENA is
  // cleared for the duration of this test so the explicit DviclOptions::arena
  // setting takes effect even under a CI matrix leg that pins the mode; the
  // pin is restored on exit (including ASSERT early returns).
  struct ScopedClearArenaEnv {
    std::string saved;
    bool had_value = false;
    ScopedClearArenaEnv() {
      if (const char* env = std::getenv("DVICL_ARENA")) {
        saved = env;
        had_value = true;
        unsetenv("DVICL_ARENA");
      }
    }
    ~ScopedClearArenaEnv() {
      if (had_value) setenv("DVICL_ARENA", saved.c_str(), /*overwrite=*/1);
    }
  } clear_env;
  const Graph g = GetParam().make();
  const VertexId n = g.NumVertices();

  const DviclResult base =
      RunWithThreads(g, 1, /*cert_cache=*/false, /*arena=*/false);
  ASSERT_TRUE(base.completed());
  const std::vector<uint64_t> base_print = TreeFingerprint(base.tree, n);
  const BigUint base_order = GroupOrderOf(n, base.generators);

  for (const bool cache : {false, true}) {
    for (uint32_t threads : {1u, 2u, 4u, 8u}) {
      const DviclResult r = RunWithThreads(g, threads, cache, /*arena=*/true);
      ASSERT_TRUE(r.completed())
          << "threads=" << threads << " cache=" << cache;
      EXPECT_EQ(r.certificate, base.certificate)
          << "threads=" << threads << " cache=" << cache;
      EXPECT_TRUE(r.canonical_labeling == base.canonical_labeling)
          << "threads=" << threads << " cache=" << cache;
      EXPECT_TRUE(SameGenerators(r.generators, base.generators))
          << "threads=" << threads << " cache=" << cache;
      EXPECT_EQ(TreeFingerprint(r.tree, n), base_print)
          << "threads=" << threads << " cache=" << cache;
      EXPECT_EQ(GroupOrderOf(n, r.generators), base_order)
          << "threads=" << threads << " cache=" << cache;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ParallelDeterminismTest,
                         ::testing::ValuesIn(DeterminismFamilies()),
                         [](const ::testing::TestParamInfo<Family>& info) {
                           return info.param.name;
                         });

TEST(ParallelDeterminismExtraTest, ZeroMeansHardwareThreadsAndStaysDeterministic) {
  const Graph g = WithTwins(PreferentialAttachmentGraph(120, 3, 5), 0.2, 6);
  const DviclResult base = RunWithThreads(g, 1);
  const DviclResult hw = RunWithThreads(g, 0);  // one thread per hardware thread
  ASSERT_TRUE(base.completed());
  ASSERT_TRUE(hw.completed());
  EXPECT_EQ(hw.certificate, base.certificate);
  EXPECT_TRUE(hw.canonical_labeling == base.canonical_labeling);
  EXPECT_EQ(TreeFingerprint(hw.tree, g.NumVertices()),
            TreeFingerprint(base.tree, g.NumVertices()));
}

TEST(ParallelDeterminismExtraTest, DefaultGrainMatchesTinyGrain) {
  // The granularity knob moves work between inline and dispatched execution;
  // it must not move the answer.
  const Graph g = WithTwinClasses(ErdosRenyiGraph(90, 0.06, 7), 0.3, 4, 8);
  DviclOptions coarse;
  coarse.num_threads = 4;  // default parallel_grain_vertices
  const DviclResult a =
      DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), coarse);
  const DviclResult b = RunWithThreads(g, 4);  // grain 2
  ASSERT_TRUE(a.completed());
  ASSERT_TRUE(b.completed());
  EXPECT_EQ(a.certificate, b.certificate);
  EXPECT_EQ(TreeFingerprint(a.tree, g.NumVertices()),
            TreeFingerprint(b.tree, g.NumVertices()));
}

}  // namespace
}  // namespace dvicl
