#include <gtest/gtest.h>

#include <set>

#include "datasets/benchmark_suite.h"
#include "datasets/generators.h"
#include "datasets/real_suite.h"
#include "dvicl/dvicl.h"
#include "dvicl/simplify.h"
#include "ir/ir_canonical.h"
#include "refine/refiner.h"

namespace dvicl {
namespace {

TEST(GeneratorsTest, ElementaryFamilies) {
  EXPECT_EQ(CycleGraph(10).NumEdges(), 10u);
  EXPECT_EQ(PathGraph(10).NumEdges(), 9u);
  EXPECT_EQ(CompleteGraph(7).NumEdges(), 21u);
  EXPECT_EQ(CompleteBipartiteGraph(3, 4).NumEdges(), 12u);
  EXPECT_EQ(StarGraph(9).NumEdges(), 9u);
  EXPECT_EQ(StarGraph(9).Degree(0), 9u);
}

TEST(GeneratorsTest, TorusIsSixRegular) {
  Graph torus = Torus3dGraph(4);
  EXPECT_EQ(torus.NumVertices(), 64u);
  EXPECT_EQ(torus.NumEdges(), 64u * 6 / 2);
  for (VertexId v = 0; v < torus.NumVertices(); ++v) {
    EXPECT_EQ(torus.Degree(v), 6u);
  }
  // Vertex-transitive: unit coloring stays equitable with one cell.
  Coloring pi = Coloring::Unit(torus.NumVertices());
  RefineToEquitable(torus, &pi);
  EXPECT_EQ(pi.NumCells(), 1u);
}

TEST(GeneratorsTest, HadamardMatchesTable2Shape) {
  // had-n: 4n vertices, degree n+1, 4n(n+1)/2 edges (Table 2: had-256 has
  // 1024 vertices, dmax 257, 131584 edges).
  Graph had = HadamardGraph(16);
  EXPECT_EQ(had.NumVertices(), 64u);
  EXPECT_EQ(had.NumEdges(), 64u * 17 / 2);
  for (VertexId v = 0; v < had.NumVertices(); ++v) {
    EXPECT_EQ(had.Degree(v), 17u);
  }
  Coloring pi = Coloring::Unit(had.NumVertices());
  RefineToEquitable(had, &pi);
  EXPECT_EQ(pi.NumCells(), 1u);  // Table 2: had-256 has 1 cell
}

TEST(GeneratorsTest, CfiPairIsWlEquivalentButNonIsomorphic) {
  Graph straight = CfiGraph(8, /*twisted=*/false);
  Graph twisted = CfiGraph(8, /*twisted=*/true);
  EXPECT_EQ(straight.NumVertices(), twisted.NumVertices());
  EXPECT_EQ(straight.NumEdges(), twisted.NumEdges());

  // 1-WL cannot tell them apart: identical refinement shapes.
  Coloring ps = Coloring::Unit(straight.NumVertices());
  RefineToEquitable(straight, &ps);
  Coloring pt = Coloring::Unit(twisted.NumVertices());
  RefineToEquitable(twisted, &pt);
  EXPECT_EQ(ps.NumCells(), pt.NumCells());

  // But they are non-isomorphic (the whole point of CFI), which the full
  // canonical labelers detect.
  EXPECT_FALSE(DviclIsomorphic(straight, twisted));
}

TEST(GeneratorsTest, CfiUntwistedCopiesAreIsomorphic) {
  Graph a = CfiGraph(8, false);
  Graph b = CfiGraph(8, false);
  EXPECT_TRUE(DviclIsomorphic(a, b));
}

TEST(GeneratorsTest, ProjectivePlaneCounts) {
  // pg2-q: 2(q^2+q+1) vertices, (q+1)-regular.
  for (uint32_t q : {3u, 5u, 7u}) {
    Graph pg = ProjectivePlaneGraph(q);
    const VertexId per_side = q * q + q + 1;
    EXPECT_EQ(pg.NumVertices(), 2 * per_side);
    for (VertexId v = 0; v < pg.NumVertices(); ++v) {
      EXPECT_EQ(pg.Degree(v), q + 1) << "q=" << q << " v=" << v;
    }
    EXPECT_EQ(pg.NumEdges(),
              static_cast<uint64_t>(per_side) * (q + 1));
  }
}

TEST(GeneratorsTest, AffinePlaneCounts) {
  // ag2-q: q^2 points + q^2+q lines, q^2(q+1) edges (Table 2: ag2-49 has
  // 4851 vertices and 120050 edges).
  for (uint32_t q : {3u, 5u, 7u}) {
    Graph ag = AffinePlaneGraph(q);
    EXPECT_EQ(ag.NumVertices(), q * q + q * q + q);
    EXPECT_EQ(ag.NumEdges(), static_cast<uint64_t>(q) * q * (q + 1));
    // Every point lies on q+1 lines; every line has q points.
    for (VertexId v = 0; v < q * q; ++v) EXPECT_EQ(ag.Degree(v), q + 1);
    for (VertexId v = q * q; v < ag.NumVertices(); ++v) {
      EXPECT_EQ(ag.Degree(v), q);
    }
  }
}

TEST(GeneratorsTest, TwinsAreStructurallyEquivalent) {
  Graph base = ErdosRenyiGraph(50, 0.15, 11);
  Graph with_twins = WithTwins(base, 0.2, 12);
  EXPECT_GT(with_twins.NumVertices(), base.NumVertices());
  StructuralEquivalence eq = FindStructuralEquivalence(with_twins);
  EXPECT_FALSE(eq.nontrivial_classes.empty());
}

TEST(GeneratorsTest, TwinClassesHaveHeavyTails) {
  Graph base = PreferentialAttachmentGraph(400, 3, 21);
  Graph g = WithTwinClasses(base, 0.1, 24, 22);
  EXPECT_GT(g.NumVertices(), base.NumVertices());
  StructuralEquivalence eq = FindStructuralEquivalence(g);
  ASSERT_FALSE(eq.nontrivial_classes.empty());
  size_t largest = 0;
  for (const auto& cls : eq.nontrivial_classes) {
    largest = std::max(largest, cls.size());
  }
  // Geometric class sizes: with ~40 classes, one of size >= 4 is
  // essentially certain for this fixed seed.
  EXPECT_GE(largest, 4u);
}

TEST(GeneratorsTest, WheelGadgetsCreateNonSingletonLeaves) {
  Graph base = PreferentialAttachmentGraph(300, 3, 31);
  Graph g = WithWheelGadgets(base, 6, 8, 32);
  EXPECT_EQ(g.NumVertices(), base.NumVertices() + 6 * 8);
  DviclResult r =
      DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
  ASSERT_TRUE(r.completed());
  // The rings survive as small IR leaves (Table 3's web-graph shape). A
  // ring whose anchor collides with another gadget may merge, so require
  // at least half of them.
  EXPECT_GE(r.tree.NumNonSingletonLeaves(), 3u);
  EXPECT_LE(r.tree.AverageNonSingletonLeafSize(), 17.0);
}

TEST(GeneratorsTest, PendantPathsIncreaseVertices) {
  Graph base = ErdosRenyiGraph(40, 0.2, 13);
  Graph with_pendants = WithPendantPaths(base, 0.5, 3, 14);
  EXPECT_GT(with_pendants.NumVertices(), base.NumVertices());
}

TEST(GeneratorsTest, PreferentialAttachmentIsHeavyTailed) {
  Graph g = PreferentialAttachmentGraph(2000, 3, 15);
  EXPECT_EQ(g.NumVertices(), 2000u);
  // Heavy tail: the max degree greatly exceeds the average.
  EXPECT_GT(g.MaxDegree(), 8 * g.AverageDegree());
}

TEST(GeneratorsTest, GeneratorsAreDeterministic) {
  EXPECT_EQ(PreferentialAttachmentGraph(500, 4, 42),
            PreferentialAttachmentGraph(500, 4, 42));
  EXPECT_EQ(CopyingModelGraph(500, 4, 0.5, 42),
            CopyingModelGraph(500, 4, 0.5, 42));
  EXPECT_EQ(CircuitLikeGraph(32, 256, 7), CircuitLikeGraph(32, 256, 7));
}

TEST(SuiteTest, RealSuiteHas22NamedGraphs) {
  auto suite = RealSuite(0.2);
  ASSERT_EQ(suite.size(), 22u);
  std::set<std::string> names;
  for (const auto& entry : suite) {
    names.insert(entry.name);
    EXPECT_GT(entry.graph.NumVertices(), 0u);
    EXPECT_GT(entry.graph.NumEdges(), 0u);
  }
  EXPECT_EQ(names.size(), 22u);
  EXPECT_TRUE(names.count("Amazon"));
  EXPECT_TRUE(names.count("Orkut"));
  EXPECT_TRUE(names.count("Lastfm"));
}

TEST(SuiteTest, BenchmarkSuiteHas9Families) {
  auto suite = BenchmarkSuite(1);
  ASSERT_EQ(suite.size(), 9u);
  for (const auto& entry : suite) {
    EXPECT_GT(entry.graph.NumVertices(), 0u);
  }
}

TEST(SuiteTest, RealSuiteMostlySingletonOrbitCells) {
  // The Table 1 property the suite must preserve: the overwhelming
  // majority of equitable-coloring cells are singletons.
  auto suite = RealSuite(0.1);
  for (size_t i = 0; i < 3; ++i) {  // spot-check a few for test speed
    const Graph& g = suite[i].graph;
    Coloring pi = Coloring::Unit(g.NumVertices());
    RefineToEquitable(g, &pi);
    uint64_t singleton = 0;
    const auto starts = pi.CellStarts();
    for (VertexId s : starts) singleton += (pi.CellSizeAt(s) == 1) ? 1 : 0;
    EXPECT_GT(singleton * 2, starts.size()) << suite[i].name;
  }
}

}  // namespace
}  // namespace dvicl
