// End-to-end tests of the canonicalization service (DESIGN.md §11) over a
// real socketpair loopback: every request class against the golden
// certificate corpus, concurrent-client byte determinism across server
// thread counts, budget degradation, admission-control overload, the
// malformed-frame contract, and the per-run isolation of cancellation and
// budget state (two concurrent runs in one process must not be able to
// cancel or budget-trip each other).

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/wire.h"
#include "datasets/generators.h"
#include "dvicl/dvicl.h"
#include "family_util.h"
#include "perm/perm_group.h"
#include "refine/coloring.h"
#include "server/client.h"
#include "server/server.h"
#include "ssm/ssm_at.h"
#include "test_util.h"

#ifndef DVICL_GOLDEN_DIR
#error "DVICL_GOLDEN_DIR must be defined by tests/CMakeLists.txt"
#endif

namespace dvicl {
namespace server {
namespace {

using testing_util::Family;
using testing_util::GoldenFamilies;

// One loopback connection: a socketpair whose server end is driven by a
// dedicated thread running Server::ServeConnection. Destroying the object
// closes the client end first, which is the clean-EOF the serve loop exits
// on, then joins the thread.
class Loopback {
 public:
  explicit Loopback(Server* server) {
    int fds[2] = {-1, -1};
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    client_ = std::make_unique<Client>(fds[0]);
    thread_ = std::thread([server, fd = fds[1]] {
      server->ServeConnection(fd);
      close(fd);
    });
  }
  ~Loopback() {
    client_.reset();
    if (thread_.joinable()) thread_.join();
  }

  Client& client() { return *client_; }
  int client_fd() const { return client_->fd(); }

 private:
  std::unique_ptr<Client> client_;
  std::thread thread_;
};

Request GraphRequest(RequestClass cls, Graph graph, uint64_t id = 1) {
  Request request;
  request.id = id;
  request.cls = cls;
  request.graph = std::move(graph);
  return request;
}

// Golden corpus entry as parsed from tests/golden/<family>.golden.
struct GoldenEntry {
  std::string aut_order;
  Certificate certificate;
};

GoldenEntry ParseGolden(const std::string& family) {
  const auto path =
      std::filesystem::path(DVICL_GOLDEN_DIR) / (family + ".golden");
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  GoldenEntry entry;
  std::string line;
  size_t cert_words = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "aut_order") {
      fields >> entry.aut_order;
    } else if (key == "certificate") {
      fields >> cert_words;
      break;
    }
  }
  entry.certificate.reserve(cert_words);
  for (size_t i = 0; i < cert_words && std::getline(in, line); ++i) {
    entry.certificate.push_back(std::stoull(line, nullptr, 16));
  }
  EXPECT_EQ(entry.certificate.size(), cert_words) << family;
  return entry;
}

// Cheap corpus families for the multi-replay concurrency sweep: batching
// determinism needs many requests in flight, not hard instances, and the
// suite must stay inside a per-test sanitizer budget (the tsan leg of
// scripts/run_sanitizers.sh runs this binary in full).
const char* const kSmokeFamilies[] = {"Cycle", "Path", "Star",
                                      "PaperFigure1", "PaperFigure3"};

// ---- one request class at a time against the golden corpus -----------------

TEST(ServerGolden, CanonicalFormMatchesGoldenCorpus) {
  Server server{ServerOptions{}};
  Loopback loop(&server);
  uint64_t id = 0;
  for (const Family& family : GoldenFamilies()) {
    const Graph graph = family.make();
    const GoldenEntry golden = ParseGolden(family.name);
    auto result = loop.client().Call(
        GraphRequest(RequestClass::kCanonicalForm, graph, ++id));
    ASSERT_TRUE(result.ok()) << family.name;
    const Reply& reply = result.value();
    ASSERT_TRUE(reply.ok()) << family.name << ": " << reply.detail;
    EXPECT_EQ(reply.id, id);
    EXPECT_EQ(reply.num_vertices, graph.NumVertices()) << family.name;
    EXPECT_EQ(reply.certificate, golden.certificate)
        << family.name << ": served certificate drifted from the corpus";
    // The labeling must be the permutation behind that certificate. The
    // cert's color words hold the root equitable refinement (not the input
    // coloring), so only the edge section — everything after word 2 + n —
    // is rebuildable from the labeling alone.
    const size_t edges_at = 2 + graph.NumVertices();
    ASSERT_EQ(reply.canonical_labeling.size(), graph.NumVertices());
    const Certificate rebuilt =
        MakeCertificate(graph, /*colors=*/{}, reply.canonical_labeling);
    ASSERT_EQ(rebuilt.size(), reply.certificate.size()) << family.name;
    EXPECT_TRUE(std::equal(rebuilt.begin() + edges_at, rebuilt.end(),
                           reply.certificate.begin() + edges_at))
        << family.name << ": labeling does not reproduce the edge section";
  }
}

TEST(ServerGolden, AutOrderMatchesGoldenCorpus) {
  Server server{ServerOptions{}};
  Loopback loop(&server);
  uint64_t id = 0;
  for (const Family& family : GoldenFamilies()) {
    const GoldenEntry golden = ParseGolden(family.name);
    auto result = loop.client().Call(
        GraphRequest(RequestClass::kAutOrder, family.make(), ++id));
    ASSERT_TRUE(result.ok()) << family.name;
    ASSERT_TRUE(result.value().ok())
        << family.name << ": " << result.value().detail;
    EXPECT_EQ(result.value().aut_order, golden.aut_order) << family.name;
  }
}

TEST(ServerGolden, OrbitsMatchBruteForceOracle) {
  Server server{ServerOptions{}};
  Loopback loop(&server);
  // Fig. 1(a) is small enough for the n! oracle: the serving path must
  // agree with orbits computed from ALL automorphisms by brute force.
  const Graph graph = testing_util::PaperFigure1Graph();
  auto result =
      loop.client().Call(GraphRequest(RequestClass::kOrbits, graph, 7));
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().ok()) << result.value().detail;
  const auto oracle = testing_util::OrbitIdsOf(
      graph.NumVertices(), testing_util::BruteForceAutomorphisms(graph));
  EXPECT_EQ(result.value().orbit_ids, oracle);
}

TEST(ServerGolden, IsoTestDecidesRelabeledAndTwistedPairs) {
  Server server{ServerOptions{}};
  Loopback loop(&server);
  // A graph is isomorphic to any relabeling of itself.
  const Graph g = testing_util::RandomGraph(40, 0.2, 99);
  const Permutation gamma = testing_util::RandomPermutation(40, 100);
  std::vector<Edge> relabeled;
  for (const Edge& e : g.Edges()) {
    relabeled.emplace_back(gamma(e.first), gamma(e.second));
  }
  Request iso = GraphRequest(RequestClass::kIsoTest, g, 11);
  iso.graph2 = Graph::FromEdges(40, std::move(relabeled));
  auto result = loop.client().Call(iso);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().ok()) << result.value().detail;
  EXPECT_TRUE(result.value().isomorphic);

  // The CFI pair is 1-WL-equivalent but NOT isomorphic — the adversarial
  // case certificates must separate.
  Request cfi = GraphRequest(RequestClass::kIsoTest, CfiGraph(10, false), 12);
  cfi.graph2 = CfiGraph(10, true);
  result = loop.client().Call(cfi);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().ok()) << result.value().detail;
  EXPECT_FALSE(result.value().isomorphic);

  // Colored: same graphs, different color multisets — decided without a run.
  Request colored = GraphRequest(RequestClass::kIsoTest, g, 13);
  colored.graph2 = g;
  colored.colors.assign(40, 0);
  colored.colors2.assign(40, 0);
  colored.colors[0] = 1;
  result = loop.client().Call(colored);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().ok());
  EXPECT_FALSE(result.value().isomorphic);
}

TEST(ServerGolden, SsmCountMatchesLocalIndex) {
  Server server{ServerOptions{}};
  Loopback loop(&server);
  const Graph graph = testing_util::PaperFigure3Graph();
  const std::vector<VertexId> query = {2, 3};

  DviclOptions options;
  const DviclResult local =
      DviclCanonicalLabeling(graph, Coloring::Unit(graph.NumVertices()),
                             options);
  ASSERT_TRUE(local.completed());
  const SsmIndex index(graph, local);
  const std::string oracle =
      index.CountSymmetricImages(query).ToDecimalString();

  Request request = GraphRequest(RequestClass::kSsmCount, graph, 21);
  request.query = query;
  auto result = loop.client().Call(request);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().ok()) << result.value().detail;
  EXPECT_EQ(result.value().ssm_count, oracle);
}

TEST(ServerGolden, StatsClassReturnsCounterSnapshot) {
  Server server{ServerOptions{}};
  Loopback loop(&server);
  auto first = loop.client().Call(
      GraphRequest(RequestClass::kCanonicalForm, CycleGraph(16), 1));
  ASSERT_TRUE(first.ok());
  Request stats;
  stats.id = 2;
  stats.cls = RequestClass::kServerStats;
  auto result = loop.client().Call(stats);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().ok());
  std::map<std::string, uint64_t> snapshot(result.value().stats.begin(),
                                           result.value().stats.end());
  EXPECT_EQ(snapshot.at("requests.canonical_form"), 1u);
  EXPECT_GE(snapshot.at("requests"), 2u);  // including this stats request
  EXPECT_EQ(snapshot.at("replies_ok"), 1u);  // stats reply not yet written
  EXPECT_EQ(snapshot.at("decode_errors"), 0u);
  EXPECT_TRUE(snapshot.count("cache.hits"));
  EXPECT_TRUE(snapshot.count("pool.threads"));
}

TEST(ServerGolden, SharedCacheServesIsomorphicLeavesAcrossRequests) {
  ServerOptions options;
  options.cert_cache = true;
  Server server(options);
  Loopback loop(&server);
  // Every copy of the gadget forest lowers to the same leaf subproblem;
  // after the first request primed the shared cache, a second identical
  // request must hit it — and still serve golden bytes.
  const GoldenEntry golden = ParseGolden("GadgetForest");
  const Graph graph = GadgetForestGraph(6, 6);
  for (uint64_t id = 1; id <= 2; ++id) {
    auto result = loop.client().Call(
        GraphRequest(RequestClass::kCanonicalForm, graph, id));
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result.value().ok());
    EXPECT_EQ(result.value().certificate, golden.certificate);
  }
  const auto stats = server.StatsSnapshot();
  uint64_t hits = 0;
  for (const auto& [name, value] : stats) {
    if (name == "cache.hits") hits = value;
  }
  EXPECT_GT(hits, 0u) << "second request never reused the shared cache";
}

// ---- concurrent-client determinism -----------------------------------------

// N clients pipeline the same request sequence concurrently; every client's
// decoded replies must be field-identical to a single-client reference, for
// a single-threaded and a wide server alike. (Replies are re-encoded and
// compared as bytes, which is exactly what a client on the wire sees.)
TEST(ServerConcurrency, ClientsSeeByteIdenticalReplies) {
  std::vector<Request> sequence;
  for (const char* name : kSmokeFamilies) {
    for (const Family& family : GoldenFamilies()) {
      if (family.name == name) {
        sequence.push_back(
            GraphRequest(RequestClass::kCanonicalForm, family.make()));
        sequence.push_back(
            GraphRequest(RequestClass::kAutOrder, family.make()));
      }
    }
  }
  ASSERT_FALSE(sequence.empty());

  auto replay = [&sequence](Client* client) {
    // Pipelined: all sends first, so the server actually forms batches.
    std::vector<std::string> encoded;
    for (size_t i = 0; i < sequence.size(); ++i) {
      Request request = sequence[i];
      request.id = i + 1;
      EXPECT_TRUE(client->Send(request).ok());
    }
    for (size_t i = 0; i < sequence.size(); ++i) {
      Reply reply;
      EXPECT_TRUE(client->Receive(&reply).ok());
      EXPECT_EQ(reply.id, i + 1) << "replies must come back in send order";
      std::string bytes;
      EncodeReply(reply, &bytes);
      encoded.push_back(std::move(bytes));
    }
    return encoded;
  };

  // Reference: one client, one server thread.
  std::vector<std::string> reference;
  {
    ServerOptions options;
    options.num_threads = 1;
    Server server(options);
    Loopback loop(&server);
    reference = replay(&loop.client());
  }
  ASSERT_EQ(reference.size(), sequence.size());

  for (uint32_t threads : {1u, 8u}) {
    ServerOptions options;
    options.num_threads = threads;
    Server server(options);
    constexpr int kClients = 4;
    std::vector<std::unique_ptr<Loopback>> loops;
    for (int c = 0; c < kClients; ++c) {
      loops.push_back(std::make_unique<Loopback>(&server));
    }
    std::vector<std::vector<std::string>> outputs(kClients);
    std::vector<std::thread> drivers;
    for (int c = 0; c < kClients; ++c) {
      drivers.emplace_back([&, c] { outputs[c] = replay(&loops[c]->client()); });
    }
    for (std::thread& t : drivers) t.join();
    for (int c = 0; c < kClients; ++c) {
      EXPECT_EQ(outputs[c], reference)
          << "client " << c << " with " << threads
          << " server threads diverged from the single-client reference";
    }
  }
}

// ---- degradation, admission control, framing faults ------------------------

TEST(ServerDegradation, BudgetExceededRequestsGetStructuredErrors) {
  Server server{ServerOptions{}};
  Loopback loop(&server);
  // Per-request deadline of 1µs: the root deadline check always fires.
  Request deadline =
      GraphRequest(RequestClass::kCanonicalForm, MiyazakiLikeGraph(8), 31);
  deadline.deadline_micros = 1;
  auto result = loop.client().Call(deadline);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().status, wire::WireStatus::kDeadline);
  EXPECT_FALSE(result.value().detail.empty());
  EXPECT_TRUE(result.value().certificate.empty())
      << "a partial certificate must never escape";

  // Node budget of 1 on a CFI instance: the leaf IR search trips at once.
  Request nodes =
      GraphRequest(RequestClass::kAutOrder, CfiGraph(10, false), 32);
  nodes.node_budget = 1;
  result = loop.client().Call(nodes);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().status, wire::WireStatus::kNodeBudget);

  // The connection keeps serving after budget errors.
  result = loop.client().Call(
      GraphRequest(RequestClass::kCanonicalForm, CycleGraph(12), 33));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().ok());
}

TEST(ServerDegradation, ClassDefaultBudgetsApplyWithoutOverride) {
  ServerOptions options;
  // Admission control wired to the PR-5 budget machinery: the class default
  // governs requests that carry no override.
  options.budgets[static_cast<uint8_t>(RequestClass::kCanonicalForm)] = {
      /*deadline_micros=*/1, /*node_budget=*/0, /*memory_limit_mib=*/0};
  Server server(options);
  Loopback loop(&server);
  auto result = loop.client().Call(
      GraphRequest(RequestClass::kCanonicalForm, MiyazakiLikeGraph(8), 41));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().status, wire::WireStatus::kDeadline);

  // A per-request override REPLACES the class default.
  Request generous =
      GraphRequest(RequestClass::kCanonicalForm, CycleGraph(12), 42);
  generous.deadline_micros = 30'000'000;
  result = loop.client().Call(generous);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().ok()) << result.value().detail;
}

TEST(ServerDegradation, OverloadedServerRejectsButKeepsServing) {
  ServerOptions options;
  options.max_in_flight = 0;  // zero admission capacity
  Server server(options);
  Loopback loop(&server);
  for (uint64_t id = 1; id <= 3; ++id) {
    auto result = loop.client().Call(
        GraphRequest(RequestClass::kCanonicalForm, CycleGraph(8), id));
    ASSERT_TRUE(result.ok()) << "connection must survive overload";
    EXPECT_EQ(result.value().status, wire::WireStatus::kOverloaded);
    EXPECT_EQ(result.value().id, id);
  }
}

TEST(ServerDegradation, MalformedPayloadGetsErrorAndConnectionSurvives) {
  Server server{ServerOptions{}};
  Loopback loop(&server);
  // A frame whose payload is garbage: framing stays in sync, so the server
  // must answer kInvalidRequest and keep the connection.
  std::string frame;
  wire::AppendFrame("this is not a request", &frame);
  ASSERT_EQ(write(loop.client_fd(), frame.data(), frame.size()),
            static_cast<ssize_t>(frame.size()));
  Reply reply;
  ASSERT_TRUE(loop.client().Receive(&reply).ok());
  EXPECT_EQ(reply.status, wire::WireStatus::kInvalidRequest);
  EXPECT_FALSE(reply.detail.empty());

  auto result = loop.client().Call(
      GraphRequest(RequestClass::kCanonicalForm, CycleGraph(10), 5));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().ok());
}

TEST(ServerDegradation, OversizedLengthPrefixClosesWithMalformedFrame) {
  Server server{ServerOptions{}};
  Loopback loop(&server);
  const char lie[4] = {'\xff', '\xff', '\xff', '\xff'};
  ASSERT_EQ(write(loop.client_fd(), lie, 4), 4);
  Reply reply;
  ASSERT_TRUE(loop.client().Receive(&reply).ok());
  EXPECT_EQ(reply.status, wire::WireStatus::kMalformedFrame);
  // Nothing can follow: the server closed the connection.
  EXPECT_EQ(loop.client().Receive(&reply).code(), Status::Code::kNotFound);
}

// ---- per-run isolation of cancel and budget state --------------------------

// Regression for the per-run-ness of DviclOptions cancellation and the
// memory-budget poller: a doomed run (1µs deadline) aborting concurrently
// in the same process must not cancel or budget-trip an unrelated clean
// run. First at the library layer (two bare threads), then through the
// server (doomed and clean requests interleaved in one batch window).
TEST(ServerIsolation, ConcurrentRunsCannotCancelEachOther) {
  const Graph clean_graph = GadgetForestGraph(3, 3);
  DviclOptions clean_options;
  const DviclResult reference = DviclCanonicalLabeling(
      clean_graph, Coloring::Unit(clean_graph.NumVertices()), clean_options);
  ASSERT_TRUE(reference.completed());

  for (int round = 0; round < 4; ++round) {
    DviclResult clean_result;
    DviclResult doomed_result;
    std::thread doomed([&doomed_result] {
      const Graph g = MiyazakiLikeGraph(8);
      DviclOptions options;
      options.time_limit_seconds = 1e-9;
      doomed_result =
          DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), options);
    });
    std::thread clean([&clean_result, &clean_graph] {
      DviclOptions options;
      clean_result = DviclCanonicalLabeling(
          clean_graph, Coloring::Unit(clean_graph.NumVertices()), options);
    });
    doomed.join();
    clean.join();
    EXPECT_EQ(doomed_result.outcome, RunOutcome::kDeadline);
    ASSERT_TRUE(clean_result.completed())
        << "a doomed run's cancel leaked into a concurrent clean run";
    EXPECT_EQ(clean_result.certificate, reference.certificate);
  }
}

TEST(ServerIsolation, DoomedRequestsCannotTripBatchMates) {
  ServerOptions options;
  options.num_threads = 4;
  Server server(options);
  const Graph clean_graph = GadgetForestGraph(3, 3);
  DviclOptions direct;
  const DviclResult reference = DviclCanonicalLabeling(
      clean_graph, Coloring::Unit(clean_graph.NumVertices()), direct);
  ASSERT_TRUE(reference.completed());

  Loopback loop(&server);
  // One pipelined burst: doomed, clean, doomed, clean ... all land in the
  // same batch window and run concurrently on the pool.
  constexpr int kPairs = 4;
  for (int i = 0; i < kPairs; ++i) {
    Request doomed = GraphRequest(RequestClass::kCanonicalForm,
                                  MiyazakiLikeGraph(8), 100 + 2 * i);
    doomed.deadline_micros = 1;
    ASSERT_TRUE(loop.client().Send(doomed).ok());
    Request clean = GraphRequest(RequestClass::kCanonicalForm, clean_graph,
                                 101 + 2 * i);
    ASSERT_TRUE(loop.client().Send(clean).ok());
  }
  for (int i = 0; i < 2 * kPairs; ++i) {
    Reply reply;
    ASSERT_TRUE(loop.client().Receive(&reply).ok());
    if (reply.id % 2 == 0) {
      EXPECT_EQ(reply.status, wire::WireStatus::kDeadline)
          << "request " << reply.id;
    } else {
      ASSERT_TRUE(reply.ok())
          << "request " << reply.id
          << ": a doomed batch-mate tripped a clean request: "
          << reply.detail;
      EXPECT_EQ(reply.certificate, reference.certificate)
          << "request " << reply.id;
    }
  }
}

// ---- client deadlines and truncation observability -------------------------

TEST(ClientDeadline, SilentPeerTimesOutAndPoisonsTheConnection) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Client client(fds[0]);
  client.set_deadline_ms(100);
  // No server on the peer end: the reply never comes, so the deadline —
  // not a hung read — decides the outcome.
  Reply reply;
  const Status status = client.Receive(&reply);
  EXPECT_EQ(status.code(), Status::Code::kDeadlineExceeded)
      << status.ToString();
  // A timed-out connection may have a half-read frame in flight; it must
  // be poisoned, not reused.
  EXPECT_FALSE(client.connected());
  close(fds[1]);
}

TEST(ClientDeadline, TornFrameIsIOErrorAndPoisonsTheConnection) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Client client(fds[0]);
  client.set_deadline_ms(1000);
  // A length prefix promising 100 bytes, then a crash (close) mid-payload:
  // torn frame, not clean EOF.
  const char prefix[4] = {100, 0, 0, 0};
  ASSERT_EQ(write(fds[1], prefix, 4), 4);
  ASSERT_EQ(write(fds[1], "partial", 7), 7);
  close(fds[1]);
  Reply reply;
  EXPECT_EQ(client.Receive(&reply).code(), Status::Code::kIOError);
  EXPECT_FALSE(client.connected());
}

TEST(ClientDeadline, CleanEofIsNotFoundAndLeavesTheConnectionOpen) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Client client(fds[0]);
  close(fds[1]);  // orderly close at a frame boundary
  Reply reply;
  EXPECT_EQ(client.Receive(&reply).code(), Status::Code::kNotFound);
  // Clean shutdown is not an I/O fault; only the caller decides what a
  // server hangup at a frame boundary means.
  EXPECT_TRUE(client.connected());
}

TEST(ServerObservability, TruncatedFramesAreCountedDistinctFromCleanCloses) {
  Server server{ServerOptions{}};
  const auto truncated = [&server] {
    for (const auto& [key, value] : server.StatsSnapshot()) {
      if (key == "frames_truncated") return value;
    }
    ADD_FAILURE() << "frames_truncated missing from StatsSnapshot";
    return uint64_t{0};
  };

  {
    // Clean close after a served request: no truncation counted.
    Loopback loop(&server);
    ASSERT_TRUE(loop.client()
                    .Call(GraphRequest(RequestClass::kCanonicalForm,
                                       CycleGraph(8)))
                    .ok());
  }
  EXPECT_EQ(truncated(), 0u);

  {
    // Crash mid-frame: prefix promises more than ever arrives.
    Loopback loop(&server);
    const char prefix[4] = {64, 0, 0, 0};
    ASSERT_EQ(write(loop.client_fd(), prefix, 4), 4);
  }  // ~Loopback closes the client end with the frame still torn
  EXPECT_EQ(truncated(), 1u);
}

}  // namespace
}  // namespace server
}  // namespace dvicl
