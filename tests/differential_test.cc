// Differential testing of DviCL against independent oracles: the plain IR
// backend run on the whole graph (IrPreset::kBlissLike, no divide step), the
// direct backtracking isomorphism search, and brute force on small colored
// graphs. The property under test is the paper's Theorem 6.9: certificate
// equality <=> isomorphism, on random colored graphs and permuted copies.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "dvicl/dvicl.h"
#include "graph/certificate.h"
#include "graph/graph.h"
#include "ir/ir_canonical.h"
#include "perm/permutation.h"
#include "refine/coloring.h"
#include "ssm/iso_backtrack.h"
#include "test_util.h"

namespace dvicl {
namespace {

using testing_util::RandomGraph;
using testing_util::RandomPermutation;

Certificate DviclCert(const Graph& g, uint32_t threads = 1) {
  DviclOptions options;
  options.num_threads = threads;
  options.parallel_grain_vertices = 2;
  DviclResult r =
      DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), options);
  EXPECT_TRUE(r.completed());
  return r.certificate;
}

// The oracle: one IR run on the whole graph, no divide-&-conquer involved.
Certificate IrCert(const Graph& g) {
  IrOptions options;
  options.preset = IrPreset::kBlissLike;
  IrResult r = IrCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), options);
  EXPECT_TRUE(r.completed());
  return r.certificate;
}

// Permuted copy: vertex v of `g` becomes gamma(v).
Graph Permuted(const Graph& g, const Permutation& gamma) {
  std::vector<VertexId> image(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) image[v] = gamma(v);
  return g.RelabeledBy(image);
}

TEST(DifferentialTest, PermutedCopiesHaveEqualCertificatesEverywhere) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const Graph g1 = RandomGraph(36, 0.05 + 0.03 * (seed % 5), seed);
    const Graph g2 = Permuted(g1, RandomPermutation(36, seed + 1000));
    EXPECT_EQ(DviclCert(g1), DviclCert(g2)) << "seed " << seed;
    EXPECT_EQ(IrCert(g1), IrCert(g2)) << "seed " << seed;
    bool decided = false;
    EXPECT_TRUE(DviclIsomorphic(g1, g2, {}, &decided)) << "seed " << seed;
    EXPECT_TRUE(decided);
  }
}

TEST(DifferentialTest, VerdictsMatchIrAndBacktrackingOnRandomPairs) {
  // Mixed pool: permuted copies, independent graphs of the same density,
  // and single-edge mutations. All three deciders must return the same
  // verdict on every pair.
  Rng rng(42);
  for (uint64_t seed = 0; seed < 12; ++seed) {
    const VertexId n = 30;
    const Graph g1 = RandomGraph(n, 0.12, seed * 3 + 1);
    Graph g2;
    switch (seed % 3) {
      case 0:
        g2 = Permuted(g1, RandomPermutation(n, seed * 3 + 2));
        break;
      case 1:
        g2 = RandomGraph(n, 0.12, seed * 3 + 2);  // independent sample
        break;
      default: {
        // Drop one random edge from a permuted copy.
        Graph permuted = Permuted(g1, RandomPermutation(n, seed * 3 + 2));
        std::vector<Edge> edges = permuted.Edges();
        if (!edges.empty()) {
          edges.erase(edges.begin() +
                      static_cast<ptrdiff_t>(rng.NextBounded(edges.size())));
        }
        g2 = Graph::FromEdges(n, std::move(edges));
        break;
      }
    }
    const bool dvicl_verdict = DviclCert(g1) == DviclCert(g2);
    const bool ir_verdict = IrCert(g1) == IrCert(g2);
    const bool backtrack_verdict =
        FindIsomorphismBacktracking(g1, g2).has_value();
    EXPECT_EQ(dvicl_verdict, ir_verdict) << "seed " << seed;
    EXPECT_EQ(dvicl_verdict, backtrack_verdict) << "seed " << seed;
    bool decided = false;
    EXPECT_EQ(DviclIsomorphic(g1, g2, {}, &decided), dvicl_verdict)
        << "seed " << seed;
    EXPECT_TRUE(decided);
  }
}

TEST(DifferentialTest, CertificateEqualityClassesMatchIrAcrossAPool) {
  // Stronger than pairwise spot checks: over a pool of graphs, DviCL and IR
  // must induce the SAME partition into isomorphism classes — catching both
  // spurious collisions and spurious splits.
  std::vector<Graph> pool;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph g = RandomGraph(24, 0.15, seed);
    pool.push_back(Permuted(g, RandomPermutation(24, seed + 50)));
    pool.push_back(std::move(g));
  }
  std::vector<Certificate> dvicl_certs;
  std::vector<Certificate> ir_certs;
  for (const Graph& g : pool) {
    dvicl_certs.push_back(DviclCert(g));
    ir_certs.push_back(IrCert(g));
  }
  for (size_t i = 0; i < pool.size(); ++i) {
    for (size_t j = i + 1; j < pool.size(); ++j) {
      EXPECT_EQ(dvicl_certs[i] == dvicl_certs[j], ir_certs[i] == ir_certs[j])
          << "pool pair (" << i << ", " << j << ")";
    }
  }
}

// ---- Colored graphs -------------------------------------------------------

// Brute-force colored-isomorphism decision for tiny graphs: exists gamma
// with g1^gamma = g2 and labels2(gamma(v)) = labels1(v) for all v.
bool BruteForceColoredIsomorphic(const Graph& g1,
                                 std::span<const uint32_t> labels1,
                                 const Graph& g2,
                                 std::span<const uint32_t> labels2) {
  const VertexId n = g1.NumVertices();
  if (g2.NumVertices() != n || g1.NumEdges() != g2.NumEdges()) return false;
  std::vector<VertexId> image(n);
  std::iota(image.begin(), image.end(), 0);
  do {
    bool colors_ok = true;
    for (VertexId v = 0; v < n && colors_ok; ++v) {
      colors_ok = labels2[image[v]] == labels1[v];
    }
    if (colors_ok && g1.RelabeledBy(image) == g2) return true;
  } while (std::next_permutation(image.begin(), image.end()));
  return false;
}

TEST(DifferentialTest, ColoredPermutedCopiesAreIsomorphic) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const VertexId n = 28;
    Rng rng(seed + 700);
    const Graph g1 = RandomGraph(n, 0.15, seed);
    std::vector<uint32_t> labels1(n);
    for (uint32_t& label : labels1) {
      label = static_cast<uint32_t>(rng.NextBounded(3));
    }
    const Permutation gamma = RandomPermutation(n, seed + 800);
    const Graph g2 = Permuted(g1, gamma);
    std::vector<uint32_t> labels2(n);
    for (VertexId v = 0; v < n; ++v) labels2[gamma(v)] = labels1[v];

    bool decided = false;
    EXPECT_TRUE(DviclIsomorphicColored(g1, labels1, g2, labels2, {}, &decided))
        << "seed " << seed;
    EXPECT_TRUE(decided);
  }
}

TEST(DifferentialTest, ColoredLabelMutationVerdictsMatchBruteForce) {
  // Small graphs so the n! oracle is exact. Mutations keep or break the
  // label multiset at random; DviCL's verdict must match brute force either
  // way — including the subtle case where the multiset is preserved but no
  // label-respecting isomorphism exists.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const VertexId n = 7;
    Rng rng(seed + 900);
    const Graph g1 = RandomGraph(n, 0.4, seed + 30);
    std::vector<uint32_t> labels1(n);
    for (uint32_t& label : labels1) {
      label = static_cast<uint32_t>(rng.NextBounded(2));
    }
    const Permutation gamma = RandomPermutation(n, seed + 40);
    const Graph g2 = Permuted(g1, gamma);
    std::vector<uint32_t> labels2(n);
    for (VertexId v = 0; v < n; ++v) labels2[gamma(v)] = labels1[v];
    // Mutate: either swap the labels of two random vertices of g2
    // (multiset-preserving) or overwrite one label (usually not).
    if (rng.NextBernoulli(0.5)) {
      const VertexId a = static_cast<VertexId>(rng.NextBounded(n));
      const VertexId b = static_cast<VertexId>(rng.NextBounded(n));
      std::swap(labels2[a], labels2[b]);
    } else {
      labels2[rng.NextBounded(n)] = static_cast<uint32_t>(rng.NextBounded(2));
    }

    const bool expected = BruteForceColoredIsomorphic(g1, labels1, g2, labels2);
    bool decided = false;
    EXPECT_EQ(DviclIsomorphicColored(g1, labels1, g2, labels2, {}, &decided),
              expected)
        << "seed " << seed;
    EXPECT_TRUE(decided);
  }
}

// ---- Witness + parallel cross-checks --------------------------------------

TEST(DifferentialTest, FindIsomorphismReturnsAValidWitness) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    const VertexId n = 32;
    const Graph g1 = RandomGraph(n, 0.12, seed + 60);
    const Graph g2 = Permuted(g1, RandomPermutation(n, seed + 70));
    Result<Permutation> witness = DviclFindIsomorphism(g1, g2);
    ASSERT_TRUE(witness.ok()) << "seed " << seed;
    std::vector<VertexId> image(n);
    for (VertexId v = 0; v < n; ++v) image[v] = witness.value()(v);
    EXPECT_TRUE(g1.RelabeledBy(image) == g2) << "seed " << seed;
  }
}

// ---- Canonical-form cache three-way ---------------------------------------

Certificate DviclCertCache(const Graph& g, std::span<const uint32_t> colors,
                           bool cache, uint32_t threads = 1) {
  DviclOptions options;
  options.num_threads = threads;
  options.parallel_grain_vertices = 2;
  options.cert_cache = cache;
  const Coloring pi = colors.empty() ? Coloring::Unit(g.NumVertices())
                                     : Coloring::FromLabels(colors);
  DviclResult r = DviclCanonicalLabeling(g, pi, options);
  EXPECT_TRUE(r.completed());
  return r.certificate;
}

Certificate IrCertColored(const Graph& g, std::span<const uint32_t> colors) {
  IrOptions options;
  options.preset = IrPreset::kBlissLike;
  const Coloring pi = colors.empty() ? Coloring::Unit(g.NumVertices())
                                     : Coloring::FromLabels(colors);
  IrResult r = IrCanonicalLabeling(g, pi, options);
  EXPECT_TRUE(r.completed());
  return r.certificate;
}

Graph DisjointUnion(const Graph& a, const Graph& b) {
  std::vector<Edge> edges = a.Edges();
  for (const Edge& e : b.Edges()) {
    edges.emplace_back(e.first + a.NumVertices(), e.second + a.NumVertices());
  }
  return Graph::FromEdges(a.NumVertices() + b.NumVertices(), std::move(edges));
}

TEST(DifferentialTest, CertCacheThreeWayOverMixedPool) {
  // Three-way differential: per graph, the cache-on certificate must be
  // bit-identical to cache-off (a hit reconstructs exactly what the search
  // would produce), and the isomorphism partition induced by DviCL
  // certificates must match the one induced by a whole-graph IR run that
  // never divides and so never consults the cache. The pool deliberately
  // includes colored graphs and disconnected graphs (disjoint unions with a
  // permuted copy — identical components, the cache's best case).
  struct Entry {
    Graph g;
    std::vector<uint32_t> colors;  // empty = unit coloring
  };
  std::vector<Entry> pool;
  for (uint64_t seed = 0; seed < 4; ++seed) {
    const VertexId n = 22;
    const Graph base = RandomGraph(n, 0.14, seed + 500);
    pool.push_back({Permuted(base, RandomPermutation(n, seed + 510)), {}});
    pool.push_back({base, {}});
    pool.push_back(
        {DisjointUnion(base, Permuted(base, RandomPermutation(n, seed + 520))),
         {}});
    // Colored pair: random 2-coloring plus a color-respecting permuted twin.
    Rng rng(seed + 530);
    std::vector<uint32_t> colors(n);
    for (uint32_t& c : colors) c = static_cast<uint32_t>(rng.NextBounded(2));
    const Permutation gamma = RandomPermutation(n, seed + 540);
    std::vector<uint32_t> permuted_colors(n);
    for (VertexId v = 0; v < n; ++v) permuted_colors[gamma(v)] = colors[v];
    pool.push_back({Permuted(base, gamma), std::move(permuted_colors)});
    pool.push_back({base, std::move(colors)});
  }

  std::vector<Certificate> off;
  std::vector<Certificate> on;
  std::vector<Certificate> ir;
  for (const Entry& e : pool) {
    off.push_back(DviclCertCache(e.g, e.colors, /*cache=*/false));
    on.push_back(DviclCertCache(e.g, e.colors, /*cache=*/true));
    ir.push_back(IrCertColored(e.g, e.colors));
  }
  for (size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(off[i], on[i]) << "pool entry " << i;
    for (size_t j = i + 1; j < pool.size(); ++j) {
      EXPECT_EQ(off[i] == off[j], ir[i] == ir[j])
          << "pool pair (" << i << ", " << j << ")";
    }
  }
}

TEST(DifferentialTest, CertCacheParallelMatchesSequentialCacheOff) {
  // threads x cache grid on disconnected symmetric graphs: every
  // combination must produce the sequential cache-off certificate.
  for (uint64_t seed = 0; seed < 4; ++seed) {
    const VertexId n = 18;
    const Graph base = RandomGraph(n, 0.18, seed + 600);
    const Graph g = DisjointUnion(
        DisjointUnion(base, Permuted(base, RandomPermutation(n, seed + 610))),
        Permuted(base, RandomPermutation(n, seed + 620)));
    const Certificate reference = DviclCertCache(g, {}, /*cache=*/false, 1);
    for (uint32_t threads : {1u, 4u}) {
      EXPECT_EQ(DviclCertCache(g, {}, /*cache=*/true, threads), reference)
          << "seed " << seed << " threads " << threads;
    }
    EXPECT_EQ(DviclCertCache(g, {}, /*cache=*/false, 4), reference)
        << "seed " << seed;
  }
}

TEST(DifferentialTest, ParallelVerdictsMatchSequential) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const VertexId n = 34;
    const Graph g1 = RandomGraph(n, 0.1, seed + 80);
    const Graph g2 = seed % 2 == 0
                         ? Permuted(g1, RandomPermutation(n, seed + 90))
                         : RandomGraph(n, 0.1, seed + 91);
    EXPECT_EQ(DviclCert(g1, 4) == DviclCert(g2, 4),
              DviclCert(g1, 1) == DviclCert(g2, 1))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace dvicl
