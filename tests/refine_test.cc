#include <gtest/gtest.h>

#include "refine/coloring.h"
#include "refine/refiner.h"
#include "test_util.h"

namespace dvicl {
namespace {

using testing_util::PaperFigure1Graph;
using testing_util::RandomGraph;
using testing_util::RandomPermutation;

TEST(ColoringTest, UnitColoring) {
  Coloring pi = Coloring::Unit(5);
  EXPECT_EQ(pi.NumCells(), 1u);
  EXPECT_FALSE(pi.IsDiscrete());
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(pi.ColorOf(v), 0u);
  EXPECT_EQ(pi.CellSizeAt(0), 5u);
}

TEST(ColoringTest, FromLabelsOrdersCellsByLabel) {
  const std::vector<uint32_t> labels = {7, 3, 7, 3, 5};
  Coloring pi = Coloring::FromLabels(labels);
  EXPECT_EQ(pi.NumCells(), 3u);
  // Cells ordered by ascending label: {1,3} then {4} then {0,2}.
  EXPECT_EQ(pi.ColorOf(1), 0u);
  EXPECT_EQ(pi.ColorOf(3), 0u);
  EXPECT_EQ(pi.ColorOf(4), 2u);
  EXPECT_EQ(pi.ColorOf(0), 3u);
  EXPECT_EQ(pi.ColorOf(2), 3u);
}

TEST(ColoringTest, SplitCellByKeys) {
  Coloring pi = Coloring::Unit(6);
  const std::vector<uint64_t> keys = {2, 0, 2, 1, 0, 2};
  auto fragments = pi.SplitCellByKeys(0, keys);
  ASSERT_EQ(fragments.size(), 3u);
  EXPECT_EQ(pi.NumCells(), 3u);
  // Fragments ordered by key: {1,4} | {3} | {0,2,5}.
  EXPECT_EQ(pi.CellSizeAt(fragments[0]), 2u);
  EXPECT_EQ(pi.CellSizeAt(fragments[1]), 1u);
  EXPECT_EQ(pi.CellSizeAt(fragments[2]), 3u);
  EXPECT_EQ(pi.ColorOf(3), 2u);
  EXPECT_EQ(pi.ColorOf(0), 3u);
}

TEST(ColoringTest, SplitWithUniformKeysIsNoop) {
  Coloring pi = Coloring::Unit(4);
  const std::vector<uint64_t> keys = {9, 9, 9, 9};
  auto fragments = pi.SplitCellByKeys(0, keys);
  EXPECT_EQ(fragments.size(), 1u);
  EXPECT_EQ(pi.NumCells(), 1u);
}

TEST(ColoringTest, IndividualizePutsSingletonFirst) {
  // Paper §4: individualizing 4 in [0,1,2,3|4,5,6|7] gives
  // [0,1,2,3|4|5,6|7].
  Coloring pi = Coloring::FromLabels(std::vector<uint32_t>{0, 0, 0, 0, 1, 1, 1, 2});
  pi.Individualize(4);
  EXPECT_EQ(pi.NumCells(), 4u);
  EXPECT_EQ(pi.ColorOf(4), 4u);
  EXPECT_EQ(pi.CellSizeAt(4), 1u);
  EXPECT_EQ(pi.ColorOf(5), 5u);
  EXPECT_EQ(pi.ColorOf(6), 5u);
  EXPECT_EQ(pi.CellSizeAt(5), 2u);
}

TEST(ColoringTest, IndividualizeSingletonIsNoop) {
  Coloring pi = Coloring::FromLabels(std::vector<uint32_t>{0, 1, 1});
  const VertexId cells_before = pi.NumCells();
  pi.Individualize(0);
  EXPECT_EQ(pi.NumCells(), cells_before);
}

TEST(ColoringTest, DiscreteToPermutation) {
  Coloring pi = Coloring::FromLabels(std::vector<uint32_t>{3, 1, 2, 0});
  ASSERT_TRUE(pi.IsDiscrete());
  Permutation gamma = pi.ToPermutation();
  // Vertex 3 has smallest label -> position 0, etc.
  EXPECT_EQ(gamma(3), 0u);
  EXPECT_EQ(gamma(1), 1u);
  EXPECT_EQ(gamma(2), 2u);
  EXPECT_EQ(gamma(0), 3u);
}

TEST(RefinerTest, PaperGraphRefinesToTwoCells) {
  // Fig. 1(a) with the unit coloring refines to [0,1,2,3,4,5,6 | 7] — the
  // paper's pi1, which labels the root of the Fig. 1(b) search tree. (The
  // finer pi2 is also equitable, but R produces the coarsest refinement.)
  Graph g = PaperFigure1Graph();
  Coloring pi = Coloring::Unit(8);
  RefineToEquitable(g, &pi);
  EXPECT_TRUE(IsEquitable(g, pi));
  EXPECT_EQ(pi.NumCells(), 2u);
  for (VertexId v = 1; v < 7; ++v) {
    EXPECT_EQ(pi.ColorOf(0), pi.ColorOf(v)) << "v=" << v;
  }
  EXPECT_EQ(pi.CellSizeAt(pi.ColorOf(7)), 1u);
}

TEST(RefinerTest, PaperEquitabilityExamples) {
  Graph g = PaperFigure1Graph();
  // pi1 = [0..6 | 7] is equitable (paper §2).
  Coloring pi1 = Coloring::FromLabels(std::vector<uint32_t>{0, 0, 0, 0, 0, 0, 0, 1});
  EXPECT_TRUE(IsEquitable(g, pi1));
  // pi3 = [0,1,2,3 | 4,5,6,7] is NOT equitable (paper §2).
  Coloring pi3 = Coloring::FromLabels(std::vector<uint32_t>{0, 0, 0, 0, 1, 1, 1, 1});
  EXPECT_FALSE(IsEquitable(g, pi3));
}

TEST(RefinerTest, RegularGraphStaysUnit) {
  // A cycle is 2-regular: the unit coloring is already equitable.
  Graph cycle = Graph::FromEdges(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}});
  Coloring pi = Coloring::Unit(6);
  RefineToEquitable(cycle, &pi);
  EXPECT_EQ(pi.NumCells(), 1u);
}

TEST(RefinerTest, PathGraphRefines) {
  // Path 0-1-2-3-4: ends vs middle; equitable refinement distinguishes
  // distance classes.
  Graph path =
      Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  Coloring pi = Coloring::Unit(5);
  RefineToEquitable(path, &pi);
  EXPECT_TRUE(IsEquitable(path, pi));
  EXPECT_EQ(pi.ColorOf(0), pi.ColorOf(4));
  EXPECT_EQ(pi.ColorOf(1), pi.ColorOf(3));
  EXPECT_EQ(pi.CellSizeAt(pi.ColorOf(2)), 1u);
}

TEST(RefinerTest, RespectsInitialColors) {
  // Same cycle, but one vertex pre-colored differently: refinement must
  // stay finer than the input and becomes discrete on C6 with a fixed
  // vertex only up to reflection (cells {v}, pairs at equal distance).
  Graph cycle = Graph::FromEdges(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}});
  Coloring pi = Coloring::FromLabels(std::vector<uint32_t>{1, 0, 0, 0, 0, 0});
  RefineToEquitable(cycle, &pi);
  EXPECT_TRUE(IsEquitable(cycle, pi));
  EXPECT_EQ(pi.CellSizeAt(pi.ColorOf(0)), 1u);
  EXPECT_EQ(pi.ColorOf(1), pi.ColorOf(5));
  EXPECT_EQ(pi.ColorOf(2), pi.ColorOf(4));
  EXPECT_EQ(pi.CellSizeAt(pi.ColorOf(3)), 1u);
}

// Refinement is isomorphism-invariant: refining G^gamma gives the gamma-image
// of refining G, including cell order. We check the invariant consequence:
// the multiset of (cell size) sequences and each vertex's color offset
// correspond under gamma.
TEST(RefinerTest, InvariantUnderRelabeling) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = RandomGraph(24, 0.2, seed);
    Permutation gamma = RandomPermutation(24, seed + 1000);
    Graph h = g.RelabeledBy(gamma.ImageArray());

    Coloring pig = Coloring::Unit(24);
    RefineToEquitable(g, &pig);
    Coloring pih = Coloring::Unit(24);
    RefineToEquitable(h, &pih);

    for (VertexId v = 0; v < 24; ++v) {
      EXPECT_EQ(pig.ColorOf(v), pih.ColorOf(gamma(v)))
          << "seed=" << seed << " v=" << v;
    }
  }
}

TEST(RefinerTest, IncrementalAfterIndividualization) {
  Graph g = PaperFigure1Graph();
  Coloring pi = Coloring::Unit(8);
  RefineToEquitable(g, &pi);
  // Individualize vertex 0 and refine incrementally; paper §4 says the
  // result for sequence "0" is the equitable [6,5,4|2|1,3|0|7]-shaped
  // partition: {triangle} | {2} | {1,3} | {0} | {7}.
  const VertexId singleton = pi.ColorOf(0);
  const VertexId rest = pi.Individualize(0);
  const VertexId seeds[2] = {singleton, rest};
  RefineFrom(g, &pi, seeds);
  EXPECT_TRUE(IsEquitable(g, pi));
  EXPECT_EQ(pi.NumCells(), 5u);
  EXPECT_EQ(pi.CellSizeAt(pi.ColorOf(0)), 1u);
  EXPECT_EQ(pi.CellSizeAt(pi.ColorOf(2)), 1u);
  EXPECT_EQ(pi.ColorOf(1), pi.ColorOf(3));
  EXPECT_EQ(pi.ColorOf(4), pi.ColorOf(5));
  EXPECT_EQ(pi.ColorOf(4), pi.ColorOf(6));
}

TEST(RefinerTest, EmptyAndSingletonGraphs) {
  Graph empty = Graph::FromEdges(0, {});
  Coloring pi0 = Coloring::Unit(0);
  RefineToEquitable(empty, &pi0);
  EXPECT_EQ(pi0.NumCells(), 0u);

  Graph one = Graph::FromEdges(1, {});
  Coloring pi1 = Coloring::Unit(1);
  RefineToEquitable(one, &pi1);
  EXPECT_TRUE(pi1.IsDiscrete());
}

}  // namespace
}  // namespace dvicl
