// Supervised multi-process serving (DESIGN.md §15): the RestartPolicy
// state machine (backoff schedule, stability reset, circuit breaker —
// injected clock, no sleeping), endpoint-spec parsing, the retrying
// client, and fork-based integration tests of the Supervisor itself:
// crash restart, hung-worker detection, graceful drain, forced kill of a
// wedged worker, circuit-breaker retirement, and (in failpoint builds)
// worker.kill chaos with byte-identical replies throughout.
//
// The fork-based suites run the supervision loop on a test thread and
// fork real worker processes. That is fine under ASan and plain builds,
// but TSan cannot follow fork-from-threaded-process into threaded
// children, so those suites skip themselves under TSan (the sanitizer
// script's failpoint leg runs the full ctest under both).

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "datasets/generators.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/supervisor.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DVICL_TSAN 1
#endif
#endif
#if !defined(DVICL_TSAN) && defined(__SANITIZE_THREAD__)
#define DVICL_TSAN 1
#endif

#ifdef DVICL_TSAN
#define SKIP_IF_TSAN() \
  GTEST_SKIP() << "fork-based supervision tests are incompatible with TSan"
#else
#define SKIP_IF_TSAN() (void)0
#endif

namespace dvicl {
namespace server {
namespace {

// ---- RestartPolicy (pure, injected clock) ----------------------------------

TEST(RestartPolicy, BackoffDoublesFromInitialAndCaps) {
  RestartPolicyOptions options;
  options.backoff_initial_ms = 100;
  options.backoff_max_ms = 800;
  options.stable_after_ms = 1'000'000;  // no resets in this test
  options.max_consecutive_failures = 0;  // no circuit breaker
  RestartPolicy policy(options);
  uint64_t now = 0;
  const uint64_t expected[] = {100, 200, 400, 800, 800, 800};
  for (uint64_t want : expected) {
    policy.OnStart(now);
    now += 1;  // dies instantly
    const RestartPolicy::Decision decision = policy.OnFailure(now);
    EXPECT_TRUE(decision.restart);
    EXPECT_EQ(decision.delay_ms, want)
        << "failure #" << policy.consecutive_failures();
    now += decision.delay_ms;
  }
}

TEST(RestartPolicy, StableUptimeResetsTheFailureStreak) {
  RestartPolicyOptions options;
  options.backoff_initial_ms = 100;
  options.backoff_max_ms = 10'000;
  options.stable_after_ms = 5'000;
  options.max_consecutive_failures = 0;
  RestartPolicy policy(options);
  // Three quick crashes escalate the backoff...
  uint64_t now = 0;
  policy.OnStart(now);
  EXPECT_EQ(policy.OnFailure(now + 10).delay_ms, 100u);
  policy.OnStart(now += 200);
  EXPECT_EQ(policy.OnFailure(now + 10).delay_ms, 200u);
  policy.OnStart(now += 400);
  EXPECT_EQ(policy.OnFailure(now + 10).delay_ms, 400u);
  EXPECT_EQ(policy.consecutive_failures(), 3u);
  // ...then an incarnation that survives past the stability window makes
  // the next crash a fresh incident at the initial delay.
  policy.OnStart(now += 1000);
  const RestartPolicy::Decision after_stable =
      policy.OnFailure(now + 6'000);
  EXPECT_TRUE(after_stable.restart);
  EXPECT_EQ(after_stable.delay_ms, 100u);
  EXPECT_EQ(policy.consecutive_failures(), 1u);
}

TEST(RestartPolicy, CircuitBreakerRetiresAfterMaxConsecutiveFailures) {
  RestartPolicyOptions options;
  options.backoff_initial_ms = 10;
  options.stable_after_ms = 1'000'000;
  options.max_consecutive_failures = 3;
  RestartPolicy policy(options);
  uint64_t now = 0;
  for (int i = 0; i < 2; ++i) {
    policy.OnStart(now);
    EXPECT_TRUE(policy.OnFailure(++now).restart);
    EXPECT_FALSE(policy.retired());
  }
  policy.OnStart(now);
  const RestartPolicy::Decision third = policy.OnFailure(++now);
  EXPECT_FALSE(third.restart);
  EXPECT_TRUE(policy.retired());
  // Once open, the breaker stays open.
  EXPECT_FALSE(policy.OnFailure(++now).restart);
}

// ---- endpoint parsing ------------------------------------------------------

TEST(ParseEndpoints, SinglePortAndFleetSpecs) {
  const auto one = ParseEndpoints("127.0.0.1:7411");
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].host, "127.0.0.1");
  EXPECT_EQ(one[0].port, 7411);

  const auto fleet = ParseEndpoints("127.0.0.1:7411,7412,7413");
  ASSERT_EQ(fleet.size(), 3u);
  for (size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_EQ(fleet[i].host, "127.0.0.1");
    EXPECT_EQ(fleet[i].port, 7411 + i);
  }
}

TEST(ParseEndpoints, MalformedSpecsYieldEmpty) {
  EXPECT_TRUE(ParseEndpoints("").empty());
  EXPECT_TRUE(ParseEndpoints("127.0.0.1").empty());
  EXPECT_TRUE(ParseEndpoints(":7411").empty());
  EXPECT_TRUE(ParseEndpoints("127.0.0.1:").empty());
  EXPECT_TRUE(ParseEndpoints("127.0.0.1:0").empty());
  EXPECT_TRUE(ParseEndpoints("127.0.0.1:7411,").empty());
  EXPECT_TRUE(ParseEndpoints("127.0.0.1:7411,abc").empty());
  EXPECT_TRUE(ParseEndpoints("127.0.0.1:99999").empty());
}

// ---- fork-based integration ------------------------------------------------

// Polls `condition` every 10ms up to `timeout_ms`.
bool WaitFor(const std::function<bool()>& condition, uint64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (condition()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return condition();
}

SupervisorOptions FastOptions(uint32_t workers) {
  SupervisorOptions options;
  options.num_workers = workers;
  options.port = 0;  // ephemeral
  options.verbose = false;
  options.server.num_threads = 2;
  options.restart.backoff_initial_ms = 50;
  options.restart.backoff_max_ms = 400;
  options.heartbeat_interval_ms = 100;
  options.heartbeat_timeout_ms = 250;
  options.heartbeat_max_missed = 2;
  options.drain_grace_ms = 3000;
  options.worker_loop.drain_grace_ms = 500;
  return options;
}

Request CanonicalRequest(uint64_t id) {
  Request request;
  request.id = id;
  request.cls = RequestClass::kCanonicalForm;
  request.graph = GadgetForestGraph(3, 3);
  return request;
}

// Reply bytes with the id zeroed: what every worker and the in-process
// reference must agree on byte-for-byte.
std::string CanonicalReplyBytes(Reply reply) {
  reply.id = 0;
  std::string encoded;
  EncodeReply(reply, &encoded);
  return encoded;
}

std::string ReferenceReplyBytes(const Request& request) {
  Server reference{ServerOptions{}};
  return CanonicalReplyBytes(reference.Handle(request));
}

// Harness: Start() on the test thread, Run() on a worker thread, shutdown
// + join in the destructor (idempotent if the loop already returned).
class RunningSupervisor {
 public:
  explicit RunningSupervisor(const SupervisorOptions& options)
      : supervisor_(options) {
    start_status_ = supervisor_.Start();
    if (start_status_.ok()) {
      thread_ = std::thread([this] { exit_code_ = supervisor_.Run(); });
    }
  }
  ~RunningSupervisor() { Stop(); }

  int Stop() {
    supervisor_.RequestShutdown();
    if (thread_.joinable()) thread_.join();
    return exit_code_;
  }
  // Joins without requesting shutdown (for loops expected to exit on
  // their own, e.g. the circuit breaker).
  int Join() {
    if (thread_.joinable()) thread_.join();
    return exit_code_;
  }

  Supervisor& supervisor() { return supervisor_; }
  const Status& start_status() const { return start_status_; }

 private:
  Supervisor supervisor_;
  Status start_status_;
  std::thread thread_;
  int exit_code_ = -1;
};

TEST(SupervisorIntegration, FleetServesByteIdenticalReplies) {
  SKIP_IF_TSAN();
  RunningSupervisor running(FastOptions(2));
  ASSERT_TRUE(running.start_status().ok()) << running.start_status().ToString();
  ASSERT_EQ(running.supervisor().ports().size(), 2u);

  const Request request = CanonicalRequest(7);
  const std::string expected = ReferenceReplyBytes(request);
  // Every worker must produce the same bytes as the in-process reference.
  for (uint16_t port : running.supervisor().ports()) {
    RobustClient client(ParseEndpoints("127.0.0.1:" + std::to_string(port)));
    auto reply = client.Call(request);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply.value().id, request.id);
    EXPECT_EQ(CanonicalReplyBytes(reply.value()), expected);
  }
  EXPECT_EQ(running.Stop(), 0);
  EXPECT_EQ(running.supervisor().stats().drain_forced_kills.load(), 0u);
}

TEST(SupervisorIntegration, SigkilledWorkerIsRestartedOnItsPort) {
  SKIP_IF_TSAN();
  RunningSupervisor running(FastOptions(2));
  ASSERT_TRUE(running.start_status().ok());
  Supervisor& supervisor = running.supervisor();

  const pid_t original = supervisor.worker_pid(0);
  ASSERT_GT(original, 0);
  ASSERT_EQ(kill(original, SIGKILL), 0);

  ASSERT_TRUE(WaitFor(
      [&] {
        const pid_t pid = supervisor.worker_pid(0);
        return pid > 0 && pid != original;
      },
      5000))
      << "worker 0 was not restarted";
  EXPECT_GE(supervisor.stats().restarts_total.load(), 1u);

  // Same port, fresh process, correct answers.
  const Request request = CanonicalRequest(11);
  RetryOptions retry;
  retry.max_attempts = 5;
  RobustClient client(
      ParseEndpoints("127.0.0.1:" + std::to_string(supervisor.ports()[0])),
      retry);
  auto reply = client.Call(request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(CanonicalReplyBytes(reply.value()), ReferenceReplyBytes(request));
  EXPECT_EQ(running.Stop(), 0);
}

TEST(SupervisorIntegration, HungWorkerIsDetectedKilledAndRestarted) {
  SKIP_IF_TSAN();
  RunningSupervisor running(FastOptions(1));
  ASSERT_TRUE(running.start_status().ok());
  Supervisor& supervisor = running.supervisor();

  const pid_t original = supervisor.worker_pid(0);
  ASSERT_GT(original, 0);
  // Freeze every thread of the worker: exactly the failure shape the
  // heartbeat deadline exists to catch — the parked listener still
  // completes TCP handshakes, but no reply ever comes.
  ASSERT_EQ(kill(original, SIGSTOP), 0);

  ASSERT_TRUE(WaitFor(
      [&] { return supervisor.stats().hung_kills.load() >= 1; }, 10'000))
      << "heartbeat deadline never fired on the stopped worker";
  ASSERT_TRUE(WaitFor(
      [&] {
        const pid_t pid = supervisor.worker_pid(0);
        return pid > 0 && pid != original;
      },
      5000))
      << "hung worker was not replaced";

  const Request request = CanonicalRequest(13);
  RetryOptions retry;
  retry.max_attempts = 5;
  RobustClient client(
      ParseEndpoints("127.0.0.1:" + std::to_string(supervisor.ports()[0])),
      retry);
  auto reply = client.Call(request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(CanonicalReplyBytes(reply.value()), ReferenceReplyBytes(request));
  EXPECT_EQ(running.Stop(), 0);
}

TEST(SupervisorIntegration, GracefulDrainNeedsNoForcedKills) {
  SKIP_IF_TSAN();
  RunningSupervisor running(FastOptions(2));
  ASSERT_TRUE(running.start_status().ok());

  // In-flight traffic right up to the shutdown request.
  RobustClient client(
      ParseEndpoints(running.supervisor().EndpointSpec()));
  for (uint64_t i = 1; i <= 4; ++i) {
    auto reply = client.Call(CanonicalRequest(i));
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  }

  EXPECT_EQ(running.Stop(), 0);
  const SupervisorStats& stats = running.supervisor().stats();
  EXPECT_EQ(stats.drain_forced_kills.load(), 0u);
  EXPECT_EQ(stats.hung_kills.load(), 0u);
}

TEST(SupervisorIntegration, WedgedWorkerIsForceKilledAtDrainDeadline) {
  SKIP_IF_TSAN();
  SupervisorOptions options = FastOptions(1);
  options.heartbeat_interval_ms = 60'000;  // keep the hang undetected
  options.drain_grace_ms = 300;
  RunningSupervisor running(options);
  ASSERT_TRUE(running.start_status().ok());

  const pid_t pid = running.supervisor().worker_pid(0);
  ASSERT_GT(pid, 0);
  // A stopped process never sees SIGTERM, so the drain must escalate.
  ASSERT_EQ(kill(pid, SIGSTOP), 0);

  EXPECT_EQ(running.Stop(), 0);
  EXPECT_GE(running.supervisor().stats().drain_forced_kills.load(), 1u);
}

TEST(SupervisorIntegration, CircuitBreakerRetiresACrashLoopingSlot) {
  SKIP_IF_TSAN();
  SupervisorOptions options = FastOptions(1);
  options.restart.backoff_initial_ms = 20;
  options.restart.max_consecutive_failures = 2;
  options.restart.stable_after_ms = 60'000;  // no streak reset in-test
  RunningSupervisor running(options);
  ASSERT_TRUE(running.start_status().ok());
  Supervisor& supervisor = running.supervisor();
  const uint16_t port = supervisor.ports()[0];

  // Kill every incarnation as it appears until the breaker opens. With
  // max_consecutive_failures=2 the slot dies twice and is retired; the
  // fleet is then empty, so Run() exits 1 on its own.
  pid_t last = -1;
  for (int kills = 0; kills < 2; ++kills) {
    ASSERT_TRUE(WaitFor(
        [&] {
          const pid_t pid = supervisor.worker_pid(0);
          if (pid > 0 && pid != last) {
            last = pid;
            return true;
          }
          return false;
        },
        5000))
        << "incarnation " << kills << " never appeared";
    kill(last, SIGKILL);
  }

  EXPECT_EQ(running.Join(), 1);
  EXPECT_EQ(supervisor.stats().workers_retired.load(), 1u);
  // The retired slot's listener is fully closed: fast connection refusal
  // (the client-side failover signal), not a parked connect.
  EXPECT_FALSE(Client::ConnectTcp("127.0.0.1", port).ok());
}

TEST(SupervisorIntegration, FailpointCrashChaosKeepsRepliesCorrect) {
  SKIP_IF_TSAN();
  if (!failpoint::kEnabled) {
    GTEST_SKIP() << "requires a -DDVICL_FAILPOINTS=ON build";
  }
  SupervisorOptions options = FastOptions(2);
  options.heartbeat_interval_ms = 60'000;  // only traffic advances the site
  // Armed BEFORE Start so every worker inherits the arming with fresh
  // per-process counters: each incarnation serves 5 batches, then
  // SIGKILLs itself mid-batch (torn frames and all).
  failpoint::Arm(failpoint::sites::kWorkerKill,
                 {/*skip_hits=*/5, /*max_triggers=*/1});
  RunningSupervisor running(options);
  ASSERT_TRUE(running.start_status().ok());
  // The parent never evaluates worker sites, but disarm defensively so no
  // later in-process test can trip it.
  failpoint::DisarmAll();

  const Request request = CanonicalRequest(1);
  const std::string expected = ReferenceReplyBytes(request);
  RetryOptions retry;
  retry.max_attempts = 8;
  retry.backoff_initial_ms = 20;
  retry.io_deadline_ms = 5000;
  RobustClient client(ParseEndpoints(running.supervisor().EndpointSpec()),
                      retry);
  uint64_t completed = 0;
  for (uint64_t i = 1; i <= 24; ++i) {
    Request chaos_request = request;
    chaos_request.id = i;
    auto reply = client.Call(chaos_request);
    ASSERT_TRUE(reply.ok())
        << "call " << i << ": " << reply.status().ToString();
    ASSERT_EQ(reply.value().id, i);
    // The chaos gate's core assertion: every completed reply is
    // byte-identical to the single-process reference — crashes may cost
    // retries, never correctness.
    ASSERT_EQ(CanonicalReplyBytes(reply.value()), expected) << "call " << i;
    ++completed;
  }
  EXPECT_EQ(completed, 24u);
  // 24 calls over workers dying every ~6 batches must have crossed at
  // least one crash + restart.
  EXPECT_GE(running.supervisor().stats().restarts_total.load(), 1u);
  EXPECT_GE(client.stats().retries, 1u);
  EXPECT_EQ(running.Stop(), 0);
}

}  // namespace
}  // namespace server
}  // namespace dvicl
