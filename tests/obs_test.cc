// Unit tests for the observability layer (src/obs/): JSON emitter shape and
// escaping, trace span nesting, cross-thread event recording, structural
// JSON validity of the trace and metrics serializations, metric semantics,
// the null-recorder noop mode, and the determinism guard — tracing on/off
// must yield byte-identical canonical outputs at 1 and 4 threads.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "datasets/generators.h"
#include "dvicl/dvicl.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_util.h"

namespace dvicl {
namespace {

using testing_util::IsValidJson;

TEST(JsonWriterTest, NestedContainersAndCommas) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("a");
  w.Uint(1);
  w.Key("b");
  w.BeginArray();
  w.Int(-2);
  w.Double(1.5);
  w.Bool(true);
  w.Null();
  w.BeginObject();
  w.EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.Str(), "{\"a\":1,\"b\":[-2,1.5,true,null,{}]}");
  EXPECT_TRUE(IsValidJson(w.Str()));
}

TEST(JsonWriterTest, EscapesControlCharactersQuotesAndBackslashes) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("k");
  w.String("a\"b\\c\nd\te\x01" "f");  // split so 'f' isn't eaten by \x
  w.EndObject();
  EXPECT_TRUE(IsValidJson(w.Str()));
  EXPECT_NE(w.Str().find("\\\""), std::string::npos);
  EXPECT_NE(w.Str().find("\\\\"), std::string::npos);
  EXPECT_NE(w.Str().find("\\n"), std::string::npos);
  EXPECT_NE(w.Str().find("\\t"), std::string::npos);
  EXPECT_NE(w.Str().find("\\u0001"), std::string::npos);
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeZero) {
  obs::JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.EndArray();
  EXPECT_EQ(w.Str(), "[0,0]");
}

TEST(TraceTest, SpansNestAndSerializeToValidChromeTrace) {
  obs::TraceRecorder recorder;
  {
    obs::TraceSpan outer(&recorder, "outer", "test");
    outer.AddArg("n", 42);
    {
      obs::TraceSpan inner(&recorder, "inner", "test");
      inner.AddArg("k", 7);
      inner.AddArg("j", 8);
      inner.AddArg("ignored", 9);  // beyond the 2-arg cap: dropped
    }
    recorder.AddInstant("tick", "test", {{"x", 1}});
    recorder.AddCounter("gaugey", 123);
  }
  EXPECT_EQ(recorder.NumThreadsSeen(), 1u);
  EXPECT_EQ(recorder.DroppedEvents(), 0u);

  const std::string json = recorder.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"tick\""), std::string::npos);
  EXPECT_NE(json.find("\"gaugey\""), std::string::npos);
  EXPECT_EQ(json.find("\"ignored\""), std::string::npos);
  // Nesting: the inner span lies within the outer one. Both are complete
  // ("X") events; the checker above already validated structure, here we
  // only need both phases present.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

TEST(TraceTest, EventsFromMultipleThreadsGetDistinctTids) {
  obs::TraceRecorder recorder;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder] {
      for (int i = 0; i < 10; ++i) {
        obs::TraceSpan span(&recorder, "work", "test");
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(recorder.NumThreadsSeen(), static_cast<size_t>(kThreads));
  const std::string json = recorder.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  // Every registered thread appears with its own tid track.
  for (int tid = 0; tid < kThreads; ++tid) {
    const std::string needle = "\"tid\":" + std::to_string(tid);
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

TEST(TraceTest, TimestampsAreMonotonePerThread) {
  obs::TraceRecorder recorder;
  uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    const uint64_t now = recorder.NowMicros();
    EXPECT_GE(now, last);
    last = now;
  }
}

TEST(TraceTest, NullRecorderIsANoop) {
  // The disabled-tracing mode every call site relies on: a null recorder
  // must be safe for every TraceSpan operation and cost no side effects.
  obs::TraceSpan span(nullptr, "nothing");
  span.AddArg("k", 1);
  // Destruction of `span` must not crash either; nothing to assert beyond
  // reaching this line.
  SUCCEED();
}

TEST(MetricsTest, CountersGaugesAndHistograms) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("test.counter");
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->Value(), 42u);
  EXPECT_EQ(registry.GetCounter("test.counter"), c);  // stable handle

  registry.GetGauge("test.gauge")->Set(2.5);
  EXPECT_DOUBLE_EQ(registry.GetGauge("test.gauge")->Value(), 2.5);

  obs::Histogram* h = registry.GetHistogram("test.hist");
  h->Record(0);
  h->Record(1);
  h->Record(7);
  h->Record(1000);
  EXPECT_EQ(h->Count(), 4u);
  EXPECT_EQ(h->Sum(), 1008u);
  EXPECT_EQ(h->Min(), 0u);
  EXPECT_EQ(h->Max(), 1000u);
  EXPECT_EQ(h->BucketCount(0), 1u);   // value 0
  EXPECT_EQ(h->BucketCount(1), 1u);   // value 1
  EXPECT_EQ(h->BucketCount(3), 1u);   // 7 has bit width 3
  EXPECT_EQ(h->BucketCount(10), 1u);  // 1000 has bit width 10
}

TEST(MetricsTest, ConcurrentRegistrationAndMutation) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kAdds = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kAdds; ++i) {
        registry.GetCounter("shared.counter")->Add();
        registry.GetHistogram("shared.hist")->Record(
            static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("shared.counter")->Value(),
            static_cast<uint64_t>(kThreads) * kAdds);
  EXPECT_EQ(registry.GetHistogram("shared.hist")->Count(),
            static_cast<uint64_t>(kThreads) * kAdds);
}

TEST(MetricsTest, PercentileOfEmptyHistogramIsZero) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("empty");
  EXPECT_DOUBLE_EQ(h->Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h->Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h->Percentile(1.0), 0.0);
}

TEST(MetricsTest, PercentileOfSingleValueIsExact) {
  // Any quantile of a one-sample distribution is that sample; the [min, max]
  // clamp guarantees exactness even though the bucket is a whole power-of-2
  // range.
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("single");
  h->Record(100);
  EXPECT_DOUBLE_EQ(h->Percentile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(h->Percentile(0.5), 100.0);
  EXPECT_DOUBLE_EQ(h->Percentile(0.99), 100.0);
}

TEST(MetricsTest, PercentileOfAllZerosIsZero) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("zeros");
  for (int i = 0; i < 10; ++i) h->Record(0);
  EXPECT_DOUBLE_EQ(h->Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h->Percentile(1.0), 0.0);
}

TEST(MetricsTest, PercentilesAreMonotoneAndLog2Accurate) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("uniform");
  for (uint64_t v = 1; v <= 1000; ++v) h->Record(v);

  double last = 0.0;
  for (double q : {0.0, 0.10, 0.50, 0.90, 0.99, 1.0}) {
    const double estimate = h->Percentile(q);
    EXPECT_GE(estimate, last) << "q=" << q;  // monotone in q
    EXPECT_GE(estimate, 1.0);
    EXPECT_LE(estimate, 1000.0);  // clamped to [min, max]
    last = estimate;

    // The log2-bucket contract: the estimate lands within the power-of-2
    // bucket of the true order statistic, so it is off by at most 2x.
    const double truth = 1.0 + q * 999.0;
    EXPECT_GE(estimate, truth / 2.0) << "q=" << q;
    EXPECT_LE(estimate, truth * 2.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h->Percentile(1.0), 1000.0);
}

TEST(MetricsTest, SnapshotCountMatchesBucketTotal) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("snap");
  for (uint64_t v : {0ull, 1ull, 7ull, 1000ull, 65536ull}) h->Record(v);
  const obs::HistogramSnapshot snap = h->Snapshot();
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_EQ(snap.sum, 66544u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 65536u);
}

// The dump-vs-record consistency guarantee (TSan exercises the atomics):
// snapshots taken while writers are recording must never expose a torn
// total — in every snapshot, count equals the sum of the buckets, counts
// are monotone across successive snapshots, and the JSON rendering stays
// structurally valid.
TEST(MetricsTest, SnapshotsStayConsistentUnderConcurrentRecording) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("hammer");
  constexpr int kWriters = 4;
  constexpr uint64_t kRecords = 20000;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([h, t] {
      for (uint64_t i = 0; i < kRecords; ++i) {
        h->Record(i << (t % 4));
      }
    });
  }

  uint64_t last_count = 0;
  uint64_t snapshots_taken = 0;
  std::thread reader([&] {
    // do-while: on a loaded machine the writers can finish before this
    // thread is first scheduled; at least one snapshot must still be
    // validated or the EXPECT_GT below races with the scheduler.
    do {
      const obs::HistogramSnapshot snap = h->Snapshot();
      uint64_t bucket_total = 0;
      for (uint64_t b : snap.buckets) bucket_total += b;
      ASSERT_EQ(snap.count, bucket_total);
      ASSERT_GE(snap.count, last_count);  // counts never go backwards
      ASSERT_LE(snap.count, static_cast<uint64_t>(kWriters) * kRecords);
      last_count = snap.count;
      ++snapshots_taken;
      ASSERT_TRUE(IsValidJson(registry.ToJson()));
    } while (!stop.load(std::memory_order_acquire));
  });

  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_GT(snapshots_taken, 0u);
  const obs::HistogramSnapshot final_snap = h->Snapshot();
  EXPECT_EQ(final_snap.count, static_cast<uint64_t>(kWriters) * kRecords);
}

TEST(MetricsTest, RegistrySnapshotAndJsonCarryPercentiles) {
  obs::MetricsRegistry registry;
  registry.GetCounter("c")->Add(3);
  registry.GetGauge("g")->Set(0.5);
  obs::Histogram* h = registry.GetHistogram("lat");
  for (uint64_t v = 1; v <= 100; ++v) h->Record(v);

  const obs::RegistrySnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.counters[0].second, 3u);
  EXPECT_EQ(snap.histograms[0].second.count, 100u);

  const std::string json = registry.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p90\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);

  const std::string text = registry.ToText();
  EXPECT_NE(text.find("p50"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
}

TEST(MetricsTest, JsonAndTextRenderings) {
  obs::MetricsRegistry registry;
  registry.GetCounter("b.counter")->Add(3);
  registry.GetCounter("a.counter")->Add(1);
  registry.GetGauge("g.gauge")->Set(1.25);
  registry.GetHistogram("h.hist")->Record(16);

  const std::string json = registry.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // Sorted names: a.counter precedes b.counter.
  EXPECT_LT(json.find("a.counter"), json.find("b.counter"));

  const std::string text = registry.ToText();
  EXPECT_NE(text.find("a.counter"), std::string::npos);
  EXPECT_NE(text.find("g.gauge"), std::string::npos);
  EXPECT_NE(text.find("h.hist"), std::string::npos);
}

// The determinism guard the DviclOptions doc promises: observability never
// affects canonical output. Same graph, same options except trace/metrics
// and thread count — certificates, labelings and colors must be
// byte-identical across all four combinations.
TEST(ObsDeterminismTest, TracingOnOffYieldsIdenticalCanonicalOutput) {
  Graph g = PreferentialAttachmentGraph(300, 3, 99);
  g = WithTwins(g, 0.1, 100);
  const Coloring unit = Coloring::Unit(g.NumVertices());

  DviclOptions plain;
  const DviclResult baseline = DviclCanonicalLabeling(g, unit, plain);
  ASSERT_TRUE(baseline.completed());

  for (uint32_t threads : {1u, 4u}) {
    obs::TraceRecorder trace;
    obs::MetricsRegistry metrics;
    DviclOptions traced;
    traced.num_threads = threads;
    traced.trace = &trace;
    traced.metrics = &metrics;
    const DviclResult observed = DviclCanonicalLabeling(g, unit, traced);
    ASSERT_TRUE(observed.completed());

    EXPECT_EQ(observed.certificate, baseline.certificate)
        << "threads=" << threads;
    EXPECT_TRUE(observed.canonical_labeling == baseline.canonical_labeling)
        << "threads=" << threads;
    EXPECT_EQ(observed.colors, baseline.colors) << "threads=" << threads;

    // The run actually recorded something and exported its counters.
    EXPECT_GT(trace.NumThreadsSeen(), 0u);
    EXPECT_TRUE(IsValidJson(trace.ToJson()));
    EXPECT_EQ(metrics.GetCounter("dvicl.runs")->Value(), 1u);
    EXPECT_GT(metrics.GetCounter("dvicl.autotree_nodes")->Value(), 0u);
    EXPECT_TRUE(IsValidJson(metrics.ToJson()));
  }
}

// DviclStats cross-checks for the new fields.
TEST(ObsDeterminismTest, StatsCarryWallClockAndRefineWork) {
  const Graph g = WithTwins(PreferentialAttachmentGraph(200, 3, 7), 0.1, 8);
  DviclResult result =
      DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
  ASSERT_TRUE(result.completed());
  EXPECT_GT(result.stats.wall_seconds, 0.0);
  EXPECT_GT(result.stats.refine_splitters, 0u);
  EXPECT_GE(result.stats.refine_cell_splits, 1u);
  // Per-node step timings exist and aggregate consistently.
  EXPECT_GE(result.tree.TotalStepSeconds(), 0.0);
  const auto slowest = result.tree.SlowestNodes(3);
  EXPECT_LE(slowest.size(), 3u);
}

}  // namespace
}  // namespace dvicl
