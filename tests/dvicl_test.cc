#include <gtest/gtest.h>

#include "common/big_uint.h"
#include "dvicl/dvicl.h"
#include "dvicl/simplify.h"
#include "ir/ir_canonical.h"
#include "perm/schreier_sims.h"
#include "test_util.h"

namespace dvicl {
namespace {

using testing_util::BruteForceAutomorphisms;
using testing_util::OrbitIdsOf;
using testing_util::PaperFigure1Graph;
using testing_util::PaperFigure3Graph;
using testing_util::RandomGraph;
using testing_util::RandomPermutation;

DviclResult RunDvicl(const Graph& g, DviclOptions options = {}) {
  return DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), options);
}

BigUint GroupOrderOf(const Graph& g, const std::vector<SparseAut>& gens) {
  SchreierSims chain(g.NumVertices());
  for (const SparseAut& gen : gens) {
    chain.AddGenerator(gen.ToDense(g.NumVertices()));
  }
  return chain.Order();
}

TEST(DviclTest, TrivialGraphs) {
  Graph empty = Graph::FromEdges(0, {});
  DviclResult r = RunDvicl(empty);
  EXPECT_TRUE(r.completed());
  EXPECT_EQ(r.tree.NumNodes(), 1u);

  Graph one = Graph::FromEdges(1, {});
  r = RunDvicl(one);
  EXPECT_TRUE(r.completed());
  EXPECT_TRUE(r.tree.Root().is_leaf);
  EXPECT_EQ(r.canonical_labeling.Size(), 1u);
}

TEST(DviclTest, CanonicalLabelingIsBijection) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph g = RandomGraph(30, 0.15, seed);
    DviclResult r = RunDvicl(g);
    ASSERT_TRUE(r.completed());
    // Permutation's constructor validates bijectivity in debug; also check
    // the certificate header.
    EXPECT_EQ(r.canonical_labeling.Size(), 30u);
    EXPECT_EQ(r.certificate[0], 30u);
    EXPECT_EQ(r.certificate[1], g.NumEdges());
  }
}

TEST(DviclTest, CertificateInvariantUnderRelabeling) {
  for (uint64_t seed = 0; seed < 12; ++seed) {
    Graph g = RandomGraph(20, 0.2, seed);
    Permutation gamma = RandomPermutation(20, seed + 500);
    Graph h = g.RelabeledBy(gamma.ImageArray());
    DviclResult rg = RunDvicl(g);
    DviclResult rh = RunDvicl(h);
    ASSERT_TRUE(rg.completed() && rh.completed());
    EXPECT_EQ(rg.certificate, rh.certificate) << "seed=" << seed;
  }
}

TEST(DviclTest, CertificateInvariantOnSymmetricGraphs) {
  // Highly symmetric fixtures where the divide machinery actually fires.
  const Graph fixtures[] = {PaperFigure1Graph(), PaperFigure3Graph()};
  for (const Graph& g : fixtures) {
    DviclResult base = RunDvicl(g);
    ASSERT_TRUE(base.completed());
    for (uint64_t seed = 0; seed < 8; ++seed) {
      Permutation gamma = RandomPermutation(g.NumVertices(), seed);
      Graph h = g.RelabeledBy(gamma.ImageArray());
      DviclResult rh = RunDvicl(h);
      ASSERT_TRUE(rh.completed());
      EXPECT_EQ(base.certificate, rh.certificate) << "seed=" << seed;
    }
  }
}

TEST(DviclTest, IsomorphismDecisionsAgreeWithIr) {
  // DviCL (the k-th minimum labeling) and plain IR (the minimum labeling)
  // produce different canonical forms but must agree as iso-deciders.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Graph g1 = RandomGraph(12, 0.3, seed);
    Graph g2 = RandomGraph(12, 0.3, seed + 50);
    const bool ir_iso =
        IrCanonicalLabeling(g1, Coloring::Unit(12), {}).certificate ==
        IrCanonicalLabeling(g2, Coloring::Unit(12), {}).certificate;
    bool decided = false;
    const bool dvicl_iso = DviclIsomorphic(g1, g2, {}, &decided);
    ASSERT_TRUE(decided);
    EXPECT_EQ(ir_iso, dvicl_iso) << "seed=" << seed;
  }
}

TEST(DviclTest, DetectsIsomorphicPairs) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Graph g = RandomGraph(25, 0.18, seed);
    Graph h = g.RelabeledBy(RandomPermutation(25, seed + 9).ImageArray());
    EXPECT_TRUE(DviclIsomorphic(g, h));
  }
}

TEST(DviclTest, DistinguishesNonIsomorphicSameDegreeSequence) {
  // Two 3-regular graphs on 6 vertices: K_3,3 and the prism (C3 x K2).
  Graph k33 = Graph::FromEdges(6, {{0, 3}, {0, 4}, {0, 5},
                                   {1, 3}, {1, 4}, {1, 5},
                                   {2, 3}, {2, 4}, {2, 5}});
  Graph prism = Graph::FromEdges(6, {{0, 1}, {1, 2}, {2, 0},
                                     {3, 4}, {4, 5}, {5, 3},
                                     {0, 3}, {1, 4}, {2, 5}});
  EXPECT_FALSE(DviclIsomorphic(k33, prism));
}

TEST(DviclTest, GeneratorsAreAutomorphisms) {
  const Graph fixtures[] = {PaperFigure1Graph(), PaperFigure3Graph(),
                            RandomGraph(20, 0.2, 1), RandomGraph(40, 0.1, 2)};
  for (const Graph& g : fixtures) {
    DviclResult r = RunDvicl(g);
    ASSERT_TRUE(r.completed());
    for (const SparseAut& gen : r.generators) {
      EXPECT_TRUE(IsAutomorphism(g, gen.ToDense(g.NumVertices())));
    }
  }
}

TEST(DviclTest, GroupOrderMatchesBruteForceOnSmallGraphs) {
  for (uint64_t seed = 0; seed < 12; ++seed) {
    Graph g = RandomGraph(7, 0.3, seed);
    const auto brute = BruteForceAutomorphisms(g);
    DviclResult r = RunDvicl(g);
    ASSERT_TRUE(r.completed());
    EXPECT_EQ(GroupOrderOf(g, r.generators), BigUint(brute.size()))
        << "seed=" << seed;
  }
}

TEST(DviclTest, OrbitsMatchBruteForceOnSmallGraphs) {
  for (uint64_t seed = 0; seed < 12; ++seed) {
    Graph g = RandomGraph(7, 0.35, seed);
    const auto brute = BruteForceAutomorphisms(g);
    const auto expected = OrbitIdsOf(7, brute);
    DviclResult r = RunDvicl(g);
    ASSERT_TRUE(r.completed());
    const auto actual = OrbitIdsFromGenerators(7, r.generators);
    EXPECT_EQ(actual, expected) << "seed=" << seed;
  }
}

TEST(DviclTest, PaperGraphGroupOrderIs48) {
  Graph g = PaperFigure1Graph();
  DviclResult r = RunDvicl(g);
  ASSERT_TRUE(r.completed());
  EXPECT_EQ(GroupOrderOf(g, r.generators), BigUint(48));
}

TEST(DviclTest, Figure3GraphGroupOrderIs72) {
  Graph g = PaperFigure3Graph();
  DviclResult r = RunDvicl(g);
  ASSERT_TRUE(r.completed());
  EXPECT_EQ(GroupOrderOf(g, r.generators), BigUint(72));
}

TEST(DviclTest, AllLeafBackendsProduceSameTreeShape) {
  // Paper Table 3: "for the same graph, three DviCL+X algorithms construct
  // the same AutoTree".
  Graph g = PaperFigure3Graph();
  DviclOptions options;
  options.leaf_backend = IrPreset::kNautyLike;
  DviclResult rn = RunDvicl(g, options);
  options.leaf_backend = IrPreset::kBlissLike;
  DviclResult rb = RunDvicl(g, options);
  options.leaf_backend = IrPreset::kTracesLike;
  DviclResult rt = RunDvicl(g, options);
  EXPECT_EQ(rn.tree.NumNodes(), rb.tree.NumNodes());
  EXPECT_EQ(rb.tree.NumNodes(), rt.tree.NumNodes());
  EXPECT_EQ(rn.tree.Depth(), rt.tree.Depth());
}

TEST(DviclTest, AblationDisablingDividesStillCanonical) {
  Graph g = PaperFigure1Graph();
  DviclOptions no_divide;
  no_divide.enable_divide_i = false;
  no_divide.enable_divide_s = false;
  DviclResult r = RunDvicl(g, no_divide);
  ASSERT_TRUE(r.completed());
  // Degenerates to one leaf = whole graph.
  EXPECT_EQ(r.tree.NumNodes(), 1u);
  EXPECT_TRUE(r.tree.Root().is_leaf);
  // Still a correct canonical form and full group.
  EXPECT_EQ(GroupOrderOf(g, r.generators), BigUint(48));
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Graph h = g.RelabeledBy(RandomPermutation(8, seed).ImageArray());
    DviclResult rh = RunDvicl(h, no_divide);
    EXPECT_EQ(r.certificate, rh.certificate);
  }
}

TEST(DviclTest, AblationDivideSOnlyStillCanonical) {
  // With DivideI disabled, DivideS must shoulder the whole division —
  // including the special case of singleton cells (complete bipartite with
  // a one-vertex side, the paper's "DivideI is a special case of
  // Lemma 6.3").
  const Graph fixtures[] = {PaperFigure1Graph(), PaperFigure3Graph()};
  DviclOptions s_only;
  s_only.enable_divide_i = false;
  for (const Graph& g : fixtures) {
    DviclResult base = RunDvicl(g, s_only);
    ASSERT_TRUE(base.completed());
    for (const SparseAut& gen : base.generators) {
      EXPECT_TRUE(IsAutomorphism(g, gen.ToDense(g.NumVertices())));
    }
    for (uint64_t seed = 0; seed < 4; ++seed) {
      Graph h = g.RelabeledBy(
          RandomPermutation(g.NumVertices(), seed + 60).ImageArray());
      DviclResult rh = RunDvicl(h, s_only);
      ASSERT_TRUE(rh.completed());
      EXPECT_EQ(base.certificate, rh.certificate);
    }
  }
  // Group order still exact on the paper graph.
  DviclResult r = RunDvicl(PaperFigure1Graph(), s_only);
  EXPECT_EQ(GroupOrderOf(PaperFigure1Graph(), r.generators), BigUint(48));
}

TEST(DviclTest, DisconnectedGraphs) {
  // Two disjoint triangles: the root must divide into symmetric parts.
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {0, 2},
                                 {3, 4}, {4, 5}, {3, 5}});
  DviclResult r = RunDvicl(g);
  ASSERT_TRUE(r.completed());
  EXPECT_EQ(GroupOrderOf(g, r.generators), BigUint(72));  // S3 wr S2
  const auto orbit = OrbitIdsFromGenerators(6, r.generators);
  for (VertexId v = 1; v < 6; ++v) EXPECT_EQ(orbit[v], orbit[0]);
}

TEST(DviclTest, ColoredGraphsRespectInitialColoring) {
  // Disjoint triangles with different colors cannot be swapped.
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {0, 2},
                                 {3, 4}, {4, 5}, {3, 5}});
  Coloring pi = Coloring::FromLabels(std::vector<uint32_t>{0, 0, 0, 1, 1, 1});
  DviclResult r = DviclCanonicalLabeling(g, pi, {});
  ASSERT_TRUE(r.completed());
  EXPECT_EQ(GroupOrderOf(g, r.generators), BigUint(36));  // S3 x S3
}

TEST(DviclTest, ColoredIsomorphismSemantics) {
  // Path 0-1-2 with the end colored red vs the same path with the middle
  // colored red: NOT color-isomorphic even though the graphs are.
  Graph path = Graph::FromEdges(3, {{0, 1}, {1, 2}});
  const std::vector<uint32_t> end_red = {1, 0, 0};
  const std::vector<uint32_t> mid_red = {0, 1, 0};
  EXPECT_TRUE(DviclIsomorphicColored(path, end_red, path, end_red));
  EXPECT_FALSE(DviclIsomorphicColored(path, end_red, path, mid_red));
  // Other end colored: color-isomorphic via the reflection.
  const std::vector<uint32_t> other_end = {0, 0, 1};
  EXPECT_TRUE(DviclIsomorphicColored(path, end_red, path, other_end));
  // Same cell STRUCTURE but different label values must not match.
  const std::vector<uint32_t> red5 = {5, 0, 0};
  const std::vector<uint32_t> red7 = {7, 0, 0};
  EXPECT_FALSE(DviclIsomorphicColored(path, red5, path, red7));
  EXPECT_TRUE(DviclIsomorphicColored(path, red5, path,
                                     std::vector<uint32_t>{0, 0, 5}));
}

TEST(DviclTest, ColoredIsomorphismUnderRelabeling) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph g = RandomGraph(15, 0.25, seed);
    std::vector<uint32_t> labels(15);
    for (VertexId v = 0; v < 15; ++v) labels[v] = v % 4;
    Permutation gamma = RandomPermutation(15, seed + 11);
    Graph h = g.RelabeledBy(gamma.ImageArray());
    std::vector<uint32_t> h_labels(15);
    for (VertexId v = 0; v < 15; ++v) h_labels[gamma(v)] = labels[v];
    EXPECT_TRUE(DviclIsomorphicColored(g, labels, h, h_labels))
        << "seed=" << seed;
    // Swapping two color classes may or may not preserve colored
    // isomorphism, but the relation must be symmetric and reflexive.
    std::vector<uint32_t> swapped(labels);
    for (uint32_t& c : swapped) c = (c == 0) ? 1 : (c == 1 ? 0 : c);
    EXPECT_EQ(DviclIsomorphicColored(g, labels, g, swapped),
              DviclIsomorphicColored(g, swapped, g, labels));
    EXPECT_TRUE(DviclIsomorphicColored(g, swapped, g, swapped));
  }
}

TEST(SimplifyTest, FindsTwinClassesInPaperGraph) {
  // Fig. 1(a): {0,2} and {1,3} are the structural equivalence classes.
  Graph g = PaperFigure1Graph();
  StructuralEquivalence eq = FindStructuralEquivalence(g);
  ASSERT_EQ(eq.nontrivial_classes.size(), 2u);
  EXPECT_EQ(eq.nontrivial_classes[0], (std::vector<VertexId>{0, 2}));
  EXPECT_EQ(eq.nontrivial_classes[1], (std::vector<VertexId>{1, 3}));
  EXPECT_EQ(eq.class_id[2], 0u);
  EXPECT_EQ(eq.class_id[3], 1u);
  EXPECT_EQ(eq.class_id[4], 4u);
}

TEST(SimplifyTest, SimplifiedCertificateInvariantUnderRelabeling) {
  const Graph fixtures[] = {PaperFigure1Graph(), PaperFigure3Graph(),
                            RandomGraph(18, 0.25, 4)};
  for (const Graph& g : fixtures) {
    SimplifiedDviclResult base =
        DviclWithSimplification(g, Coloring::Unit(g.NumVertices()), {});
    ASSERT_TRUE(base.completed());
    for (uint64_t seed = 0; seed < 6; ++seed) {
      Permutation gamma = RandomPermutation(g.NumVertices(), seed + 31);
      Graph h = g.RelabeledBy(gamma.ImageArray());
      SimplifiedDviclResult rh =
          DviclWithSimplification(h, Coloring::Unit(h.NumVertices()), {});
      ASSERT_TRUE(rh.completed());
      EXPECT_EQ(base.certificate, rh.certificate);
    }
  }
}

TEST(SimplifyTest, SimplifiedGeneratorsAreAutomorphisms) {
  const Graph fixtures[] = {PaperFigure1Graph(), PaperFigure3Graph()};
  for (const Graph& g : fixtures) {
    SimplifiedDviclResult r =
        DviclWithSimplification(g, Coloring::Unit(g.NumVertices()), {});
    ASSERT_TRUE(r.completed());
    for (const SparseAut& gen : r.generators) {
      EXPECT_TRUE(IsAutomorphism(g, gen.ToDense(g.NumVertices())));
    }
  }
}

TEST(SimplifyTest, SimplifiedGroupOrderMatchesBruteForce) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = RandomGraph(7, 0.3, seed);
    const auto brute = BruteForceAutomorphisms(g);
    SimplifiedDviclResult r =
        DviclWithSimplification(g, Coloring::Unit(7), {});
    ASSERT_TRUE(r.completed());
    EXPECT_EQ(GroupOrderOf(g, r.generators), BigUint(brute.size()))
        << "seed=" << seed;
  }
}

TEST(SimplifyTest, QuotientSmallerThanOriginalWithTwins) {
  Graph g = PaperFigure1Graph();
  SimplifiedDviclResult r =
      DviclWithSimplification(g, Coloring::Unit(8), {});
  ASSERT_TRUE(r.completed());
  EXPECT_EQ(r.simplified_graph.NumVertices(), 6u);  // 8 - 2 twins
}

}  // namespace
}  // namespace dvicl
