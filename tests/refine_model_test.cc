// Model-based tests for the optimized refinement path: the production
// refiner (worklist + Hopcroft rule + sparse tail-group splits) must
// compute exactly the same PARTITION as a naive reference implementation
// (fixed-point iteration, full re-sorts) on a broad sweep of graphs and
// initial colorings. The two orders cells differently (both canonically);
// order-invariance of the production refiner is covered by
// RefinerTest.InvariantUnderRelabeling.

#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "datasets/generators.h"
#include "common/rng.h"
#include "refine/coloring.h"
#include "refine/refiner.h"
#include "test_util.h"

namespace dvicl {
namespace {

using testing_util::PaperFigure1Graph;
using testing_util::RandomGraph;
using testing_util::RandomPermutation;

// Reference refiner: repeat until stable — for every ordered pair of cells
// (splitter S, target C), split C by neighbor counts in S, ascending, with
// fragments replacing C in place. Quadratic and obviously correct.
class ReferenceRefiner {
 public:
  explicit ReferenceRefiner(const Graph& graph) : graph_(graph) {}

  // cells: ordered list of vertex sets.
  std::vector<std::vector<VertexId>> Run(
      std::vector<std::vector<VertexId>> cells) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t s = 0; s < cells.size() && !changed; ++s) {
        for (size_t c = 0; c < cells.size() && !changed; ++c) {
          changed = TrySplit(cells, s, c);
        }
      }
    }
    return cells;
  }

 private:
  bool TrySplit(std::vector<std::vector<VertexId>>& cells, size_t splitter,
                size_t target) {
    std::map<uint64_t, std::vector<VertexId>> groups;
    for (VertexId v : cells[target]) {
      uint64_t count = 0;
      for (VertexId w : cells[splitter]) {
        count += graph_.HasEdge(v, w) ? 1 : 0;
      }
      groups[count].push_back(v);
    }
    if (groups.size() <= 1) return false;
    std::vector<std::vector<VertexId>> fragments;
    for (auto& [count, members] : groups) {
      fragments.push_back(std::move(members));
    }
    cells.erase(cells.begin() + static_cast<ptrdiff_t>(target));
    cells.insert(cells.begin() + static_cast<ptrdiff_t>(target),
                 fragments.begin(), fragments.end());
    return true;
  }

  const Graph& graph_;
};

// Extracts the ordered partition of a Coloring as sorted vertex sets.
std::vector<std::vector<VertexId>> CellsOf(const Coloring& pi) {
  std::vector<std::vector<VertexId>> cells;
  for (VertexId start : pi.CellStarts()) {
    auto span = pi.CellVerticesAt(start);
    std::vector<VertexId> cell(span.begin(), span.end());
    std::sort(cell.begin(), cell.end());
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::vector<std::vector<VertexId>> AsPartition(
    std::vector<std::vector<VertexId>> cells) {
  for (auto& cell : cells) std::sort(cell.begin(), cell.end());
  std::sort(cells.begin(), cells.end());
  return cells;
}

void CheckAgainstReference(const Graph& g, const Coloring& initial) {
  Coloring pi = initial;
  RefineToEquitable(g, &pi);
  ASSERT_TRUE(IsEquitable(g, pi));

  ReferenceRefiner reference(g);
  const auto expected = AsPartition(reference.Run(CellsOf(initial)));
  const auto actual = AsPartition(CellsOf(pi));
  EXPECT_EQ(actual, expected);
}

TEST(RefineModelTest, UnitColoringOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 15; ++seed) {
    Graph g = RandomGraph(18, 0.1 + 0.05 * static_cast<double>(seed % 5),
                          seed);
    CheckAgainstReference(g, Coloring::Unit(18));
  }
}

TEST(RefineModelTest, ColoredInputsOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = RandomGraph(16, 0.25, seed);
    std::vector<uint32_t> labels(16);
    for (VertexId v = 0; v < 16; ++v) {
      labels[v] = static_cast<uint32_t>((v + seed) % 3);
    }
    CheckAgainstReference(g, Coloring::FromLabels(labels));
  }
}

TEST(RefineModelTest, StructuredFamilies) {
  const Graph graphs[] = {
      PaperFigure1Graph(),
      CycleGraph(12),
      PathGraph(13),
      StarGraph(9),
      CompleteBipartiteGraph(3, 5),
      Torus3dGraph(2),
      WithTwins(RandomGraph(12, 0.3, 3), 0.4, 4),
      RandomTreeGraph(15, 5),
  };
  for (const Graph& g : graphs) {
    CheckAgainstReference(g, Coloring::Unit(g.NumVertices()));
  }
}

TEST(RefineModelTest, IndividualizedRefinement) {
  // After individualizing a vertex, incremental refinement must match the
  // reference run started from the individualized partition.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Graph g = RandomGraph(14, 0.25, seed);
    Coloring pi = Coloring::Unit(14);
    RefineToEquitable(g, &pi);
    const VertexId v = static_cast<VertexId>(seed % 14);
    const VertexId singleton = pi.ColorOf(v);
    const VertexId rest = pi.Individualize(v);

    // Snapshot the individualized (pre-refinement) partition.
    const auto start_cells = CellsOf(pi);

    const VertexId seeds[2] = {singleton, rest};
    RefineFrom(g, &pi, seeds);
    ASSERT_TRUE(IsEquitable(g, pi));

    ReferenceRefiner reference(g);
    EXPECT_EQ(AsPartition(CellsOf(pi)),
              AsPartition(reference.Run(start_cells)))
        << "seed=" << seed;
  }
}

TEST(RefineModelTest, SparseSplitMatchesFullSplitSemantics) {
  // Direct unit check of SplitCellByTailGroups against SplitCellByKeys.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    testing_util::RandomGraph(1, 0, 0);  // no-op, keep seeds aligned
    Rng rng(seed);
    const VertexId n = 12;
    std::vector<uint64_t> keys(n, 0);
    size_t num_nonzero = 1 + rng.NextBounded(n - 1);
    std::vector<VertexId> order(n);
    std::iota(order.begin(), order.end(), 0);
    rng.Shuffle(&order);
    for (size_t i = 0; i < num_nonzero; ++i) {
      keys[order[i]] = 1 + rng.NextBounded(3);
    }

    Coloring full = Coloring::Unit(n);
    auto frag_full = full.SplitCellByKeys(0, keys);

    Coloring sparse = Coloring::Unit(n);
    std::vector<std::pair<uint64_t, VertexId>> counted;
    for (VertexId v = 0; v < n; ++v) {
      if (keys[v] != 0) counted.emplace_back(keys[v], v);
    }
    std::sort(counted.begin(), counted.end());
    auto frag_sparse = sparse.SplitCellByTailGroups(0, counted);

    // Same fragment boundaries and same vertex->cell assignment.
    ASSERT_EQ(frag_full, frag_sparse) << "seed=" << seed;
    for (VertexId v = 0; v < n; ++v) {
      EXPECT_EQ(full.ColorOf(v), sparse.ColorOf(v)) << "v=" << v;
    }
    EXPECT_EQ(full.NumCells(), sparse.NumCells());
  }
}

}  // namespace
}  // namespace dvicl
