// Parameterized property tests: for a sweep of graph families x seeds, the
// whole pipeline must satisfy its contracts — certificate invariance under
// relabeling, decider agreement between DviCL, plain IR and simplified
// DviCL, validity of every emitted automorphism, and agreement of orbit
// partitions and group orders between independent implementations.

#include <gtest/gtest.h>

#include <string>

#include "common/big_uint.h"
#include "datasets/generators.h"
#include "dvicl/dvicl.h"
#include "dvicl/simplify.h"
#include "ir/ir_canonical.h"
#include "perm/schreier_sims.h"
#include "test_util.h"

namespace dvicl {
namespace {

using testing_util::RandomGraph;
using testing_util::RandomPermutation;

struct FamilyCase {
  std::string name;
  Graph (*make)(uint64_t seed);
};

Graph MakeErSparse(uint64_t seed) { return RandomGraph(28, 0.08, seed); }
Graph MakeErDense(uint64_t seed) { return RandomGraph(18, 0.45, seed); }
Graph MakePa(uint64_t seed) {
  return PreferentialAttachmentGraph(60, 3, seed);
}
Graph MakePaTwins(uint64_t seed) {
  return WithTwins(PreferentialAttachmentGraph(50, 3, seed), 0.25, seed + 1);
}
Graph MakeCopying(uint64_t seed) {
  return CopyingModelGraph(50, 3, 0.7, seed);
}
Graph MakePendants(uint64_t seed) {
  return WithPendantPaths(RandomGraph(25, 0.15, seed), 0.6, 4, seed + 1);
}
Graph MakeCycle(uint64_t seed) {
  return CycleGraph(10 + static_cast<VertexId>(seed % 7));
}
Graph MakeTorus(uint64_t seed) {
  return Torus3dGraph(3 + static_cast<VertexId>(seed % 2));
}
Graph MakeCfi(uint64_t seed) { return CfiGraph(6 + 2 * (seed % 3), seed % 2); }
Graph MakeHadamard(uint64_t) { return HadamardGraph(8); }
Graph MakePlane(uint64_t seed) {
  return (seed % 2) ? ProjectivePlaneGraph(3) : AffinePlaneGraph(3);
}
Graph MakeDisjointTwins(uint64_t seed) {
  // Two disjoint copies of a random graph: guaranteed component symmetry.
  Graph base = RandomGraph(12, 0.25, seed);
  std::vector<Edge> edges = base.Edges();
  for (const Edge& e : base.Edges()) {
    edges.emplace_back(e.first + 12, e.second + 12);
  }
  return Graph::FromEdges(24, std::move(edges));
}
Graph MakeCircuit(uint64_t seed) { return CircuitLikeGraph(8, 60, seed); }

const FamilyCase kFamilies[] = {
    {"er_sparse", MakeErSparse},   {"er_dense", MakeErDense},
    {"pref_attach", MakePa},       {"pa_twins", MakePaTwins},
    {"copying", MakeCopying},      {"pendants", MakePendants},
    {"cycle", MakeCycle},          {"torus", MakeTorus},
    {"cfi", MakeCfi},              {"hadamard", MakeHadamard},
    {"plane", MakePlane},          {"disjoint_twins", MakeDisjointTwins},
    {"circuit", MakeCircuit},
};

class PipelineProperty
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {
 protected:
  const FamilyCase& Family() const {
    return kFamilies[std::get<0>(GetParam())];
  }
  uint64_t Seed() const { return std::get<1>(GetParam()); }
  Graph MakeGraph() const { return Family().make(Seed()); }
};

TEST_P(PipelineProperty, DviclCertificateInvariantUnderRelabeling) {
  Graph g = MakeGraph();
  DviclResult base =
      DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
  ASSERT_TRUE(base.completed());
  for (uint64_t r = 0; r < 3; ++r) {
    Permutation gamma = RandomPermutation(g.NumVertices(), Seed() * 17 + r);
    Graph h = g.RelabeledBy(gamma.ImageArray());
    DviclResult other =
        DviclCanonicalLabeling(h, Coloring::Unit(h.NumVertices()), {});
    ASSERT_TRUE(other.completed());
    EXPECT_EQ(base.certificate, other.certificate) << "relabel " << r;
  }
}

TEST_P(PipelineProperty, TreeShapeInvariantUnderRelabeling) {
  // Theorem 6.6: isomorphic graphs get structurally identical AutoTrees.
  Graph g = MakeGraph();
  DviclResult base =
      DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
  ASSERT_TRUE(base.completed());
  Permutation gamma = RandomPermutation(g.NumVertices(), Seed() + 999);
  Graph h = g.RelabeledBy(gamma.ImageArray());
  DviclResult other =
      DviclCanonicalLabeling(h, Coloring::Unit(h.NumVertices()), {});
  ASSERT_TRUE(other.completed());
  EXPECT_EQ(base.tree.NumNodes(), other.tree.NumNodes());
  EXPECT_EQ(base.tree.Depth(), other.tree.Depth());
  EXPECT_EQ(base.tree.NumSingletonLeaves(), other.tree.NumSingletonLeaves());
  EXPECT_EQ(base.tree.NumNonSingletonLeaves(),
            other.tree.NumNonSingletonLeaves());
}

TEST_P(PipelineProperty, GeneratorsAreAutomorphisms) {
  Graph g = MakeGraph();
  DviclResult r =
      DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
  ASSERT_TRUE(r.completed());
  for (const SparseAut& gen : r.generators) {
    EXPECT_TRUE(IsAutomorphism(g, gen.ToDense(g.NumVertices())));
  }
}

TEST_P(PipelineProperty, IrGeneratorsAreAutomorphisms) {
  Graph g = MakeGraph();
  if (g.NumVertices() > 80) GTEST_SKIP() << "IR too slow for this size";
  IrResult r = IrCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
  ASSERT_TRUE(r.completed());
  for (const Permutation& gen : r.automorphism_generators) {
    EXPECT_TRUE(IsAutomorphism(g, gen));
  }
}

TEST_P(PipelineProperty, DviclAndIrGroupOrdersAgree) {
  Graph g = MakeGraph();
  if (g.NumVertices() > 80) GTEST_SKIP() << "Schreier-Sims too slow";
  DviclResult dv =
      DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
  IrResult ir = IrCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
  ASSERT_TRUE(dv.completed());
  ASSERT_TRUE(ir.completed());

  SchreierSims dv_chain(g.NumVertices());
  for (const SparseAut& gen : dv.generators) {
    dv_chain.AddGenerator(gen.ToDense(g.NumVertices()));
  }
  SchreierSims ir_chain(g.NumVertices());
  for (const Permutation& gen : ir.automorphism_generators) {
    ir_chain.AddGenerator(gen);
  }
  EXPECT_EQ(dv_chain.Order(), ir_chain.Order())
      << "family=" << Family().name << " seed=" << Seed();
}

TEST_P(PipelineProperty, DviclAndIrOrbitsAgree) {
  Graph g = MakeGraph();
  if (g.NumVertices() > 80) GTEST_SKIP();
  DviclResult dv =
      DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
  IrResult ir = IrCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
  ASSERT_TRUE(dv.completed() && ir.completed());
  const auto dv_orbits =
      OrbitIdsFromGenerators(g.NumVertices(), dv.generators);
  PermGroup ir_group(g.NumVertices());
  for (const Permutation& gen : ir.automorphism_generators) {
    ir_group.AddGenerator(gen);
  }
  EXPECT_EQ(dv_orbits, ir_group.OrbitIds())
      << "family=" << Family().name << " seed=" << Seed();
}

TEST_P(PipelineProperty, SimplifiedDviclAgreesAsDecider) {
  Graph g = MakeGraph();
  SimplifiedDviclResult a =
      DviclWithSimplification(g, Coloring::Unit(g.NumVertices()), {});
  ASSERT_TRUE(a.completed());
  // Relabeled copy: must match.
  Permutation gamma = RandomPermutation(g.NumVertices(), Seed() + 5);
  Graph h = g.RelabeledBy(gamma.ImageArray());
  SimplifiedDviclResult b =
      DviclWithSimplification(h, Coloring::Unit(h.NumVertices()), {});
  ASSERT_TRUE(b.completed());
  EXPECT_EQ(a.certificate, b.certificate);
}

TEST_P(PipelineProperty, CanonicalLabelingRelabelsToIdenticalGraph) {
  // C(G) is a concrete graph: relabeling G by gamma* then relabeling any
  // isomorphic copy by ITS gamma* must give the identical labeled graph.
  Graph g = MakeGraph();
  DviclResult rg =
      DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
  Permutation gamma = RandomPermutation(g.NumVertices(), Seed() + 8);
  Graph h = g.RelabeledBy(gamma.ImageArray());
  DviclResult rh =
      DviclCanonicalLabeling(h, Coloring::Unit(h.NumVertices()), {});
  ASSERT_TRUE(rg.completed() && rh.completed());
  EXPECT_EQ(g.RelabeledBy(rg.canonical_labeling.ImageArray()),
            h.RelabeledBy(rh.canonical_labeling.ImageArray()));
}

INSTANTIATE_TEST_SUITE_P(
    Families, PipelineProperty,
    ::testing::Combine(::testing::Range<size_t>(0, std::size(kFamilies)),
                       ::testing::Values<uint64_t>(1, 2, 3)),
    [](const ::testing::TestParamInfo<std::tuple<size_t, uint64_t>>& info) {
      return kFamilies[std::get<0>(info.param)].name + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// Small-graph sweep against brute force: sizes where all n! permutations
// can be enumerated.
class BruteForceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BruteForceProperty, FullPipelineMatchesBruteForce) {
  const uint64_t seed = GetParam();
  for (double p : {0.2, 0.4, 0.6}) {
    Graph g = RandomGraph(7, p, seed);
    const auto brute = testing_util::BruteForceAutomorphisms(g);

    DviclResult dv = DviclCanonicalLabeling(g, Coloring::Unit(7), {});
    ASSERT_TRUE(dv.completed());
    SchreierSims chain(7);
    for (const SparseAut& gen : dv.generators) {
      chain.AddGenerator(gen.ToDense(7));
    }
    EXPECT_EQ(chain.Order(), BigUint(brute.size()))
        << "seed=" << seed << " p=" << p;
    // Every brute-force automorphism is in the generated group.
    for (const Permutation& a : brute) {
      EXPECT_TRUE(chain.Contains(a)) << "missing " << a.ToCycleString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BruteForceProperty,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace dvicl
