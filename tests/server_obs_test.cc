// End-to-end tests of the serving observability pipeline (DESIGN.md §12)
// over socketpair loopbacks: access-log schema and rid discipline across a
// mixed run (every request class, an over-budget request, a malformed
// frame), rid agreement between the access log and the request-level trace
// spans, the slow-request flight recorder (fires for heavy work, stays
// quiet for light work, both trigger dimensions), the kServerMetrics
// exposition surface, and the request_obs=0 disarmed mode.

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/wire.h"
#include "datasets/generators.h"
#include "obs/trace.h"
#include "server/client.h"
#include "server/server.h"
#include "test_util.h"

namespace dvicl {
namespace server {
namespace {

using testing_util::IsValidJson;

// One loopback connection: a socketpair whose server end is driven by a
// dedicated thread running Server::ServeConnection (same pattern as
// server_test.cc). Destroying the object closes the client end — the
// clean-EOF the serve loop exits on — then joins the thread, after which
// every access-log record and trace span of the connection is finalized.
class Loopback {
 public:
  explicit Loopback(Server* server) {
    int fds[2] = {-1, -1};
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    client_ = std::make_unique<Client>(fds[0]);
    thread_ = std::thread([server, fd = fds[1]] {
      server->ServeConnection(fd);
      close(fd);
    });
  }
  ~Loopback() {
    client_.reset();
    if (thread_.joinable()) thread_.join();
  }

  Client& client() { return *client_; }
  int client_fd() const { return client_->fd(); }

 private:
  std::unique_ptr<Client> client_;
  std::thread thread_;
};

Request GraphRequest(RequestClass cls, Graph graph, uint64_t id) {
  Request request;
  request.id = id;
  request.cls = cls;
  request.graph = std::move(graph);
  return request;
}

// A scratch directory under the system temp root, wiped on construction.
// The pid suffix keeps concurrently running test binaries (the sanitizer
// legs run this binary alongside ctest) out of each other's way.
std::filesystem::path ScratchDir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("dvicl_server_obs_" + tag + "_" +
                    std::to_string(static_cast<long>(getpid())));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<std::string> ReadLines(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

// Crude field extraction for the single-line flat JSON objects the access
// log emits (keys are known and values are numbers, bools, or plain
// strings — no nesting, no escapes in practice).
bool HasKey(const std::string& json, const std::string& key) {
  return json.find("\"" + key + "\":") != std::string::npos;
}

uint64_t JsonUint(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in " << json;
  if (pos == std::string::npos) return 0;
  return std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
}

std::string JsonString(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const size_t pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in " << json;
  if (pos == std::string::npos) return "";
  const size_t start = pos + needle.size();
  const size_t end = json.find('"', start);
  return json.substr(start, end - start);
}

bool JsonBool(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in " << json;
  return pos != std::string::npos &&
         json.compare(pos + needle.size(), 4, "true") == 0;
}

// Every "server.request" span's rid argument, in buffer order.
std::vector<uint64_t> RequestSpanRids(const std::string& trace_json) {
  std::vector<uint64_t> rids;
  const std::string span = "\"name\":\"server.request\"";
  const std::string rid_key = "\"rid\":";
  size_t pos = 0;
  while ((pos = trace_json.find(span, pos)) != std::string::npos) {
    const size_t rid_pos = trace_json.find(rid_key, pos);
    EXPECT_NE(rid_pos, std::string::npos);
    if (rid_pos == std::string::npos) break;
    rids.push_back(std::strtoull(
        trace_json.c_str() + rid_pos + rid_key.size(), nullptr, 10));
    pos = rid_pos;
  }
  return rids;
}

// The access-record schema from DESIGN.md §12; every record must carry
// every key.
const char* const kAccessKeys[] = {
    "rid",          "id",          "class",        "status",
    "ok",           "queue_us",    "exec_us",      "total_us",
    "arrival_us",   "request_bytes", "reply_bytes", "cache_hit",
    "cache_hits",   "cache_misses", "leaf_ir_nodes",
};

TEST(ServerObsTest, AccessLogSchemaRidsAndTraceAgreeOverMixedRun) {
  const auto dir = ScratchDir("mixed");
  const auto log_path = dir / "access.jsonl";

  obs::TraceRecorder trace;
  ServerOptions options;
  options.num_threads = 2;
  options.access_log_path = log_path.string();
  options.trace = &trace;
  Server server(options);
  ASSERT_NE(server.access_log(), nullptr);
  ASSERT_TRUE(server.access_log()->ok());

  size_t sent = 0;
  {
    Loopback loop(&server);

    // Every request class once, sequentially on one connection, so rids
    // are assigned in send order.
    auto expect_ok = [&](const Request& request) {
      auto reply = loop.client().Call(request);
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      EXPECT_TRUE(reply.value().ok()) << reply.value().detail;
      ++sent;
    };
    expect_ok(GraphRequest(RequestClass::kCanonicalForm, CycleGraph(16), 1));
    {
      Request iso = GraphRequest(RequestClass::kIsoTest, CfiGraph(6, false), 2);
      iso.graph2 = CfiGraph(6, false);
      expect_ok(iso);
    }
    expect_ok(GraphRequest(RequestClass::kAutOrder, StarGraph(12), 3));
    expect_ok(GraphRequest(RequestClass::kOrbits,
                           CompleteBipartiteGraph(4, 4), 4));
    {
      Request ssm = GraphRequest(RequestClass::kSsmCount, CycleGraph(12), 5);
      ssm.query = {0, 1};
      expect_ok(ssm);
    }
    {
      Request stats;
      stats.id = 6;
      stats.cls = RequestClass::kServerStats;
      expect_ok(stats);
    }
    {
      Request metrics;
      metrics.id = 7;
      metrics.cls = RequestClass::kServerMetrics;
      expect_ok(metrics);
    }

    // Over-budget request: a 1-node budget trips immediately and must be
    // access-logged as a non-ok record, not dropped.
    {
      Request doomed =
          GraphRequest(RequestClass::kAutOrder, CfiGraph(10, false), 8);
      doomed.node_budget = 1;
      auto reply = loop.client().Call(doomed);
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      EXPECT_FALSE(reply.value().ok());
      ++sent;
    }

    // Malformed payload: decodes fail, the connection survives, and the
    // frame still gets a rid and an access-log record.
    {
      std::string frame;
      wire::AppendFrame("this is not a canonicalization request", &frame);
      ASSERT_EQ(write(loop.client_fd(), frame.data(), frame.size()),
                static_cast<ssize_t>(frame.size()));
      Reply reply;
      ASSERT_TRUE(loop.client().Receive(&reply).ok());
      EXPECT_FALSE(reply.ok());
      EXPECT_EQ(reply.status, wire::WireStatus::kInvalidRequest);
      ++sent;
    }
  }  // join the serve thread: all records finalized

  const std::vector<std::string> lines = ReadLines(log_path);
  ASSERT_EQ(lines.size(), sent);
  EXPECT_EQ(server.access_log()->records_written(), sent);

  std::set<uint64_t> rids;
  uint64_t last_rid = 0;
  for (const std::string& line : lines) {
    EXPECT_TRUE(IsValidJson(line)) << line;
    for (const char* key : kAccessKeys) {
      EXPECT_TRUE(HasKey(line, key)) << key << " missing in " << line;
    }
    const uint64_t rid = JsonUint(line, "rid");
    EXPECT_GT(rid, last_rid) << "rids not strictly monotone: " << line;
    last_rid = rid;
    rids.insert(rid);
    // The timing decomposition holds per record (total spans until after
    // the reply write, so it dominates; +2 absorbs per-field flooring).
    EXPECT_LE(JsonUint(line, "queue_us") + JsonUint(line, "exec_us"),
              JsonUint(line, "total_us") + 2)
        << line;
  }
  ASSERT_EQ(rids.size(), sent);

  // Per-class and per-outcome spot checks, in send order.
  EXPECT_EQ(JsonString(lines[0], "class"), "canonical_form");
  EXPECT_EQ(JsonString(lines[1], "class"), "iso_test");
  EXPECT_TRUE(JsonBool(lines[1], "ok"));
  EXPECT_EQ(JsonString(lines[6], "class"), "server_metrics");
  EXPECT_EQ(JsonString(lines[7], "class"), "aut_order");
  EXPECT_FALSE(JsonBool(lines[7], "ok"));  // over-budget
  EXPECT_EQ(JsonString(lines[7], "status"), "node_budget");
  EXPECT_FALSE(JsonBool(lines[8], "ok"));  // undecodable payload
  EXPECT_EQ(JsonString(lines[8], "status"), "invalid_request");
  // The iso test runs the engine twice; its record carries engine work.
  EXPECT_GT(JsonUint(lines[1], "leaf_ir_nodes"), 0u);

  // The request-level spans tell the same story: one server.request span
  // per dispatched request (the malformed frame is never dispatched), each
  // carrying the same rid the access log recorded.
  const std::string trace_json = trace.ToJson();
  EXPECT_TRUE(IsValidJson(trace_json));
  const std::vector<uint64_t> span_rids = RequestSpanRids(trace_json);
  const std::set<uint64_t> span_rid_set(span_rids.begin(), span_rids.end());
  EXPECT_EQ(span_rids.size(), span_rid_set.size());
  for (const uint64_t rid : span_rid_set) {
    EXPECT_TRUE(rids.count(rid)) << "span rid " << rid
                                 << " missing from the access log";
  }
  // Engine spans from the pool threads land in the same trace.
  EXPECT_NE(trace_json.find("server.exec"), std::string::npos);

  // The stats surface exports the record count.
  std::map<std::string, uint64_t> stats;
  for (const auto& [name, value] : server.StatsSnapshot()) {
    stats[name] = value;
  }
  EXPECT_EQ(stats["obs.access_log_records"], sent);
  EXPECT_EQ(stats["obs.flights_recorded"], 0u);  // no flight dir configured
}

TEST(ServerObsTest, FlightRecorderNodeThresholdFiresForHeavyNotLight) {
  const auto dir = ScratchDir("flight_nodes");
  const auto flight_dir = dir / "flights";
  const auto log_path = dir / "access.jsonl";

  ServerOptions options;
  options.num_threads = 1;
  options.access_log_path = log_path.string();
  // CfiGraph(80) costs hundreds of leaf IR nodes, CycleGraph(16) a handful
  // — the 100-node threshold separates them deterministically, with no
  // wall-clock dependence.
  options.flight.dir = flight_dir.string();
  options.flight.node_threshold = 100;
  Server server(options);
  ASSERT_TRUE(server.flight_recorder()->enabled());

  {
    Loopback loop(&server);
    auto light = loop.client().Call(
        GraphRequest(RequestClass::kCanonicalForm, CycleGraph(16), 1));
    ASSERT_TRUE(light.ok());
    EXPECT_TRUE(light.value().ok());
    auto heavy = loop.client().Call(
        GraphRequest(RequestClass::kCanonicalForm, CfiGraph(80, false), 2));
    ASSERT_TRUE(heavy.ok());
    EXPECT_TRUE(heavy.value().ok());
  }

  EXPECT_EQ(server.flight_recorder()->recorded(), 1u);
  std::vector<std::filesystem::path> flights;
  for (const auto& entry : std::filesystem::directory_iterator(flight_dir)) {
    flights.push_back(entry.path());
  }
  ASSERT_EQ(flights.size(), 1u);

  // The flight file is self-contained: the access record plus the full
  // engine trace of that request, valid JSON, named after the rid.
  const std::vector<std::string> lines = ReadLines(log_path);
  ASSERT_EQ(lines.size(), 2u);
  const uint64_t heavy_rid = JsonUint(lines[1], "rid");
  EXPECT_EQ(flights[0].filename().string(),
            "flight_" + std::to_string(heavy_rid) + ".json");

  std::ifstream in(flights[0]);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string flight_json = buffer.str();
  EXPECT_TRUE(IsValidJson(flight_json)) << flight_json;
  EXPECT_TRUE(HasKey(flight_json, "access"));
  EXPECT_TRUE(HasKey(flight_json, "trace"));
  EXPECT_EQ(JsonUint(flight_json, "rid"), heavy_rid);
  EXPECT_NE(flight_json.find("traceEvents"), std::string::npos);

  std::map<std::string, uint64_t> stats;
  for (const auto& [name, value] : server.StatsSnapshot()) {
    stats[name] = value;
  }
  EXPECT_EQ(stats["obs.flights_recorded"], 1u);
}

TEST(ServerObsTest, FlightRecorderLatencyThresholdBothExtremes) {
  // 1µs threshold: every compute request is "slow". A sky-high threshold:
  // none is. Together they pin the latency trigger without depending on
  // real wall-clock behavior.
  for (const bool fires : {true, false}) {
    const auto dir = ScratchDir(fires ? "flight_lat1" : "flight_lat2");
    ServerOptions options;
    options.num_threads = 1;
    options.flight.dir = (dir / "flights").string();
    options.flight.latency_threshold_us = fires ? 1 : 3'600'000'000ull;
    Server server(options);
    {
      Loopback loop(&server);
      auto reply = loop.client().Call(
          GraphRequest(RequestClass::kCanonicalForm, CycleGraph(16), 1));
      ASSERT_TRUE(reply.ok());
      EXPECT_TRUE(reply.value().ok());
    }
    EXPECT_EQ(server.flight_recorder()->recorded(), fires ? 1u : 0u);
  }
}

TEST(ServerObsTest, MetricsExpositionCarriesPerClassPercentiles) {
  ServerOptions options;
  options.num_threads = 2;
  Server server(options);

  constexpr int kRequests = 8;
  {
    Loopback loop(&server);
    for (int i = 0; i < kRequests; ++i) {
      auto reply = loop.client().Call(GraphRequest(
          RequestClass::kCanonicalForm, CycleGraph(16), 10 + i));
      ASSERT_TRUE(reply.ok());
      EXPECT_TRUE(reply.value().ok());
    }

    auto metrics = loop.client().FetchMetrics(99);
    ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
    ASSERT_TRUE(metrics.value().ok()) << metrics.value().detail;
    EXPECT_EQ(metrics.value().cls, RequestClass::kServerMetrics);

    // The full registry dump rides along as JSON with percentile keys.
    EXPECT_TRUE(IsValidJson(metrics.value().metrics_json));
    EXPECT_NE(metrics.value().metrics_json.find("\"p99\""),
              std::string::npos);

    std::map<std::string, uint64_t> flat;
    for (const auto& [name, value] : metrics.value().stats) {
      flat[name] = value;
    }
    // Per-class histograms are flattened as <name>.<stat>; the measurement
    // pipeline saw exactly the compute requests sent above.
    ASSERT_TRUE(flat.count("server.total_us.canonical_form.count"));
    EXPECT_EQ(flat["server.total_us.canonical_form.count"],
              static_cast<uint64_t>(kRequests));
    EXPECT_LE(flat["server.total_us.canonical_form.p50"],
              flat["server.total_us.canonical_form.p99"]);
    EXPECT_LE(flat["server.total_us.canonical_form.p99"],
              flat["server.total_us.canonical_form.max"]);
    EXPECT_GE(flat["server.total_us.canonical_form.p50"],
              flat["server.total_us.canonical_form.min"]);
    ASSERT_TRUE(flat.count("server.queue_wait_us.canonical_form.count"));
    ASSERT_TRUE(flat.count("server.exec_us.canonical_form.count"));
    ASSERT_TRUE(flat.count("server.request_bytes.canonical_form.count"));
    ASSERT_TRUE(flat.count("server.reply_bytes.canonical_form.count"));
    // Request/reply byte histograms record the actual wire sizes.
    EXPECT_GT(flat["server.request_bytes.canonical_form.min"], 0u);
    EXPECT_GT(flat["server.reply_bytes.canonical_form.min"], 0u);
    // Gauges and the batch-depth histogram are exported too.
    EXPECT_TRUE(flat.count("server.in_flight"));
    ASSERT_TRUE(flat.count("server.batch_depth.count"));
    EXPECT_GT(flat["server.batch_depth.count"], 0u);
  }
}

TEST(ServerObsTest, RequestObsOffStillServesAndExposesNoHistograms) {
  const auto dir = ScratchDir("disarmed");
  ServerOptions options;
  options.num_threads = 1;
  options.request_obs = false;
  // Both sinks configured but disarmed by the master switch.
  options.access_log_path = (dir / "access.jsonl").string();
  options.flight.dir = (dir / "flights").string();
  options.flight.latency_threshold_us = 1;
  Server server(options);
  EXPECT_EQ(server.access_log(), nullptr);

  {
    Loopback loop(&server);
    auto reply = loop.client().Call(
        GraphRequest(RequestClass::kCanonicalForm, CycleGraph(16), 1));
    ASSERT_TRUE(reply.ok());
    EXPECT_TRUE(reply.value().ok());

    auto metrics = loop.client().FetchMetrics(2);
    ASSERT_TRUE(metrics.ok());
    ASSERT_TRUE(metrics.value().ok());
    EXPECT_TRUE(IsValidJson(metrics.value().metrics_json));
    for (const auto& [name, value] : metrics.value().stats) {
      EXPECT_EQ(name.find("server.total_us"), std::string::npos)
          << "histogram present despite request_obs=0: " << name;
    }

    auto stats = loop.client().FetchStats(3);
    ASSERT_TRUE(stats.ok());
    ASSERT_TRUE(stats.value().ok());
  }
  EXPECT_EQ(server.flight_recorder()->recorded(), 0u);
  EXPECT_FALSE(std::filesystem::exists(dir / "access.jsonl"));
}

}  // namespace
}  // namespace server
}  // namespace dvicl
