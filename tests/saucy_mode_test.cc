// The saucy-like automorphisms-only IR mode (paper §3): must find the same
// group as the full search, cheaper.

#include <gtest/gtest.h>

#include "common/big_uint.h"
#include "datasets/generators.h"
#include "ir/ir_canonical.h"
#include "perm/schreier_sims.h"
#include "test_util.h"

namespace dvicl {
namespace {

using testing_util::BruteForceAutomorphisms;
using testing_util::PaperFigure1Graph;
using testing_util::RandomGraph;

BigUint OrderOf(const Graph& g, const std::vector<Permutation>& gens) {
  SchreierSims chain(g.NumVertices());
  for (const Permutation& gen : gens) chain.AddGenerator(gen);
  return chain.Order();
}

TEST(SaucyModeTest, SameGroupAsFullSearch) {
  const Graph graphs[] = {
      PaperFigure1Graph(),
      RandomGraph(15, 0.25, 1),
      WithTwins(PreferentialAttachmentGraph(40, 3, 2), 0.3, 3),
      CycleGraph(14),
      CompleteBipartiteGraph(4, 4),
  };
  for (const Graph& g : graphs) {
    IrOptions full;
    IrResult full_result =
        IrCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), full);
    IrOptions saucy;
    saucy.automorphisms_only = true;
    IrResult saucy_result =
        IrCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), saucy);
    ASSERT_TRUE(full_result.completed() && saucy_result.completed());
    EXPECT_EQ(OrderOf(g, full_result.automorphism_generators),
              OrderOf(g, saucy_result.automorphism_generators));
    // Generators from the cheap mode are real automorphisms.
    for (const Permutation& gen : saucy_result.automorphism_generators) {
      EXPECT_TRUE(IsAutomorphism(g, gen));
    }
  }
}

TEST(SaucyModeTest, MatchesBruteForceOrder) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = RandomGraph(7, 0.35, seed);
    IrOptions saucy;
    saucy.automorphisms_only = true;
    IrResult r = IrCanonicalLabeling(g, Coloring::Unit(7), saucy);
    ASSERT_TRUE(r.completed());
    EXPECT_EQ(OrderOf(g, r.automorphism_generators),
              BigUint(BruteForceAutomorphisms(g).size()))
        << "seed=" << seed;
  }
}

TEST(SaucyModeTest, ExploresNoMoreNodesThanFull) {
  const Graph graphs[] = {PaperFigure1Graph(), CycleGraph(18),
                          RandomGraph(20, 0.2, 4)};
  for (const Graph& g : graphs) {
    IrResult full =
        IrCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
    IrOptions saucy_options;
    saucy_options.automorphisms_only = true;
    IrResult saucy = IrCanonicalLabeling(g, Coloring::Unit(g.NumVertices()),
                                         saucy_options);
    EXPECT_LE(saucy.stats.tree_nodes, full.stats.tree_nodes);
  }
}

}  // namespace
}  // namespace dvicl
