// Wire codec tests for the canonicalization service (DESIGN.md §11):
// property round-trips over random graphs for every request class, plus
// the adversarial half — truncated frames at every byte, oversized length
// prefixes, 32-bit overflow in declared sizes, byte soup and bit flips.
// The decoder's contract: a structured Status for every malformed input,
// never a crash, never an allocation a lying size field talked it into.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/wire.h"
#include "server/protocol.h"
#include "test_util.h"

namespace dvicl {
namespace server {
namespace {

using testing_util::RandomGraph;

Request MakeRequest(RequestClass cls, uint64_t seed) {
  Rng rng(seed);
  Request request;
  request.id = rng.Next();
  request.cls = cls;
  request.deadline_micros = rng.NextBounded(1u << 20);
  request.node_budget = rng.NextBounded(1u << 16);
  request.memory_limit_mib = static_cast<uint32_t>(rng.NextBounded(4096));
  const auto n = static_cast<VertexId>(6 + rng.NextBounded(20));
  request.graph = RandomGraph(n, 0.3, seed * 31 + 1);
  if (rng.NextBernoulli(0.5)) {
    for (VertexId v = 0; v < n; ++v) {
      request.colors.push_back(static_cast<uint32_t>(rng.NextBounded(4)));
    }
  }
  switch (cls) {
    case RequestClass::kIsoTest: {
      request.graph2 = RandomGraph(n, 0.3, seed * 31 + 2);
      if (!request.colors.empty()) {
        for (VertexId v = 0; v < n; ++v) {
          request.colors2.push_back(
              static_cast<uint32_t>(rng.NextBounded(4)));
        }
      }
      break;
    }
    case RequestClass::kSsmCount: {
      const auto k = static_cast<VertexId>(1 + rng.NextBounded(n));
      for (VertexId v = 0; v < k; ++v) request.query.push_back(v);
      break;
    }
    case RequestClass::kServerStats:
    case RequestClass::kServerMetrics:
      // Control plane: no body at all.
      request.graph = Graph::FromEdges(0, {});
      request.colors.clear();
      break;
    default:
      break;
  }
  return request;
}

void ExpectRequestsEqual(const Request& want, const Request& got) {
  EXPECT_EQ(want.id, got.id);
  EXPECT_EQ(want.cls, got.cls);
  EXPECT_EQ(want.deadline_micros, got.deadline_micros);
  EXPECT_EQ(want.node_budget, got.node_budget);
  EXPECT_EQ(want.memory_limit_mib, got.memory_limit_mib);
  if (!IsControlPlane(want.cls)) {
    EXPECT_EQ(want.graph.NumVertices(), got.graph.NumVertices());
    EXPECT_EQ(want.graph.Edges(), got.graph.Edges());
    EXPECT_EQ(want.colors, got.colors);
  }
  if (want.cls == RequestClass::kIsoTest) {
    EXPECT_EQ(want.graph2.Edges(), got.graph2.Edges());
    EXPECT_EQ(want.colors2, got.colors2);
  }
  if (want.cls == RequestClass::kSsmCount) {
    EXPECT_EQ(want.query, got.query);
  }
}

constexpr RequestClass kAllClasses[] = {
    RequestClass::kCanonicalForm, RequestClass::kIsoTest,
    RequestClass::kAutOrder,      RequestClass::kOrbits,
    RequestClass::kSsmCount,      RequestClass::kServerStats,
    RequestClass::kServerMetrics,
};

// ---- round-trip properties -------------------------------------------------

TEST(ProtocolRoundTrip, RequestEveryClassOverRandomGraphs) {
  for (RequestClass cls : kAllClasses) {
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      const Request request = MakeRequest(cls, seed);
      std::string payload;
      EncodeRequest(request, &payload);
      Request decoded;
      const Status status = DecodeRequest(payload, &decoded);
      ASSERT_TRUE(status.ok())
          << RequestClassName(cls) << " seed " << seed << ": "
          << status.ToString();
      ExpectRequestsEqual(request, decoded);
      EXPECT_EQ(PeekRequestId(payload), request.id);
    }
  }
}

TEST(ProtocolRoundTrip, ReplyEveryClass) {
  Rng rng(7);
  for (RequestClass cls : kAllClasses) {
    Reply reply;
    reply.id = rng.Next();
    reply.status = wire::WireStatus::kOk;
    reply.cls = cls;
    switch (cls) {
      case RequestClass::kCanonicalForm:
        reply.num_vertices = 5;
        reply.certificate = {5, 4, 0, 0, 1, 2, 3, (1ull << 32) | 3};
        reply.canonical_labeling = {3, 1, 0, 4, 2};
        break;
      case RequestClass::kIsoTest:
        reply.isomorphic = true;
        break;
      case RequestClass::kAutOrder:
        reply.aut_order = "123456789012345678901234567890";
        break;
      case RequestClass::kOrbits:
        reply.orbit_ids = {0, 0, 2, 2, 0};
        break;
      case RequestClass::kSsmCount:
        reply.ssm_count = "42";
        break;
      case RequestClass::kServerStats:
        reply.stats = {{"requests", 17}, {"cache.hits", 5}, {"", 0}};
        break;
      case RequestClass::kServerMetrics:
        reply.stats = {{"server.total_us.orbits.p99", 1234},
                       {"server.in_flight", 2}};
        reply.metrics_json = "{\"counters\":{},\"histograms\":{}}";
        break;
    }
    std::string payload;
    EncodeReply(reply, &payload);
    Reply decoded;
    ASSERT_TRUE(DecodeReply(payload, &decoded).ok()) << RequestClassName(cls);
    EXPECT_EQ(reply.id, decoded.id);
    EXPECT_EQ(reply.cls, decoded.cls);
    EXPECT_EQ(reply.status, decoded.status);
    EXPECT_EQ(reply.certificate, decoded.certificate);
    EXPECT_EQ(reply.canonical_labeling, decoded.canonical_labeling);
    EXPECT_EQ(reply.isomorphic, decoded.isomorphic);
    EXPECT_EQ(reply.aut_order, decoded.aut_order);
    EXPECT_EQ(reply.orbit_ids, decoded.orbit_ids);
    EXPECT_EQ(reply.ssm_count, decoded.ssm_count);
    EXPECT_EQ(reply.stats, decoded.stats);
    EXPECT_EQ(reply.metrics_json, decoded.metrics_json);
  }
}

// The kServerMetrics reply interleaves a pair list with a JSON blob; every
// strict prefix must be rejected (the count and the blob length are both
// validated against the remaining bytes).
TEST(ProtocolAdversarial, EveryMetricsReplyTruncationIsRejected) {
  Reply reply;
  reply.id = 11;
  reply.status = wire::WireStatus::kOk;
  reply.cls = RequestClass::kServerMetrics;
  reply.stats = {{"server.requests", 3}, {"server.total_us.orbits.p50", 250}};
  reply.metrics_json = "{\"gauges\":{\"server.in_flight\":1}}";
  std::string payload;
  EncodeReply(reply, &payload);
  for (size_t len = 0; len < payload.size(); ++len) {
    Reply decoded;
    EXPECT_FALSE(
        DecodeReply(std::string_view(payload).substr(0, len), &decoded).ok())
        << "accepted a prefix of " << len << " bytes";
  }
}

TEST(ProtocolRoundTrip, ErrorReplyCarriesOnlyDetail) {
  Reply reply;
  reply.id = 99;
  reply.cls = RequestClass::kAutOrder;
  reply.status = wire::WireStatus::kNodeBudget;
  reply.detail = "leaf IR search exceeded max_tree_nodes=1";
  std::string payload;
  EncodeReply(reply, &payload);
  // Header (10) + detail length (4) + detail bytes, nothing else.
  EXPECT_EQ(payload.size(), 14 + reply.detail.size());
  Reply decoded;
  ASSERT_TRUE(DecodeReply(payload, &decoded).ok());
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status, wire::WireStatus::kNodeBudget);
  EXPECT_EQ(decoded.detail, reply.detail);
  EXPECT_TRUE(decoded.certificate.empty());
  EXPECT_TRUE(decoded.canonical_labeling.empty());
}

// Every strict prefix of a valid payload must be rejected: all declared
// counts are validated against the remaining bytes and the decoder demands
// the body end exactly at the payload end.
TEST(ProtocolAdversarial, EveryTruncationOfEveryClassIsRejected) {
  for (RequestClass cls : kAllClasses) {
    const Request request = MakeRequest(cls, 3);
    std::string payload;
    EncodeRequest(request, &payload);
    for (size_t len = 0; len < payload.size(); ++len) {
      Request decoded;
      const Status status =
          DecodeRequest(std::string_view(payload).substr(0, len), &decoded);
      EXPECT_FALSE(status.ok())
          << RequestClassName(cls) << " accepted a prefix of " << len << "/"
          << payload.size() << " bytes";
    }
  }
}

TEST(ProtocolAdversarial, EveryReplyTruncationIsRejected) {
  Reply reply;
  reply.id = 5;
  reply.status = wire::WireStatus::kOk;
  reply.cls = RequestClass::kCanonicalForm;
  reply.num_vertices = 3;
  reply.certificate = {3, 2, 0, 0, 0, 1, (1ull << 32) | 2};
  reply.canonical_labeling = {1, 2, 0};
  std::string payload;
  EncodeReply(reply, &payload);
  for (size_t len = 0; len < payload.size(); ++len) {
    Reply decoded;
    EXPECT_FALSE(
        DecodeReply(std::string_view(payload).substr(0, len), &decoded).ok())
        << "accepted a prefix of " << len << " bytes";
  }
}

TEST(ProtocolAdversarial, TrailingGarbageIsRejected) {
  for (RequestClass cls : kAllClasses) {
    const Request request = MakeRequest(cls, 4);
    std::string payload;
    EncodeRequest(request, &payload);
    payload.push_back('\x00');
    Request decoded;
    EXPECT_FALSE(DecodeRequest(payload, &decoded).ok())
        << RequestClassName(cls);
  }
}

// A frame that declares m = 0xffffffff backed by a handful of bytes must be
// rejected by arithmetic, not trusted with a 32 GiB reserve. The same for a
// lying color array, SSM query and certificate size.
TEST(ProtocolAdversarial, LyingSizeFieldsNeverAllocate) {
  std::string payload;
  {
    wire::Writer writer(&payload);
    writer.U64(1);                       // id
    writer.U8(0);                        // kCanonicalForm
    writer.U8(0);                        // reserved
    writer.U64(0);                       // deadline
    writer.U64(0);                       // node budget
    writer.U32(0);                       // memory
    writer.U32(4);                       // n
    writer.U32(0xffffffffu);             // m: a lie
    writer.U32(0);                       // a few bytes of "edges"
    writer.U32(1);
  }
  Request decoded;
  Status status = DecodeRequest(payload, &decoded);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("edge count"), std::string::npos)
      << status.ToString();

  // An isolated-vertex graph is only a dozen bytes on the wire regardless
  // of n, so the vertex count is the one size field a payload-vs-remaining
  // check cannot bound: kMaxWireVertices must reject it before the O(n)
  // adjacency allocation.
  payload.clear();
  {
    wire::Writer writer(&payload);
    writer.U64(1);
    writer.U8(0);  // kCanonicalForm
    writer.U8(0);
    writer.U64(0);
    writer.U64(0);
    writer.U32(0);
    writer.U32(0xffffffffu);  // n: four billion isolated vertices
    writer.U32(0);            // m = 0, so every edge-byte check passes
    writer.U8(0);             // no colors, so the color check passes too
  }
  status = DecodeRequest(payload, &decoded);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("vertex count"), std::string::npos)
      << status.ToString();

  payload.clear();
  {
    wire::Writer writer(&payload);
    writer.U64(1);
    writer.U8(4);  // kSsmCount
    writer.U8(0);
    writer.U64(0);
    writer.U64(0);
    writer.U32(0);
    writer.U32(3);           // n
    writer.U32(0);           // m
    writer.U8(0);            // no colors
    writer.U32(0xffffffffu);  // query size: a lie
  }
  status = DecodeRequest(payload, &decoded);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("query"), std::string::npos);

  payload.clear();
  {
    wire::Writer writer(&payload);
    writer.U64(1);
    writer.U8(0);  // status kOk
    writer.U8(0);  // kCanonicalForm
    writer.U32(3);
    writer.U64(std::numeric_limits<uint64_t>::max());  // cert words: the
                                                       // 64-bit overflow lie
  }
  Reply reply;
  status = DecodeReply(payload, &reply);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("certificate"), std::string::npos);
}

TEST(ProtocolAdversarial, BadGraphsAreRejected) {
  const struct {
    const char* what;
    uint32_t n, u, v;
  } cases[] = {
      {"endpoint out of range", 4, 1, 9},
      {"self-loop", 4, 2, 2},
  };
  for (const auto& c : cases) {
    std::string payload;
    wire::Writer writer(&payload);
    writer.U64(1);
    writer.U8(0);
    writer.U8(0);
    writer.U64(0);
    writer.U64(0);
    writer.U32(0);
    writer.U32(c.n);
    writer.U32(1);
    writer.U32(c.u);
    writer.U32(c.v);
    writer.U8(0);
    Request decoded;
    EXPECT_FALSE(DecodeRequest(payload, &decoded).ok()) << c.what;
  }
  // Unknown class and nonzero reserved byte.
  for (int variant = 0; variant < 2; ++variant) {
    std::string payload;
    wire::Writer writer(&payload);
    writer.U64(1);
    writer.U8(variant == 0 ? 250 : 0);
    writer.U8(variant == 0 ? 0 : 7);
    writer.U64(0);
    writer.U64(0);
    writer.U32(0);
    Request decoded;
    EXPECT_FALSE(DecodeRequest(payload, &decoded).ok());
  }
  // Duplicate SSM query vertex.
  {
    std::string payload;
    wire::Writer writer(&payload);
    writer.U64(1);
    writer.U8(4);
    writer.U8(0);
    writer.U64(0);
    writer.U64(0);
    writer.U32(0);
    writer.U32(3);
    writer.U32(0);
    writer.U8(0);
    writer.U32(2);
    writer.U32(1);
    writer.U32(1);
    Request decoded;
    EXPECT_FALSE(DecodeRequest(payload, &decoded).ok());
  }
}

// Byte soup and single-byte mutations: the decoder may accept or reject,
// but it must never crash, and anything it accepts must re-encode.
TEST(ProtocolAdversarial, ByteSoupNeverCrashes) {
  Rng rng(11);
  for (int round = 0; round < 500; ++round) {
    std::string payload;
    const size_t len = rng.NextBounded(200);
    payload.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      payload.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    Request request;
    if (DecodeRequest(payload, &request).ok()) {
      std::string reencoded;
      EncodeRequest(request, &reencoded);
      Request again;
      EXPECT_TRUE(DecodeRequest(reencoded, &again).ok());
    }
    Reply reply;
    if (DecodeReply(payload, &reply).ok()) {
      std::string reencoded;
      EncodeReply(reply, &reencoded);
      Reply again;
      EXPECT_TRUE(DecodeReply(reencoded, &again).ok());
    }
  }
}

TEST(ProtocolAdversarial, SingleByteMutationsNeverCrash) {
  Rng rng(13);
  for (RequestClass cls : kAllClasses) {
    const Request request = MakeRequest(cls, 9);
    std::string payload;
    EncodeRequest(request, &payload);
    for (size_t pos = 0; pos < payload.size(); ++pos) {
      std::string mutated = payload;
      mutated[pos] = static_cast<char>(rng.NextBounded(256));
      Request decoded;
      DecodeRequest(mutated, &decoded);  // must not crash; status is free
    }
  }
}

// ---- framing ---------------------------------------------------------------

TEST(Framing, RoundTripThroughStream) {
  std::stringstream stream;
  ASSERT_TRUE(wire::WriteFrame(stream, "hello").ok());
  ASSERT_TRUE(wire::WriteFrame(stream, "").ok());
  ASSERT_TRUE(wire::WriteFrame(stream, std::string(1000, 'x')).ok());
  std::string payload;
  ASSERT_TRUE(wire::ReadFrame(stream, &payload).ok());
  EXPECT_EQ(payload, "hello");
  ASSERT_TRUE(wire::ReadFrame(stream, &payload).ok());
  EXPECT_EQ(payload, "");
  ASSERT_TRUE(wire::ReadFrame(stream, &payload).ok());
  EXPECT_EQ(payload, std::string(1000, 'x'));
  // Clean EOF at the frame boundary is NotFound, not an error.
  EXPECT_EQ(wire::ReadFrame(stream, &payload).code(),
            Status::Code::kNotFound);
}

TEST(Framing, TruncationInsidePrefixAndPayload) {
  std::string bytes;
  wire::AppendFrame("abcdef", &bytes);
  // EOF inside the length prefix.
  {
    std::stringstream stream(bytes.substr(0, 2));
    std::string payload;
    EXPECT_EQ(wire::ReadFrame(stream, &payload).code(),
              Status::Code::kIOError);
  }
  // EOF inside the declared payload.
  {
    std::stringstream stream(bytes.substr(0, 7));
    std::string payload;
    EXPECT_EQ(wire::ReadFrame(stream, &payload).code(),
              Status::Code::kIOError);
  }
}

TEST(Framing, OversizedLengthPrefixIsRejectedBeforeAllocation) {
  std::string bytes = {'\xff', '\xff', '\xff', '\xff'};  // 4 GiB - 1
  std::stringstream stream(bytes);
  std::string payload;
  const Status status = wire::ReadFrame(stream, &payload);
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
  EXPECT_TRUE(payload.empty()) << "must not commit memory for the lie";
  // A tighter per-server cap applies the same way.
  std::string small;
  wire::AppendFrame(std::string(100, 'x'), &small);
  std::stringstream stream2(small);
  EXPECT_EQ(wire::ReadFrame(stream2, &payload, 10).code(),
            Status::Code::kInvalidArgument);
}

TEST(Framing, ReaderIsBoundsChecked) {
  wire::Reader reader(std::string_view("\x01\x02\x03", 3));
  uint32_t u32 = 0xdead;
  EXPECT_FALSE(reader.U32(&u32));
  EXPECT_EQ(u32, 0xdeadu) << "failed read must leave the output untouched";
  uint8_t u8 = 0;
  EXPECT_TRUE(reader.U8(&u8));
  EXPECT_EQ(u8, 1);
  uint64_t u64 = 0;
  EXPECT_FALSE(reader.U64(&u64));
  std::string_view bytes;
  EXPECT_TRUE(reader.Bytes(2, &bytes));
  EXPECT_TRUE(reader.AtEnd());
}

TEST(Framing, LittleEndianOnTheWire) {
  std::string out;
  wire::Writer writer(&out);
  writer.U32(0x04030201u);
  writer.U64(0x0807060504030201ull);
  ASSERT_EQ(out.size(), 12u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], i + 1);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[4 + i], i + 1);
}

// ---- status mapping --------------------------------------------------------

TEST(WireStatusMapping, MirrorsEveryRunOutcome) {
  const struct {
    RunOutcome outcome;
    wire::WireStatus status;
  } mapping[] = {
      {RunOutcome::kCompleted, wire::WireStatus::kOk},
      {RunOutcome::kDeadline, wire::WireStatus::kDeadline},
      {RunOutcome::kNodeBudget, wire::WireStatus::kNodeBudget},
      {RunOutcome::kMemoryBudget, wire::WireStatus::kMemoryBudget},
      {RunOutcome::kCancelled, wire::WireStatus::kCancelled},
      {RunOutcome::kInvalidInput, wire::WireStatus::kInvalidRequest},
      {RunOutcome::kInternalFault, wire::WireStatus::kInternalFault},
  };
  for (const auto& m : mapping) {
    EXPECT_EQ(wire::FromOutcome(m.outcome), m.status)
        << RunOutcomeName(m.outcome);
    // The numeric values line up one for one, which is what makes the
    // reply status byte readable next to RunOutcome in traces.
    EXPECT_EQ(static_cast<uint8_t>(m.outcome),
              static_cast<uint8_t>(m.status));
  }
  for (wire::WireStatus status :
       {wire::WireStatus::kOk, wire::WireStatus::kDeadline,
        wire::WireStatus::kNodeBudget, wire::WireStatus::kMemoryBudget,
        wire::WireStatus::kCancelled, wire::WireStatus::kInvalidRequest,
        wire::WireStatus::kInternalFault, wire::WireStatus::kOverloaded,
        wire::WireStatus::kMalformedFrame}) {
    EXPECT_STRNE(wire::WireStatusName(status), "unknown");
  }
}

}  // namespace
}  // namespace server
}  // namespace dvicl
