// Unit tests for the work-stealing task pool behind the parallel AutoTree
// build: ordered join semantics, nested submission from worker threads,
// cooperative cancellation, exception propagation, the bounded-deque inline
// fallback, and a stress run with thousands of tasks.

#include "common/task_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace dvicl {
namespace {

TEST(TaskPoolTest, DefaultThreadsIsAtLeastOne) {
  EXPECT_GE(TaskPool::DefaultThreads(), 1u);
}

TEST(TaskPoolTest, OrderedJoinMakesAllEffectsVisibleInSubmissionOrder) {
  // The pool promises nothing about execution order, but Wait() is a join
  // barrier: afterwards the caller reads every slot in the fixed order of
  // its own choosing — exactly how CombineST joins sibling subtrees.
  TaskPool pool(4);
  constexpr int kTasks = 256;
  std::vector<int> results(kTasks, -1);
  TaskGroup group(&pool);
  for (int i = 0; i < kTasks; ++i) {
    group.Submit([&results, i] { results[i] = i * i; });
  }
  group.Wait();
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_EQ(results[i], i * i) << "slot " << i;
  }
}

TEST(TaskPoolTest, SingleThreadPoolRunsEverythingOnTheOwner) {
  TaskPool pool(1);
  EXPECT_EQ(pool.NumThreads(), 1u);
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) {
    group.Submit([&count] { count.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(TaskPoolTest, NullPoolRunsTasksInline) {
  // TaskGroup(nullptr) is the "no parallelism configured" degenerate case:
  // Submit executes immediately on the calling thread.
  int count = 0;
  TaskGroup group(nullptr);
  group.Submit([&count] { ++count; });
  EXPECT_EQ(count, 1);  // already ran, before Wait
  group.Wait();
  EXPECT_EQ(count, 1);
}

// Recursive divide-and-conquer sum: every task splits its range and submits
// the halves into its own nested group, exercising submission from worker
// threads and the helping Wait.
uint64_t ParallelRangeSum(TaskPool* pool, uint64_t lo, uint64_t hi) {
  if (hi - lo <= 64) {
    uint64_t sum = 0;
    for (uint64_t v = lo; v < hi; ++v) sum += v;
    return sum;
  }
  const uint64_t mid = lo + (hi - lo) / 2;
  uint64_t left = 0;
  uint64_t right = 0;
  TaskGroup group(pool);
  group.Submit([&] { left = ParallelRangeSum(pool, lo, mid); });
  group.Submit([&] { right = ParallelRangeSum(pool, mid, hi); });
  group.Wait();
  return left + right;
}

TEST(TaskPoolTest, NestedSubmissionFromWorkerThreads) {
  TaskPool pool(4);
  constexpr uint64_t kN = 100000;
  EXPECT_EQ(ParallelRangeSum(&pool, 0, kN), kN * (kN - 1) / 2);
}

TEST(TaskPoolTest, CooperativeCancellationSkipsWork) {
  TaskPool pool(4);
  CancelToken token;
  token.Cancel();
  std::atomic<int> executed{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 64; ++i) {
    group.Submit([&] {
      if (token.Cancelled()) return;  // cooperative check, as in leaf IR
      executed.fetch_add(1);
    });
  }
  group.Wait();
  EXPECT_EQ(executed.load(), 0);
}

TEST(TaskPoolTest, CancellationRaisedFromInsideATask) {
  TaskPool pool(4);
  CancelToken token;
  std::atomic<int> executed{0};
  TaskGroup group(&pool);
  group.Submit([&token] { token.Cancel(); });
  group.Wait();
  ASSERT_TRUE(token.Cancelled());
  // Tasks submitted after the join all observe the flag.
  for (int i = 0; i < 32; ++i) {
    group.Submit([&] {
      if (!token.Cancelled()) executed.fetch_add(1);
    });
  }
  group.Wait();
  EXPECT_EQ(executed.load(), 0);
}

TEST(TaskPoolTest, CancelTokenFlagMatchesState) {
  CancelToken token;
  EXPECT_FALSE(token.Flag()->load());
  token.Cancel();
  EXPECT_TRUE(token.Flag()->load());
}

TEST(TaskPoolTest, ExceptionPropagatesToWait) {
  TaskPool pool(4);
  std::atomic<int> survivors{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 16; ++i) {
    group.Submit([&survivors] { survivors.fetch_add(1); });
  }
  group.Submit([] { throw std::runtime_error("leaf exploded"); });
  EXPECT_THROW(group.Wait(), std::runtime_error);
  // All non-throwing tasks still completed; the pool remains usable.
  EXPECT_EQ(survivors.load(), 16);
  TaskGroup next(&pool);
  std::atomic<int> after{0};
  next.Submit([&after] { after.fetch_add(1); });
  next.Wait();
  EXPECT_EQ(after.load(), 1);
}

TEST(TaskPoolTest, ExceptionFromNestedTaskReachesTheOuterWaiter) {
  TaskPool pool(2);
  TaskGroup outer(&pool);
  outer.Submit([&pool] {
    TaskGroup inner(&pool);
    inner.Submit([] { throw std::logic_error("deep failure"); });
    inner.Wait();  // rethrows; escapes this task...
  });
  // ...and is captured by the outer group.
  EXPECT_THROW(outer.Wait(), std::logic_error);
}

TEST(TaskPoolTest, BoundedDequeFallsBackToInlineExecution) {
  // A 1-thread pool cannot drain while the owner is still submitting, so
  // submissions past the deque bound must run inline instead of growing
  // the queue without limit. Every task runs exactly once either way.
  TaskPool pool(1);
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  constexpr int kTasks = 5000;  // well past the per-slot bound
  for (int i = 0; i < kTasks; ++i) {
    group.Submit([&count] { count.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(count.load(), kTasks);
}

TEST(TaskPoolTest, ThreadIndexStaysWithinSlotRange) {
  TaskPool pool(4);
  EXPECT_EQ(pool.ThreadIndex(), 0u);  // owner occupies slot 0
  std::atomic<uint32_t> bad{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 512; ++i) {
    group.Submit([&pool, &bad] {
      if (pool.ThreadIndex() >= pool.NumThreads()) bad.fetch_add(1);
    });
  }
  group.Wait();
  EXPECT_EQ(bad.load(), 0u);
}

TEST(TaskPoolTest, StressThousandsOfTasksAcrossRepeatedGroups) {
  TaskPool pool(8);
  std::atomic<uint64_t> count{0};
  for (int round = 0; round < 5; ++round) {
    TaskGroup group(&pool);
    for (int i = 0; i < 2000; ++i) {
      group.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    group.Wait();
    ASSERT_EQ(count.load(), static_cast<uint64_t>(2000 * (round + 1)));
  }
}

TEST(TaskPoolTest, StatsIdentitiesHoldAfterJoin) {
  // The TaskPoolStats accounting identities (see the struct's contract):
  // every Submit either queued or ran inline, and every queued task was
  // popped exactly once — locally or by a thief.
  TaskPool pool(4);
  constexpr uint64_t kTasks = 3000;  // past the per-slot bound, so both the
                                     // queued and the inline path are hit
  std::atomic<uint64_t> count{0};
  TaskGroup group(&pool);
  for (uint64_t i = 0; i < kTasks; ++i) {
    group.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  group.Wait();
  ASSERT_EQ(count.load(), kTasks);

  const TaskPoolStats stats = pool.GetStats();
  EXPECT_EQ(stats.tasks_queued + stats.tasks_inline, kTasks);
  EXPECT_EQ(stats.tasks_run_local + stats.tasks_stolen, stats.tasks_queued);
  EXPECT_GE(stats.max_deque_depth, 1u);
  EXPECT_LE(stats.max_deque_depth, 1024u);  // the per-slot bound
}

TEST(TaskPoolTest, SingleThreadPoolNeverSteals) {
  // With one slot there is nobody to steal: every queued task is popped by
  // the owner inside Wait.
  TaskPool pool(1);
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) {
    group.Submit([&count] { count.fetch_add(1); });
  }
  group.Wait();
  ASSERT_EQ(count.load(), 100);

  const TaskPoolStats stats = pool.GetStats();
  EXPECT_EQ(stats.tasks_stolen, 0u);
  EXPECT_EQ(stats.tasks_queued, 100u);
  EXPECT_EQ(stats.tasks_run_local, 100u);
  EXPECT_EQ(stats.tasks_inline, 0u);
}

TEST(TaskPoolTest, EveryTaskIsStolenWhenTheOwnerNeverHelps) {
  // The owner submits into its own deque and then only sleep-polls — it
  // never calls Wait, so it never pops. The workers are the only possible
  // consumers, hence every single task must be counted as stolen. This
  // pins the steal counter deterministically (no racy >= bound).
  TaskPool pool(4);
  constexpr uint64_t kTasks = 64;  // well under the deque bound: no inline
  std::atomic<uint64_t> done{0};
  TaskGroup group(&pool);
  for (uint64_t i = 0; i < kTasks; ++i) {
    group.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  while (done.load(std::memory_order_relaxed) < kTasks) {
    std::this_thread::yield();
  }
  group.Wait();  // settles group accounting; nothing left to run

  const TaskPoolStats stats = pool.GetStats();
  EXPECT_EQ(stats.tasks_queued, kTasks);
  EXPECT_EQ(stats.tasks_inline, 0u);
  EXPECT_EQ(stats.tasks_stolen, kTasks);
  EXPECT_EQ(stats.tasks_run_local, 0u);
}

TEST(TaskPoolTest, DestructorJoinsOutstandingTasks) {
  std::atomic<int> count{0};
  {
    TaskPool pool(4);
    TaskGroup group(&pool);
    for (int i = 0; i < 200; ++i) {
      group.Submit([&count] { count.fetch_add(1); });
    }
    // No explicit Wait: ~TaskGroup must join before ~TaskPool runs.
  }
  EXPECT_EQ(count.load(), 200);
}

}  // namespace
}  // namespace dvicl
