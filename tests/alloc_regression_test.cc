// Allocation-regression harness (DESIGN.md §13): the arena exists to take
// general-purpose heap churn out of the refine+IR hot path, and this test is
// the gate that keeps it that way. For a pinned set of families — headlined
// by the gadget forest the serving mix is built from — it runs the identical
// workload with the arena off and on and requires the arena leg's
// dvicl.alloc.count (SmallVec heap-buffer growth + arena chunk refills,
// summed across worker threads into DviclStats) to come in at no more than
// DVICL_ALLOC_RATIO (default 0.5, i.e. at least 2x fewer allocation events)
// of the heap leg. Certificates must stay byte-identical between legs, so a
// "fix" that changes canonical behavior cannot hide behind the ratio.
//
// The pinned families and the default ratio are part of the regression
// contract: loosening either needs the same scrutiny as a golden-corpus
// regeneration. DVICL_ALLOC_RATIO is env-overridable for diagnosis and for
// platforms whose allocator granularity shifts the baseline.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "datasets/generators.h"
#include "dvicl/dvicl.h"
#include "graph/graph.h"
#include "refine/coloring.h"

namespace dvicl {
namespace {

// The explicit DviclOptions::arena setting must win for both legs, even
// under a CI matrix leg that pins DVICL_ARENA; restore the pin on exit.
class ScopedClearArenaEnv {
 public:
  ScopedClearArenaEnv() {
    if (const char* env = std::getenv("DVICL_ARENA")) {
      saved_ = env;
      had_value_ = true;
      unsetenv("DVICL_ARENA");
    }
  }
  ~ScopedClearArenaEnv() {
    if (had_value_) setenv("DVICL_ARENA", saved_.c_str(), /*overwrite=*/1);
  }

 private:
  std::string saved_;
  bool had_value_ = false;
};

double AllocRatioThreshold() {
  if (const char* env = std::getenv("DVICL_ALLOC_RATIO")) {
    char* end = nullptr;
    const double parsed = std::strtod(env, &end);
    if (end != env && parsed > 0.0) return parsed;
  }
  return 0.5;
}

struct Pinned {
  const char* name;
  Graph graph;
};

// The regression set: the serving-mix gadget forest plus families that
// stress distinct hot-path shapes — many small cells (CFI), deep
// refinement (Miyazaki-like), irregular sparse (Erdos-Renyi), and a
// twin-heavy graph whose IR search expands many candidate children.
std::vector<Pinned> PinnedFamilies() {
  std::vector<Pinned> out;
  out.push_back({"GadgetForest", GadgetForestGraph(6, 6)});
  out.push_back({"CfiUntwisted", CfiGraph(8, false)});
  out.push_back({"MiyazakiLike", MiyazakiLikeGraph(4)});
  out.push_back({"ErdosRenyi", ErdosRenyiGraph(60, 0.08, 11)});
  out.push_back(
      {"WithTwinClasses",
       WithTwinClasses(PreferentialAttachmentGraph(60, 2, 18), 0.3, 4, 19)});
  return out;
}

DviclResult RunLeg(const Graph& g, bool arena, uint32_t threads,
                   bool cert_cache) {
  DviclOptions options;
  options.arena = arena;
  options.num_threads = threads;
  options.parallel_grain_vertices = 2;
  options.cert_cache = cert_cache;
  return DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), options);
}

TEST(AllocRegressionTest, ArenaHalvesAllocationEventsOnPinnedFamilies) {
  ScopedClearArenaEnv clear_env;
  const double ratio = AllocRatioThreshold();

  for (const bool cache : {false, true}) {
    for (const uint32_t threads : {1u, 4u}) {
      uint64_t off_total = 0;
      uint64_t on_total = 0;
      for (const Pinned& family : PinnedFamilies()) {
        const DviclResult off =
            RunLeg(family.graph, /*arena=*/false, threads, cache);
        const DviclResult on =
            RunLeg(family.graph, /*arena=*/true, threads, cache);
        ASSERT_TRUE(off.completed()) << family.name;
        ASSERT_TRUE(on.completed()) << family.name;

        // The ratio is only a license to change WHERE memory comes from,
        // never WHAT is computed.
        ASSERT_EQ(on.certificate, off.certificate)
            << family.name << " threads=" << threads << " cache=" << cache;
        ASSERT_TRUE(on.canonical_labeling == off.canonical_labeling)
            << family.name << " threads=" << threads << " cache=" << cache;

        std::printf(
            "alloc[%s t=%u cc=%d] off=%llu on=%llu (bytes %llu -> %llu)\n",
            family.name, threads, cache ? 1 : 0,
            static_cast<unsigned long long>(off.stats.alloc_count),
            static_cast<unsigned long long>(on.stats.alloc_count),
            static_cast<unsigned long long>(off.stats.alloc_bytes),
            static_cast<unsigned long long>(on.stats.alloc_bytes));
        off_total += off.stats.alloc_count;
        on_total += on.stats.alloc_count;
      }

      // The heap leg must register real allocation traffic — a zero baseline
      // would mean the counters are disconnected and the gate is vacuous.
      ASSERT_GT(off_total, 0u) << "threads=" << threads << " cache=" << cache;
      EXPECT_LE(static_cast<double>(on_total),
                ratio * static_cast<double>(off_total))
          << "arena leg regressed past " << ratio
          << "x of the heap leg's allocation events (threads=" << threads
          << " cache=" << cache << ", off=" << off_total
          << " on=" << on_total
          << "). If intentional, justify and adjust DVICL_ALLOC_RATIO.";
    }
  }
}

TEST(AllocRegressionTest, AllocStatsAreExportedAndMerged) {
  ScopedClearArenaEnv clear_env;
  // Sanity for the stats plumbing itself: a multi-threaded heap-leg run
  // must merge nonzero counters from worker threads into the result stats,
  // and MergeFrom must accumulate rather than overwrite.
  const Graph g = GadgetForestGraph(6, 6);
  const DviclResult r = RunLeg(g, /*arena=*/false, 4, /*cert_cache=*/false);
  ASSERT_TRUE(r.completed());
  EXPECT_GT(r.stats.alloc_count, 0u);
  EXPECT_GT(r.stats.alloc_bytes, 0u);

  DviclStats merged;
  merged.MergeFrom(r.stats);
  merged.MergeFrom(r.stats);
  EXPECT_EQ(merged.alloc_count, 2 * r.stats.alloc_count);
  EXPECT_EQ(merged.alloc_bytes, 2 * r.stats.alloc_bytes);
}

}  // namespace
}  // namespace dvicl
