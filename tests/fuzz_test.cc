// Seeded "fuzz" tests: random byte soup and structured mutations into
// every parser; nothing may crash, leak into a half-built object, or
// return OK for garbage. (Deterministic — these run in CI like any test.)

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/rng.h"
#include "dvicl/serialize.h"
#include "graph/graph_io.h"

namespace dvicl {
namespace {

std::string RandomBytes(Rng* rng, size_t length, bool printable) {
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    if (printable) {
      out.push_back(static_cast<char>(' ' + rng->NextBounded(95)));
    } else {
      out.push_back(static_cast<char>(rng->NextBounded(256)));
    }
  }
  return out;
}

TEST(FuzzTest, EdgeListParserSurvivesByteSoup) {
  Rng rng(1);
  for (int round = 0; round < 200; ++round) {
    std::istringstream in(
        RandomBytes(&rng, 1 + rng.NextBounded(300), round % 2 == 0));
    Result<Graph> g = ReadEdgeList(in);
    if (g.ok()) {
      // Whatever parsed must be a coherent graph.
      EXPECT_LE(g.value().NumEdges(),
                static_cast<uint64_t>(g.value().NumVertices()) *
                    g.value().NumVertices());
    }
  }
}

TEST(FuzzTest, DimacsParserSurvivesByteSoup) {
  Rng rng(2);
  for (int round = 0; round < 200; ++round) {
    std::string text = "p edge 5 3\n" +
                       RandomBytes(&rng, rng.NextBounded(200), true);
    std::istringstream in(text);
    std::vector<uint32_t> colors;
    Result<Graph> g = ReadDimacs(in, &colors);
    if (g.ok()) {
      EXPECT_EQ(g.value().NumVertices(), 5u);
      EXPECT_EQ(colors.size(), 5u);
    }
  }
}

TEST(FuzzTest, Graph6ParserSurvivesByteSoup) {
  Rng rng(3);
  for (int round = 0; round < 500; ++round) {
    const std::string line =
        RandomBytes(&rng, 1 + rng.NextBounded(60), round % 2 == 0);
    Result<Graph> g = ParseGraph6(line);
    if (g.ok()) {
      // Round-trip must agree when parsing succeeded.
      Result<Graph> again = ParseGraph6(FormatGraph6(g.value()));
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(again.value(), g.value());
    }
  }
}

TEST(FuzzTest, IndexLoaderSurvivesByteSoup) {
  Rng rng(4);
  for (int round = 0; round < 100; ++round) {
    std::string blob = RandomBytes(&rng, rng.NextBounded(400), false);
    if (round % 3 == 0) blob = "DVAT" + blob;  // plausible magic
    std::istringstream in(blob, std::ios::binary);
    Result<DviclResult> loaded = LoadDviclResult(in);
    // Random bytes must never produce a valid index (the checksum alone
    // makes that astronomically unlikely; structural validation backs it
    // up).
    EXPECT_FALSE(loaded.ok());
  }
}

TEST(FuzzTest, CycleParserSurvivesByteSoup) {
  Rng rng(5);
  for (int round = 0; round < 300; ++round) {
    const std::string text =
        RandomBytes(&rng, 1 + rng.NextBounded(40), true);
    auto result = Permutation::FromCycles(10, text);
    if (result.ok()) {
      // Anything accepted must be a valid permutation of 10 points.
      EXPECT_EQ(result.value().Size(), 10u);
      EXPECT_TRUE(
          result.value().Then(result.value().Inverse()).IsIdentity());
    }
  }
}

}  // namespace
}  // namespace dvicl
