// Model-based stress test for the ordered-partition Coloring: random
// sequences of individualizations and splits are mirrored on a simple
// vector-of-vectors model; after every operation the two representations
// must agree exactly (cell order, offsets, membership, inverse arrays).

#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "common/rng.h"
#include "refine/coloring.h"

namespace dvicl {
namespace {

// Reference model: ordered list of cells (vectors of vertices).
class ModelPartition {
 public:
  explicit ModelPartition(VertexId n) {
    std::vector<VertexId> all(n);
    std::iota(all.begin(), all.end(), 0);
    cells_.push_back(std::move(all));
  }

  size_t NumCells() const { return cells_.size(); }

  // Offset of the cell containing v == sum of earlier cell sizes.
  VertexId ColorOf(VertexId v) const {
    VertexId offset = 0;
    for (const auto& cell : cells_) {
      for (VertexId u : cell) {
        if (u == v) return offset;
      }
      offset += static_cast<VertexId>(cell.size());
    }
    ADD_FAILURE() << "vertex not found";
    return 0;
  }

  size_t CellSizeOf(VertexId v) const {
    for (const auto& cell : cells_) {
      for (VertexId u : cell) {
        if (u == v) return cell.size();
      }
    }
    return 0;
  }

  void Individualize(VertexId v) {
    for (size_t i = 0; i < cells_.size(); ++i) {
      auto it = std::find(cells_[i].begin(), cells_[i].end(), v);
      if (it == cells_[i].end()) continue;
      if (cells_[i].size() == 1) return;
      cells_[i].erase(it);
      cells_.insert(cells_.begin() + static_cast<ptrdiff_t>(i), {v});
      return;
    }
  }

  // Split the cell containing `anchor` by keys (ascending; all members get
  // a key).
  void SplitByKeys(VertexId anchor, const std::vector<uint64_t>& keys) {
    for (size_t i = 0; i < cells_.size(); ++i) {
      if (std::find(cells_[i].begin(), cells_[i].end(), anchor) ==
          cells_[i].end()) {
        continue;
      }
      std::map<uint64_t, std::vector<VertexId>> groups;
      for (VertexId v : cells_[i]) groups[keys[v]].push_back(v);
      if (groups.size() <= 1) return;
      std::vector<std::vector<VertexId>> fragments;
      for (auto& [key, members] : groups) {
        fragments.push_back(std::move(members));
      }
      cells_.erase(cells_.begin() + static_cast<ptrdiff_t>(i));
      cells_.insert(cells_.begin() + static_cast<ptrdiff_t>(i),
                    fragments.begin(), fragments.end());
      return;
    }
  }

 private:
  std::vector<std::vector<VertexId>> cells_;
};

void ExpectAgreement(const Coloring& pi, const ModelPartition& model,
                     VertexId n) {
  ASSERT_EQ(pi.NumCells(), model.NumCells());
  for (VertexId v = 0; v < n; ++v) {
    EXPECT_EQ(pi.ColorOf(v), model.ColorOf(v)) << "v=" << v;
    EXPECT_EQ(pi.CellSizeAt(pi.ColorOf(v)), model.CellSizeOf(v));
  }
  // Internal consistency: order_/pos_ inverse, contiguous cells.
  for (VertexId p = 0; p < n; ++p) {
    EXPECT_EQ(pi.PositionOf(pi.VertexAtPosition(p)), p);
  }
}

TEST(ColoringStressTest, RandomOperationSequences) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const VertexId n = 10 + static_cast<VertexId>(rng.NextBounded(30));
    Coloring pi = Coloring::Unit(n);
    ModelPartition model(n);

    for (int step = 0; step < 40 && !pi.IsDiscrete(); ++step) {
      const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
      if (rng.NextBernoulli(0.5)) {
        pi.Individualize(v);
        model.Individualize(v);
      } else {
        // Random small-range keys over the whole vertex set.
        std::vector<uint64_t> keys(n);
        for (VertexId u = 0; u < n; ++u) keys[u] = rng.NextBounded(3);
        pi.SplitCellByKeys(pi.ColorOf(v), keys);
        model.SplitByKeys(v, keys);
      }
      ExpectAgreement(pi, model, n);
    }
  }
}

TEST(ColoringStressTest, TailGroupSplitAgainstModel) {
  for (uint64_t seed = 100; seed < 115; ++seed) {
    Rng rng(seed);
    const VertexId n = 12 + static_cast<VertexId>(rng.NextBounded(20));
    Coloring pi = Coloring::Unit(n);
    ModelPartition model(n);

    for (int step = 0; step < 25 && !pi.IsDiscrete(); ++step) {
      const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
      const VertexId start = pi.ColorOf(v);
      const auto cell = pi.CellVerticesAt(start);
      if (cell.size() <= 1) continue;

      // Pick a random nonzero-key subset of the cell.
      std::vector<uint64_t> keys(n, 0);
      std::vector<std::pair<uint64_t, VertexId>> counted;
      for (VertexId u : cell) {
        if (rng.NextBernoulli(0.4)) {
          keys[u] = 1 + rng.NextBounded(3);
          counted.emplace_back(keys[u], u);
        }
      }
      if (counted.empty()) continue;
      std::sort(counted.begin(), counted.end());

      pi.SplitCellByTailGroups(start, counted);
      model.SplitByKeys(v, keys);
      ExpectAgreement(pi, model, n);
    }
  }
}

TEST(ColoringStressTest, DiscreteColoringRoundTrip) {
  // Drive to discrete by repeated individualization; the resulting
  // permutation must invert correctly.
  Rng rng(7);
  const VertexId n = 20;
  Coloring pi = Coloring::Unit(n);
  while (!pi.IsDiscrete()) {
    pi.Individualize(static_cast<VertexId>(rng.NextBounded(n)));
  }
  Permutation gamma = pi.ToPermutation();
  EXPECT_TRUE(gamma.Then(gamma.Inverse()).IsIdentity());
  for (VertexId v = 0; v < n; ++v) {
    EXPECT_EQ(gamma(v), pi.PositionOf(v));
  }
}

}  // namespace
}  // namespace dvicl
