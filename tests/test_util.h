#ifndef DVICL_TESTS_TEST_UTIL_H_
#define DVICL_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cctype>
#include <numeric>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "perm/permutation.h"

namespace dvicl {
namespace testing_util {

// Minimal recursive-descent JSON syntax checker, enough to assert that the
// observability serializers (trace, metrics, access log, flight records)
// emit structurally valid documents without an external parser. Shared by
// obs_test and server_obs_test.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character: escaping bug
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

inline bool IsValidJson(const std::string& text) {
  return JsonChecker(text).Valid();
}

// Erdos-Renyi G(n, p) from a deterministic seed.
inline Graph RandomGraph(VertexId n, double p, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.NextBernoulli(p)) edges.emplace_back(u, v);
    }
  }
  return Graph::FromEdges(n, std::move(edges));
}

// Uniformly random permutation of 0..n-1.
inline Permutation RandomPermutation(VertexId n, uint64_t seed) {
  Rng rng(seed);
  std::vector<VertexId> image(n);
  std::iota(image.begin(), image.end(), 0);
  rng.Shuffle(&image);
  return Permutation(std::move(image));
}

// All automorphisms of `graph` by brute force over n! permutations.
// Only call for n <= 8.
inline std::vector<Permutation> BruteForceAutomorphisms(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  std::vector<VertexId> image(n);
  std::iota(image.begin(), image.end(), 0);
  std::vector<Permutation> result;
  do {
    Permutation gamma{std::vector<VertexId>(image)};
    if (IsAutomorphism(graph, gamma)) result.push_back(std::move(gamma));
  } while (std::next_permutation(image.begin(), image.end()));
  return result;
}

// Orbit partition (min-vertex representative per vertex) from a set of
// permutations.
inline std::vector<VertexId> OrbitIdsOf(VertexId n,
                                        const std::vector<Permutation>& gens) {
  std::vector<VertexId> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&parent](VertexId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const Permutation& g : gens) {
    for (VertexId v = 0; v < n; ++v) {
      VertexId a = find(v);
      VertexId b = find(g(v));
      if (a != b) parent[std::max(a, b)] = std::min(a, b);
    }
  }
  std::vector<VertexId> ids(n);
  for (VertexId v = 0; v < n; ++v) ids[v] = find(v);
  return ids;
}

// The paper's running example, Fig. 1(a): a 4-cycle 0-1-2-3, a triangle
// 4-5-6, and vertex 7 adjacent to all of 0..6. |Aut| = 8 * 6 = 48.
inline Graph PaperFigure1Graph() {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {0, 3},  // 4-cycle
                             {4, 5}, {5, 6}, {4, 6},          // triangle
                             {7, 0}, {7, 1}, {7, 2}, {7, 3},
                             {7, 4}, {7, 5}, {7, 6}};
  return Graph::FromEdges(8, std::move(edges));
}

// A graph realizing the structure of the paper's Fig. 3: axis vertex 1
// joined to two symmetric "wings". Each wing is a triangle of one color
// with a pendant vertex on each corner. |Aut| = 2 * 6 * 6 = 72.
inline Graph PaperFigure3Graph() {
  std::vector<Edge> edges = {
      // axis 1 to both triangles
      {1, 2}, {1, 4}, {1, 6}, {1, 8}, {1, 10}, {1, 12},
      // wing triangles
      {2, 4}, {4, 6}, {2, 6}, {8, 10}, {10, 12}, {8, 12},
      // pendants
      {3, 2}, {5, 4}, {7, 6}, {9, 8}, {11, 10}, {13, 12}};
  return Graph::FromEdges(14, std::move(edges));
}

}  // namespace testing_util
}  // namespace dvicl

#endif  // DVICL_TESTS_TEST_UTIL_H_
