// Failure injection and degenerate-input coverage: malformed files, budget
// exhaustion at every level, empty/trivial graphs through every public API.

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/cert_index.h"
#include "analysis/influence_max.h"
#include "analysis/k_symmetry.h"
#include "analysis/max_clique.h"
#include "analysis/quotient.h"
#include "analysis/triangles.h"
#include "datasets/generators.h"
#include "dvicl/dvicl.h"
#include "dvicl/simplify.h"
#include "graph/graph_io.h"
#include "ssm/ssm_at.h"
#include "ssm/subgraph_match.h"
#include "test_util.h"

namespace dvicl {
namespace {

using testing_util::RandomGraph;

// ---- malformed input files -------------------------------------------------

TEST(FailureInjectionTest, EdgeListGarbage) {
  const char* cases[] = {
      "0 1\n2\n",                 // missing endpoint
      "0 99999999999999999999\n", // id overflow
      "a b\n",                    // non-numeric
      "0 1 trailing is ok\n0x1 2\n",  // hex not allowed
  };
  for (const char* text : cases) {
    std::istringstream in(text);
    EXPECT_FALSE(ReadEdgeList(in).ok()) << text;
  }
}

TEST(FailureInjectionTest, EdgeListTrailingTokensTolerated) {
  // SNAP files sometimes carry weights; we require only the first two
  // fields to parse.
  std::istringstream in("0 1 0.5\n1 2 0.25\n");
  Result<Graph> g = ReadEdgeList(in);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().NumEdges(), 2u);
}

TEST(FailureInjectionTest, DimacsGarbage) {
  const char* cases[] = {
      "p edge x y\n",            // non-numeric header
      "p clause 3 2\ne 1 2\n",   // wrong format word
      "p edge 3 1\ne 0 1\n",     // 0-based endpoint
      "p edge 3 1\nz 1 2\n",     // unknown record
      "p edge 2 1\nn 3 1\n",     // color line out of range
  };
  for (const char* text : cases) {
    std::istringstream in(text);
    std::vector<uint32_t> colors;
    EXPECT_FALSE(ReadDimacs(in, &colors).ok()) << text;
  }
}

TEST(FailureInjectionTest, WriteToClosedStream) {
  std::ostringstream out;
  out.setstate(std::ios::badbit);
  EXPECT_FALSE(WriteEdgeList(RandomGraph(5, 0.5, 1), out).ok());
  EXPECT_FALSE(WriteDimacs(RandomGraph(5, 0.5, 1), out).ok());
}

// ---- budget exhaustion ------------------------------------------------------

TEST(FailureInjectionTest, DviclLeafBudgetPropagates) {
  // A CFI graph forces a giant indivisible leaf; a one-node IR budget must
  // surface as an incomplete DviCL result, never a bogus certificate.
  Graph g = CfiGraph(10, false);
  DviclOptions options;
  options.leaf_max_tree_nodes = 1;
  DviclResult r =
      DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), options);
  EXPECT_FALSE(r.completed());

  bool decided = true;
  EXPECT_FALSE(DviclIsomorphic(g, g, options, &decided));
  EXPECT_FALSE(decided);
}

TEST(FailureInjectionTest, CertificateIndexRejectsIncompleteRuns) {
  DviclOptions options;
  options.leaf_max_tree_nodes = 1;
  CertificateIndex index(options);
  Graph g = CfiGraph(10, false);
  EXPECT_EQ(index.Insert("hard", g), -1);
  EXPECT_EQ(index.NumGraphs(), 0u);
  bool ok = true;
  EXPECT_TRUE(index.FindIsomorphic(g, &ok).empty());
  EXPECT_FALSE(ok);
}

TEST(FailureInjectionTest, TimeLimitZeroMeansUnlimited) {
  Graph g = RandomGraph(20, 0.2, 9);
  DviclOptions options;
  options.time_limit_seconds = 0.0;
  EXPECT_TRUE(
      DviclCanonicalLabeling(g, Coloring::Unit(20), options).completed());
}

TEST(FailureInjectionTest, SimplifiedDviclPropagatesIncompleteness) {
  Graph g = CfiGraph(10, false);
  DviclOptions options;
  options.leaf_max_tree_nodes = 1;
  SimplifiedDviclResult r =
      DviclWithSimplification(g, Coloring::Unit(g.NumVertices()), options);
  EXPECT_FALSE(r.completed());
}

// ---- degenerate graphs through every API ------------------------------------

TEST(FailureInjectionTest, EmptyGraphEverywhere) {
  Graph empty = Graph::FromEdges(0, {});
  DviclResult r = DviclCanonicalLabeling(empty, Coloring::Unit(0), {});
  EXPECT_TRUE(r.completed());

  EXPECT_TRUE(FindMaximumClique(empty).empty());
  EXPECT_EQ(CountTriangles(empty), 0u);
  EXPECT_TRUE(GreedyInfluenceMaximization(empty, 5).seeds.empty());
  EXPECT_DOUBLE_EQ(EstimateSpread(empty, {}), 0.0);

  QuotientGraph q = BuildQuotient(empty, {});
  EXPECT_EQ(q.graph.NumVertices(), 0u);

  KSymmetryResult anon = AnonymizeKSymmetry(empty, r, 3);
  EXPECT_EQ(anon.anonymized.NumVertices(), 0u);
}

TEST(FailureInjectionTest, SingleVertexEverywhere) {
  Graph one = Graph::FromEdges(1, {});
  DviclResult r = DviclCanonicalLabeling(one, Coloring::Unit(1), {});
  ASSERT_TRUE(r.completed());
  SsmIndex index(one, r);
  EXPECT_EQ(index.SymmetricImages({0}).size(), 1u);
  EXPECT_EQ(FindMaximumClique(one).size(), 1u);
  EXPECT_EQ(FindInducedSubgraphs(one, {0}).size(), 1u);
}

TEST(FailureInjectionTest, IsolatedVerticesAreHandled) {
  // Isolated vertices form one big orbit; they must survive the pipeline.
  Graph g = Graph::FromEdges(10, {{0, 1}, {1, 2}});
  DviclResult r = DviclCanonicalLabeling(g, Coloring::Unit(10), {});
  ASSERT_TRUE(r.completed());
  const auto orbit = OrbitIdsFromGenerators(10, r.generators);
  for (VertexId v = 4; v < 10; ++v) EXPECT_EQ(orbit[v], orbit[3]);
  SsmIndex index(g, r);
  EXPECT_EQ(index.SymmetricImages({3}).size(), 7u);  // 7 isolated vertices
}

TEST(FailureInjectionTest, SsmQueryWithDuplicatesAndUnsortedInput) {
  Graph g = testing_util::PaperFigure1Graph();
  DviclResult r = DviclCanonicalLabeling(g, Coloring::Unit(8), {});
  SsmIndex index(g, r);
  // Duplicates collapse; order does not matter.
  EXPECT_EQ(index.SymmetricImages({5, 4, 5, 4}).size(),
            index.SymmetricImages({4, 5}).size());
}

TEST(FailureInjectionTest, AdversarialInitialColorings) {
  Graph g = RandomGraph(12, 0.3, 4);
  // Non-contiguous label values, already-discrete colorings, all handled.
  std::vector<uint32_t> weird = {900, 7, 7, 900, 3, 3, 3, 42, 42, 0, 0, 7};
  DviclResult r =
      DviclCanonicalLabeling(g, Coloring::FromLabels(weird), {});
  EXPECT_TRUE(r.completed());
  for (const SparseAut& gen : r.generators) {
    const Permutation dense = gen.ToDense(12);
    EXPECT_TRUE(IsAutomorphism(g, dense));
    for (VertexId v = 0; v < 12; ++v) {
      EXPECT_EQ(weird[v], weird[dense(v)]) << "color not preserved";
    }
  }

  std::vector<uint32_t> discrete(12);
  for (VertexId v = 0; v < 12; ++v) discrete[v] = 11 - v;
  DviclResult r2 =
      DviclCanonicalLabeling(g, Coloring::FromLabels(discrete), {});
  EXPECT_TRUE(r2.completed());
  EXPECT_TRUE(r2.generators.empty());  // discrete coloring: trivial group
}

TEST(FailureInjectionTest, SelfLoopsAndMultiEdgesNormalizedOnIngest) {
  // Paper footnote 1: directions removed, self-loops and multi-edges
  // deleted. The Graph constructor enforces this for every source.
  std::istringstream in("0 0\n0 1\n1 0\n0 1\n2 2\n");
  Result<Graph> g = ReadEdgeList(in);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().NumEdges(), 1u);
}

TEST(FailureInjectionTest, KSymmetryOnLeafRootIsIdentity) {
  // A CFI graph's AutoTree is a single leaf: anonymization must be a no-op
  // rather than a crash.
  Graph g = CfiGraph(8, false);
  DviclResult r =
      DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
  ASSERT_TRUE(r.completed());
  KSymmetryResult anon = AnonymizeKSymmetry(g, r, 4);
  EXPECT_EQ(anon.anonymized, g);
  EXPECT_EQ(anon.copies_added, 0u);
}

}  // namespace
}  // namespace dvicl
