#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/influence_max.h"
#include "analysis/k_symmetry.h"
#include "analysis/max_clique.h"
#include "analysis/triangles.h"
#include "dvicl/dvicl.h"
#include "test_util.h"

namespace dvicl {
namespace {

using testing_util::PaperFigure1Graph;
using testing_util::PaperFigure3Graph;
using testing_util::RandomGraph;

// Reference maximum clique size by brute force over all subsets (n <= 16).
size_t BruteForceMaxCliqueSize(const Graph& g) {
  const VertexId n = g.NumVertices();
  size_t best = 0;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<VertexId> set;
    for (VertexId v = 0; v < n; ++v) {
      if (mask & (1u << v)) set.push_back(v);
    }
    if (set.size() <= best) continue;
    bool clique = true;
    for (size_t i = 0; i < set.size() && clique; ++i) {
      for (size_t j = i + 1; j < set.size() && clique; ++j) {
        clique = g.HasEdge(set[i], set[j]);
      }
    }
    if (clique) best = set.size();
  }
  return best;
}

TEST(MaxCliqueTest, KnownGraphs) {
  EXPECT_EQ(FindMaximumClique(PaperFigure1Graph()).size(), 4u);  // 4,5,6,7
  Graph k5 = Graph::FromEdges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4},
                                  {1, 2}, {1, 3}, {1, 4},
                                  {2, 3}, {2, 4}, {3, 4}});
  auto clique = FindMaximumClique(k5);
  EXPECT_EQ(clique.size(), 5u);
  Graph triangle_free = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(FindMaximumClique(triangle_free).size(), 2u);
  EXPECT_TRUE(FindMaximumClique(Graph::FromEdges(0, {})).empty());
  EXPECT_EQ(FindMaximumClique(Graph::FromEdges(3, {})).size(), 1u);
}

TEST(MaxCliqueTest, MatchesBruteForceOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 12; ++seed) {
    Graph g = RandomGraph(12, 0.45, seed);
    EXPECT_EQ(FindMaximumClique(g).size(), BruteForceMaxCliqueSize(g))
        << "seed=" << seed;
  }
}

TEST(MaxCliqueTest, ResultIsActuallyAClique) {
  Graph g = RandomGraph(20, 0.4, 7);
  auto clique = FindMaximumClique(g);
  for (size_t i = 0; i < clique.size(); ++i) {
    for (size_t j = i + 1; j < clique.size(); ++j) {
      EXPECT_TRUE(g.HasEdge(clique[i], clique[j]));
    }
  }
}

TEST(MaxCliqueTest, EnumerateAllOfSize) {
  // Fig. 1(a) has exactly one maximum clique {4,5,6,7}.
  Graph g = PaperFigure1Graph();
  auto cliques = FindAllCliquesOfSize(g, 4);
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0], (std::vector<VertexId>{4, 5, 6, 7}));
  // Triangles of K4: four of size 3.
  Graph k4 = Graph::FromEdges(4, {{0, 1}, {0, 2}, {0, 3},
                                  {1, 2}, {1, 3}, {2, 3}});
  EXPECT_EQ(FindAllCliquesOfSize(k4, 3).size(), 4u);
  EXPECT_EQ(FindAllCliquesOfSize(k4, 3, 2).size(), 2u);  // cap
}

TEST(TrianglesTest, CountsMatchEnumeration) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Graph g = RandomGraph(15, 0.3, seed);
    EXPECT_EQ(CountTriangles(g), EnumerateTriangles(g).size());
  }
}

TEST(TrianglesTest, KnownCounts) {
  // {4,5,6}, three hub triangles in the triangle part, four hub triangles
  // over the 4-cycle's edges.
  EXPECT_EQ(CountTriangles(PaperFigure1Graph()), 8u);
  Graph k5 = Graph::FromEdges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4},
                                  {1, 2}, {1, 3}, {1, 4},
                                  {2, 3}, {2, 4}, {3, 4}});
  EXPECT_EQ(CountTriangles(k5), 10u);  // C(5,3)
  EXPECT_EQ(CountTriangles(Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}})),
            0u);
}

TEST(TrianglesTest, TrianglesAreSortedAndValid) {
  Graph g = RandomGraph(20, 0.3, 5);
  for (const auto& t : EnumerateTriangles(g)) {
    ASSERT_EQ(t.size(), 3u);
    EXPECT_LT(t[0], t[1]);
    EXPECT_LT(t[1], t[2]);
    EXPECT_TRUE(g.HasEdge(t[0], t[1]));
    EXPECT_TRUE(g.HasEdge(t[1], t[2]));
    EXPECT_TRUE(g.HasEdge(t[0], t[2]));
  }
}

TEST(TrianglesTest, EnumerationCap) {
  Graph k5 = Graph::FromEdges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4},
                                  {1, 2}, {1, 3}, {1, 4},
                                  {2, 3}, {2, 4}, {3, 4}});
  EXPECT_EQ(EnumerateTriangles(k5, 4).size(), 4u);
}

TEST(InfluenceMaxTest, SelectsHubFirstOnStar) {
  // On a star, the hub has maximal spread.
  std::vector<Edge> edges;
  for (VertexId v = 1; v <= 20; ++v) edges.emplace_back(0, v);
  Graph star = Graph::FromEdges(21, std::move(edges));
  InfluenceMaxOptions options;
  options.edge_probability = 0.5;
  options.monte_carlo_rounds = 200;
  auto result = GreedyInfluenceMaximization(star, 1, options);
  ASSERT_EQ(result.seeds.size(), 1u);
  EXPECT_EQ(result.seeds[0], 0u);
  EXPECT_GT(result.estimated_spread, 1.0);
}

TEST(InfluenceMaxTest, SeedsAreDistinctAndBounded) {
  Graph g = RandomGraph(40, 0.1, 3);
  auto result = GreedyInfluenceMaximization(g, 10);
  EXPECT_EQ(result.seeds.size(), 10u);
  std::vector<VertexId> sorted = result.seeds;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
}

TEST(InfluenceMaxTest, KLargerThanGraph) {
  Graph g = RandomGraph(5, 0.5, 1);
  auto result = GreedyInfluenceMaximization(g, 50);
  EXPECT_EQ(result.seeds.size(), 5u);
}

TEST(InfluenceMaxTest, SpreadDeterministicGivenSeed) {
  Graph g = RandomGraph(30, 0.15, 2);
  InfluenceMaxOptions options;
  EXPECT_DOUBLE_EQ(EstimateSpread(g, {0, 1}, options),
                   EstimateSpread(g, {0, 1}, options));
}

TEST(KSymmetryTest, DuplicatesUnderRepresentedClasses) {
  // Fig. 3 graph: wings already symmetric (class of 2); with k = 3, one
  // more wing copy is added.
  Graph g = PaperFigure3Graph();
  DviclResult r = DviclCanonicalLabeling(g, Coloring::Unit(14), {});
  ASSERT_TRUE(r.completed());
  KSymmetryResult anonymized = AnonymizeKSymmetry(g, r, 3);
  EXPECT_GT(anonymized.copies_added, 0u);
  EXPECT_GT(anonymized.anonymized.NumVertices(), g.NumVertices());

  // Verify via DviCL on the output: every wing vertex now has >= 2
  // automorphic counterparts.
  DviclResult check = DviclCanonicalLabeling(
      anonymized.anonymized, Coloring::Unit(anonymized.anonymized.NumVertices()),
      {});
  ASSERT_TRUE(check.completed());
  const auto orbits = OrbitIdsFromGenerators(
      anonymized.anonymized.NumVertices(), check.generators);
  std::vector<uint32_t> orbit_size(anonymized.anonymized.NumVertices(), 0);
  for (VertexId v = 0; v < anonymized.anonymized.NumVertices(); ++v) {
    ++orbit_size[orbits[v]];
  }
  // Wing vertices of the ORIGINAL graph (2..13) must be in orbits >= 3.
  for (VertexId v = 2; v < 14; ++v) {
    EXPECT_GE(orbit_size[orbits[v]], 3u) << "v=" << v;
  }
}

TEST(KSymmetryTest, KOneIsIdentity) {
  Graph g = PaperFigure3Graph();
  DviclResult r = DviclCanonicalLabeling(g, Coloring::Unit(14), {});
  KSymmetryResult anonymized = AnonymizeKSymmetry(g, r, 1);
  EXPECT_EQ(anonymized.anonymized, g);
  EXPECT_EQ(anonymized.copies_added, 0u);
}

}  // namespace
}  // namespace dvicl
