// Golden-certificate regression corpus (tests/golden/): for every family in
// testing_util::GoldenFamilies() — the 22 parallel-determinism families plus
// the paper's worked examples and the cert-cache gadget forest — a checked-in
// file pins the exact canonical certificate and |Aut(G)| (Schreier-Sims
// order of the returned generators). The test serializes the current run in
// the same format and compares BYTES, so any drift in refinement, target-cell
// selection, IR search order, divide decisions or generator lifting fails
// loudly instead of silently changing canonical forms between releases.
//
// The corpus is also replayed with the canonical-form cache enabled: a cache
// hit must reconstruct the identical certificate, so cache-on runs are held
// to the same golden bytes.
//
// Regeneration is deliberately inconvenient: only scripts/regen_golden.sh
// (which sets DVICL_REGEN_GOLDEN=1) rewrites the corpus, so an accidental
// behavior change cannot self-bless.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/big_uint.h"
#include "dvicl/dvicl.h"
#include "family_util.h"
#include "perm/schreier_sims.h"
#include "refine/coloring.h"

#ifndef DVICL_GOLDEN_DIR
#error "DVICL_GOLDEN_DIR must be defined by tests/CMakeLists.txt"
#endif

namespace dvicl {
namespace {

using testing_util::Family;
using testing_util::GoldenFamilies;

bool RegenRequested() {
  const char* env = std::getenv("DVICL_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

// Clears DVICL_ARENA for the duration of a test so DviclOptions::arena takes
// effect even under a CI matrix leg that pins the mode, then restores the
// pin for subsequent tests in the same binary.
class ScopedClearArenaEnv {
 public:
  ScopedClearArenaEnv() {
    const char* env = std::getenv("DVICL_ARENA");
    if (env != nullptr) {
      saved_ = env;
      had_value_ = true;
      unsetenv("DVICL_ARENA");
    }
  }
  ~ScopedClearArenaEnv() {
    if (had_value_) setenv("DVICL_ARENA", saved_.c_str(), /*overwrite=*/1);
  }

 private:
  std::string saved_;
  bool had_value_ = false;
};

std::filesystem::path GoldenPath(const std::string& family) {
  return std::filesystem::path(DVICL_GOLDEN_DIR) / (family + ".golden");
}

BigUint GroupOrderOf(VertexId n, const std::vector<SparseAut>& gens) {
  SchreierSims chain(n);
  for (const SparseAut& gen : gens) chain.AddGenerator(gen.ToDense(n));
  return chain.Order();
}

// The on-disk format. Fixed-width hex words keep diffs line-per-word, so a
// single drifted certificate word shows as a one-line change in review.
std::string Serialize(const std::string& family, const Graph& g,
                      const BigUint& aut_order, const Certificate& cert) {
  std::ostringstream out;
  out << "# Golden canonical certificate and automorphism group order.\n"
      << "# Regenerate ONLY via scripts/regen_golden.sh.\n"
      << "family " << family << "\n"
      << "n " << g.NumVertices() << "\n"
      << "m " << g.NumEdges() << "\n"
      << "aut_order " << aut_order.ToDecimalString() << "\n"
      << "certificate " << cert.size() << "\n";
  for (uint64_t word : cert) {
    out << std::hex << std::setw(16) << std::setfill('0') << word << std::dec
        << "\n";
  }
  return out.str();
}

std::string ReadFileOrEmpty(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

DviclResult RunFamily(const Graph& g, bool cert_cache, bool arena = true) {
  DviclOptions options;
  options.cert_cache = cert_cache;
  options.arena = arena;
  return DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), options);
}

class GoldenCertTest : public ::testing::TestWithParam<Family> {};

TEST_P(GoldenCertTest, MatchesGoldenBytes) {
  const Family& family = GetParam();
  const Graph g = family.make();

  const DviclResult result = RunFamily(g, /*cert_cache=*/false);
  ASSERT_TRUE(result.completed());
  const std::string current =
      Serialize(family.name, g,
                GroupOrderOf(g.NumVertices(), result.generators),
                result.certificate);

  const std::filesystem::path path = GoldenPath(family.name);
  if (RegenRequested()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << current;
    ASSERT_TRUE(out.good()) << "short write to " << path;
    std::printf("regenerated %s\n", path.string().c_str());
    return;
  }

  const std::string golden = ReadFileOrEmpty(path);
  ASSERT_FALSE(golden.empty())
      << "missing golden file " << path
      << " — if this family is new, run scripts/regen_golden.sh and review "
         "the generated file into the commit";
  EXPECT_EQ(golden, current)
      << "canonical form drifted from the checked-in corpus for "
      << family.name
      << ". If the change is intentional, regenerate via "
         "scripts/regen_golden.sh and justify the drift in the commit.";
}

TEST_P(GoldenCertTest, CacheOnRunMatchesGoldenBytes) {
  if (RegenRequested()) GTEST_SKIP() << "regen handled by MatchesGoldenBytes";
  const Family& family = GetParam();
  const Graph g = family.make();

  const DviclResult result = RunFamily(g, /*cert_cache=*/true);
  ASSERT_TRUE(result.completed());
  const std::string current =
      Serialize(family.name, g,
                GroupOrderOf(g.NumVertices(), result.generators),
                result.certificate);

  const std::string golden = ReadFileOrEmpty(GoldenPath(family.name));
  ASSERT_FALSE(golden.empty()) << "missing golden file for " << family.name;
  EXPECT_EQ(golden, current)
      << "cert-cache-enabled run drifted from the golden corpus for "
      << family.name << " — a cache hit failed to reconstruct the exact "
      << "bytes the IR search produces.";
}

TEST_P(GoldenCertTest, ArenaOffRunMatchesGoldenBytes) {
  // The default legs above run with the arena on; this leg pins the plain
  // heap-allocation path to the same golden bytes, so the two memory modes
  // can never drift apart without one of them failing the corpus. Both the
  // cache-off and cache-on variants run here: the arena also backs the
  // cert-cache key derivation scratch, so the key (and therefore which
  // leaves hit) must be mode-independent too.
  if (RegenRequested()) GTEST_SKIP() << "regen handled by MatchesGoldenBytes";
  ScopedClearArenaEnv clear_env;
  const Family& family = GetParam();
  const Graph g = family.make();

  const std::string golden = ReadFileOrEmpty(GoldenPath(family.name));
  ASSERT_FALSE(golden.empty()) << "missing golden file for " << family.name;

  for (const bool cache : {false, true}) {
    const DviclResult result = RunFamily(g, cache, /*arena=*/false);
    ASSERT_TRUE(result.completed()) << "cache=" << cache;
    const std::string current =
        Serialize(family.name, g,
                  GroupOrderOf(g.NumVertices(), result.generators),
                  result.certificate);
    EXPECT_EQ(golden, current)
        << "arena-off run (cache=" << cache
        << ") drifted from the golden corpus for " << family.name
        << " — heap and arena legs must produce identical canonical bytes.";
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenCertTest,
                         ::testing::ValuesIn(GoldenFamilies()),
                         [](const ::testing::TestParamInfo<Family>& info) {
                           return info.param.name;
                         });

TEST(GoldenCorpusTest, DirectoryHasExactlyTheExpectedFiles) {
  if (RegenRequested()) GTEST_SKIP() << "corpus is being rewritten";
  // A stale file (renamed family, deleted family) would silently stop being
  // compared; hold the directory to exact set equality with the family list.
  std::set<std::string> expected;
  for (const Family& family : GoldenFamilies()) {
    expected.insert(family.name + ".golden");
  }
  std::set<std::string> actual;
  for (const auto& entry :
       std::filesystem::directory_iterator(DVICL_GOLDEN_DIR)) {
    actual.insert(entry.path().filename().string());
  }
  EXPECT_EQ(actual, expected);
}

}  // namespace
}  // namespace dvicl
