// End-to-end soundness + completeness of the canonical labeling: counting
// isomorphism classes of ALL graphs on n vertices must reproduce the known
// sequence (OEIS A000088: 1, 1, 2, 4, 11, 34, 156, 1044). An unsound
// certificate (two non-isomorphic graphs colliding) undercounts; an
// incomplete one (isomorphic graphs separating) overcounts — so this pins
// both directions at once, for every graph up to n = 6 and a sample at
// n = 7, across DviCL, simplified DviCL and plain IR.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "dvicl/dvicl.h"
#include "dvicl/simplify.h"
#include "datasets/generators.h"
#include "ir/ir_canonical.h"

namespace dvicl {
namespace {

Graph GraphFromMask(VertexId n, uint64_t mask) {
  std::vector<Edge> edges;
  size_t bit = 0;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v, ++bit) {
      if (mask & (1ull << bit)) edges.emplace_back(u, v);
    }
  }
  return Graph::FromEdges(n, std::move(edges));
}

// A000088 for n = 0..6.
constexpr uint64_t kGraphCounts[] = {1, 1, 2, 4, 11, 34, 156};

TEST(EnumerationTest, DviclCountsAllIsomorphismClasses) {
  for (VertexId n = 0; n <= 6; ++n) {
    const uint64_t num_masks = 1ull << (n * (n - 1) / 2);
    std::set<Certificate> classes;
    for (uint64_t mask = 0; mask < num_masks; ++mask) {
      Graph g = GraphFromMask(n, mask);
      DviclResult r = DviclCanonicalLabeling(g, Coloring::Unit(n), {});
      ASSERT_TRUE(r.completed());
      classes.insert(r.certificate);
    }
    EXPECT_EQ(classes.size(), kGraphCounts[n]) << "n=" << n;
  }
}

TEST(EnumerationTest, SimplifiedDviclCountsAllIsomorphismClasses) {
  for (VertexId n = 2; n <= 5; ++n) {
    const uint64_t num_masks = 1ull << (n * (n - 1) / 2);
    std::set<Certificate> classes;
    for (uint64_t mask = 0; mask < num_masks; ++mask) {
      Graph g = GraphFromMask(n, mask);
      SimplifiedDviclResult r =
          DviclWithSimplification(g, Coloring::Unit(n), {});
      ASSERT_TRUE(r.completed());
      classes.insert(r.certificate);
    }
    EXPECT_EQ(classes.size(), kGraphCounts[n]) << "n=" << n;
  }
}

TEST(EnumerationTest, IrPresetsCountAllIsomorphismClasses) {
  for (IrPreset preset : {IrPreset::kNautyLike, IrPreset::kBlissLike,
                          IrPreset::kTracesLike}) {
    for (VertexId n = 2; n <= 5; ++n) {
      const uint64_t num_masks = 1ull << (n * (n - 1) / 2);
      std::set<Certificate> classes;
      IrOptions options;
      options.preset = preset;
      for (uint64_t mask = 0; mask < num_masks; ++mask) {
        Graph g = GraphFromMask(n, mask);
        IrResult r = IrCanonicalLabeling(g, Coloring::Unit(n), options);
        ASSERT_TRUE(r.completed());
        classes.insert(r.certificate);
      }
      EXPECT_EQ(classes.size(), kGraphCounts[n])
          << "n=" << n << " preset=" << static_cast<int>(preset);
    }
  }
}

TEST(EnumerationTest, SampledSevenVertexGraphsAgreeAcrossAlgorithms) {
  // n = 7 has 2^21 graphs; sample pairs and require the three certificate
  // functions to induce the SAME equivalence on the sample.
  Rng rng(2026);
  std::vector<Graph> sample;
  for (int i = 0; i < 120; ++i) {
    sample.push_back(GraphFromMask(7, rng.Next() & ((1ull << 21) - 1)));
  }
  std::vector<Certificate> dvicl_cert;
  std::vector<Certificate> ir_cert;
  for (const Graph& g : sample) {
    dvicl_cert.push_back(
        DviclCanonicalLabeling(g, Coloring::Unit(7), {}).certificate);
    ir_cert.push_back(
        IrCanonicalLabeling(g, Coloring::Unit(7), {}).certificate);
  }
  for (size_t i = 0; i < sample.size(); ++i) {
    for (size_t j = i + 1; j < sample.size(); ++j) {
      EXPECT_EQ(dvicl_cert[i] == dvicl_cert[j], ir_cert[i] == ir_cert[j])
          << "pair " << i << "," << j;
    }
  }
}

// CFI pairs are the classic adversarial family: 1-WL-identical but
// non-isomorphic. Every size and preset must separate them.
TEST(EnumerationTest, CfiPairsSeparatedAtAllSizes) {
  for (uint32_t base : {6u, 8u, 10u, 12u}) {
    Graph straight = CfiGraph(base, false);
    Graph twisted = CfiGraph(base, true);
    EXPECT_FALSE(DviclIsomorphic(straight, twisted)) << "base=" << base;
    // And the twisted graph is isomorphic to itself relabeled.
    EXPECT_TRUE(DviclIsomorphic(twisted, twisted));
  }
}

}  // namespace
}  // namespace dvicl
