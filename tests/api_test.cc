// Tests for auxiliary public APIs: explicit isomorphism witnesses, AutoTree
// rendering, BigUint combinatorics, and sparse automorphisms.

#include <gtest/gtest.h>

#include "common/big_uint.h"
#include "dvicl/auto_tree.h"
#include "dvicl/dvicl.h"
#include "perm/schreier_sims.h"
#include "test_util.h"

namespace dvicl {
namespace {

using testing_util::PaperFigure3Graph;
using testing_util::RandomGraph;
using testing_util::RandomPermutation;

TEST(FindIsomorphismTest, WitnessActuallyMapsG1ToG2) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g1 = RandomGraph(20, 0.25, seed);
    Permutation gamma = RandomPermutation(20, seed + 70);
    Graph g2 = g1.RelabeledBy(gamma.ImageArray());
    Result<Permutation> witness = DviclFindIsomorphism(g1, g2);
    ASSERT_TRUE(witness.ok()) << witness.status().ToString();
    EXPECT_EQ(g1.RelabeledBy(witness.value().ImageArray()), g2)
        << "seed=" << seed;
  }
}

TEST(FindIsomorphismTest, NonIsomorphicReturnsNotFound) {
  Graph path = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  Graph star = Graph::FromEdges(4, {{0, 1}, {0, 2}, {0, 3}});
  Result<Permutation> witness = DviclFindIsomorphism(path, star);
  ASSERT_FALSE(witness.ok());
  EXPECT_EQ(witness.status().code(), Status::Code::kNotFound);
}

TEST(FindIsomorphismTest, SizeMismatchIsNotFound) {
  Result<Permutation> witness = DviclFindIsomorphism(
      Graph::FromEdges(3, {{0, 1}}), Graph::FromEdges(4, {{0, 1}}));
  ASSERT_FALSE(witness.ok());
  EXPECT_EQ(witness.status().code(), Status::Code::kNotFound);
}

TEST(FindIsomorphismTest, BudgetExhaustionIsResourceExhausted) {
  // A cycle stays one equitable cell, so the leaf IR needs a real search;
  // a one-node budget cannot complete it.
  std::vector<Edge> edges;
  for (VertexId v = 0; v < 16; ++v) edges.emplace_back(v, (v + 1) % 16);
  Graph g = Graph::FromEdges(16, std::move(edges));
  DviclOptions options;
  options.leaf_max_tree_nodes = 1;
  Result<Permutation> witness = DviclFindIsomorphism(g, g, options);
  ASSERT_FALSE(witness.ok());
  EXPECT_EQ(witness.status().code(), Status::Code::kResourceExhausted);
}

TEST(FormatAutoTreeTest, RendersStructure) {
  Graph g = PaperFigure3Graph();
  DviclResult r = DviclCanonicalLabeling(g, Coloring::Unit(14), {});
  ASSERT_TRUE(r.completed());
  const std::string text = FormatAutoTree(r.tree);
  // Root line, both divide kinds, and symmetry classes must appear.
  EXPECT_NE(text.find("DivideI"), std::string::npos);
  EXPECT_NE(text.find("DivideS"), std::string::npos);
  EXPECT_NE(text.find("leaf"), std::string::npos);
  EXPECT_NE(text.find("class="), std::string::npos);
  // One line per node.
  EXPECT_EQ(static_cast<uint32_t>(
                std::count(text.begin(), text.end(), '\n')),
            r.tree.NumNodes());
}

TEST(FormatAutoTreeTest, TruncationMarker) {
  Graph g = PaperFigure3Graph();
  DviclResult r = DviclCanonicalLabeling(g, Coloring::Unit(14), {});
  const std::string text = FormatAutoTree(r.tree, 3);
  EXPECT_NE(text.find("truncated"), std::string::npos);
}

TEST(BigUintTest, BinomialKnownValues) {
  EXPECT_EQ(BigUint::Binomial(5, 2).ToDecimalString(), "10");
  EXPECT_EQ(BigUint::Binomial(10, 0).ToDecimalString(), "1");
  EXPECT_EQ(BigUint::Binomial(10, 10).ToDecimalString(), "1");
  EXPECT_TRUE(BigUint::Binomial(4, 7).IsZero());
  EXPECT_EQ(BigUint::Binomial(52, 5).ToDecimalString(), "2598960");
  // A value beyond 64 bits: C(100, 50).
  EXPECT_EQ(BigUint::Binomial(100, 50).ToDecimalString(),
            "100891344545564193334812497256");
}

TEST(BigUintTest, BinomialPascalIdentity) {
  for (uint64_t n = 1; n < 30; ++n) {
    for (uint64_t k = 1; k <= n; ++k) {
      EXPECT_EQ(BigUint::Binomial(n, k),
                BigUint::Binomial(n - 1, k - 1) + BigUint::Binomial(n - 1, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(BigUintTest, DivideBySmallExact) {
  BigUint v = BigUint::Factorial(30);
  BigUint w = v;
  w.DivideBySmall(30);
  EXPECT_EQ(w, BigUint::Factorial(29));
  // Floor semantics on inexact division.
  BigUint seven(7);
  seven.DivideBySmall(2);
  EXPECT_EQ(seven.ToUint64(), 3u);
}

TEST(AutOrderFromTreeTest, MatchesSchreierSimsAcrossFamilies) {
  const Graph graphs[] = {
      testing_util::PaperFigure1Graph(),     // 48
      PaperFigure3Graph(),                   // 72
      RandomGraph(25, 0.2, 1),
      RandomGraph(25, 0.08, 2),
  };
  for (const Graph& g : graphs) {
    DviclResult r =
        DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
    ASSERT_TRUE(r.completed());
    SchreierSims chain(g.NumVertices());
    for (const SparseAut& gen : r.generators) {
      chain.AddGenerator(gen.ToDense(g.NumVertices()));
    }
    EXPECT_EQ(AutomorphismOrderFromTree(r.tree), chain.Order());
  }
}

TEST(AutOrderFromTreeTest, KnownOrders) {
  // Fig. 1(a): 48. Fig. 3: 72. Two disjoint triangles: 72. K5: 120.
  struct Case {
    Graph graph;
    uint64_t order;
  } cases[] = {
      {testing_util::PaperFigure1Graph(), 48},
      {PaperFigure3Graph(), 72},
      {Graph::FromEdges(6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}}),
       72},
      {Graph::FromEdges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3},
                            {1, 4}, {2, 3}, {2, 4}, {3, 4}}),
       120},
  };
  for (const Case& c : cases) {
    DviclResult r = DviclCanonicalLabeling(
        c.graph, Coloring::Unit(c.graph.NumVertices()), {});
    ASSERT_TRUE(r.completed());
    EXPECT_EQ(AutomorphismOrderFromTree(r.tree), BigUint(c.order));
  }
}

TEST(AutOrderFromTreeTest, LargeTwinGraphOrderIsAstronomical) {
  // 50 twins of one hub vertex: Aut contains S_50; order has > 60 digits,
  // exercising the BigUint path end-to-end.
  std::vector<Edge> edges;
  for (VertexId v = 1; v <= 50; ++v) edges.emplace_back(0, v);
  Graph star = Graph::FromEdges(51, std::move(edges));
  DviclResult r = DviclCanonicalLabeling(star, Coloring::Unit(51), {});
  ASSERT_TRUE(r.completed());
  EXPECT_EQ(AutomorphismOrderFromTree(r.tree), BigUint::Factorial(50));
}

TEST(SparseAutTest, DenseRoundTrip) {
  SparseAut aut;
  aut.moves = {{1, 4}, {4, 1}, {6, 7}, {7, 6}};
  Permutation dense = aut.ToDense(10);
  EXPECT_EQ(dense.ToCycleString(), "(1,4)(6,7)");
  EXPECT_EQ(aut.ImageOf(1), 4u);
  EXPECT_EQ(aut.ImageOf(4), 1u);
  EXPECT_EQ(aut.ImageOf(0), 0u);
  EXPECT_EQ(aut.ImageOf(9), 9u);
  EXPECT_FALSE(aut.IsIdentity());
  EXPECT_TRUE(SparseAut{}.IsIdentity());
}

}  // namespace
}  // namespace dvicl
