#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "common/big_uint.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace dvicl {
namespace {

TEST(BigUintTest, ZeroAndSmallValues) {
  BigUint zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_EQ(zero.ToDecimalString(), "0");
  EXPECT_EQ(zero.ToUint64(), 0u);

  BigUint one(1);
  EXPECT_FALSE(one.IsZero());
  EXPECT_EQ(one.ToDecimalString(), "1");
  EXPECT_EQ((zero + one).ToDecimalString(), "1");
}

TEST(BigUintTest, AdditionWithCarry) {
  BigUint a(0xffffffffffffffffull);
  BigUint b(1);
  EXPECT_EQ((a + b).ToDecimalString(), "18446744073709551616");
}

TEST(BigUintTest, MultiplicationMatchesUint64) {
  BigUint a(123456789);
  BigUint b(987654321);
  EXPECT_EQ((a * b).ToUint64(), 123456789ull * 987654321ull);
}

TEST(BigUintTest, MultiplicationByZero) {
  BigUint a(42);
  BigUint zero;
  EXPECT_TRUE((a * zero).IsZero());
  EXPECT_TRUE((zero * a).IsZero());
}

TEST(BigUintTest, FactorialKnownValues) {
  EXPECT_EQ(BigUint::Factorial(0).ToDecimalString(), "1");
  EXPECT_EQ(BigUint::Factorial(5).ToDecimalString(), "120");
  EXPECT_EQ(BigUint::Factorial(20).ToDecimalString(), "2432902008176640000");
  EXPECT_EQ(BigUint::Factorial(25).ToDecimalString(),
            "15511210043330985984000000");
}

TEST(BigUintTest, Comparisons) {
  EXPECT_LT(BigUint(5), BigUint(7));
  EXPECT_LT(BigUint(0xffffffffull), BigUint(0x100000000ull));
  EXPECT_EQ(BigUint(123), BigUint(123));
  EXPECT_GE(BigUint::Factorial(10), BigUint::Factorial(9));
}

TEST(BigUintTest, CompactStringScientific) {
  EXPECT_EQ(BigUint(123).ToCompactString(), "123");
  EXPECT_EQ(BigUint(1234567).ToCompactString(), "1234567");
  // 8.82E+15, as the paper prints for wikivote.
  BigUint big(8820000000000000ull);
  EXPECT_EQ(big.ToCompactString(), "8.82E+15");
}

TEST(BigUintTest, FitsUint64Boundary) {
  BigUint big = BigUint::Factorial(20);  // still < 2^64
  EXPECT_TRUE(big.FitsUint64());
  BigUint too_big = BigUint::Factorial(21);
  EXPECT_FALSE(too_big.FitsUint64());
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.Next() == b.Next()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(11);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  Status bad = Status::InvalidArgument("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.message(), "nope");
  EXPECT_EQ(bad.ToString(), "InvalidArgument: nope");
}

TEST(StatusTest, ResultCarriesValueOrStatus) {
  Result<int> good(42);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);

  Result<int> bad(Status::NotFound("missing"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kNotFound);
}

// Annotated counter: the DVICL_GUARDED_BY/DVICL_REQUIRES usage pattern the
// fleet-wide migration applies (DESIGN.md §14), exercised for behavior here
// and for analysis in the -Wthread-safety CI leg.
class GuardedCounter {
 public:
  void Add(int delta) {
    MutexLock lock(mu_);
    AddLocked(delta);
  }
  int Value() const {
    MutexLock lock(mu_);
    return value_;
  }

 private:
  void AddLocked(int delta) DVICL_REQUIRES(mu_) { value_ += delta; }

  mutable Mutex mu_;
  int value_ DVICL_GUARDED_BY(mu_) = 0;
};

TEST(MutexTest, MutualExclusionAcrossThreads) {
  GuardedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kIncrements);
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  std::thread contender([&mu] { EXPECT_FALSE(mu.TryLock()); });
  contender.join();
  mu.Unlock();
}

TEST(CondVarTest, WaitReleasesMutexAndSeesNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // DVICL_GUARDED_BY is for members; locals by use
  std::thread producer([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    cv.Wait(mu, [&] { return ready; });
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(CondVarTest, WaitForTimesOutWhenNeverNotified) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const bool satisfied =
      cv.WaitFor(mu, std::chrono::milliseconds(10), [] { return false; });
  EXPECT_FALSE(satisfied);
}

}  // namespace
}  // namespace dvicl
