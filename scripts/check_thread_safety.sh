#!/usr/bin/env bash
# Thread-safety analysis gate (DESIGN.md §14).
#
#   scripts/check_thread_safety.sh [--require]
#
# Three legs, all clang (the analysis is clang-only):
#
#   1. Fleet build: configure build-tsafety/ with clang and
#      -DDVICL_THREAD_SAFETY=ON (-Wthread-safety -Werror=thread-safety) and
#      build the whole tree. Every DVICL_GUARDED_BY / DVICL_REQUIRES
#      annotation in src/ is checked; one unguarded access fails the build.
#   2. Must-fail smoke: tests/static/thread_safety_fail.cc — three
#      canonical violations — compiled standalone MUST be rejected. This is
#      the meta-check that the analysis is actually firing (a no-op macro
#      header would make leg 1 pass vacuously).
#   3. Control: tests/static/thread_safety_ok.cc — the same shape, locked
#      correctly — MUST compile clean.
#
# Without clang installed the gate is skipped with exit 0 (the dev
# container is gcc-only; annotations still compile there as no-ops).
# CI passes --require so a missing clang fails loudly instead.

set -euo pipefail
cd "$(dirname "$0")/.."

require=0
if [[ "${1:-}" == "--require" ]]; then
  require=1
fi

cxx=""
for candidate in clang++ clang++-20 clang++-19 clang++-18 clang++-17 \
                 clang++-16 clang++-15 clang++-14; do
  if command -v "$candidate" >/dev/null 2>&1; then
    cxx="$candidate"
    break
  fi
done
if [[ -z "$cxx" ]]; then
  if [[ "$require" == 1 ]]; then
    echo "error: no clang++ found and --require given" >&2
    exit 1
  fi
  echo "thread-safety gate: SKIPPED (no clang++ on PATH; the analysis is" \
       "clang-only — CI runs it)"
  exit 0
fi
cc="${cxx/clang++/clang}"

echo "=== thread-safety leg 1: fleet build with -DDVICL_THREAD_SAFETY=ON" \
     "($cxx) ==="
cmake -B build-tsafety -S . -DDVICL_THREAD_SAFETY=ON \
    -DCMAKE_C_COMPILER="$cc" -DCMAKE_CXX_COMPILER="$cxx" >/dev/null
cmake --build build-tsafety -j

flags=(-std=c++20 -Isrc -Wthread-safety -Werror=thread-safety
       -fsyntax-only)

echo "=== thread-safety leg 2: tests/static/thread_safety_fail.cc must be" \
     "rejected ==="
if "$cxx" "${flags[@]}" tests/static/thread_safety_fail.cc 2>fail.log; then
  echo "error: thread_safety_fail.cc compiled clean — the analysis is not" \
       "firing (check the DVICL_ macros and the -Wthread-safety flags)" >&2
  exit 1
fi
# Every seeded violation class must be individually diagnosed.
for diag in "-Wthread-safety-analysis" "requires holding mutex" \
            "releasing mutex"; do
  if ! grep -q -- "$diag" fail.log; then
    echo "error: expected diagnostic '$diag' missing from:" >&2
    cat fail.log >&2
    exit 1
  fi
done
rm -f fail.log

echo "=== thread-safety leg 3: tests/static/thread_safety_ok.cc must" \
     "compile clean ==="
"$cxx" "${flags[@]}" tests/static/thread_safety_ok.cc

echo "thread-safety gate: OK"
