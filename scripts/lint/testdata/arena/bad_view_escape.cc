// Fixture: zero-alloc views (.Cells() / .ColorOffsetsView()) escaping the
// statement scope — returned while a frame is open, or stored into a
// member of a heap-escaping type (view-escape).
#include <cstdint>
#include <span>

struct Arena {};
struct ArenaFrame {
  explicit ArenaFrame(Arena*) {}
};
struct CellStartRange {};
struct Coloring {
  explicit Coloring(Arena*) {}
  CellStartRange Cells() const { return {}; }
  std::span<const uint32_t> ColorOffsetsView() const { return {}; }
};

std::span<const uint32_t> LeakOffsets(Arena* scratch) {
  ArenaFrame frame(scratch);
  Coloring pi(scratch);
  return pi.ColorOffsetsView();  // EXPECT-FINDING(view-escape)
}

CellStartRange LeakCells(Arena* scratch) {
  ArenaFrame frame(scratch);
  Coloring pi(scratch);
  return pi.Cells();  // EXPECT-FINDING(view-escape)
}

class LeafSummary {
 public:
  void Capture(const Coloring& pi) {
    offsets_ = pi.ColorOffsetsView();  // EXPECT-FINDING(view-escape)
  }

 private:
  std::span<const uint32_t> offsets_;
};
