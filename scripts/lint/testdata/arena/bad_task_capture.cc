// Fixture: tasks submitted to the pool capturing arena-bound state by
// reference (task-capture) — the task may run after the submitting scope's
// frame rewinds.
#include <cstdint>
#include <functional>

struct Arena {};
struct ArenaFrame {
  explicit ArenaFrame(Arena*) {}
};
template <typename T, int N = 8>
struct SmallVec {
  explicit SmallVec(Arena*) {}
};
struct TaskGroup {
  void Submit(std::function<void()> fn) { fn(); }
};

void BlanketByRef(TaskGroup* group, Arena* scratch) {
  ArenaFrame frame(scratch);
  SmallVec<uint32_t> candidates(scratch);
  group->Submit([&] { (void)candidates; });  // EXPECT-FINDING(task-capture)
}

void NamedByRef(TaskGroup* group, Arena* arena) {
  SmallVec<uint32_t> moves(arena);
  group->Submit([&moves] { (void)moves; });  // EXPECT-FINDING(task-capture)
}

void FrameByRef(TaskGroup* group, Arena* scratch) {
  ArenaFrame frame(scratch);
  group->Submit([&frame] { (void)frame; });  // EXPECT-FINDING(task-capture)
}
