// Fixture: the NOLINT(dvicl-arena-escape) escape — each would-be finding
// is waived with a justification on the line (or the line directly) above.
#include <cstdint>
#include <functional>

struct Arena {};
struct ArenaFrame {
  explicit ArenaFrame(Arena*) {}
};
template <typename T, int N = 8>
struct SmallVec {
  explicit SmallVec(Arena*) {}
};
struct TaskGroup {
  void Submit(std::function<void()> fn) { fn(); }
  void Wait() {}
};

SmallVec<uint32_t> WaivedReturn(Arena* scratch) {
  ArenaFrame frame(scratch);
  SmallVec<uint32_t> spill(scratch);
  // The caller re-opens the same arena's frame stack and consumes the
  // value before any rewind; lifetime audited by hand. NOLINT(dvicl-arena-escape)
  return spill;
}

void WaivedCapture(TaskGroup* group, Arena* scratch) {
  ArenaFrame frame(scratch);
  SmallVec<uint32_t> batch(scratch);
  // group->Wait() below keeps the frame open until every task drained,
  // so the reference cannot dangle. NOLINT(dvicl-arena-escape)
  group->Submit([&batch] { (void)batch; });
  group->Wait();
}
