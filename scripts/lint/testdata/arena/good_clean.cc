// Fixture: the sanctioned patterns from DESIGN.md §13 — local consumption
// under the frame, heap-copy across the boundary, by-value task capture.
// None of these may fire.
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

struct Arena {};
struct ArenaFrame {
  explicit ArenaFrame(Arena*) {}
};
template <typename T, int N = 8>
struct SmallVec {
  explicit SmallVec(Arena*) {}
  const T* begin() const { return nullptr; }
  const T* end() const { return nullptr; }
};
struct CellStartRange {};
struct Coloring {
  explicit Coloring(Arena*) {}
  CellStartRange Cells() const { return {}; }
  std::span<const uint32_t> ColorOffsetsView() const { return {}; }
};
struct TaskGroup {
  void Submit(std::function<void()> fn) { fn(); }
};

// Transient state lives and dies under the frame; only a heap copy leaves.
std::vector<uint32_t> HeapCopyOut(Arena* scratch) {
  ArenaFrame frame(scratch);
  SmallVec<uint32_t> profile(scratch);
  const Coloring pi(scratch);
  // Views consumed immediately, locally: the sanctioned idiom.
  const std::span<const uint32_t> offsets = pi.ColorOffsetsView();
  std::vector<uint32_t> result(offsets.begin(), offsets.end());
  return result;
}

// Returning an arena-bound value is fine when the CALLER owns the arena
// and no frame in this function covers the allocation.
SmallVec<uint32_t> BuildOnCallerArena(Arena* arena) {
  SmallVec<uint32_t> out(arena);
  return out;
}

// By-value capture heap-copies arena-backed types by design.
void SubmitByValue(TaskGroup* group, Arena* scratch) {
  ArenaFrame frame(scratch);
  SmallVec<uint32_t> kid(scratch);
  group->Submit([kid] { (void)kid; });
}

// Heap-backed locals may be captured by reference freely.
void SubmitHeapByRef(TaskGroup* group) {
  std::vector<uint32_t> totals;
  group->Submit([&totals] { totals.push_back(1); });
}
