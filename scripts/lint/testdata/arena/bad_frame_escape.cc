// Fixture: arena-bound locals returned past the ArenaFrame that covers
// their allocation (frame-escape). Minimal type stubs — the lint is
// lexical and keys on the repo's real type and naming conventions.
#include <cstdint>

struct Arena {};
struct ArenaFrame {
  explicit ArenaFrame(Arena*) {}
};
template <typename T, int N = 8>
struct SmallVec {
  explicit SmallVec(Arena*) {}
};
struct Coloring {
  explicit Coloring(Arena*) {}
  static Coloring FromLabels(const uint32_t*, Arena* a) { return Coloring(a); }
};

SmallVec<uint32_t> LeakProfile(Arena* scratch) {
  ArenaFrame frame(scratch);
  SmallVec<uint32_t> profile(scratch);
  return profile;  // EXPECT-FINDING(frame-escape)
}

Coloring LeakColoring(const uint32_t* labels, Arena* arena) {
  ArenaFrame frame(arena);
  Coloring pi = Coloring::FromLabels(labels, arena);
  return pi;  // EXPECT-FINDING(frame-escape)
}

SmallVec<uint32_t> NestedScopeLeak(Arena* scratch) {
  ArenaFrame outer(scratch);
  {
    SmallVec<uint32_t> inner_vec(scratch);
    return inner_vec;  // EXPECT-FINDING(frame-escape)
  }
}
