// Fixture: ordering or hashing by pointer value. Not compiled — consumed
// by determinism_lint.py --self-test.
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <unordered_set>

namespace dvicl {

struct Node {
  int id;
};

std::set<Node*> active_nodes;  // EXPECT-FINDING(pointer-order)

std::map<const Node*, int> node_rank;  // EXPECT-FINDING(pointer-order)

std::unordered_set<Node*> visited;  // EXPECT-FINDING(pointer-order)

using NodeHash = std::hash<Node*>;  // EXPECT-FINDING(pointer-order)

using NodeLess = std::less<const Node*>;  // EXPECT-FINDING(pointer-order)

uint64_t AddressKey(const Node* node) {
  return reinterpret_cast<uintptr_t>(node);  // EXPECT-FINDING(pointer-order)
}

}  // namespace dvicl
