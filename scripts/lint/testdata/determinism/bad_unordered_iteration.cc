// Fixture: every way the lint must catch unordered-container iteration.
// Not compiled — consumed by determinism_lint.py --self-test.
#include <unordered_map>
#include <unordered_set>

#include "bad_unordered_member.h"

namespace dvicl {

int SumValuesByHashOrder(const std::unordered_map<int, int>& counts) {
  int total = 0;
  for (const auto& [key, value] : counts) {  // EXPECT-FINDING(unordered-iteration)
    total += key * 31 + value;
  }
  return total;
}

int FirstByHashOrder(const std::unordered_set<int>& seen) {
  auto it = seen.begin();  // EXPECT-FINDING(unordered-iteration)
  // A bare .end() in a membership comparison is NOT iteration: only the
  // begin() above may fire.
  return it == seen.end() ? -1 : *it;
}

int Chain::SnapshotOrbit() const {
  int last = 0;
  // `transversal` is declared unordered in bad_unordered_member.h: the
  // cross-file declaration tracking must still flag this loop.
  for (const auto& [point, rep] : transversal) {  // EXPECT-FINDING(unordered-iteration)
    last = point;
  }
  return last;
}

std::unordered_map<int, int> MakeBuckets();

int SumTemporary() {
  int total = 0;
  // Iterating the result of a call that returns an unordered container.
  for (const auto& [key, value] : MakeBuckets()) {  // EXPECT-FINDING(unordered-iteration)
    total += value;
  }
  return total;
}

}  // namespace dvicl
