// Fixture: the NOLINT(dvicl-determinism) escape hatch must suppress a
// finding on the same line and on the next line. Not compiled — consumed
// by determinism_lint.py --self-test.
#include <set>
#include <unordered_map>
#include <vector>

namespace dvicl {

int SumValues(const std::unordered_map<int, int>& counts) {
  int total = 0;
  // Order cannot leak: addition is commutative over the full map.
  for (const auto& [key, value] : counts) {  // NOLINT(dvicl-determinism)
    total += value;
  }
  return total;
}

std::vector<int> SortedKeys(const std::unordered_map<int, int>& counts) {
  std::vector<int> keys;
  // Order cannot leak: keys are collected then sorted.
  // NOLINT(dvicl-determinism)
  for (const auto& [key, value] : counts) {
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace dvicl
