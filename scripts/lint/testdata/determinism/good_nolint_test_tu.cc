// Fixture: a tests/-style translation unit (gtest TU shape) exercising the
// NOLINT escape now that the lint also covers tests/ and bench/. The waived
// pattern mirrors tests/arena_test.cc: address arithmetic that is itself the
// property under test and never reaches any output.
#include <cstdint>

#define TEST(suite, name) void suite##_##name()
#define EXPECT_EQ(a, b) (void)((a) == (b))

TEST(AlignmentTest, AllocationsAreAligned) {
  int storage = 0;
  int* p = &storage;
  // Alignment is the property under test; the address never leaves the
  // assertion, so the pointer-order rule is waived. NOLINT(dvicl-determinism)
  const uintptr_t addr = reinterpret_cast<uintptr_t>(p);
  EXPECT_EQ(addr % alignof(int), 0u);
}
