// Fixture: wall-clock / OS-entropy calls in output-affecting code. Not
// compiled — consumed by determinism_lint.py --self-test.
#include <cstdlib>
#include <ctime>
#include <random>

namespace dvicl {

int RandomTieBreak(int n) {
  return rand() % n;  // EXPECT-FINDING(raw-randomness)
}

void SeedFromClock() {
  srand(time(nullptr));  // EXPECT-FINDING(raw-randomness)
}

unsigned EntropySeed() {
  std::random_device device;  // EXPECT-FINDING(raw-randomness)
  return device();
}

}  // namespace dvicl
