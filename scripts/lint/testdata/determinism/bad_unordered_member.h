// Fixture header: declares an unordered field iterated from the .cc, so
// the self-test exercises cross-file declaration tracking.
#ifndef LINT_TESTDATA_BAD_UNORDERED_MEMBER_H_
#define LINT_TESTDATA_BAD_UNORDERED_MEMBER_H_

#include <unordered_map>

namespace dvicl {

class Chain {
 public:
  int SnapshotOrbit() const;

 private:
  std::unordered_map<int, int> transversal;
};

}  // namespace dvicl

#endif  // LINT_TESTDATA_BAD_UNORDERED_MEMBER_H_
