// Fixture: deterministic idioms the lint must NOT flag. Not compiled —
// consumed by determinism_lint.py --self-test.
#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

namespace dvicl {

// Ordered containers iterate in key order: fine.
int SumOrdered(const std::map<int, int>& counts) {
  int total = 0;
  for (const auto& [key, value] : counts) total += key + value;
  return total;
}

int FirstOrdered(const std::set<int>& seen) {
  return seen.empty() ? -1 : *seen.begin();
}

// Unordered containers used only for membership/lookup: fine — no
// iteration order is observed.
int CountHits(const std::unordered_map<int, int>& index,
              const std::vector<int>& queries) {
  int hits = 0;
  for (int q : queries) {
    if (index.count(q) != 0) hits += index.at(q);
  }
  return hits;
}

// Sorting by value, hashing value types: fine.
void SortByValue(std::vector<int>* values) {
  std::sort(values->begin(), values->end());
}

// A comment mentioning rand() or time() must not fire, nor must the
// string literal "std::random_device" below.
const char* kDocString = "never call std::random_device or rand() here";

// Identifiers that merely contain the banned substrings: fine.
int runtime_total = 0;
int operand_count = 0;

double StepTime(double divide_seconds, double combine_seconds) {
  return divide_seconds + combine_seconds;
}

}  // namespace dvicl
