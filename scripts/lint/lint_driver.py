"""Shared plumbing for the dvicl lint passes.

Both repo lints — determinism_lint.py (dvicl-determinism) and
arena_escape_lint.py (dvicl-arena-escape) — are self-contained
lexical/declaration-tracking passes (stdlib only: the CI container has no
libclang) driven by the compile_commands.json a CMake configure exports.
This module owns everything that is not rule logic, so the passes cannot
drift apart on plumbing:

  - comment/string stripping that preserves line structure
  - NOLINT(<rule-set>) suppression (flagged line or the line above)
  - Finding formatting
  - compile_commands.json discovery and translation-unit listing
  - the fixture self-test protocol: fixtures under testdata/ carry
    EXPECT-FINDING(<rule>) markers on the lines that must fire; good_*
    fixtures must stay finding-free.

A new lint adds a rules function and reuses the rest; see
arena_escape_lint.py for the minimal shape.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path
from typing import Callable, Iterable


class Finding:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line
    structure, so pattern passes never fire inside either."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def skip_template_args(text: str, open_idx: int) -> int:
    """Given index of '<', returns index one past the matching '>', or -1."""
    depth = 0
    i = open_idx
    n = len(text)
    while i < n:
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{":
            return -1  # statement ended before the template closed
        i += 1
    return -1


def make_suppressor(raw: str, marker: str) -> Callable[[int], bool]:
    """Returns suppressed(line): marker on the flagged line or the line
    directly above waives the finding."""
    raw_lines = raw.splitlines()

    def suppressed(line: int) -> bool:
        for candidate in (line, line - 1):
            if 1 <= candidate <= len(raw_lines):
                if marker in raw_lines[candidate - 1]:
                    return True
        return False

    return suppressed


def repo_root() -> Path:
    return Path(__file__).resolve().parents[2]


def find_compile_commands(explicit: Path | None) -> Path:
    """Resolves the compile_commands.json to drive a repo-wide run."""
    if explicit is not None:
        return explicit
    root = repo_root()
    for candidate in (
        root / "compile_commands.json",
        root / "build" / "compile_commands.json",
    ):
        if candidate.exists():
            return candidate
    sys.exit(
        "error: no compile_commands.json found; configure first "
        "(cmake -B build -S .) or pass --compile-commands"
    )


def translation_units(compile_commands: Path) -> list[Path]:
    """Every existing source file compile_commands.json lists, resolved."""
    try:
        entries = json.loads(compile_commands.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(
            f"error: cannot read {compile_commands}: {err}\n"
            "hint: configure first (cmake -B build -S .); the build exports "
            "compile_commands.json and symlinks it at the repo root"
        )
    files: set[Path] = set()
    for entry in entries:
        src = Path(entry["file"])
        if not src.is_absolute():
            src = Path(entry["directory"]) / src
        src = src.resolve()
        if src.exists():
            files.add(src)
    return sorted(files)


def headers_under(directories: Iterable[Path]) -> list[Path]:
    """*.h files under the given directories (headers never appear in
    compile_commands)."""
    files: set[Path] = set()
    for directory in directories:
        if directory.is_dir():
            files.update(p.resolve() for p in directory.rglob("*.h"))
    return sorted(files)


EXPECT_RE = re.compile(r"EXPECT-FINDING\(([a-z-]+)\)")


def run_fixture_self_test(
    testdata: Path,
    glob_patterns: Iterable[str],
    lint_fn: Callable[[Path, str], list[Finding]],
) -> int:
    """Fixture protocol shared by every lint: each fixture line that must
    fire carries EXPECT-FINDING(<rule>); good_* fixtures must produce no
    findings and carry no EXPECT lines. Returns a process exit status."""
    fixtures: list[Path] = []
    for pattern in glob_patterns:
        fixtures.extend(sorted(testdata.glob(pattern)))
    if not fixtures:
        print(f"self-test: no fixtures under {testdata}", file=sys.stderr)
        return 1
    failures = 0
    for path in fixtures:
        raw = path.read_text(encoding="utf-8")
        expected: set[tuple[int, str]] = set()
        for lineno, line in enumerate(raw.splitlines(), start=1):
            for m in EXPECT_RE.finditer(line):
                expected.add((lineno, m.group(1)))
        actual = {(f.line, f.rule) for f in lint_fn(path, raw)}
        if path.name.startswith("good_") and expected:
            print(f"self-test: {path.name} is good_* but has EXPECT lines")
            failures += 1
            continue
        missing = expected - actual
        unexpected = actual - expected
        for line, rule in sorted(missing):
            print(f"self-test: {path.name}:{line}: missed expected [{rule}]")
        for line, rule in sorted(unexpected):
            print(f"self-test: {path.name}:{line}: spurious [{rule}]")
        failures += len(missing) + len(unexpected)
    total = len(fixtures)
    if failures:
        print(f"self-test: FAILED ({failures} mismatches over {total} fixtures)")
        return 1
    print(f"self-test: OK ({total} fixtures)")
    return 0


def report(findings: list[Finding], files: list[Path], lint_name: str) -> int:
    """Prints findings and the one-line verdict; returns exit status."""
    for finding in findings:
        print(finding)
    if findings:
        print(
            f"{lint_name}: {len(findings)} finding(s) in {len(files)} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"{lint_name}: clean ({len(files)} files)")
    return 0
