#!/usr/bin/env python3
"""dvicl-determinism lint: flag nondeterminism in output-affecting code.

DviCL's canonical labelings, certificates and generator sets must be
bit-identical across platforms, thread counts and cache settings
(ROADMAP north star). Three code patterns silently break that promise:

  unordered-iteration   iterating an unordered_{map,set,multimap,multiset}:
                        element order depends on the hash seed / libstdc++
                        bucket layout, so anything derived from the visit
                        order differs across platforms.
  pointer-order         ordering or hashing by pointer value (pointer-keyed
                        map/set, hash<T*>, less<T*>, or casting a pointer
                        to (u)intptr_t/size_t): addresses change run to run
                        under ASLR and across allocators.
  raw-randomness        rand()/srand()/time()/std::random_device and
                        friends outside the src/common/ PRNG: wall-clock
                        and OS entropy are nondeterministic by definition.

The lint is deliberately a self-contained lexical/declaration-tracking
pass (stdlib only — the CI container has no libclang; shared plumbing
lives in lint_driver.py), run over the translation units that
compile_commands.json lists under the output-affecting directories
src/{refine,ir,dvicl,perm,graph} AND under tests/ and bench/ — a test or
benchmark that compares against nondeterministically-derived expectations
flakes across platforms exactly the way product code would — plus the
headers in those directories. src/common/ is exempt: that is where the
seeded PRNG and the telemetry stopwatch legitimately live.

A finding on a loop that is provably order-independent (e.g. a reduction
whose result is re-sorted) is suppressed by putting

    // NOLINT(dvicl-determinism)

on the flagged line or the line directly above it, next to a comment
saying WHY the order cannot leak.

Usage:
    determinism_lint.py                      # lint the repo (needs
                                             # compile_commands.json from a
                                             # CMake configure)
    determinism_lint.py --self-test          # run the fixture self-tests
    determinism_lint.py file.cc ...          # lint explicit files

Exit status: 0 clean, 1 findings (or self-test failure), 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import lint_driver  # noqa: E402
from lint_driver import Finding, skip_template_args  # noqa: E402
from lint_driver import strip_comments_and_strings  # noqa: E402

LINTED_SRC_DIRS = ("refine", "ir", "dvicl", "perm", "graph")
LINTED_TOP_DIRS = ("tests", "bench")

RULE_UNORDERED = "unordered-iteration"
RULE_POINTER = "pointer-order"
RULE_RANDOM = "raw-randomness"

NOLINT_MARKER = "NOLINT(dvicl-determinism)"

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")

RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;{}]*?):([^;{}]*?)\)\s*[{A-Za-z(]")

# Only begin() variants: a bare .end() appears in find()/end() membership
# lookups, which never observe iteration order; any genuine traversal has
# to fetch a begin iterator.
ITERATOR_CALL_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*c?r?begin\s*\(\)"
)

POINTER_KEY_RE = re.compile(
    r"\b(?:unordered_)?(?:map|set|multimap|multiset)\s*<\s*"
    r"(?:const\s+)?[A-Za-z_][\w:]*\s*(?:const\s*)?\*"
)
POINTER_HASH_RE = re.compile(r"\b(?:hash|less|greater)\s*<[^<>]*\*\s*>")
POINTER_CAST_RE = re.compile(
    r"\breinterpret_cast\s*<\s*(?:std::)?(?:u?intptr_t|size_t)\s*>"
)

RANDOM_CALL_RE = re.compile(
    r"\b(?:rand|srand|rand_r|random|srandom|drand48|lrand48|mrand48|time)"
    r"\s*\("
)
RANDOM_DEVICE_RE = re.compile(r"\brandom_device\b")


def collect_unordered_names(code: str) -> set[str]:
    """Names declared (variables, fields, aliases, functions returning)
    with an unordered container type. Lexical: a declaration is the
    unordered type followed — after its balanced template argument list
    and any (), *, & decoration — by an identifier."""
    names: set[str] = set()
    for m in UNORDERED_DECL_RE.finditer(code):
        open_idx = code.index("<", m.start())
        end = skip_template_args(code, open_idx)
        if end < 0:
            continue
        tail = code[end:]
        name_m = re.match(r"[\s*&]*([A-Za-z_]\w*)", tail)
        if name_m:
            names.add(name_m.group(1))
    return names


def last_identifier(expr: str) -> str | None:
    """Last identifier token in a range-for expression: covers `m`,
    `obj.field`, `ptr->field`, `(*p)`, `arr[i].field` and `Call()`."""
    tokens = re.findall(r"[A-Za-z_]\w*", expr)
    return tokens[-1] if tokens else None


def lint_text(path: Path, raw: str, extra_unordered: set[str]) -> list[Finding]:
    code = strip_comments_and_strings(raw)
    unordered = collect_unordered_names(code) | extra_unordered
    suppressed = lint_driver.make_suppressor(raw, NOLINT_MARKER)

    def line_of(offset: int) -> int:
        return code.count("\n", 0, offset) + 1

    findings: list[Finding] = []

    def add(offset: int, rule: str, message: str) -> None:
        line = line_of(offset)
        if not suppressed(line):
            findings.append(Finding(path, line, rule, message))

    # Rule: unordered-iteration.
    for m in RANGE_FOR_RE.finditer(code):
        name = last_identifier(m.group(2))
        if name and name in unordered:
            add(
                m.start(),
                RULE_UNORDERED,
                f"range-for over unordered container '{name}': iteration "
                "order is platform-dependent",
            )
    for m in ITERATOR_CALL_RE.finditer(code):
        name = m.group(1)
        if name in unordered:
            add(
                m.start(),
                RULE_UNORDERED,
                f"iterator over unordered container '{name}': iteration "
                "order is platform-dependent",
            )

    # Rule: pointer-order.
    for m in POINTER_KEY_RE.finditer(code):
        add(
            m.start(),
            RULE_POINTER,
            "container keyed by pointer value: ordering/hash depends on "
            "allocation addresses",
        )
    for m in POINTER_HASH_RE.finditer(code):
        add(
            m.start(),
            RULE_POINTER,
            "hash/comparator over a pointer type: depends on allocation "
            "addresses",
        )
    for m in POINTER_CAST_RE.finditer(code):
        add(
            m.start(),
            RULE_POINTER,
            "pointer cast to an integer type: address-derived values are "
            "not stable across runs",
        )

    # Rule: raw-randomness.
    for m in RANDOM_CALL_RE.finditer(code):
        add(
            m.start(),
            RULE_RANDOM,
            "wall-clock/randomness call in output-affecting code: use the "
            "seeded PRNG in src/common/",
        )
    for m in RANDOM_DEVICE_RE.finditer(code):
        add(
            m.start(),
            RULE_RANDOM,
            "std::random_device in output-affecting code: use the seeded "
            "PRNG in src/common/",
        )

    return findings


def lint_file(path: Path, extra_unordered: set[str]) -> list[Finding]:
    raw = path.read_text(encoding="utf-8", errors="replace")
    return lint_text(path, raw, extra_unordered)


def in_linted_dir(path: Path) -> bool:
    parts = path.parts
    for i, part in enumerate(parts[:-1]):
        if part == "src" and parts[i + 1] in LINTED_SRC_DIRS:
            return True
    # tests/ and bench/ directly under the repo root.
    root_parts = lint_driver.repo_root().parts
    if (
        len(parts) > len(root_parts)
        and parts[: len(root_parts)] == root_parts
        and parts[len(root_parts)] in LINTED_TOP_DIRS
    ):
        return True
    return False


def repo_files(compile_commands: Path) -> list[Path]:
    files = {
        p
        for p in lint_driver.translation_units(compile_commands)
        if in_linted_dir(p)
    }
    # Headers never appear in compile_commands; glob them from the same
    # directories.
    root = lint_driver.repo_root()
    files.update(
        lint_driver.headers_under(
            [root / "src" / d for d in LINTED_SRC_DIRS]
            + [root / d for d in LINTED_TOP_DIRS]
        )
    )
    return sorted(files)


def run_self_test() -> int:
    testdata = Path(__file__).resolve().parent / "testdata" / "determinism"
    # Fixtures are linted as one set so header-declared fields are tracked,
    # exactly like a real repo run.
    fixtures = sorted(testdata.glob("*.cc")) + sorted(testdata.glob("*.h"))
    extra = global_unordered_names(fixtures)
    return lint_driver.run_fixture_self_test(
        testdata,
        ("*.cc", "*.h"),
        lambda path, raw: lint_text(path, raw, extra),
    )


def global_unordered_names(files: list[Path]) -> set[str]:
    """Declaration tracking across the linted set: a field declared
    unordered in a HEADER must be caught when a .cc iterates it. Only
    headers contribute to the shared set — a .cc-local name stays local,
    so an identifier reused for an ordered container in another file does
    not produce cross-file false positives."""
    names: set[str] = set()
    for path in files:
        if path.suffix != ".h":
            continue
        code = strip_comments_and_strings(
            path.read_text(encoding="utf-8", errors="replace")
        )
        names |= collect_unordered_names(code)
    return names


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="dvicl-determinism lint (see module docstring)"
    )
    parser.add_argument(
        "--compile-commands",
        type=Path,
        default=None,
        help="path to compile_commands.json (default: repo root, then build/)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="lint the fixtures under scripts/lint/testdata/ and verify the "
        "EXPECT-FINDING annotations",
    )
    parser.add_argument(
        "files", nargs="*", type=Path, help="explicit files to lint"
    )
    args = parser.parse_args(argv)

    if args.self_test:
        return run_self_test()

    if args.files:
        files = [p.resolve() for p in args.files]
        for path in files:
            if not path.exists():
                sys.exit(f"error: no such file: {path}")
    else:
        cc = lint_driver.find_compile_commands(args.compile_commands)
        files = repo_files(cc)

    extra = global_unordered_names(files)
    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path, extra))
    return lint_driver.report(findings, files, "determinism lint")


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
