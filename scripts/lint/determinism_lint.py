#!/usr/bin/env python3
"""dvicl-determinism lint: flag nondeterminism in output-affecting code.

DviCL's canonical labelings, certificates and generator sets must be
bit-identical across platforms, thread counts and cache settings
(ROADMAP north star). Three code patterns silently break that promise:

  unordered-iteration   iterating an unordered_{map,set,multimap,multiset}:
                        element order depends on the hash seed / libstdc++
                        bucket layout, so anything derived from the visit
                        order differs across platforms.
  pointer-order         ordering or hashing by pointer value (pointer-keyed
                        map/set, hash<T*>, less<T*>, or casting a pointer
                        to (u)intptr_t/size_t): addresses change run to run
                        under ASLR and across allocators.
  raw-randomness        rand()/srand()/time()/std::random_device and
                        friends outside the src/common/ PRNG: wall-clock
                        and OS entropy are nondeterministic by definition.

The lint is deliberately a self-contained lexical/declaration-tracking
pass (stdlib only — the CI container has no libclang), run over the
sources that compile_commands.json lists under the output-affecting
directories src/{refine,ir,dvicl,perm,graph} plus the headers in those
directories. src/common/ is exempt: that is where the seeded PRNG and the
telemetry stopwatch legitimately live.

A finding on a loop that is provably order-independent (e.g. a reduction
whose result is re-sorted) is suppressed by putting

    // NOLINT(dvicl-determinism)

on the flagged line or the line directly above it, next to a comment
saying WHY the order cannot leak.

Usage:
    determinism_lint.py                      # lint the repo (needs
                                             # compile_commands.json from a
                                             # CMake configure)
    determinism_lint.py --self-test          # run the fixture self-tests
    determinism_lint.py file.cc ...          # lint explicit files

Exit status: 0 clean, 1 findings (or self-test failure), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

LINTED_DIRS = ("refine", "ir", "dvicl", "perm", "graph")

RULE_UNORDERED = "unordered-iteration"
RULE_POINTER = "pointer-order"
RULE_RANDOM = "raw-randomness"

NOLINT_MARKER = "NOLINT(dvicl-determinism)"

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")

RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;{}]*?):([^;{}]*?)\)\s*[{A-Za-z(]")

# Only begin() variants: a bare .end() appears in find()/end() membership
# lookups, which never observe iteration order; any genuine traversal has
# to fetch a begin iterator.
ITERATOR_CALL_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*c?r?begin\s*\(\)"
)

POINTER_KEY_RE = re.compile(
    r"\b(?:unordered_)?(?:map|set|multimap|multiset)\s*<\s*"
    r"(?:const\s+)?[A-Za-z_][\w:]*\s*(?:const\s*)?\*"
)
POINTER_HASH_RE = re.compile(r"\b(?:hash|less|greater)\s*<[^<>]*\*\s*>")
POINTER_CAST_RE = re.compile(
    r"\breinterpret_cast\s*<\s*(?:std::)?(?:u?intptr_t|size_t)\s*>"
)

RANDOM_CALL_RE = re.compile(
    r"\b(?:rand|srand|rand_r|random|srandom|drand48|lrand48|mrand48|time)"
    r"\s*\("
)
RANDOM_DEVICE_RE = re.compile(r"\brandom_device\b")


class Finding:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line
    structure, so the pattern pass never fires inside either."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def skip_template_args(text: str, open_idx: int) -> int:
    """Given index of '<', returns index one past the matching '>', or -1."""
    depth = 0
    i = open_idx
    n = len(text)
    while i < n:
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{":
            return -1  # statement ended before the template closed
        i += 1
    return -1


def collect_unordered_names(code: str) -> set[str]:
    """Names declared (variables, fields, aliases, functions returning)
    with an unordered container type. Lexical: a declaration is the
    unordered type followed — after its balanced template argument list
    and any (), *, & decoration — by an identifier."""
    names: set[str] = set()
    for m in UNORDERED_DECL_RE.finditer(code):
        open_idx = code.index("<", m.start())
        end = skip_template_args(code, open_idx)
        if end < 0:
            continue
        tail = code[end:]
        name_m = re.match(r"[\s*&]*([A-Za-z_]\w*)", tail)
        if name_m:
            names.add(name_m.group(1))
    return names


def last_identifier(expr: str) -> str | None:
    """Last identifier token in a range-for expression: covers `m`,
    `obj.field`, `ptr->field`, `(*p)`, `arr[i].field` and `Call()`."""
    tokens = re.findall(r"[A-Za-z_]\w*", expr)
    return tokens[-1] if tokens else None


def lint_text(path: Path, raw: str, extra_unordered: set[str]) -> list[Finding]:
    code = strip_comments_and_strings(raw)
    raw_lines = raw.splitlines()
    unordered = collect_unordered_names(code) | extra_unordered

    def line_of(offset: int) -> int:
        return code.count("\n", 0, offset) + 1

    def suppressed(line: int) -> bool:
        for candidate in (line, line - 1):
            if 1 <= candidate <= len(raw_lines):
                if NOLINT_MARKER in raw_lines[candidate - 1]:
                    return True
        return False

    findings: list[Finding] = []

    def add(offset: int, rule: str, message: str) -> None:
        line = line_of(offset)
        if not suppressed(line):
            findings.append(Finding(path, line, rule, message))

    # Rule: unordered-iteration.
    for m in RANGE_FOR_RE.finditer(code):
        name = last_identifier(m.group(2))
        if name and name in unordered:
            add(
                m.start(),
                RULE_UNORDERED,
                f"range-for over unordered container '{name}': iteration "
                "order is platform-dependent",
            )
    for m in ITERATOR_CALL_RE.finditer(code):
        name = m.group(1)
        if name in unordered:
            add(
                m.start(),
                RULE_UNORDERED,
                f"iterator over unordered container '{name}': iteration "
                "order is platform-dependent",
            )

    # Rule: pointer-order.
    for m in POINTER_KEY_RE.finditer(code):
        add(
            m.start(),
            RULE_POINTER,
            "container keyed by pointer value: ordering/hash depends on "
            "allocation addresses",
        )
    for m in POINTER_HASH_RE.finditer(code):
        add(
            m.start(),
            RULE_POINTER,
            "hash/comparator over a pointer type: depends on allocation "
            "addresses",
        )
    for m in POINTER_CAST_RE.finditer(code):
        add(
            m.start(),
            RULE_POINTER,
            "pointer cast to an integer type: address-derived values are "
            "not stable across runs",
        )

    # Rule: raw-randomness.
    for m in RANDOM_CALL_RE.finditer(code):
        add(
            m.start(),
            RULE_RANDOM,
            "wall-clock/randomness call in output-affecting code: use the "
            "seeded PRNG in src/common/",
        )
    for m in RANDOM_DEVICE_RE.finditer(code):
        add(
            m.start(),
            RULE_RANDOM,
            "std::random_device in output-affecting code: use the seeded "
            "PRNG in src/common/",
        )

    return findings


def lint_file(path: Path, extra_unordered: set[str]) -> list[Finding]:
    raw = path.read_text(encoding="utf-8", errors="replace")
    return lint_text(path, raw, extra_unordered)


def repo_root() -> Path:
    return Path(__file__).resolve().parents[2]


def in_linted_dir(path: Path) -> bool:
    parts = path.parts
    for i, part in enumerate(parts[:-1]):
        if part == "src" and parts[i + 1] in LINTED_DIRS:
            return True
    return False


def repo_files(compile_commands: Path) -> list[Path]:
    try:
        entries = json.loads(compile_commands.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(
            f"error: cannot read {compile_commands}: {err}\n"
            "hint: configure first (cmake -B build -S .); the build exports "
            "compile_commands.json and symlinks it at the repo root"
        )
    files: set[Path] = set()
    for entry in entries:
        src = Path(entry["file"])
        if not src.is_absolute():
            src = Path(entry["directory"]) / src
        src = src.resolve()
        if in_linted_dir(src) and src.exists():
            files.add(src)
    # Headers never appear in compile_commands; glob them from the same
    # directories.
    root = repo_root()
    for directory in LINTED_DIRS:
        files.update(p.resolve() for p in (root / "src" / directory).rglob("*.h"))
    return sorted(files)


def global_unordered_names(files: list[Path]) -> set[str]:
    """Declaration tracking across the linted set: a field declared
    unordered in a HEADER must be caught when a .cc iterates it. Only
    headers contribute to the shared set — a .cc-local name stays local,
    so an identifier reused for an ordered container in another file does
    not produce cross-file false positives."""
    names: set[str] = set()
    for path in files:
        if path.suffix != ".h":
            continue
        code = strip_comments_and_strings(
            path.read_text(encoding="utf-8", errors="replace")
        )
        names |= collect_unordered_names(code)
    return names


EXPECT_RE = re.compile(r"EXPECT-FINDING\(([a-z-]+)\)")


def run_self_test() -> int:
    testdata = Path(__file__).resolve().parent / "testdata"
    fixtures = sorted(testdata.glob("*.cc")) + sorted(testdata.glob("*.h"))
    if not fixtures:
        print(f"self-test: no fixtures under {testdata}", file=sys.stderr)
        return 1
    # Fixtures are linted as one set so header-declared fields are tracked,
    # exactly like a real repo run.
    extra = global_unordered_names(fixtures)
    failures = 0
    for path in fixtures:
        raw = path.read_text(encoding="utf-8")
        expected: set[tuple[int, str]] = set()
        for lineno, line in enumerate(raw.splitlines(), start=1):
            for m in EXPECT_RE.finditer(line):
                expected.add((lineno, m.group(1)))
        actual = {(f.line, f.rule) for f in lint_text(path, raw, extra)}
        if path.name.startswith("good_") and expected:
            print(f"self-test: {path.name} is good_* but has EXPECT lines")
            failures += 1
            continue
        missing = expected - actual
        unexpected = actual - expected
        for line, rule in sorted(missing):
            print(f"self-test: {path.name}:{line}: missed expected [{rule}]")
        for line, rule in sorted(unexpected):
            print(f"self-test: {path.name}:{line}: spurious [{rule}]")
        failures += len(missing) + len(unexpected)
    total = len(fixtures)
    if failures:
        print(f"self-test: FAILED ({failures} mismatches over {total} fixtures)")
        return 1
    print(f"self-test: OK ({total} fixtures)")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="dvicl-determinism lint (see module docstring)"
    )
    parser.add_argument(
        "--compile-commands",
        type=Path,
        default=None,
        help="path to compile_commands.json (default: repo root, then build/)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="lint the fixtures under scripts/lint/testdata/ and verify the "
        "EXPECT-FINDING annotations",
    )
    parser.add_argument(
        "files", nargs="*", type=Path, help="explicit files to lint"
    )
    args = parser.parse_args(argv)

    if args.self_test:
        return run_self_test()

    if args.files:
        files = [p.resolve() for p in args.files]
        for path in files:
            if not path.exists():
                sys.exit(f"error: no such file: {path}")
    else:
        cc = args.compile_commands
        if cc is None:
            root = repo_root()
            for candidate in (
                root / "compile_commands.json",
                root / "build" / "compile_commands.json",
            ):
                if candidate.exists():
                    cc = candidate
                    break
            else:
                sys.exit(
                    "error: no compile_commands.json found; configure first "
                    "(cmake -B build -S .) or pass --compile-commands"
                )
        files = repo_files(cc)

    extra = global_unordered_names(files)
    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path, extra))
    for finding in findings:
        print(finding)
    if findings:
        print(
            f"determinism lint: {len(findings)} finding(s) in "
            f"{len(files)} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"determinism lint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
