#!/usr/bin/env python3
"""dvicl-arena-escape lint: flag arena-backed state that outlives its frame.

The arena contract (DESIGN.md §13) is one sentence: nothing arena-backed
may outlive the ArenaFrame that covers its allocation. The compiler cannot
see frames — a rewind is just a watermark store — so a violation is silent
until the memory is recycled. This pass mechanizes the three escape shapes
the contract forbids:

  frame-escape    returning an arena-bound SmallVec/Coloring local (one
                  whose constructor/initializer names an arena) from a
                  function that opened an ArenaFrame: the return value's
                  storage is reclaimed by the frame's rewind in the same
                  expression. Heap-copy out instead (SmallVec's copy ctor
                  is deliberately heap-backed).
  view-escape     storing a zero-alloc view — .Cells() /
                  .ColorOffsetsView() — into a member (trailing-underscore
                  name), or returning one while a frame is open: the view
                  aliases arena storage and dangles after the rewind.
                  Views are for immediate, local consumption.
  task-capture    submitting a task whose lambda captures by reference
                  ([&] or [&name]) while arena-bound locals or frames are
                  live: the task may run after the submitting scope
                  rewound. Capture by value — arena-backed types heap-copy
                  on capture by design.

Like determinism_lint.py this is a self-contained lexical/scope-tracking
pass (stdlib only — the CI container has no libclang; shared plumbing in
lint_driver.py). "Arena-bound" is a heuristic: a SmallVec/Coloring whose
declaration mentions an arena-ish expression (arena/scratch identifiers,
.arena(), ThreadScratchArena). That is the repo naming convention; a
construction the pass cannot see stays unflagged, so keep arena handles
named as such.

A finding on code that is provably safe (e.g. the frame outlives the
consumer by construction) is suppressed by putting

    // NOLINT(dvicl-arena-escape)

on the flagged line or the line directly above it, next to a comment
saying WHY the lifetime is covered.

Usage:
    arena_escape_lint.py                     # lint the repo (needs
                                             # compile_commands.json from a
                                             # CMake configure)
    arena_escape_lint.py --self-test         # run the fixture self-tests
    arena_escape_lint.py file.cc ...         # lint explicit files

Exit status: 0 clean, 1 findings (or self-test failure), 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import lint_driver  # noqa: E402
from lint_driver import Finding  # noqa: E402
from lint_driver import strip_comments_and_strings  # noqa: E402

RULE_FRAME = "frame-escape"
RULE_VIEW = "view-escape"
RULE_TASK = "task-capture"

NOLINT_MARKER = "NOLINT(dvicl-arena-escape)"

# Directories whose TUs the lint covers: everything that allocates from or
# hands out arenas, plus tests/bench (they exercise the same contract).
LINTED_SRC = ("src",)
LINTED_TOP_DIRS = ("tests", "bench")

FRAME_DECL_RE = re.compile(r"\bArenaFrame\s+([A-Za-z_]\w*)\s*[({]")

# SmallVec<...> name(args...) / Coloring name(args...) / ... name = init;
# The statement tail decides arena-boundness (ARENA_EXPR below).
ARENA_TYPE_DECL_RE = re.compile(
    r"\b(?:SmallVec\s*<[^;(){}]*>|Coloring)\s+([A-Za-z_]\w*)\s*(\(|=)"
)

# Heuristic for "this expression hands over an arena": the repo-wide naming
# convention for arena handles and the thread-scratch accessor.
ARENA_EXPR_RE = re.compile(r"(?i)arena|scratch")

RETURN_ID_RE = re.compile(r"\breturn\s+([A-Za-z_]\w*)\s*;")
RETURN_VIEW_RE = re.compile(
    r"\breturn\s+[^;{}]*\.\s*(?:Cells|ColorOffsetsView)\s*\(\)"
)
MEMBER_VIEW_STORE_RE = re.compile(
    r"\b([A-Za-z_]\w*_)\s*=\s*[^=;{}]*\.\s*(?:Cells|ColorOffsetsView)\s*\(\)"
)
SUBMIT_RE = re.compile(r"\bSubmit\s*\(")
CAPTURE_LIST_RE = re.compile(r"\[([^\]]*)\]")


class _Scope:
    __slots__ = ("arena_locals", "frames")

    def __init__(self):
        # name -> True if declared while a frame was already open
        self.arena_locals: dict[str, bool] = {}
        self.frames: set[str] = set()


def _statement_tail(code: str, start: int) -> str:
    """Text from `start` to the end of the statement (';' or line-ish cap)."""
    end = code.find(";", start)
    if end < 0 or end - start > 400:
        end = start + 400
    return code[start:end]


def lint_text(path: Path, raw: str) -> list[Finding]:
    code = strip_comments_and_strings(raw)
    suppressed = lint_driver.make_suppressor(raw, NOLINT_MARKER)
    findings: list[Finding] = []

    def add(line: int, rule: str, message: str) -> None:
        if not suppressed(line):
            findings.append(Finding(path, line, rule, message))

    scopes: list[_Scope] = [_Scope()]

    def frame_open() -> bool:
        return any(scope.frames for scope in scopes)

    def lookup_local(name: str) -> bool | None:
        """Is `name` a live arena-bound local? Returns its under-frame bit,
        or None if unknown."""
        for scope in reversed(scopes):
            if name in scope.arena_locals:
                return scope.arena_locals[name]
        return None

    def any_arena_state_live() -> bool:
        return frame_open() or any(scope.arena_locals for scope in scopes)

    offset = 0
    for lineno, line in enumerate(code.splitlines(keepends=True), start=1):
        line_start = offset
        offset += len(line)

        # --- declarations (visible to checks on the same line) ---
        for m in FRAME_DECL_RE.finditer(line):
            scopes[-1].frames.add(m.group(1))
        for m in ARENA_TYPE_DECL_RE.finditer(line):
            tail = _statement_tail(code, line_start + m.start())
            if ARENA_EXPR_RE.search(tail):
                scopes[-1].arena_locals[m.group(1)] = frame_open()

        # --- rule: frame-escape ---
        for m in RETURN_ID_RE.finditer(line):
            under_frame = lookup_local(m.group(1))
            if under_frame:
                add(
                    lineno,
                    RULE_FRAME,
                    f"returning arena-bound '{m.group(1)}' past the "
                    "function's ArenaFrame: its storage is reclaimed by the "
                    "rewind — heap-copy out instead",
                )

        # --- rule: view-escape ---
        if frame_open():
            for m in RETURN_VIEW_RE.finditer(line):
                add(
                    lineno,
                    RULE_VIEW,
                    "returning a zero-alloc view while an ArenaFrame is "
                    "open: the view aliases storage the rewind reclaims",
                )
        for m in MEMBER_VIEW_STORE_RE.finditer(line):
            add(
                lineno,
                RULE_VIEW,
                f"storing a zero-alloc view into member '{m.group(1)}': the "
                "member outlives the statement and dangles after the "
                "owning frame rewinds — copy the data instead",
            )

        # --- rule: task-capture ---
        for m in SUBMIT_RE.finditer(line):
            window = code[line_start + m.end() : line_start + m.end() + 300]
            cap = CAPTURE_LIST_RE.search(window)
            if not cap:
                continue
            items = [item.strip() for item in cap.group(1).split(",")]
            for item in items:
                if item == "&" and any_arena_state_live():
                    add(
                        lineno,
                        RULE_TASK,
                        "task submitted with blanket by-reference capture "
                        "while arena-bound state is live: the task may run "
                        "after the frame rewinds — capture by value",
                    )
                elif item.startswith("&"):
                    name = item[1:].strip()
                    if lookup_local(name) is not None or any(
                        name in scope.frames for scope in scopes
                    ):
                        add(
                            lineno,
                            RULE_TASK,
                            f"task captures arena-bound '{name}' by "
                            "reference: the task may run after the frame "
                            "rewinds — capture by value (arena types "
                            "heap-copy on capture)",
                        )

        # --- scope maintenance (end of line) ---
        for c in line:
            if c == "{":
                scopes.append(_Scope())
            elif c == "}" and len(scopes) > 1:
                scopes.pop()

    return findings


def lint_file(path: Path) -> list[Finding]:
    raw = path.read_text(encoding="utf-8", errors="replace")
    return lint_text(path, raw)


def in_linted_dir(path: Path) -> bool:
    root_parts = lint_driver.repo_root().parts
    if len(path.parts) <= len(root_parts):
        return False
    if path.parts[: len(root_parts)] != root_parts:
        return False
    return path.parts[len(root_parts)] in LINTED_SRC + LINTED_TOP_DIRS


def repo_files(compile_commands: Path) -> list[Path]:
    files = {
        p
        for p in lint_driver.translation_units(compile_commands)
        if in_linted_dir(p)
    }
    root = lint_driver.repo_root()
    files.update(
        lint_driver.headers_under(
            [root / d for d in LINTED_SRC + LINTED_TOP_DIRS]
        )
    )
    return sorted(files)


def run_self_test() -> int:
    testdata = Path(__file__).resolve().parent / "testdata" / "arena"
    return lint_driver.run_fixture_self_test(
        testdata, ("*.cc", "*.h"), lint_text
    )


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="dvicl-arena-escape lint (see module docstring)"
    )
    parser.add_argument(
        "--compile-commands",
        type=Path,
        default=None,
        help="path to compile_commands.json (default: repo root, then build/)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="lint the fixtures under scripts/lint/testdata/arena/ and "
        "verify the EXPECT-FINDING annotations",
    )
    parser.add_argument(
        "files", nargs="*", type=Path, help="explicit files to lint"
    )
    args = parser.parse_args(argv)

    if args.self_test:
        return run_self_test()

    if args.files:
        files = [p.resolve() for p in args.files]
        for path in files:
            if not path.exists():
                sys.exit(f"error: no such file: {path}")
    else:
        cc = lint_driver.find_compile_commands(args.compile_commands)
        files = repo_files(cc)

    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path))
    return lint_driver.report(findings, files, "arena-escape lint")


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
