#!/usr/bin/env bash
# Chaos gate for supervised multi-process serving (DESIGN.md §15): boot
# `dvicl_server --workers=N`, SIGKILL a random worker every few seconds
# while the load generator drives verified traffic with retries, and
# assert the availability contract:
#
#   - incorrect_replies == 0  — crashes may cost retries, NEVER wrong
#     answers (every reply is byte-compared against an in-process
#     reference by `loadgen --verify=1`);
#   - availability >= CHAOS_MIN_AVAILABILITY after client-side retries;
#   - every kill produced a supervised restart, and the restart count
#     stays bounded (kills + slack for heartbeat-timeout false positives
#     on an overloaded CI box) — no silent crash-looping;
#   - no slot was retired by the circuit breaker, and the parent drains
#     to exit code 0 on SIGTERM.
#
# Artifacts (server log, loadgen BENCH JSON, access logs) are left in
# CHAOS_DIR for upload.
#
# Env knobs:
#   CHAOS_WORKERS            worker processes (default 4)
#   CHAOS_DURATION_SECONDS   load duration (default 20)
#   CHAOS_QPS                offered load (default 120)
#   CHAOS_KILL_INTERVAL      seconds between kills (default 2)
#   CHAOS_MIN_AVAILABILITY   availability floor (default 0.99)
#   CHAOS_DIR                artifact directory (default chaos-artifacts)
#   BUILD_DIR                reuse an existing build (default build-chaos)

set -euo pipefail
cd "$(dirname "$0")/.."

workers="${CHAOS_WORKERS:-4}"
duration="${CHAOS_DURATION_SECONDS:-20}"
qps="${CHAOS_QPS:-120}"
kill_interval="${CHAOS_KILL_INTERVAL:-2}"
min_availability="${CHAOS_MIN_AVAILABILITY:-0.99}"
artifacts="${CHAOS_DIR:-chaos-artifacts}"
build="${BUILD_DIR:-build-chaos}"

if [ ! -x "$build/src/dvicl_server" ] || [ ! -x "$build/bench/loadgen" ]; then
  cmake -B "$build" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build" -j --target dvicl_server loadgen
fi
build="$(cd "$build" && pwd)"

rm -rf "$artifacts"
mkdir -p "$artifacts"
cd "$artifacts"

"$build/src/dvicl_server" --workers="$workers" --port=0 \
  --restart-backoff-ms=100 --restart-backoff-max-ms=2000 \
  --heartbeat-interval-ms=500 --heartbeat-timeout-ms=2000 \
  --access-log=access.jsonl > server.log &
server_pid=$!
cleanup() { kill -KILL "$server_pid" 2>/dev/null || true; }
trap cleanup EXIT

for _ in $(seq 1 100); do
  grep -q "supervising" server.log && break
  sleep 0.1
done
spec="$(sed -n 's/.*supervising [0-9]* workers on \(.*\)/\1/p' server.log)"
test -n "$spec" || { echo "FAIL: no supervising line"; cat server.log; exit 1; }
echo "chaos: fleet up at $spec"

"$build/bench/loadgen" --connect="$spec" --mix=gadget-forest \
  --qps="$qps" --duration-seconds="$duration" \
  --retries=8 --verify=1 --min-availability="$min_availability" \
  > loadgen.log 2>&1 &
loadgen_pid=$!

# Killer loop: while the load runs, SIGKILL the most recent incarnation
# of a rotating worker slot. Pids come from the supervisor's own
# "worker I pid=P listening" lines, so restarts are killable too.
kills=0
slot=0
while kill -0 "$loadgen_pid" 2>/dev/null; do
  sleep "$kill_interval"
  kill -0 "$loadgen_pid" 2>/dev/null || break
  victim="$(sed -n "s/.*worker $slot pid=\([0-9]*\) listening.*/\1/p" \
            server.log | tail -1)"
  if [ -n "$victim" ] && kill -KILL "$victim" 2>/dev/null; then
    kills=$((kills + 1))
    echo "chaos: killed worker $slot pid=$victim (kill #$kills)"
  fi
  slot=$(( (slot + 1) % workers ))
done

loadgen_rc=0
wait "$loadgen_pid" || loadgen_rc=$?
cat loadgen.log

kill -TERM "$server_pid"
server_rc=0
wait "$server_pid" || server_rc=$?
trap - EXIT

test "$kills" -ge 1 || { echo "FAIL: chaos loop never killed a worker"; exit 1; }
test "$loadgen_rc" -eq 0 || { echo "FAIL: loadgen exit $loadgen_rc"; exit 1; }
test "$server_rc" -eq 0 || {
  echo "FAIL: supervisor drain exit $server_rc"; cat server.log; exit 1; }

KILLS="$kills" MIN_AVAILABILITY="$min_availability" python3 - <<'EOF'
import json, os, re

kills = int(os.environ["KILLS"])
floor = float(os.environ["MIN_AVAILABILITY"])

doc = json.load(open("BENCH_loadgen.json"))
summary = next(r for r in doc["records"] if r["record"] == "summary")
assert summary["verified"], "loadgen ran without --verify=1"
assert summary["incorrect_replies"] == 0, \
    f"WRONG REPLIES under chaos: {summary['incorrect_replies']}"
assert summary["availability"] >= floor, \
    f"availability {summary['availability']} < {floor}"

log = open("server.log").read()
restarts = len(re.findall(r"; restarting in \d+ ms", log))
# Every external kill must be a supervised restart; the slack admits
# heartbeat-timeout kills of workers merely slowed by CI contention.
assert restarts >= kills, f"{kills} kills but only {restarts} restarts"
assert restarts <= kills + 4, \
    f"restart storm: {restarts} restarts for {kills} kills"
assert "retired" not in log, "circuit breaker opened during chaos:\n" + log
forced = len(re.findall(r"force-killed after drain grace", log))
assert forced == 0, f"{forced} workers needed a forced kill at drain"

print(f"OK: {summary['requests']} verified requests, "
      f"availability {summary['availability']:.4f}, "
      f"{kills} kills -> {restarts} supervised restarts, clean drain")
EOF
