#!/usr/bin/env bash
# Asserts that compiling the failpoint sites in — but leaving every site
# disarmed — costs less than FP_OVERHEAD_THRESHOLD_PCT (default 2%) of
# wall-clock time on a fixed DviCL workload.
#
#   scripts/check_failpoint_overhead.sh
#
# Method: build bench/scaling_sweep twice (Release, -DDVICL_FAILPOINTS=OFF
# and ON), run the gadget-forest section (`--forest-only`: a deterministic,
# completing workload — no budget-limited points whose runtime is pinned to
# the budget rather than the work) FP_OVERHEAD_RUNS times per build, and
# compare the per-build MINIMUM of the summed DviCL wall seconds. The
# minimum-of-N comparison filters scheduler noise: any one slow run (CI
# neighbor, page cache miss) inflates a mean but not the minimum, which is
# the closest observable to the true cost of the code path.
#
# Env knobs:
#   FP_OVERHEAD_RUNS           repetitions per build (default 3)
#   FP_OVERHEAD_THRESHOLD_PCT  failure threshold (default 2.0)
#   DVICL_TIME_LIMIT           per-run safety budget (default 60s; the
#                              workload is expected to finish well inside it)

set -euo pipefail
cd "$(dirname "$0")/.."

runs="${FP_OVERHEAD_RUNS:-3}"
threshold="${FP_OVERHEAD_THRESHOLD_PCT:-2.0}"
export DVICL_TIME_LIMIT="${DVICL_TIME_LIMIT:-60}"

build_tree() {
  local dir="$1" failpoints="$2"
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=Release \
      "-DDVICL_FAILPOINTS=${failpoints}" >/dev/null
  cmake --build "${dir}" -j --target scaling_sweep >/dev/null
}

# Prints the min over ${runs} of the summed DviCL wall seconds (sequential
# + parallel legs of every forest point) reported in BENCH_scaling_sweep.json.
measure() {
  local binary="${PWD}/$1" workdir="${PWD}/$2"
  mkdir -p "${workdir}"
  local best=""
  for _ in $(seq "${runs}"); do
    (cd "${workdir}" && "${binary}" --forest-only >/dev/null)
    local total
    total="$(python3 - "${workdir}/BENCH_scaling_sweep.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
total = 0.0
for rec in doc["records"]:
    if rec.get("series") != "forest":
        continue
    assert rec["seq_outcome"] == "completed", rec
    assert rec["par_outcome"] == "completed", rec
    total += rec["seq_wall_seconds"] + rec["wall_seconds"]
print(f"{total:.6f}")
EOF
)"
    if [ -z "${best}" ] || python3 -c "import sys; sys.exit(0 if ${total} < ${best} else 1)"; then
      best="${total}"
    fi
  done
  echo "${best}"
}

echo "=== failpoint overhead check: building OFF and ON trees ==="
build_tree build-fp-off OFF
build_tree build-fp-on ON

echo "=== measuring (min of ${runs} runs each) ==="
off_s="$(measure build-fp-off/bench/scaling_sweep build-fp-off/overhead)"
on_s="$(measure build-fp-on/bench/scaling_sweep build-fp-on/overhead)"

python3 - "${off_s}" "${on_s}" "${threshold}" <<'EOF'
import sys
off, on, threshold = float(sys.argv[1]), float(sys.argv[2]), float(sys.argv[3])
pct = (on - off) / off * 100.0
print(f"disarmed-failpoint overhead: off={off:.3f}s on={on:.3f}s "
      f"delta={pct:+.2f}% (threshold {threshold}%)")
if pct > threshold:
    print("FAIL: disarmed failpoints cost more than the threshold",
          file=sys.stderr)
    sys.exit(1)
print("OK")
EOF
