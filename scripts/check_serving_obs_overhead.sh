#!/usr/bin/env bash
# Asserts that the request-scoped observability pipeline, when disarmed
# (no access log, no trace, no flight recorder configured — but the
# --request-obs=1 default keeping timestamps and per-class histograms
# live), costs less than OBS_OVERHEAD_THRESHOLD_PCT (default 5%) of
# wall-clock time against the --request-obs=0 baseline.
#
#   scripts/check_serving_obs_overhead.sh
#
# Method: emit one deterministic framed request stream with
# `loadgen --emit-requests` (gadget-forest mix, fixed seed — byte-identical
# work for both legs), replay it through `dvicl_server --stdio`
# OBS_OVERHEAD_RUNS times per configuration, and compare the per-config
# MINIMUM wall clock. The minimum-of-N comparison filters scheduler noise:
# any one slow run (CI neighbor, page cache miss) inflates a mean but not
# the minimum, which is the closest observable to the true cost of the
# code path. Same method as scripts/check_failpoint_overhead.sh.
#
# Env knobs:
#   OBS_OVERHEAD_RUNS           repetitions per configuration (default 3)
#   OBS_OVERHEAD_THRESHOLD_PCT  failure threshold (default 5.0)
#   OBS_OVERHEAD_REQUESTS       requests in the replay stream (default 600)

set -euo pipefail
cd "$(dirname "$0")/.."

runs="${OBS_OVERHEAD_RUNS:-3}"
threshold="${OBS_OVERHEAD_THRESHOLD_PCT:-5.0}"
requests="${OBS_OVERHEAD_REQUESTS:-600}"

echo "=== serving obs overhead check: building Release tree ==="
cmake -B build-obs-overhead -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-obs-overhead -j --target dvicl_server loadgen >/dev/null

workdir="build-obs-overhead/overhead"
mkdir -p "${workdir}"
./build-obs-overhead/bench/loadgen \
    --emit-requests="${workdir}/requests.bin" --requests="${requests}" \
    --mix=gadget-forest --seed=42

# Prints the min over ${runs} of the wall clock of one --stdio replay of
# the request stream with the given extra server flag ("" = defaults).
measure() {
  local extra_flag="$1"
  local best=""
  for _ in $(seq "${runs}"); do
    local t
    t="$(python3 - "${extra_flag}" "${workdir}/requests.bin" <<'EOF'
import subprocess, sys, time
flag, stream = sys.argv[1], sys.argv[2]
cmd = ["./build-obs-overhead/src/dvicl_server", "--stdio", "--threads=2"]
if flag:
    cmd.append(flag)
start = time.monotonic()
with open(stream, "rb") as requests, open("/dev/null", "wb") as devnull:
    subprocess.run(cmd, stdin=requests, stdout=devnull, check=True)
print(f"{time.monotonic() - start:.6f}")
EOF
)"
    if [ -z "${best}" ] || \
       python3 -c "import sys; sys.exit(0 if ${t} < ${best} else 1)"; then
      best="${t}"
    fi
  done
  echo "${best}"
}

echo "=== measuring (min of ${runs} replays each) ==="
off_s="$(measure --request-obs=0)"
on_s="$(measure "")"

python3 - "${off_s}" "${on_s}" "${threshold}" <<'EOF'
import sys
off, on, threshold = float(sys.argv[1]), float(sys.argv[2]), float(sys.argv[3])
pct = (on - off) / off * 100.0
print(f"disarmed serving-obs overhead: obs-off={off:.3f}s obs-on={on:.3f}s "
      f"delta={pct:+.2f}% (threshold {threshold}%)")
if pct > threshold:
    print("FAIL: the disarmed observability pipeline costs more than the "
          "threshold", file=sys.stderr)
    sys.exit(1)
print("OK")
EOF
