#!/usr/bin/env bash
# Sanitizer gate for the parallel AutoTree build.
#
#   scripts/run_sanitizers.sh [tsan|asan|ubsan|failpoint|all]   (default: all)
#
# tsan:  builds with -DDVICL_SANITIZE=thread and runs the parallel test
#        binaries (task_pool_test, parallel_determinism_test,
#        cert_cache_test, protocol_test, server_test, obs_test,
#        server_obs_test, arena_test) under ThreadSanitizer. This is the
#        data-race gate for src/common/task_pool, the parallel DviCL driver,
#        the sharded canonical-form cache (concurrent lookup/insert/evict
#        plus a shared cache across simultaneous DviCL runs), the serving
#        path (concurrent connections batching onto one shared pool and
#        cache), the metrics snapshot/record concurrency (histogram dumps
#        racing recorders must never tear), and the per-thread scratch
#        arenas (thread-local by construction — TSan proves no sharing
#        crept in).
# asan:  builds with -DDVICL_SANITIZE=address (AddressSanitizer + UBSan, the
#        usual CI pairing) and runs the full ctest suite once per
#        DVICL_CERT_CACHE setting (0 and 1) with the arena at its default
#        (on), so both cache legs of the CI matrix get memory-error
#        coverage — plus one arena-OFF leg: bump allocation carves objects
#        out of big chunks ASan cannot poison individually, so the heap leg
#        is where per-allocation overflow/use-after-free detection actually
#        bites on the converted hot path.
# ubsan: builds with -DDVICL_SANITIZE=undefined alone (catches UB that
#        ASan's instrumentation can mask, and runs fast enough for a smoke
#        gate) and runs the core algorithm subset: refine_test, ir_test,
#        dvicl_test.
# failpoint: builds with -DDVICL_FAILPOINTS=ON under both ASan and TSan and
#        runs the full ctest suite in each tree. Armed failpoints throw
#        through real unwind paths (task pool, cert cache, combine), so this
#        is the gate proving fault unwinding neither leaks nor races.
#
# Build trees live in build-tsan/, build-asan/, build-ubsan/,
# build-fp-asan/ and build-fp-tsan/ next to the normal build/ so the
# sanitizer runs never dirty the main tree.

set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"

# Printed when a ThreadSanitizer run fails: the same bug class is usually
# diagnosable at compile time by the annotated locking layer (DESIGN.md
# §14), so point the investigator there before they reach for printf.
tsan_hint() {
  echo "" >&2
  echo "hint: a TSan report on a mutex-guarded field usually means an" >&2
  echo "      access is missing its lock. The locking layer is annotated" >&2
  echo "      for clang's static thread-safety analysis (src/common/" >&2
  echo "      mutex.h, src/common/thread_annotations.h): run" >&2
  echo "      scripts/check_thread_safety.sh to get the same bug" >&2
  echo "      diagnosed at compile time, and keep DVICL_GUARDED_BY /" >&2
  echo "      DVICL_REQUIRES annotations on any field or helper you" >&2
  echo "      touch." >&2
}

tsan_run() {
  TSAN_OPTIONS="halt_on_error=1" "$@" || { tsan_hint; exit 1; }
}

run_tsan() {
  echo "=== ThreadSanitizer: task_pool_test + parallel_determinism_test" \
       "+ cert_cache_test + protocol_test + server_test + obs_test" \
       "+ server_obs_test + arena_test ==="
  cmake -B build-tsan -S . -DDVICL_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j \
      --target task_pool_test parallel_determinism_test cert_cache_test \
      protocol_test server_test obs_test server_obs_test arena_test
  tsan_run ./build-tsan/tests/arena_test
  tsan_run ./build-tsan/tests/task_pool_test
  tsan_run ./build-tsan/tests/parallel_determinism_test
  tsan_run ./build-tsan/tests/cert_cache_test
  tsan_run ./build-tsan/tests/protocol_test
  tsan_run ./build-tsan/tests/server_test
  tsan_run ./build-tsan/tests/obs_test
  tsan_run ./build-tsan/tests/server_obs_test
}

run_asan() {
  echo "=== AddressSanitizer + UBSan: full ctest suite ==="
  cmake -B build-asan -S . -DDVICL_SANITIZE=address >/dev/null
  cmake --build build-asan -j
  for cert_cache in 0 1; do
    echo "--- asan leg: DVICL_CERT_CACHE=${cert_cache} (arena default-on) ---"
    DVICL_CERT_CACHE="${cert_cache}" \
      ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
      ctest --test-dir build-asan --output-on-failure -j "$(nproc)"
  done
  # Arena-off leg: with bump allocation the hot path lives inside big arena
  # chunks where ASan has no per-object redzones; forcing DVICL_ARENA=0
  # routes every hot-path buffer through the instrumented heap so overflow
  # and use-after-free checks apply at individual-allocation granularity.
  echo "--- asan leg: DVICL_ARENA=0 (per-allocation poisoning) ---"
  DVICL_ARENA=0 \
    ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-asan --output-on-failure -j "$(nproc)"
}

run_ubsan() {
  echo "=== UBSan (standalone): refine_test + ir_test + dvicl_test ==="
  cmake -B build-ubsan -S . -DDVICL_SANITIZE=undefined >/dev/null
  cmake --build build-ubsan -j --target refine_test ir_test dvicl_test
  UBSAN_OPTIONS="halt_on_error=1" ./build-ubsan/tests/refine_test
  UBSAN_OPTIONS="halt_on_error=1" ./build-ubsan/tests/ir_test
  UBSAN_OPTIONS="halt_on_error=1" ./build-ubsan/tests/dvicl_test
}

run_failpoint() {
  echo "=== Failpoints ON (-DDVICL_FAILPOINTS=ON): full ctest under ASan," \
       "then TSan ==="
  cmake -B build-fp-asan -S . -DDVICL_FAILPOINTS=ON \
      -DDVICL_SANITIZE=address >/dev/null
  cmake --build build-fp-asan -j
  ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-fp-asan --output-on-failure -j "$(nproc)"
  cmake -B build-fp-tsan -S . -DDVICL_FAILPOINTS=ON \
      -DDVICL_SANITIZE=thread >/dev/null
  cmake --build build-fp-tsan -j
  tsan_run ctest --test-dir build-fp-tsan --output-on-failure -j "$(nproc)"
}

case "$mode" in
  tsan) run_tsan ;;
  asan) run_asan ;;
  ubsan) run_ubsan ;;
  failpoint) run_failpoint ;;
  all)
    run_tsan
    run_asan
    run_ubsan
    run_failpoint
    ;;
  *)
    echo "usage: $0 [tsan|asan|ubsan|all]" >&2
    exit 2
    ;;
esac

echo "sanitizer gate ($mode): OK"
