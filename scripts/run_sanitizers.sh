#!/usr/bin/env bash
# Sanitizer gate for the parallel AutoTree build.
#
#   scripts/run_sanitizers.sh [tsan|asan|all]   (default: all)
#
# tsan: builds with -DDVICL_SANITIZE=thread and runs the parallel test
#       binaries (task_pool_test, parallel_determinism_test, cert_cache_test)
#       under ThreadSanitizer. This is the data-race gate for
#       src/common/task_pool, the parallel DviCL driver and the sharded
#       canonical-form cache (concurrent lookup/insert/evict plus a shared
#       cache across simultaneous DviCL runs).
# asan: builds with -DDVICL_SANITIZE=address (AddressSanitizer + UBSan, the
#       usual CI pairing) and runs the full ctest suite.
#
# Build trees live in build-tsan/ and build-asan/ next to the normal build/
# so the sanitizer runs never dirty the main tree.

set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"

run_tsan() {
  echo "=== ThreadSanitizer: task_pool_test + parallel_determinism_test" \
       "+ cert_cache_test ==="
  cmake -B build-tsan -S . -DDVICL_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j \
      --target task_pool_test parallel_determinism_test cert_cache_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/task_pool_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/parallel_determinism_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/cert_cache_test
}

run_asan() {
  echo "=== AddressSanitizer + UBSan: full ctest suite ==="
  cmake -B build-asan -S . -DDVICL_SANITIZE=address >/dev/null
  cmake --build build-asan -j
  ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-asan --output-on-failure -j "$(nproc)"
}

case "$mode" in
  tsan) run_tsan ;;
  asan) run_asan ;;
  all)
    run_tsan
    run_asan
    ;;
  *)
    echo "usage: $0 [tsan|asan|all]" >&2
    exit 2
    ;;
esac

echo "sanitizer gate ($mode): OK"
