#!/usr/bin/env bash
# Regenerates the golden-certificate corpus in tests/golden/.
#
# This is the ONLY sanctioned way to rewrite the corpus: golden_cert_test
# refuses to self-bless and fails on any byte drift, so an intentional
# canonical-form change must run this script and commit the diff (with the
# justification in the commit message). Usage:
#
#   scripts/regen_golden.sh [build-dir]
#
# The build directory defaults to ./build (created if absent).

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" --target golden_cert_test -j"$(nproc)" >/dev/null

DVICL_REGEN_GOLDEN=1 "$BUILD_DIR/tests/golden_cert_test" \
    --gtest_filter='*MatchesGoldenBytes*'

echo
echo "Corpus regenerated. Review the diff before committing:"
git --no-pager diff --stat -- tests/golden || true
