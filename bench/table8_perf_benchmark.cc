// Reproduces paper Table 8: performance of the six algorithms on the
// benchmark-graph suite. Expected shape: DviCL+X ~ X on these regular
// graphs (the AutoTree collapses to the root, Table 4), with DviCL adding
// only a small constant overhead and inheriting X's behaviour.

#include "compare_harness.h"
#include "datasets/benchmark_suite.h"

int main(int argc, char** argv) {
  dvicl::bench::BenchReporter reporter("table8_perf_benchmark", argc, argv);
  dvicl::bench::RunComparison(
      reporter, dvicl::BenchmarkSuite(dvicl::bench::BenchmarkScaleFromEnv()),
      "Table 8: Performance on benchmark graphs");
  return 0;
}
