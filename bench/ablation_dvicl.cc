// Ablation of DviCL's design choices (DESIGN.md per-experiment index):
//  - full DviCL (DivideI + DivideS),
//  - DivideI only (no clique/biclique removal),
//  - no divides (degenerates to one IR run on the whole graph),
//  - §6.1 structural-equivalence simplification on top of full DviCL.
// Run on a subset of the real suite; times in seconds, '-' = budget hit.
//
// A second section ablates the canonical-form cache (DESIGN.md §8) on
// gadget forests — disjoint unions of identical Miyazaki-like components,
// whose leaf subproblems all lower to the same local colored graph — and
// reports cache-off vs cache-on times plus the verified hit rate.
// `--cert-cache` additionally enables the cache for the main table above.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "datasets/generators.h"
#include "datasets/real_suite.h"
#include "dvicl/dvicl.h"
#include "dvicl/simplify.h"

namespace dvicl {
namespace {

std::string Timed(bool completed, double seconds) {
  return completed ? bench::FormatDouble(seconds, 3) : "-";
}

// Cert-cache ablation on gadget forests: with the cache off every one of
// the `copies` identical components pays its own IR search; with it on,
// the first search is memoized and every later leaf is a verified hit.
void RunCertCacheAblation(bench::BenchReporter& reporter, double time_limit) {
  std::printf("\nCert-cache ablation: gadget forests (identical "
              "Miyazaki-like components)\n\n");
  bench::TablePrinter table({10, 10, 14, 14, 10, 10, 10});
  table.Row({"copies", "n", "cache-off(s)", "cache-on(s)", "hits", "misses",
             "hit-rate"});
  table.Rule();

  for (uint32_t copies : {4u, 8u, 16u}) {
    const Graph g = GadgetForestGraph(copies, 8);
    const Coloring unit = Coloring::Unit(g.NumVertices());

    DviclOptions off = reporter.Options();
    off.time_limit_seconds = time_limit;
    off.cert_cache = false;
    Stopwatch w_off;
    DviclResult r_off = DviclCanonicalLabeling(g, unit, off);
    const double t_off = w_off.ElapsedSeconds();

    DviclOptions on = off;
    on.cert_cache = true;
    Stopwatch w_on;
    DviclResult r_on = DviclCanonicalLabeling(g, unit, on);
    const double t_on = w_on.ElapsedSeconds();

    const uint64_t hits = r_on.stats.cert_cache.hits;
    const uint64_t misses = r_on.stats.cert_cache.misses;
    const double hit_rate =
        hits + misses > 0 ? static_cast<double>(hits) / (hits + misses) : 0.0;

    reporter.BeginRecord();
    reporter.Field("section", "cert_cache_forest");
    reporter.Field("copies", static_cast<uint64_t>(copies));
    reporter.Field("n", static_cast<uint64_t>(g.NumVertices()));
    reporter.Field("cache_off_completed", r_off.completed());
    reporter.Field("cache_off_outcome", RunOutcomeName(r_off.outcome));
    reporter.Field("cache_off_seconds", t_off);
    reporter.Field("cache_on_completed", r_on.completed());
    reporter.Field("cache_on_outcome", RunOutcomeName(r_on.outcome));
    reporter.Field("cache_on_seconds", t_on);
    reporter.Field("cert_cache_hits", hits);
    reporter.Field("cert_cache_misses", misses);
    reporter.Field("cert_cache_collisions", r_on.stats.cert_cache.collisions);
    reporter.Field("cert_cache_hit_rate", hit_rate);
    reporter.Field("certificates_equal",
                   r_off.completed() && r_on.completed() &&
                       r_off.certificate == r_on.certificate);
    reporter.EndRecord();

    table.Row({std::to_string(copies), std::to_string(g.NumVertices()),
               Timed(r_off.completed(), t_off), Timed(r_on.completed(), t_on),
               std::to_string(hits), std::to_string(misses),
               bench::FormatDouble(hit_rate * 100.0, 1) + "%"});
    std::fflush(stdout);
  }
}

void Run(int argc, char** argv) {
  bench::BenchReporter reporter("ablation_dvicl", argc, argv);
  const double time_limit = reporter.TimeLimitSeconds();
  std::printf("Ablation: DviCL divide/simplify variants (scale=%.2f, "
              "budget=%.1fs)\n\n",
              bench::ScaleFromEnv(), time_limit);
  bench::TablePrinter table({14, 10, 14, 12, 12});
  table.Row({"Graph", "full", "divideI-only", "no-divide", "simplify"});
  table.Rule();

  auto suite = RealSuite(bench::ScaleFromEnv());
  for (size_t i = 0; i < suite.size(); i += 3) {  // every third graph
    const Graph& g = suite[i].graph;
    const Coloring unit = Coloring::Unit(g.NumVertices());

    DviclOptions full = reporter.Options();
    full.time_limit_seconds = time_limit;
    Stopwatch w1;
    DviclResult r_full = DviclCanonicalLabeling(g, unit, full);
    const double t_full = w1.ElapsedSeconds();

    DviclOptions no_s = full;
    no_s.enable_divide_s = false;
    Stopwatch w2;
    DviclResult r_no_s = DviclCanonicalLabeling(g, unit, no_s);
    const double t_no_s = w2.ElapsedSeconds();

    DviclOptions none = full;
    none.enable_divide_i = false;
    none.enable_divide_s = false;
    Stopwatch w3;
    DviclResult r_none = DviclCanonicalLabeling(g, unit, none);
    const double t_none = w3.ElapsedSeconds();

    Stopwatch w4;
    SimplifiedDviclResult r_simpl = DviclWithSimplification(g, unit, full);
    const double t_simpl = w4.ElapsedSeconds();

    reporter.BeginRecord();
    reporter.Field("graph", suite[i].name);
    reporter.Field("n", static_cast<uint64_t>(g.NumVertices()));
    reporter.Field("full_completed", r_full.completed());
    reporter.Field("full_outcome", RunOutcomeName(r_full.outcome));
    reporter.Field("full_seconds", t_full);
    reporter.Field("divide_i_only_completed", r_no_s.completed());
    reporter.Field("divide_i_only_outcome", RunOutcomeName(r_no_s.outcome));
    reporter.Field("divide_i_only_seconds", t_no_s);
    reporter.Field("no_divide_completed", r_none.completed());
    reporter.Field("no_divide_outcome", RunOutcomeName(r_none.outcome));
    reporter.Field("no_divide_seconds", t_none);
    reporter.Field("simplify_completed", r_simpl.completed());
    reporter.Field("simplify_outcome", RunOutcomeName(r_simpl.outcome));
    reporter.Field("simplify_seconds", t_simpl);
    reporter.EndRecord();

    table.Row({suite[i].name, Timed(r_full.completed(), t_full),
               Timed(r_no_s.completed(), t_no_s),
               Timed(r_none.completed(), t_none),
               Timed(r_simpl.completed(), t_simpl)});
    std::fflush(stdout);
  }

  RunCertCacheAblation(reporter, time_limit);
}

}  // namespace
}  // namespace dvicl

int main(int argc, char** argv) {
  dvicl::Run(argc, argv);
  return 0;
}
