// Ablation of DviCL's design choices (DESIGN.md per-experiment index):
//  - full DviCL (DivideI + DivideS),
//  - DivideI only (no clique/biclique removal),
//  - no divides (degenerates to one IR run on the whole graph),
//  - §6.1 structural-equivalence simplification on top of full DviCL.
// Run on a subset of the real suite; times in seconds, '-' = budget hit.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "datasets/real_suite.h"
#include "dvicl/dvicl.h"
#include "dvicl/simplify.h"

namespace dvicl {
namespace {

std::string Timed(bool completed, double seconds) {
  return completed ? bench::FormatDouble(seconds, 3) : "-";
}

void Run(int argc, char** argv) {
  bench::BenchReporter reporter("ablation_dvicl", argc, argv);
  const double time_limit = bench::TimeLimitFromEnv();
  std::printf("Ablation: DviCL divide/simplify variants (scale=%.2f, "
              "budget=%.1fs)\n\n",
              bench::ScaleFromEnv(), time_limit);
  bench::TablePrinter table({14, 10, 14, 12, 12});
  table.Row({"Graph", "full", "divideI-only", "no-divide", "simplify"});
  table.Rule();

  auto suite = RealSuite(bench::ScaleFromEnv());
  for (size_t i = 0; i < suite.size(); i += 3) {  // every third graph
    const Graph& g = suite[i].graph;
    const Coloring unit = Coloring::Unit(g.NumVertices());

    DviclOptions full = reporter.Options();
    full.time_limit_seconds = time_limit;
    Stopwatch w1;
    DviclResult r_full = DviclCanonicalLabeling(g, unit, full);
    const double t_full = w1.ElapsedSeconds();

    DviclOptions no_s = full;
    no_s.enable_divide_s = false;
    Stopwatch w2;
    DviclResult r_no_s = DviclCanonicalLabeling(g, unit, no_s);
    const double t_no_s = w2.ElapsedSeconds();

    DviclOptions none = full;
    none.enable_divide_i = false;
    none.enable_divide_s = false;
    Stopwatch w3;
    DviclResult r_none = DviclCanonicalLabeling(g, unit, none);
    const double t_none = w3.ElapsedSeconds();

    Stopwatch w4;
    SimplifiedDviclResult r_simpl = DviclWithSimplification(g, unit, full);
    const double t_simpl = w4.ElapsedSeconds();

    reporter.BeginRecord();
    reporter.Field("graph", suite[i].name);
    reporter.Field("n", static_cast<uint64_t>(g.NumVertices()));
    reporter.Field("full_completed", r_full.completed);
    reporter.Field("full_seconds", t_full);
    reporter.Field("divide_i_only_completed", r_no_s.completed);
    reporter.Field("divide_i_only_seconds", t_no_s);
    reporter.Field("no_divide_completed", r_none.completed);
    reporter.Field("no_divide_seconds", t_none);
    reporter.Field("simplify_completed", r_simpl.completed);
    reporter.Field("simplify_seconds", t_simpl);
    reporter.EndRecord();

    table.Row({suite[i].name, Timed(r_full.completed, t_full),
               Timed(r_no_s.completed, t_no_s),
               Timed(r_none.completed, t_none),
               Timed(r_simpl.completed, t_simpl)});
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace dvicl

int main(int argc, char** argv) {
  dvicl::Run(argc, argv);
  return 0;
}
