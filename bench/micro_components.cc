// Component microbenchmarks (google-benchmark): costs of the individual
// stages DviCL is built from — equitable refinement, AutoTree construction,
// certificate building, leaf IR search, triangle counting. Not a paper
// table; used to attribute the Table 5 speedups to the O(m) divide/combine
// pipeline (paper §6.2/§6.3 complexity analysis).

#include <benchmark/benchmark.h>

#include "datasets/generators.h"
#include "dvicl/dvicl.h"
#include "dvicl/simplify.h"
#include "graph/certificate.h"
#include "ir/ir_canonical.h"
#include "refine/refiner.h"

namespace dvicl {
namespace {

Graph SocialGraph(int64_t n) {
  Graph g = PreferentialAttachmentGraph(static_cast<VertexId>(n), 6, 77);
  g = WithTwins(g, 0.06, 78);
  return WithPendantPaths(g, 0.05, 3, 79);
}

void BM_RefineToEquitable(benchmark::State& state) {
  Graph g = SocialGraph(state.range(0));
  for (auto _ : state) {
    Coloring pi = Coloring::Unit(g.NumVertices());
    RefineToEquitable(g, &pi);
    benchmark::DoNotOptimize(pi.NumCells());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.NumEdges()));
}
BENCHMARK(BM_RefineToEquitable)->Arg(1000)->Arg(4000)->Arg(16000)->Arg(64000);

void BM_DviclConstruct(benchmark::State& state) {
  Graph g = SocialGraph(state.range(0));
  for (auto _ : state) {
    DviclResult r =
        DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
    benchmark::DoNotOptimize(r.certificate.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.NumEdges()));
}
BENCHMARK(BM_DviclConstruct)->Arg(1000)->Arg(4000)->Arg(16000)->Arg(64000);

void BM_Certificate(benchmark::State& state) {
  Graph g = SocialGraph(state.range(0));
  Permutation id = Permutation::Identity(g.NumVertices());
  std::vector<uint32_t> colors(g.NumVertices(), 0);
  for (auto _ : state) {
    Certificate cert = MakeCertificate(g, colors, id.ImageArray());
    benchmark::DoNotOptimize(cert.size());
  }
}
BENCHMARK(BM_Certificate)->Arg(4000)->Arg(16000);

void BM_IrLeafSearch_Cycle(benchmark::State& state) {
  // Pure IR on a cycle of n vertices: the kind of small regular leaf
  // CombineCL delegates (paper Fig. 4's non-singleton leaf).
  Graph g = CycleGraph(static_cast<VertexId>(state.range(0)));
  for (auto _ : state) {
    IrResult r = IrCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
    benchmark::DoNotOptimize(r.certificate.size());
  }
}
BENCHMARK(BM_IrLeafSearch_Cycle)->Arg(8)->Arg(16)->Arg(32);

void BM_StructuralSimplify(benchmark::State& state) {
  Graph g = SocialGraph(state.range(0));
  for (auto _ : state) {
    auto eq = FindStructuralEquivalence(g);
    benchmark::DoNotOptimize(eq.nontrivial_classes.size());
  }
}
BENCHMARK(BM_StructuralSimplify)->Arg(4000)->Arg(16000);

}  // namespace
}  // namespace dvicl

BENCHMARK_MAIN();
