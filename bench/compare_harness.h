#ifndef DVICL_BENCH_COMPARE_HARNESS_H_
#define DVICL_BENCH_COMPARE_HARNESS_H_

// Shared harness for paper Tables 5 and 8: for every graph, run the three
// IR baselines (nauty-like / traces-like / bliss-like presets of our IR
// engine, standing in for the real tools — DESIGN.md §4) and DviCL+X with
// the same preset as the leaf backend. Prints "time memory" pairs per
// algorithm; "-" marks a run that exceeded the time budget, like the
// paper's 2-hour timeouts. Every cell is also appended to the harness's
// BENCH_<name>.json record stream, and the reporter's --trace/--metrics
// recorders (when given) observe every run.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "datasets/benchmark_suite.h"
#include "dvicl/dvicl.h"
#include "ir/ir_canonical.h"

namespace dvicl {
namespace bench {

struct CompareCell {
  // Structured outcome (common/outcome.h); a baseline run that finished
  // but overshot the harness time limit is reported as kDeadline.
  RunOutcome outcome = RunOutcome::kCancelled;
  bool completed() const { return outcome == RunOutcome::kCompleted; }
  double seconds = 0.0;
  double rss_delta_mib = 0.0;
};

inline CompareCell RunBaseline(const Graph& g, IrPreset preset,
                               double time_limit,
                               obs::TraceRecorder* trace = nullptr) {
  CompareCell cell;
  const double rss_before = CurrentRssMebibytes();
  Stopwatch watch;
  IrOptions options;
  options.preset = preset;
  options.time_limit_seconds = time_limit;
  options.trace = trace;
  IrResult result =
      IrCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), options);
  cell.seconds = watch.ElapsedSeconds();
  cell.outcome = result.outcome;
  if (cell.completed() && time_limit > 0.0 && cell.seconds > time_limit) {
    cell.outcome = RunOutcome::kDeadline;
  }
  cell.rss_delta_mib = CurrentRssMebibytes() - rss_before;
  return cell;
}

inline CompareCell RunDvicl(const Graph& g, IrPreset preset,
                            double time_limit, const BenchReporter& reporter) {
  CompareCell cell;
  const double rss_before = CurrentRssMebibytes();
  Stopwatch watch;
  DviclOptions options = reporter.Options();
  options.leaf_backend = preset;
  options.time_limit_seconds = time_limit;  // RunComparison's own budget
  DviclResult result =
      DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), options);
  cell.seconds = watch.ElapsedSeconds();
  cell.outcome = result.outcome;
  cell.rss_delta_mib = CurrentRssMebibytes() - rss_before;
  return cell;
}

inline std::string TimeText(const CompareCell& cell) {
  return cell.completed() ? FormatDouble(cell.seconds, 3) : "-";
}

inline std::string MemText(const CompareCell& cell) {
  if (!cell.completed()) return "-";
  return FormatDouble(cell.rss_delta_mib < 0 ? 0.0 : cell.rss_delta_mib, 1);
}

inline const char* PresetName(IrPreset preset) {
  switch (preset) {
    case IrPreset::kNautyLike:
      return "nauty";
    case IrPreset::kTracesLike:
      return "traces";
    case IrPreset::kBlissLike:
      return "bliss";
  }
  return "?";
}

inline void RecordCell(BenchReporter& reporter, const NamedGraph& entry,
                       const char* algorithm, IrPreset preset,
                       const CompareCell& cell) {
  reporter.BeginRecord();
  reporter.Field("graph", entry.name);
  reporter.Field("n", static_cast<uint64_t>(entry.graph.NumVertices()));
  reporter.Field("m", static_cast<uint64_t>(entry.graph.NumEdges()));
  reporter.Field("algorithm", algorithm);
  reporter.Field("preset", PresetName(preset));
  reporter.OutcomeFields(cell.outcome);
  reporter.Field("wall_seconds", cell.seconds);
  reporter.Field("rss_delta_mib", cell.rss_delta_mib);
  reporter.EndRecord();
}

inline void RunComparison(BenchReporter& reporter,
                          const std::vector<NamedGraph>& suite,
                          const char* title) {
  const double time_limit = reporter.TimeLimitSeconds();
  const uint32_t num_threads = reporter.Threads();
  std::printf("%s\n", title);
  if (num_threads != 1) {
    std::printf("(DviCL+X columns use num_threads=%u)\n", num_threads);
  }
  std::printf("(wall-clock time in seconds; memory as resident-set delta in"
              " MiB; '-' = exceeded the %.1fs budget, cf. the paper's 2h"
              " limit)\n\n",
              time_limit);
  TablePrinter table({16, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9});
  table.Row({"Graph", "nauty", "mem", "DviCL+n", "mem", "traces", "mem",
             "DviCL+t", "mem", "bliss", "mem", "DviCL+b", "mem"});
  table.Rule();

  const IrPreset presets[] = {IrPreset::kNautyLike, IrPreset::kTracesLike,
                              IrPreset::kBlissLike};
  for (const NamedGraph& entry : suite) {
    const Graph& g = entry.graph;
    std::vector<std::string> cells = {entry.name};
    for (IrPreset preset : presets) {
      const CompareCell baseline =
          RunBaseline(g, preset, time_limit, reporter.Trace());
      RecordCell(reporter, entry, "ir", preset, baseline);
      const CompareCell dvicl = RunDvicl(g, preset, time_limit, reporter);
      RecordCell(reporter, entry, "dvicl", preset, dvicl);
      cells.push_back(TimeText(baseline));
      cells.push_back(MemText(baseline));
      cells.push_back(TimeText(dvicl));
      cells.push_back(MemText(dvicl));
    }
    table.Row(cells);
    std::fflush(stdout);
  }
}

}  // namespace bench
}  // namespace dvicl

#endif  // DVICL_BENCH_COMPARE_HARNESS_H_
