#ifndef DVICL_BENCH_COMPARE_HARNESS_H_
#define DVICL_BENCH_COMPARE_HARNESS_H_

// Shared harness for paper Tables 5 and 8: for every graph, run the three
// IR baselines (nauty-like / traces-like / bliss-like presets of our IR
// engine, standing in for the real tools — DESIGN.md §4) and DviCL+X with
// the same preset as the leaf backend. Prints "time memory" pairs per
// algorithm; "-" marks a run that exceeded the time budget, like the
// paper's 2-hour timeouts.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "datasets/benchmark_suite.h"
#include "dvicl/dvicl.h"
#include "ir/ir_canonical.h"

namespace dvicl {
namespace bench {

struct CompareCell {
  bool completed = false;
  double seconds = 0.0;
  double rss_delta_mib = 0.0;
};

inline CompareCell RunBaseline(const Graph& g, IrPreset preset,
                               double time_limit) {
  CompareCell cell;
  const double rss_before = CurrentRssMebibytes();
  Stopwatch watch;
  IrOptions options;
  options.preset = preset;
  options.time_limit_seconds = time_limit;
  IrResult result =
      IrCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), options);
  cell.seconds = watch.ElapsedSeconds();
  cell.completed = result.completed && cell.seconds <= time_limit;
  cell.rss_delta_mib = CurrentRssMebibytes() - rss_before;
  return cell;
}

inline CompareCell RunDvicl(const Graph& g, IrPreset preset,
                            double time_limit, uint32_t num_threads = 1) {
  CompareCell cell;
  const double rss_before = CurrentRssMebibytes();
  Stopwatch watch;
  DviclOptions options;
  options.leaf_backend = preset;
  options.time_limit_seconds = time_limit;
  options.num_threads = num_threads;
  DviclResult result =
      DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), options);
  cell.seconds = watch.ElapsedSeconds();
  cell.completed = result.completed;
  cell.rss_delta_mib = CurrentRssMebibytes() - rss_before;
  return cell;
}

inline std::string TimeText(const CompareCell& cell) {
  return cell.completed ? FormatDouble(cell.seconds, 3) : "-";
}

inline std::string MemText(const CompareCell& cell) {
  if (!cell.completed) return "-";
  return FormatDouble(cell.rss_delta_mib < 0 ? 0.0 : cell.rss_delta_mib, 1);
}

inline void RunComparison(const std::vector<NamedGraph>& suite,
                          const char* title, uint32_t num_threads = 1) {
  const double time_limit = TimeLimitFromEnv();
  std::printf("%s\n", title);
  if (num_threads != 1) {
    std::printf("(DviCL+X columns use num_threads=%u)\n", num_threads);
  }
  std::printf("(time in seconds; memory as resident-set delta in MiB; '-' ="
              " exceeded the %.1fs budget, cf. the paper's 2h limit)\n\n",
              time_limit);
  TablePrinter table({16, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9});
  table.Row({"Graph", "nauty", "mem", "DviCL+n", "mem", "traces", "mem",
             "DviCL+t", "mem", "bliss", "mem", "DviCL+b", "mem"});
  table.Rule();

  for (const NamedGraph& entry : suite) {
    const Graph& g = entry.graph;
    const CompareCell nauty =
        RunBaseline(g, IrPreset::kNautyLike, time_limit);
    const CompareCell dvicl_n =
        RunDvicl(g, IrPreset::kNautyLike, time_limit, num_threads);
    const CompareCell traces =
        RunBaseline(g, IrPreset::kTracesLike, time_limit);
    const CompareCell dvicl_t =
        RunDvicl(g, IrPreset::kTracesLike, time_limit, num_threads);
    const CompareCell bliss = RunBaseline(g, IrPreset::kBlissLike, time_limit);
    const CompareCell dvicl_b =
        RunDvicl(g, IrPreset::kBlissLike, time_limit, num_threads);

    table.Row({entry.name, TimeText(nauty), MemText(nauty), TimeText(dvicl_n),
               MemText(dvicl_n), TimeText(traces), MemText(traces),
               TimeText(dvicl_t), MemText(dvicl_t), TimeText(bliss),
               MemText(bliss), TimeText(dvicl_b), MemText(dvicl_b)});
    std::fflush(stdout);
  }
}

}  // namespace bench
}  // namespace dvicl

#endif  // DVICL_BENCH_COMPARE_HARNESS_H_
