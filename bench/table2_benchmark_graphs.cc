// Reproduces paper Table 2: summary of the benchmark-graph suite (bliss
// collection families; see DESIGN.md §4 for the per-family construction).
// Orbit-coloring statistics come from DviCL+bliss-like with a time budget;
// on a timeout the equitable-coloring cells are reported with a '*'.

#include <cstdio>

#include "bench_util.h"
#include "datasets/benchmark_suite.h"
#include "dvicl/dvicl.h"
#include "refine/refiner.h"

namespace dvicl {
namespace {

void Run(int argc, char** argv) {
  bench::BenchReporter reporter("table2_benchmark_graphs", argc, argv);
  std::printf("Table 2: Summarization of benchmark graphs (scale=%d)\n\n",
              bench::BenchmarkScaleFromEnv());
  bench::TablePrinter table({20, 10, 12, 8, 8, 10, 10});
  table.Row({"Graph", "|V|", "|E|", "dmax", "davg", "cells", "singleton"});
  table.Rule();

  for (const NamedGraph& entry :
       BenchmarkSuite(bench::BenchmarkScaleFromEnv())) {
    const Graph& g = entry.graph;
    DviclOptions options = reporter.Options();
    options.time_limit_seconds = bench::TimeLimitFromEnv();
    DviclResult result =
        DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), options);

    std::string cells;
    std::string singleton;
    if (result.completed()) {
      const auto orbit =
          OrbitIdsFromGenerators(g.NumVertices(), result.generators);
      std::vector<uint64_t> size(g.NumVertices(), 0);
      for (VertexId v = 0; v < g.NumVertices(); ++v) ++size[orbit[v]];
      uint64_t num_cells = 0;
      uint64_t num_singleton = 0;
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        if (size[v] > 0) {
          ++num_cells;
          num_singleton += (size[v] == 1) ? 1 : 0;
        }
      }
      cells = std::to_string(num_cells);
      singleton = std::to_string(num_singleton);
    } else {
      // Fall back to the equitable coloring (an upper bound on orbits).
      Coloring pi = Coloring::Unit(g.NumVertices());
      RefineToEquitable(g, &pi);
      uint64_t num_singleton = 0;
      for (VertexId s : pi.CellStarts()) {
        num_singleton += (pi.CellSizeAt(s) == 1) ? 1 : 0;
      }
      cells = std::to_string(pi.NumCells()) + "*";
      singleton = std::to_string(num_singleton) + "*";
    }
    reporter.BeginRecord();
    reporter.Field("graph", entry.name);
    reporter.Field("n", static_cast<uint64_t>(g.NumVertices()));
    reporter.Field("m", static_cast<uint64_t>(g.NumEdges()));
    reporter.OutcomeFields(result.outcome);
    reporter.Field("orbit_cells", cells);
    reporter.Field("orbit_singletons", singleton);
    reporter.StatsFields(result.stats);
    reporter.EndRecord();

    table.Row({entry.name, std::to_string(g.NumVertices()),
               std::to_string(g.NumEdges()), std::to_string(g.MaxDegree()),
               bench::FormatDouble(g.AverageDegree()), cells, singleton});
  }
  std::printf("\n(*: DviCL hit the time budget; equitable-coloring cells "
              "reported instead of orbits)\n");
}

}  // namespace
}  // namespace dvicl

int main(int argc, char** argv) {
  dvicl::Run(argc, argv);
  return 0;
}
