// Reproduces paper Table 6: SSM on influence-maximization seed sets. For
// every real graph, a seed set S is selected by IC-model greedy (the PMC
// stand-in), and the AutoTree counts how many seed sets are symmetric to S
// (same influence by symmetry). Columns: count and query time for
// |S| = 10 and |S| = 100.

#include <cstdio>

#include "analysis/influence_max.h"
#include "bench_util.h"
#include "common/stopwatch.h"
#include "datasets/real_suite.h"
#include "dvicl/dvicl.h"
#include "ssm/ssm_at.h"

namespace dvicl {
namespace {

void Run(int argc, char** argv) {
  bench::BenchReporter reporter("table6_ssm_im", argc, argv);
  std::printf("Table 6: SSM on seed set S by IM (scale=%.2f)\n\n",
              bench::ScaleFromEnv());
  bench::TablePrinter table({14, 14, 10, 14, 10});
  table.Row({"Graph", "number(10)", "time", "number(100)", "time"});
  table.Rule();

  for (const NamedGraph& entry : RealSuite(bench::ScaleFromEnv())) {
    const Graph& g = entry.graph;
    DviclResult result = DviclCanonicalLabeling(
        g, Coloring::Unit(g.NumVertices()), reporter.Options());
    if (!result.completed()) {
      table.Row({entry.name, "-", "-", "-", "-"});
      continue;
    }
    SsmIndex index(g, result);

    std::vector<std::string> row = {entry.name};
    for (uint32_t k : {10u, 100u}) {
      InfluenceMaxOptions im;
      im.monte_carlo_rounds = 8;   // the seeds feed SSM; accuracy is not
                                   // the subject of this table
      im.candidate_pool = 4 * k;   // PMC-style pruning of the greedy
      InfluenceMaxResult seeds = GreedyInfluenceMaximization(g, k, im);
      Stopwatch watch;
      BigUint count = index.CountSymmetricImages(seeds.seeds);
      const double query_seconds = watch.ElapsedSeconds();

      reporter.BeginRecord();
      reporter.Field("graph", entry.name);
      reporter.Field("seed_set_size", static_cast<uint64_t>(k));
      reporter.Field("symmetric_images", count.ToCompactString());
      reporter.Field("query_seconds", query_seconds);
      reporter.EndRecord();

      row.push_back(count.ToCompactString());
      row.push_back(bench::FormatDouble(query_seconds, 3));
    }
    table.Row(row);
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace dvicl

int main(int argc, char** argv) {
  dvicl::Run(argc, argv);
  return 0;
}
