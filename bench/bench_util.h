#ifndef DVICL_BENCH_BENCH_UTIL_H_
#define DVICL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace dvicl {
namespace bench {

// Environment knobs shared by all table harnesses:
//   DVICL_BENCH_SCALE: size multiplier for the real-graph suite (default 1
//     -> a few thousand vertices per graph; the paper's graphs are 40-200x
//     larger — see DESIGN.md §4 on scaling).
//   DVICL_BENCH_LARGE: "1" selects the larger benchmark-suite instances.
//   DVICL_TIME_LIMIT: per-run time limit in seconds for Table 5/8 style
//     comparisons (default 2.0; the paper used 7200).
inline double ScaleFromEnv() {
  const char* value = std::getenv("DVICL_BENCH_SCALE");
  return value != nullptr ? std::atof(value) : 1.0;
}

inline int BenchmarkScaleFromEnv() {
  const char* value = std::getenv("DVICL_BENCH_LARGE");
  return (value != nullptr && value[0] == '1') ? 2 : 1;
}

inline double TimeLimitFromEnv() {
  const char* value = std::getenv("DVICL_TIME_LIMIT");
  return value != nullptr ? std::atof(value) : 2.0;
}

// Thread count for the parallel AutoTree build (DviclOptions::num_threads):
// `--threads=N` on the command line wins, then the DVICL_THREADS environment
// variable, then 1 (sequential). N = 0 means one thread per hardware thread,
// mirroring the library convention.
inline unsigned ThreadsFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      return static_cast<unsigned>(std::atoi(argv[i] + 10));
    }
  }
  const char* value = std::getenv("DVICL_THREADS");
  return value != nullptr ? static_cast<unsigned>(std::atoi(value)) : 1u;
}

// Minimal fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<int> widths) : widths_(std::move(widths)) {}

  void Row(const std::vector<std::string>& cells) const {
    for (size_t i = 0; i < cells.size(); ++i) {
      std::printf("%-*s", i < widths_.size() ? widths_[i] : 12,
                  cells[i].c_str());
    }
    std::printf("\n");
  }

  void Rule() const {
    int total = 0;
    for (int w : widths_) total += w;
    for (int i = 0; i < total; ++i) std::printf("-");
    std::printf("\n");
  }

 private:
  std::vector<int> widths_;
};

inline std::string FormatDouble(double value, int decimals = 2) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

}  // namespace bench
}  // namespace dvicl

#endif  // DVICL_BENCH_BENCH_UTIL_H_
