#ifndef DVICL_BENCH_BENCH_UTIL_H_
#define DVICL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "dvicl/dvicl.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dvicl {
namespace bench {

// Environment knobs shared by all table harnesses:
//   DVICL_BENCH_SCALE: size multiplier for the real-graph suite (default 1
//     -> a few thousand vertices per graph; the paper's graphs are 40-200x
//     larger — see DESIGN.md §4 on scaling).
//   DVICL_BENCH_LARGE: "1" selects the larger benchmark-suite instances.
//   DVICL_TIME_LIMIT: per-run time limit in seconds for Table 5/8 style
//     comparisons (default 2.0; the paper used 7200).
//   DVICL_BENCH_JSON: "0" disables the BENCH_<name>.json result file.
// Command-line flags (see BenchReporter):
//   --threads=N      thread count for the DviCL AutoTree build
//   --cert-cache     enable the canonical-form cache for leaf subproblems
//                    (also --cert-cache=1; --cert-cache=0 is the default)
//   --arena=0|1      arena memory for the refine+IR hot path (default on;
//                    --arena=0 selects the heap leg for alloc comparisons)
//   --trace=out.json Chrome-trace recording of the whole bench run
//   --metrics=out.json metrics registry dump (plus a text table on stdout)
//   --time-limit=SECONDS  per-run wall-clock budget (overrides
//                    DVICL_TIME_LIMIT; 0 = unlimited). Budget-exceeded runs
//                    are reported with their structured outcome, not
//                    silently dropped.
//   --memory-limit=MIB    per-run RSS-delta budget in mebibytes
//                    (DviclOptions::memory_limit_mib; 0 = unlimited)
inline double ScaleFromEnv() {
  const char* value = std::getenv("DVICL_BENCH_SCALE");
  return value != nullptr ? std::atof(value) : 1.0;
}

inline int BenchmarkScaleFromEnv() {
  const char* value = std::getenv("DVICL_BENCH_LARGE");
  return (value != nullptr && value[0] == '1') ? 2 : 1;
}

inline double TimeLimitFromEnv() {
  const char* value = std::getenv("DVICL_TIME_LIMIT");
  return value != nullptr ? std::atof(value) : 2.0;
}

// Value of `--<prefix>=value` on the command line, or "" when absent.
inline std::string FlagFromArgs(int argc, char** argv, const char* flag) {
  const size_t len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
      return std::string(argv[i] + len + 1);
    }
  }
  return std::string();
}

// True when `--<prefix>` appears bare (no '=') on the command line.
inline bool BareFlagFromArgs(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

// Canonical-form cache toggle (DviclOptions::cert_cache): `--cert-cache`
// or `--cert-cache=1` enables it, default off. The library-level
// DVICL_CERT_CACHE=1 override applies to benches too.
inline bool CertCacheFromArgs(int argc, char** argv) {
  if (BareFlagFromArgs(argc, argv, "--cert-cache")) return true;
  const std::string value = FlagFromArgs(argc, argv, "--cert-cache");
  return !value.empty() && value[0] == '1';
}

// Arena toggle (DviclOptions::arena): on by default, `--arena=0` selects
// the heap leg (the alloc-regression smoke compares the two). The
// library-level DVICL_ARENA override applies to benches too.
inline bool ArenaFromArgs(int argc, char** argv) {
  if (BareFlagFromArgs(argc, argv, "--arena")) return true;
  const std::string value = FlagFromArgs(argc, argv, "--arena");
  if (value.empty()) return true;
  return value[0] != '0';
}

// Thread count for the parallel AutoTree build (DviclOptions::num_threads):
// `--threads=N` on the command line wins, then the DVICL_THREADS environment
// variable, then 1 (sequential). N = 0 means one thread per hardware thread,
// mirroring the library convention.
inline unsigned ThreadsFromArgs(int argc, char** argv) {
  const std::string flag = FlagFromArgs(argc, argv, "--threads");
  if (!flag.empty()) return static_cast<unsigned>(std::atoi(flag.c_str()));
  const char* value = std::getenv("DVICL_THREADS");
  return value != nullptr ? static_cast<unsigned>(std::atoi(value)) : 1u;
}

// Per-run wall-clock budget: `--time-limit=SECONDS` wins over the
// DVICL_TIME_LIMIT environment variable (0 = unlimited).
inline double TimeLimitFromArgs(int argc, char** argv) {
  const std::string flag = FlagFromArgs(argc, argv, "--time-limit");
  if (!flag.empty()) return std::atof(flag.c_str());
  return TimeLimitFromEnv();
}

// Per-run RSS-delta budget in MiB (`--memory-limit=MIB`, 0 = unlimited).
inline uint64_t MemoryLimitFromArgs(int argc, char** argv) {
  const std::string flag = FlagFromArgs(argc, argv, "--memory-limit");
  if (flag.empty()) return 0;
  const long long value = std::atoll(flag.c_str());
  return value > 0 ? static_cast<uint64_t>(value) : 0;
}

// Minimal fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<int> widths) : widths_(std::move(widths)) {}

  void Row(const std::vector<std::string>& cells) const {
    for (size_t i = 0; i < cells.size(); ++i) {
      std::printf("%-*s", i < widths_.size() ? widths_[i] : 12,
                  cells[i].c_str());
    }
    std::printf("\n");
  }

  void Rule() const {
    int total = 0;
    for (int w : widths_) total += w;
    for (int i = 0; i < total; ++i) std::printf("-");
    std::printf("\n");
  }

 private:
  std::vector<int> widths_;
};

inline std::string FormatDouble(double value, int decimals = 2) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

// Machine-readable bench output + observability wiring, shared by every
// table harness. One reporter per process:
//
//   * Always (unless DVICL_BENCH_JSON=0) writes `BENCH_<name>.json` in the
//     working directory: bench metadata (threads, scale, time limit) plus
//     one record per measured row — the start of a tracked perf
//     trajectory.
//   * `--trace=out.json` creates a TraceRecorder handed to every DviCL/IR
//     run via Trace(); the Chrome trace is written at Finish()/destruction.
//   * `--metrics=out.json` likewise creates a MetricsRegistry; the JSON
//     dump is written at the end and a human text table printed to stdout.
//
// Records are flat key/value objects built through Field() calls between
// BeginRecord()/EndRecord(); keys go out in call order.
class BenchReporter {
 public:
  BenchReporter(std::string name, int argc, char** argv)
      : name_(std::move(name)),
        threads_(ThreadsFromArgs(argc, argv)),
        cert_cache_(CertCacheFromArgs(argc, argv)),
        arena_(ArenaFromArgs(argc, argv)),
        time_limit_seconds_(TimeLimitFromArgs(argc, argv)),
        memory_limit_mib_(MemoryLimitFromArgs(argc, argv)) {
    const char* json_env = std::getenv("DVICL_BENCH_JSON");
    json_enabled_ = json_env == nullptr || json_env[0] != '0';
    trace_path_ = FlagFromArgs(argc, argv, "--trace");
    metrics_path_ = FlagFromArgs(argc, argv, "--metrics");
    if (!trace_path_.empty()) {
      trace_ = std::make_unique<obs::TraceRecorder>();
    }
    if (!metrics_path_.empty()) {
      metrics_ = std::make_unique<obs::MetricsRegistry>();
    }
    writer_.BeginObject();
    writer_.Key("bench");
    writer_.String(name_);
    writer_.Key("threads");
    writer_.Uint(threads_);
    writer_.Key("cert_cache");
    writer_.Bool(cert_cache_);
    writer_.Key("arena");
    writer_.Bool(arena_);
    writer_.Key("scale");
    writer_.Double(ScaleFromEnv());
    writer_.Key("benchmark_scale");
    writer_.Uint(static_cast<uint64_t>(BenchmarkScaleFromEnv()));
    writer_.Key("time_limit_seconds");
    writer_.Double(time_limit_seconds_);
    writer_.Key("memory_limit_mib");
    writer_.Uint(memory_limit_mib_);
    writer_.Key("records");
    writer_.BeginArray();
  }

  ~BenchReporter() { Finish(); }

  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;

  unsigned Threads() const { return threads_; }
  bool CertCacheEnabled() const { return cert_cache_; }
  bool ArenaEnabled() const { return arena_; }
  double TimeLimitSeconds() const { return time_limit_seconds_; }
  uint64_t MemoryLimitMib() const { return memory_limit_mib_; }
  // Null when the corresponding flag was not given — exactly the shape
  // DviclOptions::trace / ::metrics and IrOptions::trace expect.
  obs::TraceRecorder* Trace() const { return trace_.get(); }
  obs::MetricsRegistry* Metrics() const { return metrics_.get(); }

  // DviclOptions with the observability hooks and thread count filled in.
  DviclOptions Options() const {
    DviclOptions options;
    options.num_threads = threads_;
    options.cert_cache = cert_cache_;
    options.arena = arena_;
    options.time_limit_seconds = time_limit_seconds_;
    options.memory_limit_mib = memory_limit_mib_;
    options.trace = trace_.get();
    options.metrics = metrics_.get();
    return options;
  }

  void BeginRecord() { writer_.BeginObject(); }
  void EndRecord() { writer_.EndObject(); }

  void Field(const char* key, std::string_view value) {
    writer_.Key(key);
    writer_.String(value);
  }
  // Without this overload a string-literal value would pick Field(bool)
  // (pointer-to-bool is a standard conversion, string_view is user-defined).
  void Field(const char* key, const char* value) {
    Field(key, std::string_view(value));
  }
  void Field(const char* key, double value) {
    writer_.Key(key);
    writer_.Double(value);
  }
  void Field(const char* key, uint64_t value) {
    writer_.Key(key);
    writer_.Uint(value);
  }
  void Field(const char* key, uint32_t value) {
    Field(key, static_cast<uint64_t>(value));
  }
  void Field(const char* key, bool value) {
    writer_.Key(key);
    writer_.Bool(value);
  }

  // Structured termination cause of a governed run. Every harness writes
  // this next to its timing fields so a budget-exceeded run is a visible
  // record ("outcome": "deadline") rather than a silently dropped row.
  void OutcomeFields(RunOutcome outcome) {
    Field("outcome", RunOutcomeName(outcome));
    Field("completed", outcome == RunOutcome::kCompleted);
  }

  // Standard per-run DviCL statistics fields, with the wall-clock /
  // CPU-seconds distinction explicit in the key names (DviclStats doc).
  void StatsFields(const DviclStats& stats) {
    Field("wall_seconds", stats.wall_seconds);
    Field("cpu_refine_seconds", stats.refine_seconds);
    Field("cpu_divide_seconds", stats.divide_seconds);
    Field("cpu_combine_seconds", stats.combine_seconds);
    Field("autotree_nodes", stats.autotree_nodes);
    Field("singleton_leaves", stats.singleton_leaves);
    Field("nonsingleton_leaves", stats.nonsingleton_leaves);
    Field("tree_depth", static_cast<uint64_t>(stats.depth));
    Field("refine_splitters", stats.refine_splitters);
    Field("alloc_count", stats.alloc_count);
    Field("alloc_bytes", stats.alloc_bytes);
    Field("ir_tree_nodes", stats.leaf_ir.tree_nodes);
    Field("ir_automorphisms", stats.leaf_ir.automorphisms_found);
    Field("cert_cache_hits", stats.cert_cache.hits);
    Field("cert_cache_misses", stats.cert_cache.misses);
    Field("cert_cache_collisions", stats.cert_cache.collisions);
  }

  // Writes all configured outputs. Idempotent; also invoked by the dtor.
  void Finish() {
    if (finished_) return;
    finished_ = true;
    writer_.EndArray();
    writer_.Key("peak_rss_mib");
    writer_.Double(PeakRssMebibytes());
    writer_.EndObject();
    if (json_enabled_) {
      const std::string path = "BENCH_" + name_ + ".json";
      if (!WriteFile(path, writer_.Str())) {
        std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
      }
    }
    if (trace_ != nullptr && !trace_->WriteJsonFile(trace_path_)) {
      std::fprintf(stderr, "warning: could not write trace %s\n",
                   trace_path_.c_str());
    }
    if (metrics_ != nullptr) {
      if (!metrics_->WriteJsonFile(metrics_path_)) {
        std::fprintf(stderr, "warning: could not write metrics %s\n",
                     metrics_path_.c_str());
      }
      std::printf("\nMetrics (%s):\n%s", metrics_path_.c_str(),
                  metrics_->ToText().c_str());
    }
  }

 private:
  static bool WriteFile(const std::string& path, const std::string& data) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return false;
    const size_t written = std::fwrite(data.data(), 1, data.size(), f);
    return std::fclose(f) == 0 && written == data.size();
  }

  std::string name_;
  unsigned threads_;
  bool cert_cache_ = false;
  bool arena_ = true;
  double time_limit_seconds_ = 0.0;
  uint64_t memory_limit_mib_ = 0;
  bool json_enabled_ = true;
  bool finished_ = false;
  std::string trace_path_;
  std::string metrics_path_;
  std::unique_ptr<obs::TraceRecorder> trace_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  obs::JsonWriter writer_;
};

}  // namespace bench
}  // namespace dvicl

#endif  // DVICL_BENCH_BENCH_UTIL_H_
