// Reproduces paper Table 5: performance of nauty, DviCL+n, traces, DviCL+t,
// bliss, and DviCL+b on the real-graph suite. Expected shape: the pure IR
// baselines time out or crawl on most graphs while all three DviCL+X finish
// fast and within a near-identical memory envelope (paper §7).

#include "compare_harness.h"
#include "datasets/real_suite.h"

int main() {
  dvicl::bench::RunComparison(
      dvicl::RealSuite(dvicl::bench::ScaleFromEnv()),
      "Table 5: Performance on real-world networks");
  return 0;
}
