// Reproduces paper Table 5: performance of nauty, DviCL+n, traces, DviCL+t,
// bliss, and DviCL+b on the real-graph suite. Expected shape: the pure IR
// baselines time out or crawl on most graphs while all three DviCL+X finish
// fast and within a near-identical memory envelope (paper §7).
//
// `--threads=N` (or DVICL_THREADS) runs the DviCL+X columns with a parallel
// AutoTree build; the baselines are single-threaded by design, like the
// real tools. `--trace=`/`--metrics=` record the whole comparison; per-cell
// results land in BENCH_table5_perf_real.json.

#include "compare_harness.h"
#include "datasets/real_suite.h"

int main(int argc, char** argv) {
  dvicl::bench::BenchReporter reporter("table5_perf_real", argc, argv);
  dvicl::bench::RunComparison(reporter,
                              dvicl::RealSuite(dvicl::bench::ScaleFromEnv()),
                              "Table 5: Performance on real-world networks");
  return 0;
}
