// Reproduces paper Table 7: subgraph clustering by SSM. For every real
// graph: all maximum cliques and all triangles are clustered into orbits
// under Aut(G); columns are total count, number of clusters, and the size
// of the largest cluster, for each family.

#include <cstdio>

#include "analysis/max_clique.h"
#include "analysis/triangles.h"
#include "bench_util.h"
#include "datasets/real_suite.h"
#include "dvicl/dvicl.h"
#include "ssm/ssm_count.h"

namespace dvicl {
namespace {

constexpr size_t kMaxCliques = 200000;
constexpr size_t kMaxTriangles = 2000000;

void Run(int argc, char** argv) {
  bench::BenchReporter reporter("table7_clustering", argc, argv);
  std::printf("Table 7: Subgraph clustering by SSM (scale=%.2f)\n\n",
              bench::ScaleFromEnv());
  bench::TablePrinter table({14, 10, 10, 9, 12, 12, 9});
  table.Row({"Graph", "mc#", "mc-clus", "mc-max", "tri#", "tri-clus",
             "tri-max"});
  table.Rule();

  for (const NamedGraph& entry : RealSuite(bench::ScaleFromEnv())) {
    const Graph& g = entry.graph;
    DviclResult result = DviclCanonicalLabeling(
        g, Coloring::Unit(g.NumVertices()), reporter.Options());
    if (!result.completed()) {
      table.Row({entry.name, "-", "-", "-", "-", "-", "-"});
      continue;
    }

    // Maximum cliques.
    const auto one_clique = FindMaximumClique(g);
    auto cliques = FindAllCliquesOfSize(g, one_clique.size(), kMaxCliques);
    auto clique_clusters =
        ClusterSubgraphsBySymmetry(g.NumVertices(), result.generators,
                                   cliques);

    // Triangles.
    auto triangles = EnumerateTriangles(g, kMaxTriangles);
    auto triangle_clusters = ClusterSubgraphsBySymmetry(
        g.NumVertices(), result.generators, triangles);

    reporter.BeginRecord();
    reporter.Field("graph", entry.name);
    reporter.Field("max_cliques", static_cast<uint64_t>(cliques.size()));
    reporter.Field("clique_clusters",
                   static_cast<uint64_t>(clique_clusters.num_clusters));
    reporter.Field("clique_max_cluster",
                   static_cast<uint64_t>(clique_clusters.max_cluster_size));
    reporter.Field("triangles", static_cast<uint64_t>(triangles.size()));
    reporter.Field("triangle_clusters",
                   static_cast<uint64_t>(triangle_clusters.num_clusters));
    reporter.Field("triangle_max_cluster",
                   static_cast<uint64_t>(triangle_clusters.max_cluster_size));
    reporter.EndRecord();

    table.Row({entry.name, std::to_string(cliques.size()),
               std::to_string(clique_clusters.num_clusters),
               std::to_string(clique_clusters.max_cluster_size),
               std::to_string(triangles.size()),
               std::to_string(triangle_clusters.num_clusters),
               std::to_string(triangle_clusters.max_cluster_size)});
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace dvicl

int main(int argc, char** argv) {
  dvicl::Run(argc, argv);
  return 0;
}
