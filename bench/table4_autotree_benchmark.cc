// Reproduces paper Table 4: the structure of the AutoTrees built for the
// benchmark-graph suite. The expected shape (paper §7): most benchmark
// families are regular, so the AutoTree collapses to a single root node —
// DviCL cannot help there, matching Table 8's near-parity.

#include <cstdio>

#include "bench_util.h"
#include "datasets/benchmark_suite.h"
#include "dvicl/dvicl.h"

namespace dvicl {
namespace {

void Run(int argc, char** argv) {
  bench::BenchReporter reporter("table4_autotree_benchmark", argc, argv);
  std::printf("Table 4: The structure of AutoTrees of benchmark graphs "
              "(scale=%d)\n\n",
              bench::BenchmarkScaleFromEnv());
  bench::TablePrinter table({20, 12, 12, 14, 10, 8});
  table.Row({"Graph", "|V(AT)|", "singleton", "non-singleton", "avg size",
             "depth"});
  table.Rule();

  for (const NamedGraph& entry :
       BenchmarkSuite(bench::BenchmarkScaleFromEnv())) {
    const Graph& g = entry.graph;
    DviclOptions options = reporter.Options();
    options.time_limit_seconds = bench::TimeLimitFromEnv();
    DviclResult result =
        DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), options);
    reporter.BeginRecord();
    reporter.Field("graph", entry.name);
    reporter.Field("n", static_cast<uint64_t>(g.NumVertices()));
    reporter.Field("m", static_cast<uint64_t>(g.NumEdges()));
    reporter.OutcomeFields(result.outcome);
    if (result.completed()) {
      reporter.Field("avg_nonsingleton_leaf_size",
                     result.tree.AverageNonSingletonLeafSize());
      reporter.Field("node_step_seconds", result.tree.TotalStepSeconds());
    }
    reporter.StatsFields(result.stats);
    reporter.EndRecord();
    if (!result.completed()) {
      table.Row({entry.name, "-", "-", "-", "-", "-"});
      continue;
    }
    table.Row({entry.name, std::to_string(result.tree.NumNodes()),
               std::to_string(result.tree.NumSingletonLeaves()),
               std::to_string(result.tree.NumNonSingletonLeaves()),
               bench::FormatDouble(result.tree.AverageNonSingletonLeafSize()),
               std::to_string(result.tree.Depth())});
  }
}

}  // namespace
}  // namespace dvicl

int main(int argc, char** argv) {
  dvicl::Run(argc, argv);
  return 0;
}
