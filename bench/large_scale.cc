// Massive-graph demonstration: the paper's core claim is that DviCL
// handles graphs the IR baselines cannot touch (its Table 5 graphs reach
// 5.7M vertices / 117M edges). This harness scales a twin-rich social
// graph up to millions of vertices and reports DviCL+b wall time, peak
// memory, and the AutoTree shape. Override the largest size with
// DVICL_LARGE_N (default 1,000,000).

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "datasets/generators.h"
#include "dvicl/dvicl.h"

namespace dvicl {
namespace {

void Run() {
  const char* env = std::getenv("DVICL_LARGE_N");
  const VertexId max_n =
      env != nullptr ? static_cast<VertexId>(std::atoll(env)) : 1000000;

  std::printf("Large-scale DviCL+b on twin-rich social graphs (largest n = "
              "%u)\n\n",
              max_n);
  bench::TablePrinter table({12, 14, 12, 12, 12, 14, 8});
  table.Row({"n", "|E|", "gen(s)", "dvicl(s)", "peakMiB", "AT-nodes",
             "depth"});
  table.Rule();

  for (VertexId n : {30000u, 100000u, 300000u, 1000000u, 3000000u}) {
    if (n > max_n) break;
    Stopwatch gen_watch;
    Graph g = PreferentialAttachmentGraph(n, 6, 555);
    g = WithTwins(g, 0.06, 556);
    g = WithPendantPaths(g, 0.05, 3, 557);
    const double gen_seconds = gen_watch.ElapsedSeconds();

    Stopwatch watch;
    DviclResult result =
        DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
    const double seconds = watch.ElapsedSeconds();
    if (!result.completed()) {
      table.Row({std::to_string(g.NumVertices()), "-", "-", "-", "-", "-",
                 "-"});
      continue;
    }
    table.Row({std::to_string(g.NumVertices()),
               std::to_string(g.NumEdges()),
               bench::FormatDouble(gen_seconds, 2),
               bench::FormatDouble(seconds, 2),
               bench::FormatDouble(PeakRssMebibytes(), 0),
               std::to_string(result.tree.NumNodes()),
               std::to_string(result.tree.Depth())});
    std::fflush(stdout);
  }
  std::printf("\n(wall time stays near-linear in |E|; the paper's largest "
              "graphs are of this order)\n");
}

}  // namespace
}  // namespace dvicl

int main() {
  dvicl::Run();
  return 0;
}
