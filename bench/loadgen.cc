// Load generator for the canonicalization service (DESIGN.md §11, §15).
//
// Replays a dataset-generator family mix against a running dvicl_server at
// a target QPS and reports latency/throughput/cache numbers into
// BENCH_loadgen.json:
//
//   ./dvicl_server --port=0 &          # prints the bound port
//   ./loadgen --connect=127.0.0.1:PORT --qps=200 --duration-seconds=10
//
// Flags:
//   --connect=HOST:P1[,P2,...]  server endpoints; several ports = a
//                         supervised worker fleet, spread round-robin over
//                         the connections with failover (default
//                         127.0.0.1:7411)
//   --qps=N               target aggregate request rate (default 200)
//   --duration-seconds=S  measurement window (default 10)
//   --connections=N       independent client connections, each with its own
//                         pacing share of the target QPS (default 4)
//   --mix=NAME            request mix: "gadget-forest" (default; all request
//                         classes over gadget-forest instances — the
//                         cache-friendly family) or "families" (elementary +
//                         hard families, canonical-form heavy)
//   --seed=N              mix sampling seed (default 42)
//
// Robustness (the client half of DESIGN.md §15; all requests are
// idempotent, so re-sending after a lost connection or reply is safe):
//   --retries=N           extra attempts per request beyond the first
//                         (default 0 = fail fast like the pre-supervision
//                         loadgen)
//   --io-deadline-ms=N    per-attempt I/O deadline (default 10000)
//   --verify=0|1          byte-verify every OK reply against a local
//                         in-process reference Server answering the same
//                         request (default 0). Any divergence counts in
//                         incorrect_replies — the chaos gate's signal that
//                         a crash corrupted state.
//   --min-availability=F  exit 0 only if ok_calls/attempted >= F and no
//                         incorrect replies (default 1.0; chaos runs relax
//                         it to the availability SLO)
//
// Offline mode (no server involved):
//   --emit-requests=FILE  write a deterministic framed request stream
//                         sampled from --mix/--seed to FILE and exit; the
//                         stream is what scripts/check_serving_obs_overhead.sh
//                         replays through `dvicl_server --stdio`
//   --requests=N          number of requests to emit (default 256)
//
// Pacing is open-loop per connection: send times are scheduled on a fixed
// grid and a slow server makes latencies grow rather than silently lowering
// the offered rate (saturation shows up in p99, not in a shrunk QPS).
// Cache effectiveness is measured server-side: kServerStats snapshots
// before and after the run (summed across the fleet) yield the hit/miss
// delta attributable to it. With a single endpoint, a kServerMetrics
// snapshot additionally cross-checks server-side per-class latency
// percentiles against the client-side ones.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/wire.h"
#include "datasets/generators.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace {

using dvicl::GadgetForestGraph;
using dvicl::Graph;
using dvicl::Rng;
using dvicl::VertexId;
using dvicl::server::Client;
using dvicl::server::Endpoint;
using dvicl::server::ParseEndpoints;
using dvicl::server::Reply;
using dvicl::server::Request;
using dvicl::server::RequestClass;
using dvicl::server::RequestClassName;
using dvicl::server::RetryOptions;
using dvicl::server::RobustClient;
using dvicl::server::Server;

struct Sample {
  RequestClass cls;
  dvicl::wire::WireStatus status;
  double latency_ms;
};

// A weighted template pool: the sampler draws uniformly, so a template
// repeated k times has weight k. Graphs are built once up front — the
// generator cost must not leak into request latencies.
std::vector<Request> BuildMix(const std::string& name) {
  std::vector<Request> pool;
  auto canonical = [&pool](Graph graph) {
    Request request;
    request.cls = RequestClass::kCanonicalForm;
    request.graph = std::move(graph);
    pool.push_back(std::move(request));
  };
  auto with_class = [&pool](Graph graph, RequestClass cls) {
    Request request;
    request.cls = cls;
    request.graph = std::move(graph);
    pool.push_back(std::move(request));
  };
  if (name == "gadget-forest") {
    // Canonical-form heavy over several forest shapes; every copy of a
    // forest lowers to the same leaf subproblem, so the shared server cache
    // should convert most leaf searches into verified hits.
    for (uint32_t copies : {2u, 3u, 4u, 5u}) {
      for (uint32_t rungs : {3u, 4u}) {
        canonical(GadgetForestGraph(copies, rungs));
      }
    }
    for (uint32_t copies : {2u, 3u, 4u}) {
      with_class(GadgetForestGraph(copies, 3), RequestClass::kAutOrder);
      with_class(GadgetForestGraph(copies, 4), RequestClass::kOrbits);
    }
    {
      Request iso;
      iso.cls = RequestClass::kIsoTest;
      iso.graph = GadgetForestGraph(3, 3);
      iso.graph2 = GadgetForestGraph(3, 3);
      pool.push_back(std::move(iso));
    }
    {
      Request ssm;
      ssm.cls = RequestClass::kSsmCount;
      ssm.graph = GadgetForestGraph(4, 3);
      const VertexId n = ssm.graph.NumVertices();
      for (VertexId v = 0; v < std::min<VertexId>(6, n); ++v) {
        ssm.query.push_back(v);
      }
      pool.push_back(std::move(ssm));
    }
  } else if (name == "families") {
    canonical(dvicl::CycleGraph(64));
    canonical(dvicl::CompleteBipartiteGraph(8, 8));
    canonical(dvicl::RandomTreeGraph(96, 7));
    canonical(dvicl::Torus3dGraph(4));
    canonical(dvicl::CfiGraph(10, false));
    canonical(dvicl::MiyazakiLikeGraph(6));
    with_class(dvicl::StarGraph(48), RequestClass::kAutOrder);
    with_class(dvicl::CompleteGraph(12), RequestClass::kOrbits);
    {
      Request iso;
      iso.cls = RequestClass::kIsoTest;
      iso.graph = dvicl::CfiGraph(10, false);
      iso.graph2 = dvicl::CfiGraph(10, true);  // 1-WL-equivalent, non-iso
      pool.push_back(std::move(iso));
    }
  } else {
    std::fprintf(stderr, "loadgen: unknown --mix=%s\n", name.c_str());
    std::exit(2);
  }
  return pool;
}

// kServerStats via a retrying client (the fleet may be mid-restart when a
// snapshot is taken); empty map on total failure.
std::map<std::string, uint64_t> StatsSnapshot(const Endpoint& endpoint,
                                              uint64_t id) {
  RetryOptions options;
  options.max_attempts = 3;
  options.io_deadline_ms = 2000;
  RobustClient client({endpoint}, options);
  Request request;
  request.id = id;
  request.cls = RequestClass::kServerStats;
  auto result = client.Call(request);
  std::map<std::string, uint64_t> stats;
  if (result.ok() && result.value().ok()) {
    for (const auto& [name, value] : result.value().stats) {
      stats[name] = value;
    }
  } else {
    std::fprintf(stderr, "loadgen: stats call to %s:%u failed: %s\n",
                 endpoint.host.c_str(), endpoint.port,
                 result.ok() ? result.value().detail.c_str()
                             : result.status().ToString().c_str());
  }
  return stats;
}

// Fleet-wide counters: the per-worker snapshots summed key-wise.
std::map<std::string, uint64_t> SumStats(
    const std::vector<Endpoint>& endpoints, uint64_t id) {
  std::map<std::string, uint64_t> total;
  for (const Endpoint& endpoint : endpoints) {
    for (const auto& [name, value] : StatsSnapshot(endpoint, id)) {
      total[name] += value;
    }
  }
  return total;
}

// Flattened (name -> value) view of a kServerMetrics reply; histogram
// percentiles arrive as "<histogram>.p50" / ".p90" / ".p99" in microseconds.
std::map<std::string, uint64_t> MetricsSnapshot(const Endpoint& endpoint,
                                                uint64_t id) {
  std::map<std::string, uint64_t> metrics;
  auto connected = Client::ConnectTcp(endpoint.host, endpoint.port);
  if (!connected.ok()) return metrics;
  Client client = std::move(connected).value();
  client.set_deadline_ms(5000);
  auto result = client.FetchMetrics(id);
  if (result.ok() && result.value().ok()) {
    for (const auto& [name, value] : result.value().stats) {
      metrics[name] = value;
    }
  }
  return metrics;
}

// Writes `count` framed requests sampled from `pool` to `path`. The stream
// is byte-for-byte deterministic for a fixed (mix, seed, count), which is
// what makes the obs-overhead comparison replay identical work.
int EmitRequests(const std::vector<Request>& pool, uint64_t seed,
                 uint64_t count, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "loadgen: cannot open %s\n", path.c_str());
    return 1;
  }
  Rng rng(seed);
  std::string payload;
  std::string frame;
  for (uint64_t i = 0; i < count; ++i) {
    Request request = pool[rng.NextBounded(pool.size())];
    request.id = i + 1;
    payload.clear();
    EncodeRequest(request, &payload);
    frame.clear();
    dvicl::wire::AppendFrame(payload, &frame);
    if (std::fwrite(frame.data(), 1, frame.size(), file) != frame.size()) {
      std::fprintf(stderr, "loadgen: short write to %s\n", path.c_str());
      std::fclose(file);
      return 1;
    }
  }
  std::fclose(file);
  std::printf("loadgen: emitted %llu framed requests to %s\n",
              static_cast<unsigned long long>(count), path.c_str());
  return 0;
}

// Reply bytes with the echo'd request id zeroed: the request-independent
// part every worker (and the local reference) must agree on byte-for-byte.
std::string CanonicalReplyBytes(Reply reply) {
  reply.id = 0;
  std::string encoded;
  EncodeReply(reply, &encoded);
  return encoded;
}

double Percentile(std::vector<double>* sorted_in_place, double p) {
  if (sorted_in_place->empty()) return 0.0;
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const double rank = p * static_cast<double>(sorted_in_place->size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_in_place->size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return (*sorted_in_place)[lo] * (1.0 - frac) +
         (*sorted_in_place)[hi] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  using dvicl::bench::FlagFromArgs;
  const std::string connect = [&] {
    const std::string flag = FlagFromArgs(argc, argv, "--connect");
    return flag.empty() ? std::string("127.0.0.1:7411") : flag;
  }();
  const std::vector<Endpoint> endpoints = ParseEndpoints(connect);
  if (endpoints.empty()) {
    std::fprintf(stderr, "loadgen: --connect must be HOST:P1[,P2,...]\n");
    return 2;
  }

  const std::string qps_flag = FlagFromArgs(argc, argv, "--qps");
  const double qps = qps_flag.empty() ? 200.0 : std::atof(qps_flag.c_str());
  const std::string duration_flag =
      FlagFromArgs(argc, argv, "--duration-seconds");
  const double duration_seconds =
      duration_flag.empty() ? 10.0 : std::atof(duration_flag.c_str());
  const std::string conn_flag = FlagFromArgs(argc, argv, "--connections");
  const unsigned connections =
      conn_flag.empty() ? 4u
                        : std::max(1u, static_cast<unsigned>(
                                           std::atoi(conn_flag.c_str())));
  const std::string mix_flag = FlagFromArgs(argc, argv, "--mix");
  const std::string mix = mix_flag.empty() ? "gadget-forest" : mix_flag;
  const std::string seed_flag = FlagFromArgs(argc, argv, "--seed");
  const uint64_t seed =
      seed_flag.empty() ? 42 : std::strtoull(seed_flag.c_str(), nullptr, 10);
  const std::string retries_flag = FlagFromArgs(argc, argv, "--retries");
  const uint32_t retries =
      retries_flag.empty()
          ? 0
          : static_cast<uint32_t>(std::atoi(retries_flag.c_str()));
  const std::string io_deadline_flag =
      FlagFromArgs(argc, argv, "--io-deadline-ms");
  const uint64_t io_deadline_ms =
      io_deadline_flag.empty()
          ? 10'000
          : std::strtoull(io_deadline_flag.c_str(), nullptr, 10);
  const std::string verify_flag = FlagFromArgs(argc, argv, "--verify");
  const bool verify = !verify_flag.empty() && std::atoi(verify_flag.c_str());
  const std::string min_avail_flag =
      FlagFromArgs(argc, argv, "--min-availability");
  const double min_availability =
      min_avail_flag.empty() ? 1.0 : std::atof(min_avail_flag.c_str());

  const std::vector<Request> pool = BuildMix(mix);

  const std::string emit_flag = FlagFromArgs(argc, argv, "--emit-requests");
  if (!emit_flag.empty()) {
    const std::string count_flag = FlagFromArgs(argc, argv, "--requests");
    const uint64_t count =
        count_flag.empty() ? 256
                           : std::strtoull(count_flag.c_str(), nullptr, 10);
    return EmitRequests(pool, seed, count, emit_flag);
  }

  // Reference replies for --verify: a local in-process Server answers every
  // template once; replies are deterministic (same engine, same defaults),
  // so any OK reply from the fleet must match byte-for-byte.
  std::vector<std::string> reference;
  if (verify) {
    Server local{dvicl::server::ServerOptions{}};
    reference.reserve(pool.size());
    for (const Request& request : pool) {
      reference.push_back(CanonicalReplyBytes(local.Handle(request)));
    }
  }

  const auto stats_before = SumStats(endpoints, 1);

  std::mutex merge_mu;
  std::vector<Sample> samples;
  uint64_t failed_calls = 0;       // transport failure after every retry
  uint64_t incorrect_replies = 0;  // wrong id or reference-bytes mismatch
  uint64_t total_retries = 0;
  uint64_t total_reconnects = 0;

  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration<double>(duration_seconds);
  const double per_connection_qps = qps / static_cast<double>(connections);
  const auto interval =
      std::chrono::duration<double>(1.0 / per_connection_qps);

  std::vector<std::thread> workers;
  workers.reserve(connections);
  for (unsigned c = 0; c < connections; ++c) {
    workers.emplace_back([&, c] {
      // Spread primary endpoints round-robin over the connections; each
      // client still fails over through the whole fleet.
      std::vector<Endpoint> rotated(endpoints);
      std::rotate(rotated.begin(),
                  rotated.begin() + (c % rotated.size()), rotated.end());
      RetryOptions retry_options;
      retry_options.max_attempts = 1 + retries;
      retry_options.io_deadline_ms = io_deadline_ms;
      retry_options.seed = seed * 1000 + c;
      RobustClient client(std::move(rotated), retry_options);
      Rng rng(seed + c);
      std::vector<Sample> local;
      uint64_t local_failed = 0;
      uint64_t local_incorrect = 0;
      uint64_t k = 0;
      for (;;) {
        const auto scheduled =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        interval * static_cast<double>(k));
        if (scheduled >= deadline) break;
        std::this_thread::sleep_until(scheduled);
        const size_t template_index = rng.NextBounded(pool.size());
        Request request = pool[template_index];
        request.id = static_cast<uint64_t>(c) * 1000000000ull + (++k);
        const auto sent = std::chrono::steady_clock::now();
        auto reply = client.Call(request);
        const auto received = std::chrono::steady_clock::now();
        if (!reply.ok()) {
          ++local_failed;
          continue;
        }
        if (reply.value().id != request.id) {
          ++local_incorrect;
          continue;
        }
        if (verify && reply.value().status == dvicl::wire::WireStatus::kOk &&
            CanonicalReplyBytes(reply.value()) !=
                reference[template_index]) {
          ++local_incorrect;
          continue;
        }
        local.push_back(
            {request.cls, reply.value().status,
             std::chrono::duration<double, std::milli>(received - sent)
                 .count()});
      }
      std::lock_guard<std::mutex> lock(merge_mu);
      samples.insert(samples.end(), local.begin(), local.end());
      failed_calls += local_failed;
      incorrect_replies += local_incorrect;
      total_retries += client.stats().retries;
      total_reconnects += client.stats().reconnects;
    });
  }
  for (std::thread& t : workers) t.join();
  const double elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const auto stats_after = SumStats(endpoints, 2);
  const auto metrics_after =
      endpoints.size() == 1 ? MetricsSnapshot(endpoints[0], 3)
                            : std::map<std::string, uint64_t>{};
  auto delta = [&](const char* key) -> uint64_t {
    const auto before = stats_before.find(key);
    const auto after = stats_after.find(key);
    if (after == stats_after.end()) return 0;
    const uint64_t b =
        before != stats_before.end() ? before->second : 0;
    // A worker restart zeroes its counters mid-run; clamp instead of
    // underflowing.
    return after->second >= b ? after->second - b : 0;
  };
  const uint64_t cache_hits = delta("cache.hits");
  const uint64_t cache_misses = delta("cache.misses");
  const double cache_hit_rate =
      cache_hits + cache_misses > 0
          ? static_cast<double>(cache_hits) /
                static_cast<double>(cache_hits + cache_misses)
          : 0.0;

  dvicl::bench::BenchReporter reporter("loadgen", argc, argv);

  std::vector<double> all_latencies;
  uint64_t ok_replies = 0;
  uint64_t error_replies = 0;
  for (const Sample& sample : samples) {
    all_latencies.push_back(sample.latency_ms);
    if (sample.status == dvicl::wire::WireStatus::kOk) {
      ++ok_replies;
    } else {
      ++error_replies;
    }
  }
  const uint64_t attempted_calls =
      static_cast<uint64_t>(samples.size()) + failed_calls +
      incorrect_replies;
  // Post-retry availability: the fraction of calls that came back with a
  // well-formed reply (OK or a structured error — both are answers).
  const double availability =
      attempted_calls > 0
          ? static_cast<double>(samples.size()) /
                static_cast<double>(attempted_calls)
          : 0.0;
  const double p50 = Percentile(&all_latencies, 0.50);
  const double p90 = Percentile(&all_latencies, 0.90);
  const double p99 = Percentile(&all_latencies, 0.99);
  const double achieved_qps =
      elapsed_seconds > 0
          ? static_cast<double>(samples.size()) / elapsed_seconds
          : 0.0;

  reporter.BeginRecord();
  reporter.Field("record", "summary");
  reporter.Field("mix", mix);
  reporter.Field("endpoints", static_cast<uint64_t>(endpoints.size()));
  reporter.Field("target_qps", qps);
  reporter.Field("achieved_qps", achieved_qps);
  reporter.Field("duration_seconds", elapsed_seconds);
  reporter.Field("connections", static_cast<uint64_t>(connections));
  reporter.Field("requests", static_cast<uint64_t>(samples.size()));
  reporter.Field("attempted_calls", attempted_calls);
  reporter.Field("ok_replies", ok_replies);
  reporter.Field("error_replies", error_replies);
  reporter.Field("failed_calls", failed_calls);
  reporter.Field("incorrect_replies", incorrect_replies);
  reporter.Field("verified", verify);
  reporter.Field("availability", availability);
  reporter.Field("retries", total_retries);
  reporter.Field("reconnects", total_reconnects);
  reporter.Field("p50_ms", p50);
  reporter.Field("p90_ms", p90);
  reporter.Field("p99_ms", p99);
  reporter.Field("cache_hits", cache_hits);
  reporter.Field("cache_misses", cache_misses);
  reporter.Field("cache_hit_rate", cache_hit_rate);
  reporter.EndRecord();

  for (uint8_t cls = 0; cls < dvicl::server::kNumRequestClasses; ++cls) {
    std::vector<double> latencies;
    uint64_t count = 0;
    uint64_t ok = 0;
    for (const Sample& sample : samples) {
      if (static_cast<uint8_t>(sample.cls) != cls) continue;
      ++count;
      if (sample.status == dvicl::wire::WireStatus::kOk) ++ok;
      latencies.push_back(sample.latency_ms);
    }
    if (count == 0) continue;
    const char* cls_name = RequestClassName(static_cast<RequestClass>(cls));
    const double cls_p50 = Percentile(&latencies, 0.50);
    const double cls_p90 = Percentile(&latencies, 0.90);
    const double cls_p99 = Percentile(&latencies, 0.99);
    reporter.BeginRecord();
    reporter.Field("record", "class");
    reporter.Field("class", cls_name);
    reporter.Field("requests", count);
    reporter.Field("ok_replies", ok);
    reporter.Field("p50_ms", cls_p50);
    reporter.Field("p90_ms", cls_p90);
    reporter.Field("p99_ms", cls_p99);
    reporter.EndRecord();

    // Cross-check the client-observed tail against the server's own
    // per-class total-latency histogram (fetched via kServerMetrics; single
    // endpoint only — a fleet's histograms live in different processes).
    // The server estimates percentiles from log2 buckets, which can
    // overshoot the true value by up to 2x, and the client latency
    // additionally includes framing and socket time the server never sees
    // — so the check is one-sided: the server's p99 estimate must not
    // exceed 2 x client p99 plus slack. A violation means the two
    // pipelines are not measuring the same requests.
    const std::string prefix = std::string("server.total_us.") + cls_name;
    const auto server_count = metrics_after.find(prefix + ".count");
    const auto server_p50 = metrics_after.find(prefix + ".p50");
    const auto server_p90 = metrics_after.find(prefix + ".p90");
    const auto server_p99 = metrics_after.find(prefix + ".p99");
    if (server_count == metrics_after.end() ||
        server_p99 == metrics_after.end()) {
      continue;  // server running with --request-obs=0, or a fleet
    }
    const double server_p99_ms =
        static_cast<double>(server_p99->second) / 1000.0;
    const bool consistent = server_p99_ms <= 2.0 * cls_p99 + 5.0;
    reporter.BeginRecord();
    reporter.Field("record", "crosscheck");
    reporter.Field("class", cls_name);
    reporter.Field("client_requests", count);
    reporter.Field("server_count", server_count->second);
    reporter.Field("client_p99_ms", cls_p99);
    reporter.Field("server_p50_ms",
                   server_p50 != metrics_after.end()
                       ? static_cast<double>(server_p50->second) / 1000.0
                       : 0.0);
    reporter.Field("server_p90_ms",
                   server_p90 != metrics_after.end()
                       ? static_cast<double>(server_p90->second) / 1000.0
                       : 0.0);
    reporter.Field("server_p99_ms", server_p99_ms);
    reporter.Field("p99_consistent", consistent);
    reporter.EndRecord();
  }
  reporter.Finish();

  std::printf(
      "loadgen: mix=%s %zu requests in %.1fs (target %.0f qps, achieved "
      "%.1f), p50 %.2fms p99 %.2fms, %llu errors, %llu failed, %llu "
      "incorrect, availability %.4f, %llu retries, cache hit rate %.1f%%\n",
      mix.c_str(), samples.size(), elapsed_seconds, qps, achieved_qps, p50,
      p99, static_cast<unsigned long long>(error_replies),
      static_cast<unsigned long long>(failed_calls),
      static_cast<unsigned long long>(incorrect_replies),
      availability, static_cast<unsigned long long>(total_retries),
      100.0 * cache_hit_rate);
  if (samples.empty() || incorrect_replies != 0) return 1;
  return availability >= min_availability ? 0 : 1;
}
