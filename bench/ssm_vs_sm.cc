// Reproduces the qualitative claims of paper §6.4: SSM via the AutoTree
// (SSM-AT) versus generic subgraph matching (SM). SM "will find much more
// candidate matchings than the result" and offers "no guarantee to find all
// symmetric subgraph matchings" without an expensive symmetry check per
// candidate; SSM-AT answers directly from the index.
//
// For each graph: query = a random triangle; columns give the number of
// induced isomorphic copies SM enumerates (capped), the number of truly
// symmetric images SSM-AT reports, and both times.

#include <cstdio>

#include "analysis/triangles.h"
#include "bench_util.h"
#include "common/stopwatch.h"
#include "datasets/real_suite.h"
#include "dvicl/dvicl.h"
#include "ssm/ssm_at.h"
#include "ssm/subgraph_match.h"

namespace dvicl {
namespace {

constexpr size_t kSmCap = 100000;

void Run() {
  std::printf("SSM-AT vs generic subgraph matching (paper §6.4; scale=%.2f, "
              "SM capped at %zu candidates)\n\n",
              bench::ScaleFromEnv(), kSmCap);
  bench::TablePrinter table({14, 12, 12, 14, 12});
  table.Row({"Graph", "SM-matches", "SM-time", "SSM-AT-images",
             "SSM-AT-time"});
  table.Rule();

  auto suite = RealSuite(bench::ScaleFromEnv());
  for (size_t i = 0; i < suite.size(); i += 2) {
    const Graph& g = suite[i].graph;
    auto triangles = EnumerateTriangles(g, 1);
    if (triangles.empty()) {
      table.Row({suite[i].name, "no-triangle", "-", "-", "-"});
      continue;
    }
    const std::vector<VertexId>& query = triangles.front();

    Stopwatch sm_watch;
    auto matches = FindInducedSubgraphs(g, query, kSmCap);
    const double sm_time = sm_watch.ElapsedSeconds();

    DviclResult result =
        DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
    SsmIndex index(g, result);
    Stopwatch at_watch;
    BigUint count = index.CountSymmetricImages(query);
    const double at_time = at_watch.ElapsedSeconds();

    std::string sm_text = std::to_string(matches.size());
    if (matches.size() >= kSmCap) sm_text += "+";
    table.Row({suite[i].name, sm_text, bench::FormatDouble(sm_time, 3),
               count.ToCompactString(), bench::FormatDouble(at_time, 4)});
    std::fflush(stdout);
  }
  std::printf("\nSM enumerates every isomorphic copy — symmetric or not — "
              "and each would still need a symmetry verification; SSM-AT "
              "reads the answer off the AutoTree.\n");
}

}  // namespace
}  // namespace dvicl

int main() {
  dvicl::Run();
  return 0;
}
