// Reproduces paper Table 1: summary of the real-graph suite — vertex and
// edge counts, max/average degree, and the number of cells / singleton
// cells of the ORBIT coloring (each cell = one Aut(G) orbit).

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "datasets/real_suite.h"
#include "dvicl/dvicl.h"

namespace dvicl {
namespace {

void Run(int argc, char** argv) {
  bench::BenchReporter reporter("table1_real_graphs", argc, argv);
  std::printf("Table 1: Summarization of real graphs (synthetic analogues, "
              "scale=%.2f)\n\n",
              bench::ScaleFromEnv());
  bench::TablePrinter table({14, 10, 12, 8, 8, 10, 10});
  table.Row({"Graph", "|V|", "|E|", "dmax", "davg", "cells", "singleton"});
  table.Rule();

  for (const NamedGraph& entry : RealSuite(bench::ScaleFromEnv())) {
    const Graph& g = entry.graph;
    DviclResult result = DviclCanonicalLabeling(
        g, Coloring::Unit(g.NumVertices()), reporter.Options());
    uint64_t cells = 0;
    uint64_t singleton = 0;
    if (result.completed()) {
      const auto orbit =
          OrbitIdsFromGenerators(g.NumVertices(), result.generators);
      std::vector<uint64_t> size(g.NumVertices(), 0);
      for (VertexId v = 0; v < g.NumVertices(); ++v) ++size[orbit[v]];
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        if (size[v] > 0) {
          ++cells;
          singleton += (size[v] == 1) ? 1 : 0;
        }
      }
    }
    reporter.BeginRecord();
    reporter.Field("graph", entry.name);
    reporter.Field("n", static_cast<uint64_t>(g.NumVertices()));
    reporter.Field("m", static_cast<uint64_t>(g.NumEdges()));
    reporter.Field("max_degree", static_cast<uint64_t>(g.MaxDegree()));
    reporter.Field("avg_degree", g.AverageDegree());
    reporter.Field("orbit_cells", cells);
    reporter.Field("orbit_singletons", singleton);
    reporter.OutcomeFields(result.outcome);
    reporter.StatsFields(result.stats);
    reporter.EndRecord();

    table.Row({entry.name, std::to_string(g.NumVertices()),
               std::to_string(g.NumEdges()), std::to_string(g.MaxDegree()),
               bench::FormatDouble(g.AverageDegree()), std::to_string(cells),
               std::to_string(singleton)});
  }
}

}  // namespace
}  // namespace dvicl

int main(int argc, char** argv) {
  dvicl::Run(argc, argv);
  return 0;
}
