// Reproduces paper Table 3: the structure of the AutoTrees built for the
// real-graph suite — total nodes, singleton leaves, non-singleton leaves,
// average non-singleton leaf size, and tree depth.

#include <cstdio>

#include "bench_util.h"
#include "datasets/real_suite.h"
#include "dvicl/dvicl.h"

namespace dvicl {
namespace {

void Run() {
  std::printf("Table 3: The structure of AutoTrees of real graphs "
              "(scale=%.2f)\n\n",
              bench::ScaleFromEnv());
  bench::TablePrinter table({14, 12, 12, 14, 10, 8});
  table.Row({"Graph", "|V(AT)|", "singleton", "non-singleton", "avg size",
             "depth"});
  table.Rule();

  for (const NamedGraph& entry : RealSuite(bench::ScaleFromEnv())) {
    const Graph& g = entry.graph;
    DviclResult result =
        DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
    if (!result.completed) {
      table.Row({entry.name, "-", "-", "-", "-", "-"});
      continue;
    }
    table.Row({entry.name, std::to_string(result.tree.NumNodes()),
               std::to_string(result.tree.NumSingletonLeaves()),
               std::to_string(result.tree.NumNonSingletonLeaves()),
               bench::FormatDouble(result.tree.AverageNonSingletonLeafSize()),
               std::to_string(result.tree.Depth())});
  }
}

}  // namespace
}  // namespace dvicl

int main() {
  dvicl::Run();
  return 0;
}
