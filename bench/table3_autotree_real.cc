// Reproduces paper Table 3: the structure of the AutoTrees built for the
// real-graph suite — total nodes, singleton leaves, non-singleton leaves,
// average non-singleton leaf size, and tree depth. The JSON records also
// carry the per-node timing breakdown (total attributed step seconds and
// the slowest node) from AutoTree::TotalStepSeconds/SlowestNodes.

#include <cstdio>

#include "bench_util.h"
#include "datasets/real_suite.h"
#include "dvicl/dvicl.h"

namespace dvicl {
namespace {

void Run(int argc, char** argv) {
  bench::BenchReporter reporter("table3_autotree_real", argc, argv);
  std::printf("Table 3: The structure of AutoTrees of real graphs "
              "(scale=%.2f)\n\n",
              bench::ScaleFromEnv());
  bench::TablePrinter table({14, 12, 12, 14, 10, 8});
  table.Row({"Graph", "|V(AT)|", "singleton", "non-singleton", "avg size",
             "depth"});
  table.Rule();

  for (const NamedGraph& entry : RealSuite(bench::ScaleFromEnv())) {
    const Graph& g = entry.graph;
    DviclResult result = DviclCanonicalLabeling(
        g, Coloring::Unit(g.NumVertices()), reporter.Options());
    reporter.BeginRecord();
    reporter.Field("graph", entry.name);
    reporter.Field("n", static_cast<uint64_t>(g.NumVertices()));
    reporter.Field("m", static_cast<uint64_t>(g.NumEdges()));
    reporter.OutcomeFields(result.outcome);
    if (result.completed()) {
      reporter.Field("avg_nonsingleton_leaf_size",
                     result.tree.AverageNonSingletonLeafSize());
      reporter.Field("node_step_seconds", result.tree.TotalStepSeconds());
      const auto slowest = result.tree.SlowestNodes(1);
      if (!slowest.empty()) {
        reporter.Field("slowest_node", static_cast<uint64_t>(slowest[0]));
      }
    }
    reporter.StatsFields(result.stats);
    reporter.EndRecord();
    if (!result.completed()) {
      table.Row({entry.name, "-", "-", "-", "-", "-"});
      continue;
    }
    table.Row({entry.name, std::to_string(result.tree.NumNodes()),
               std::to_string(result.tree.NumSingletonLeaves()),
               std::to_string(result.tree.NumNonSingletonLeaves()),
               bench::FormatDouble(result.tree.AverageNonSingletonLeafSize()),
               std::to_string(result.tree.Depth())});
  }
}

}  // namespace
}  // namespace dvicl

int main(int argc, char** argv) {
  dvicl::Run(argc, argv);
  return 0;
}
