// Scaling sweep (figure-style series, not a paper table): DviCL+b vs the
// bliss-like baseline as graph size grows, on twin-rich social graphs.
// Prints one series per algorithm suitable for plotting time-vs-n; the
// paper's Table 5 discussion predicts DviCL stays near-linear while the
// baseline's search tree blows up past small sizes.
//
// `--threads=N` (or DVICL_THREADS) runs DviCL with a parallel AutoTree
// build. The second section sweeps a component forest — a disjoint union of
// Miyazaki-like gadget graphs, which the divide step splits into many
// independent sibling subtrees — the shape where extra threads pay off
// most. `--cert-cache` additionally enables the canonical-form cache, which
// collapses the forest's identical leaf subproblems into one IR search
// (see bench/ablation_dvicl.cc for the dedicated off-vs-on comparison).
//
// `--trace=out.json` records a Chrome trace of the whole sweep (root
// refinement, divide/combine spans, leaf IR searches, task-pool
// spawn/steal/run events across worker threads); `--metrics=out.json`
// dumps the aggregated counters. Results also land in
// BENCH_scaling_sweep.json. `--forest-only` runs just the gadget-forest
// section — the deterministic workload the failpoint-overhead CI check
// times (scripts/check_failpoint_overhead.sh).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "datasets/generators.h"
#include "dvicl/dvicl.h"
#include "ir/ir_canonical.h"

namespace dvicl {
namespace {

Graph SocialGraph(VertexId n) {
  Graph g = PreferentialAttachmentGraph(n, 5, 4242);
  g = WithTwins(g, 0.08, 4243);
  return WithPendantPaths(g, 0.05, 3, 4244);
}

void SweepSocial(bench::BenchReporter& reporter, double budget) {
  const unsigned threads = reporter.Threads();
  std::printf("Scaling sweep: social-like graphs, DviCL+b vs bliss-like "
              "baseline (budget %.1fs per point, threads=%u)\n\n",
              budget, threads);
  bench::TablePrinter table({10, 12, 14, 14, 12});
  table.Row({"n", "|E|", "bliss-like(s)", "DviCL+b(s)", "speedup"});
  table.Rule();

  for (VertexId n : {500u, 1000u, 2000u, 4000u, 8000u, 16000u, 32000u}) {
    Graph g = SocialGraph(n);

    IrOptions ir_options;
    ir_options.preset = IrPreset::kBlissLike;
    ir_options.time_limit_seconds = budget;
    ir_options.trace = reporter.Trace();
    Stopwatch w1;
    IrResult ir =
        IrCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), ir_options);
    const double t_ir = w1.ElapsedSeconds();

    DviclOptions dv_options = reporter.Options();
    dv_options.leaf_backend = IrPreset::kBlissLike;
    dv_options.time_limit_seconds = budget;
    Stopwatch w2;
    DviclResult dv =
        DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), dv_options);
    const double t_dv = w2.ElapsedSeconds();

    reporter.BeginRecord();
    reporter.Field("series", "social");
    reporter.Field("n", static_cast<uint64_t>(g.NumVertices()));
    reporter.Field("m", static_cast<uint64_t>(g.NumEdges()));
    reporter.Field("ir_completed", ir.completed());
    reporter.Field("ir_outcome", RunOutcomeName(ir.outcome));
    reporter.Field("ir_wall_seconds", t_ir);
    reporter.Field("dvicl_completed", dv.completed());
    reporter.Field("dvicl_outcome", RunOutcomeName(dv.outcome));
    reporter.StatsFields(dv.stats);
    reporter.EndRecord();

    std::string speedup = "-";
    if (ir.completed() && dv.completed() && t_dv > 0) {
      speedup = bench::FormatDouble(t_ir / t_dv, 1) + "x";
    } else if (dv.completed()) {
      speedup = ">" + bench::FormatDouble(budget / t_dv, 0) + "x";
    }
    table.Row({std::to_string(g.NumVertices()),
               std::to_string(g.NumEdges()),
               ir.completed() ? bench::FormatDouble(t_ir, 3) : "-",
               dv.completed() ? bench::FormatDouble(t_dv, 3) : "-", speedup});
    std::fflush(stdout);
  }
}

void SweepForest(bench::BenchReporter& reporter, double budget) {
  const unsigned threads = reporter.Threads();
  std::printf("\nThread scaling: gadget forests (disjoint Miyazaki-like "
              "components), DviCL+b at 1 vs %u thread(s)\n\n",
              threads);
  bench::TablePrinter table({10, 10, 12, 16, 16, 12});
  table.Row({"copies", "n", "|E|", "DviCL 1t (s)", "DviCL Nt (s)", "speedup"});
  table.Rule();

  for (uint32_t copies : {8u, 16u, 32u, 64u}) {
    Graph g = GadgetForestGraph(copies, 12);

    DviclOptions options = reporter.Options();
    options.leaf_backend = IrPreset::kBlissLike;
    options.time_limit_seconds = budget;

    options.num_threads = 1;
    Stopwatch w1;
    DviclResult seq =
        DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), options);
    const double t_seq = w1.ElapsedSeconds();

    options.num_threads = threads;
    Stopwatch w2;
    DviclResult par =
        DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), options);
    const double t_par = w2.ElapsedSeconds();

    reporter.BeginRecord();
    reporter.Field("series", "forest");
    reporter.Field("copies", static_cast<uint64_t>(copies));
    reporter.Field("n", static_cast<uint64_t>(g.NumVertices()));
    reporter.Field("m", static_cast<uint64_t>(g.NumEdges()));
    reporter.Field("seq_completed", seq.completed());
    reporter.Field("seq_outcome", RunOutcomeName(seq.outcome));
    reporter.Field("seq_wall_seconds", t_seq);
    reporter.Field("par_completed", par.completed());
    reporter.Field("par_outcome", RunOutcomeName(par.outcome));
    reporter.StatsFields(par.stats);
    reporter.EndRecord();

    std::string speedup = "-";
    if (seq.completed() && par.completed() && t_par > 0) {
      speedup = bench::FormatDouble(t_seq / t_par, 2) + "x";
    }
    table.Row({std::to_string(copies), std::to_string(g.NumVertices()),
               std::to_string(g.NumEdges()),
               seq.completed() ? bench::FormatDouble(t_seq, 3) : "-",
               par.completed() ? bench::FormatDouble(t_par, 3) : "-", speedup});
    std::fflush(stdout);
  }
}

void Run(int argc, char** argv) {
  bench::BenchReporter reporter("scaling_sweep", argc, argv);
  const double budget = reporter.TimeLimitSeconds();
  // `--forest-only` skips the social-graph series and always runs the
  // gadget-forest section (even single-threaded): the forest is the fixed,
  // fast-completing workload scripts/check_failpoint_overhead.sh times.
  const bool forest_only =
      bench::BareFlagFromArgs(argc, argv, "--forest-only");
  if (!forest_only) SweepSocial(reporter, budget);
  if (forest_only || reporter.Threads() != 1) SweepForest(reporter, budget);
}

}  // namespace
}  // namespace dvicl

int main(int argc, char** argv) {
  dvicl::Run(argc, argv);
  return 0;
}
