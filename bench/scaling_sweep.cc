// Scaling sweep (figure-style series, not a paper table): DviCL+b vs the
// bliss-like baseline as graph size grows, on twin-rich social graphs.
// Prints one series per algorithm suitable for plotting time-vs-n; the
// paper's Table 5 discussion predicts DviCL stays near-linear while the
// baseline's search tree blows up past small sizes.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "datasets/generators.h"
#include "dvicl/dvicl.h"
#include "ir/ir_canonical.h"

namespace dvicl {
namespace {

Graph SocialGraph(VertexId n) {
  Graph g = PreferentialAttachmentGraph(n, 5, 4242);
  g = WithTwins(g, 0.08, 4243);
  return WithPendantPaths(g, 0.05, 3, 4244);
}

void Run() {
  const double budget = bench::TimeLimitFromEnv();
  std::printf("Scaling sweep: social-like graphs, DviCL+b vs bliss-like "
              "baseline (budget %.1fs per point)\n\n",
              budget);
  bench::TablePrinter table({10, 12, 14, 14, 12});
  table.Row({"n", "|E|", "bliss-like(s)", "DviCL+b(s)", "speedup"});
  table.Rule();

  for (VertexId n : {500u, 1000u, 2000u, 4000u, 8000u, 16000u, 32000u}) {
    Graph g = SocialGraph(n);

    IrOptions ir_options;
    ir_options.preset = IrPreset::kBlissLike;
    ir_options.time_limit_seconds = budget;
    Stopwatch w1;
    IrResult ir =
        IrCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), ir_options);
    const double t_ir = w1.ElapsedSeconds();

    DviclOptions dv_options;
    dv_options.leaf_backend = IrPreset::kBlissLike;
    dv_options.time_limit_seconds = budget;
    Stopwatch w2;
    DviclResult dv =
        DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), dv_options);
    const double t_dv = w2.ElapsedSeconds();

    std::string speedup = "-";
    if (ir.completed && dv.completed && t_dv > 0) {
      speedup = bench::FormatDouble(t_ir / t_dv, 1) + "x";
    } else if (dv.completed) {
      speedup = ">" + bench::FormatDouble(budget / t_dv, 0) + "x";
    }
    table.Row({std::to_string(g.NumVertices()),
               std::to_string(g.NumEdges()),
               ir.completed ? bench::FormatDouble(t_ir, 3) : "-",
               dv.completed ? bench::FormatDouble(t_dv, 3) : "-", speedup});
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace dvicl

int main() {
  dvicl::Run();
  return 0;
}
