// Network symmetry measurement over the real-graph suite (paper §1
// applications (b)/(c), after [24]/[37]): exact |Aut(G)|, orbit statistics,
// the fraction of vertices with automorphic counterparts, structure
// entropy and quotient compression. MacArthur et al.'s finding — real
// networks are richly symmetric, with |Aut| astronomically large but
// concentrated in small local structures — is what the suite must (and
// does) reproduce.

#include <cstdio>

#include "analysis/symmetry_profile.h"
#include "bench_util.h"
#include "datasets/real_suite.h"

namespace dvicl {
namespace {

void Run() {
  std::printf("Symmetry profile of the real-graph suite (scale=%.2f)\n\n",
              bench::ScaleFromEnv());
  bench::TablePrinter table({14, 14, 10, 10, 10, 10, 10});
  table.Row({"Graph", "|Aut|", "orbits", "max-orb", "sym-frac", "entropy",
             "quot-V%"});
  table.Rule();

  for (const NamedGraph& entry : RealSuite(bench::ScaleFromEnv())) {
    const Graph& g = entry.graph;
    DviclResult result =
        DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
    if (!result.completed()) {
      table.Row({entry.name, "-", "-", "-", "-", "-", "-"});
      continue;
    }
    SymmetryProfile profile = ComputeSymmetryProfile(g, result);
    table.Row({entry.name, profile.aut_order.ToCompactString(),
               std::to_string(profile.num_orbits),
               std::to_string(profile.largest_orbit),
               bench::FormatDouble(profile.symmetric_vertex_fraction, 3),
               bench::FormatDouble(profile.normalized_structure_entropy, 3),
               bench::FormatDouble(100.0 * profile.quotient_vertex_ratio,
                                   1)});
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace dvicl

int main() {
  dvicl::Run();
  return 0;
}
