// Database indexing by canonical labeling (paper §1 application (a)):
// deduplicate a collection of graphs by isomorphism class, the way a
// chemical-compound database assigns certificates. Builds a shuffled
// collection of known families plus random relabelings and shows the index
// recovering the true classes.
//
// Build & run:  ./build/examples/graph_dedup

#include <cstdio>
#include <numeric>

#include "analysis/cert_index.h"
#include "common/rng.h"
#include "datasets/generators.h"
#include "graph/graph_io.h"

using namespace dvicl;

namespace {

Graph Shuffled(const Graph& g, uint64_t seed) {
  Rng rng(seed);
  std::vector<VertexId> image(g.NumVertices());
  std::iota(image.begin(), image.end(), 0);
  rng.Shuffle(&image);
  return g.RelabeledBy(image);
}

}  // namespace

int main() {
  CertificateIndex index;

  // Insert 6 distinct shapes, each under 5 random relabelings: 30 graphs,
  // 6 isomorphism classes.
  struct Entry {
    const char* name;
    Graph graph;
  };
  const Entry shapes[] = {
      {"C10", CycleGraph(10)},
      {"P10", PathGraph(10)},
      {"K5", CompleteGraph(5)},
      {"K3,3", CompleteBipartiteGraph(3, 3)},
      {"prism", Graph::FromEdges(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5},
                                     {5, 3}, {0, 3}, {1, 4}, {2, 5}})},
      {"torus3", Torus3dGraph(3)},
  };
  int inserted = 0;
  for (const Entry& shape : shapes) {
    for (uint64_t copy = 0; copy < 5; ++copy) {
      char id[64];
      std::snprintf(id, sizeof(id), "%s#%llu", shape.name,
                    static_cast<unsigned long long>(copy));
      index.Insert(id, Shuffled(shape.graph, 31 * copy + 7));
      ++inserted;
    }
  }
  std::printf("inserted %d graphs -> %zu isomorphism classes\n", inserted,
              index.NumClasses());

  // Retrieval: an unseen relabeling of the prism finds all prism entries.
  const auto hits = index.FindIsomorphic(Shuffled(shapes[4].graph, 999));
  std::printf("lookup(shuffled prism) -> %zu hits:", hits.size());
  for (const auto& id : hits) std::printf(" %s", id.c_str());
  std::printf("\n");

  // Certificates travel well: the graph6 line of a graph is enough to
  // re-derive its class.
  const std::string g6 = FormatGraph6(shapes[0].graph);
  Result<Graph> parsed = ParseGraph6(g6);
  std::printf("graph6 of C10 = \"%s\"; lookup -> %zu hits\n", g6.c_str(),
              parsed.ok() ? index.FindIsomorphic(parsed.value()).size() : 0);
  return 0;
}
