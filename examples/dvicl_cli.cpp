// dvicl_cli — one command-line surface over the whole library.
//
//   dvicl_cli stats   <graph>          size/degree/symmetry profile
//   dvicl_cli canon   <graph>          canonical form as a graph6 line
//   dvicl_cli aut     <graph>          Aut generators, orbits, exact order
//   dvicl_cli tree    <graph>          render the AutoTree
//   dvicl_cli quotient <graph>         symmetry quotient as an edge list
//   dvicl_cli iso     <graphA> <graphB>  isomorphism test + witness
//   dvicl_cli ssm     <graph> v1,v2,...  symmetric images of a vertex set
//   dvicl_cli index   save|load <graph|file> <file>  persist the AutoTree
//
// Graph files: edge list (*.edges, default), DIMACS (*.dimacs / *.col), or
// a graph6 line (*.g6).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "analysis/quotient.h"
#include "analysis/symmetry_profile.h"
#include "dvicl/dvicl.h"
#include "dvicl/serialize.h"
#include "graph/graph_io.h"
#include "ssm/ssm_at.h"

using namespace dvicl;

namespace {

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

Result<Graph> LoadGraph(const std::string& path) {
  if (EndsWith(path, ".g6")) {
    std::ifstream in(path);
    if (!in) return Status::IOError("cannot open " + path);
    std::string line;
    std::getline(in, line);
    return ParseGraph6(line);
  }
  if (EndsWith(path, ".dimacs") || EndsWith(path, ".col")) {
    return ReadDimacsFile(path);
  }
  return ReadEdgeListFile(path);
}

Result<DviclResult> Analyze(const Graph& graph) {
  DviclResult result = DviclCanonicalLabeling(
      graph, Coloring::Unit(graph.NumVertices()), {});
  if (!result.completed()) {
    return Status::ResourceExhausted("canonical labeling did not complete");
  }
  return result;
}

int CmdStats(const Graph& graph) {
  Result<DviclResult> result = Analyze(graph);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 2;
  }
  SymmetryProfile profile = ComputeSymmetryProfile(graph, result.value());
  std::printf("vertices           %u\n", graph.NumVertices());
  std::printf("edges              %llu\n",
              static_cast<unsigned long long>(graph.NumEdges()));
  std::printf("max degree         %u\n", graph.MaxDegree());
  std::printf("avg degree         %.2f\n", graph.AverageDegree());
  std::printf("|Aut(G)|           %s\n",
              profile.aut_order.ToCompactString().c_str());
  std::printf("orbits             %llu (%llu singleton, largest %llu)\n",
              static_cast<unsigned long long>(profile.num_orbits),
              static_cast<unsigned long long>(profile.singleton_orbits),
              static_cast<unsigned long long>(profile.largest_orbit));
  std::printf("symmetric vertices %.1f%%\n",
              100.0 * profile.symmetric_vertex_fraction);
  std::printf("structure entropy  %.4f\n",
              profile.normalized_structure_entropy);
  std::printf("quotient size      %.1f%% vertices, %.1f%% edges\n",
              100.0 * profile.quotient_vertex_ratio,
              100.0 * profile.quotient_edge_ratio);
  const AutoTree& tree = result.value().tree;
  std::printf("AutoTree           %u nodes, depth %u, %u IR leaves\n",
              tree.NumNodes(), tree.Depth(), tree.NumNonSingletonLeaves());
  return 0;
}

int CmdCanon(const Graph& graph) {
  Result<DviclResult> result = Analyze(graph);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 2;
  }
  Graph canonical = graph.RelabeledBy(
      result.value().canonical_labeling.ImageArray());
  std::printf("%s\n", FormatGraph6(canonical).c_str());
  return 0;
}

int CmdAut(const Graph& graph) {
  Result<DviclResult> result = Analyze(graph);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 2;
  }
  const DviclResult& r = result.value();
  std::printf("generators (%zu):\n", r.generators.size());
  const size_t show = std::min<size_t>(r.generators.size(), 50);
  for (size_t i = 0; i < show; ++i) {
    std::printf("  %s\n",
                r.generators[i].ToDense(graph.NumVertices())
                    .ToCycleString()
                    .c_str());
  }
  if (show < r.generators.size()) {
    std::printf("  ... (%zu more)\n", r.generators.size() - show);
  }
  std::printf("|Aut(G)| = %s\n",
              AutomorphismOrderFromTree(r.tree).ToDecimalString().c_str());
  return 0;
}

int CmdTree(const Graph& graph) {
  Result<DviclResult> result = Analyze(graph);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 2;
  }
  std::printf("%s", FormatAutoTree(result.value().tree, 500).c_str());
  return 0;
}

int CmdQuotient(const Graph& graph) {
  Result<DviclResult> result = Analyze(graph);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 2;
  }
  const auto orbits = OrbitIdsFromGenerators(graph.NumVertices(),
                                             result.value().generators);
  QuotientGraph quotient = BuildQuotient(graph, orbits);
  std::printf("# quotient of %u vertices -> %u orbits\n",
              graph.NumVertices(), quotient.graph.NumVertices());
  for (const Edge& e : quotient.graph.Edges()) {
    std::printf("%u %u\n", e.first, e.second);
  }
  return 0;
}

int CmdIso(const Graph& a, const Graph& b) {
  Result<Permutation> witness = DviclFindIsomorphism(a, b);
  if (witness.ok()) {
    std::printf("ISOMORPHIC via %s\n",
                witness.value().ToCycleString().c_str());
    return 0;
  }
  if (witness.status().code() == Status::Code::kNotFound) {
    std::printf("NOT ISOMORPHIC\n");
    return 1;
  }
  std::fprintf(stderr, "%s\n", witness.status().ToString().c_str());
  return 2;
}

int CmdSsm(const Graph& graph, const std::string& spec) {
  std::vector<VertexId> query;
  uint64_t value = 0;
  bool have_digit = false;
  for (char c : spec + ",") {
    if (c >= '0' && c <= '9') {
      value = value * 10 + static_cast<uint64_t>(c - '0');
      have_digit = true;
    } else if (c == ',') {
      if (have_digit) query.push_back(static_cast<VertexId>(value));
      value = 0;
      have_digit = false;
    } else {
      std::fprintf(stderr, "bad vertex list '%s'\n", spec.c_str());
      return 2;
    }
  }
  for (VertexId v : query) {
    if (v >= graph.NumVertices()) {
      std::fprintf(stderr, "vertex %u out of range\n", v);
      return 2;
    }
  }
  Result<DviclResult> result = Analyze(graph);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 2;
  }
  SsmIndex index(graph, result.value());
  std::printf("symmetric images: %s\n",
              index.CountSymmetricImages(query).ToCompactString().c_str());
  bool truncated = false;
  auto images = index.SymmetricImages(query, 20, &truncated);
  for (const auto& image : images) {
    std::printf("  {");
    for (size_t i = 0; i < image.size(); ++i) {
      std::printf("%s%u", i ? "," : "", image[i]);
    }
    std::printf("}\n");
  }
  if (truncated) std::printf("  ... (enumeration truncated at 20)\n");
  return 0;
}

int CmdIndex(const std::string& verb, const std::string& source,
             const std::string& file) {
  if (verb == "save") {
    Result<Graph> graph = LoadGraph(source);
    if (!graph.ok()) {
      std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
      return 2;
    }
    Result<DviclResult> result = Analyze(graph.value());
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 2;
    }
    Status status = SaveDviclResultToFile(result.value(), file);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 2;
    }
    std::printf("saved AutoTree index (%u nodes) to %s\n",
                result.value().tree.NumNodes(), file.c_str());
    return 0;
  }
  if (verb == "load") {
    Result<DviclResult> loaded = LoadDviclResultFromFile(source);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 2;
    }
    std::printf("loaded index: %u nodes, depth %u, |Aut| = %s\n",
                loaded.value().tree.NumNodes(), loaded.value().tree.Depth(),
                AutomorphismOrderFromTree(loaded.value().tree)
                    .ToCompactString()
                    .c_str());
    return 0;
  }
  std::fprintf(stderr, "index verb must be save or load\n");
  return 2;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s stats|canon|aut|tree|quotient <graph>\n"
               "       %s iso <graphA> <graphB>\n"
               "       %s ssm <graph> v1,v2,...\n"
               "       %s index save <graph> <file> | index load <file>\n",
               argv0, argv0, argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  const std::string command = argv[1];

  if (command == "iso") {
    if (argc != 4) return Usage(argv[0]);
    Result<Graph> a = LoadGraph(argv[2]);
    Result<Graph> b = LoadGraph(argv[3]);
    if (!a.ok() || !b.ok()) {
      std::fprintf(stderr, "%s\n",
                   (!a.ok() ? a.status() : b.status()).ToString().c_str());
      return 2;
    }
    return CmdIso(a.value(), b.value());
  }
  if (command == "ssm") {
    if (argc != 4) return Usage(argv[0]);
    Result<Graph> graph = LoadGraph(argv[2]);
    if (!graph.ok()) {
      std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
      return 2;
    }
    return CmdSsm(graph.value(), argv[3]);
  }
  if (command == "index") {
    if (argc == 5 && std::strcmp(argv[2], "save") == 0) {
      return CmdIndex("save", argv[3], argv[4]);
    }
    if (argc == 4 && std::strcmp(argv[2], "load") == 0) {
      return CmdIndex("load", argv[3], "");
    }
    return Usage(argv[0]);
  }

  if (argc != 3) return Usage(argv[0]);
  Result<Graph> graph = LoadGraph(argv[2]);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 2;
  }
  if (command == "stats") return CmdStats(graph.value());
  if (command == "canon") return CmdCanon(graph.value());
  if (command == "aut") return CmdAut(graph.value());
  if (command == "tree") return CmdTree(graph.value());
  if (command == "quotient") return CmdQuotient(graph.value());
  return Usage(argv[0]);
}
