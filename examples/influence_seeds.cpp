// The paper's §1 motivating application: influence maximization returns ONE
// best seed set; graph automorphism reveals every other seed set with the
// SAME influence, so a practitioner can pick one satisfying extra criteria.
//
// Pipeline: synthetic social network -> IC-greedy seed selection (the PMC
// stand-in) -> AutoTree -> count + enumerate symmetric seed sets.
//
// Build & run:  ./build/examples/influence_seeds [n]

#include <cstdio>
#include <cstdlib>

#include "analysis/influence_max.h"
#include "datasets/generators.h"
#include "dvicl/dvicl.h"
#include "ssm/ssm_at.h"

using namespace dvicl;

int main(int argc, char** argv) {
  const VertexId n = argc > 1 ? static_cast<VertexId>(std::atoi(argv[1]))
                              : 3000;
  Graph g = PreferentialAttachmentGraph(n, 5, 2024);
  g = WithTwins(g, 0.08, 2025);
  g = WithPendantPaths(g, 0.06, 3, 2026);
  std::printf("social graph: %u vertices, %llu edges\n", g.NumVertices(),
              static_cast<unsigned long long>(g.NumEdges()));

  // Select seeds under the Independent Cascade model.
  InfluenceMaxOptions options;
  options.edge_probability = 0.05;
  options.monte_carlo_rounds = 32;
  InfluenceMaxResult im = GreedyInfluenceMaximization(g, 10, options);
  std::printf("greedy seeds (k=10): ");
  for (VertexId s : im.seeds) std::printf("%u ", s);
  std::printf("\nestimated spread: %.1f\n", im.estimated_spread);

  // How many seed sets are symmetric (same influence, different vertices)?
  DviclResult result =
      DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
  SsmIndex index(g, result);
  BigUint count = index.CountSymmetricImages(im.seeds);
  std::printf("symmetric seed sets: %s\n", count.ToCompactString().c_str());

  // Enumerate a few alternates.
  bool truncated = false;
  auto alternates = index.SymmetricImages(im.seeds, 5, &truncated);
  std::printf("first %zu alternates%s:\n", alternates.size(),
              truncated ? " (enumeration truncated)" : "");
  for (const auto& alt : alternates) {
    std::printf("  { ");
    for (VertexId v : alt) std::printf("%u ", v);
    std::printf("}\n");
  }
  return 0;
}
