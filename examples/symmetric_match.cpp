// Symmetric subgraph matching (paper §6.4 / Example 6.11): given a query
// subgraph q of G, find every subgraph of G symmetric to q — i.e., every
// image of q under an automorphism of G. Uses the Fig. 3 "two wings" graph
// and the paper's query, the path 3-2-6.
//
// Build & run:  ./build/examples/symmetric_match

#include <cstdio>

#include "dvicl/dvicl.h"
#include "ssm/ssm_at.h"

using namespace dvicl;

int main() {
  // The Fig. 3 structure: axis vertex 1 joined to two symmetric wings;
  // each wing is a triangle {2,4,6} / {8,10,12} with pendants 3,5,7 /
  // 9,11,13.
  Graph g = Graph::FromEdges(
      14, {{1, 2},  {1, 4},  {1, 6},  {1, 8},  {1, 10}, {1, 12},
           {2, 4},  {4, 6},  {2, 6},  {8, 10}, {10, 12}, {8, 12},
           {3, 2},  {5, 4},  {7, 6},  {9, 8},  {11, 10}, {13, 12}});

  DviclResult result = DviclCanonicalLabeling(g, Coloring::Unit(14), {});
  std::printf("AutoTree: %u nodes, depth %u, all leaves singleton: %s\n",
              result.tree.NumNodes(), result.tree.Depth(),
              result.tree.NumNonSingletonLeaves() == 0 ? "yes" : "no");

  SsmIndex index(g, result);
  const std::vector<VertexId> query = {3, 2, 6};  // the paper's path query
  std::printf("query q = {3,2,6}; symmetric images (paper Example 6.11 "
              "finds 6 per wing):\n");
  for (const auto& image : index.SymmetricImages(query)) {
    std::printf("  { ");
    for (VertexId v : image) std::printf("%u ", v);
    std::printf("}\n");
  }
  std::printf("count: %s\n",
              index.CountSymmetricImages(query).ToDecimalString().c_str());
  return 0;
}
