// Social-network anonymization via k-symmetry (paper §1 application (e) /
// [34]): modify a graph so vertices have at least k-1 structurally
// equivalent counterparts, protecting against re-identification. With the
// AutoTree, each root subtree is duplicated until it has >= k symmetric
// siblings.
//
// Build & run:  ./build/examples/anonymize [k]

#include <cstdio>
#include <cstdlib>

#include "analysis/k_symmetry.h"
#include "datasets/generators.h"
#include "dvicl/dvicl.h"

using namespace dvicl;

int main(int argc, char** argv) {
  const uint32_t k = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 3;

  // A hub-and-communities graph: hubs survive as the axis, the hanging
  // communities get duplicated.
  Graph g = PreferentialAttachmentGraph(400, 2, 99);
  g = WithPendantPaths(g, 0.4, 4, 100);
  std::printf("input: %u vertices, %llu edges\n", g.NumVertices(),
              static_cast<unsigned long long>(g.NumEdges()));

  DviclResult result =
      DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
  KSymmetryResult anonymized = AnonymizeKSymmetry(g, result, k);

  std::printf("k = %u\n", k);
  std::printf("copies added: %llu vertices\n",
              static_cast<unsigned long long>(anonymized.copies_added));
  std::printf("output: %u vertices, %llu edges\n",
              anonymized.anonymized.NumVertices(),
              static_cast<unsigned long long>(
                  anonymized.anonymized.NumEdges()));
  std::printf("fraction of original vertices with >= k-1 automorphic "
              "counterparts: %.2f\n",
              anonymized.anonymized_fraction);

  // Verify on the output graph: orbit sizes of anonymized vertices.
  DviclResult check = DviclCanonicalLabeling(
      anonymized.anonymized,
      Coloring::Unit(anonymized.anonymized.NumVertices()), {});
  const auto orbit = OrbitIdsFromGenerators(
      anonymized.anonymized.NumVertices(), check.generators);
  std::vector<uint32_t> orbit_size(anonymized.anonymized.NumVertices(), 0);
  for (VertexId v = 0; v < anonymized.anonymized.NumVertices(); ++v) {
    ++orbit_size[orbit[v]];
  }
  uint64_t protected_count = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (orbit_size[orbit[v]] >= k) ++protected_count;
  }
  std::printf("verified: %llu/%u original vertices are in orbits of size >= "
              "%u\n",
              static_cast<unsigned long long>(protected_count),
              g.NumVertices(), k);
  return 0;
}
