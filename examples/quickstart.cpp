// Quickstart: canonical labeling, isomorphism testing, and automorphism
// queries with DviCL — the paper's Fig. 1(a) running example.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "dvicl/dvicl.h"
#include "perm/schreier_sims.h"

using namespace dvicl;

int main() {
  // The paper's example graph: a 4-cycle (0-1-2-3), a triangle (4-5-6),
  // and a hub 7 adjacent to everything else.
  Graph g = Graph::FromEdges(8, {{0, 1}, {1, 2}, {2, 3}, {0, 3},
                                 {4, 5}, {5, 6}, {4, 6},
                                 {7, 0}, {7, 1}, {7, 2}, {7, 3},
                                 {7, 4}, {7, 5}, {7, 6}});

  // 1. Canonical labeling: build the AutoTree.
  DviclResult result = DviclCanonicalLabeling(g, Coloring::Unit(8), {});
  std::printf("AutoTree: %u nodes, %u singleton leaves, %u non-singleton "
              "leaves, depth %u\n",
              result.tree.NumNodes(), result.tree.NumSingletonLeaves(),
              result.tree.NumNonSingletonLeaves(), result.tree.Depth());

  // 2. Isomorphism test: any relabeling of g is isomorphic to it.
  Graph h = g.RelabeledBy(std::vector<VertexId>{7, 6, 5, 4, 3, 2, 1, 0});
  std::printf("g iso h (relabeled copy): %s\n",
              DviclIsomorphic(g, h) ? "yes" : "no");
  Graph other = Graph::FromEdges(8, {{0, 1}, {1, 2}, {2, 3}, {3, 4},
                                     {4, 5}, {5, 6}, {6, 7}, {7, 0},
                                     {0, 4}, {1, 5}, {2, 6}, {3, 7},
                                     {0, 2}, {5, 7}});
  std::printf("g iso other (same size, different structure): %s\n",
              DviclIsomorphic(g, other) ? "yes" : "no");

  // 3. Automorphism group: generators, orbits, exact order.
  std::printf("Aut(G) generators:\n");
  for (const SparseAut& gen : result.generators) {
    std::printf("  %s\n", gen.ToDense(8).ToCycleString().c_str());
  }
  const auto orbit = OrbitIdsFromGenerators(8, result.generators);
  std::printf("orbit ids: ");
  for (VertexId v = 0; v < 8; ++v) std::printf("%u ", orbit[v]);
  std::printf("\n");

  SchreierSims chain(8);
  for (const SparseAut& gen : result.generators) {
    chain.AddGenerator(gen.ToDense(8));
  }
  std::printf("|Aut(G)| = %s (paper: dihedral(C4) x Sym(3) = 48)\n",
              chain.Order().ToDecimalString().c_str());
  return 0;
}
