// Network simplification by symmetry (paper §1 application (d)): collapse
// every Aut(G) orbit into one vertex — the "quotient" — and report the
// compression and the structure entropy before/after. Per Xiao et al. the
// quotient can be substantially smaller while preserving key functional
// properties.
//
// Build & run:  ./build/examples/network_simplify [n]

#include <cstdio>
#include <cstdlib>

#include "analysis/quotient.h"
#include "datasets/generators.h"
#include "dvicl/dvicl.h"

using namespace dvicl;

int main(int argc, char** argv) {
  const VertexId n = argc > 1 ? static_cast<VertexId>(std::atoi(argv[1]))
                              : 4000;
  // A twin- and pendant-rich web-like graph: rich symmetry to collapse.
  Graph g = CopyingModelGraph(n, 4, 0.7, 7);
  g = WithTwins(g, 0.15, 8);
  g = WithPendantPaths(g, 0.12, 4, 9);
  std::printf("input: %u vertices, %llu edges\n", g.NumVertices(),
              static_cast<unsigned long long>(g.NumEdges()));

  DviclResult result =
      DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
  const auto orbits =
      OrbitIdsFromGenerators(g.NumVertices(), result.generators);

  QuotientGraph quotient = BuildQuotient(g, orbits);
  std::printf("quotient: %u vertices (%.1f%%), %llu edges (%.1f%%)\n",
              quotient.graph.NumVertices(), 100.0 * quotient.vertex_ratio,
              static_cast<unsigned long long>(quotient.graph.NumEdges()),
              100.0 * quotient.edge_ratio);

  uint32_t largest_orbit = 0;
  for (uint32_t size : quotient.orbit_size) {
    largest_orbit = std::max(largest_orbit, size);
  }
  std::printf("largest orbit collapsed: %u vertices\n", largest_orbit);
  std::printf("structure entropy (normalized): %.4f "
              "(1 = asymmetric, 0 = vertex-transitive)\n",
              NormalizedStructureEntropy(g.NumVertices(), orbits));

  // Key scale-free property preserved: the quotient keeps the hubs.
  std::printf("max degree: original %u, quotient %u\n", g.MaxDegree(),
              quotient.graph.MaxDegree());
  return 0;
}
