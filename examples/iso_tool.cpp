// Command-line isomorphism checker, the "database indexing" use of
// canonical labeling (paper §1 application (a)): graphs with equal
// certificates are isomorphic, so the certificate acts as a lookup key.
//
// Usage:
//   iso_tool A.edges B.edges          compare two edge-list files
//   iso_tool --certificate A.edges    print a certificate digest
//
// Exit code: 0 = isomorphic, 1 = not isomorphic, 2 = error.

#include <cstdio>
#include <cstring>
#include <string>

#include "dvicl/dvicl.h"
#include "graph/graph_io.h"

using namespace dvicl;

namespace {

uint64_t DigestOf(const Certificate& certificate) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (uint64_t value : certificate) {
    h ^= value + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--certificate") == 0) {
    Result<Graph> graph = ReadEdgeListFile(argv[2]);
    if (!graph.ok()) {
      std::fprintf(stderr, "error: %s\n", graph.status().ToString().c_str());
      return 2;
    }
    DviclResult result = DviclCanonicalLabeling(
        graph.value(), Coloring::Unit(graph.value().NumVertices()), {});
    if (!result.completed()) {
      std::fprintf(stderr, "error: canonical labeling did not complete\n");
      return 2;
    }
    std::printf("%016llx\n",
                static_cast<unsigned long long>(DigestOf(result.certificate)));
    return 0;
  }

  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: %s A.edges B.edges | --certificate A.edges\n",
                 argv[0]);
    return 2;
  }

  Result<Graph> a = ReadEdgeListFile(argv[1]);
  Result<Graph> b = ReadEdgeListFile(argv[2]);
  if (!a.ok() || !b.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 (!a.ok() ? a.status() : b.status()).ToString().c_str());
    return 2;
  }
  bool decided = false;
  const bool iso = DviclIsomorphic(a.value(), b.value(), {}, &decided);
  if (!decided) {
    std::fprintf(stderr, "error: canonical labeling did not complete\n");
    return 2;
  }
  std::printf("%s\n", iso ? "ISOMORPHIC" : "NOT ISOMORPHIC");
  return iso ? 0 : 1;
}
