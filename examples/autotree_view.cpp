// Renders an AutoTree — the paper's "explicit view of the symmetric
// structure in G" (§1). Accepts an edge-list file, or renders the paper's
// Fig. 3 graph when run without arguments (compare the output against the
// paper's Fig. 3 AutoTree drawing).
//
// Build & run:  ./build/examples/autotree_view [graph.edges]

#include <cstdio>

#include "dvicl/dvicl.h"
#include "graph/graph_io.h"

using namespace dvicl;

int main(int argc, char** argv) {
  Graph g;
  if (argc > 1) {
    Result<Graph> loaded = ReadEdgeListFile(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 2;
    }
    g = std::move(loaded).value();
  } else {
    g = Graph::FromEdges(
        14, {{1, 2},  {1, 4},  {1, 6},  {1, 8},  {1, 10}, {1, 12},
             {2, 4},  {4, 6},  {2, 6},  {8, 10}, {10, 12}, {8, 12},
             {3, 2},  {5, 4},  {7, 6},  {9, 8},  {11, 10}, {13, 12}});
    std::printf("(no input file; using the paper's Fig. 3 graph)\n\n");
  }

  DviclResult result =
      DviclCanonicalLabeling(g, Coloring::Unit(g.NumVertices()), {});
  if (!result.completed()) {
    std::fprintf(stderr, "canonical labeling did not complete\n");
    return 2;
  }

  std::printf("%s\n", FormatAutoTree(result.tree, 200).c_str());
  std::printf("nodes: %u  singleton leaves: %u  non-singleton leaves: %u  "
              "depth: %u\n",
              result.tree.NumNodes(), result.tree.NumSingletonLeaves(),
              result.tree.NumNonSingletonLeaves(), result.tree.Depth());
  std::printf("equal 'class' values among siblings mark symmetric subgraphs "
              "(Lemmas 6.7/6.8)\n");
  return 0;
}
