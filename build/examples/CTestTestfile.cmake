# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_symmetric_match "/root/repo/build/examples/symmetric_match")
set_tests_properties(example_symmetric_match PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_influence_seeds "/root/repo/build/examples/influence_seeds" "400")
set_tests_properties(example_influence_seeds PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_anonymize "/root/repo/build/examples/anonymize" "3")
set_tests_properties(example_anonymize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_network_simplify "/root/repo/build/examples/network_simplify" "800")
set_tests_properties(example_network_simplify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_graph_dedup "/root/repo/build/examples/graph_dedup")
set_tests_properties(example_graph_dedup PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_autotree_view "/root/repo/build/examples/autotree_view")
set_tests_properties(example_autotree_view PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_iso_tool "/root/repo/build/examples/iso_tool" "/root/repo/data/fig1.edges" "/root/repo/data/fig1.edges")
set_tests_properties(example_iso_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_stats "/root/repo/build/examples/dvicl_cli" "stats" "/root/repo/data/fig1.edges")
set_tests_properties(example_cli_stats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_tree "/root/repo/build/examples/dvicl_cli" "tree" "/root/repo/data/fig3.edges")
set_tests_properties(example_cli_tree PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_ssm "/root/repo/build/examples/dvicl_cli" "ssm" "/root/repo/data/fig3.edges" "3,2,6")
set_tests_properties(example_cli_ssm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
