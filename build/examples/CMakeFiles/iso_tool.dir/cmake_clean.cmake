file(REMOVE_RECURSE
  "CMakeFiles/iso_tool.dir/iso_tool.cpp.o"
  "CMakeFiles/iso_tool.dir/iso_tool.cpp.o.d"
  "iso_tool"
  "iso_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iso_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
