# Empty compiler generated dependencies file for iso_tool.
# This may be replaced when dependencies are built.
