file(REMOVE_RECURSE
  "CMakeFiles/anonymize.dir/anonymize.cpp.o"
  "CMakeFiles/anonymize.dir/anonymize.cpp.o.d"
  "anonymize"
  "anonymize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
