# Empty dependencies file for anonymize.
# This may be replaced when dependencies are built.
