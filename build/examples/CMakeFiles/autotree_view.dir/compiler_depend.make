# Empty compiler generated dependencies file for autotree_view.
# This may be replaced when dependencies are built.
