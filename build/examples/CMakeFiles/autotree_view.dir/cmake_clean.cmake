file(REMOVE_RECURSE
  "CMakeFiles/autotree_view.dir/autotree_view.cpp.o"
  "CMakeFiles/autotree_view.dir/autotree_view.cpp.o.d"
  "autotree_view"
  "autotree_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotree_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
