file(REMOVE_RECURSE
  "CMakeFiles/dvicl_cli.dir/dvicl_cli.cpp.o"
  "CMakeFiles/dvicl_cli.dir/dvicl_cli.cpp.o.d"
  "dvicl_cli"
  "dvicl_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvicl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
