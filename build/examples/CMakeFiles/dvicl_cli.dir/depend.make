# Empty dependencies file for dvicl_cli.
# This may be replaced when dependencies are built.
