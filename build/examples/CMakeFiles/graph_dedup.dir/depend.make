# Empty dependencies file for graph_dedup.
# This may be replaced when dependencies are built.
