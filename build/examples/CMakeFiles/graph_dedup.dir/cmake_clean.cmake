file(REMOVE_RECURSE
  "CMakeFiles/graph_dedup.dir/graph_dedup.cpp.o"
  "CMakeFiles/graph_dedup.dir/graph_dedup.cpp.o.d"
  "graph_dedup"
  "graph_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
