# Empty dependencies file for symmetric_match.
# This may be replaced when dependencies are built.
