file(REMOVE_RECURSE
  "CMakeFiles/symmetric_match.dir/symmetric_match.cpp.o"
  "CMakeFiles/symmetric_match.dir/symmetric_match.cpp.o.d"
  "symmetric_match"
  "symmetric_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symmetric_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
