file(REMOVE_RECURSE
  "CMakeFiles/influence_seeds.dir/influence_seeds.cpp.o"
  "CMakeFiles/influence_seeds.dir/influence_seeds.cpp.o.d"
  "influence_seeds"
  "influence_seeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/influence_seeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
