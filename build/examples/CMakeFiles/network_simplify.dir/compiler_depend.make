# Empty compiler generated dependencies file for network_simplify.
# This may be replaced when dependencies are built.
