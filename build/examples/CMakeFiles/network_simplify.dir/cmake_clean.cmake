file(REMOVE_RECURSE
  "CMakeFiles/network_simplify.dir/network_simplify.cpp.o"
  "CMakeFiles/network_simplify.dir/network_simplify.cpp.o.d"
  "network_simplify"
  "network_simplify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_simplify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
