file(REMOVE_RECURSE
  "CMakeFiles/symmetry_profile.dir/symmetry_profile.cc.o"
  "CMakeFiles/symmetry_profile.dir/symmetry_profile.cc.o.d"
  "symmetry_profile"
  "symmetry_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symmetry_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
