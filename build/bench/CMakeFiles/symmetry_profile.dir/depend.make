# Empty dependencies file for symmetry_profile.
# This may be replaced when dependencies are built.
