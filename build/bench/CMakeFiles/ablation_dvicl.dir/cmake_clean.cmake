file(REMOVE_RECURSE
  "CMakeFiles/ablation_dvicl.dir/ablation_dvicl.cc.o"
  "CMakeFiles/ablation_dvicl.dir/ablation_dvicl.cc.o.d"
  "ablation_dvicl"
  "ablation_dvicl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dvicl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
