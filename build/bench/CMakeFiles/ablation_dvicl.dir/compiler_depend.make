# Empty compiler generated dependencies file for ablation_dvicl.
# This may be replaced when dependencies are built.
