# Empty compiler generated dependencies file for table8_perf_benchmark.
# This may be replaced when dependencies are built.
