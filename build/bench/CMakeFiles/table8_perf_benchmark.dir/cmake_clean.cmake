file(REMOVE_RECURSE
  "CMakeFiles/table8_perf_benchmark.dir/table8_perf_benchmark.cc.o"
  "CMakeFiles/table8_perf_benchmark.dir/table8_perf_benchmark.cc.o.d"
  "table8_perf_benchmark"
  "table8_perf_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_perf_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
