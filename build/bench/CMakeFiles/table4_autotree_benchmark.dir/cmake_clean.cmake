file(REMOVE_RECURSE
  "CMakeFiles/table4_autotree_benchmark.dir/table4_autotree_benchmark.cc.o"
  "CMakeFiles/table4_autotree_benchmark.dir/table4_autotree_benchmark.cc.o.d"
  "table4_autotree_benchmark"
  "table4_autotree_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_autotree_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
