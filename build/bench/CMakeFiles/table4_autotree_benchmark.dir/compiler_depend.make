# Empty compiler generated dependencies file for table4_autotree_benchmark.
# This may be replaced when dependencies are built.
