file(REMOVE_RECURSE
  "CMakeFiles/table3_autotree_real.dir/table3_autotree_real.cc.o"
  "CMakeFiles/table3_autotree_real.dir/table3_autotree_real.cc.o.d"
  "table3_autotree_real"
  "table3_autotree_real.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_autotree_real.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
