# Empty compiler generated dependencies file for table3_autotree_real.
# This may be replaced when dependencies are built.
