file(REMOVE_RECURSE
  "CMakeFiles/table7_clustering.dir/table7_clustering.cc.o"
  "CMakeFiles/table7_clustering.dir/table7_clustering.cc.o.d"
  "table7_clustering"
  "table7_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
