# Empty dependencies file for table7_clustering.
# This may be replaced when dependencies are built.
