# Empty dependencies file for table1_real_graphs.
# This may be replaced when dependencies are built.
