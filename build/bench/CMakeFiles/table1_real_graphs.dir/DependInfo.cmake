
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_real_graphs.cc" "bench/CMakeFiles/table1_real_graphs.dir/table1_real_graphs.cc.o" "gcc" "bench/CMakeFiles/table1_real_graphs.dir/table1_real_graphs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dvicl_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvicl_ssm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvicl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvicl_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvicl_refine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvicl_perm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvicl_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvicl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvicl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
