# Empty dependencies file for table6_ssm_im.
# This may be replaced when dependencies are built.
