file(REMOVE_RECURSE
  "CMakeFiles/table6_ssm_im.dir/table6_ssm_im.cc.o"
  "CMakeFiles/table6_ssm_im.dir/table6_ssm_im.cc.o.d"
  "table6_ssm_im"
  "table6_ssm_im.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_ssm_im.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
