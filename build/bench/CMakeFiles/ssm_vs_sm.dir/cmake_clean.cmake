file(REMOVE_RECURSE
  "CMakeFiles/ssm_vs_sm.dir/ssm_vs_sm.cc.o"
  "CMakeFiles/ssm_vs_sm.dir/ssm_vs_sm.cc.o.d"
  "ssm_vs_sm"
  "ssm_vs_sm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssm_vs_sm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
