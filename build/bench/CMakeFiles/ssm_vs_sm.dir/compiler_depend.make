# Empty compiler generated dependencies file for ssm_vs_sm.
# This may be replaced when dependencies are built.
