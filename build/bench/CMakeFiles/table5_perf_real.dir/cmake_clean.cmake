file(REMOVE_RECURSE
  "CMakeFiles/table5_perf_real.dir/table5_perf_real.cc.o"
  "CMakeFiles/table5_perf_real.dir/table5_perf_real.cc.o.d"
  "table5_perf_real"
  "table5_perf_real.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_perf_real.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
