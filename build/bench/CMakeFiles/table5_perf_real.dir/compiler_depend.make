# Empty compiler generated dependencies file for table5_perf_real.
# This may be replaced when dependencies are built.
