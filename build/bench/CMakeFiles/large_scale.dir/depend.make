# Empty dependencies file for large_scale.
# This may be replaced when dependencies are built.
