file(REMOVE_RECURSE
  "CMakeFiles/table2_benchmark_graphs.dir/table2_benchmark_graphs.cc.o"
  "CMakeFiles/table2_benchmark_graphs.dir/table2_benchmark_graphs.cc.o.d"
  "table2_benchmark_graphs"
  "table2_benchmark_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_benchmark_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
