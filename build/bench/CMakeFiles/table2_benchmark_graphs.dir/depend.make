# Empty dependencies file for table2_benchmark_graphs.
# This may be replaced when dependencies are built.
