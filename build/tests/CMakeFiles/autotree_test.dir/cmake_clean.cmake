file(REMOVE_RECURSE
  "CMakeFiles/autotree_test.dir/autotree_test.cc.o"
  "CMakeFiles/autotree_test.dir/autotree_test.cc.o.d"
  "autotree_test"
  "autotree_test.pdb"
  "autotree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
