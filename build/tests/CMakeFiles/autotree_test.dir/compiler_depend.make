# Empty compiler generated dependencies file for autotree_test.
# This may be replaced when dependencies are built.
