# Empty compiler generated dependencies file for divide_combine_test.
# This may be replaced when dependencies are built.
