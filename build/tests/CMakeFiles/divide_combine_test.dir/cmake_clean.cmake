file(REMOVE_RECURSE
  "CMakeFiles/divide_combine_test.dir/divide_combine_test.cc.o"
  "CMakeFiles/divide_combine_test.dir/divide_combine_test.cc.o.d"
  "divide_combine_test"
  "divide_combine_test.pdb"
  "divide_combine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/divide_combine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
