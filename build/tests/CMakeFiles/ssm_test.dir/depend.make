# Empty dependencies file for ssm_test.
# This may be replaced when dependencies are built.
