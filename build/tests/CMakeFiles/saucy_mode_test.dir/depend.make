# Empty dependencies file for saucy_mode_test.
# This may be replaced when dependencies are built.
