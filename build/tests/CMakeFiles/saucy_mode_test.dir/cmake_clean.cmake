file(REMOVE_RECURSE
  "CMakeFiles/saucy_mode_test.dir/saucy_mode_test.cc.o"
  "CMakeFiles/saucy_mode_test.dir/saucy_mode_test.cc.o.d"
  "saucy_mode_test"
  "saucy_mode_test.pdb"
  "saucy_mode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saucy_mode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
