# Empty dependencies file for dvicl_test.
# This may be replaced when dependencies are built.
