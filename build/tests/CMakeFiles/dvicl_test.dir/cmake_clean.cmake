file(REMOVE_RECURSE
  "CMakeFiles/dvicl_test.dir/dvicl_test.cc.o"
  "CMakeFiles/dvicl_test.dir/dvicl_test.cc.o.d"
  "dvicl_test"
  "dvicl_test.pdb"
  "dvicl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvicl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
