# Empty compiler generated dependencies file for iso_backtrack_test.
# This may be replaced when dependencies are built.
