file(REMOVE_RECURSE
  "CMakeFiles/iso_backtrack_test.dir/iso_backtrack_test.cc.o"
  "CMakeFiles/iso_backtrack_test.dir/iso_backtrack_test.cc.o.d"
  "iso_backtrack_test"
  "iso_backtrack_test.pdb"
  "iso_backtrack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iso_backtrack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
