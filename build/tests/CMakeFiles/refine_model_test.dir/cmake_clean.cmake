file(REMOVE_RECURSE
  "CMakeFiles/refine_model_test.dir/refine_model_test.cc.o"
  "CMakeFiles/refine_model_test.dir/refine_model_test.cc.o.d"
  "refine_model_test"
  "refine_model_test.pdb"
  "refine_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refine_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
