# Empty dependencies file for refine_model_test.
# This may be replaced when dependencies are built.
