# Empty compiler generated dependencies file for coloring_stress_test.
# This may be replaced when dependencies are built.
