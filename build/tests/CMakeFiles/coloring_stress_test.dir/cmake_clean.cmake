file(REMOVE_RECURSE
  "CMakeFiles/coloring_stress_test.dir/coloring_stress_test.cc.o"
  "CMakeFiles/coloring_stress_test.dir/coloring_stress_test.cc.o.d"
  "coloring_stress_test"
  "coloring_stress_test.pdb"
  "coloring_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coloring_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
