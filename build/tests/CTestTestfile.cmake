# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/perm_test[1]_include.cmake")
include("/root/repo/build/tests/refine_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/dvicl_test[1]_include.cmake")
include("/root/repo/build/tests/paper_examples_test[1]_include.cmake")
include("/root/repo/build/tests/ssm_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/datasets_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/autotree_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/api_test[1]_include.cmake")
include("/root/repo/build/tests/enumeration_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/iso_backtrack_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/divide_combine_test[1]_include.cmake")
include("/root/repo/build/tests/saucy_mode_test[1]_include.cmake")
include("/root/repo/build/tests/refine_model_test[1]_include.cmake")
include("/root/repo/build/tests/coloring_stress_test[1]_include.cmake")
