file(REMOVE_RECURSE
  "libdvicl_refine.a"
)
