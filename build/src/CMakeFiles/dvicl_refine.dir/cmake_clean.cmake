file(REMOVE_RECURSE
  "CMakeFiles/dvicl_refine.dir/refine/coloring.cc.o"
  "CMakeFiles/dvicl_refine.dir/refine/coloring.cc.o.d"
  "CMakeFiles/dvicl_refine.dir/refine/refiner.cc.o"
  "CMakeFiles/dvicl_refine.dir/refine/refiner.cc.o.d"
  "libdvicl_refine.a"
  "libdvicl_refine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvicl_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
