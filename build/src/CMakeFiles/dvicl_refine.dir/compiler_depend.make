# Empty compiler generated dependencies file for dvicl_refine.
# This may be replaced when dependencies are built.
