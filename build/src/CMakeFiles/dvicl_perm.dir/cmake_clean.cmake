file(REMOVE_RECURSE
  "CMakeFiles/dvicl_perm.dir/perm/perm_group.cc.o"
  "CMakeFiles/dvicl_perm.dir/perm/perm_group.cc.o.d"
  "CMakeFiles/dvicl_perm.dir/perm/permutation.cc.o"
  "CMakeFiles/dvicl_perm.dir/perm/permutation.cc.o.d"
  "CMakeFiles/dvicl_perm.dir/perm/schreier_sims.cc.o"
  "CMakeFiles/dvicl_perm.dir/perm/schreier_sims.cc.o.d"
  "libdvicl_perm.a"
  "libdvicl_perm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvicl_perm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
