
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perm/perm_group.cc" "src/CMakeFiles/dvicl_perm.dir/perm/perm_group.cc.o" "gcc" "src/CMakeFiles/dvicl_perm.dir/perm/perm_group.cc.o.d"
  "/root/repo/src/perm/permutation.cc" "src/CMakeFiles/dvicl_perm.dir/perm/permutation.cc.o" "gcc" "src/CMakeFiles/dvicl_perm.dir/perm/permutation.cc.o.d"
  "/root/repo/src/perm/schreier_sims.cc" "src/CMakeFiles/dvicl_perm.dir/perm/schreier_sims.cc.o" "gcc" "src/CMakeFiles/dvicl_perm.dir/perm/schreier_sims.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dvicl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvicl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
