file(REMOVE_RECURSE
  "libdvicl_perm.a"
)
