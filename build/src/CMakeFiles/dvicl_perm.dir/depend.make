# Empty dependencies file for dvicl_perm.
# This may be replaced when dependencies are built.
