file(REMOVE_RECURSE
  "CMakeFiles/dvicl_analysis.dir/analysis/cert_index.cc.o"
  "CMakeFiles/dvicl_analysis.dir/analysis/cert_index.cc.o.d"
  "CMakeFiles/dvicl_analysis.dir/analysis/influence_max.cc.o"
  "CMakeFiles/dvicl_analysis.dir/analysis/influence_max.cc.o.d"
  "CMakeFiles/dvicl_analysis.dir/analysis/k_symmetry.cc.o"
  "CMakeFiles/dvicl_analysis.dir/analysis/k_symmetry.cc.o.d"
  "CMakeFiles/dvicl_analysis.dir/analysis/max_clique.cc.o"
  "CMakeFiles/dvicl_analysis.dir/analysis/max_clique.cc.o.d"
  "CMakeFiles/dvicl_analysis.dir/analysis/quotient.cc.o"
  "CMakeFiles/dvicl_analysis.dir/analysis/quotient.cc.o.d"
  "CMakeFiles/dvicl_analysis.dir/analysis/symmetry_profile.cc.o"
  "CMakeFiles/dvicl_analysis.dir/analysis/symmetry_profile.cc.o.d"
  "CMakeFiles/dvicl_analysis.dir/analysis/triangles.cc.o"
  "CMakeFiles/dvicl_analysis.dir/analysis/triangles.cc.o.d"
  "libdvicl_analysis.a"
  "libdvicl_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvicl_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
