
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/cert_index.cc" "src/CMakeFiles/dvicl_analysis.dir/analysis/cert_index.cc.o" "gcc" "src/CMakeFiles/dvicl_analysis.dir/analysis/cert_index.cc.o.d"
  "/root/repo/src/analysis/influence_max.cc" "src/CMakeFiles/dvicl_analysis.dir/analysis/influence_max.cc.o" "gcc" "src/CMakeFiles/dvicl_analysis.dir/analysis/influence_max.cc.o.d"
  "/root/repo/src/analysis/k_symmetry.cc" "src/CMakeFiles/dvicl_analysis.dir/analysis/k_symmetry.cc.o" "gcc" "src/CMakeFiles/dvicl_analysis.dir/analysis/k_symmetry.cc.o.d"
  "/root/repo/src/analysis/max_clique.cc" "src/CMakeFiles/dvicl_analysis.dir/analysis/max_clique.cc.o" "gcc" "src/CMakeFiles/dvicl_analysis.dir/analysis/max_clique.cc.o.d"
  "/root/repo/src/analysis/quotient.cc" "src/CMakeFiles/dvicl_analysis.dir/analysis/quotient.cc.o" "gcc" "src/CMakeFiles/dvicl_analysis.dir/analysis/quotient.cc.o.d"
  "/root/repo/src/analysis/symmetry_profile.cc" "src/CMakeFiles/dvicl_analysis.dir/analysis/symmetry_profile.cc.o" "gcc" "src/CMakeFiles/dvicl_analysis.dir/analysis/symmetry_profile.cc.o.d"
  "/root/repo/src/analysis/triangles.cc" "src/CMakeFiles/dvicl_analysis.dir/analysis/triangles.cc.o" "gcc" "src/CMakeFiles/dvicl_analysis.dir/analysis/triangles.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dvicl_ssm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvicl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvicl_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvicl_refine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvicl_perm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvicl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvicl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
