file(REMOVE_RECURSE
  "libdvicl_analysis.a"
)
