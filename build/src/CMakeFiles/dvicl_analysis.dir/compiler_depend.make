# Empty compiler generated dependencies file for dvicl_analysis.
# This may be replaced when dependencies are built.
