
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/invariant.cc" "src/CMakeFiles/dvicl_ir.dir/ir/invariant.cc.o" "gcc" "src/CMakeFiles/dvicl_ir.dir/ir/invariant.cc.o.d"
  "/root/repo/src/ir/ir_canonical.cc" "src/CMakeFiles/dvicl_ir.dir/ir/ir_canonical.cc.o" "gcc" "src/CMakeFiles/dvicl_ir.dir/ir/ir_canonical.cc.o.d"
  "/root/repo/src/ir/target_cell.cc" "src/CMakeFiles/dvicl_ir.dir/ir/target_cell.cc.o" "gcc" "src/CMakeFiles/dvicl_ir.dir/ir/target_cell.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dvicl_refine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvicl_perm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvicl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvicl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
