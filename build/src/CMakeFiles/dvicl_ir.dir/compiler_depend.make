# Empty compiler generated dependencies file for dvicl_ir.
# This may be replaced when dependencies are built.
