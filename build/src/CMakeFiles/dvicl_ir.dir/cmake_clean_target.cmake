file(REMOVE_RECURSE
  "libdvicl_ir.a"
)
