file(REMOVE_RECURSE
  "CMakeFiles/dvicl_ir.dir/ir/invariant.cc.o"
  "CMakeFiles/dvicl_ir.dir/ir/invariant.cc.o.d"
  "CMakeFiles/dvicl_ir.dir/ir/ir_canonical.cc.o"
  "CMakeFiles/dvicl_ir.dir/ir/ir_canonical.cc.o.d"
  "CMakeFiles/dvicl_ir.dir/ir/target_cell.cc.o"
  "CMakeFiles/dvicl_ir.dir/ir/target_cell.cc.o.d"
  "libdvicl_ir.a"
  "libdvicl_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvicl_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
