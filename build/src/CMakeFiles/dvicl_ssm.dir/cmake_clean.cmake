file(REMOVE_RECURSE
  "CMakeFiles/dvicl_ssm.dir/ssm/iso_backtrack.cc.o"
  "CMakeFiles/dvicl_ssm.dir/ssm/iso_backtrack.cc.o.d"
  "CMakeFiles/dvicl_ssm.dir/ssm/ssm_at.cc.o"
  "CMakeFiles/dvicl_ssm.dir/ssm/ssm_at.cc.o.d"
  "CMakeFiles/dvicl_ssm.dir/ssm/ssm_count.cc.o"
  "CMakeFiles/dvicl_ssm.dir/ssm/ssm_count.cc.o.d"
  "CMakeFiles/dvicl_ssm.dir/ssm/subgraph_match.cc.o"
  "CMakeFiles/dvicl_ssm.dir/ssm/subgraph_match.cc.o.d"
  "libdvicl_ssm.a"
  "libdvicl_ssm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvicl_ssm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
