# Empty dependencies file for dvicl_ssm.
# This may be replaced when dependencies are built.
