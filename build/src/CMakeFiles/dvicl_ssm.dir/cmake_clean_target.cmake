file(REMOVE_RECURSE
  "libdvicl_ssm.a"
)
