# Empty dependencies file for dvicl_graph.
# This may be replaced when dependencies are built.
