file(REMOVE_RECURSE
  "libdvicl_graph.a"
)
