file(REMOVE_RECURSE
  "CMakeFiles/dvicl_graph.dir/graph/certificate.cc.o"
  "CMakeFiles/dvicl_graph.dir/graph/certificate.cc.o.d"
  "CMakeFiles/dvicl_graph.dir/graph/graph.cc.o"
  "CMakeFiles/dvicl_graph.dir/graph/graph.cc.o.d"
  "CMakeFiles/dvicl_graph.dir/graph/graph_builder.cc.o"
  "CMakeFiles/dvicl_graph.dir/graph/graph_builder.cc.o.d"
  "CMakeFiles/dvicl_graph.dir/graph/graph_io.cc.o"
  "CMakeFiles/dvicl_graph.dir/graph/graph_io.cc.o.d"
  "libdvicl_graph.a"
  "libdvicl_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvicl_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
