file(REMOVE_RECURSE
  "CMakeFiles/dvicl_datasets.dir/datasets/benchmark_suite.cc.o"
  "CMakeFiles/dvicl_datasets.dir/datasets/benchmark_suite.cc.o.d"
  "CMakeFiles/dvicl_datasets.dir/datasets/generators.cc.o"
  "CMakeFiles/dvicl_datasets.dir/datasets/generators.cc.o.d"
  "CMakeFiles/dvicl_datasets.dir/datasets/real_suite.cc.o"
  "CMakeFiles/dvicl_datasets.dir/datasets/real_suite.cc.o.d"
  "libdvicl_datasets.a"
  "libdvicl_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvicl_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
