file(REMOVE_RECURSE
  "libdvicl_datasets.a"
)
