
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datasets/benchmark_suite.cc" "src/CMakeFiles/dvicl_datasets.dir/datasets/benchmark_suite.cc.o" "gcc" "src/CMakeFiles/dvicl_datasets.dir/datasets/benchmark_suite.cc.o.d"
  "/root/repo/src/datasets/generators.cc" "src/CMakeFiles/dvicl_datasets.dir/datasets/generators.cc.o" "gcc" "src/CMakeFiles/dvicl_datasets.dir/datasets/generators.cc.o.d"
  "/root/repo/src/datasets/real_suite.cc" "src/CMakeFiles/dvicl_datasets.dir/datasets/real_suite.cc.o" "gcc" "src/CMakeFiles/dvicl_datasets.dir/datasets/real_suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dvicl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvicl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
