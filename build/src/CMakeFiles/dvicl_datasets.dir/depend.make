# Empty dependencies file for dvicl_datasets.
# This may be replaced when dependencies are built.
