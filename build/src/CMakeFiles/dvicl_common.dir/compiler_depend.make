# Empty compiler generated dependencies file for dvicl_common.
# This may be replaced when dependencies are built.
