file(REMOVE_RECURSE
  "CMakeFiles/dvicl_common.dir/common/big_uint.cc.o"
  "CMakeFiles/dvicl_common.dir/common/big_uint.cc.o.d"
  "CMakeFiles/dvicl_common.dir/common/rng.cc.o"
  "CMakeFiles/dvicl_common.dir/common/rng.cc.o.d"
  "CMakeFiles/dvicl_common.dir/common/stopwatch.cc.o"
  "CMakeFiles/dvicl_common.dir/common/stopwatch.cc.o.d"
  "libdvicl_common.a"
  "libdvicl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvicl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
