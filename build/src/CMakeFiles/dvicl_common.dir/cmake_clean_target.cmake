file(REMOVE_RECURSE
  "libdvicl_common.a"
)
