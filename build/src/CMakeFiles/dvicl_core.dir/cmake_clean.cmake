file(REMOVE_RECURSE
  "CMakeFiles/dvicl_core.dir/dvicl/auto_tree.cc.o"
  "CMakeFiles/dvicl_core.dir/dvicl/auto_tree.cc.o.d"
  "CMakeFiles/dvicl_core.dir/dvicl/combine.cc.o"
  "CMakeFiles/dvicl_core.dir/dvicl/combine.cc.o.d"
  "CMakeFiles/dvicl_core.dir/dvicl/divide.cc.o"
  "CMakeFiles/dvicl_core.dir/dvicl/divide.cc.o.d"
  "CMakeFiles/dvicl_core.dir/dvicl/dvicl.cc.o"
  "CMakeFiles/dvicl_core.dir/dvicl/dvicl.cc.o.d"
  "CMakeFiles/dvicl_core.dir/dvicl/serialize.cc.o"
  "CMakeFiles/dvicl_core.dir/dvicl/serialize.cc.o.d"
  "CMakeFiles/dvicl_core.dir/dvicl/simplify.cc.o"
  "CMakeFiles/dvicl_core.dir/dvicl/simplify.cc.o.d"
  "libdvicl_core.a"
  "libdvicl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvicl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
