# Empty compiler generated dependencies file for dvicl_core.
# This may be replaced when dependencies are built.
