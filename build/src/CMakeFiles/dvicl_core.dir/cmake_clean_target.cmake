file(REMOVE_RECURSE
  "libdvicl_core.a"
)
