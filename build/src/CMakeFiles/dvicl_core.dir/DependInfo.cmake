
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dvicl/auto_tree.cc" "src/CMakeFiles/dvicl_core.dir/dvicl/auto_tree.cc.o" "gcc" "src/CMakeFiles/dvicl_core.dir/dvicl/auto_tree.cc.o.d"
  "/root/repo/src/dvicl/combine.cc" "src/CMakeFiles/dvicl_core.dir/dvicl/combine.cc.o" "gcc" "src/CMakeFiles/dvicl_core.dir/dvicl/combine.cc.o.d"
  "/root/repo/src/dvicl/divide.cc" "src/CMakeFiles/dvicl_core.dir/dvicl/divide.cc.o" "gcc" "src/CMakeFiles/dvicl_core.dir/dvicl/divide.cc.o.d"
  "/root/repo/src/dvicl/dvicl.cc" "src/CMakeFiles/dvicl_core.dir/dvicl/dvicl.cc.o" "gcc" "src/CMakeFiles/dvicl_core.dir/dvicl/dvicl.cc.o.d"
  "/root/repo/src/dvicl/serialize.cc" "src/CMakeFiles/dvicl_core.dir/dvicl/serialize.cc.o" "gcc" "src/CMakeFiles/dvicl_core.dir/dvicl/serialize.cc.o.d"
  "/root/repo/src/dvicl/simplify.cc" "src/CMakeFiles/dvicl_core.dir/dvicl/simplify.cc.o" "gcc" "src/CMakeFiles/dvicl_core.dir/dvicl/simplify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dvicl_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvicl_refine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvicl_perm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvicl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvicl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
