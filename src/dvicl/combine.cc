#include "dvicl/combine.h"

#include <algorithm>
#include <array>
#include <unordered_map>
#include <utility>

#include "common/arena.h"
#include "common/check.h"
#include "common/failpoint.h"
#include "obs/trace.h"
#include "refine/coloring.h"

namespace dvicl {

namespace {

inline uint64_t MixHash(uint64_t h, uint64_t value) {
  h ^= value + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}


// Assigns node->labels from a vertex order already grouped by color:
// label = color + rank within the color run (Algorithms 4/5).
void AssignLabelsFromSortedVertices(AutoTreeNode* node,
                                    std::span<const uint32_t> colors,
                                    const std::vector<VertexId>& sorted) {
  DVICL_DCHECK_EQ(sorted.size(), node->vertices.size());
  std::unordered_map<VertexId, size_t> position;
  position.reserve(node->vertices.size());
  for (size_t i = 0; i < node->vertices.size(); ++i) {
    position.emplace(node->vertices[i], i);
  }
  node->labels.assign(node->vertices.size(), 0);
  uint32_t run_color = 0;
  VertexId rank = 0;
  bool first = true;
  for (VertexId v : sorted) {
    const uint32_t color = colors[v];
    if (first || color != run_color) {
      run_color = color;
      rank = 0;
      first = false;
    }
    node->labels[position.at(v)] = color + rank;
    ++rank;
  }
#ifdef DVICL_DCHECK_ENABLED
  // Labels must be unique within the node (Algorithms 4/5: color + rank
  // within the color class; a collision means `sorted` was not a
  // permutation of the node's vertices grouped by color).
  std::vector<VertexId> unique_check = node->labels;
  std::sort(unique_check.begin(), unique_check.end());
  DVICL_DCHECK(std::adjacent_find(unique_check.begin(), unique_check.end()) ==
               unique_check.end())
      << "duplicate canonical label within an AutoTree node of "
      << node->vertices.size() << " vertices";
#endif
}

}  // namespace

uint64_t HashNodeForm(const NodeForm& form) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (uint64_t value : form) h = MixHash(h, value);
  return h;
}

NodeForm ComputeNodeForm(const AutoTreeNode& node) {
  NodeForm form;
  form.reserve(2 + node.vertices.size() + node.edges.size());
  form.push_back(node.vertices.size());
  std::vector<uint64_t> labels(node.labels.begin(), node.labels.end());
  std::sort(labels.begin(), labels.end());
  form.insert(form.end(), labels.begin(), labels.end());
  form.push_back(node.edges.size());
  std::vector<uint64_t> packed;
  packed.reserve(node.edges.size());
  for (const Edge& e : node.edges) {
    uint64_t a = node.LabelOf(e.first);
    uint64_t b = node.LabelOf(e.second);
    if (a > b) std::swap(a, b);
    packed.push_back((a << 32) | b);
  }
  std::sort(packed.begin(), packed.end());
  form.insert(form.end(), packed.begin(), packed.end());
  return form;
}

// Shared tail of the two CombineCL paths (fresh IR run vs verified cache
// hit), operating on the leaf's LOCAL canonical images so both paths
// produce bit-identical labels.
// Order: (color, gamma* position) — Algorithm 4 line 3.
void AssignLeafLabelsFromImages(AutoTreeNode* node,
                                std::span<const uint32_t> colors,
                                std::span<const VertexId> local_images) {
  const size_t k = node->vertices.size();
  std::vector<std::pair<uint64_t, VertexId>> keyed;
  keyed.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    const VertexId v = node->vertices[i];
    keyed.emplace_back(
        (static_cast<uint64_t>(colors[v]) << 32) | local_images[i], v);
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<VertexId> sorted;
  sorted.reserve(k);
  for (const auto& [key, v] : keyed) sorted.push_back(v);
  AssignLabelsFromSortedVertices(node, colors, sorted);
}

// Lifts local automorphism generators (moved points on 0..k-1, discovery
// order) to global sparse automorphisms via the leaf's sorted vertex list.
void LiftLeafGenerators(
    AutoTreeNode* node,
    std::span<const std::vector<std::pair<VertexId, VertexId>>> local_moves) {
  node->leaf_generators.clear();
  node->leaf_generators.reserve(local_moves.size());
  for (const auto& moves : local_moves) {
    SparseAut lifted;
    lifted.moves.reserve(moves.size());
    for (const auto& [local, image] : moves) {
      lifted.moves.emplace_back(node->vertices[local],
                                node->vertices[image]);
    }
    if (!lifted.IsIdentity()) {
      node->leaf_generators.push_back(std::move(lifted));
    }
  }
}

RunOutcome CombineCL(AutoTreeNode* node, std::span<const uint32_t> colors,
                     const IrOptions& leaf_options, IrStats* aggregate_stats,
                     CertCache* cache) {
  const size_t k = node->vertices.size();
  DVICL_DCHECK_GE(k, 2u);

  // Fault-injection site: fail the leaf before the cache probe or IR
  // search touches anything; the node stays unlabeled, the run unwinds.
  if (DVICL_FAILPOINT(failpoint::sites::kCombineCl)) {
    return RunOutcome::kInternalFault;
  }

  // Lower the leaf to a local graph on 0..k-1 (vertices are sorted, so
  // local ids follow the sorted order).
  std::unordered_map<VertexId, VertexId> local_id;
  local_id.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    local_id.emplace(node->vertices[i], static_cast<VertexId>(i));
  }
  std::vector<Edge> local_edges;
  local_edges.reserve(node->edges.size());
  for (const Edge& e : node->edges) {
    local_edges.emplace_back(local_id.at(e.first), local_id.at(e.second));
  }
  Graph local_graph =
      Graph::FromEdges(static_cast<VertexId>(k), std::move(local_edges));

  std::vector<uint32_t> local_colors(k);
  for (size_t i = 0; i < k; ++i) local_colors[i] = colors[node->vertices[i]];

  uint64_t cache_key = 0;
  if (cache != nullptr) {
    obs::TraceSpan probe_span(leaf_options.trace, "cert_cache.probe",
                              "cache");
    probe_span.AddArg("n", k);
    cache_key = CertCache::KeyOf(local_graph, local_colors,
                                 leaf_options.arena);
    if (std::shared_ptr<const CachedLeaf> hit =
            cache->Lookup(cache_key, local_graph, local_colors)) {
      probe_span.AddArg("hit", 1);
      // Verified reuse: the cached entry's input equals this leaf's local
      // colored graph exactly, and the IR backend is deterministic, so
      // composing the cached local result with the local->global vertex
      // correspondence reproduces the search's output bit for bit.
      AssignLeafLabelsFromImages(node, colors, hit->canonical_images);
      LiftLeafGenerators(node, hit->generator_moves);
      return RunOutcome::kCompleted;
    }
    probe_span.AddArg("hit", 0);
  }

  IrResult ir;
  {
    // The initial leaf coloring is transient (the IR run clones it into its
    // own frame immediately); scope its frame tightly so the IR search
    // starts from the pre-leaf watermark.
    ArenaFrame coloring_frame(leaf_options.arena);
    Coloring local_coloring =
        Coloring::FromLabels(local_colors, leaf_options.arena);
    ir = IrCanonicalLabeling(local_graph, local_coloring, leaf_options);
  }
  if (aggregate_stats != nullptr) aggregate_stats->MergeFrom(ir.stats);
  if (!ir.completed()) return ir.outcome;

  std::vector<VertexId> local_images(k);
  for (size_t i = 0; i < k; ++i) {
    local_images[i] = ir.canonical_labeling(static_cast<VertexId>(i));
  }
  std::vector<std::vector<std::pair<VertexId, VertexId>>> local_moves;
  local_moves.reserve(ir.automorphism_generators.size());
  for (const Permutation& gen : ir.automorphism_generators) {
    std::vector<std::pair<VertexId, VertexId>> moves;
    for (VertexId local = 0; local < gen.Size(); ++local) {
      if (gen(local) != local) moves.emplace_back(local, gen(local));
    }
    local_moves.push_back(std::move(moves));
  }

  AssignLeafLabelsFromImages(node, colors, local_images);
  LiftLeafGenerators(node, local_moves);

  // Publication is additionally gated on the run-wide cancel flag: once
  // any sibling aborted the run, nothing computed under it may feed a
  // cache shared across runs (pollution guard — the entry itself would be
  // correct, but the contract is that aborted runs leave no trace).
  if (cache != nullptr &&
      !(leaf_options.cancel != nullptr &&
        leaf_options.cancel->load(std::memory_order_relaxed))) {
    CachedLeaf entry;
    entry.num_vertices = static_cast<VertexId>(k);
    entry.edges = local_graph.Edges();
    entry.colors = std::move(local_colors);
    entry.canonical_images = std::move(local_images);
    entry.generator_moves = std::move(local_moves);
    cache->Insert(cache_key, std::move(entry));
  }
  return RunOutcome::kCompleted;
}

void CombineST(AutoTreeNode* node, std::span<AutoTreeNode* const> children,
               std::span<const uint32_t> colors,
               std::vector<uint32_t>* form_order,
               std::vector<SparseAut>* sibling_generators) {
  // Sort children by canonical form (Algorithm 5 line 1).
  std::vector<NodeForm> forms(children.size());
  for (size_t i = 0; i < children.size(); ++i) {
    forms[i] = ComputeNodeForm(*children[i]);
  }
  std::vector<size_t> order(children.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&forms](size_t a, size_t b) { return forms[a] < forms[b]; });

  std::vector<uint32_t> sym_class;
  form_order->clear();
  form_order->reserve(order.size());
  sym_class.reserve(order.size());
  uint32_t current_class = 0;
  for (size_t rank = 0; rank < order.size(); ++rank) {
    const size_t i = order[rank];
    if (rank > 0 && forms[i] != forms[order[rank - 1]]) ++current_class;
    form_order->push_back(static_cast<uint32_t>(i));
    sym_class.push_back(current_class);
    children[i]->form_hash = HashNodeForm(forms[i]);

    // Equal adjacent forms: the label-matching bijection between the two
    // sibling subgraphs extends (by identity) to an automorphism of (G, pi)
    // — the divide axes guarantee their attachments are color-determined.
    if (rank > 0 && forms[i] == forms[order[rank - 1]]) {
      const AutoTreeNode& a = *children[order[rank - 1]];
      const AutoTreeNode& b = *children[i];
      std::unordered_map<VertexId, VertexId> b_by_label;
      b_by_label.reserve(b.vertices.size());
      for (size_t j = 0; j < b.vertices.size(); ++j) {
        b_by_label.emplace(b.labels[j], b.vertices[j]);
      }
      SparseAut swap;
      swap.moves.reserve(2 * a.vertices.size());
      for (size_t j = 0; j < a.vertices.size(); ++j) {
        const VertexId va = a.vertices[j];
        const VertexId vb = b_by_label.at(a.labels[j]);
        if (va != vb) {
          swap.moves.emplace_back(va, vb);
          swap.moves.emplace_back(vb, va);
        }
      }
      std::sort(swap.moves.begin(), swap.moves.end());
      if (!swap.IsIdentity()) sibling_generators->push_back(std::move(swap));
    }
  }
  node->child_sym_class = std::move(sym_class);

  // Label the node's vertices: same-colored vertices ordered first by the
  // owning child's rank in canonical-form order, then by the child-local
  // label (Algorithm 5 lines 2-5).
  struct Key {
    uint32_t color;
    uint32_t child_rank;
    VertexId local_label;
    VertexId vertex;
  };
  std::vector<Key> keyed;
  keyed.reserve(node->vertices.size());
  for (size_t rank = 0; rank < children.size(); ++rank) {
    const AutoTreeNode& child = *children[(*form_order)[rank]];
    for (size_t j = 0; j < child.vertices.size(); ++j) {
      keyed.push_back(Key{colors[child.vertices[j]],
                          static_cast<uint32_t>(rank), child.labels[j],
                          child.vertices[j]});
    }
  }
  std::sort(keyed.begin(), keyed.end(), [](const Key& x, const Key& y) {
    if (x.color != y.color) return x.color < y.color;
    if (x.child_rank != y.child_rank) return x.child_rank < y.child_rank;
    return x.local_label < y.local_label;
  });
  std::vector<VertexId> sorted;
  sorted.reserve(keyed.size());
  for (const Key& key : keyed) sorted.push_back(key.vertex);
  AssignLabelsFromSortedVertices(node, colors, sorted);
}

}  // namespace dvicl
