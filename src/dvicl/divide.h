#ifndef DVICL_DVICL_DIVIDE_H_
#define DVICL_DVICL_DIVIDE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace dvicl {

// A vertex-disjoint piece produced by a divide step: one child node of the
// AutoTree under construction.
struct GraphPiece {
  std::vector<VertexId> vertices;  // sorted global ids
  std::vector<Edge> edges;         // canonical orientation, sorted
};

// Scratch arrays sized to the full graph, reused across divide calls so a
// node of size k costs O(k + edges) regardless of |V(G)|. All arrays are
// restored to their idle state before each call returns.
class DivideWorkspace {
 public:
  explicit DivideWorkspace(VertexId n)
      : dsu_parent(n), color_count(n, 0), piece_index(n, kUnassigned) {}

  static constexpr uint32_t kUnassigned = 0xffffffffu;

  std::vector<VertexId> dsu_parent;
  std::vector<uint32_t> color_count;  // keyed by color offset
  std::vector<uint32_t> piece_index;  // keyed by DSU root vertex
};

// DivideI (Algorithm 2): isolates every singleton cell of pi_g as a
// one-vertex child and splits the remainder into connected components.
// Removing a singleton's edges preserves Aut(g, pi_g) because edges
// incident to a singleton cell are determined by colors alone in an
// equitable coloring (a special case of Lemma 6.3).
//
// Returns true and fills *pieces (>= 2 entries) iff the node divides.
bool DivideI(std::span<const VertexId> vertices,
             const std::vector<Edge>& edges, std::span<const uint32_t> colors,
             DivideWorkspace* workspace, std::vector<GraphPiece>* pieces);

// DivideS (Algorithm 3): removes all edges inside a cell that induces a
// clique and all edges between two cells that form a complete bipartite
// graph (Theorem 6.4), then splits into connected components.
//
// Returns true and fills *pieces iff the removal disconnects the node.
// When edges were removed but the node stays connected, *edges is replaced
// by the reduced edge set (the reduction is canonical, Lemma 6.5, so the
// leaf labeling may operate on it) and false is returned.
bool DivideS(std::span<const VertexId> vertices, std::vector<Edge>* edges,
             std::span<const uint32_t> colors, DivideWorkspace* workspace,
             std::vector<GraphPiece>* pieces);

}  // namespace dvicl

#endif  // DVICL_DVICL_DIVIDE_H_
