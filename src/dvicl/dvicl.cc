#include "dvicl/dvicl.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <span>
#include <utility>

#include "common/arena.h"
#include "common/check.h"
#include "common/failpoint.h"
#include "common/memory_budget.h"
#include "common/mutex.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "common/task_pool.h"
#include "dvicl/combine.h"
#include "dvicl/divide.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "refine/refiner.h"

namespace dvicl {

namespace {

// CI matrix override: DVICL_CERT_CACHE=1 force-enables the per-run
// canonical-form cache regardless of DviclOptions::cert_cache, so the
// whole test suite can run as a cache-on leg without touching every call
// site. Only "1" has an effect — there is deliberately no force-OFF value,
// so tests that explicitly enable the cache keep meaning what they say.
bool CertCacheForcedOn() {
  static const bool forced = [] {
    const char* value = std::getenv("DVICL_CERT_CACHE");
    return value != nullptr && value[0] == '1';
  }();
  return forced;
}

// CI matrix override for the arena switch. Unlike the cert-cache override
// this is read FRESH on every run (no static caching) and supports both
// directions — DVICL_ARENA=0 forces heap mode, DVICL_ARENA=1 forces arena
// mode, anything else defers to DviclOptions::arena — so one test process
// can exercise and compare both legs by setting/unsetting the variable.
bool ArenaEnabled(const DviclOptions& options) {
  const char* value = std::getenv("DVICL_ARENA");
  if (value != nullptr && value[0] != '\0' && value[1] == '\0') {
    if (value[0] == '0') return false;
    if (value[0] == '1') return true;
  }
  return options.arena;
}

// DVICL_DCHECK: end-to-end verification of a completed run, at the DviCL
// root. Re-derives the certificate through an explicit relabeling of the
// input (instead of MakeCertificate's label-indirection path) and checks
// byte equality, and verifies every emitted generator really is a
// color-preserving automorphism of (G, pi) — the two outputs whose silent
// corruption would turn into wrong isomorphism verdicts downstream.
void DcheckVerifyRootResult(const Graph& graph, const DviclResult& result) {
#ifdef DVICL_DCHECK_ENABLED
  const Permutation& gamma = result.canonical_labeling;
  VerifyPermutation(gamma);
  DVICL_DCHECK_EQ(gamma.Size(), graph.NumVertices());

  // Certificate cross-check: materialize (G, pi)^gamma and certify it under
  // the identity labeling; the result must equal the certificate computed
  // from (G, pi, gamma) directly.
  const VertexId n = graph.NumVertices();
  std::vector<Edge> relabeled_edges;
  relabeled_edges.reserve(graph.Edges().size());
  for (const Edge& e : graph.Edges()) {
    relabeled_edges.emplace_back(gamma(e.first), gamma(e.second));
  }
  Graph relabeled = Graph::FromEdges(n, std::move(relabeled_edges));
  std::vector<uint32_t> relabeled_colors(n);
  for (VertexId v = 0; v < n; ++v) {
    relabeled_colors[gamma(v)] = result.colors[v];
  }
  std::vector<VertexId> identity(n);
  std::iota(identity.begin(), identity.end(), 0);
  DVICL_DCHECK(result.certificate ==
               MakeCertificate(relabeled, relabeled_colors, identity))
      << "certificate does not match the explicitly relabeled graph";

  for (const SparseAut& gen : result.generators) {
    DVICL_DCHECK(IsColorPreservingAutomorphism(
        graph, result.colors, gen.ToDense(graph.NumVertices())))
        << "emitted generator is not a color-preserving automorphism";
  }

  VerifyAutoTree(result.tree, result.colors);
#else
  (void)graph;
  (void)result;
#endif
}

// One node of the AutoTree under construction. Children are owned in piece
// (creation) order; global node ids do not exist yet — they are assigned by
// a deterministic flattening pass once the whole tree is built, which is
// what makes the result independent of task scheduling.
struct BuildNode {
  AutoTreeNode node;
  std::vector<std::unique_ptr<BuildNode>> kids;  // piece order
  // rank -> index into `kids` in canonical-form order (set by CombineST).
  std::vector<uint32_t> form_order;
  // Generators of Aut restricted to this subtree, in the canonical emission
  // order: children in reverse piece order (each post-order), then this
  // node's sibling swaps. Root order therefore matches the legacy
  // sequential traversal exactly.
  std::vector<SparseAut> subtree_generators;
};

// Post-order construction of the AutoTree (procedure cl of Algorithm 1).
// Each task builds one subtree with an explicit iterative stack (adversarial
// inputs produce deep divide chains that must not recurse natively); large
// sibling subtrees are dispatched to a work-stealing pool and joined in
// fixed sibling order, so the output is bit-identical for any thread count.
class DviclBuilder {
 public:
  DviclBuilder(const Graph& graph, const DviclOptions& options)
      : graph_(graph),
        options_(options),
        memory_budget_(options.memory_limit_mib) {}

  DviclResult Run(const Coloring& initial) {
    DviclResult result;
    Stopwatch total;
    // For the failpoint.triggered metric: triggers are global cumulative
    // counters, so export this run's delta.
    const uint64_t triggers_before = failpoint::TotalTriggers();
    obs::TraceSpan run_span(options_.trace, "dvicl.run");
    run_span.AddArg("n", graph_.NumVertices());

    arena_enabled_ = ArenaEnabled(options_);

    // Algorithm 1 lines 1-2: equitable refinement and color offsets. The
    // working coloring and the refinement scratch are carved from this
    // thread's arena (frame-rewound before the block exits); only the
    // color-offset array escapes, as a heap copy.
    Stopwatch phase;
    const uint64_t root_splitters_before = ThreadRefineSplitters();
    const uint64_t root_splits_before = ThreadRefineCellSplits();
    const uint64_t root_allocs_before = ThreadAllocCount();
    const uint64_t root_alloc_bytes_before = ThreadAllocBytes();
    {
      obs::TraceSpan refine_span(options_.trace, "dvicl.refine_root",
                                 "refine");
      Arena* arena = arena_enabled_ ? &ThreadScratchArena() : nullptr;
      ArenaFrame frame(arena);
      Coloring pi(initial, arena);
      RefineToEquitable(graph_, &pi);
      const std::span<const uint32_t> offsets = pi.ColorOffsetsView();
      result.colors.assign(offsets.begin(), offsets.end());
    }
    result.stats.refine_seconds = phase.ElapsedSeconds();
    result.stats.refine_splitters =
        ThreadRefineSplitters() - root_splitters_before;
    result.stats.refine_cell_splits =
        ThreadRefineCellSplits() - root_splits_before;
    result.stats.alloc_count = ThreadAllocCount() - root_allocs_before;
    result.stats.alloc_bytes = ThreadAllocBytes() - root_alloc_bytes_before;
    colors_ = result.colors;

    const unsigned threads = options_.num_threads == 0
                                 ? TaskPool::DefaultThreads()
                                 : options_.num_threads;
    if (threads > 1) {
      pool_ = std::make_unique<TaskPool>(threads);
      pool_->SetTrace(options_.trace);
    }
    workspaces_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
      workspaces_.emplace_back(graph_.NumVertices());
    }

    leaf_options_.preset = options_.leaf_backend;
    leaf_options_.max_tree_nodes = options_.leaf_max_tree_nodes;
    leaf_options_.time_limit_seconds = options_.time_limit_seconds;
    leaf_options_.cancel = cancel_.Flag();
    leaf_options_.memory_budget = &memory_budget_;
    leaf_options_.trace = options_.trace;

    // Canonical-form cache: a caller-owned shared cache wins; otherwise a
    // per-run cache is created when requested by options or forced on by
    // the DVICL_CERT_CACHE=1 test-matrix override.
    cache_ = options_.shared_cert_cache;
    if (cache_ == nullptr &&
        (options_.cert_cache || CertCacheForcedOn())) {
      CertCacheConfig config;
      config.max_entries = options_.cert_cache_max_entries;
      config.max_bytes = options_.cert_cache_max_bytes;
      owned_cache_ = std::make_unique<CertCache>(config);
      cache_ = owned_cache_.get();
    }
    const CertCacheStats cache_before =
        cache_ != nullptr ? cache_->Stats() : CertCacheStats{};

    // Root node covers all of G.
    BuildNode root;
    root.node.vertices.resize(graph_.NumVertices());
    std::iota(root.node.vertices.begin(), root.node.vertices.end(), 0);
    root.node.edges = graph_.Edges();

    watch_.Restart();
    BuildSubtree(&root);
    const TaskPoolStats pool_stats =
        pool_ != nullptr ? pool_->GetStats() : TaskPoolStats{};
    pool_.reset();  // workers are idle; join them before reading results

    {
      // Workers joined at pool_.reset(); the lock satisfies the analysis
      // and costs one uncontended acquire per run.
      MutexLock lock(stats_mu_);
      result.stats.MergeFrom(merged_);
    }
    result.generators = std::move(root.subtree_generators);

    // The fault record is settled: every worker joined at pool_.reset().
    RunOutcome outcome;
    const BuildNode* fault_node = nullptr;
    {
      MutexLock lock(fault_mu_);
      outcome = fault_.cause;
      fault_node = fault_.node;
      result.fault_detail = std::move(fault_.detail);
    }
    Flatten(&root, &result.tree, fault_node, &result.fault_node_id);

    // Structure statistics (Tables 3/4); partial when the run aborted.
    result.stats.autotree_nodes = result.tree.NumNodes();
    result.stats.singleton_leaves = result.tree.NumSingletonLeaves();
    result.stats.nonsingleton_leaves = result.tree.NumNonSingletonLeaves();
    result.stats.depth = result.tree.Depth();

    if (cache_ != nullptr) {
      // Counters as this run's deltas (a shared cache accumulates across
      // runs); occupancy as-is.
      const CertCacheStats now = cache_->Stats();
      result.stats.cert_cache.hits = now.hits - cache_before.hits;
      result.stats.cert_cache.misses = now.misses - cache_before.misses;
      result.stats.cert_cache.collisions =
          now.collisions - cache_before.collisions;
      result.stats.cert_cache.insertions =
          now.insertions - cache_before.insertions;
      result.stats.cert_cache.evictions =
          now.evictions - cache_before.evictions;
      result.stats.cert_cache.entries = now.entries;
      result.stats.cert_cache.bytes = now.bytes;
    }

    if (outcome == RunOutcome::kCompleted && cancel_.Cancelled()) {
      // Safety net: every Cancel() in the build goes through RecordAbort,
      // but an externally raised flag would land here.
      outcome = RunOutcome::kCancelled;
      result.fault_detail = "cooperative cancel flag was raised";
    }
    if (outcome == RunOutcome::kCompleted &&
        options_.time_limit_seconds > 0.0 &&
        total.ElapsedSeconds() > options_.time_limit_seconds) {
      outcome = RunOutcome::kDeadline;
      result.fault_detail =
          "time_limit_seconds=" + std::to_string(options_.time_limit_seconds) +
          " exceeded at the root";
    }
    result.outcome = outcome;
    result.stats.wall_seconds = total.ElapsedSeconds();
    if (options_.metrics != nullptr) {
      ExportMetrics(result.stats, pool_stats, threads, outcome,
                    failpoint::TotalTriggers() - triggers_before);
    }
    if (!result.completed()) return result;

    // Root labels form the canonical labeling of (G, pi).
    const AutoTreeNode& tree_root = result.tree.Root();
    std::vector<VertexId> image(graph_.NumVertices());
    for (size_t i = 0; i < tree_root.vertices.size(); ++i) {
      image[tree_root.vertices[i]] = tree_root.labels[i];
    }
    result.canonical_labeling = Permutation(std::move(image));
    result.certificate =
        MakeCertificate(graph_, result.colors,
                        result.canonical_labeling.ImageArray());

    // leaf_of index for SSM.
    auto& leaf_of = result.tree.MutableLeafOf();
    leaf_of.assign(graph_.NumVertices(), 0);
    for (uint32_t id = 0; id < result.tree.NumNodes(); ++id) {
      const AutoTreeNode& node = result.tree.Node(id);
      if (!node.is_leaf) continue;
      for (VertexId v : node.vertices) leaf_of[v] = id;
    }
    DcheckVerifyRootResult(graph_, result);
    return result;
  }

 private:
  // Builds the subtree rooted at `root`: divides iteratively, dispatches
  // large sibling subtrees to the pool, and combines each internal node
  // once its children (local and dispatched) are done. Failure is signaled
  // through cancel_, not a return value, so concurrent subtree tasks
  // observe it promptly.
  void BuildSubtree(BuildNode* root) {
    DviclStats local;
    struct Frame {
      BuildNode* b;
      int phase;  // 0 = divide, 1 = combine
      // Outstanding dispatched child subtrees, joined before combining.
      std::unique_ptr<TaskGroup> group;
    };
    std::vector<Frame> stack;
    stack.push_back({root, 0, nullptr});
    DivideWorkspace& ws =
        workspaces_[pool_ != nullptr ? pool_->ThreadIndex() : 0];

    while (!stack.empty()) {
      Frame frame = std::move(stack.back());
      stack.pop_back();
      BuildNode* b = frame.b;

      if (options_.time_limit_seconds > 0.0 &&
          watch_.ElapsedSeconds() > options_.time_limit_seconds) {
        RecordAbort(RunOutcome::kDeadline, b,
                    "time_limit_seconds=" +
                        std::to_string(options_.time_limit_seconds) +
                        " exceeded during the AutoTree build");
      }
      if (memory_budget_.Exceeded()) {
        RecordAbort(RunOutcome::kMemoryBudget, b,
                    "memory_limit_mib=" +
                        std::to_string(options_.memory_limit_mib) +
                        " exceeded during the AutoTree build");
      }
      if (cancel_.Cancelled()) {
        // Keep draining so every frame's group is joined (the TaskGroup
        // destructor waits); dispatched tasks see the flag and unwind.
        continue;
      }

      if (frame.phase == 1) {
        if (frame.group != nullptr) {
          try {
            frame.group->Wait();
          } catch (const std::exception& e) {
            // A dispatched child subtree task threw (in practice only the
            // task_pool.run_task failpoint; task bodies signal through
            // cancel_, not exceptions). The group is settled — Wait only
            // rethrows after every task finished — so draining stays safe.
            RecordAbort(RunOutcome::kInternalFault, b, e.what());
            continue;
          }
        }
        if (cancel_.Cancelled()) continue;
        if (DVICL_FAILPOINT(failpoint::sites::kCombineSt)) {
          RecordAbort(RunOutcome::kInternalFault, b,
                      "injected fault at dvicl.combine_st");
          continue;
        }
        Stopwatch combine_watch;
        obs::TraceSpan combine_span(options_.trace, "dvicl.combine_st",
                                    "combine");
        combine_span.AddArg("n", b->node.vertices.size());
        combine_span.AddArg("kids", b->kids.size());
        // Fixed join order: generators of the child subtrees in reverse
        // piece order (matching the legacy stack traversal), then this
        // node's sibling swaps appended by CombineST.
        for (size_t i = b->kids.size(); i-- > 0;) {
          auto& kid_gens = b->kids[i]->subtree_generators;
          b->subtree_generators.insert(
              b->subtree_generators.end(),
              std::make_move_iterator(kid_gens.begin()),
              std::make_move_iterator(kid_gens.end()));
          kid_gens.clear();
        }
        std::vector<AutoTreeNode*> child_nodes;
        child_nodes.reserve(b->kids.size());
        for (const auto& kid : b->kids) child_nodes.push_back(&kid->node);
        CombineST(&b->node, child_nodes, colors_, &b->form_order,
                  &b->subtree_generators);
        const double combine_seconds = combine_watch.ElapsedSeconds();
        local.combine_seconds += combine_seconds;
        b->node.combine_seconds = static_cast<float>(combine_seconds);
        continue;
      }

      AutoTreeNode& node = b->node;
      // Base case: singleton leaf, C(g) = (pi(v), pi(v)). (An empty root —
      // the zero-vertex graph — is also a trivial leaf.)
      if (node.vertices.size() <= 1) {
        node.is_leaf = true;
        if (!node.vertices.empty()) {
          node.labels = {colors_[node.vertices[0]]};
        }
        continue;
      }

      // Divide phase.
      if (DVICL_FAILPOINT(failpoint::sites::kDivide)) {
        RecordAbort(RunOutcome::kInternalFault, b,
                    "injected fault at dvicl.divide");
        continue;
      }
      Stopwatch divide_watch;
      std::vector<GraphPiece> pieces;
      bool divided = false;
      bool by_s = false;
      {
        obs::TraceSpan divide_span(options_.trace, "dvicl.divide", "divide");
        divide_span.AddArg("n", node.vertices.size());
        if (options_.enable_divide_i) {
          divided = DivideI(node.vertices, node.edges, colors_, &ws, &pieces);
        }
        if (!divided && options_.enable_divide_s) {
          divided =
              DivideS(node.vertices, &node.edges, colors_, &ws, &pieces);
          by_s = divided;
        }
        divide_span.AddArg("pieces", pieces.size());
      }
      const double divide_seconds = divide_watch.ElapsedSeconds();
      local.divide_seconds += divide_seconds;
      node.divide_seconds = static_cast<float>(divide_seconds);

      if (!divided) {
        // Non-singleton leaf: CombineCL via the IR backend.
        node.is_leaf = true;
        Stopwatch combine_watch;
        obs::TraceSpan leaf_span(options_.trace, "dvicl.combine_cl",
                                 "combine");
        leaf_span.AddArg("n", node.vertices.size());
        const uint64_t ir_nodes_before = local.leaf_ir.tree_nodes;
        const uint64_t splitters_before = ThreadRefineSplitters();
        const uint64_t splits_before = ThreadRefineCellSplits();
        const uint64_t allocs_before = ThreadAllocCount();
        const uint64_t alloc_bytes_before = ThreadAllocBytes();
        // The leaf search borrows this worker's scratch arena; CombineCL
        // opens a frame over it, so the watermark is restored before the
        // next leaf on this thread (memory retained, not freed).
        IrOptions leaf_opts = leaf_options_;
        leaf_opts.arena = arena_enabled_ ? &ThreadScratchArena() : nullptr;
        const RunOutcome leaf_outcome = CombineCL(
            &node, colors_, leaf_opts, &local.leaf_ir, cache_);
        // The leaf IR search runs entirely on this thread, so the
        // thread-local refinement counters attribute its work exactly.
        local.refine_splitters += ThreadRefineSplitters() - splitters_before;
        local.refine_cell_splits += ThreadRefineCellSplits() - splits_before;
        local.alloc_count += ThreadAllocCount() - allocs_before;
        local.alloc_bytes += ThreadAllocBytes() - alloc_bytes_before;
        node.leaf_ir_nodes = local.leaf_ir.tree_nodes - ir_nodes_before;
        leaf_span.AddArg("ir_nodes", node.leaf_ir_nodes);
        const double leaf_seconds = combine_watch.ElapsedSeconds();
        local.combine_seconds += leaf_seconds;
        node.combine_seconds = static_cast<float>(leaf_seconds);
        if (leaf_outcome != RunOutcome::kCompleted) {
          if (leaf_outcome == RunOutcome::kCancelled) {
            // The leaf stopped because some OTHER site already aborted the
            // run (it raised the flag before recording); don't claim the
            // fault for this node.
            cancel_.Cancel();
          } else {
            RecordAbort(leaf_outcome, b, LeafAbortDetail(leaf_outcome));
          }
          continue;
        }
        // Leaf automorphisms are automorphisms of (G, pi) by identity
        // extension (Theorem 6.4 / axis argument).
        b->subtree_generators = node.leaf_generators;
        continue;
      }

      // Create children; combine after all of them are built.
      node.divided_by_s = by_s;
      b->kids.reserve(pieces.size());
      for (GraphPiece& piece : pieces) {
        auto kid = std::make_unique<BuildNode>();
        kid->node.vertices = std::move(piece.vertices);
        kid->node.edges = std::move(piece.edges);
        b->kids.push_back(std::move(kid));
      }

      // Dispatch every sibling subtree above the granularity floor except
      // the largest, which this thread keeps: a divide chain (one big
      // child per level) then stays entirely inside this iterative loop
      // instead of growing a native Wait-help recursion per level.
      Frame combine_frame{b, 1, nullptr};
      std::vector<bool> dispatched(b->kids.size(), false);
      if (pool_ != nullptr) {
        size_t largest = 0;
        for (size_t i = 1; i < b->kids.size(); ++i) {
          if (b->kids[i]->node.vertices.size() >
              b->kids[largest]->node.vertices.size()) {
            largest = i;
          }
        }
        for (size_t i = 0; i < b->kids.size(); ++i) {
          if (i == largest || b->kids[i]->node.vertices.size() <
                                  options_.parallel_grain_vertices) {
            continue;
          }
          if (combine_frame.group == nullptr) {
            combine_frame.group = std::make_unique<TaskGroup>(pool_.get());
          }
          BuildNode* kid = b->kids[i].get();
          combine_frame.group->Submit([this, kid] { BuildSubtree(kid); });
          dispatched[i] = true;
        }
      }
      stack.push_back(std::move(combine_frame));
      for (size_t i = 0; i < b->kids.size(); ++i) {
        if (!dispatched[i]) stack.push_back({b->kids[i].get(), 0, nullptr});
      }
    }

    MergeStats(local);
  }

  void MergeStats(const DviclStats& local) {
    MutexLock lock(stats_mu_);
    merged_.MergeFrom(local);
  }

  // First-writer-wins abort record + cooperative cancel. Concurrent
  // subtree tasks may all hit budgets once one of them faulted; the first
  // recorded cause (and its node) is the one the run reports.
  void RecordAbort(RunOutcome cause, const BuildNode* node,
                   std::string detail) {
    bool first = false;
    {
      MutexLock lock(fault_mu_);
      if (fault_.cause == RunOutcome::kCompleted) {
        fault_.cause = cause;
        fault_.node = node;
        fault_.detail = std::move(detail);
        first = true;
      }
    }
    cancel_.Cancel();
    if (first && options_.trace != nullptr) {
      options_.trace->AddInstant(
          "dvicl.abort", "dvicl",
          {{"cause", static_cast<uint64_t>(cause)}});
    }
  }

  std::string LeafAbortDetail(RunOutcome cause) const {
    switch (cause) {
      case RunOutcome::kNodeBudget:
        return "leaf IR search exceeded max_tree_nodes=" +
               std::to_string(options_.leaf_max_tree_nodes);
      case RunOutcome::kDeadline:
        return "leaf IR search exceeded time_limit_seconds=" +
               std::to_string(options_.time_limit_seconds);
      case RunOutcome::kMemoryBudget:
        return "leaf IR search exceeded its memory budget (memory_limit_mib=" +
               std::to_string(options_.memory_limit_mib) +
               ", or the live-coloring depth guard)";
      case RunOutcome::kInternalFault:
        return "injected fault in leaf combine (CombineCL)";
      default:
        return std::string("leaf combine aborted: ") + RunOutcomeName(cause);
    }
  }

  // Renders the finished run's statistics into the caller's registry. One
  // registry typically accumulates several runs (a whole bench table), so
  // every value is either a monotone counter (Add) or a last-run gauge.
  void ExportMetrics(const DviclStats& stats, const TaskPoolStats& pool,
                     unsigned threads, RunOutcome outcome,
                     uint64_t failpoint_triggers) const {
    obs::MetricsRegistry* m = options_.metrics;
    m->GetCounter("dvicl.runs")->Add(1);
    if (outcome != RunOutcome::kCompleted) {
      m->GetCounter("dvicl.incomplete_runs")->Add(1);
      // Abort taxonomy: a total plus one counter per cause, so a fleet
      // dashboard can alert on kInternalFault separately from deadline
      // pressure.
      m->GetCounter("dvicl.aborts.total")->Add(1);
      m->GetCounter(std::string("dvicl.aborts.") + RunOutcomeName(outcome))
          ->Add(1);
    }
    if (failpoint_triggers != 0) {
      m->GetCounter("failpoint.triggered")->Add(failpoint_triggers);
    }
    m->GetCounter("dvicl.autotree_nodes")->Add(stats.autotree_nodes);
    m->GetCounter("dvicl.singleton_leaves")->Add(stats.singleton_leaves);
    m->GetCounter("dvicl.nonsingleton_leaves")
        ->Add(stats.nonsingleton_leaves);
    m->GetHistogram("dvicl.tree_depth")->Record(stats.depth);
    m->GetGauge("dvicl.last_wall_seconds")->Set(stats.wall_seconds);
    m->GetGauge("dvicl.last_cpu_refine_seconds")->Set(stats.refine_seconds);
    m->GetGauge("dvicl.last_cpu_divide_seconds")->Set(stats.divide_seconds);
    m->GetGauge("dvicl.last_cpu_combine_seconds")
        ->Set(stats.combine_seconds);
    m->GetGauge("dvicl.last_threads")->Set(threads);

    m->GetCounter("refine.splitters")->Add(stats.refine_splitters);
    m->GetCounter("refine.cell_splits")->Add(stats.refine_cell_splits);

    // Hot-path allocator traffic (common/arena.h): the regression signal
    // the alloc-regression harness and the bench JSON report on.
    m->GetCounter("dvicl.alloc.count")->Add(stats.alloc_count);
    m->GetCounter("dvicl.alloc.bytes")->Add(stats.alloc_bytes);
    m->GetGauge("dvicl.arena")->Set(arena_enabled_ ? 1.0 : 0.0);

    m->GetCounter("ir.tree_nodes")->Add(stats.leaf_ir.tree_nodes);
    m->GetCounter("ir.leaves")->Add(stats.leaf_ir.leaves);
    m->GetCounter("ir.automorphisms_found")
        ->Add(stats.leaf_ir.automorphisms_found);
    m->GetCounter("ir.pruned_nonref")->Add(stats.leaf_ir.pruned_nonref);
    m->GetCounter("ir.orbit_prunes")->Add(stats.leaf_ir.orbit_prunes);
    m->GetCounter("ir.backjumps")->Add(stats.leaf_ir.backjumps);

    if (cache_ != nullptr) {
      m->GetCounter("cert_cache.hits")->Add(stats.cert_cache.hits);
      m->GetCounter("cert_cache.misses")->Add(stats.cert_cache.misses);
      m->GetCounter("cert_cache.collisions")
          ->Add(stats.cert_cache.collisions);
      m->GetCounter("cert_cache.evictions")->Add(stats.cert_cache.evictions);
      m->GetGauge("cert_cache.bytes")
          ->Set(static_cast<double>(stats.cert_cache.bytes));
      m->GetGauge("cert_cache.entries")
          ->Set(static_cast<double>(stats.cert_cache.entries));
    }

    m->GetCounter("task_pool.tasks_queued")->Add(pool.tasks_queued);
    m->GetCounter("task_pool.tasks_inline")->Add(pool.tasks_inline);
    m->GetCounter("task_pool.tasks_run_local")->Add(pool.tasks_run_local);
    m->GetCounter("task_pool.tasks_stolen")->Add(pool.tasks_stolen);
    m->GetHistogram("task_pool.max_deque_depth")
        ->Record(pool.max_deque_depth);

    m->GetGauge("process.peak_rss_mib")->Set(PeakRssMebibytes());
  }

  // Assigns global node ids with the deterministic legacy numbering —
  // children of a node get consecutive ids in piece order, subtrees are
  // expanded depth-first with the last child first — and moves the node
  // contents into the AutoTree. node.children is written in canonical-form
  // order via form_order (or piece order for nodes whose combine never ran
  // because the build was cancelled). `fault_node` (may be null) is the
  // build node the abort record points at; its flattened id is written to
  // *fault_node_id (left untouched when fault_node is not found).
  static void Flatten(BuildNode* root, AutoTree* tree,
                      const BuildNode* fault_node, int32_t* fault_node_id) {
    auto& nodes = tree->MutableNodes();
    nodes.clear();
    nodes.emplace_back(std::move(root->node));
    struct Item {
      BuildNode* b;
      uint32_t id;
    };
    std::vector<Item> stack;
    stack.push_back({root, 0});
    while (!stack.empty()) {
      const Item item = stack.back();
      stack.pop_back();
      if (item.b == fault_node) {
        *fault_node_id = static_cast<int32_t>(item.id);
      }
      if (item.b->kids.empty()) continue;
      const uint32_t first = static_cast<uint32_t>(nodes.size());
      const uint32_t child_depth = nodes[item.id].depth + 1;
      for (const auto& kid : item.b->kids) {
        nodes.emplace_back(std::move(kid->node));
        nodes.back().parent = static_cast<int32_t>(item.id);
        nodes.back().depth = child_depth;
      }
      AutoTreeNode& me = nodes[item.id];
      me.children.resize(item.b->kids.size());
      for (size_t rank = 0; rank < me.children.size(); ++rank) {
        const uint32_t piece_index =
            rank < item.b->form_order.size()
                ? item.b->form_order[rank]
                : static_cast<uint32_t>(rank);
        me.children[rank] = first + piece_index;
      }
      for (size_t i = item.b->kids.size(); i-- > 0;) {
        stack.push_back({item.b->kids[i].get(),
                         first + static_cast<uint32_t>(i)});
      }
    }
  }

  const Graph& graph_;
  const DviclOptions options_;
  std::span<const uint32_t> colors_;  // view of DviclResult::colors
  std::unique_ptr<TaskPool> pool_;    // null when building single-threaded
  std::unique_ptr<CertCache> owned_cache_;  // per-run cache when enabled
  CertCache* cache_ = nullptr;  // owned_cache_ or options_.shared_cert_cache
  std::vector<DivideWorkspace> workspaces_;  // one per pool slot
  CancelToken cancel_;
  Stopwatch watch_;
  MemoryBudget memory_budget_;
  IrOptions leaf_options_;
  bool arena_enabled_ = false;  // resolved from options + DVICL_ARENA in Run
  Mutex stats_mu_;
  DviclStats merged_ DVICL_GUARDED_BY(stats_mu_);

  // First abort recorded anywhere in the build (RecordAbort).
  struct FaultRecord {
    RunOutcome cause = RunOutcome::kCompleted;
    const BuildNode* node = nullptr;
    std::string detail;
  };
  Mutex fault_mu_;
  FaultRecord fault_ DVICL_GUARDED_BY(fault_mu_);
};

}  // namespace

DviclResult DviclCanonicalLabeling(const Graph& graph, const Coloring& initial,
                                   const DviclOptions& options) {
  if (initial.NumVertices() != graph.NumVertices()) {
    // Always-on input validation: a mismatched coloring used to trip only
    // the debug DVICL_DCHECK layer and was UB in release builds. Rejected
    // before any search runs; no budget was consumed.
    DviclResult result;
    result.outcome = RunOutcome::kInvalidInput;
    result.fault_detail =
        "initial coloring has " + std::to_string(initial.NumVertices()) +
        " vertices but the graph has " + std::to_string(graph.NumVertices());
    return result;
  }
  DviclBuilder builder(graph, options);
  return builder.Run(initial);
}

bool DviclIsomorphicColored(const Graph& g1,
                            std::span<const uint32_t> labels1,
                            const Graph& g2,
                            std::span<const uint32_t> labels2,
                            const DviclOptions& options, bool* decided) {
  if (decided != nullptr) *decided = true;
  if (g1.NumVertices() != g2.NumVertices() ||
      g1.NumEdges() != g2.NumEdges()) {
    return false;
  }
  // Certificates embed the REFINED color offsets, which are derived from
  // the initial labels but not equal to them; to compare label semantics
  // exactly, re-certify with the initial labels attached. The initial
  // coloring orders cells by ascending label value, so equal label values
  // align across the two graphs — but distinct label values with equal
  // rank would too. Guard by comparing the sorted label multisets first.
  std::vector<uint32_t> sorted1(labels1.begin(), labels1.end());
  std::vector<uint32_t> sorted2(labels2.begin(), labels2.end());
  std::sort(sorted1.begin(), sorted1.end());
  std::sort(sorted2.begin(), sorted2.end());
  if (sorted1 != sorted2) return false;

  DviclResult r1 =
      DviclCanonicalLabeling(g1, Coloring::FromLabels(labels1), options);
  DviclResult r2 =
      DviclCanonicalLabeling(g2, Coloring::FromLabels(labels2), options);
  if (!r1.completed() || !r2.completed()) {
    if (decided != nullptr) *decided = false;
    return false;
  }
  return r1.certificate == r2.certificate;
}

Result<Permutation> DviclFindIsomorphism(const Graph& g1, const Graph& g2,
                                         const DviclOptions& options) {
  if (g1.NumVertices() != g2.NumVertices() ||
      g1.NumEdges() != g2.NumEdges()) {
    return Status::NotFound("graphs differ in size");
  }
  DviclResult r1 =
      DviclCanonicalLabeling(g1, Coloring::Unit(g1.NumVertices()), options);
  DviclResult r2 =
      DviclCanonicalLabeling(g2, Coloring::Unit(g2.NumVertices()), options);
  if (!r1.completed() || !r2.completed()) {
    return Status::ResourceExhausted("canonical labeling did not complete");
  }
  if (r1.certificate != r2.certificate) {
    return Status::NotFound("graphs are not isomorphic");
  }
  // gamma1 maps g1 onto C(g1) = C(g2); undo gamma2 to land in g2.
  return r1.canonical_labeling.Then(r2.canonical_labeling.Inverse());
}

bool DviclIsomorphic(const Graph& g1, const Graph& g2,
                     const DviclOptions& options, bool* decided) {
  if (decided != nullptr) *decided = true;
  if (g1.NumVertices() != g2.NumVertices() ||
      g1.NumEdges() != g2.NumEdges()) {
    return false;
  }
  DviclResult r1 =
      DviclCanonicalLabeling(g1, Coloring::Unit(g1.NumVertices()), options);
  DviclResult r2 =
      DviclCanonicalLabeling(g2, Coloring::Unit(g2.NumVertices()), options);
  if (!r1.completed() || !r2.completed()) {
    if (decided != nullptr) *decided = false;
    return false;
  }
  return r1.certificate == r2.certificate;
}

}  // namespace dvicl
