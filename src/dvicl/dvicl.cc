#include "dvicl/dvicl.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/stopwatch.h"
#include "dvicl/combine.h"
#include "dvicl/divide.h"
#include "refine/refiner.h"

namespace dvicl {

namespace {

// Iterative post-order construction of the AutoTree (procedure cl of
// Algorithm 1). An explicit stack is used because adversarial inputs can
// produce deep divide chains.
class DviclBuilder {
 public:
  DviclBuilder(const Graph& graph, const DviclOptions& options)
      : graph_(graph), options_(options), workspace_(graph.NumVertices()) {}

  DviclResult Run(const Coloring& initial) {
    DviclResult result;
    Stopwatch total;

    // Algorithm 1 lines 1-2: equitable refinement and color offsets.
    Stopwatch phase;
    Coloring pi = initial;
    RefineToEquitable(graph_, &pi);
    result.colors = pi.ColorOffsets();
    result.stats.refine_seconds = phase.ElapsedSeconds();

    // Root node covers all of G.
    auto& nodes = result.tree.MutableNodes();
    nodes.emplace_back();
    nodes[0].vertices.resize(graph_.NumVertices());
    std::iota(nodes[0].vertices.begin(), nodes[0].vertices.end(), 0);
    nodes[0].edges = graph_.Edges();

    bool completed = BuildTree(&result);
    if (completed && options_.time_limit_seconds > 0.0 &&
        total.ElapsedSeconds() > options_.time_limit_seconds) {
      completed = false;
    }
    result.completed = completed;
    if (!completed) return result;

    // Root labels form the canonical labeling of (G, pi).
    const AutoTreeNode& root = result.tree.Root();
    std::vector<VertexId> image(graph_.NumVertices());
    for (size_t i = 0; i < root.vertices.size(); ++i) {
      image[root.vertices[i]] = root.labels[i];
    }
    result.canonical_labeling = Permutation(std::move(image));
    result.certificate =
        MakeCertificate(graph_, result.colors,
                        result.canonical_labeling.ImageArray());

    // leaf_of index for SSM.
    auto& leaf_of = result.tree.MutableLeafOf();
    leaf_of.assign(graph_.NumVertices(), 0);
    for (uint32_t id = 0; id < result.tree.NumNodes(); ++id) {
      const AutoTreeNode& node = result.tree.Node(id);
      if (!node.is_leaf) continue;
      for (VertexId v : node.vertices) leaf_of[v] = id;
    }

    // Structure statistics (Tables 3/4).
    result.stats.autotree_nodes = result.tree.NumNodes();
    result.stats.singleton_leaves = result.tree.NumSingletonLeaves();
    result.stats.nonsingleton_leaves = result.tree.NumNonSingletonLeaves();
    result.stats.depth = result.tree.Depth();
    return result;
  }

 private:
  // Returns false if a leaf budget was exceeded.
  bool BuildTree(DviclResult* result) {
    auto& nodes = result->tree.MutableNodes();
    // (node id, phase): phase 0 = divide, phase 1 = combine.
    std::vector<std::pair<uint32_t, int>> stack;
    stack.emplace_back(0, 0);

    Stopwatch watch;
    IrOptions leaf_options;
    leaf_options.preset = options_.leaf_backend;
    leaf_options.max_tree_nodes = options_.leaf_max_tree_nodes;
    leaf_options.time_limit_seconds = options_.time_limit_seconds;

    while (!stack.empty()) {
      auto [id, phase] = stack.back();
      stack.pop_back();

      if (options_.time_limit_seconds > 0.0 &&
          watch.ElapsedSeconds() > options_.time_limit_seconds) {
        return false;
      }

      if (phase == 1) {
        Stopwatch combine_watch;
        CombineST(&nodes[id], nodes, result->colors, &result->generators);
        result->stats.combine_seconds += combine_watch.ElapsedSeconds();
        continue;
      }

      // Base case: singleton leaf, C(g) = (pi(v), pi(v)). (An empty root —
      // the zero-vertex graph — is also a trivial leaf.)
      if (nodes[id].vertices.size() <= 1) {
        nodes[id].is_leaf = true;
        if (!nodes[id].vertices.empty()) {
          nodes[id].labels = {result->colors[nodes[id].vertices[0]]};
        }
        continue;
      }

      // Divide phase.
      Stopwatch divide_watch;
      std::vector<GraphPiece> pieces;
      bool divided = false;
      bool by_s = false;
      if (options_.enable_divide_i) {
        divided = DivideI(nodes[id].vertices, nodes[id].edges, result->colors,
                          &workspace_, &pieces);
      }
      if (!divided && options_.enable_divide_s) {
        divided = DivideS(nodes[id].vertices, &nodes[id].edges,
                          result->colors, &workspace_, &pieces);
        by_s = divided;
      }
      result->stats.divide_seconds += divide_watch.ElapsedSeconds();

      if (!divided) {
        // Non-singleton leaf: CombineCL via the IR backend.
        nodes[id].is_leaf = true;
        Stopwatch combine_watch;
        const bool ok = CombineCL(&nodes[id], result->colors, leaf_options,
                                  &result->stats.leaf_ir);
        result->stats.combine_seconds += combine_watch.ElapsedSeconds();
        if (!ok) return false;
        // Leaf automorphisms are automorphisms of (G, pi) by identity
        // extension (Theorem 6.4 / axis argument).
        for (const SparseAut& gen : nodes[id].leaf_generators) {
          result->generators.push_back(gen);
        }
        continue;
      }

      // Create children; combine after all of them are built.
      nodes[id].divided_by_s = by_s;
      stack.emplace_back(id, 1);
      const uint32_t depth = nodes[id].depth;
      for (GraphPiece& piece : pieces) {
        const uint32_t child_id = static_cast<uint32_t>(nodes.size());
        nodes.emplace_back();
        AutoTreeNode& child = nodes.back();
        child.vertices = std::move(piece.vertices);
        child.edges = std::move(piece.edges);
        child.parent = static_cast<int32_t>(id);
        child.depth = depth + 1;
        nodes[id].children.push_back(child_id);
        stack.emplace_back(child_id, 0);
      }
    }
    return true;
  }

  const Graph& graph_;
  const DviclOptions options_;
  DivideWorkspace workspace_;
};

}  // namespace

DviclResult DviclCanonicalLabeling(const Graph& graph, const Coloring& initial,
                                   const DviclOptions& options) {
  assert(initial.NumVertices() == graph.NumVertices());
  DviclBuilder builder(graph, options);
  return builder.Run(initial);
}

bool DviclIsomorphicColored(const Graph& g1,
                            std::span<const uint32_t> labels1,
                            const Graph& g2,
                            std::span<const uint32_t> labels2,
                            const DviclOptions& options, bool* decided) {
  if (decided != nullptr) *decided = true;
  if (g1.NumVertices() != g2.NumVertices() ||
      g1.NumEdges() != g2.NumEdges()) {
    return false;
  }
  // Certificates embed the REFINED color offsets, which are derived from
  // the initial labels but not equal to them; to compare label semantics
  // exactly, re-certify with the initial labels attached. The initial
  // coloring orders cells by ascending label value, so equal label values
  // align across the two graphs — but distinct label values with equal
  // rank would too. Guard by comparing the sorted label multisets first.
  std::vector<uint32_t> sorted1(labels1.begin(), labels1.end());
  std::vector<uint32_t> sorted2(labels2.begin(), labels2.end());
  std::sort(sorted1.begin(), sorted1.end());
  std::sort(sorted2.begin(), sorted2.end());
  if (sorted1 != sorted2) return false;

  DviclResult r1 =
      DviclCanonicalLabeling(g1, Coloring::FromLabels(labels1), options);
  DviclResult r2 =
      DviclCanonicalLabeling(g2, Coloring::FromLabels(labels2), options);
  if (!r1.completed || !r2.completed) {
    if (decided != nullptr) *decided = false;
    return false;
  }
  return r1.certificate == r2.certificate;
}

Result<Permutation> DviclFindIsomorphism(const Graph& g1, const Graph& g2,
                                         const DviclOptions& options) {
  if (g1.NumVertices() != g2.NumVertices() ||
      g1.NumEdges() != g2.NumEdges()) {
    return Status::NotFound("graphs differ in size");
  }
  DviclResult r1 =
      DviclCanonicalLabeling(g1, Coloring::Unit(g1.NumVertices()), options);
  DviclResult r2 =
      DviclCanonicalLabeling(g2, Coloring::Unit(g2.NumVertices()), options);
  if (!r1.completed || !r2.completed) {
    return Status::ResourceExhausted("canonical labeling did not complete");
  }
  if (r1.certificate != r2.certificate) {
    return Status::NotFound("graphs are not isomorphic");
  }
  // gamma1 maps g1 onto C(g1) = C(g2); undo gamma2 to land in g2.
  return r1.canonical_labeling.Then(r2.canonical_labeling.Inverse());
}

bool DviclIsomorphic(const Graph& g1, const Graph& g2,
                     const DviclOptions& options, bool* decided) {
  if (decided != nullptr) *decided = true;
  if (g1.NumVertices() != g2.NumVertices() ||
      g1.NumEdges() != g2.NumEdges()) {
    return false;
  }
  DviclResult r1 =
      DviclCanonicalLabeling(g1, Coloring::Unit(g1.NumVertices()), options);
  DviclResult r2 =
      DviclCanonicalLabeling(g2, Coloring::Unit(g2.NumVertices()), options);
  if (!r1.completed || !r2.completed) {
    if (decided != nullptr) *decided = false;
    return false;
  }
  return r1.certificate == r2.certificate;
}

}  // namespace dvicl
