#ifndef DVICL_DVICL_DVICL_H_
#define DVICL_DVICL_DVICL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/outcome.h"
#include "dvicl/auto_tree.h"
#include "dvicl/cert_cache.h"
#include "graph/certificate.h"
#include "graph/graph.h"
#include "ir/ir_canonical.h"
#include "refine/coloring.h"

namespace dvicl {

namespace obs {
class MetricsRegistry;
class TraceRecorder;
}  // namespace obs

// Options for DviCL (Algorithm 1).
struct DviclOptions {
  // IR backend used by CombineCL on non-singleton leaves: the "X" of
  // DviCL+X in the paper's evaluation (DviCL+n / DviCL+b / DviCL+t).
  IrPreset leaf_backend = IrPreset::kBlissLike;

  // Ablation switches for the two divide algorithms (§6.2). Disabling both
  // degenerates DviCL into a single IR run on the whole graph.
  bool enable_divide_i = true;
  bool enable_divide_s = true;

  // Budgets forwarded to the leaf IR runs; exceeded budgets mark the whole
  // result incomplete (used by the table harnesses as "timeout"). In a
  // multi-threaded build the first leaf to exceed its budget raises a
  // cooperative cancellation flag that every other in-flight leaf polls,
  // so the whole run unwinds promptly.
  uint64_t leaf_max_tree_nodes = 0;
  double time_limit_seconds = 0.0;
  // RSS-delta memory budget in mebibytes (0 = unlimited): the run may grow
  // the process RSS by at most this much past its value when the run
  // started (common/memory_budget.h). Polled at every build frame and once
  // per leaf IR search-tree node; exceeding it raises the same cooperative
  // cancel as the time limit and reports RunOutcome::kMemoryBudget.
  uint64_t memory_limit_mib = 0;

  // Number of threads used to build the AutoTree: sibling subtrees
  // produced by the divide step are dispatched to a work-stealing task
  // pool and joined in fixed sibling order. 1 (the default) is fully
  // sequential; 0 means one thread per hardware thread. The canonical
  // labeling, certificate, generator set and tree shape are bit-identical
  // for every value — thread count only changes wall-clock time.
  uint32_t num_threads = 1;

  // Minimum subtree size (in vertices) worth dispatching as its own pool
  // task; smaller siblings are built inline by the dividing thread. Purely
  // a granularity knob: results do not depend on it.
  uint32_t parallel_grain_vertices = 32;

  // Observability hooks (src/obs/). When `trace` is non-null the build
  // records Chrome-trace spans for the root refinement, every node's
  // divide/combine step, every leaf IR search, and all task-pool activity
  // (spawn/steal/run), with real thread ids. When `metrics` is non-null
  // the run exports its counters (stats below, task-pool telemetry, IR
  // pruning causes, refinement work, peak RSS) into the registry at the
  // end. Both null (the default) keeps the hot path at one branch per
  // would-be event; neither affects any canonical output — tracing on and
  // off produce byte-identical labelings/certificates (guarded by
  // obs_test).
  obs::TraceRecorder* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;

  // Canonical-form cache for leaf subproblems (dvicl/cert_cache.h): when
  // enabled, every non-singleton leaf probes the cache before running the
  // IR backend, and isomorphic leaves after the first are reconstructed
  // from the memoized result. Reuse is gated by exact verification of the
  // lowered colored graph, so every canonical output stays bit-identical
  // to a cache-off run for any thread count; only wall-clock and telemetry
  // change. The environment variable DVICL_CERT_CACHE=1 force-enables the
  // per-run cache (the CI cache-on matrix leg); other values are ignored.
  bool cert_cache = false;
  // Budgets for the per-run cache (LRU eviction, 0 = unlimited).
  uint64_t cert_cache_max_entries = 1ull << 16;
  uint64_t cert_cache_max_bytes = 64ull << 20;
  // Caller-owned cache shared across runs (e.g. a bench sweep labeling
  // many graphs from the same family). Non-null overrides `cert_cache` and
  // the budgets above; the caller keeps ownership.
  CertCache* shared_cert_cache = nullptr;

  // Arena/pool memory for the refine+IR hot path (DESIGN.md §13): the root
  // refinement and every leaf IR search carve their run-local state from
  // the executing thread's scratch arena (common/arena.h) instead of the
  // general-purpose heap. Everything that escapes a run — certificate,
  // labeling, generators, cache entries — is heap-allocated either way, so
  // this switch changes allocator traffic (dvicl.alloc.* metrics) and
  // nothing else: canonical outputs are byte-identical across both legs
  // for every thread count (guarded by parallel_determinism_test and the
  // alloc_regression_test harness). The environment variable DVICL_ARENA
  // overrides this option when set: "0" forces heap mode, "1" forces arena
  // mode (the CI arena matrix legs); other values are ignored. It is read
  // fresh on every run, so tests may set/unset it per leg.
  bool arena = true;
};

struct DviclStats {
  uint64_t autotree_nodes = 0;
  uint64_t singleton_leaves = 0;
  uint64_t nonsingleton_leaves = 0;
  uint32_t depth = 0;

  // Phase timings are CPU-seconds: per-task stopwatch readings summed
  // across every thread that worked on the build. On a multi-threaded run
  // their sum can exceed — and their busiest phase can exceed — the
  // elapsed time; never present them as wall-clock (that was a
  // documentation/reporting bug before PR 2: benches printed these under a
  // plain "seconds" header).
  double refine_seconds = 0.0;
  double divide_seconds = 0.0;
  double combine_seconds = 0.0;

  // Elapsed wall-clock of the whole DviclCanonicalLabeling call, captured
  // once at the root. This is the number to quote as "how long it took";
  // the CPU-second phases above tell you where the work went.
  double wall_seconds = 0.0;

  // Equitable-refinement work performed anywhere in the run (root
  // refinement plus every leaf IR search), from the per-thread counters in
  // refine/refiner.h.
  uint64_t refine_splitters = 0;
  uint64_t refine_cell_splits = 0;

  // Hot-path allocator traffic (common/arena.h thread counters) attributed
  // to the root refinement and the leaf combine steps: heap buffer
  // acquisitions plus arena chunk refills. With the arena enabled a
  // steady-state run only pays for chunk refills at new high-water marks,
  // which is what the alloc-regression harness asserts on.
  uint64_t alloc_count = 0;
  uint64_t alloc_bytes = 0;

  IrStats leaf_ir;  // aggregated over all CombineCL invocations

  // Canonical-form cache activity of this run: counter fields are deltas
  // over the run (meaningful for a shared cross-run cache too);
  // entries/bytes are the occupancy at the end of the run. Root-owned like
  // wall_seconds — NOT merged, and all zero when the cache is disabled.
  // Telemetry only: hit/miss counts may vary between parallel runs (two
  // threads can race on the same subproblem and both miss), while every
  // canonical output stays bit-identical.
  CertCacheStats cert_cache;

  // Reduction used by the parallel builder: every task accumulates into a
  // local DviclStats and the locals are merged at the join, so no stats
  // field is ever mutated concurrently. Counters and CPU-second phase
  // timings add up; depth takes the max; wall_seconds is root-owned and
  // deliberately NOT merged (a task-local wall reading is meaningless).
  void MergeFrom(const DviclStats& other) {
    autotree_nodes += other.autotree_nodes;
    singleton_leaves += other.singleton_leaves;
    nonsingleton_leaves += other.nonsingleton_leaves;
    if (other.depth > depth) depth = other.depth;
    refine_seconds += other.refine_seconds;
    divide_seconds += other.divide_seconds;
    combine_seconds += other.combine_seconds;
    refine_splitters += other.refine_splitters;
    refine_cell_splits += other.refine_cell_splits;
    alloc_count += other.alloc_count;
    alloc_bytes += other.alloc_bytes;
    leaf_ir.MergeFrom(other.leaf_ir);
  }
};

struct DviclResult {
  // Structured termination cause (common/outcome.h). Graceful degradation
  // on anything other than kCompleted: `colors` (the root equitable
  // refinement) and `tree` (the partial AutoTree built so far — explicitly
  // non-canonical, its combines may never have run) are still returned,
  // but canonical_labeling and certificate are EMPTY — a half-written
  // certificate never escapes, and a shared cert cache is never fed from
  // an aborted run.
  RunOutcome outcome = RunOutcome::kCancelled;
  bool completed() const { return outcome == RunOutcome::kCompleted; }

  // Where the run died: the flattened AutoTree node id whose divide /
  // combine / leaf search first recorded the abort (-1 when the abort was
  // not tied to a node, e.g. the root deadline check or invalid input).
  int32_t fault_node_id = -1;
  // Human-readable abort cause ("" on a completed run), e.g.
  // "leaf IR search exceeded max_tree_nodes=1000".
  std::string fault_detail;

  AutoTree tree;
  // Root equitable coloring offsets pi(v) (Algorithm 1 line 2).
  std::vector<uint32_t> colors;
  // gamma*: v -> canonical position; (G, pi)^{gamma*} = C(G, pi) at the
  // AutoTree root. This is the "k-th minimum" labeling of §5.
  Permutation canonical_labeling;
  // Certificate of (G, pi) under gamma* on the ORIGINAL edge set; equal
  // certificates <=> isomorphic (Theorem 6.9).
  Certificate certificate;
  // Generating set of Aut(G, pi): leaf generators lifted by identity plus
  // one swap per pair of equal-form siblings (§5 "Axis").
  std::vector<SparseAut> generators;

  DviclStats stats;
};

// Runs DviCL on the colored graph (graph, initial); pass Coloring::Unit(n)
// for an uncolored graph.
DviclResult DviclCanonicalLabeling(const Graph& graph, const Coloring& initial,
                                   const DviclOptions& options = {});

// Convenience: true iff g1 and g2 are isomorphic, decided by comparing
// DviCL certificates (both runs must complete; returns false and sets
// *decided = false otherwise when `decided` is non-null).
bool DviclIsomorphic(const Graph& g1, const Graph& g2,
                     const DviclOptions& options = {},
                     bool* decided = nullptr);

// Colored-graph variant (paper §2: two colored graphs are isomorphic iff a
// permutation maps one onto the other preserving edges AND colors). Labels
// are semantic: color value 3 on g1 corresponds to color value 3 on g2.
bool DviclIsomorphicColored(const Graph& g1,
                            std::span<const uint32_t> labels1,
                            const Graph& g2,
                            std::span<const uint32_t> labels2,
                            const DviclOptions& options = {},
                            bool* decided = nullptr);

// Explicit witness: a permutation gamma with g1^gamma = g2, constructed as
// gamma1 . gamma2^{-1} from the two canonical labelings. Fails with
// NotFound when the graphs are not isomorphic and ResourceExhausted when a
// labeling run hit its budget.
Result<Permutation> DviclFindIsomorphism(const Graph& g1, const Graph& g2,
                                         const DviclOptions& options = {});

}  // namespace dvicl

#endif  // DVICL_DVICL_DVICL_H_
