#include "dvicl/serialize.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace dvicl {

namespace {

constexpr char kMagic[4] = {'D', 'V', 'A', 'T'};
constexpr uint32_t kVersion = 1;

uint64_t Fnv1a(const std::string& data) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

// ---- little-endian primitive writers/readers over string buffers --------

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}

  bool U32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_++]))
            << (8 * i);
    }
    return true;
  }

  bool U64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_++]))
            << (8 * i);
    }
    return true;
  }

  bool VecU32(std::vector<uint32_t>* out) {
    uint64_t count = 0;
    if (!U64(&count) || count > Remaining() / 4) return false;
    out->resize(count);
    for (uint64_t i = 0; i < count; ++i) {
      if (!U32(&(*out)[i])) return false;
    }
    return true;
  }

  bool VecU64(std::vector<uint64_t>* out) {
    uint64_t count = 0;
    if (!U64(&count) || count > Remaining() / 8) return false;
    out->resize(count);
    for (uint64_t i = 0; i < count; ++i) {
      if (!U64(&(*out)[i])) return false;
    }
    return true;
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t Remaining() const { return data_.size() - pos_; }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

void PutVecU32(std::string* out, const std::vector<uint32_t>& v) {
  PutU64(out, v.size());
  for (uint32_t x : v) PutU32(out, x);
}

void PutVecU64(std::string* out, const std::vector<uint64_t>& v) {
  PutU64(out, v.size());
  for (uint64_t x : v) PutU64(out, x);
}

std::string EncodePayload(const DviclResult& result) {
  std::string payload;

  PutVecU32(&payload, result.colors);
  std::vector<uint32_t> labeling(
      result.canonical_labeling.ImageArray().begin(),
      result.canonical_labeling.ImageArray().end());
  PutVecU32(&payload, labeling);
  PutVecU64(&payload, result.certificate);

  PutU64(&payload, result.generators.size());
  for (const SparseAut& gen : result.generators) {
    PutU64(&payload, gen.moves.size());
    for (const auto& [v, img] : gen.moves) {
      PutU32(&payload, v);
      PutU32(&payload, img);
    }
  }

  const AutoTree& tree = result.tree;
  PutU64(&payload, tree.NumNodes());
  for (uint32_t id = 0; id < tree.NumNodes(); ++id) {
    const AutoTreeNode& node = tree.Node(id);
    PutVecU32(&payload, node.vertices);
    PutU64(&payload, node.edges.size());
    for (const Edge& e : node.edges) {
      PutU32(&payload, e.first);
      PutU32(&payload, e.second);
    }
    PutVecU32(&payload, node.labels);
    PutU32(&payload, static_cast<uint32_t>(node.parent));
    PutU32(&payload, node.depth);
    PutVecU32(&payload, node.children);
    PutVecU32(&payload, node.child_sym_class);
    PutU32(&payload, (node.is_leaf ? 1u : 0u) |
                         (node.divided_by_s ? 2u : 0u));
    PutU64(&payload, node.form_hash);
    PutU64(&payload, node.leaf_generators.size());
    for (const SparseAut& gen : node.leaf_generators) {
      PutU64(&payload, gen.moves.size());
      for (const auto& [v, img] : gen.moves) {
        PutU32(&payload, v);
        PutU32(&payload, img);
      }
    }
  }

  // leaf_of (empty when the graph is empty).
  std::vector<uint32_t> leaf_of;
  leaf_of.reserve(result.colors.size());
  for (VertexId v = 0; v < result.colors.size(); ++v) {
    leaf_of.push_back(tree.LeafOf(v));
  }
  PutVecU32(&payload, leaf_of);
  return payload;
}

bool DecodeSparseAut(Reader* reader, SparseAut* gen) {
  uint64_t moves = 0;
  if (!reader->U64(&moves) || moves > reader->Remaining() / 8) return false;
  gen->moves.resize(moves);
  for (uint64_t i = 0; i < moves; ++i) {
    uint32_t v = 0;
    uint32_t img = 0;
    if (!reader->U32(&v) || !reader->U32(&img)) return false;
    gen->moves[i] = {v, img};
  }
  return true;
}

Status DecodePayload(const std::string& payload, DviclResult* result) {
  Reader reader(payload);

  if (!reader.VecU32(&result->colors)) {
    return Status::InvalidArgument("corrupt colors section");
  }
  std::vector<uint32_t> labeling;
  if (!reader.VecU32(&labeling)) {
    return Status::InvalidArgument("corrupt labeling section");
  }
  if (labeling.size() != result->colors.size()) {
    return Status::InvalidArgument("labeling/colors size mismatch");
  }
  Result<Permutation> perm =
      Permutation::FromImage({labeling.begin(), labeling.end()});
  if (!perm.ok()) {
    return Status::InvalidArgument("stored labeling is not a permutation");
  }
  result->canonical_labeling = std::move(perm).value();
  if (!reader.VecU64(&result->certificate)) {
    return Status::InvalidArgument("corrupt certificate section");
  }

  uint64_t num_generators = 0;
  if (!reader.U64(&num_generators) ||
      num_generators > reader.Remaining()) {
    return Status::InvalidArgument("corrupt generator count");
  }
  result->generators.resize(num_generators);
  for (uint64_t i = 0; i < num_generators; ++i) {
    if (!DecodeSparseAut(&reader, &result->generators[i])) {
      return Status::InvalidArgument("corrupt generator");
    }
  }

  uint64_t num_nodes = 0;
  if (!reader.U64(&num_nodes) || num_nodes > reader.Remaining()) {
    return Status::InvalidArgument("corrupt node count");
  }
  auto& nodes = result->tree.MutableNodes();
  nodes.resize(num_nodes);
  for (uint64_t id = 0; id < num_nodes; ++id) {
    AutoTreeNode& node = nodes[id];
    if (!reader.VecU32(&node.vertices)) {
      return Status::InvalidArgument("corrupt node vertices");
    }
    uint64_t num_edges = 0;
    if (!reader.U64(&num_edges) || num_edges > reader.Remaining() / 8) {
      return Status::InvalidArgument("corrupt node edge count");
    }
    node.edges.resize(num_edges);
    for (uint64_t i = 0; i < num_edges; ++i) {
      uint32_t a = 0;
      uint32_t b = 0;
      if (!reader.U32(&a) || !reader.U32(&b)) {
        return Status::InvalidArgument("corrupt node edge");
      }
      node.edges[i] = {a, b};
    }
    if (!reader.VecU32(&node.labels) ||
        node.labels.size() != node.vertices.size()) {
      return Status::InvalidArgument("corrupt node labels");
    }
    uint32_t parent = 0;
    uint32_t flags = 0;
    if (!reader.U32(&parent) || !reader.U32(&node.depth) ||
        !reader.VecU32(&node.children) ||
        !reader.VecU32(&node.child_sym_class) || !reader.U32(&flags) ||
        !reader.U64(&node.form_hash)) {
      return Status::InvalidArgument("corrupt node header");
    }
    node.parent = static_cast<int32_t>(parent);
    node.is_leaf = (flags & 1) != 0;
    node.divided_by_s = (flags & 2) != 0;
    if (node.child_sym_class.size() != node.children.size()) {
      return Status::InvalidArgument("children/class size mismatch");
    }
    for (uint32_t child : node.children) {
      if (child >= num_nodes) {
        return Status::InvalidArgument("child index out of range");
      }
    }
    uint64_t num_leaf_gens = 0;
    if (!reader.U64(&num_leaf_gens) || num_leaf_gens > reader.Remaining()) {
      return Status::InvalidArgument("corrupt leaf generator count");
    }
    node.leaf_generators.resize(num_leaf_gens);
    for (uint64_t i = 0; i < num_leaf_gens; ++i) {
      if (!DecodeSparseAut(&reader, &node.leaf_generators[i])) {
        return Status::InvalidArgument("corrupt leaf generator");
      }
    }
  }

  std::vector<uint32_t> leaf_of;
  if (!reader.VecU32(&leaf_of) ||
      leaf_of.size() != result->colors.size()) {
    return Status::InvalidArgument("corrupt leaf_of section");
  }
  for (uint32_t leaf : leaf_of) {
    if (leaf >= num_nodes) {
      return Status::InvalidArgument("leaf_of index out of range");
    }
  }
  result->tree.MutableLeafOf().assign(leaf_of.begin(), leaf_of.end());

  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in payload");
  }
  result->outcome = RunOutcome::kCompleted;
  return Status::Ok();
}

}  // namespace

Status SaveDviclResult(const DviclResult& result, std::ostream& out) {
  if (!result.completed()) {
    return Status::InvalidArgument("refusing to save an incomplete result");
  }
  const std::string payload = EncodePayload(result);
  out.write(kMagic, 4);
  std::string header;
  PutU32(&header, kVersion);
  PutU64(&header, payload.size());
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  std::string footer;
  PutU64(&footer, Fnv1a(payload));
  out.write(footer.data(), static_cast<std::streamsize>(footer.size()));
  if (!out) return Status::IOError("stream error while saving");
  return Status::Ok();
}

Status SaveDviclResultToFile(const DviclResult& result,
                             const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  return SaveDviclResult(result, out);
}

Result<DviclResult> LoadDviclResult(std::istream& in) {
  char magic[4] = {};
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("not a DviCL index file (bad magic)");
  }
  std::string header(12, '\0');
  in.read(header.data(), 12);
  if (!in) return Status::InvalidArgument("truncated header");
  Reader header_reader(header);
  uint32_t version = 0;
  uint64_t payload_size = 0;
  header_reader.U32(&version);
  header_reader.U64(&payload_size);
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported index version " +
                                   std::to_string(version));
  }
  // Sanity bound to avoid huge allocations on corrupt length fields.
  constexpr uint64_t kMaxPayload = 1ull << 36;  // 64 GiB
  if (payload_size > kMaxPayload) {
    return Status::InvalidArgument("implausible payload size");
  }
  std::string payload(payload_size, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload_size));
  if (!in) return Status::InvalidArgument("truncated payload");
  std::string footer(8, '\0');
  in.read(footer.data(), 8);
  if (!in) return Status::InvalidArgument("truncated checksum");
  Reader footer_reader(footer);
  uint64_t checksum = 0;
  footer_reader.U64(&checksum);
  if (checksum != Fnv1a(payload)) {
    return Status::InvalidArgument("checksum mismatch (corrupt file)");
  }

  DviclResult result;
  Status status = DecodePayload(payload, &result);
  if (!status.ok()) return status;
  return result;
}

Result<DviclResult> LoadDviclResultFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  return LoadDviclResult(in);
}

}  // namespace dvicl
