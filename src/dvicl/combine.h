#ifndef DVICL_DVICL_COMBINE_H_
#define DVICL_DVICL_COMBINE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/outcome.h"
#include "dvicl/auto_tree.h"
#include "dvicl/cert_cache.h"
#include "ir/ir_canonical.h"

namespace dvicl {

// Serialized canonical form of one AutoTree node:
// [#vertices, sorted labels..., #edges, sorted label-relabeled edges...].
// Equal forms <=> the nodes are identically labeled colored graphs (labels
// encode the colors because a label lies in its cell's offset range), which
// by Lemmas 6.7/6.8 means the corresponding subgraphs are symmetric in
// (G, pi).
using NodeForm = std::vector<uint64_t>;

NodeForm ComputeNodeForm(const AutoTreeNode& node);

// Hash stamped into AutoTreeNode::form_hash by CombineST; exposed so the
// DVICL_DCHECK tree verifier (VerifyAutoTree) can recompute and compare.
uint64_t HashNodeForm(const NodeForm& form);

// CombineCL (Algorithm 4): canonical labeling of a non-singleton leaf.
// Runs the configured IR backend on the leaf's local colored graph, then
// assigns each vertex the label pi(v) + (rank of v among same-colored leaf
// vertices in gamma* order). The leaf's Aut generators are lifted to global
// sparse automorphisms into node->leaf_generators.
//
// When `cache` is non-null the leaf's local colored graph is first probed
// in the canonical-form cache (dvicl/cert_cache.h): a verified hit
// reconstructs the labels and generators from the cached IR result —
// bit-identical to what the search would produce — and skips the IR run
// (leaving `aggregate_stats` untouched, since no search happened); a miss
// runs the search and publishes the result first-writer-wins.
//
// Returns RunOutcome::kCompleted on success; otherwise the IR search's
// abort cause (kNodeBudget / kDeadline / kMemoryBudget / kCancelled /
// kInternalFault), which the caller must propagate into the whole run's
// outcome. On a non-completed return the node's labels/generators are left
// unset and nothing is published to the cache.
RunOutcome CombineCL(AutoTreeNode* node, std::span<const uint32_t> colors,
                     const IrOptions& leaf_options, IrStats* aggregate_stats,
                     CertCache* cache = nullptr);

// CombineST (Algorithm 5): canonical labeling of a non-leaf node from its
// children, joined in a fixed order that is independent of how (or on
// which thread) the child subtrees were built. `children` lists the child
// nodes in creation (piece) order. The function sorts them by canonical
// form, writes the resulting rank -> piece-index permutation to
// *form_order, fills node->child_sym_class (aligned with rank), stamps
// each child's form_hash, emits one sparse "adjacent sibling swap"
// generator per pair of equal-form neighbors (their label-matching
// bijection), and labels the node's vertices by (color, child rank, child
// label) order.
//
// node->children is NOT touched: global node ids are owned by the builder,
// which assigns them only when the finished tree is flattened (the
// parallel build constructs subtrees out of id order).
void CombineST(AutoTreeNode* node, std::span<AutoTreeNode* const> children,
               std::span<const uint32_t> colors,
               std::vector<uint32_t>* form_order,
               std::vector<SparseAut>* sibling_generators);

}  // namespace dvicl

#endif  // DVICL_DVICL_COMBINE_H_
