#include "dvicl/auto_tree.h"

#include "perm/schreier_sims.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/check.h"
#include "dvicl/combine.h"

namespace dvicl {

Permutation SparseAut::ToDense(VertexId n) const {
  std::vector<VertexId> image(n);
  std::iota(image.begin(), image.end(), 0);
  for (const auto& [v, img] : moves) image[v] = img;
  return Permutation(std::move(image));
}

VertexId SparseAut::ImageOf(VertexId v) const {
  auto it = std::lower_bound(
      moves.begin(), moves.end(), v,
      [](const std::pair<VertexId, VertexId>& m, VertexId x) {
        return m.first < x;
      });
  if (it != moves.end() && it->first == v) return it->second;
  return v;
}

VertexId AutoTreeNode::LabelOf(VertexId v) const {
  auto it = std::lower_bound(vertices.begin(), vertices.end(), v);
  assert(it != vertices.end() && *it == v);
  return labels[static_cast<size_t>(it - vertices.begin())];
}

uint32_t AutoTree::NumSingletonLeaves() const {
  uint32_t count = 0;
  for (const AutoTreeNode& node : nodes_) {
    if (node.is_leaf && node.IsSingleton()) ++count;
  }
  return count;
}

uint32_t AutoTree::NumNonSingletonLeaves() const {
  uint32_t count = 0;
  for (const AutoTreeNode& node : nodes_) {
    if (node.is_leaf && !node.IsSingleton()) ++count;
  }
  return count;
}

double AutoTree::AverageNonSingletonLeafSize() const {
  uint64_t total = 0;
  uint32_t count = 0;
  for (const AutoTreeNode& node : nodes_) {
    if (node.is_leaf && !node.IsSingleton()) {
      total += node.vertices.size();
      ++count;
    }
  }
  if (count == 0) return 0.0;
  return static_cast<double>(total) / static_cast<double>(count);
}

uint32_t AutoTree::Depth() const {
  uint32_t depth = 0;
  for (const AutoTreeNode& node : nodes_) {
    depth = std::max(depth, node.depth);
  }
  return depth;
}

double AutoTree::TotalStepSeconds() const {
  double total = 0.0;
  for (const AutoTreeNode& node : nodes_) {
    total += node.divide_seconds + node.combine_seconds;
  }
  return total;
}

std::vector<uint32_t> AutoTree::SlowestNodes(size_t k) const {
  std::vector<uint32_t> ids(nodes_.size());
  std::iota(ids.begin(), ids.end(), 0);
  const auto step_seconds = [this](uint32_t id) {
    return nodes_[id].divide_seconds + nodes_[id].combine_seconds;
  };
  if (k > ids.size()) k = ids.size();
  // Ties broken by id so the answer is deterministic.
  const auto slower = [&](uint32_t a, uint32_t b) {
    const float ta = step_seconds(a);
    const float tb = step_seconds(b);
    if (ta != tb) return ta > tb;
    return a < b;
  };
  std::partial_sort(ids.begin(), ids.begin() + static_cast<long>(k),
                    ids.end(), slower);
  ids.resize(k);
  return ids;
}

BigUint AutomorphismOrderFromTree(const AutoTree& tree) {
  BigUint order(1);
  for (uint32_t id = 0; id < tree.NumNodes(); ++id) {
    const AutoTreeNode& node = tree.Node(id);
    if (node.is_leaf) {
      if (node.leaf_generators.empty()) continue;
      // Schreier-Sims over the leaf's group, lowered to local indices so
      // the chain degree is the leaf size, not |V(G)|.
      SchreierSims chain(static_cast<VertexId>(node.vertices.size()));
      auto local_of = [&node](VertexId v) {
        auto it =
            std::lower_bound(node.vertices.begin(), node.vertices.end(), v);
        return static_cast<VertexId>(it - node.vertices.begin());
      };
      for (const SparseAut& gen : node.leaf_generators) {
        std::vector<VertexId> image(node.vertices.size());
        std::iota(image.begin(), image.end(), 0);
        for (const auto& [v, img] : gen.moves) {
          image[local_of(v)] = local_of(img);
        }
        chain.AddGenerator(Permutation(std::move(image)));
      }
      order *= chain.Order();
    } else {
      // m! per symmetry class of m equal-form children.
      size_t i = 0;
      while (i < node.children.size()) {
        size_t j = i;
        while (j < node.children.size() &&
               node.child_sym_class[j] == node.child_sym_class[i]) {
          ++j;
        }
        order *= BigUint::Factorial(j - i);
        i = j;
      }
    }
  }
  return order;
}

std::string FormatAutoTree(const AutoTree& tree, size_t max_nodes) {
  std::string out;
  size_t emitted = 0;

  // Depth-first walk with an explicit stack of (node, child sym class).
  struct Item {
    uint32_t id;
    uint32_t sym_class;
  };
  std::vector<Item> stack = {{0, 0}};
  while (!stack.empty()) {
    if (max_nodes != 0 && emitted >= max_nodes) {
      out += "... (truncated)\n";
      break;
    }
    const Item item = stack.back();
    stack.pop_back();
    const AutoTreeNode& node = tree.Node(item.id);

    out.append(2 * node.depth, ' ');
    out += "{";
    const size_t show = std::min<size_t>(node.vertices.size(), 8);
    for (size_t i = 0; i < show; ++i) {
      if (i > 0) out += ",";
      out += std::to_string(node.vertices[i]);
    }
    if (node.vertices.size() > show) {
      out += ",... " + std::to_string(node.vertices.size()) + " vertices";
    }
    out += "}";
    if (node.is_leaf) {
      out += node.IsSingleton() ? " leaf" : " leaf[IR]";
    } else {
      out += node.divided_by_s ? " DivideS" : " DivideI";
    }
    if (node.parent >= 0) {
      out += " class=" + std::to_string(item.sym_class);
    }
    out += "\n";
    ++emitted;

    // Push children in reverse so they print in canonical order.
    for (size_t i = node.children.size(); i-- > 0;) {
      stack.push_back({node.children[i], node.child_sym_class[i]});
    }
  }
  return out;
}

void VerifyAutoTree(const AutoTree& tree, std::span<const uint32_t> colors) {
#ifdef DVICL_DCHECK_ENABLED
  if (tree.NumNodes() == 0) return;
  DVICL_DCHECK_EQ(tree.Root().parent, -1);
  DVICL_DCHECK_EQ(tree.Root().depth, 0u);

  std::vector<VertexId> scratch;
  std::vector<std::pair<uint32_t, VertexId>> by_color;
  for (uint32_t id = 0; id < tree.NumNodes(); ++id) {
    const AutoTreeNode& node = tree.Node(id);
    DVICL_DCHECK(!node.vertices.empty() || id == 0)
        << "non-root node " << id << " has an empty vertex set";
    DVICL_DCHECK(std::is_sorted(node.vertices.begin(), node.vertices.end()))
        << "node " << id << ": vertex set is not sorted";
    DVICL_DCHECK(std::adjacent_find(node.vertices.begin(),
                                    node.vertices.end()) ==
                 node.vertices.end())
        << "node " << id << ": duplicate vertex";
    DVICL_DCHECK_EQ(node.labels.size(), node.vertices.size())
        << "node " << id << ": labels/vertices size mismatch";

    // Label discipline (Algorithms 4/5): within the node, the k vertices of
    // color c carry exactly the labels c, c+1, ..., c+k-1.
    by_color.clear();
    by_color.reserve(node.vertices.size());
    for (size_t i = 0; i < node.vertices.size(); ++i) {
      by_color.emplace_back(colors[node.vertices[i]], node.labels[i]);
    }
    std::sort(by_color.begin(), by_color.end());
    for (size_t i = 0; i < by_color.size(); ++i) {
      const uint32_t color = by_color[i].first;
      const uint32_t expected =
          (i > 0 && by_color[i - 1].first == color) ? by_color[i - 1].second + 1
                                                    : color;
      DVICL_DCHECK_EQ(by_color[i].second, expected)
          << "node " << id << ": labels of color class " << color
          << " are not color + 0..k-1";
    }

    // Edges stay inside the node's vertex set.
    for (const Edge& e : node.edges) {
      DVICL_DCHECK(std::binary_search(node.vertices.begin(),
                                      node.vertices.end(), e.first) &&
                   std::binary_search(node.vertices.begin(),
                                      node.vertices.end(), e.second))
          << "node " << id << ": edge endpoint outside the vertex set";
    }

    if (node.is_leaf) {
      DVICL_DCHECK(node.children.empty())
          << "leaf node " << id << " has children";
      continue;
    }
    DVICL_DCHECK(!node.children.empty())
        << "internal node " << id << " has no children";
    DVICL_DCHECK_EQ(node.child_sym_class.size(), node.children.size());

    // Children partition the parent's vertex set and link back correctly;
    // canonical-form order is non-descending with sym classes grouping
    // exactly the equal forms and form_hash matching the recomputed form.
    scratch.clear();
    NodeForm prev_form;
    for (size_t rank = 0; rank < node.children.size(); ++rank) {
      const uint32_t child_id = node.children[rank];
      DVICL_DCHECK_LT(child_id, tree.NumNodes());
      const AutoTreeNode& child = tree.Node(child_id);
      DVICL_DCHECK_EQ(child.parent, static_cast<int32_t>(id))
          << "child " << child_id << " does not link back to " << id;
      DVICL_DCHECK_EQ(child.depth, node.depth + 1);
      scratch.insert(scratch.end(), child.vertices.begin(),
                     child.vertices.end());

      NodeForm form = ComputeNodeForm(child);
      DVICL_DCHECK_EQ(child.form_hash, HashNodeForm(form))
          << "node " << child_id << ": stale form_hash";
      if (rank > 0) {
        DVICL_DCHECK(prev_form <= form)
            << "node " << id << ": children out of canonical-form order at "
            << "rank " << rank;
        const uint32_t expected_class =
            prev_form == form ? node.child_sym_class[rank - 1]
                              : node.child_sym_class[rank - 1] + 1;
        DVICL_DCHECK_EQ(node.child_sym_class[rank], expected_class)
            << "node " << id << ": sym class does not track form equality "
            << "at rank " << rank;
      } else {
        DVICL_DCHECK_EQ(node.child_sym_class[0], 0u);
      }
      prev_form = std::move(form);
    }
    std::sort(scratch.begin(), scratch.end());
    DVICL_DCHECK(scratch == node.vertices)
        << "node " << id
        << ": child vertex sets do not partition the parent";
  }
#else
  (void)tree;
  (void)colors;
#endif
}

std::vector<VertexId> OrbitIdsFromGenerators(
    VertexId n, std::span<const SparseAut> generators) {
  std::vector<VertexId> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&parent](VertexId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const SparseAut& gen : generators) {
    for (const auto& [v, img] : gen.moves) {
      VertexId a = find(v);
      VertexId b = find(img);
      if (a != b) parent[std::max(a, b)] = std::min(a, b);
    }
  }
  std::vector<VertexId> ids(n);
  for (VertexId v = 0; v < n; ++v) ids[v] = find(v);
  return ids;
}

}  // namespace dvicl
