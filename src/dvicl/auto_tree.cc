#include "dvicl/auto_tree.h"

#include "perm/schreier_sims.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace dvicl {

Permutation SparseAut::ToDense(VertexId n) const {
  std::vector<VertexId> image(n);
  std::iota(image.begin(), image.end(), 0);
  for (const auto& [v, img] : moves) image[v] = img;
  return Permutation(std::move(image));
}

VertexId SparseAut::ImageOf(VertexId v) const {
  auto it = std::lower_bound(
      moves.begin(), moves.end(), v,
      [](const std::pair<VertexId, VertexId>& m, VertexId x) {
        return m.first < x;
      });
  if (it != moves.end() && it->first == v) return it->second;
  return v;
}

VertexId AutoTreeNode::LabelOf(VertexId v) const {
  auto it = std::lower_bound(vertices.begin(), vertices.end(), v);
  assert(it != vertices.end() && *it == v);
  return labels[static_cast<size_t>(it - vertices.begin())];
}

uint32_t AutoTree::NumSingletonLeaves() const {
  uint32_t count = 0;
  for (const AutoTreeNode& node : nodes_) {
    if (node.is_leaf && node.IsSingleton()) ++count;
  }
  return count;
}

uint32_t AutoTree::NumNonSingletonLeaves() const {
  uint32_t count = 0;
  for (const AutoTreeNode& node : nodes_) {
    if (node.is_leaf && !node.IsSingleton()) ++count;
  }
  return count;
}

double AutoTree::AverageNonSingletonLeafSize() const {
  uint64_t total = 0;
  uint32_t count = 0;
  for (const AutoTreeNode& node : nodes_) {
    if (node.is_leaf && !node.IsSingleton()) {
      total += node.vertices.size();
      ++count;
    }
  }
  if (count == 0) return 0.0;
  return static_cast<double>(total) / static_cast<double>(count);
}

uint32_t AutoTree::Depth() const {
  uint32_t depth = 0;
  for (const AutoTreeNode& node : nodes_) {
    depth = std::max(depth, node.depth);
  }
  return depth;
}

double AutoTree::TotalStepSeconds() const {
  double total = 0.0;
  for (const AutoTreeNode& node : nodes_) {
    total += node.divide_seconds + node.combine_seconds;
  }
  return total;
}

std::vector<uint32_t> AutoTree::SlowestNodes(size_t k) const {
  std::vector<uint32_t> ids(nodes_.size());
  std::iota(ids.begin(), ids.end(), 0);
  const auto step_seconds = [this](uint32_t id) {
    return nodes_[id].divide_seconds + nodes_[id].combine_seconds;
  };
  if (k > ids.size()) k = ids.size();
  // Ties broken by id so the answer is deterministic.
  const auto slower = [&](uint32_t a, uint32_t b) {
    const float ta = step_seconds(a);
    const float tb = step_seconds(b);
    if (ta != tb) return ta > tb;
    return a < b;
  };
  std::partial_sort(ids.begin(), ids.begin() + static_cast<long>(k),
                    ids.end(), slower);
  ids.resize(k);
  return ids;
}

BigUint AutomorphismOrderFromTree(const AutoTree& tree) {
  BigUint order(1);
  for (uint32_t id = 0; id < tree.NumNodes(); ++id) {
    const AutoTreeNode& node = tree.Node(id);
    if (node.is_leaf) {
      if (node.leaf_generators.empty()) continue;
      // Schreier-Sims over the leaf's group, lowered to local indices so
      // the chain degree is the leaf size, not |V(G)|.
      SchreierSims chain(static_cast<VertexId>(node.vertices.size()));
      auto local_of = [&node](VertexId v) {
        auto it =
            std::lower_bound(node.vertices.begin(), node.vertices.end(), v);
        return static_cast<VertexId>(it - node.vertices.begin());
      };
      for (const SparseAut& gen : node.leaf_generators) {
        std::vector<VertexId> image(node.vertices.size());
        std::iota(image.begin(), image.end(), 0);
        for (const auto& [v, img] : gen.moves) {
          image[local_of(v)] = local_of(img);
        }
        chain.AddGenerator(Permutation(std::move(image)));
      }
      order *= chain.Order();
    } else {
      // m! per symmetry class of m equal-form children.
      size_t i = 0;
      while (i < node.children.size()) {
        size_t j = i;
        while (j < node.children.size() &&
               node.child_sym_class[j] == node.child_sym_class[i]) {
          ++j;
        }
        order *= BigUint::Factorial(j - i);
        i = j;
      }
    }
  }
  return order;
}

std::string FormatAutoTree(const AutoTree& tree, size_t max_nodes) {
  std::string out;
  size_t emitted = 0;

  // Depth-first walk with an explicit stack of (node, child sym class).
  struct Item {
    uint32_t id;
    uint32_t sym_class;
  };
  std::vector<Item> stack = {{0, 0}};
  while (!stack.empty()) {
    if (max_nodes != 0 && emitted >= max_nodes) {
      out += "... (truncated)\n";
      break;
    }
    const Item item = stack.back();
    stack.pop_back();
    const AutoTreeNode& node = tree.Node(item.id);

    out.append(2 * node.depth, ' ');
    out += "{";
    const size_t show = std::min<size_t>(node.vertices.size(), 8);
    for (size_t i = 0; i < show; ++i) {
      if (i > 0) out += ",";
      out += std::to_string(node.vertices[i]);
    }
    if (node.vertices.size() > show) {
      out += ",... " + std::to_string(node.vertices.size()) + " vertices";
    }
    out += "}";
    if (node.is_leaf) {
      out += node.IsSingleton() ? " leaf" : " leaf[IR]";
    } else {
      out += node.divided_by_s ? " DivideS" : " DivideI";
    }
    if (node.parent >= 0) {
      out += " class=" + std::to_string(item.sym_class);
    }
    out += "\n";
    ++emitted;

    // Push children in reverse so they print in canonical order.
    for (size_t i = node.children.size(); i-- > 0;) {
      stack.push_back({node.children[i], node.child_sym_class[i]});
    }
  }
  return out;
}

std::vector<VertexId> OrbitIdsFromGenerators(
    VertexId n, std::span<const SparseAut> generators) {
  std::vector<VertexId> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&parent](VertexId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const SparseAut& gen : generators) {
    for (const auto& [v, img] : gen.moves) {
      VertexId a = find(v);
      VertexId b = find(img);
      if (a != b) parent[std::max(a, b)] = std::min(a, b);
    }
  }
  std::vector<VertexId> ids(n);
  for (VertexId v = 0; v < n; ++v) ids[v] = find(v);
  return ids;
}

}  // namespace dvicl
