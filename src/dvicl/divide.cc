#include "dvicl/divide.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace dvicl {

namespace {

// DVICL_DCHECK: the divide step must partition the node — every input
// vertex lands in exactly one piece, and each piece's edges stay inside its
// own vertex set (Lemmas 6.2/6.3: dropped edges are the reduction, crossing
// edges would be a correctness bug).
void DcheckPiecesPartition(std::span<const VertexId> vertices,
                           const std::vector<GraphPiece>& pieces) {
#ifdef DVICL_DCHECK_ENABLED
  std::vector<VertexId> merged;
  merged.reserve(vertices.size());
  for (const GraphPiece& piece : pieces) {
    DVICL_DCHECK(std::is_sorted(piece.vertices.begin(),
                                piece.vertices.end()))
        << "piece vertex set is not sorted";
    merged.insert(merged.end(), piece.vertices.begin(), piece.vertices.end());
    for (const Edge& e : piece.edges) {
      DVICL_DCHECK(std::binary_search(piece.vertices.begin(),
                                      piece.vertices.end(), e.first) &&
                   std::binary_search(piece.vertices.begin(),
                                      piece.vertices.end(), e.second))
          << "piece edge crosses the piece boundary";
    }
  }
  std::sort(merged.begin(), merged.end());
  std::vector<VertexId> expected(vertices.begin(), vertices.end());
  std::sort(expected.begin(), expected.end());
  DVICL_DCHECK(merged == expected)
      << "divide pieces do not partition the node's " << vertices.size()
      << " vertices";
#else
  (void)vertices;
  (void)pieces;
#endif
}

VertexId DsuFind(std::vector<VertexId>& parent, VertexId x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

void DsuUnion(std::vector<VertexId>& parent, VertexId a, VertexId b) {
  a = DsuFind(parent, a);
  b = DsuFind(parent, b);
  if (a != b) parent[std::max(a, b)] = std::min(a, b);
}

// Groups `vertices` into pieces by DSU component over `kept_edges`
// (every vertex with no kept edge forms its own piece), appending to
// *pieces. `skip` marks vertices already emitted as their own pieces.
void EmitComponents(std::span<const VertexId> vertices,
                    const std::vector<Edge>& kept_edges,
                    const std::vector<bool>& skip, DivideWorkspace* ws,
                    std::vector<GraphPiece>* pieces) {
  const size_t first_component_piece = pieces->size();
  std::vector<VertexId> touched_roots;
  for (size_t i = 0; i < vertices.size(); ++i) {
    if (skip[i]) continue;
    const VertexId v = vertices[i];
    const VertexId root = DsuFind(ws->dsu_parent, v);
    uint32_t& index = ws->piece_index[root];
    if (index == DivideWorkspace::kUnassigned) {
      index = static_cast<uint32_t>(pieces->size());
      pieces->emplace_back();
      touched_roots.push_back(root);
    }
    (*pieces)[index].vertices.push_back(v);
  }
  for (const Edge& e : kept_edges) {
    const VertexId root = DsuFind(ws->dsu_parent, e.first);
    (*pieces)[ws->piece_index[root]].edges.push_back(e);
  }
  for (VertexId root : touched_roots) {
    ws->piece_index[root] = DivideWorkspace::kUnassigned;
  }
  // Vertices were visited in ascending order and edges in sorted order, so
  // every piece's vectors are already sorted.
  (void)first_component_piece;
}

}  // namespace

bool DivideI(std::span<const VertexId> vertices,
             const std::vector<Edge>& edges, std::span<const uint32_t> colors,
             DivideWorkspace* ws, std::vector<GraphPiece>* pieces) {
  pieces->clear();
  if (vertices.size() < 2) return false;

  for (VertexId v : vertices) ++ws->color_count[colors[v]];

  // A vertex is a singleton cell of pi_g iff its color appears once in g.
  std::vector<bool> is_singleton(vertices.size());
  size_t num_singletons = 0;
  for (size_t i = 0; i < vertices.size(); ++i) {
    is_singleton[i] = ws->color_count[colors[vertices[i]]] == 1;
    num_singletons += is_singleton[i] ? 1 : 0;
  }
  for (VertexId v : vertices) ws->color_count[colors[v]] = 0;

  // Keep only edges between two non-singleton vertices; union them.
  for (VertexId v : vertices) ws->dsu_parent[v] = v;
  std::vector<Edge> kept;
  kept.reserve(edges.size());
  {
    // Membership test for "is singleton" by vertex id: reuse color_count as
    // a scratch bitmap keyed by vertex.
    for (size_t i = 0; i < vertices.size(); ++i) {
      ws->color_count[vertices[i]] = is_singleton[i] ? 1 : 0;
    }
    for (const Edge& e : edges) {
      if (ws->color_count[e.first] == 0 && ws->color_count[e.second] == 0) {
        kept.push_back(e);
        DsuUnion(ws->dsu_parent, e.first, e.second);
      }
    }
    for (VertexId v : vertices) ws->color_count[v] = 0;
  }

  // Singleton vertices become their own one-vertex pieces, in vertex order.
  for (size_t i = 0; i < vertices.size(); ++i) {
    if (!is_singleton[i]) continue;
    GraphPiece piece;
    piece.vertices.push_back(vertices[i]);
    pieces->push_back(std::move(piece));
  }
  EmitComponents(vertices, kept, is_singleton, ws, pieces);

  if (pieces->size() < 2) {
    pieces->clear();
    return false;
  }
  DcheckPiecesPartition(vertices, *pieces);
  return true;
}

bool DivideS(std::span<const VertexId> vertices, std::vector<Edge>* edges,
             std::span<const uint32_t> colors, DivideWorkspace* ws,
             std::vector<GraphPiece>* pieces) {
  pieces->clear();
  if (vertices.size() < 2 || edges->empty()) return false;

  for (VertexId v : vertices) ++ws->color_count[colors[v]];

  // Count edges per unordered color pair.
  auto pair_key = [](uint32_t a, uint32_t b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  };
  std::unordered_map<uint64_t, uint64_t> pair_edges;
  for (const Edge& e : *edges) {
    ++pair_edges[pair_key(colors[e.first], colors[e.second])];
  }

  // A color pair is removable when its edges are implied by the coloring:
  // a full clique inside one cell, or a full biclique between two cells
  // (Theorem 6.4).
  std::unordered_set<uint64_t> removable;
  // Iteration order cannot leak: each entry is tested independently and the
  // survivors land in a set queried only by membership.
  // NOLINT(dvicl-determinism)
  for (const auto& [key, count] : pair_edges) {
    const uint32_t ca = static_cast<uint32_t>(key >> 32);
    const uint32_t cb = static_cast<uint32_t>(key & 0xffffffffu);
    const uint64_t ka = ws->color_count[ca];
    const uint64_t kb = ws->color_count[cb];
    const uint64_t full = (ca == cb) ? ka * (ka - 1) / 2 : ka * kb;
    if (count == full) removable.insert(key);
  }
  for (VertexId v : vertices) ws->color_count[colors[v]] = 0;
  if (removable.empty()) return false;

  std::vector<Edge> kept;
  kept.reserve(edges->size());
  for (VertexId v : vertices) ws->dsu_parent[v] = v;
  for (const Edge& e : *edges) {
    if (removable.count(pair_key(colors[e.first], colors[e.second])) != 0) {
      continue;
    }
    kept.push_back(e);
    DsuUnion(ws->dsu_parent, e.first, e.second);
  }

  const std::vector<bool> skip(vertices.size(), false);
  EmitComponents(vertices, kept, skip, ws, pieces);

  if (pieces->size() < 2) {
    // Keep the (canonical) reduction even though the node stays connected:
    // the leaf labeler then works on a strictly smaller edge set.
    *edges = std::move(kept);
    pieces->clear();
    return false;
  }
  DcheckPiecesPartition(vertices, *pieces);
  return true;
}

}  // namespace dvicl
