#include "dvicl/cert_cache.h"

#include <algorithm>
#include <utility>

#include "common/arena.h"
#include "common/failpoint.h"
#include "refine/coloring.h"
#include "refine/refiner.h"

namespace dvicl {

namespace {

inline uint64_t MixHash(uint64_t h, uint64_t value) {
  h ^= value + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

uint32_t RoundUpToPowerOfTwo(uint32_t value) {
  uint32_t result = 1;
  while (result < value && result < (1u << 16)) result <<= 1;
  return result;
}

}  // namespace

uint64_t CachedLeaf::ApproxBytes() const {
  uint64_t bytes = sizeof(CachedLeaf);
  bytes += edges.capacity() * sizeof(Edge);
  bytes += colors.capacity() * sizeof(uint32_t);
  bytes += canonical_images.capacity() * sizeof(VertexId);
  bytes += generator_moves.capacity() *
           sizeof(std::vector<std::pair<VertexId, VertexId>>);
  for (const auto& moves : generator_moves) {
    bytes += moves.capacity() * sizeof(std::pair<VertexId, VertexId>);
  }
  return bytes;
}

CertCache::CertCache(const CertCacheConfig& config) : config_(config) {
  const uint32_t shards = RoundUpToPowerOfTwo(std::max(config.shards, 1u));
  uint32_t log2 = 0;
  while ((1u << log2) < shards) ++log2;
  shard_shift_ = 64 - log2;  // == 64 (identity shard) only when shards == 1
  shards_ = std::vector<Shard>(shards);
}

uint64_t CertCache::KeyOf(const Graph& local_graph,
                          std::span<const uint32_t> local_colors,
                          Arena* scratch) {
  ArenaFrame frame(scratch);
  uint64_t h = 0x100001b3ull;
  h = MixHash(h, local_graph.NumVertices());
  h = MixHash(h, local_graph.NumEdges());

  // Sorted (color, degree) profile: invariant under any relabeling that
  // preserves colors, cheap to compute, and already separates most
  // non-isomorphic pairs before the refinement-based component runs.
  SmallVec<uint64_t> profile(scratch);
  profile.reserve(local_graph.NumVertices());
  for (VertexId v = 0; v < local_graph.NumVertices(); ++v) {
    profile.push_back((static_cast<uint64_t>(local_colors[v]) << 32) |
                      local_graph.Degree(v));
  }
  std::sort(profile.begin(), profile.end());
  for (uint64_t value : profile) h = MixHash(h, value);

  // Refine-trace component: cell structure + quotient matrix of the
  // coarsest equitable refinement, with the refiner's isomorphism-invariant
  // cell order (refine/refiner.h).
  h = MixHash(h,
              EquitableSignatureHash(
                  local_graph, Coloring::FromLabels(local_colors, scratch),
                  scratch));
  return h;
}

bool CertCache::Verifies(const CachedLeaf& leaf, const Graph& local_graph,
                         std::span<const uint32_t> local_colors) {
  // Fault-injection site: report a verification mismatch, forcing the
  // caller onto the collision-fallback path (fresh IR search) — the run
  // must still complete with byte-identical output.
  if (DVICL_FAILPOINT(failpoint::sites::kCacheVerify)) return false;
  return leaf.num_vertices == local_graph.NumVertices() &&
         leaf.edges == local_graph.Edges() &&
         leaf.colors.size() == local_colors.size() &&
         std::equal(leaf.colors.begin(), leaf.colors.end(),
                    local_colors.begin());
}

std::shared_ptr<const CachedLeaf> CertCache::Lookup(
    uint64_t key, const Graph& local_graph,
    std::span<const uint32_t> local_colors) {
  // Fault-injection site: degrade the probe to a miss (the graceful path a
  // real cache backend failure must take — recompute, never crash).
  if (DVICL_FAILPOINT(failpoint::sites::kCacheProbe)) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Shard& shard = ShardFor(key);
  uint64_t rejected = 0;
  {
    MutexLock lock(shard.mu);
    auto bucket = shard.index.find(key);
    if (bucket != shard.index.end()) {
      for (auto it : bucket->second) {
        if (Verifies(*it->leaf, local_graph, local_colors)) {
          shard.lru.splice(shard.lru.begin(), shard.lru, it);
          hits_.fetch_add(1, std::memory_order_relaxed);
          if (rejected != 0) {
            collisions_.fetch_add(rejected, std::memory_order_relaxed);
          }
          return it->leaf;
        }
        ++rejected;
      }
    }
  }
  if (rejected != 0) {
    collisions_.fetch_add(rejected, std::memory_order_relaxed);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void CertCache::Insert(uint64_t key, CachedLeaf leaf) {
  // Fault-injection site: drop the publication. Later probes miss and
  // recompute; a partial entry is never visible.
  if (DVICL_FAILPOINT(failpoint::sites::kCachePublish)) return;
  Shard& shard = ShardFor(key);
  auto owned = std::make_shared<const CachedLeaf>(std::move(leaf));
  const uint64_t bytes = owned->ApproxBytes();

  MutexLock lock(shard.mu);
  auto bucket = shard.index.find(key);
  if (bucket != shard.index.end()) {
    // First-writer-wins: if any established entry stores the same colored
    // graph, keep it and drop this insert, so every reader composes with
    // the SAME published result. Stored edge lists are canonical
    // (Graph::Edges() form), so direct field comparison is exact.
    for (auto it : bucket->second) {
      if (it->leaf->num_vertices == owned->num_vertices &&
          it->leaf->edges == owned->edges &&
          it->leaf->colors == owned->colors) {
        return;
      }
    }
  }
  shard.lru.push_front(Entry{key, bytes, std::move(owned)});
  shard.index[key].push_back(shard.lru.begin());
  shard.bytes += bytes;
  insertions_.fetch_add(1, std::memory_order_relaxed);
  EvictOverBudgetLocked(&shard);
}

void CertCache::EvictOverBudgetLocked(Shard* shard) {
  // Budgets are enforced per shard so eviction never takes two locks; a
  // shard's slice is its fair share of the global budget (at least one
  // entry, so the most recent insert always survives).
  const uint64_t shard_count = shards_.size();
  const uint64_t max_entries =
      config_.max_entries == 0
          ? 0
          : std::max<uint64_t>(1, config_.max_entries / shard_count);
  const uint64_t max_bytes =
      config_.max_bytes == 0
          ? 0
          : std::max<uint64_t>(1, config_.max_bytes / shard_count);

  while (shard->lru.size() > 1 &&
         ((max_entries != 0 && shard->lru.size() > max_entries) ||
          (max_bytes != 0 && shard->bytes > max_bytes))) {
    const Entry& victim = shard->lru.back();
    auto bucket = shard->index.find(victim.key);
    auto& entries = bucket->second;
    auto last = std::prev(shard->lru.end());
    entries.erase(std::find(entries.begin(), entries.end(), last));
    if (entries.empty()) shard->index.erase(bucket);
    shard->bytes -= victim.bytes;
    shard->lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

CertCacheStats CertCache::Stats() const {
  CertCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.collisions = collisions_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    stats.entries += shard.lru.size();
    stats.bytes += shard.bytes;
  }
  return stats;
}

}  // namespace dvicl
