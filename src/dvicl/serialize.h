#ifndef DVICL_DVICL_SERIALIZE_H_
#define DVICL_DVICL_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "dvicl/dvicl.h"

namespace dvicl {

// Binary persistence for a DviclResult — the AutoTree is an index over a
// graph, and like any database index it must survive the process that built
// it. The format is versioned and checksummed:
//
//   magic "DVAT" | u32 version | u64 payload bytes | payload | u64 fnv1a
//
// Payload sections: colors, canonical labeling, certificate, generators,
// then the tree nodes (vertices/edges/labels/children/classes/flags) and
// the leaf_of array. All integers little-endian fixed width.
//
// Only COMPLETED results may be saved (a partial index is not a valid
// index). Loading validates the magic, version, length and checksum, and
// re-derives cheap invariants; a corrupted or truncated file yields an
// error, never a partially-filled result.
Status SaveDviclResult(const DviclResult& result, std::ostream& out);
Status SaveDviclResultToFile(const DviclResult& result,
                             const std::string& path);

Result<DviclResult> LoadDviclResult(std::istream& in);
Result<DviclResult> LoadDviclResultFromFile(const std::string& path);

}  // namespace dvicl

#endif  // DVICL_DVICL_SERIALIZE_H_
