#ifndef DVICL_DVICL_AUTO_TREE_H_
#define DVICL_DVICL_AUTO_TREE_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/big_uint.h"
#include "graph/graph.h"
#include "perm/permutation.h"

namespace dvicl {

// An automorphism stored as its moved points only. AutoTree generators are
// typically tiny (a transposition of two twin vertices, or a swap of two
// small symmetric components) while the graph can be huge, so storing dense
// image arrays per generator would dwarf the graph itself.
struct SparseAut {
  // (vertex, image) for every moved vertex; images of unlisted vertices are
  // themselves. Sorted by vertex.
  std::vector<std::pair<VertexId, VertexId>> moves;

  bool IsIdentity() const { return moves.empty(); }

  // Expands to a dense permutation on n points.
  Permutation ToDense(VertexId n) const;

  // Image of one vertex (binary search over moves).
  VertexId ImageOf(VertexId v) const;
};

// One node of the AutoTree (paper §5): a vertex-induced colored subgraph
// (g, pi_g) of (G, pi) together with its canonical labeling. pi_g is the
// projection of the root equitable coloring, so it is represented simply by
// the global color array; only the vertex set, the (possibly reduced) edge
// set and the canonical labels are stored per node.
struct AutoTreeNode {
  // Vertices of g: global ids, sorted ascending.
  std::vector<VertexId> vertices;
  // Edges of g after the divide steps' automorphism-preserving reductions
  // (Lemmas 6.2/6.3); canonical orientation (first < second), sorted.
  std::vector<Edge> edges;
  // Canonical label of vertices[i]: pi(v) + rank (Algorithms 4/5). Labels
  // are unique within a node; two symmetric sibling nodes carry identical
  // label sets, which is what makes their canonical forms equal.
  std::vector<VertexId> labels;

  int32_t parent = -1;
  uint32_t depth = 0;
  // Children sorted in non-descending canonical-form order (Algorithm 5
  // line 1).
  std::vector<uint32_t> children;
  // Symmetry class per child (aligned with `children`): equal class ids
  // mean equal canonical forms, i.e. the child subgraphs are symmetric in
  // (G, pi) (Lemmas 6.7/6.8).
  std::vector<uint32_t> child_sym_class;

  bool is_leaf = false;
  // True if the children were produced by DivideS (else DivideI).
  bool divided_by_s = false;
  // Hash of this node's canonical form (the full form is transient).
  uint64_t form_hash = 0;

  // For non-singleton leaves: the generating set of Aut(g, pi_g) found by
  // the IR backend, in global vertex ids. Consumed by SSM-AT.
  std::vector<SparseAut> leaf_generators;

  // Build-time observability: wall seconds this node's own divide step and
  // combine step (CombineST, or the CombineCL leaf IR run) took on
  // whichever thread built it. Per-step, NOT aggregated over the subtree;
  // zero for singleton leaves. Transient telemetry — not serialized and
  // not part of any canonical output.
  float divide_seconds = 0.0f;
  float combine_seconds = 0.0f;
  // Search-tree nodes the leaf IR run visited (non-singleton leaves only).
  uint64_t leaf_ir_nodes = 0;

  bool IsSingleton() const { return vertices.size() == 1; }

  // Canonical label of global vertex v, which must belong to this node.
  VertexId LabelOf(VertexId v) const;
};

// The AutoTree AT(G, pi): node 0 is the root representing (G, pi).
class AutoTree {
 public:
  AutoTree() = default;

  uint32_t NumNodes() const { return static_cast<uint32_t>(nodes_.size()); }
  const AutoTreeNode& Node(uint32_t id) const { return nodes_[id]; }
  const AutoTreeNode& Root() const { return nodes_[0]; }

  // Leaf node containing vertex v.
  uint32_t LeafOf(VertexId v) const { return leaf_of_[v]; }

  // Structure statistics reported in paper Tables 3/4.
  uint32_t NumSingletonLeaves() const;
  uint32_t NumNonSingletonLeaves() const;
  double AverageNonSingletonLeafSize() const;
  uint32_t Depth() const;

  // Per-node timing breakdown (observability): sum of every node's own
  // divide + combine step seconds — the portion of the build CPU time that
  // is attributed to a specific node — and the ids of the (up to) k nodes
  // with the largest step time, descending. Useful to answer "which
  // subproblem dominated the build" without loading a trace.
  double TotalStepSeconds() const;
  std::vector<uint32_t> SlowestNodes(size_t k) const;

  // Mutable access for the builder (dvicl.cc) and the §6.1 tree extension.
  std::vector<AutoTreeNode>& MutableNodes() { return nodes_; }
  std::vector<uint32_t>& MutableLeafOf() { return leaf_of_; }

 private:
  std::vector<AutoTreeNode> nodes_;
  std::vector<uint32_t> leaf_of_;
};

// DVICL_DCHECK verifier (no-op unless built with -DDVICL_DCHECK=ON): aborts
// with a diagnostic unless the finished tree is well-formed — parent/depth
// links consistent, every internal node's child vertex sets partition the
// parent's vertex set, per-node labels unique and consistent with the root
// coloring (each color class labeled color..color+count-1), edges confined
// to the node's vertex set, children listed in non-descending
// canonical-form order with child_sym_class grouping exactly the equal
// forms and form_hash matching the recomputed form. `colors` is the root
// equitable color array (DviclResult::colors). Runs automatically at the
// end of every completed DviclCanonicalLabeling.
void VerifyAutoTree(const AutoTree& tree, std::span<const uint32_t> colors);

// Union-find orbit closure over sparse generators: orbit_id[v] is the
// minimum vertex of v's orbit under the generated group.
std::vector<VertexId> OrbitIdsFromGenerators(
    VertexId n, std::span<const SparseAut> generators);

// Exact |Aut(G, pi)| computed directly from the tree structure: the
// automorphism group DviCL exposes is the iterated wreath-style product of
// per-node sibling symmetries and leaf groups, so its order is
//   prod over internal nodes, over symmetry classes of size m:  m!
// x prod over non-singleton leaves: |Aut(leaf)| (Schreier-Sims on the
//   leaf's local generators).
// Verified against Schreier-Sims over the full generating set in tests.
BigUint AutomorphismOrderFromTree(const AutoTree& tree);

// Human-readable rendering of the tree — the "explicit view of the
// symmetric structure" the paper advertises (§1). One line per node,
// indented by depth, showing the vertex set (elided beyond a few members),
// leaf/divide kind and symmetry class. Rendering stops after `max_nodes`
// lines (0 = unlimited).
std::string FormatAutoTree(const AutoTree& tree, size_t max_nodes = 0);

}  // namespace dvicl

#endif  // DVICL_DVICL_AUTO_TREE_H_
