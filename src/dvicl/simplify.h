#ifndef DVICL_DVICL_SIMPLIFY_H_
#define DVICL_DVICL_SIMPLIFY_H_

#include <vector>

#include "dvicl/dvicl.h"
#include "graph/graph.h"
#include "refine/coloring.h"

namespace dvicl {

// Structural equivalence (paper §2/§6.1): u and v are structurally
// equivalent iff N(u) = N(v). Equal neighbor sets force u, v non-adjacent
// (an edge would require a self-loop), so each class is an independent set
// of mutually automorphic "twins", and G is exactly the independent-set
// blow-up of its quotient on class representatives.
struct StructuralEquivalence {
  // class_id[v] = minimum vertex of v's class (so v is a representative
  // iff class_id[v] == v).
  std::vector<VertexId> class_id;
  // Classes with >= 2 members, each sorted ascending.
  std::vector<std::vector<VertexId>> nontrivial_classes;
};

StructuralEquivalence FindStructuralEquivalence(const Graph& graph);

// Result of the §6.1-optimized pipeline. The canonical labeling,
// certificate and Aut generators refer to the ORIGINAL graph; the inner
// DviCL result (and its AutoTree) refers to the simplified quotient graph,
// whose vertex i corresponds to representatives()[i].
struct SimplifiedDviclResult {
  // Mirrors the inner run's RunOutcome (common/outcome.h); on anything
  // other than kCompleted the expanded canonical outputs below are empty.
  RunOutcome outcome = RunOutcome::kCancelled;
  bool completed() const { return outcome == RunOutcome::kCompleted; }
  Permutation canonical_labeling;   // on the original graph
  Certificate certificate;          // of the original colored graph
  std::vector<SparseAut> generators;  // on the original graph
  StructuralEquivalence equivalence;
  std::vector<VertexId> representatives;  // sorted class representatives
  Graph simplified_graph;                 // quotient on representatives
  DviclResult inner;                      // DviCL on the quotient
};

// DviCL optimized by structural equivalence (paper §6.1): collapse each
// twin class to one representative, label the quotient (whose initial
// colors encode both the original color and the class size), and expand.
// Produces a valid canonical labeling of (graph, initial) — generally a
// different one than plain DviclCanonicalLabeling, as the paper notes
// ("different implementations can generate different canonical labeling").
SimplifiedDviclResult DviclWithSimplification(const Graph& graph,
                                              const Coloring& initial,
                                              const DviclOptions& options = {});

}  // namespace dvicl

#endif  // DVICL_DVICL_SIMPLIFY_H_
