#include "dvicl/simplify.h"

#include <algorithm>
#include <unordered_map>

namespace dvicl {

namespace {

inline uint64_t MixHash(uint64_t h, uint64_t value) {
  h ^= value + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

StructuralEquivalence FindStructuralEquivalence(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  StructuralEquivalence eq;
  eq.class_id.resize(n);

  // Bucket by neighbor-list hash, then confirm exact equality inside each
  // bucket (adjacency lists are sorted, so equality is a span compare).
  std::unordered_map<uint64_t, std::vector<VertexId>> buckets;
  buckets.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    uint64_t h = 0xcbf29ce484222325ull;
    h = MixHash(h, graph.Degree(v));
    for (VertexId u : graph.Neighbors(v)) h = MixHash(h, u);
    buckets[h].push_back(v);
  }

  for (VertexId v = 0; v < n; ++v) eq.class_id[v] = v;
  // Iteration order cannot leak: every class is keyed by its minimum member
  // and the class list is sorted before returning (line below the loop).
  // NOLINT(dvicl-determinism)
  for (auto& [hash, members] : buckets) {
    if (members.size() < 2) continue;
    // Within a bucket, group by exact neighbor list. Buckets are tiny in
    // practice; quadratic grouping with a "claimed" marker is fine.
    std::vector<bool> claimed(members.size(), false);
    for (size_t i = 0; i < members.size(); ++i) {
      if (claimed[i]) continue;
      std::vector<VertexId> cls = {members[i]};
      const auto ni = graph.Neighbors(members[i]);
      for (size_t j = i + 1; j < members.size(); ++j) {
        if (claimed[j]) continue;
        const auto nj = graph.Neighbors(members[j]);
        if (ni.size() == nj.size() &&
            std::equal(ni.begin(), ni.end(), nj.begin())) {
          claimed[j] = true;
          cls.push_back(members[j]);
        }
      }
      if (cls.size() >= 2) {
        std::sort(cls.begin(), cls.end());
        for (VertexId member : cls) eq.class_id[member] = cls.front();
        eq.nontrivial_classes.push_back(std::move(cls));
      }
    }
  }
  std::sort(eq.nontrivial_classes.begin(), eq.nontrivial_classes.end());
  return eq;
}

SimplifiedDviclResult DviclWithSimplification(const Graph& graph,
                                              const Coloring& initial,
                                              const DviclOptions& options) {
  const VertexId n = graph.NumVertices();
  SimplifiedDviclResult result;
  result.equivalence = FindStructuralEquivalence(graph);
  const std::vector<VertexId>& class_id = result.equivalence.class_id;

  // Representatives, sorted; local ids follow this order.
  std::vector<VertexId> local_of(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (class_id[v] == v) {
      local_of[v] = static_cast<VertexId>(result.representatives.size());
      result.representatives.push_back(v);
    }
  }
  const VertexId ns = static_cast<VertexId>(result.representatives.size());

  // Quotient graph: class adjacency equals representative adjacency
  // because all twins share the same neighbor set.
  std::vector<Edge> quotient_edges;
  for (const Edge& e : graph.Edges()) {
    const VertexId a = class_id[e.first];
    const VertexId b = class_id[e.second];
    if (e.first == a && e.second == b) {
      quotient_edges.emplace_back(local_of[a], local_of[b]);
    }
  }
  result.simplified_graph = Graph::FromEdges(ns, std::move(quotient_edges));

  // Initial colors on the quotient encode (original color, class size):
  // two classes may only be automorphic if both match.
  const std::vector<uint32_t> original_colors = initial.ColorOffsets();
  std::vector<uint32_t> class_size(n, 1);
  for (const auto& cls : result.equivalence.nontrivial_classes) {
    class_size[cls.front()] = static_cast<uint32_t>(cls.size());
  }
  std::vector<std::pair<uint64_t, VertexId>> keyed;
  keyed.reserve(ns);
  for (VertexId i = 0; i < ns; ++i) {
    const VertexId rep = result.representatives[i];
    keyed.emplace_back((static_cast<uint64_t>(original_colors[rep]) << 32) |
                           class_size[rep],
                       i);
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<uint32_t> quotient_labels(ns, 0);
  uint32_t label = 0;
  for (size_t i = 0; i < keyed.size(); ++i) {
    if (i > 0 && keyed[i].first != keyed[i - 1].first) ++label;
    quotient_labels[keyed[i].second] = label;
  }

  result.inner = DviclCanonicalLabeling(
      result.simplified_graph, Coloring::FromLabels(quotient_labels), options);
  result.outcome = result.inner.outcome;
  if (!result.completed()) return result;

  // Expand the quotient labeling: classes ordered by their representative's
  // canonical position; members take consecutive positions. Member order
  // within a class is irrelevant for the certificate because twins have
  // identical neighborhoods and colors.
  std::vector<VertexId> class_order(ns);
  for (VertexId i = 0; i < ns; ++i) {
    class_order[result.inner.canonical_labeling(i)] = i;
  }
  std::vector<VertexId> image(n, 0);
  VertexId position = 0;
  for (VertexId slot = 0; slot < ns; ++slot) {
    const VertexId rep = result.representatives[class_order[slot]];
    if (class_size[rep] == 1) {
      image[rep] = position++;
    } else {
      // Locate the class (nontrivial_classes is sorted by front()).
      auto it = std::lower_bound(
          result.equivalence.nontrivial_classes.begin(),
          result.equivalence.nontrivial_classes.end(), rep,
          [](const std::vector<VertexId>& cls, VertexId x) {
            return cls.front() < x;
          });
      for (VertexId member : *it) image[member] = position++;
    }
  }
  result.canonical_labeling = Permutation(std::move(image));
  result.certificate = MakeCertificate(
      graph, original_colors, result.canonical_labeling.ImageArray());

  // Generators on the original graph: (a) adjacent twin transpositions,
  // (b) quotient generators lifted class-to-class.
  for (const auto& cls : result.equivalence.nontrivial_classes) {
    for (size_t i = 0; i + 1 < cls.size(); ++i) {
      SparseAut swap;
      swap.moves = {{cls[i], cls[i + 1]}, {cls[i + 1], cls[i]}};
      result.generators.push_back(std::move(swap));
    }
  }
  auto members_of = [&](VertexId rep) -> std::vector<VertexId> {
    if (class_size[rep] == 1) return {rep};
    auto it = std::lower_bound(
        result.equivalence.nontrivial_classes.begin(),
        result.equivalence.nontrivial_classes.end(), rep,
        [](const std::vector<VertexId>& cls, VertexId x) {
          return cls.front() < x;
        });
    return *it;
  };
  for (const SparseAut& gen : result.inner.generators) {
    SparseAut lifted;
    for (const auto& [local_v, local_img] : gen.moves) {
      const std::vector<VertexId> from =
          members_of(result.representatives[local_v]);
      const std::vector<VertexId> to =
          members_of(result.representatives[local_img]);
      // Class sizes match because quotient colors encode them and DviCL
      // generators preserve colors.
      for (size_t i = 0; i < from.size(); ++i) {
        lifted.moves.emplace_back(from[i], to[i]);
      }
    }
    std::sort(lifted.moves.begin(), lifted.moves.end());
    if (!lifted.IsIdentity()) result.generators.push_back(std::move(lifted));
  }
  return result;
}

}  // namespace dvicl
