#ifndef DVICL_DVICL_CERT_CACHE_H_
#define DVICL_DVICL_CERT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "graph/graph.h"

namespace dvicl {

class Arena;

// Canonical-form cache for AutoTree leaf subproblems.
//
// DviCL's divide step repeatedly produces vertex-induced colored subgraphs
// that are isomorphic to each other: the components of a gadget forest, the
// symmetric "wings" hanging off an axis, repeated motifs in the benchmark
// families. Every such subproblem reaches CombineCL as a LOCAL colored
// graph — vertices relabeled to 0..k-1 in sorted-global order, colors
// projected from the root equitable coloring — and two symmetric
// subproblems lower to the IDENTICAL local colored graph (the lowering is
// canonical, and the root coloring cannot distinguish symmetric copies).
// The cache exploits exactly that: it memoizes the leaf IR search keyed by
// an isomorphism-invariant structural key and reuses a stored result only
// after verifying that the stored local colored graph is byte-identical to
// the probe. On a verified hit the leaf's canonical labeling and
// automorphism generators are reconstructed by composing the cached local
// result with the leaf's local->global vertex correspondence — no IR
// search. On a key match whose verification fails (a hash collision, e.g.
// a CFI-style near-miss with the same refinement trace) the leaf falls
// back to the normal IR path; a false hit is thus impossible by
// construction, not by luck.
//
// Determinism: reuse requires exact input equality and the IR backend is
// deterministic, so a hit returns bit-for-bit the labels and generators
// the IR search would have produced. Publication is first-writer-wins:
// when two threads race on the same subproblem both run the IR search,
// one entry wins, and every later reader sees that entry — but since all
// racers computed identical results, the canonical output is independent
// of thread count and scheduling. Only the telemetry (hit/miss counts)
// may vary between runs.
//
// Thread-safety: all methods may be called concurrently. The cache is
// sharded by key; each shard is guarded by its own mutex and no lock is
// held while the caller runs an IR search. Entries are handed out as
// shared_ptr so a concurrent LRU eviction never invalidates a result a
// reader is still consuming.
struct CertCacheConfig {
  // Maximum number of cached leaves across all shards (0 = unlimited).
  uint64_t max_entries = 1ull << 16;
  // Approximate byte budget across all shards (0 = unlimited). Entries are
  // evicted least-recently-used per shard once either budget is exceeded.
  uint64_t max_bytes = 64ull << 20;
  // Number of independent LRU shards (rounded up to at least 1). More
  // shards = less lock contention, slightly less exact global LRU.
  uint32_t shards = 16;
};

// Monotone counters plus current occupancy. Exported as the
// cert_cache.{hits,misses,collisions,evictions,bytes} metrics and surfaced
// per-run (as deltas) in DviclStats.
struct CertCacheStats {
  uint64_t hits = 0;        // verified reuse, IR search skipped
  uint64_t misses = 0;      // no reusable entry (includes collisions)
  uint64_t collisions = 0;  // key matched, exact verification rejected
  uint64_t insertions = 0;  // entries published (first writer only)
  uint64_t evictions = 0;   // entries dropped by LRU budget enforcement
  uint64_t entries = 0;     // current entry count
  uint64_t bytes = 0;       // current approximate footprint
};

// One memoized leaf subproblem: the exact local colored graph (for
// verification) and the IR result needed to reconstruct the leaf labeling
// (canonical images) and its automorphism generators (local moved points,
// in discovery order).
struct CachedLeaf {
  VertexId num_vertices = 0;
  std::vector<Edge> edges;       // canonical form (Graph::Edges())
  std::vector<uint32_t> colors;  // local color offsets, per local vertex

  std::vector<VertexId> canonical_images;  // local gamma*: id -> position
  std::vector<std::vector<std::pair<VertexId, VertexId>>> generator_moves;

  uint64_t ApproxBytes() const;
};

class CertCache {
 public:
  explicit CertCache(const CertCacheConfig& config = {});

  CertCache(const CertCache&) = delete;
  CertCache& operator=(const CertCache&) = delete;

  // Isomorphism-invariant structural key of a local colored graph:
  // (n, m, sorted (color, degree) profile, refine-trace hash from
  // refine/refiner.h). Isomorphic local colored graphs always produce the
  // same key; the converse is deliberately NOT promised — equal keys are
  // resolved by exact verification inside Lookup. `scratch` (may be null)
  // is an arena for the key computation's transient state — the profile
  // array and the signature-hash refinement — used under a frame, so
  // nothing arena-backed survives the call.
  static uint64_t KeyOf(const Graph& local_graph,
                        std::span<const uint32_t> local_colors,
                        Arena* scratch = nullptr);

  // Verified lookup: returns an entry whose stored colored graph is
  // byte-identical to (local_graph, local_colors), or null. Records one
  // hit, or one miss (plus one collision per key-equal entry that failed
  // verification). A returned entry is immutable and safe to use after
  // any concurrent eviction.
  std::shared_ptr<const CachedLeaf> Lookup(
      uint64_t key, const Graph& local_graph,
      std::span<const uint32_t> local_colors);

  // First-writer-wins publication: if an entry verifying equal to `leaf`
  // already exists, the call is a no-op (the established entry stays);
  // otherwise the entry is published and LRU eviction enforces the
  // configured budgets.
  void Insert(uint64_t key, CachedLeaf leaf);

  CertCacheStats Stats() const;

 private:
  struct Entry {
    uint64_t key = 0;
    uint64_t bytes = 0;
    std::shared_ptr<const CachedLeaf> leaf;
  };
  struct Shard {
    // mutable so the read-only Stats() sweep can lock const shards. Shard
    // locks are leaf locks in the global order (common/mutex.h): at most
    // one is held at a time and nothing is acquired under it.
    mutable Mutex mu;
    // front = most recently used
    std::list<Entry> lru DVICL_GUARDED_BY(mu);
    // key -> all entries with that key (usually 1; >1 only on collisions).
    std::unordered_map<uint64_t, std::vector<std::list<Entry>::iterator>>
        index DVICL_GUARDED_BY(mu);
    uint64_t bytes DVICL_GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(uint64_t key) {
    // Multiply-shift so keys that differ only in high bits still spread.
    if (shards_.size() == 1) return shards_[0];
    return shards_[(key * 0x9e3779b97f4a7c15ull) >> shard_shift_];
  }
  void EvictOverBudgetLocked(Shard* shard) DVICL_REQUIRES(shard->mu);

  static bool Verifies(const CachedLeaf& leaf, const Graph& local_graph,
                       std::span<const uint32_t> local_colors);

  CertCacheConfig config_;
  uint32_t shard_shift_ = 0;
  std::vector<Shard> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> collisions_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace dvicl

#endif  // DVICL_DVICL_CERT_CACHE_H_
