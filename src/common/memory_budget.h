#ifndef DVICL_COMMON_MEMORY_BUDGET_H_
#define DVICL_COMMON_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>

namespace dvicl {

// Cooperative memory governance for a labeling run: a polled RSS-delta
// tracker. The budget captures the process RSS at construction as the
// baseline; Exceeded() reports true once the process has grown more than
// `limit_mib` mebibytes past it. Like the time limit, exceeding the budget
// raises no signal by itself — the IR search and the DviCL build poll at
// their safe points (once per search-tree node / build frame) and unwind
// with RunOutcome::kMemoryBudget.
//
// Delta, not absolute: a service process labeling many graphs has a large
// steady-state RSS that an absolute cap would have to track; the delta form
// bounds what ONE run may add, which is the quantity a per-request budget
// wants. RSS is read from /proc/self/statm (common/stopwatch.h), which
// counts pages the kernel actually mapped — allocator caching means frees
// do not lower it, so the measure is conservative (monotone per process).
//
// Thread-safety: Exceeded() may be called concurrently from every worker.
// Reads of /proc are throttled to one per kPollStride calls (relaxed
// atomic counter); once the limit trips, a latch makes every subsequent
// call return true without polling.
class MemoryBudget {
 public:
  // limit_mib = 0 disables the budget (Exceeded() is always false and
  // never polls).
  explicit MemoryBudget(uint64_t limit_mib);

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  bool enabled() const { return limit_mib_ != 0; }
  uint64_t limit_mib() const { return limit_mib_; }
  double baseline_mib() const { return baseline_mib_; }

  // True once RSS grew more than limit_mib past the baseline. Latches.
  bool Exceeded();

  // RSS growth over the baseline at the last poll, in mebibytes.
  double LastDeltaMib() const {
    return last_delta_mib_.load(std::memory_order_relaxed);
  }

  // Polls unconditionally (no stride). Exposed for tests and for callers
  // that poll rarely anyway (e.g. once per AutoTree build frame).
  bool PollNow();

 private:
  // Exceeded() reads /proc once per this many calls; between polls it
  // costs one relaxed fetch_add.
  static constexpr uint64_t kPollStride = 256;

  uint64_t limit_mib_;
  double baseline_mib_ = 0.0;
  std::atomic<uint64_t> calls_{0};
  std::atomic<bool> exceeded_{false};
  std::atomic<double> last_delta_mib_{0.0};
};

}  // namespace dvicl

#endif  // DVICL_COMMON_MEMORY_BUDGET_H_
