#ifndef DVICL_COMMON_BIG_UINT_H_
#define DVICL_COMMON_BIG_UINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dvicl {

// Arbitrary-precision unsigned integer.
//
// The library needs exact counts that routinely overflow 64 bits:
// automorphism group orders (Schreier-Sims), numbers of symmetric seed
// sets (paper Table 6 reports values up to 7.36E88), and symmetric-image
// counts in SSM. Only the operations those call sites need are provided:
// addition, multiplication, comparison, factorial, decimal and scientific
// rendering.
//
// Representation: base 2^32 limbs, little-endian, no leading zero limbs
// (zero is an empty limb vector).
class BigUint {
 public:
  BigUint() = default;
  explicit BigUint(uint64_t value);

  BigUint(const BigUint&) = default;
  BigUint& operator=(const BigUint&) = default;
  BigUint(BigUint&&) = default;
  BigUint& operator=(BigUint&&) = default;

  // Returns n! (n factorial).
  static BigUint Factorial(uint64_t n);

  // Returns C(n, k) (binomial coefficient).
  static BigUint Binomial(uint64_t n, uint64_t k);

  BigUint& operator+=(const BigUint& other);
  BigUint& operator*=(const BigUint& other);
  BigUint& operator*=(uint64_t value);

  // Floor division by a small divisor (must be non-zero). Used for exact
  // divisions in combinatorial counting.
  BigUint& DivideBySmall(uint32_t divisor);

  friend BigUint operator+(BigUint lhs, const BigUint& rhs) {
    lhs += rhs;
    return lhs;
  }
  friend BigUint operator*(BigUint lhs, const BigUint& rhs) {
    lhs *= rhs;
    return lhs;
  }
  friend BigUint operator*(BigUint lhs, uint64_t rhs) {
    lhs *= rhs;
    return lhs;
  }

  friend bool operator==(const BigUint& lhs, const BigUint& rhs) {
    return lhs.limbs_ == rhs.limbs_;
  }
  friend bool operator!=(const BigUint& lhs, const BigUint& rhs) {
    return !(lhs == rhs);
  }
  friend bool operator<(const BigUint& lhs, const BigUint& rhs);
  friend bool operator>(const BigUint& lhs, const BigUint& rhs) {
    return rhs < lhs;
  }
  friend bool operator<=(const BigUint& lhs, const BigUint& rhs) {
    return !(rhs < lhs);
  }
  friend bool operator>=(const BigUint& lhs, const BigUint& rhs) {
    return !(lhs < rhs);
  }

  bool IsZero() const { return limbs_.empty(); }

  // True iff the value fits in a uint64_t.
  bool FitsUint64() const { return limbs_.size() <= 2; }

  // Value as uint64_t; requires FitsUint64().
  uint64_t ToUint64() const;

  // Approximate value as double (inf if out of range).
  double ToDouble() const;

  // Full decimal representation, e.g. "8820000000000000".
  std::string ToDecimalString() const;

  // Compact form matching the paper's tables: plain decimal when the value
  // is below 10^7, otherwise scientific like "8.82E+15".
  std::string ToCompactString() const;

 private:
  void Trim();

  std::vector<uint32_t> limbs_;
};

}  // namespace dvicl

#endif  // DVICL_COMMON_BIG_UINT_H_
