#include "common/stopwatch.h"

#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>

namespace dvicl {

double PeakRssMebibytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  // ru_maxrss is kibibytes on Linux.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

double CurrentRssMebibytes() {
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return PeakRssMebibytes();
  long size = 0;
  long resident = 0;
  const int fields = std::fscanf(statm, "%ld %ld", &size, &resident);
  std::fclose(statm);
  if (fields != 2) return PeakRssMebibytes();
  const long page_size = sysconf(_SC_PAGESIZE);
  return static_cast<double>(resident) * static_cast<double>(page_size) /
         (1024.0 * 1024.0);
}

}  // namespace dvicl
