#include "common/memory_budget.h"

#include "common/stopwatch.h"

namespace dvicl {

MemoryBudget::MemoryBudget(uint64_t limit_mib) : limit_mib_(limit_mib) {
  if (limit_mib_ != 0) baseline_mib_ = CurrentRssMebibytes();
}

bool MemoryBudget::Exceeded() {
  if (limit_mib_ == 0) return false;
  if (exceeded_.load(std::memory_order_relaxed)) return true;
  const uint64_t call = calls_.fetch_add(1, std::memory_order_relaxed);
  if (call % kPollStride != 0) return false;
  return PollNow();
}

bool MemoryBudget::PollNow() {
  if (limit_mib_ == 0) return false;
  if (exceeded_.load(std::memory_order_relaxed)) return true;
  const double delta = CurrentRssMebibytes() - baseline_mib_;
  last_delta_mib_.store(delta, std::memory_order_relaxed);
  if (delta > static_cast<double>(limit_mib_)) {
    exceeded_.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

}  // namespace dvicl
