#ifndef DVICL_COMMON_ARENA_H_
#define DVICL_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "common/check.h"

// Bump/arena allocation for the refine+IR hot path (DESIGN.md §13).
//
// The refinement worklist and the IR search allocate the same short-lived
// arrays (colorings, scratch counters, candidate lists) once per splitter /
// per search-tree node — at serving scale that general-purpose heap churn is
// the dominant per-request cost. An Arena turns each of those lifetimes into
// a pointer bump: allocation is O(1) with no per-object bookkeeping, and the
// whole region is reclaimed by rewinding a watermark (ArenaFrame) or by an
// O(1) Reset between requests that RETAINS the chunks for reuse. The pattern
// follows nauty/Traces' flat reusable workspace arrays and divine's
// toolkit/pool.h (ROADMAP item 2).
//
// Lifetime contract: nothing allocated from an arena may outlive the frame
// it was allocated under. Results that escape a run (certificates,
// labelings, generators, cache entries) stay on the plain heap; see
// DESIGN.md §13 for the full escape analysis.

namespace dvicl {

// Thread-local monotone counters of hot-path allocation events, mirroring
// ThreadRefineSplitters() (refine/refiner.h): observability consumers
// snapshot before/after a region on the same thread and attribute the delta.
// Counted events are (a) heap buffer acquisitions by SmallVec growth and
// (b) arena chunk acquisitions — so an arena-backed run only pays when it
// actually touches the system allocator, which is what makes the
// arena-on/arena-off ratio a meaningful regression signal (exported as the
// dvicl.alloc.* metrics).
namespace arena_internal {
extern thread_local uint64_t tl_alloc_count;
extern thread_local uint64_t tl_alloc_bytes;
inline void CountAlloc(size_t bytes) {
  ++tl_alloc_count;
  tl_alloc_bytes += bytes;
}
}  // namespace arena_internal

uint64_t ThreadAllocCount();
uint64_t ThreadAllocBytes();

// Chunked bump allocator. Not thread-safe: one arena belongs to one thread
// (use ThreadScratchArena() for per-thread scratch).
class Arena {
 public:
  static constexpr size_t kDefaultMinChunkBytes = 64 * 1024;
  static constexpr size_t kMaxChunkBytes = 8 * 1024 * 1024;

  explicit Arena(size_t min_chunk_bytes = kDefaultMinChunkBytes)
      : min_chunk_bytes_(min_chunk_bytes ? min_chunk_bytes : 1),
        next_chunk_bytes_(min_chunk_bytes_) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Watermark for Rewind: everything allocated after Position() is
  // reclaimed by Rewind (the memory stays reserved for reuse).
  struct Mark {
    size_t chunk = 0;
    size_t offset = 0;
  };

  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    DVICL_CHECK(align != 0 && (align & (align - 1)) == 0)
        << "arena alignment must be a power of two, got " << align;
    if (bytes == 0) bytes = 1;
    for (;;) {
      if (current_ < chunks_.size()) {
        const Chunk& c = chunks_[current_];
        const uintptr_t base = reinterpret_cast<uintptr_t>(c.data.get());
        const uintptr_t aligned =
            (base + offset_ + (align - 1)) & ~static_cast<uintptr_t>(align - 1);
        if (aligned + bytes <= base + c.size) {
          offset_ = aligned + bytes - base;
          return reinterpret_cast<void*>(aligned);
        }
        // This chunk cannot fit the request; move the cursor forward. A
        // retained chunk that is too small is skipped (it stays reserved
        // and is reused by later, smaller allocations after a Reset).
        ++current_;
        offset_ = 0;
        continue;
      }
      AddChunk(bytes + align);
    }
  }

  // Typed array carve-out; elements are NOT initialized. Only trivially
  // destructible types may live in an arena (nothing runs destructors).
  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>);
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  Mark Position() const { return {current_, offset_}; }

  // Reclaims everything allocated after `mark` (O(1); chunks are retained).
  void Rewind(const Mark& mark) {
    current_ = mark.chunk;
    offset_ = mark.offset;
  }

  // O(1) reset between requests: the cursor returns to the first chunk and
  // every reserved chunk — including oversized large-block chunks — is kept
  // for reuse, so a steady-state server allocates from the system only
  // while a request sets a new high-water mark.
  void Reset() {
    current_ = 0;
    offset_ = 0;
  }

  // Returns every chunk to the system (used for idle trimming and tests).
  void Release() {
    chunks_.clear();
    chunks_.shrink_to_fit();
    reserved_bytes_ = 0;
    current_ = 0;
    offset_ = 0;
    next_chunk_bytes_ = min_chunk_bytes_;
  }

  size_t NumChunks() const { return chunks_.size(); }
  size_t ReservedBytes() const { return reserved_bytes_; }
  // Bytes currently allocated (telemetry; walks the chunk list).
  size_t UsedBytes() const {
    size_t used = offset_;
    for (size_t i = 0; i < current_ && i < chunks_.size(); ++i) {
      used += chunks_[i].size;
    }
    return used;
  }

 private:
  struct Chunk {
    std::unique_ptr<unsigned char[]> data;
    size_t size = 0;
  };

  void AddChunk(size_t min_bytes);

  const size_t min_chunk_bytes_;
  size_t next_chunk_bytes_;
  std::vector<Chunk> chunks_;
  size_t reserved_bytes_ = 0;
  size_t current_ = 0;  // cursor chunk index (== chunks_.size() when full)
  size_t offset_ = 0;   // bump offset within the cursor chunk
};

// RAII mark/rewind. Null-safe: a frame over a null arena is a no-op, so
// call sites stay branch-free across the arena-on/arena-off legs.
class ArenaFrame {
 public:
  explicit ArenaFrame(Arena* arena) : arena_(arena) {
    if (arena_ != nullptr) mark_ = arena_->Position();
  }
  ~ArenaFrame() {
    if (arena_ != nullptr) arena_->Rewind(mark_);
  }
  ArenaFrame(const ArenaFrame&) = delete;
  ArenaFrame& operator=(const ArenaFrame&) = delete;

 private:
  Arena* const arena_;
  Arena::Mark mark_;
};

// Per-thread scratch arena. DviCL worker tasks and the serving path carve
// run-local state from their thread's arena under an ArenaFrame; between
// requests the frame discipline returns the watermark to its entry value,
// which is the "reset per request instead of freeing" behavior — memory is
// retained by the thread and reused by the next request it serves.
inline Arena& ThreadScratchArena() {
  thread_local Arena arena;
  return arena;
}

// Vector with inline storage for kInline elements that spills to its arena
// (when constructed with one) or to the counted heap. Restricted to
// trivially copyable+destructible element types — exactly the hot-path
// payloads (vertex ids, counters, key/vertex pairs) — so growth is a
// memcpy and arena reclamation never needs destructors.
//
// Allocator semantics: the arena binding is fixed at construction. The
// copy CONSTRUCTOR deliberately produces a plain heap-backed copy (copying
// a coloring must never smuggle arena pointers across a frame or thread
// boundary); use the (other, arena) constructor to clone into an arena.
// Copy ASSIGNMENT keeps the destination's own allocator and copies
// elements.
template <typename T, size_t kInline = 0>
class SmallVec {
  // Relocation is a memcpy and reclamation never runs destructors, so the
  // element type must be trivially relocatable. Trivial copy CONSTRUCTION
  // plus trivial destruction is the practical criterion (the one LLVM's
  // SmallVector uses): it admits std::pair, whose assignment operator is
  // formally non-trivial but whose object representation is still plain
  // bits.
  static_assert(std::is_trivially_copy_constructible_v<T>);
  static_assert(std::is_trivially_destructible_v<T>);

 public:
  SmallVec() { InitInline(); }
  explicit SmallVec(Arena* arena) : arena_(arena) { InitInline(); }
  SmallVec(const SmallVec& other) {
    InitInline();
    assign(other.data(), other.data() + other.size());
  }
  SmallVec(const SmallVec& other, Arena* arena) : arena_(arena) {
    InitInline();
    assign(other.data(), other.data() + other.size());
  }
  SmallVec(SmallVec&& other) noexcept { MoveFrom(std::move(other)); }
  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) assign(other.data(), other.data() + other.size());
    return *this;
  }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      FreeHeapBuffer();
      MoveFrom(std::move(other));
    }
    return *this;
  }
  ~SmallVec() { FreeHeapBuffer(); }

  Arena* arena() const { return arena_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void clear() { size_ = 0; }
  void pop_back() { --size_; }

  void push_back(const T& value) {
    if (size_ == capacity_) Grow(size_ + 1);
    // Placement copy-construction, not assignment: the slot's lifetime has
    // not started, and T's assignment operator may be non-trivial (pair).
    ::new (static_cast<void*>(data_ + size_)) T(value);
    ++size_;
  }

  template <typename... Args>
  void emplace_back(Args&&... args) {
    push_back(T(static_cast<Args&&>(args)...));
  }

  void reserve(size_t n) {
    if (n > capacity_) Grow(n);
  }

  // Value-initializes appended elements (matches std::vector::resize).
  void resize(size_t n) {
    reserve(n);
    for (size_t i = size_; i < n; ++i) {
      ::new (static_cast<void*>(data_ + i)) T();
    }
    size_ = n;
  }

  void assign(size_t n, const T& value) {
    clear();
    reserve(n);
    for (size_t i = 0; i < n; ++i) {
      ::new (static_cast<void*>(data_ + i)) T(value);
    }
    size_ = n;
  }

  template <typename It>
  void assign(It first, It last) {
    clear();
    const size_t n = static_cast<size_t>(std::distance(first, last));
    reserve(n);
    T* out = data_;
    for (It it = first; it != last; ++it, ++out) {
      ::new (static_cast<void*>(out)) T(*it);
    }
    size_ = n;
  }

  friend bool operator==(const SmallVec& lhs, const SmallVec& rhs) {
    if (lhs.size_ != rhs.size_) return false;
    for (size_t i = 0; i < lhs.size_; ++i) {
      if (!(lhs.data_[i] == rhs.data_[i])) return false;
    }
    return true;
  }
  friend bool operator!=(const SmallVec& lhs, const SmallVec& rhs) {
    return !(lhs == rhs);
  }

 private:
  T* InlinePtr() {
    if constexpr (kInline > 0) {
      return reinterpret_cast<T*>(inline_);
    } else {
      return nullptr;
    }
  }

  bool UsesInlineOrNull() { return data_ == InlinePtr() || data_ == nullptr; }

  void InitInline() {
    data_ = InlinePtr();
    capacity_ = kInline;
    size_ = 0;
  }

  void MoveFrom(SmallVec&& other) noexcept {
    arena_ = other.arena_;
    if (other.UsesInlineOrNull()) {
      InitInline();
      if (other.size_ > 0) {
        std::memcpy(static_cast<void*>(data_),
                    static_cast<const void*>(other.data_),
                    other.size_ * sizeof(T));
      }
      size_ = other.size_;
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
    }
    other.InitInline();
  }

  void FreeHeapBuffer() {
    if (arena_ == nullptr && !UsesInlineOrNull()) {
      ::operator delete(data_);
    }
  }

  void Grow(size_t min_cap) {
    size_t new_cap = capacity_ == 0 ? 8 : capacity_ * 2;
    if (new_cap < min_cap) new_cap = min_cap;
    const size_t bytes = new_cap * sizeof(T);
    T* fresh;
    if (arena_ != nullptr) {
      // Arena growth abandons the old buffer inside the current frame; the
      // waste is bounded by the frame's lifetime and reclaimed at rewind.
      // (The arena itself counts chunk refills.)
      fresh = static_cast<T*>(arena_->Allocate(bytes, alignof(T)));
    } else {
      fresh = static_cast<T*>(::operator new(bytes));
      arena_internal::CountAlloc(bytes);
    }
    if (size_ > 0) {
      // void* cast: T may have a formally non-trivial assignment operator
      // (pair) that -Wclass-memaccess would flag, but trivial copy
      // construction guarantees the bytes are the value.
      std::memcpy(static_cast<void*>(fresh), static_cast<const void*>(data_),
                  size_ * sizeof(T));
    }
    FreeHeapBuffer();
    data_ = fresh;
    capacity_ = new_cap;
  }

  Arena* arena_ = nullptr;
  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
  alignas(kInline > 0 ? alignof(T) : 1) unsigned char
      inline_[kInline > 0 ? kInline * sizeof(T) : 1];
};

}  // namespace dvicl

#endif  // DVICL_COMMON_ARENA_H_
