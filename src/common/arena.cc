#include "common/arena.h"

#include <algorithm>

namespace dvicl {

namespace arena_internal {
thread_local uint64_t tl_alloc_count = 0;
thread_local uint64_t tl_alloc_bytes = 0;
}  // namespace arena_internal

uint64_t ThreadAllocCount() { return arena_internal::tl_alloc_count; }

uint64_t ThreadAllocBytes() { return arena_internal::tl_alloc_bytes; }

void Arena::AddChunk(size_t min_bytes) {
  // Geometric growth up to kMaxChunkBytes keeps the chunk count logarithmic
  // in the high-water mark; a request larger than the growth schedule gets
  // an exactly-fitted chunk (the "large block" path). Either way the chunk
  // joins the chain and is retained across Reset for reuse.
  const size_t size = std::max(next_chunk_bytes_, min_bytes);
  next_chunk_bytes_ = std::min(next_chunk_bytes_ * 2, kMaxChunkBytes);
  Chunk chunk;
  chunk.data.reset(new unsigned char[size]);
  chunk.size = size;
  arena_internal::CountAlloc(size);
  reserved_bytes_ += size;
  current_ = chunks_.size();
  offset_ = 0;
  chunks_.push_back(std::move(chunk));
}

}  // namespace dvicl
