#ifndef DVICL_COMMON_STOPWATCH_H_
#define DVICL_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace dvicl {

// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Elapsed wall time in seconds since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Peak resident set size of the current process in mebibytes, read from the
// OS (getrusage). Used to report the "memory" columns of paper Table 5.
double PeakRssMebibytes();

// Current resident set size in mebibytes (from /proc/self/statm on Linux;
// falls back to peak RSS elsewhere). Lets a harness report per-phase deltas.
double CurrentRssMebibytes();

}  // namespace dvicl

#endif  // DVICL_COMMON_STOPWATCH_H_
