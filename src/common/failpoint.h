#ifndef DVICL_COMMON_FAILPOINT_H_
#define DVICL_COMMON_FAILPOINT_H_

#include <cstdint>
#include <exception>
#include <string>
#include <vector>

// Deterministic fault-injection framework in the style of RocksDB sync
// points: named sites compiled into the unwind paths of the labeling
// engine, armed per-site by tests, with hit/trigger counters.
//
//   if (DVICL_FAILPOINT(failpoint::sites::kDivide)) { /* unwind */ }
//
// Semantics:
//  - Sites exist only in builds configured with -DDVICL_FAILPOINTS=ON
//    (which defines DVICL_FAILPOINTS_ENABLED). In a release build the macro
//    is the constant `false` and the whole branch folds away — zero sites,
//    zero cost.
//  - In an enabled build with nothing armed, a site costs ONE relaxed
//    atomic load and a predictable branch (the global armed-site count).
//    Only when at least one site is armed does evaluation take the registry
//    mutex — an acceptable cost for fault-injection test runs.
//  - Arming is per-site and counter-based: skip the first `skip_hits`
//    evaluations, then trigger up to `max_triggers` times (0 = every hit).
//    This makes injection deterministic for single-threaded runs and
//    site-deterministic (which site fires, not which thread hits it first)
//    for parallel runs.
//  - The registry functions are always compiled (tests can exercise the
//    framework even when sites are compiled out); `kEnabled` tells a test
//    whether arming can have any effect on library code.
//
// The site catalogue below is the complete list of compiled-in sites; keep
// it in sync with DESIGN.md §10 ("failpoint catalogue"). Each entry names
// the unwind path it exercises and what a triggered fault does there.
namespace dvicl {
namespace failpoint {

#ifdef DVICL_FAILPOINTS_ENABLED
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

namespace sites {
// Leaf IR search, once per search-tree node. Triggered: the search aborts
// with RunOutcome::kInternalFault (same unwind as a budget, distinct cause).
inline constexpr char kIrSearchNode[] = "ir.search.node";
// DviCL divide step, once per internal-node divide attempt. Triggered: the
// build records kInternalFault at that node and unwinds cooperatively.
inline constexpr char kDivide[] = "dvicl.divide";
// CombineST, once per internal node combine. Triggered: as kDivide.
inline constexpr char kCombineSt[] = "dvicl.combine_st";
// CombineCL, once per non-singleton leaf, before the IR search or cache
// probe. Triggered: as kDivide.
inline constexpr char kCombineCl[] = "dvicl.combine_cl";
// Task-pool task execution, once per popped task. Triggered: the task
// throws InjectedFault, exercising the pool's exception plumbing
// (TaskGroup::Wait rethrows; DviCL converts it to kInternalFault).
inline constexpr char kTaskRun[] = "task_pool.run_task";
// Cert-cache probe. Triggered: the probe degrades to a miss — the run must
// still complete with byte-identical output (graceful degradation).
inline constexpr char kCacheProbe[] = "cert_cache.probe";
// Cert-cache exact verification. Triggered: verification reports a
// mismatch, forcing the collision fallback to a fresh IR search.
inline constexpr char kCacheVerify[] = "cert_cache.verify";
// Cert-cache publication. Triggered: the insert is dropped — later probes
// miss and recompute; nothing partial is ever published.
inline constexpr char kCachePublish[] = "cert_cache.publish";
// Graph readers (ReadEdgeList / ReadDimacs), once per call. Triggered: the
// reader returns Status::IOError, the injected-I/O-failure path.
inline constexpr char kGraphIoRead[] = "graph_io.read";
// Schreier-Sims generator insertion, once per AddGenerator. Triggered:
// throws InjectedFault before any chain mutation, so the chain stays valid.
inline constexpr char kSchreierInsert[] = "schreier_sims.add_generator";
// Server request decode, once per received frame. Triggered: the frame is
// answered with a structured internal_fault reply (request id recovered
// best-effort) and the connection keeps serving.
inline constexpr char kServerDecode[] = "server.decode_request";
// Server batch dispatch, once per request task popped off the shared pool.
// Triggered: only that request's reply degrades to internal_fault; its
// batch-mates complete byte-exact and the shared CertCache stays clean.
inline constexpr char kServerDispatch[] = "server.dispatch";
// Server reply write, once per reply frame. Triggered: the computed reply
// is replaced by an internal_fault error reply (still framed, so the
// client is never left hanging) and the connection keeps serving.
inline constexpr char kServerWriteReply[] = "server.write_reply";
// Worker crash injection, once per drained batch (top of ProcessBatch).
// Triggered: raise(SIGKILL) — the process dies abruptly mid-batch with no
// unwind, no flush, possibly torn reply frames on the wire. Only meaningful
// in a supervised multi-process daemon (arm via `dvicl_server --failpoint`
// or pre-fork in a chaos test); arming it in-process kills the test binary.
inline constexpr char kWorkerKill[] = "worker.kill";
// Worker hang injection, once per drained batch. Triggered: raise(SIGSTOP)
// — every thread of the process freezes, exactly the wedged-worker shape
// the supervisor's heartbeat deadline exists to catch (it escalates to
// SIGKILL + restart). Same in-process warning as worker.kill.
inline constexpr char kWorkerHang[] = "worker.hang";
}  // namespace sites

// Every site above, for tests that sweep the catalogue.
std::vector<std::string> AllSites();

// Exception thrown by sites whose unwind path is exception-based (the task
// pool already ferries task exceptions to TaskGroup::Wait; Schreier-Sims
// has no Status plumbing). Only ever thrown by a triggered failpoint.
class InjectedFault : public std::exception {
 public:
  explicit InjectedFault(std::string site)
      : message_("injected failpoint fault at " + site),
        site_(std::move(site)) {}
  const char* what() const noexcept override { return message_.c_str(); }
  const std::string& site() const { return site_; }

 private:
  std::string message_;
  std::string site_;
};

struct ArmSpec {
  // Evaluations to let pass before the first trigger (0 = trigger on the
  // first hit).
  uint64_t skip_hits = 0;
  // Cap on triggers (0 = unlimited — every non-skipped hit triggers).
  uint64_t max_triggers = 1;
};

// Arms `site`; subsequent evaluations follow `spec`. Re-arming resets the
// site's counters.
void Arm(const std::string& site, ArmSpec spec = {});
// Disarms `site` (counters are kept until the next Arm).
void Disarm(const std::string& site);
// Disarms everything and clears all counters; call between tests.
void DisarmAll();

bool IsArmed(const std::string& site);
// Evaluations of `site` since it was last armed (armed or not: counting
// only happens while at least one site is armed, to keep disarmed
// evaluation at one atomic load).
uint64_t HitCount(const std::string& site);
// Evaluations that returned "trigger" since the site was last armed.
uint64_t TriggerCount(const std::string& site);
// Sum of TriggerCount over all sites (exported as the failpoint.triggered
// metric).
uint64_t TotalTriggers();

namespace internal {
// True when at least one site is armed; the one-branch disarmed fast path.
bool AnyArmed();
// Full (mutex-guarded) evaluation; returns true when the site triggers.
bool Evaluate(const char* site);
}  // namespace internal

}  // namespace failpoint
}  // namespace dvicl

#ifdef DVICL_FAILPOINTS_ENABLED
#define DVICL_FAILPOINT(site)                    \
  (::dvicl::failpoint::internal::AnyArmed() &&   \
   ::dvicl::failpoint::internal::Evaluate(site))
#else
// `false && sizeof(site)` keeps the site expression name-checked while the
// compiler folds the whole condition (and the branch it guards) away.
#define DVICL_FAILPOINT(site) (false && sizeof(site) == 0)
#endif

#endif  // DVICL_COMMON_FAILPOINT_H_
