#ifndef DVICL_COMMON_TASK_POOL_H_
#define DVICL_COMMON_TASK_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dvicl {

namespace obs {
class TraceRecorder;
}  // namespace obs

class TaskGroup;

// Monotone telemetry counters of one pool's lifetime, snapshot via
// TaskPool::GetStats(). Always maintained (each is one relaxed atomic op on
// an already-synchronized path), independent of whether tracing is on.
//
// Accounting identities the pool guarantees once all groups are joined:
//   tasks_run_local + tasks_stolen == tasks_queued   (every queued task is
//     popped exactly once, either by its submitter's slot or by a thief)
//   tasks_inline counts Submit calls that bypassed the queue because the
//     local deque was at its bound (TaskGroup(nullptr) inline execution is
//     not pool activity and is not counted here).
struct TaskPoolStats {
  uint64_t tasks_queued = 0;
  uint64_t tasks_inline = 0;
  uint64_t tasks_run_local = 0;
  uint64_t tasks_stolen = 0;
  // High-water mark of any single slot's deque depth.
  uint64_t max_deque_depth = 0;
};

// Cooperative cancellation token shared between a driver and its tasks.
// Cancellation is advisory: tasks poll Cancelled() at safe points (e.g. the
// IR search loop checks it once per tree node) and unwind cleanly. Relaxed
// atomics suffice because the flag only ever goes false -> true and carries
// no data dependency.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool Cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  // Raw flag for APIs that take an optional cancellation input without
  // depending on this header's type (see IrOptions::cancel).
  const std::atomic<bool>* Flag() const { return &cancelled_; }

 private:
  std::atomic<bool> cancelled_{false};
};

// A small work-stealing task pool: one bounded deque per thread slot,
// std::jthread workers, no external dependencies.
//
// Threading model:
//   - The pool has `num_threads` slots. Slot 0 belongs to the owning
//     thread (the one that constructed the pool and calls TaskGroup::Wait);
//     slots 1..num_threads-1 each run a worker jthread.
//   - A thread submits to the back of its own deque and pops from the back
//     (LIFO, keeps subtree work hot in cache); idle threads steal from the
//     front of other deques (FIFO, steals the oldest = usually largest
//     subproblem).
//   - Deques are bounded: when a thread's deque is full, Submit executes
//     the task inline instead of queueing, which bounds memory and
//     naturally throttles very fine-grained producers.
//
// Determinism contract: the pool makes no ordering promises between tasks,
// so callers must make each task a pure function of its inputs plus
// per-slot scratch (index via ThreadIndex()) and join results in a fixed
// order of their own choosing. TaskGroup::Wait is the join barrier: all
// memory effects of the group's tasks happen-before Wait returns.
class TaskPool {
 public:
  // Spawns num_threads - 1 workers (slot 0 is the caller's). num_threads
  // must be >= 1; a 1-thread pool runs every task on the owning thread
  // inside Wait, which is how DviCL keeps a single code path for the
  // sequential default.
  explicit TaskPool(unsigned num_threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  unsigned NumThreads() const { return num_threads_; }

  // Slot index of the calling thread in [0, NumThreads()): workers get
  // their slot, every other thread (including the owner) gets 0. Use it to
  // index per-thread scratch arrays sized NumThreads().
  unsigned ThreadIndex() const;

  // One slot per hardware thread (>= 1).
  static unsigned DefaultThreads();

  // Telemetry snapshot; consistent (the identities in TaskPoolStats hold)
  // once every TaskGroup using this pool has been waited.
  TaskPoolStats GetStats() const;

  // Optional tracing: when non-null, the pool records spawn/steal/run
  // events into `trace` (Chrome trace format; see obs/trace.h). Must be
  // set while the pool is idle — typically right after construction — and
  // the recorder must outlive the pool.
  void SetTrace(obs::TraceRecorder* trace) { trace_ = trace; }

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group;
  };

  struct Slot {
    Mutex mu;
    std::deque<Task> tasks DVICL_GUARDED_BY(mu);
  };

  // Per-slot queue bound; past it, Submit degrades to inline execution.
  static constexpr size_t kSlotBound = 1024;

  // Enqueues (or runs inline when the local deque is full). Called with
  // group->pending_ already incremented.
  void Enqueue(Task task);
  // Pops one task — own back first, then steals other fronts — and runs
  // it. Returns false if every deque was empty.
  bool RunOneTask(unsigned self);
  // Runs a task and settles its group accounting (exceptions included).
  static void RunTask(Task task);
  void WorkerLoop(const std::stop_token& stop, unsigned index);
  void NotifyAll();

  unsigned num_threads_;
  std::vector<std::unique_ptr<Slot>> slots_;
  // wake_mu_ guards no data of its own: it only serializes the sleep
  // predicate (queued_ / stop / group-pending reads) against the notify.
  Mutex wake_mu_;
  CondVar wake_cv_;
  // Count of currently queued (not yet popped) tasks; the workers' sleep
  // predicate.
  std::atomic<uint64_t> queued_{0};

  // Telemetry (TaskPoolStats); relaxed atomics, written on paths that
  // already take the slot mutex or run a task.
  std::atomic<uint64_t> stat_queued_{0};
  std::atomic<uint64_t> stat_inline_{0};
  std::atomic<uint64_t> stat_run_local_{0};
  std::atomic<uint64_t> stat_stolen_{0};
  std::atomic<uint64_t> stat_max_depth_{0};
  obs::TraceRecorder* trace_ = nullptr;

  std::vector<std::jthread> workers_;  // last member: dtor joins first
};

// A join scope for a batch of tasks, usable from any thread including pool
// workers (nested submission). Wait() blocks until every task submitted to
// this group has finished, helping to execute queued tasks meanwhile, and
// rethrows the first exception any of them raised.
class TaskGroup {
 public:
  // pool may be null, in which case Submit runs tasks inline; this lets
  // call sites keep one code path for "no parallelism configured".
  explicit TaskGroup(TaskPool* pool) : pool_(pool) {}
  ~TaskGroup();  // waits for stragglers; exceptions are swallowed here

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Submit(std::function<void()> fn);
  void Wait();

 private:
  friend class TaskPool;

  void RecordError(std::exception_ptr error);
  void OnTaskDone();

  TaskPool* pool_;
  std::atomic<uint64_t> pending_{0};
  Mutex error_mu_;
  std::exception_ptr first_error_ DVICL_GUARDED_BY(error_mu_);
};

}  // namespace dvicl

#endif  // DVICL_COMMON_TASK_POOL_H_
