#ifndef DVICL_COMMON_CHECK_H_
#define DVICL_COMMON_CHECK_H_

#include <sstream>

// DVICL_DCHECK / DVICL_CHECK — invariant and input checks for the
// canonical-labeling core.
//
// The canonical labeling must be exact: a violated algebraic invariant (a
// non-equitable partition, an image array that is not a bijection, a child
// set that does not partition its parent) does not crash — it silently
// produces a wrong certificate. nauty/Traces and saucy guard against this
// class of bug with debug assertions; this header is our equivalent.
//
//   DVICL_DCHECK(cond) << "context";          // streams like an ostream
//   DVICL_DCHECK_EQ(a, b);                    // also _NE _LT _LE _GT _GE
//
// Semantics:
//  - Compiled out entirely unless the build sets -DDVICL_DCHECK=ON (which
//    defines DVICL_DCHECK_ENABLED). In a disabled build the condition and
//    every streamed operand are NOT evaluated — the whole statement folds
//    to nothing — so arbitrarily expensive verification (full equitability
//    scans, automorphism re-checks) is free in release.
//  - On failure: prints "DVICL_DCHECK failed" with file:line, the
//    expression text and the streamed message to stderr, then aborts.
//    gtest death tests match on the "DVICL_DCHECK" prefix.
//  - The comparison macros evaluate each operand once for the comparison;
//    operands are evaluated again only while building the failure message
//    on the (aborting) failure path, so side-effecting operands are safe in
//    passing checks but should be avoided on principle.
//
// The verifier functions that use these macros (refine::VerifyEquitable,
// VerifyPermutation, VerifyAutoTree, SchreierSims::CheckInvariants) follow
// the same contract: callable in any build, no-ops unless DVICL_DCHECK is
// on. See DESIGN.md §9 for the invariant catalogue.
//
// DVICL_CHECK is the always-on sibling for *input* validation at API
// boundaries (edge endpoints in range, label arrays the right size,
// permutations the right degree): cheap O(1)-per-element guards whose
// violation means the CALLER handed the library garbage, which previously
// hit `assert` (compiled out in release → UB). DVICL_CHECK is compiled in
// every build; on failure it prints "DVICL_CHECK failed" with file:line and
// aborts — death tests match on that distinct prefix. Use Status for
// untrusted external data (files); DVICL_CHECK for programming-error
// preconditions. See DESIGN.md §10.

namespace dvicl {

// True in builds configured with -DDVICL_DCHECK=ON; lets tests branch on
// whether the invariant layer is live (death test vs no-op expectation).
#ifdef DVICL_DCHECK_ENABLED
inline constexpr bool kDcheckEnabled = true;
#else
inline constexpr bool kDcheckEnabled = false;
#endif

namespace internal {

// Collects the failure message; the destructor prints and aborts. Used as a
// full-expression temporary so the abort happens after all <<s ran.
class CheckFailMessage {
 public:
  // `prefix` is the macro name ("DVICL_CHECK" / "DVICL_DCHECK") so death
  // tests can match which layer fired.
  CheckFailMessage(const char* prefix, const char* file, int line,
                   const char* expr);
  ~CheckFailMessage();  // prints to stderr and aborts; never returns

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Swallows a stream expression in the dead branch of the check ternary;
// operator& has lower precedence than << but higher than ?:, which is what
// lets DVICL_DCHECK(x) << "msg" parse as one expression of type void.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

struct Voidify {
  void operator&(std::ostream&) const {}
  void operator&(const NullStream&) const {}
};

}  // namespace internal
}  // namespace dvicl

// Always-on precondition check: compiled into every build, evaluates `cond`
// exactly once, aborts with a "DVICL_CHECK failed" message when false.
#define DVICL_CHECK(cond)                                          \
  (cond) ? (void)0                                                 \
         : ::dvicl::internal::Voidify() &                          \
               ::dvicl::internal::CheckFailMessage(                \
                   "DVICL_CHECK", __FILE__, __LINE__, #cond)       \
                   .stream()

#ifdef DVICL_DCHECK_ENABLED

#define DVICL_DCHECK(cond)                                         \
  (cond) ? (void)0                                                 \
         : ::dvicl::internal::Voidify() &                          \
               ::dvicl::internal::CheckFailMessage(                \
                   "DVICL_DCHECK", __FILE__, __LINE__, #cond)      \
                   .stream()

#else  // !DVICL_DCHECK_ENABLED

// `true || (cond)` keeps every operand name-checked and odr-alive (no
// unused-variable warnings at call sites) while guaranteeing nothing is
// evaluated; the compiler folds the whole statement away.
#define DVICL_DCHECK(cond) \
  (true || (cond)) ? (void)0 : ::dvicl::internal::Voidify() & \
                                   ::dvicl::internal::NullStream()

#endif  // DVICL_DCHECK_ENABLED

#define DVICL_DCHECK_OP(op, a, b) \
  DVICL_DCHECK((a)op(b)) << " (" << (a) << " vs " << (b) << ") "

#define DVICL_CHECK_OP(op, a, b) \
  DVICL_CHECK((a)op(b)) << " (" << (a) << " vs " << (b) << ") "

#define DVICL_CHECK_EQ(a, b) DVICL_CHECK_OP(==, a, b)
#define DVICL_CHECK_NE(a, b) DVICL_CHECK_OP(!=, a, b)
#define DVICL_CHECK_LT(a, b) DVICL_CHECK_OP(<, a, b)
#define DVICL_CHECK_LE(a, b) DVICL_CHECK_OP(<=, a, b)
#define DVICL_CHECK_GT(a, b) DVICL_CHECK_OP(>, a, b)
#define DVICL_CHECK_GE(a, b) DVICL_CHECK_OP(>=, a, b)

#define DVICL_DCHECK_EQ(a, b) DVICL_DCHECK_OP(==, a, b)
#define DVICL_DCHECK_NE(a, b) DVICL_DCHECK_OP(!=, a, b)
#define DVICL_DCHECK_LT(a, b) DVICL_DCHECK_OP(<, a, b)
#define DVICL_DCHECK_LE(a, b) DVICL_DCHECK_OP(<=, a, b)
#define DVICL_DCHECK_GT(a, b) DVICL_DCHECK_OP(>, a, b)
#define DVICL_DCHECK_GE(a, b) DVICL_DCHECK_OP(>=, a, b)

#endif  // DVICL_COMMON_CHECK_H_
