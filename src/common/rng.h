#ifndef DVICL_COMMON_RNG_H_
#define DVICL_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dvicl {

// Deterministic pseudo-random number generator (xoshiro256**, seeded via
// SplitMix64). Every workload generator and property test in the repository
// uses this class so that all experiments are exactly reproducible from a
// seed, independent of platform and standard-library implementation.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform value in [0, bound); bound must be > 0. Uses rejection sampling
  // so the distribution is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  // Uniform value in [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0, 1]).
  bool NextBernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

 private:
  uint64_t state_[4];
};

}  // namespace dvicl

#endif  // DVICL_COMMON_RNG_H_
