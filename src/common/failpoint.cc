#include "common/failpoint.h"

#include <atomic>
#include <map>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dvicl {
namespace failpoint {

namespace {

struct SiteState {
  bool armed = false;
  ArmSpec spec;
  uint64_t hits = 0;
  uint64_t triggers = 0;
};

// One registry per process. An std::map keyed by the site name keeps
// iteration deterministic (AllSites order, test sweeps); the handful of
// sites makes lookup cost irrelevant — the hot path never gets here unless
// something is armed.
struct Registry {
  Mutex mu;
  std::map<std::string, SiteState> sites DVICL_GUARDED_BY(mu);
};

Registry& TheRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all tests
  return *registry;
}

// Disarmed fast path: sites check this count with one relaxed load.
std::atomic<uint64_t> g_armed_count{0};

}  // namespace

std::vector<std::string> AllSites() {
  return {sites::kIrSearchNode,   sites::kDivide,        sites::kCombineSt,
          sites::kCombineCl,      sites::kTaskRun,       sites::kCacheProbe,
          sites::kCacheVerify,    sites::kCachePublish,  sites::kGraphIoRead,
          sites::kSchreierInsert, sites::kServerDecode,  sites::kServerDispatch,
          sites::kServerWriteReply, sites::kWorkerKill,  sites::kWorkerHang};
}

void Arm(const std::string& site, ArmSpec spec) {
  Registry& r = TheRegistry();
  MutexLock lock(r.mu);
  SiteState& state = r.sites[site];
  if (!state.armed) g_armed_count.fetch_add(1, std::memory_order_relaxed);
  state.armed = true;
  state.spec = spec;
  state.hits = 0;
  state.triggers = 0;
}

void Disarm(const std::string& site) {
  Registry& r = TheRegistry();
  MutexLock lock(r.mu);
  auto it = r.sites.find(site);
  if (it == r.sites.end() || !it->second.armed) return;
  it->second.armed = false;
  g_armed_count.fetch_sub(1, std::memory_order_relaxed);
}

void DisarmAll() {
  Registry& r = TheRegistry();
  MutexLock lock(r.mu);
  uint64_t armed = 0;
  for (auto& [name, state] : r.sites) {
    if (state.armed) ++armed;
  }
  r.sites.clear();
  if (armed != 0) g_armed_count.fetch_sub(armed, std::memory_order_relaxed);
}

bool IsArmed(const std::string& site) {
  Registry& r = TheRegistry();
  MutexLock lock(r.mu);
  auto it = r.sites.find(site);
  return it != r.sites.end() && it->second.armed;
}

uint64_t HitCount(const std::string& site) {
  Registry& r = TheRegistry();
  MutexLock lock(r.mu);
  auto it = r.sites.find(site);
  return it != r.sites.end() ? it->second.hits : 0;
}

uint64_t TriggerCount(const std::string& site) {
  Registry& r = TheRegistry();
  MutexLock lock(r.mu);
  auto it = r.sites.find(site);
  return it != r.sites.end() ? it->second.triggers : 0;
}

uint64_t TotalTriggers() {
  Registry& r = TheRegistry();
  MutexLock lock(r.mu);
  uint64_t total = 0;
  for (const auto& [name, state] : r.sites) total += state.triggers;
  return total;
}

namespace internal {

bool AnyArmed() {
  return g_armed_count.load(std::memory_order_relaxed) != 0;
}

bool Evaluate(const char* site) {
  Registry& r = TheRegistry();
  MutexLock lock(r.mu);
  auto it = r.sites.find(site);
  if (it == r.sites.end() || !it->second.armed) return false;
  SiteState& state = it->second;
  const uint64_t hit = state.hits++;
  if (hit < state.spec.skip_hits) return false;
  if (state.spec.max_triggers != 0 &&
      state.triggers >= state.spec.max_triggers) {
    return false;
  }
  ++state.triggers;
  return true;
}

}  // namespace internal

}  // namespace failpoint
}  // namespace dvicl
