#ifndef DVICL_COMMON_STATUS_H_
#define DVICL_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace dvicl {

// Minimal Status / Result pair in the style of Arrow and RocksDB: library
// code never throws; fallible operations return a Status (or a Result<T>
// carrying a value on success).
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kIOError,
    kNotFound,
    kResourceExhausted,
    kDeadlineExceeded,
  };

  Status() : code_(Code::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(Code::kInvalidArgument, std::move(message));
  }
  static Status IOError(std::string message) {
    return Status(Code::kIOError, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(Code::kNotFound, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(Code::kResourceExhausted, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(Code::kDeadlineExceeded, std::move(message));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName() + ": " + message_;
  }

 private:
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  std::string CodeName() const {
    switch (code_) {
      case Code::kOk:
        return "OK";
      case Code::kInvalidArgument:
        return "InvalidArgument";
      case Code::kIOError:
        return "IOError";
      case Code::kNotFound:
        return "NotFound";
      case Code::kResourceExhausted:
        return "ResourceExhausted";
      case Code::kDeadlineExceeded:
        return "DeadlineExceeded";
    }
    return "Unknown";
  }

  Code code_;
  std::string message_;
};

// Result<T> is a Status plus a value that is present iff the status is OK.
template <typename T>
class Result {
 public:
  // Implicit construction from a value or a non-OK status keeps call sites
  // concise (`return graph;` / `return Status::IOError(...)`), mirroring
  // arrow::Result.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::Ok()), value_(std::move(value)) {}
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Requires ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dvicl

#endif  // DVICL_COMMON_STATUS_H_
