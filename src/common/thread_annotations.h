#ifndef DVICL_COMMON_THREAD_ANNOTATIONS_H_
#define DVICL_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis attribute macros (DESIGN.md §14).
//
// These turn the repo's comment-level locking contracts ("guarded by mu_",
// "call with the shard lock held") into compiler-checked invariants: under
// clang with -Wthread-safety (the CI static-analysis job promotes the
// warning group to an error with -Werror=thread-safety), reading a
// DVICL_GUARDED_BY field without holding its mutex, or calling a
// DVICL_REQUIRES function unlocked, fails the build. Under gcc (the default
// local toolchain) every macro expands to nothing, so annotations are free
// documentation there.
//
// The vocabulary follows the de-facto standard set (abseil/LLVM
// thread_annotations.h), DVICL_-prefixed:
//
//   DVICL_CAPABILITY("mutex")   class is a lockable capability (see
//                               dvicl::Mutex in common/mutex.h)
//   DVICL_SCOPED_CAPABILITY     RAII class acquiring at construction and
//                               releasing at destruction (dvicl::MutexLock)
//   DVICL_GUARDED_BY(mu)        field may only be touched with mu held
//   DVICL_PT_GUARDED_BY(mu)     pointee (not the pointer) guarded by mu
//   DVICL_REQUIRES(mu, ...)     caller must hold mu across the call — the
//                               convention for *Locked() helpers
//   DVICL_ACQUIRE/RELEASE(...)  function acquires/releases the capability
//   DVICL_TRY_ACQUIRE(b, ...)   acquires only when returning `b`
//   DVICL_EXCLUDES(mu, ...)     caller must NOT hold mu (deadlock guard)
//   DVICL_ASSERT_CAPABILITY(mu) runtime assertion that mu is held
//   DVICL_RETURN_CAPABILITY(mu) accessor returning a reference to mu
//   DVICL_NO_THREAD_SAFETY_ANALYSIS
//                               opt a function body out (init/teardown
//                               paths the analysis cannot follow); every
//                               use needs a justification comment, exactly
//                               like a lint NOLINT waiver.
//
// Annotation conventions for this codebase (see DESIGN.md §14 for the rule
// catalogue and the waiver policy):
//   - every std::mutex is replaced by dvicl::Mutex + dvicl::MutexLock from
//     common/mutex.h; bare std::mutex in src/ is reserved for code that
//     cannot include this header and must carry a justification comment
//   - every field with a "guarded by" comment gets DVICL_GUARDED_BY and the
//     comment is deleted (the annotation IS the documentation)
//   - helpers named *Locked() get DVICL_REQUIRES on the mutex they assume.

#if defined(__clang__)
#define DVICL_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DVICL_THREAD_ANNOTATION(x)  // no-op off clang
#endif

#define DVICL_CAPABILITY(x) DVICL_THREAD_ANNOTATION(capability(x))

#define DVICL_SCOPED_CAPABILITY DVICL_THREAD_ANNOTATION(scoped_lockable)

#define DVICL_GUARDED_BY(x) DVICL_THREAD_ANNOTATION(guarded_by(x))

#define DVICL_PT_GUARDED_BY(x) DVICL_THREAD_ANNOTATION(pt_guarded_by(x))

#define DVICL_ACQUIRED_BEFORE(...) \
  DVICL_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define DVICL_ACQUIRED_AFTER(...) \
  DVICL_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define DVICL_REQUIRES(...) \
  DVICL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define DVICL_REQUIRES_SHARED(...) \
  DVICL_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define DVICL_ACQUIRE(...) \
  DVICL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define DVICL_ACQUIRE_SHARED(...) \
  DVICL_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define DVICL_RELEASE(...) \
  DVICL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define DVICL_RELEASE_SHARED(...) \
  DVICL_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define DVICL_TRY_ACQUIRE(...) \
  DVICL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define DVICL_EXCLUDES(...) DVICL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define DVICL_ASSERT_CAPABILITY(x) \
  DVICL_THREAD_ANNOTATION(assert_capability(x))

#define DVICL_RETURN_CAPABILITY(x) DVICL_THREAD_ANNOTATION(lock_returned(x))

#define DVICL_NO_THREAD_SAFETY_ANALYSIS \
  DVICL_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // DVICL_COMMON_THREAD_ANNOTATIONS_H_
