#include "common/check.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace dvicl {
namespace internal {

CheckFailMessage::CheckFailMessage(const char* prefix, const char* file,
                                   int line, const char* expr) {
  stream_ << prefix << " failed at " << file << ":" << line << ": " << expr;
}

CheckFailMessage::~CheckFailMessage() {
  // One write, then flush: death tests read stderr after the abort, and the
  // message must not interleave with other threads' output mid-line.
  const std::string message = stream_.str();
  std::fputs(message.c_str(), stderr);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace dvicl
