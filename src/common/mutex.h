#ifndef DVICL_COMMON_MUTEX_H_
#define DVICL_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "common/thread_annotations.h"

// Annotated mutex/condvar wrappers (DESIGN.md §14): dvicl::Mutex is a
// std::mutex declared as a clang thread-safety CAPABILITY, so fields marked
// DVICL_GUARDED_BY(mu_) and helpers marked DVICL_REQUIRES(mu_) are
// compiler-checked under -Wthread-safety. std::lock_guard/std::unique_lock
// carry no annotations, so locking through them is invisible to the
// analysis — use dvicl::MutexLock (and dvicl::CondVar for waits) instead.
//
// ---------------------------------------------------------------------------
// Global lock-ordering catalogue (deadlock freedom by acyclicity)
// ---------------------------------------------------------------------------
// Every mutex in src/ and the order in which they may nest. A thread may
// only acquire a mutex LATER in this order than any it already holds;
// most paths hold exactly one. DVICL_DCHECK (common/check.h) guards the
// runtime invariants; this catalogue guards the locking ones.
//
//   1. cert-cache shard     (dvicl/cert_cache.h Shard::mu) — leaf locks,
//                           one per shard, never two at once (eviction is
//                           per-shard by construction), nothing acquired
//                           under them.
//   2. metrics registry     (obs/metrics.h MetricsRegistry::mu_) — held
//                           only across map lookup/insert in Get*/Snapshot;
//                           metric mutation through returned handles is
//                           lock-free, so recording under a shard lock is
//                           fine but calling Get* there is not.
//   3. access log           (server/access_log.h AccessLog::mu_) — held
//                           across one fwrite+fflush; FinalizeRequest may
//                           read metrics handles (resolved at construction,
//                           no registry lock) before appending, hence
//                           registry < access log.
//
// Unordered singletons (never nest with the above or each other):
//   task-pool slot/wake     (common/task_pool.h) — slot locks are leaf
//                           locks around one deque op; wake_mu_ protects
//                           only the sleep predicate. Task bodies run with
//                           NO pool lock held, so anything a task does
//                           (cache probes, metric records) starts from an
//                           empty lock set.
//   task-group error        (common/task_pool.h TaskGroup::error_mu_) —
//                           leaf lock around the first-exception swap.
//   builder stats/fault     (dvicl/dvicl.cc stats_mu_, fault_mu_) — leaf
//                           locks around a merge/record; never held across
//                           subtree work.
//   trace buffers           (obs/trace.h TraceRecorder::mu_) — held only
//                           for buffer registration and quiescent
//                           serialization.
//   failpoint registry      (common/failpoint.cc Registry::mu) — test-only
//                           arming paths plus armed-site evaluation; sites
//                           are evaluated from code holding no other lock.

namespace dvicl {

class CondVar;

// std::mutex as a clang thread-safety capability. Non-recursive; prefer
// MutexLock over manual Lock/Unlock pairs.
class DVICL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DVICL_ACQUIRE() { mu_.lock(); }
  void Unlock() DVICL_RELEASE() { mu_.unlock(); }
  bool TryLock() DVICL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock scope, the annotated replacement for std::lock_guard. Usable on
// `mutable Mutex` members from const methods (snapshot/stats paths).
class DVICL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DVICL_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() DVICL_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable waiting on a dvicl::Mutex. Wait* must be called with
// `mu` held (enforced by DVICL_REQUIRES); the mutex is released while
// blocked and re-held on return, which the analysis models as "still held"
// across the call — the standard condvar treatment.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) DVICL_REQUIRES(mu) {
    // Adopt the caller's hold for the unlock/relock inside cv_.wait, then
    // release the unique_lock so ownership stays with the caller's scope.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) DVICL_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  // Returns pred() after waiting at most `timeout` (the std::condition_
  // variable wait_for contract: false only on timeout with pred still
  // false). The predicate runs with `mu` held.
  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout,
               Predicate pred) DVICL_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool satisfied = cv_.wait_for(lock, timeout, std::move(pred));
    lock.release();
    return satisfied;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dvicl

#endif  // DVICL_COMMON_MUTEX_H_
