#ifndef DVICL_COMMON_WIRE_H_
#define DVICL_COMMON_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "common/outcome.h"
#include "common/status.h"

namespace dvicl {
namespace wire {

// Framing layer of the canonicalization-service protocol (DESIGN.md §11).
//
// Every message — request or reply — travels as one frame:
//
//   u32 payload_len (little-endian) | payload_len bytes of payload
//
// The length prefix is the ONLY stream-level structure, which makes the
// protocol trivially resynchronizable: a malformed payload never desyncs
// the stream (its length was declared up front and fully consumed), so the
// server can answer it with a structured error and keep serving. Only two
// conditions are unrecoverable for a connection: a length prefix beyond
// kMaxPayloadBytes (a lie or garbage — nothing after it can be trusted)
// and EOF in the middle of a declared payload.
//
// The payload codecs (src/server/protocol.h) are built on the bounded
// Reader/Writer below: every read is bounds-checked against the actual
// payload, and every declared count is validated against the bytes that
// could possibly back it BEFORE any allocation — a frame lying about its
// sizes costs the attacker bytes-on-the-wire, never server memory (the
// same discipline as the hardened ReadDimacs).

// Hard cap on a frame payload. Large enough for a multi-million-edge graph
// request (24 bytes/edge would be a 2.6M-edge graph), small enough that a
// hostile length prefix cannot commit the server to gigabytes.
inline constexpr size_t kMaxPayloadBytes = 64u << 20;

// ---- status-on-the-wire ----------------------------------------------------

// Structured per-request status. The first seven values mirror RunOutcome
// one for one (the engine's termination cause IS the reply status for a
// governed run); the remainder are service-level conditions that never
// reach the engine.
enum class WireStatus : uint8_t {
  kOk = 0,              // RunOutcome::kCompleted
  kDeadline = 1,        // RunOutcome::kDeadline
  kNodeBudget = 2,      // RunOutcome::kNodeBudget
  kMemoryBudget = 3,    // RunOutcome::kMemoryBudget
  kCancelled = 4,       // RunOutcome::kCancelled
  kInvalidRequest = 5,  // RunOutcome::kInvalidInput or a bad request body
  kInternalFault = 6,   // RunOutcome::kInternalFault or a server-side fault
  kOverloaded = 7,      // admission control rejected the request
  kMalformedFrame = 8,  // unparseable frame; connection is being closed
};

WireStatus FromOutcome(RunOutcome outcome);
const char* WireStatusName(WireStatus status);

// ---- bounded byte codec ----------------------------------------------------

// Append-only little-endian writer over a std::string buffer.
class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}

  void U8(uint8_t value) { out_->push_back(static_cast<char>(value)); }
  void U32(uint32_t value);
  void U64(uint64_t value);
  void Bytes(std::string_view data) { out_->append(data); }

 private:
  std::string* out_;
};

// Bounds-checked little-endian reader over a payload. Every accessor
// returns false (and leaves the output untouched) instead of reading past
// the end; Remaining() lets a codec validate a declared element count
// against the bytes that could back it before allocating.
class Reader {
 public:
  explicit Reader(std::string_view payload) : data_(payload) {}

  size_t Remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  bool U8(uint8_t* value);
  bool U32(uint32_t* value);
  bool U64(uint64_t* value);
  bool Bytes(size_t count, std::string_view* out);

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// ---- frame I/O -------------------------------------------------------------

// Appends the frame (length prefix + payload) to *out. The payload must
// respect kMaxPayloadBytes; oversized payloads are a programming error on
// the sending side and abort via DVICL_CHECK.
void AppendFrame(std::string_view payload, std::string* out);

// Reads one frame from the stream. Returns:
//   Ok          — *payload holds the frame payload (possibly empty)
//   NotFound    — clean EOF exactly at a frame boundary (no bytes read)
//   IOError     — EOF inside a frame (truncation) or a stream read error
//   InvalidArgument — length prefix exceeds max_payload
Status ReadFrame(std::istream& in, std::string* payload,
                 size_t max_payload = kMaxPayloadBytes);

Status WriteFrame(std::ostream& out, std::string_view payload);

}  // namespace wire
}  // namespace dvicl

#endif  // DVICL_COMMON_WIRE_H_
