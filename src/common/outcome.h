#ifndef DVICL_COMMON_OUTCOME_H_
#define DVICL_COMMON_OUTCOME_H_

#include <cstdint>

namespace dvicl {

// Structured termination cause of a canonical-labeling run (IR search or a
// whole DviCL build). "Ran out of time/memory" is a first-class outcome for
// a labeling engine, not an error: McKay & Piperno document instance
// families (CFI, Miyazaki, shrunken multipedes) where any IR-based search
// blows up combinatorially, so a production service must budget every run
// and report exactly which budget fired.
//
// Contract (the "graceful degradation" half of DESIGN.md §10): on any
// outcome other than kCompleted the run still returns its root
// equitable-refinement coloring and the partial AutoTree built so far, but
// the canonical labeling, certificate and generators are EMPTY — partial
// canonical output is never exposed, and a shared certificate cache is
// never fed from an aborted run.
enum class RunOutcome : uint8_t {
  kCompleted = 0,     // full canonical result, certificate comparable
  kDeadline,          // wall-clock limit (time_limit_seconds) fired
  kNodeBudget,        // leaf IR search exceeded max_tree_nodes
  kMemoryBudget,      // RSS-delta budget (memory_limit_mib) fired
  kCancelled,         // external cooperative cancel flag was raised
  kInvalidInput,      // malformed input rejected before any search ran
  kInternalFault,     // injected failpoint or unexpected internal failure
};

inline const char* RunOutcomeName(RunOutcome outcome) {
  switch (outcome) {
    case RunOutcome::kCompleted:
      return "completed";
    case RunOutcome::kDeadline:
      return "deadline";
    case RunOutcome::kNodeBudget:
      return "node_budget";
    case RunOutcome::kMemoryBudget:
      return "memory_budget";
    case RunOutcome::kCancelled:
      return "cancelled";
    case RunOutcome::kInvalidInput:
      return "invalid_input";
    case RunOutcome::kInternalFault:
      return "internal_fault";
  }
  return "unknown";
}

}  // namespace dvicl

#endif  // DVICL_COMMON_OUTCOME_H_
