#include "common/task_pool.h"

#include <cassert>
#include <chrono>
#include <utility>

#include "common/failpoint.h"
#include "obs/trace.h"

namespace dvicl {

namespace {

// Slot registration for ThreadIndex(): keyed by pool identity so that a
// worker of one pool reads slot 0 when asked by another pool.
thread_local const TaskPool* tl_pool = nullptr;
thread_local unsigned tl_slot = 0;

}  // namespace

TaskPool::TaskPool(unsigned num_threads) : num_threads_(num_threads) {
  assert(num_threads_ >= 1);
  if (num_threads_ < 1) num_threads_ = 1;
  slots_.reserve(num_threads_);
  for (unsigned i = 0; i < num_threads_; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
  workers_.reserve(num_threads_ - 1);
  for (unsigned i = 1; i < num_threads_; ++i) {
    workers_.emplace_back(
        [this, i](const std::stop_token& stop) { WorkerLoop(stop, i); });
  }
}

TaskPool::~TaskPool() {
  for (std::jthread& worker : workers_) worker.request_stop();
  NotifyAll();
  workers_.clear();  // joins
  // Every TaskGroup must have been waited before the pool dies; a queued
  // task here would reference a dead group.
  for (const auto& slot : slots_) {
    MutexLock lock(slot->mu);
    assert(slot->tasks.empty());
  }
}

unsigned TaskPool::ThreadIndex() const {
  return tl_pool == this ? tl_slot : 0;
}

unsigned TaskPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

TaskPoolStats TaskPool::GetStats() const {
  TaskPoolStats stats;
  stats.tasks_queued = stat_queued_.load(std::memory_order_relaxed);
  stats.tasks_inline = stat_inline_.load(std::memory_order_relaxed);
  stats.tasks_run_local = stat_run_local_.load(std::memory_order_relaxed);
  stats.tasks_stolen = stat_stolen_.load(std::memory_order_relaxed);
  stats.max_deque_depth = stat_max_depth_.load(std::memory_order_relaxed);
  return stats;
}

void TaskPool::NotifyAll() {
  {
    MutexLock lock(wake_mu_);
  }
  wake_cv_.NotifyAll();
}

void TaskPool::Enqueue(Task task) {
  const unsigned self = ThreadIndex();
  bool queued = false;
  size_t depth = 0;
  {
    Slot& slot = *slots_[self];
    MutexLock lock(slot.mu);
    if (slot.tasks.size() < kSlotBound) {
      slot.tasks.push_back(std::move(task));
      depth = slot.tasks.size();
      queued_.fetch_add(1, std::memory_order_release);
      queued = true;
    }
  }
  if (!queued) {
    // Local deque full: run inline. This is the bounded-deque back
    // pressure, not an error path.
    stat_inline_.fetch_add(1, std::memory_order_relaxed);
    if (trace_ != nullptr) {
      trace_->AddInstant("task_pool.inline", "task_pool");
    }
    RunTask(std::move(task));
    return;
  }
  stat_queued_.fetch_add(1, std::memory_order_relaxed);
  uint64_t seen = stat_max_depth_.load(std::memory_order_relaxed);
  while (depth > seen && !stat_max_depth_.compare_exchange_weak(
                             seen, depth, std::memory_order_relaxed)) {
  }
  if (trace_ != nullptr) {
    trace_->AddInstant("task_pool.spawn", "task_pool",
                       {{"deque_depth", depth}});
  }
  NotifyAll();
}

bool TaskPool::RunOneTask(unsigned self) {
  Task task;
  bool stolen = false;
  unsigned victim_slot = self;
  for (unsigned probe = 0; probe < num_threads_; ++probe) {
    const unsigned victim = (self + probe) % num_threads_;
    Slot& slot = *slots_[victim];
    MutexLock lock(slot.mu);
    if (slot.tasks.empty()) continue;
    if (victim == self) {
      task = std::move(slot.tasks.back());  // own work: LIFO, cache-hot
      slot.tasks.pop_back();
    } else {
      task = std::move(slot.tasks.front());  // steal: FIFO, oldest first
      slot.tasks.pop_front();
      stolen = true;
      victim_slot = victim;
    }
    queued_.fetch_sub(1, std::memory_order_release);
    break;
  }
  if (task.fn == nullptr) return false;
  if (stolen) {
    stat_stolen_.fetch_add(1, std::memory_order_relaxed);
    if (trace_ != nullptr) {
      trace_->AddInstant("task_pool.steal", "task_pool",
                         {{"victim", victim_slot}});
    }
  } else {
    stat_run_local_.fetch_add(1, std::memory_order_relaxed);
  }
  if (trace_ != nullptr) {
    obs::TraceSpan span(trace_, "task_pool.run", "task_pool");
    RunTask(std::move(task));
  } else {
    RunTask(std::move(task));
  }
  return true;
}

void TaskPool::RunTask(Task task) {
  try {
    // Fault-injection site: fail the task before it runs, exercising the
    // same plumbing as a real task exception (RecordError -> Wait rethrow).
    // Inside the try block so group accounting settles identically.
    if (DVICL_FAILPOINT(failpoint::sites::kTaskRun)) {
      throw failpoint::InjectedFault(failpoint::sites::kTaskRun);
    }
    task.fn();
  } catch (...) {
    task.group->RecordError(std::current_exception());
  }
  task.group->OnTaskDone();
}

void TaskPool::WorkerLoop(const std::stop_token& stop, unsigned index) {
  tl_pool = this;
  tl_slot = index;
  while (!stop.stop_requested()) {
    if (RunOneTask(index)) continue;
    MutexLock lock(wake_mu_);
    wake_cv_.Wait(wake_mu_, [this, &stop] {
      return stop.stop_requested() ||
             queued_.load(std::memory_order_acquire) > 0;
    });
  }
  tl_pool = nullptr;
  tl_slot = 0;
}

TaskGroup::~TaskGroup() {
  try {
    Wait();
  } catch (...) {
    // A destructor must not throw; Wait() was the place to observe errors.
  }
}

void TaskGroup::Submit(std::function<void()> fn) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  if (pool_ == nullptr) {
    TaskPool::RunTask(TaskPool::Task{std::move(fn), this});
    return;
  }
  pool_->Enqueue(TaskPool::Task{std::move(fn), this});
}

void TaskGroup::Wait() {
  if (pool_ != nullptr) {
    const unsigned self = pool_->ThreadIndex();
    while (pending_.load(std::memory_order_acquire) != 0) {
      if (pool_->RunOneTask(self)) continue;
      // Tasks of this group are in flight on other threads (or work is
      // momentarily invisible); sleep until a completion or submission
      // notifies. The timeout is a safety net against missed wakeups.
      MutexLock lock(pool_->wake_mu_);
      pool_->wake_cv_.WaitFor(
          pool_->wake_mu_, std::chrono::milliseconds(50), [this] {
            return pending_.load(std::memory_order_acquire) == 0 ||
                   pool_->queued_.load(std::memory_order_acquire) > 0;
          });
    }
  }
  assert(pending_.load(std::memory_order_acquire) == 0);
  std::exception_ptr error;
  {
    MutexLock lock(error_mu_);
    std::swap(error, first_error_);
  }
  if (error) std::rethrow_exception(error);
}

void TaskGroup::RecordError(std::exception_ptr error) {
  MutexLock lock(error_mu_);
  if (!first_error_) first_error_ = std::move(error);
}

void TaskGroup::OnTaskDone() {
  // The decrement releases the waiter: once it reads 0 the group may be
  // destroyed (Wait returns, a stack-allocated group goes away). So no
  // member of `this` may be touched after fetch_sub — copy pool_ first.
  TaskPool* const pool = pool_;
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
      pool != nullptr) {
    pool->NotifyAll();
  }
}

}  // namespace dvicl
