#include "common/big_uint.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dvicl {

BigUint::BigUint(uint64_t value) {
  if (value != 0) {
    limbs_.push_back(static_cast<uint32_t>(value & 0xffffffffu));
    uint32_t high = static_cast<uint32_t>(value >> 32);
    if (high != 0) limbs_.push_back(high);
  }
}

BigUint BigUint::Factorial(uint64_t n) {
  BigUint result(1);
  for (uint64_t i = 2; i <= n; ++i) result *= i;
  return result;
}

BigUint BigUint::Binomial(uint64_t n, uint64_t k) {
  if (k > n) return BigUint();
  if (k > n - k) k = n - k;
  BigUint result(1);
  // result stays integral after each step: prefix products of consecutive
  // integers are divisible by i!.
  for (uint64_t i = 1; i <= k; ++i) {
    result *= (n - k + i);
    result.DivideBySmall(static_cast<uint32_t>(i));
  }
  return result;
}

BigUint& BigUint::DivideBySmall(uint32_t divisor) {
  uint64_t remainder = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    const uint64_t cur = (remainder << 32) | limbs_[i];
    limbs_[i] = static_cast<uint32_t>(cur / divisor);
    remainder = cur % divisor;
  }
  Trim();
  return *this;
}

void BigUint::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint& BigUint::operator+=(const BigUint& other) {
  const size_t n = std::max(limbs_.size(), other.limbs_.size());
  limbs_.resize(n, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry + limbs_[i];
    if (i < other.limbs_.size()) sum += other.limbs_[i];
    limbs_[i] = static_cast<uint32_t>(sum & 0xffffffffu);
    carry = sum >> 32;
  }
  if (carry != 0) limbs_.push_back(static_cast<uint32_t>(carry));
  return *this;
}

BigUint& BigUint::operator*=(const BigUint& other) {
  if (IsZero() || other.IsZero()) {
    limbs_.clear();
    return *this;
  }
  std::vector<uint32_t> result(limbs_.size() + other.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    const uint64_t a = limbs_[i];
    for (size_t j = 0; j < other.limbs_.size(); ++j) {
      uint64_t cur = result[i + j] + a * other.limbs_[j] + carry;
      result[i + j] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    size_t k = i + other.limbs_.size();
    while (carry != 0) {
      uint64_t cur = result[k] + carry;
      result[k] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  limbs_ = std::move(result);
  Trim();
  return *this;
}

BigUint& BigUint::operator*=(uint64_t value) { return *this *= BigUint(value); }

bool operator<(const BigUint& lhs, const BigUint& rhs) {
  if (lhs.limbs_.size() != rhs.limbs_.size()) {
    return lhs.limbs_.size() < rhs.limbs_.size();
  }
  for (size_t i = lhs.limbs_.size(); i-- > 0;) {
    if (lhs.limbs_[i] != rhs.limbs_[i]) return lhs.limbs_[i] < rhs.limbs_[i];
  }
  return false;
}

uint64_t BigUint::ToUint64() const {
  uint64_t value = 0;
  if (limbs_.size() >= 1) value = limbs_[0];
  if (limbs_.size() >= 2) value |= static_cast<uint64_t>(limbs_[1]) << 32;
  return value;
}

double BigUint::ToDouble() const {
  double value = 0.0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    value = value * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  return value;
}

std::string BigUint::ToDecimalString() const {
  if (IsZero()) return "0";
  // Repeated division by 10^9 on a scratch copy.
  std::vector<uint32_t> scratch = limbs_;
  std::string digits;
  while (!scratch.empty()) {
    uint64_t remainder = 0;
    for (size_t i = scratch.size(); i-- > 0;) {
      uint64_t cur = (remainder << 32) | scratch[i];
      scratch[i] = static_cast<uint32_t>(cur / 1000000000u);
      remainder = cur % 1000000000u;
    }
    while (!scratch.empty() && scratch.back() == 0) scratch.pop_back();
    for (int d = 0; d < 9; ++d) {
      digits.push_back(static_cast<char>('0' + remainder % 10));
      remainder /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::string BigUint::ToCompactString() const {
  std::string decimal = ToDecimalString();
  if (decimal.size() <= 7) return decimal;
  const int exponent = static_cast<int>(decimal.size()) - 1;
  // Round to three significant digits.
  double mantissa = (decimal[0] - '0') + (decimal[1] - '0') / 10.0 +
                    (decimal[2] - '0') / 100.0;
  if (decimal.size() > 3 && decimal[3] >= '5') mantissa += 0.01;
  char buffer[32];
  if (mantissa >= 10.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2fE+%d", mantissa / 10.0,
                  exponent + 1);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2fE+%d", mantissa, exponent);
  }
  return buffer;
}

}  // namespace dvicl
