#include "common/wire.h"

#include <istream>
#include <ostream>

#include "common/check.h"

namespace dvicl {
namespace wire {

WireStatus FromOutcome(RunOutcome outcome) {
  switch (outcome) {
    case RunOutcome::kCompleted:
      return WireStatus::kOk;
    case RunOutcome::kDeadline:
      return WireStatus::kDeadline;
    case RunOutcome::kNodeBudget:
      return WireStatus::kNodeBudget;
    case RunOutcome::kMemoryBudget:
      return WireStatus::kMemoryBudget;
    case RunOutcome::kCancelled:
      return WireStatus::kCancelled;
    case RunOutcome::kInvalidInput:
      return WireStatus::kInvalidRequest;
    case RunOutcome::kInternalFault:
      return WireStatus::kInternalFault;
  }
  return WireStatus::kInternalFault;
}

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return "ok";
    case WireStatus::kDeadline:
      return "deadline";
    case WireStatus::kNodeBudget:
      return "node_budget";
    case WireStatus::kMemoryBudget:
      return "memory_budget";
    case WireStatus::kCancelled:
      return "cancelled";
    case WireStatus::kInvalidRequest:
      return "invalid_request";
    case WireStatus::kInternalFault:
      return "internal_fault";
    case WireStatus::kOverloaded:
      return "overloaded";
    case WireStatus::kMalformedFrame:
      return "malformed_frame";
  }
  return "unknown";
}

void Writer::U32(uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out_->push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void Writer::U64(uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out_->push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

bool Reader::U8(uint8_t* value) {
  if (Remaining() < 1) return false;
  *value = static_cast<uint8_t>(data_[pos_++]);
  return true;
}

bool Reader::U32(uint32_t* value) {
  if (Remaining() < 4) return false;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  *value = v;
  return true;
}

bool Reader::U64(uint64_t* value) {
  if (Remaining() < 8) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  *value = v;
  return true;
}

bool Reader::Bytes(size_t count, std::string_view* out) {
  if (Remaining() < count) return false;
  *out = data_.substr(pos_, count);
  pos_ += count;
  return true;
}

void AppendFrame(std::string_view payload, std::string* out) {
  DVICL_CHECK_LE(payload.size(), kMaxPayloadBytes)
      << "frame payload exceeds the protocol cap";
  Writer writer(out);
  writer.U32(static_cast<uint32_t>(payload.size()));
  writer.Bytes(payload);
}

Status ReadFrame(std::istream& in, std::string* payload, size_t max_payload) {
  char prefix[4];
  in.read(prefix, 4);
  if (in.gcount() == 0 && in.eof()) {
    return Status::NotFound("end of stream");
  }
  if (in.gcount() != 4) {
    return Status::IOError("truncated frame: EOF inside the length prefix");
  }
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(prefix[i])) << (8 * i);
  }
  if (len > max_payload) {
    return Status::InvalidArgument(
        "frame length prefix " + std::to_string(len) +
        " exceeds the payload cap " + std::to_string(max_payload));
  }
  payload->resize(len);
  if (len > 0) {
    in.read(payload->data(), static_cast<std::streamsize>(len));
    if (static_cast<uint32_t>(in.gcount()) != len) {
      return Status::IOError("truncated frame: EOF inside the payload");
    }
  }
  return Status::Ok();
}

Status WriteFrame(std::ostream& out, std::string_view payload) {
  std::string frame;
  frame.reserve(payload.size() + 4);
  AppendFrame(payload, &frame);
  out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  if (!out.good()) return Status::IOError("frame write failed");
  return Status::Ok();
}

}  // namespace wire
}  // namespace dvicl
