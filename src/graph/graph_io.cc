#include "graph/graph_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/failpoint.h"
#include "graph/graph_builder.h"

namespace dvicl {

namespace {

bool ParseVertexId(const std::string& token, VertexId* out) {
  if (token.empty()) return false;
  uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
    if (value > 0xfffffffeull) return false;
  }
  *out = static_cast<VertexId>(value);
  return true;
}

// Files written on Windows arrive with CRLF line endings; std::getline
// leaves the '\r' attached to the last token, which must not make vertex
// ids unparseable.
void StripTrailingCr(std::string* line) {
  if (!line->empty() && line->back() == '\r') line->pop_back();
}

}  // namespace

Result<Graph> ReadEdgeList(std::istream& in) {
  if (DVICL_FAILPOINT(failpoint::sites::kGraphIoRead)) {
    return Status::IOError("injected I/O fault (failpoint graph_io.read)");
  }
  GraphBuilder builder;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    StripTrailingCr(&line);
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream tokens(line);
    std::string a;
    std::string b;
    if (!(tokens >> a >> b)) {
      return Status::InvalidArgument("edge list line " +
                                     std::to_string(line_number) +
                                     ": expected two vertex ids");
    }
    VertexId u = 0;
    VertexId v = 0;
    if (!ParseVertexId(a, &u) || !ParseVertexId(b, &v)) {
      return Status::InvalidArgument("edge list line " +
                                     std::to_string(line_number) +
                                     ": malformed vertex id");
    }
    builder.AddEdge(u, v);
  }
  if (in.bad()) return Status::IOError("stream error while reading edge list");
  return std::move(builder).Build();
}

Result<Graph> ReadEdgeListFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ReadEdgeList(in);
}

Status WriteEdgeList(const Graph& graph, std::ostream& out) {
  out << "# vertices " << graph.NumVertices() << " edges " << graph.NumEdges()
      << "\n";
  for (const Edge& e : graph.Edges()) {
    out << e.first << ' ' << e.second << '\n';
  }
  if (!out) return Status::IOError("stream error while writing edge list");
  return Status::Ok();
}

Status WriteEdgeListFile(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  return WriteEdgeList(graph, out);
}

Result<Graph> ReadDimacs(std::istream& in, std::vector<uint32_t>* colors) {
  if (DVICL_FAILPOINT(failpoint::sites::kGraphIoRead)) {
    return Status::IOError("injected I/O fault (failpoint graph_io.read)");
  }
  GraphBuilder builder;
  std::string line;
  size_t line_number = 0;
  bool saw_problem = false;
  VertexId declared_vertices = 0;
  std::vector<std::pair<VertexId, uint32_t>> color_lines;
  while (std::getline(in, line)) {
    ++line_number;
    StripTrailingCr(&line);
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream tokens(line);
    std::string kind;
    tokens >> kind;
    if (kind == "p") {
      std::string format;
      uint64_t n = 0;
      uint64_t m = 0;
      if (!(tokens >> format >> n >> m) || format != "edge") {
        return Status::InvalidArgument(
            "DIMACS line " + std::to_string(line_number) +
            ": expected 'p edge <n> <m>'");
      }
      // VertexId is 32-bit; an unchecked cast would silently truncate a
      // declared size like 2^32+3 and mis-bound every later range check.
      if (n > 0xfffffffeull) {
        return Status::InvalidArgument(
            "DIMACS line " + std::to_string(line_number) +
            ": declared vertex count " + std::to_string(n) +
            " exceeds the 32-bit vertex id space");
      }
      saw_problem = true;
      declared_vertices = static_cast<VertexId>(n);
      if (n > 0) builder.EnsureVertex(static_cast<VertexId>(n - 1));
    } else if (kind == "e") {
      // Records before the header would leave range checks unbounded; a
      // garbage id must fail here, before the builder allocates for it.
      if (!saw_problem) {
        return Status::InvalidArgument(
            "DIMACS line " + std::to_string(line_number) +
            ": 'e' record before the 'p edge' header");
      }
      VertexId u = 0;
      VertexId v = 0;
      if (!(tokens >> u >> v) || u == 0 || v == 0) {
        return Status::InvalidArgument(
            "DIMACS line " + std::to_string(line_number) +
            ": expected 'e <u> <v>' with 1-based ids");
      }
      if (u > declared_vertices || v > declared_vertices) {
        return Status::InvalidArgument(
            "DIMACS line " + std::to_string(line_number) +
            ": edge endpoint exceeds the declared vertex count");
      }
      builder.AddEdge(u - 1, v - 1);
    } else if (kind == "n") {
      if (!saw_problem) {
        return Status::InvalidArgument(
            "DIMACS line " + std::to_string(line_number) +
            ": 'n' record before the 'p edge' header");
      }
      VertexId v = 0;
      uint32_t color = 0;
      if (!(tokens >> v >> color) || v == 0) {
        return Status::InvalidArgument(
            "DIMACS line " + std::to_string(line_number) +
            ": expected 'n <v> <color>'");
      }
      color_lines.emplace_back(v - 1, color);
    } else {
      return Status::InvalidArgument("DIMACS line " +
                                     std::to_string(line_number) +
                                     ": unknown record '" + kind + "'");
    }
  }
  if (in.bad()) return Status::IOError("stream error while reading DIMACS");
  if (!saw_problem) {
    return Status::InvalidArgument("DIMACS input missing 'p edge' line");
  }
  if (builder.num_vertices() > declared_vertices) {
    return Status::InvalidArgument(
        "DIMACS edge endpoint exceeds declared vertex count");
  }
  if (colors != nullptr) {
    colors->assign(declared_vertices, 0);
    for (const auto& [v, color] : color_lines) {
      if (v >= declared_vertices) {
        return Status::InvalidArgument("DIMACS color line out of range");
      }
      (*colors)[v] = color;
    }
  }
  return std::move(builder).Build();
}

Result<Graph> ReadDimacsFile(const std::string& path,
                             std::vector<uint32_t>* colors) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ReadDimacs(in, colors);
}

Result<Graph> ParseGraph6(const std::string& input) {
  std::string line = input;
  const std::string header = ">>graph6<<";
  if (line.rfind(header, 0) == 0) line = line.substr(header.size());
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.pop_back();
  }
  if (line.empty()) return Status::InvalidArgument("empty graph6 line");

  size_t pos = 0;
  auto next_byte = [&](uint32_t* out_value) {
    if (pos >= line.size()) return false;
    const unsigned char c = static_cast<unsigned char>(line[pos++]);
    if (c < 63 || c > 126) return false;
    *out_value = c - 63;
    return true;
  };

  // Size header: one byte for n <= 62, '~' + three bytes for n < 2^18.
  uint64_t n = 0;
  uint32_t b = 0;
  if (!next_byte(&b)) return Status::InvalidArgument("bad graph6 size byte");
  if (b < 63) {
    n = b;
  } else {
    // b == 63 is the escape character '~'.
    uint32_t b1 = 0;
    uint32_t b2 = 0;
    uint32_t b3 = 0;
    if (!next_byte(&b1) || !next_byte(&b2) || !next_byte(&b3)) {
      return Status::InvalidArgument("bad graph6 extended size");
    }
    if (b1 == 63) {
      return Status::InvalidArgument("graph6 graphs with n >= 2^18 are not "
                                     "supported");
    }
    n = (static_cast<uint64_t>(b1) << 12) | (b2 << 6) | b3;
  }

  const uint64_t bits = n * (n - 1) / 2;
  std::vector<Edge> edges;
  uint64_t bit_index = 0;
  uint32_t current = 0;
  int remaining = 0;
  for (VertexId j = 1; j < n; ++j) {
    for (VertexId i = 0; i < j; ++i) {
      if (remaining == 0) {
        if (!next_byte(&current)) {
          return Status::InvalidArgument("graph6 line too short");
        }
        remaining = 6;
      }
      const bool set = (current & (1u << (remaining - 1))) != 0;
      --remaining;
      ++bit_index;
      if (set) edges.emplace_back(i, j);
    }
  }
  (void)bits;
  if (pos != line.size()) {
    return Status::InvalidArgument("trailing bytes in graph6 line");
  }
  return Graph::FromEdges(static_cast<VertexId>(n), std::move(edges));
}

std::string FormatGraph6(const Graph& graph) {
  const uint64_t n = graph.NumVertices();
  std::string out;
  if (n <= 62) {
    out.push_back(static_cast<char>(n + 63));
  } else {
    out.push_back('~');
    out.push_back(static_cast<char>(((n >> 12) & 63) + 63));
    out.push_back(static_cast<char>(((n >> 6) & 63) + 63));
    out.push_back(static_cast<char>((n & 63) + 63));
  }
  uint32_t current = 0;
  int filled = 0;
  for (VertexId j = 1; j < n; ++j) {
    for (VertexId i = 0; i < j; ++i) {
      current = (current << 1) | (graph.HasEdge(i, j) ? 1u : 0u);
      if (++filled == 6) {
        out.push_back(static_cast<char>(current + 63));
        current = 0;
        filled = 0;
      }
    }
  }
  if (filled != 0) {
    current <<= (6 - filled);
    out.push_back(static_cast<char>(current + 63));
  }
  return out;
}

Status WriteDimacs(const Graph& graph, std::ostream& out) {
  out << "p edge " << graph.NumVertices() << ' ' << graph.NumEdges() << '\n';
  for (const Edge& e : graph.Edges()) {
    out << "e " << (e.first + 1) << ' ' << (e.second + 1) << '\n';
  }
  if (!out) return Status::IOError("stream error while writing DIMACS");
  return Status::Ok();
}

}  // namespace dvicl
