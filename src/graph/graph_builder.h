#ifndef DVICL_GRAPH_GRAPH_BUILDER_H_
#define DVICL_GRAPH_GRAPH_BUILDER_H_

#include <vector>

#include "graph/graph.h"

namespace dvicl {

// Incremental edge accumulator for generators and loaders. Tracks the
// largest endpoint seen so Build() can size the graph automatically, and
// counts the self-loops / duplicates that Graph::FromEdges will drop so
// loaders can report how much input was cleaned (the paper's footnote 1:
// "we remove directions ... and delete all self-loops and multi-edges").
class GraphBuilder {
 public:
  GraphBuilder() = default;

  // Reserves capacity for `num_edges` pending edges.
  void Reserve(size_t num_edges) { edges_.reserve(num_edges); }

  // Declares that the graph has at least `num_vertices` vertices (isolated
  // vertices are legal and matter for colorings).
  void EnsureVertex(VertexId v) {
    if (v >= num_vertices_) num_vertices_ = v + 1;
  }

  void AddEdge(VertexId u, VertexId v) {
    EnsureVertex(u);
    EnsureVertex(v);
    edges_.emplace_back(u, v);
  }

  VertexId num_vertices() const { return num_vertices_; }
  size_t num_pending_edges() const { return edges_.size(); }

  // Consumes the builder and produces the normalized graph.
  Graph Build() && {
    return Graph::FromEdges(num_vertices_, std::move(edges_));
  }

 private:
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace dvicl

#endif  // DVICL_GRAPH_GRAPH_BUILDER_H_
