#ifndef DVICL_GRAPH_GRAPH_IO_H_
#define DVICL_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace dvicl {

// Plain edge-list format, the format SNAP distributes its graphs in:
// one "u v" pair per line; lines starting with '#' or '%' are comments;
// blank lines are ignored. Vertex ids must be non-negative integers.
Result<Graph> ReadEdgeList(std::istream& in);
Result<Graph> ReadEdgeListFile(const std::string& path);
Status WriteEdgeList(const Graph& graph, std::ostream& out);
Status WriteEdgeListFile(const Graph& graph, const std::string& path);

// DIMACS graph format, the format the bliss benchmark collection uses:
//   c <comment>
//   p edge <n> <m>
//   e <u> <v>        (1-based vertex ids)
// Vertex colors ("n <v> <color>" lines) are parsed into *colors when a
// non-null pointer is given, defaulting to color 0.
Result<Graph> ReadDimacs(std::istream& in,
                         std::vector<uint32_t>* colors = nullptr);
Result<Graph> ReadDimacsFile(const std::string& path,
                             std::vector<uint32_t>* colors = nullptr);
Status WriteDimacs(const Graph& graph, std::ostream& out);

// graph6 format (the nauty ecosystem's compact one-line encoding of an
// undirected simple graph): N(n) header followed by the upper triangle of
// the adjacency matrix packed 6 bits per printable character. Supports
// n < 2^18 (the 1- and 4-byte size headers). An optional ">>graph6<<"
// prefix is accepted.
Result<Graph> ParseGraph6(const std::string& line);
std::string FormatGraph6(const Graph& graph);

}  // namespace dvicl

#endif  // DVICL_GRAPH_GRAPH_IO_H_
