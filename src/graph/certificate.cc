#include "graph/certificate.h"

#include <algorithm>

#include "common/check.h"

namespace dvicl {

Certificate MakeCertificate(const Graph& graph,
                            std::span<const uint32_t> colors,
                            std::span<const VertexId> labels) {
  const VertexId n = graph.NumVertices();
  // Always-on: a wrong-sized or out-of-range labeling would silently write
  // the color block out of bounds and produce a garbage certificate.
  DVICL_CHECK_EQ(labels.size(), n)
      << "labeling size does not match the vertex count";
  DVICL_CHECK(colors.empty() || colors.size() == n)
      << "color array must be empty or have one entry per vertex";

  Certificate certificate;
  certificate.reserve(2 + n + graph.NumEdges());
  certificate.push_back(n);
  certificate.push_back(graph.NumEdges());

  // Colors listed in canonical-label order.
  certificate.resize(2 + n, 0);
  for (VertexId v = 0; v < n; ++v) {
    DVICL_CHECK_LT(labels[v], n) << "label of vertex " << v << " out of range";
    certificate[2 + labels[v]] = colors.empty() ? 0 : colors[v];
  }

  std::vector<uint64_t> packed;
  packed.reserve(graph.NumEdges());
  for (const Edge& e : graph.Edges()) {
    uint64_t a = labels[e.first];
    uint64_t b = labels[e.second];
    if (a > b) std::swap(a, b);
    packed.push_back((a << 32) | b);
  }
  std::sort(packed.begin(), packed.end());
  certificate.insert(certificate.end(), packed.begin(), packed.end());
  return certificate;
}

}  // namespace dvicl
