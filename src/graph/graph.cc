#include "graph/graph.h"

#include <algorithm>

#include "common/check.h"

namespace dvicl {

Graph Graph::FromEdges(VertexId num_vertices, std::vector<Edge> edges) {
  // Normalize: orient, drop self-loops, dedup. Endpoint validation is
  // always-on: graphs frequently come from files, and an out-of-range
  // endpoint would corrupt the CSR offsets silently in release builds.
  size_t write = 0;
  for (Edge& e : edges) {
    if (e.first == e.second) continue;
    DVICL_CHECK(e.first < num_vertices && e.second < num_vertices)
        << "edge (" << e.first << ", " << e.second
        << ") has an endpoint outside [0, " << num_vertices << ")";
    if (e.first > e.second) std::swap(e.first, e.second);
    edges[write++] = e;
  }
  edges.resize(write);
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Graph g;
  g.num_vertices_ = num_vertices;
  g.edges_ = std::move(edges);
  g.offsets_.assign(static_cast<size_t>(num_vertices) + 1, 0);
  for (const Edge& e : g.edges_) {
    ++g.offsets_[e.first + 1];
    ++g.offsets_[e.second + 1];
  }
  for (size_t v = 0; v < num_vertices; ++v) g.offsets_[v + 1] += g.offsets_[v];
  g.adjacency_.resize(2 * g.edges_.size());
  std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : g.edges_) {
    g.adjacency_[cursor[e.first]++] = e.second;
    g.adjacency_[cursor[e.second]++] = e.first;
  }
  for (VertexId v = 0; v < num_vertices; ++v) {
    std::sort(g.adjacency_.begin() + static_cast<ptrdiff_t>(g.offsets_[v]),
              g.adjacency_.begin() + static_cast<ptrdiff_t>(g.offsets_[v + 1]));
  }
  return g;
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  // Search the smaller adjacency list.
  if (Degree(u) > Degree(v)) std::swap(u, v);
  auto neighbors = Neighbors(u);
  return std::binary_search(neighbors.begin(), neighbors.end(), v);
}

uint32_t Graph::MaxDegree() const {
  uint32_t max_degree = 0;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    max_degree = std::max(max_degree, Degree(v));
  }
  return max_degree;
}

double Graph::AverageDegree() const {
  if (num_vertices_ == 0) return 0.0;
  return 2.0 * static_cast<double>(NumEdges()) /
         static_cast<double>(num_vertices_);
}

Graph Graph::RelabeledBy(std::span<const VertexId> image) const {
  DVICL_CHECK_EQ(image.size(), num_vertices_)
      << "relabeling image size does not match the vertex count";
  std::vector<Edge> relabeled;
  relabeled.reserve(edges_.size());
  for (const Edge& e : edges_) {
    relabeled.emplace_back(image[e.first], image[e.second]);
  }
  return FromEdges(num_vertices_, std::move(relabeled));
}

}  // namespace dvicl
