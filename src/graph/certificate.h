#ifndef DVICL_GRAPH_CERTIFICATE_H_
#define DVICL_GRAPH_CERTIFICATE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace dvicl {

// A certificate is the totally ordered representation of a relabeled colored
// graph (G, pi)^gamma (paper §2: "G can be represented by its sorted edge
// list"). Two colored graphs are isomorphic iff the certificates produced by
// a canonical-labeling algorithm are equal, so lexicographic comparison of
// certificates is the isomorphism test.
//
// Layout: [n, m, color of label 0, ..., color of label n-1,
//          packed sorted relabeled edges...], where an edge {u, v} is packed
// as (min << 32) | max using the vertices' canonical labels.
using Certificate = std::vector<uint64_t>;

// Builds the certificate of `graph` whose vertex v carries color `colors[v]`
// and canonical label `labels[v]`. `labels` must be a bijection onto
// 0..n-1; `colors` may be empty, meaning the unit coloring.
Certificate MakeCertificate(const Graph& graph,
                            std::span<const uint32_t> colors,
                            std::span<const VertexId> labels);

}  // namespace dvicl

#endif  // DVICL_GRAPH_CERTIFICATE_H_
