#ifndef DVICL_GRAPH_GRAPH_H_
#define DVICL_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace dvicl {

// Vertices are dense integers 0..n-1 (paper §2).
using VertexId = uint32_t;

// An undirected edge; canonical form has first < second.
using Edge = std::pair<VertexId, VertexId>;

// Immutable undirected simple graph in CSR form (paper §2: no self-loops,
// no multi-edges). Construction normalizes arbitrary edge input: self-loops
// are dropped, duplicates collapsed, endpoints ordered.
//
// The CSR arrays give O(1) degree and contiguous sorted neighbor ranges; the
// canonical edge list (first < second, lexicographically sorted) is kept as
// well because certificates, divide steps and I/O all consume edges in that
// form.
class Graph {
 public:
  Graph() = default;

  // Builds a graph on `num_vertices` vertices. Edges may appear in any
  // orientation and order and may contain duplicates or self-loops; the
  // result is the normalized simple graph. Endpoints must be < num_vertices.
  static Graph FromEdges(VertexId num_vertices, std::vector<Edge> edges);

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  VertexId NumVertices() const { return num_vertices_; }
  uint64_t NumEdges() const { return edges_.size(); }

  // Sorted neighbors of v.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  uint32_t Degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }

  // O(log degree) membership test.
  bool HasEdge(VertexId u, VertexId v) const;

  uint32_t MaxDegree() const;
  double AverageDegree() const;

  // Canonical edge list: every edge once with first < second, sorted.
  const std::vector<Edge>& Edges() const { return edges_; }

  // The graph G^gamma: vertex v of this graph becomes image[v]. `image`
  // must be a permutation of 0..n-1.
  Graph RelabeledBy(std::span<const VertexId> image) const;

  // Structural equality: same vertex count and same edge set. Note this is
  // equality of labeled graphs, not isomorphism.
  friend bool operator==(const Graph& lhs, const Graph& rhs) {
    return lhs.num_vertices_ == rhs.num_vertices_ && lhs.edges_ == rhs.edges_;
  }
  friend bool operator!=(const Graph& lhs, const Graph& rhs) {
    return !(lhs == rhs);
  }

 private:
  VertexId num_vertices_ = 0;
  std::vector<uint64_t> offsets_;   // size n+1
  std::vector<VertexId> adjacency_; // size 2m, sorted per vertex
  std::vector<Edge> edges_;         // size m, canonical
};

}  // namespace dvicl

#endif  // DVICL_GRAPH_GRAPH_H_
