#include "graph/graph_builder.h"

// GraphBuilder is header-only; this translation unit exists to verify the
// header is self-contained.
