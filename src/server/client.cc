#include "server/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "common/wire.h"

namespace dvicl {
namespace server {

namespace {

using Clock = std::chrono::steady_clock;

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// Optional absolute deadline; nullopt = block forever.
using Deadline = std::optional<Clock::time_point>;

Deadline DeadlineIn(uint64_t ms) {
  if (ms == 0) return std::nullopt;
  return Clock::now() + std::chrono::milliseconds(ms);
}

// Waits for `events` on fd. Returns 1 when ready, 0 on deadline expiry,
// -1 on poll error. POLLHUP/POLLERR count as ready: the following
// read/write reports the actual condition.
int PollWait(int fd, short events, const Deadline& deadline) {
  for (;;) {
    int timeout_ms = -1;
    if (deadline.has_value()) {
      const auto remaining = *deadline - Clock::now();
      if (remaining <= Clock::duration::zero()) return 0;
      timeout_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
              .count() +
          1);
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = poll(&pfd, 1, timeout_ms);
    if (rc > 0) return 1;
    if (rc == 0) {
      if (!deadline.has_value()) continue;  // spurious; keep blocking
      return 0;
    }
    if (errno == EINTR) continue;
    return -1;
  }
}

enum class IoResult { kOk, kEof, kTimeout, kError };

// Reads exactly `count` bytes from a non-blocking fd, poll()ing under the
// deadline. *got reports the bytes read so far on every outcome (the torn
// vs clean EOF distinction is `*got > 0`).
IoResult ReadFull(int fd, char* buf, size_t count, const Deadline& deadline,
                  size_t* got) {
  *got = 0;
  while (*got < count) {
    const ssize_t n = read(fd, buf + *got, count - *got);
    if (n > 0) {
      *got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) return IoResult::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const int ready = PollWait(fd, POLLIN, deadline);
      if (ready == 0) return IoResult::kTimeout;
      if (ready < 0) return IoResult::kError;
      continue;
    }
    return IoResult::kError;
  }
  return IoResult::kOk;
}

IoResult WriteFull(int fd, const char* buf, size_t count,
                   const Deadline& deadline) {
  size_t sent = 0;
  while (sent < count) {
    const ssize_t n = write(fd, buf + sent, count - sent);
    if (n >= 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const int ready = PollWait(fd, POLLOUT, deadline);
      if (ready == 0) return IoResult::kTimeout;
      if (ready < 0) return IoResult::kError;
      continue;
    }
    return IoResult::kError;
  }
  return IoResult::kOk;
}

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          Clock::now().time_since_epoch())
          .count());
}

}  // namespace

Client::Client(int fd) : fd_(fd) {
  if (fd_ >= 0) SetNonBlocking(fd_);
}

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), deadline_ms_(other.deadline_ms_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    deadline_ms_ = other.deadline_ms_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
}

Result<Client> Client::ConnectTcp(const std::string& host, uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    close(fd);
    return Status::IOError("connect " + host + ":" + std::to_string(port) +
                           ": " + std::strerror(err));
  }
  return Client(fd);
}

Status Client::Send(const Request& request) {
  if (fd_ < 0) return Status::IOError("client is not connected");
  std::string payload;
  EncodeRequest(request, &payload);
  std::string frame;
  frame.reserve(payload.size() + 4);
  wire::AppendFrame(payload, &frame);
  switch (WriteFull(fd_, frame.data(), frame.size(),
                    DeadlineIn(deadline_ms_))) {
    case IoResult::kOk:
      return Status::Ok();
    case IoResult::kTimeout:
      // An unknown prefix of the frame is on the wire; the stream cannot
      // be reused.
      Close();
      return Status::DeadlineExceeded("request write exceeded the deadline");
    case IoResult::kEof:
    case IoResult::kError: {
      const Status status = Status::IOError(std::string("request write: ") +
                                            std::strerror(errno));
      Close();
      return status;
    }
  }
  return Status::IOError("request write: unreachable");
}

Status Client::Receive(Reply* reply) {
  if (fd_ < 0) return Status::IOError("client is not connected");
  const Deadline deadline = DeadlineIn(deadline_ms_);
  char prefix[4];
  size_t got = 0;
  switch (ReadFull(fd_, prefix, 4, deadline, &got)) {
    case IoResult::kOk:
      break;
    case IoResult::kEof:
      if (got == 0) {
        // Clean close at a frame boundary; the fd stays open (FinishSending
        // flows still read a final EOF here and the destructor closes).
        return Status::NotFound("server closed the connection");
      }
      Close();
      return Status::IOError(
          "truncated reply: EOF inside the length prefix (torn write from "
          "a dead server)");
    case IoResult::kTimeout:
      Close();
      return Status::DeadlineExceeded("reply read exceeded the deadline");
    case IoResult::kError:
      Close();
      return Status::IOError(std::string("reply read: ") +
                             std::strerror(errno));
  }
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(prefix[i])) << (8 * i);
  }
  if (len > wire::kMaxPayloadBytes) {
    Close();
    return Status::InvalidArgument("reply frame exceeds the payload cap");
  }
  std::string payload(len, '\0');
  if (len > 0) {
    switch (ReadFull(fd_, payload.data(), len, deadline, &got)) {
      case IoResult::kOk:
        break;
      case IoResult::kEof:
        Close();
        return Status::IOError(
            "truncated reply: EOF inside the payload (torn write from a "
            "dead server)");
      case IoResult::kTimeout:
        Close();
        return Status::DeadlineExceeded("reply read exceeded the deadline");
      case IoResult::kError:
        Close();
        return Status::IOError(std::string("reply read: ") +
                               std::strerror(errno));
    }
  }
  return DecodeReply(payload, reply);
}

Result<Reply> Client::Call(const Request& request) {
  Status status = Send(request);
  if (!status.ok()) return status;
  Reply reply;
  status = Receive(&reply);
  if (!status.ok()) return status;
  return reply;
}

Result<Reply> Client::FetchStats(uint64_t request_id) {
  Request request;
  request.id = request_id;
  request.cls = RequestClass::kServerStats;
  return Call(request);
}

Result<Reply> Client::FetchMetrics(uint64_t request_id) {
  Request request;
  request.id = request_id;
  request.cls = RequestClass::kServerMetrics;
  return Call(request);
}

void Client::FinishSending() {
  if (fd_ >= 0) shutdown(fd_, SHUT_WR);
}

// ---- RobustClient ---------------------------------------------------------

std::vector<Endpoint> ParseEndpoints(const std::string& spec) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0) return {};
  const std::string host = spec.substr(0, colon);
  std::vector<Endpoint> endpoints;
  size_t pos = colon + 1;
  while (pos <= spec.size()) {
    const size_t comma = spec.find(',', pos);
    const std::string token =
        spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    char* end = nullptr;
    const unsigned long port = std::strtoul(token.c_str(), &end, 10);
    if (token.empty() || end == nullptr || *end != '\0' || port == 0 ||
        port > 65535) {
      return {};
    }
    endpoints.push_back({host, static_cast<uint16_t>(port)});
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return endpoints;
}

RobustClient::RobustClient(std::vector<Endpoint> endpoints,
                           RetryOptions options)
    : endpoints_(std::move(endpoints)),
      options_(options),
      rng_(options.seed) {}

void RobustClient::Disconnect() { client_.reset(); }

uint64_t RobustClient::NextBackoffMs() {
  uint64_t delay = options_.backoff_initial_ms;
  for (uint32_t i = 0; i < backoff_exponent_ && delay < options_.backoff_max_ms;
       ++i) {
    delay *= 2;
  }
  if (delay > options_.backoff_max_ms) delay = options_.backoff_max_ms;
  if (backoff_exponent_ < 32) ++backoff_exponent_;
  // Jitter over [delay/2, delay]: staggered retriers, bounded worst case.
  if (delay > 1) delay = delay / 2 + rng_.NextBounded(delay / 2 + 1);
  return delay;
}

Status RobustClient::Connect(uint64_t remaining_ms) {
  if (endpoints_.empty()) {
    return Status::InvalidArgument("no endpoints configured");
  }
  Status last = Status::IOError("connect never attempted");
  for (size_t i = 0; i < endpoints_.size(); ++i) {
    const Endpoint& ep = endpoints_[cursor_];
    Result<Client> connected = Client::ConnectTcp(ep.host, ep.port);
    if (connected.ok()) {
      client_.emplace(std::move(connected).value());
      ++stats_.reconnects;
      return Status::Ok();
    }
    last = connected.status();
    cursor_ = (cursor_ + 1) % endpoints_.size();
  }
  (void)remaining_ms;
  return last;
}

Result<Reply> RobustClient::Call(const Request& request) {
  ++stats_.calls;
  const uint64_t start_ms = NowMs();
  const auto remaining_ms = [&]() -> uint64_t {
    if (options_.overall_deadline_ms == 0) return UINT64_MAX;
    const uint64_t elapsed = NowMs() - start_ms;
    return elapsed >= options_.overall_deadline_ms
               ? 0
               : options_.overall_deadline_ms - elapsed;
  };
  Status last = Status::IOError("no attempt made");
  const uint32_t max_attempts = options_.max_attempts == 0
                                    ? 1
                                    : options_.max_attempts;
  for (uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    uint64_t budget_ms = remaining_ms();
    if (budget_ms == 0) {
      ++stats_.deadline_failures;
      return Status::DeadlineExceeded(
          "call budget exhausted after " + std::to_string(attempt) +
          " attempts: " + last.ToString());
    }
    if (attempt > 0) {
      ++stats_.retries;
      const uint64_t delay =
          std::min(NextBackoffMs(), budget_ms == UINT64_MAX ? UINT64_MAX
                                                            : budget_ms);
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      budget_ms = remaining_ms();
      if (budget_ms == 0) {
        ++stats_.deadline_failures;
        return Status::DeadlineExceeded("call budget exhausted in backoff: " +
                                        last.ToString());
      }
    }
    if (!connected()) {
      last = Connect(budget_ms);
      if (!last.ok()) continue;  // backoff, then rotate again
      budget_ms = remaining_ms();
      if (budget_ms == 0) continue;
    }
    // Deadline propagation: the per-attempt I/O deadline and the request's
    // own engine deadline are both clamped to the remaining overall
    // budget, so the sum over retries can never exceed the caller's
    // original deadline.
    uint64_t io_ms = options_.io_deadline_ms;
    if (budget_ms != UINT64_MAX && (io_ms == 0 || io_ms > budget_ms)) {
      io_ms = budget_ms;
    }
    client_->set_deadline_ms(io_ms);
    Request attempt_request = request;
    if (budget_ms != UINT64_MAX) {
      const uint64_t budget_us = budget_ms * 1000;
      if (attempt_request.deadline_micros == 0 ||
          attempt_request.deadline_micros > budget_us) {
        attempt_request.deadline_micros = budget_us;
      }
    }
    ++stats_.attempts;
    last = client_->Send(attempt_request);
    if (!last.ok()) {
      client_.reset();
      continue;
    }
    Reply reply;
    last = client_->Receive(&reply);
    if (!last.ok()) {
      // Timeout / torn frame / clean close: the Client already poisoned
      // itself where required; drop it so the next attempt reconnects
      // (possibly to another worker).
      client_.reset();
      continue;
    }
    if (reply.status == wire::WireStatus::kOverloaded &&
        options_.retry_overloaded && attempt + 1 < max_attempts) {
      ++stats_.overloaded_retries;
      // Rotate away from the overloaded worker before backing off.
      client_.reset();
      cursor_ = (cursor_ + 1) % (endpoints_.empty() ? 1 : endpoints_.size());
      last = Status::ResourceExhausted("server overloaded");
      continue;
    }
    backoff_exponent_ = 0;
    return reply;
  }
  ++stats_.deadline_failures;
  return last;
}

}  // namespace server
}  // namespace dvicl
