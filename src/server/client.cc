#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/wire.h"

namespace dvicl {
namespace server {

namespace {

ssize_t ReadFull(int fd, char* buf, size_t count) {
  size_t got = 0;
  while (got < count) {
    const ssize_t n = read(fd, buf + got, count - got);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    got += static_cast<size_t>(n);
  }
  return static_cast<ssize_t>(got);
}

bool WriteFull(int fd, const char* buf, size_t count) {
  size_t sent = 0;
  while (sent < count) {
    const ssize_t n = write(fd, buf + sent, count - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Client> Client::ConnectTcp(const std::string& host, uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    close(fd);
    return Status::IOError("connect " + host + ":" + std::to_string(port) +
                           ": " + std::strerror(err));
  }
  return Client(fd);
}

Status Client::Send(const Request& request) {
  if (fd_ < 0) return Status::IOError("client is not connected");
  std::string payload;
  EncodeRequest(request, &payload);
  std::string frame;
  frame.reserve(payload.size() + 4);
  wire::AppendFrame(payload, &frame);
  if (!WriteFull(fd_, frame.data(), frame.size())) {
    return Status::IOError(std::string("request write: ") +
                           std::strerror(errno));
  }
  return Status::Ok();
}

Status Client::Receive(Reply* reply) {
  if (fd_ < 0) return Status::IOError("client is not connected");
  char prefix[4];
  const ssize_t got = ReadFull(fd_, prefix, 4);
  if (got == 0) return Status::NotFound("server closed the connection");
  if (got != 4) {
    return Status::IOError("truncated reply: EOF inside the length prefix");
  }
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(prefix[i])) << (8 * i);
  }
  if (len > wire::kMaxPayloadBytes) {
    return Status::InvalidArgument("reply frame exceeds the payload cap");
  }
  std::string payload(len, '\0');
  if (len > 0 && ReadFull(fd_, payload.data(), len) !=
                     static_cast<ssize_t>(len)) {
    return Status::IOError("truncated reply: EOF inside the payload");
  }
  return DecodeReply(payload, reply);
}

Result<Reply> Client::Call(const Request& request) {
  Status status = Send(request);
  if (!status.ok()) return status;
  Reply reply;
  status = Receive(&reply);
  if (!status.ok()) return status;
  return reply;
}

Result<Reply> Client::FetchStats(uint64_t request_id) {
  Request request;
  request.id = request_id;
  request.cls = RequestClass::kServerStats;
  return Call(request);
}

Result<Reply> Client::FetchMetrics(uint64_t request_id) {
  Request request;
  request.id = request_id;
  request.cls = RequestClass::kServerMetrics;
  return Call(request);
}

void Client::FinishSending() {
  if (fd_ >= 0) shutdown(fd_, SHUT_WR);
}

}  // namespace server
}  // namespace dvicl
