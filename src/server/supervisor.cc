#include "server/supervisor.h"

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>

#include "obs/trace.h"
#include "server/client.h"

namespace dvicl {
namespace server {

namespace {

uint64_t SteadyNowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---- serving-loop signal plumbing (one serving loop per process) -----------

volatile sig_atomic_t g_stop = 0;
volatile sig_atomic_t g_reopen = 0;
int g_serving_listen_fd = -1;

void HandleServingStop(int) {
  g_stop = 1;
  // shutdown() is async-signal-safe and unblocks the accept() so the loop
  // observes g_stop promptly.
  if (g_serving_listen_fd >= 0) shutdown(g_serving_listen_fd, SHUT_RDWR);
}

void HandleServingHup(int) { g_reopen = 1; }

// Atomic metrics dump: tmp + rename so a concurrent reader never sees a
// torn file.
void DumpMetrics(Server* server, const std::string& path) {
  const std::string tmp = path + ".tmp";
  if (server->metrics()->WriteJsonFile(tmp)) {
    std::rename(tmp.c_str(), path.c_str());
  }
}

}  // namespace

// ---- RestartPolicy ---------------------------------------------------------

void RestartPolicy::OnStart(uint64_t now_ms) {
  last_start_ms_ = now_ms;
  started_ = true;
}

RestartPolicy::Decision RestartPolicy::OnFailure(uint64_t now_ms) {
  if (retired_) return {false, 0};
  if (started_ && options_.stable_after_ms != 0 &&
      now_ms - last_start_ms_ >= options_.stable_after_ms) {
    // The incarnation that just died had been stable: this is a fresh
    // incident, not a continuation of a crash loop.
    consecutive_failures_ = 0;
  }
  ++consecutive_failures_;
  if (options_.max_consecutive_failures != 0 &&
      consecutive_failures_ >= options_.max_consecutive_failures) {
    retired_ = true;
    return {false, 0};
  }
  uint64_t delay = options_.backoff_initial_ms;
  for (uint32_t i = 1;
       i < consecutive_failures_ && delay < options_.backoff_max_ms; ++i) {
    delay *= 2;
  }
  if (delay > options_.backoff_max_ms) delay = options_.backoff_max_ms;
  return {true, delay};
}

// ---- listener + serving loop -----------------------------------------------

Result<int> ListenLoopback(uint16_t port, uint16_t* bound_port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    close(fd);
    return Status::IOError(std::string("bind: ") + std::strerror(err));
  }
  if (listen(fd, 64) != 0) {
    const int err = errno;
    close(fd);
    return Status::IOError(std::string("listen: ") + std::strerror(err));
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    const int err = errno;
    close(fd);
    return Status::IOError(std::string("getsockname: ") + std::strerror(err));
  }
  if (bound_port != nullptr) *bound_port = ntohs(bound.sin_port);
  return fd;
}

int RunServingLoop(int listen_fd, const ServerOptions& options,
                   const ServingLoopOptions& loop) {
  // The Server, trace recorder and connection counter are heap-allocated
  // and deliberately leaked: connection threads parked on idle reads can
  // outlive this function (the drain grace is bounded), so nothing they
  // touch may be torn down. Callers _exit soon after we return.
  auto* trace = loop.trace_path.empty() ? nullptr : new obs::TraceRecorder();
  ServerOptions server_options = options;
  if (trace != nullptr) server_options.trace = trace;
  auto* server = new Server(server_options);
  if (server_options.request_obs && !server_options.access_log_path.empty() &&
      (server->access_log() == nullptr || !server->access_log()->ok())) {
    std::fprintf(stderr, "dvicl_server: cannot open access log %s\n",
                 server_options.access_log_path.c_str());
    return 1;
  }

  g_stop = 0;
  g_reopen = 0;
  g_serving_listen_fd = listen_fd;

  // No SA_RESTART: SIGHUP must interrupt accept() so rotation is honored
  // promptly even on an idle process.
  struct sigaction sa = {};
  sa.sa_handler = HandleServingStop;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  sa.sa_handler = HandleServingHup;
  sigaction(SIGHUP, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);  // a dying client must not kill the server

  if (loop.announce) {
    sockaddr_in bound;
    socklen_t bound_len = sizeof(bound);
    uint16_t bound_port = 0;
    if (getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
      bound_port = ntohs(bound.sin_port);
    }
    // The one line automation depends on: loadgen and the CI smoke job
    // parse the bound port from it (ephemeral --port=0 included).
    std::printf("dvicl_server listening on 127.0.0.1:%u\n", bound_port);
    std::fflush(stdout);
  }

  std::thread dumper;
  if (!loop.metrics_path.empty() && loop.metrics_dump_interval_seconds > 0) {
    const std::string metrics_path = loop.metrics_path;
    const uint64_t interval_ms = loop.metrics_dump_interval_seconds * 1000;
    dumper = std::thread([server, metrics_path, interval_ms] {
      uint64_t elapsed_ms = 0;
      while (g_stop == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        elapsed_ms += 100;
        if (elapsed_ms >= interval_ms) {
          elapsed_ms = 0;
          DumpMetrics(server, metrics_path);
        }
      }
    });
  }

  // Drain accounting: serving threads decrement on the way out, the drain
  // below waits (bounded) for zero. Leaked for the same lifetime reason as
  // the Server.
  auto* active_connections = new std::atomic<uint64_t>{0};

  while (g_stop == 0) {
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (g_stop != 0) break;
      if (errno == EINTR) {
        if (g_reopen != 0) {
          g_reopen = 0;
          if (server->access_log() != nullptr) server->access_log()->Reopen();
        }
        continue;
      }
      std::perror("dvicl_server: accept");
      break;
    }
    if (g_reopen != 0) {
      g_reopen = 0;
      if (server->access_log() != nullptr) server->access_log()->Reopen();
    }
    active_connections->fetch_add(1, std::memory_order_relaxed);
    std::thread([server, active_connections, fd] {
      server->ServeConnection(fd);
      close(fd);
      active_connections->fetch_sub(1, std::memory_order_relaxed);
    }).detach();
  }
  close(listen_fd);
  g_serving_listen_fd = -1;

  // Graceful drain: in-flight connections get up to drain_grace_ms to
  // finish (each reply is flushed as it completes, so anything answered
  // before the grace expires is on the wire); idle keep-alive connections
  // simply burn the grace, which is why it is bounded.
  const uint64_t drain_deadline = SteadyNowMs() + loop.drain_grace_ms;
  while (active_connections->load(std::memory_order_relaxed) != 0 &&
         SteadyNowMs() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  if (dumper.joinable()) dumper.join();
  if (!loop.metrics_path.empty()) DumpMetrics(server, loop.metrics_path);
  if (trace != nullptr && !loop.trace_path.empty()) {
    if (!trace->WriteJsonFile(loop.trace_path)) {
      std::fprintf(stderr, "dvicl_server: failed to write %s\n",
                   loop.trace_path.c_str());
    }
  }
  std::fflush(nullptr);
  return 0;
}

// ---- Supervisor ------------------------------------------------------------

Supervisor::Supervisor(const SupervisorOptions& options) : options_(options) {
  if (options_.num_workers == 0) options_.num_workers = 1;
}

Supervisor::~Supervisor() {
  // Safety net for tests that never reach Drain(): no worker may outlive
  // its supervisor.
  for (auto& slot : slots_) {
    const pid_t pid = slot->pid.load();
    if (pid > 0) {
      kill(pid, SIGKILL);
      waitpid(pid, nullptr, 0);
      slot->pid = -1;
    }
    if (slot->listen_fd >= 0) {
      close(slot->listen_fd);
      slot->listen_fd = -1;
    }
  }
}

uint64_t Supervisor::NowMs() const { return SteadyNowMs(); }

std::string Supervisor::EndpointSpec() const {
  std::string spec = "127.0.0.1:";
  for (size_t i = 0; i < ports_.size(); ++i) {
    if (i > 0) spec += ',';
    spec += std::to_string(ports_[i]);
  }
  return spec;
}

pid_t Supervisor::worker_pid(size_t index) const {
  return index < slots_.size() ? slots_[index]->pid.load() : -1;
}

size_t Supervisor::LiveWorkers() const {
  size_t live = 0;
  for (const auto& slot : slots_) {
    if (!slot->retired) ++live;
  }
  return live;
}

Status Supervisor::Start() {
  slots_.reserve(options_.num_workers);
  ports_.reserve(options_.num_workers);
  for (uint32_t i = 0; i < options_.num_workers; ++i) {
    const uint16_t want =
        options_.port == 0 ? 0 : static_cast<uint16_t>(options_.port + i);
    uint16_t bound = 0;
    Result<int> fd = ListenLoopback(want, &bound);
    if (!fd.ok()) {
      for (auto& slot : slots_) close(slot->listen_fd);
      slots_.clear();
      ports_.clear();
      return Status::IOError("cannot listen on 127.0.0.1:" +
                             std::to_string(want) + ": " +
                             fd.status().message());
    }
    slots_.push_back(std::make_unique<Slot>(options_.restart));
    slots_.back()->listen_fd = fd.value();
    slots_.back()->port = bound;
    ports_.push_back(bound);
  }
  for (size_t i = 0; i < slots_.size(); ++i) ForkWorker(i);
  if (options_.verbose) {
    std::printf("dvicl_server supervising %u workers on %s\n",
                options_.num_workers, EndpointSpec().c_str());
    std::fflush(stdout);
  }
  started_ = true;
  last_heartbeat_ms_ = NowMs();
  return Status::Ok();
}

void Supervisor::ForkWorker(size_t index) {
  Slot& slot = *slots_[index];
  // Inherited stdio buffers replay on _exit: flush before forking.
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = fork();
  if (pid == 0) {
    // Worker child. Drop every listener but ours: the parent's copy must
    // be the ONLY other reference, so retiring a slot (parent close) fully
    // closes the socket and clients get fast ECONNREFUSED failover.
    for (size_t j = 0; j < slots_.size(); ++j) {
      if (j != index && slots_[j]->listen_fd >= 0) {
        close(slots_[j]->listen_fd);
      }
    }
    ServerOptions server = options_.server;
    ServingLoopOptions loop = options_.worker_loop;
    loop.announce = false;
    const std::string suffix = ".w" + std::to_string(index);
    if (!server.access_log_path.empty()) server.access_log_path += suffix;
    if (!server.flight.dir.empty()) {
      server.flight.dir += suffix;
      mkdir(server.flight.dir.c_str(), 0777);  // EEXIST is fine
    }
    if (!loop.trace_path.empty()) loop.trace_path += suffix;
    if (!loop.metrics_path.empty()) loop.metrics_path += suffix;
    _exit(RunServingLoop(slot.listen_fd, server, loop));
  }
  const uint64_t now = NowMs();
  if (pid < 0) {
    // fork() failure behaves like an instant crash: backoff, maybe retire.
    const RestartPolicy::Decision decision = slot.policy.OnFailure(now);
    if (!decision.restart) {
      RetireSlot(index, "fork failure");
    } else {
      slot.restart_due_ms = now + decision.delay_ms;
    }
    return;
  }
  slot.pid = pid;
  slot.restart_due_ms = 0;
  slot.missed_heartbeats = 0;
  slot.policy.OnStart(now);
  if (options_.verbose) {
    std::printf("dvicl_server worker %zu pid=%d listening on 127.0.0.1:%u\n",
                index, static_cast<int>(pid), slot.port);
    std::fflush(stdout);
  }
}

void Supervisor::RetireSlot(size_t index, const char* why) {
  Slot& slot = *slots_[index];
  slot.retired = true;
  slot.restart_due_ms = 0;
  if (slot.listen_fd >= 0) {
    // With the dead worker's copy already gone, this close fully releases
    // the socket: parked and future connects fail fast and clients fail
    // over to the surviving workers.
    close(slot.listen_fd);
    slot.listen_fd = -1;
  }
  ++stats_.workers_retired;
  if (options_.verbose) {
    std::printf(
        "dvicl_server worker %zu retired (%s) after %u consecutive "
        "failures\n",
        index, why, slot.policy.consecutive_failures());
    std::fflush(stdout);
  }
}

void Supervisor::ReapAndSchedule(uint64_t now_ms) {
  for (size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = *slots_[i];
    const pid_t dead = slot.pid.load();
    if (dead <= 0) continue;
    int wstatus = 0;
    const pid_t reaped = waitpid(dead, &wstatus, WNOHANG);
    if (reaped != dead) continue;
    slot.pid = -1;
    char cause[64];
    if (WIFSIGNALED(wstatus)) {
      std::snprintf(cause, sizeof(cause), "signal %d", WTERMSIG(wstatus));
    } else {
      std::snprintf(cause, sizeof(cause), "exit %d", WEXITSTATUS(wstatus));
    }
    const RestartPolicy::Decision decision = slot.policy.OnFailure(now_ms);
    if (!decision.restart) {
      if (options_.verbose) {
        std::printf("dvicl_server worker %zu pid=%d died (%s)\n", i,
                    static_cast<int>(dead), cause);
      }
      RetireSlot(i, "crash loop");
      continue;
    }
    slot.restart_due_ms = now_ms + decision.delay_ms;
    if (options_.verbose) {
      std::printf(
          "dvicl_server worker %zu pid=%d died (%s); restarting in %llu "
          "ms\n",
          i, static_cast<int>(dead), cause,
          static_cast<unsigned long long>(decision.delay_ms));
      std::fflush(stdout);
    }
  }
  for (size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = *slots_[i];
    if (slot.retired || slot.pid.load() > 0 ||
        now_ms < slot.restart_due_ms) {
      continue;
    }
    ++stats_.restarts_total;
    ForkWorker(i);
  }
}

void Supervisor::HeartbeatFleet(uint64_t now_ms) {
  if (options_.heartbeat_interval_ms == 0 ||
      now_ms - last_heartbeat_ms_ < options_.heartbeat_interval_ms) {
    return;
  }
  last_heartbeat_ms_ = now_ms;
  for (size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = *slots_[i];
    const pid_t pid = slot.pid.load();
    if (pid <= 0) continue;
    bool healthy = false;
    Result<Client> connected = Client::ConnectTcp("127.0.0.1", slot.port);
    if (connected.ok()) {
      Client client = std::move(connected).value();
      client.set_deadline_ms(options_.heartbeat_timeout_ms);
      // A wedged worker's listener (held open by the parent) still
      // completes the TCP handshake from the backlog, so the health signal
      // is the REPLY deadline, not the connect.
      healthy = client.FetchStats().ok();
    }
    if (healthy) {
      slot.missed_heartbeats = 0;
      continue;
    }
    ++slot.missed_heartbeats;
    if (slot.missed_heartbeats < options_.heartbeat_max_missed) continue;
    // Wedged (SIGSTOP, deadlock, runaway loop): SIGKILL works even on a
    // stopped process; the next reap sweep schedules the restart.
    kill(pid, SIGKILL);
    ++stats_.hung_kills;
    slot.missed_heartbeats = 0;
    if (options_.verbose) {
      std::printf(
          "dvicl_server worker %zu pid=%d hung (%u missed heartbeats); "
          "killed\n",
          i, static_cast<int>(pid), options_.heartbeat_max_missed);
      std::fflush(stdout);
    }
  }
}

int Supervisor::Run() {
  if (!started_) return 1;
  while (shutdown_requested_.load() == 0) {
    const uint64_t now = NowMs();
    ReapAndSchedule(now);
    if (rotate_requested_.exchange(0) != 0) {
      for (const auto& slot : slots_) {
        const pid_t pid = slot->pid.load();
        if (pid > 0) kill(pid, SIGHUP);
      }
    }
    HeartbeatFleet(now);
    if (LiveWorkers() == 0) {
      if (options_.verbose) {
        std::printf("dvicl_server: every worker slot retired; exiting\n");
        std::fflush(stdout);
      }
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  Drain();
  return 0;
}

void Supervisor::Drain() {
  if (options_.verbose) {
    std::printf("dvicl_server draining %zu workers\n", LiveWorkers());
    std::fflush(stdout);
  }
  for (auto& slot : slots_) {
    const pid_t pid = slot->pid.load();
    if (pid > 0) kill(pid, SIGTERM);
  }
  const uint64_t deadline = NowMs() + options_.drain_grace_ms;
  for (;;) {
    bool any_live = false;
    for (auto& slot : slots_) {
      const pid_t pid = slot->pid.load();
      if (pid <= 0) continue;
      if (waitpid(pid, nullptr, WNOHANG) == pid) {
        slot->pid = -1;
      } else {
        any_live = true;
      }
    }
    if (!any_live || NowMs() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = *slots_[i];
    const pid_t pid = slot.pid.load();
    if (pid <= 0) continue;
    // Still up past the grace (wedged, or stopped so SIGTERM was never
    // delivered): escalate. SIGKILL terminates stopped processes too.
    kill(pid, SIGKILL);
    ++stats_.drain_forced_kills;
    waitpid(pid, nullptr, 0);
    slot.pid = -1;
    if (options_.verbose) {
      std::printf("dvicl_server worker %zu force-killed after drain grace\n",
                  i);
      std::fflush(stdout);
    }
  }
  for (auto& slot : slots_) {
    if (slot->listen_fd >= 0) {
      close(slot->listen_fd);
      slot->listen_fd = -1;
    }
  }
}

}  // namespace server
}  // namespace dvicl
