// dvicl_server: the canonicalization-as-a-service daemon (DESIGN.md §11,
// §15).
//
// Serves the length-prefixed binary protocol of server/protocol.h over TCP
// (127.0.0.1 only) or stdin/stdout:
//
//   dvicl_server --port=7411            # fixed port
//   dvicl_server --port=0               # ephemeral; bound port is printed
//   dvicl_server --stdio                # one connection over stdin/stdout
//   dvicl_server --workers=4            # supervised multi-process fleet
//
// Supervised mode (--workers=N, DESIGN.md §15): the parent forks N worker
// processes, each serving its own loopback port (--port=P gives P..P+N-1;
// --port=0 gives N ephemeral ports, printed). The parent health-checks the
// fleet (waitpid + kServerStats heartbeats), restarts dead or hung workers
// with exponential backoff and a crash-loop circuit breaker, forwards
// SIGHUP for access-log rotation, and on SIGTERM/SIGINT drains the fleet
// gracefully. Per-worker observability outputs get a ".wI" suffix.
//
// Tuning flags (defaults in ServerOptions):
//   --threads=N          shared pool width (0 = hardware threads)
//   --max-batch=N        frames drained per dispatch batch
//   --max-pending=N      admission cap on in-flight requests
//   --cert-cache=0|1     shared canonical-form cache
//   --arena=0|1          per-worker arena memory for the refine+IR hot path
//   --deadline-seconds=S default deadline for every compute class
//   --node-budget=N      default leaf IR node budget for every compute class
//   --memory-limit-mib=N default per-run RSS-delta budget
//
// Supervision flags (--workers=N mode):
//   --workers=N                worker process count (0 = single process)
//   --drain-grace-ms=N         per-process in-flight drain bound on SIGTERM
//   --heartbeat-interval-ms=N  per-worker health-check period
//   --heartbeat-timeout-ms=N   heartbeat reply deadline
//   --heartbeat-misses=N       missed heartbeats before a hung worker is
//                              SIGKILLed and restarted
//   --restart-backoff-ms=N     initial restart backoff (doubles per failure)
//   --restart-backoff-max-ms=N backoff cap
//   --max-worker-restarts=N    consecutive failures before a slot is
//                              retired (crash-loop circuit breaker)
//   --failpoint=SITE[:skip[:max]]  arm a failpoint before serving (workers
//                              inherit the arming with fresh per-process
//                              counters; worker.kill / worker.hang drive
//                              the chaos harness). Repeatable. Requires a
//                              -DDVICL_FAILPOINTS=ON build.
//
// Observability flags (DESIGN.md §12):
//   --request-obs=0|1          per-request pipeline master switch (default 1)
//   --access-log=FILE          JSONL access log (one record per request;
//                              SIGHUP re-opens the path for rotation)
//   --trace=FILE               Chrome trace of the whole daemon, written at
//                              shutdown
//   --metrics=FILE             metrics-registry JSON dump, written at
//                              shutdown (and periodically, see below)
//   --metrics-dump-interval=S  rewrite --metrics every S seconds (atomic
//                              tmp+rename, so readers never see a torn file)
//   --flight-dir=DIR           slow-request flight recorder output directory
//   --slow-request-millis=N    flight trigger: total latency >= N ms
//   --slow-request-nodes=N     flight trigger: leaf IR nodes >= N
//
// The daemon runs until SIGTERM/SIGINT, which stops accepting, drains
// in-flight work within the grace, flushes the trace/metrics outputs and
// exits.

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "server/server.h"
#include "server/supervisor.h"

namespace {

using dvicl::Result;
using dvicl::Status;
using dvicl::server::IsControlPlane;
using dvicl::server::ListenLoopback;
using dvicl::server::RequestClass;
using dvicl::server::RunServingLoop;
using dvicl::server::Server;
using dvicl::server::ServerOptions;
using dvicl::server::ServingLoopOptions;
using dvicl::server::Supervisor;
using dvicl::server::SupervisorOptions;

// Supervised-mode signal plumbing: handlers only perform the atomic stores
// behind RequestShutdown/RequestLogRotate (async-signal-safe). The
// single-process serving loop installs its own handlers inside
// RunServingLoop.
Supervisor* g_supervisor = nullptr;

void HandleSupervisorStop(int) {
  if (g_supervisor != nullptr) g_supervisor->RequestShutdown();
}

void HandleSupervisorHup(int) {
  if (g_supervisor != nullptr) g_supervisor->RequestLogRotate();
}

bool FlagValue(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

uint64_t ParseU64(const std::string& text, const char* what) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    std::fprintf(stderr, "dvicl_server: bad value for %s: %s\n", what,
                 text.c_str());
    std::exit(2);
  }
  return value;
}

// "SITE[:skip[:max]]" -> Arm(SITE, {skip, max}). Exits on an unknown site
// so a typo in a chaos harness fails loudly instead of injecting nothing.
void ArmFailpointSpec(const std::string& spec) {
  if (!dvicl::failpoint::kEnabled) {
    std::fprintf(stderr,
                 "dvicl_server: --failpoint requires a -DDVICL_FAILPOINTS=ON "
                 "build\n");
    std::exit(2);
  }
  std::string site = spec;
  dvicl::failpoint::ArmSpec arm;
  const size_t first = spec.find(':');
  if (first != std::string::npos) {
    site = spec.substr(0, first);
    const size_t second = spec.find(':', first + 1);
    const std::string skip = spec.substr(
        first + 1,
        second == std::string::npos ? std::string::npos : second - first - 1);
    arm.skip_hits = ParseU64(skip, "--failpoint skip");
    if (second != std::string::npos) {
      arm.max_triggers =
          ParseU64(spec.substr(second + 1), "--failpoint max");
    }
  }
  bool known = false;
  for (const std::string& name : dvicl::failpoint::AllSites()) {
    if (name == site) known = true;
  }
  if (!known) {
    std::fprintf(stderr, "dvicl_server: unknown failpoint site %s\n",
                 site.c_str());
    std::exit(2);
  }
  dvicl::failpoint::Arm(site, arm);
}

}  // namespace

int main(int argc, char** argv) {
  ServerOptions options;
  SupervisorOptions supervisor_options;
  ServingLoopOptions loop;
  uint16_t port = 7411;
  uint32_t workers = 0;
  bool stdio = false;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--stdio") == 0) {
      stdio = true;
    } else if (FlagValue(arg, "--port", &value)) {
      port = static_cast<uint16_t>(ParseU64(value, "--port"));
    } else if (FlagValue(arg, "--workers", &value)) {
      workers = static_cast<uint32_t>(ParseU64(value, "--workers"));
    } else if (FlagValue(arg, "--threads", &value)) {
      options.num_threads =
          static_cast<uint32_t>(ParseU64(value, "--threads"));
    } else if (FlagValue(arg, "--max-batch", &value)) {
      options.max_batch =
          static_cast<uint32_t>(ParseU64(value, "--max-batch"));
    } else if (FlagValue(arg, "--max-pending", &value)) {
      options.max_in_flight = ParseU64(value, "--max-pending");
    } else if (FlagValue(arg, "--cert-cache", &value)) {
      options.cert_cache = ParseU64(value, "--cert-cache") != 0;
    } else if (FlagValue(arg, "--arena", &value)) {
      options.arena = ParseU64(value, "--arena") != 0;
    } else if (FlagValue(arg, "--deadline-seconds", &value)) {
      const double seconds = std::strtod(value.c_str(), nullptr);
      for (uint8_t cls = 0; cls < dvicl::server::kNumRequestClasses; ++cls) {
        if (IsControlPlane(static_cast<RequestClass>(cls))) continue;
        options.budgets[cls].deadline_micros =
            static_cast<uint64_t>(seconds * 1e6);
      }
    } else if (FlagValue(arg, "--node-budget", &value)) {
      const uint64_t budget = ParseU64(value, "--node-budget");
      for (uint8_t cls = 0; cls < dvicl::server::kNumRequestClasses; ++cls) {
        options.budgets[cls].node_budget = budget;
      }
    } else if (FlagValue(arg, "--memory-limit-mib", &value)) {
      const auto mib =
          static_cast<uint32_t>(ParseU64(value, "--memory-limit-mib"));
      for (uint8_t cls = 0; cls < dvicl::server::kNumRequestClasses; ++cls) {
        options.budgets[cls].memory_limit_mib = mib;
      }
    } else if (FlagValue(arg, "--drain-grace-ms", &value)) {
      loop.drain_grace_ms = ParseU64(value, "--drain-grace-ms");
      supervisor_options.drain_grace_ms = loop.drain_grace_ms + 1000;
    } else if (FlagValue(arg, "--heartbeat-interval-ms", &value)) {
      supervisor_options.heartbeat_interval_ms =
          ParseU64(value, "--heartbeat-interval-ms");
    } else if (FlagValue(arg, "--heartbeat-timeout-ms", &value)) {
      supervisor_options.heartbeat_timeout_ms =
          ParseU64(value, "--heartbeat-timeout-ms");
    } else if (FlagValue(arg, "--heartbeat-misses", &value)) {
      supervisor_options.heartbeat_max_missed =
          static_cast<uint32_t>(ParseU64(value, "--heartbeat-misses"));
    } else if (FlagValue(arg, "--restart-backoff-ms", &value)) {
      supervisor_options.restart.backoff_initial_ms =
          ParseU64(value, "--restart-backoff-ms");
    } else if (FlagValue(arg, "--restart-backoff-max-ms", &value)) {
      supervisor_options.restart.backoff_max_ms =
          ParseU64(value, "--restart-backoff-max-ms");
    } else if (FlagValue(arg, "--max-worker-restarts", &value)) {
      supervisor_options.restart.max_consecutive_failures =
          static_cast<uint32_t>(ParseU64(value, "--max-worker-restarts"));
    } else if (FlagValue(arg, "--failpoint", &value)) {
      ArmFailpointSpec(value);
    } else if (FlagValue(arg, "--request-obs", &value)) {
      options.request_obs = ParseU64(value, "--request-obs") != 0;
    } else if (FlagValue(arg, "--access-log", &value)) {
      options.access_log_path = value;
    } else if (FlagValue(arg, "--trace", &value)) {
      loop.trace_path = value;
    } else if (FlagValue(arg, "--metrics", &value)) {
      loop.metrics_path = value;
    } else if (FlagValue(arg, "--metrics-dump-interval", &value)) {
      loop.metrics_dump_interval_seconds =
          ParseU64(value, "--metrics-dump-interval");
    } else if (FlagValue(arg, "--flight-dir", &value)) {
      options.flight.dir = value;
    } else if (FlagValue(arg, "--slow-request-millis", &value)) {
      options.flight.latency_threshold_us =
          ParseU64(value, "--slow-request-millis") * 1000;
    } else if (FlagValue(arg, "--slow-request-nodes", &value)) {
      options.flight.node_threshold =
          ParseU64(value, "--slow-request-nodes");
    } else {
      std::fprintf(stderr, "dvicl_server: unknown flag %s\n", arg);
      return 2;
    }
  }

  if (stdio) {
    dvicl::obs::TraceRecorder trace;
    if (!loop.trace_path.empty()) options.trace = &trace;
    Server server(options);
    if (options.request_obs && !options.access_log_path.empty() &&
        (server.access_log() == nullptr || !server.access_log()->ok())) {
      std::fprintf(stderr, "dvicl_server: cannot open access log %s\n",
                   options.access_log_path.c_str());
      return 1;
    }
    server.ServeStream(std::cin, std::cout);
    if (!loop.metrics_path.empty()) {
      server.metrics()->WriteJsonFile(loop.metrics_path);
    }
    if (options.trace != nullptr && !loop.trace_path.empty()) {
      options.trace->WriteJsonFile(loop.trace_path);
    }
    return 0;
  }

  if (workers > 0) {
    // Supervised multi-process mode (DESIGN.md §15).
    supervisor_options.num_workers = workers;
    supervisor_options.port = port;
    supervisor_options.server = options;
    supervisor_options.worker_loop = loop;
    Supervisor supervisor(supervisor_options);
    const Status started = supervisor.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "dvicl_server: %s\n", started.message().c_str());
      return 1;
    }
    g_supervisor = &supervisor;
    struct sigaction sa = {};
    sa.sa_handler = HandleSupervisorStop;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
    sa.sa_handler = HandleSupervisorHup;
    sigaction(SIGHUP, &sa, nullptr);
    signal(SIGPIPE, SIG_IGN);
    const int rc = supervisor.Run();
    g_supervisor = nullptr;
    return rc;
  }

  uint16_t bound_port = 0;
  Result<int> listen_fd = ListenLoopback(port, &bound_port);
  if (!listen_fd.ok()) {
    // A taken or unbindable port must be a clear, nonzero failure: init
    // systems and the CI smoke harness key off the exit code, not a
    // perror line.
    std::fprintf(stderr, "dvicl_server: cannot listen on 127.0.0.1:%u: %s\n",
                 static_cast<unsigned>(port), listen_fd.status().message().c_str());
    return 1;
  }
  loop.announce = true;
  const int rc = RunServingLoop(listen_fd.value(), options, loop);
  std::fflush(nullptr);
  // Connection threads parked on idle client reads may still be alive;
  // skip static destruction (every reply already flushed per record).
  _exit(rc);
}
