// dvicl_server: the canonicalization-as-a-service daemon (DESIGN.md §11).
//
// Serves the length-prefixed binary protocol of server/protocol.h over TCP
// (127.0.0.1 only) or stdin/stdout:
//
//   dvicl_server --port=7411            # fixed port
//   dvicl_server --port=0               # ephemeral; bound port is printed
//   dvicl_server --stdio                # one connection over stdin/stdout
//
// Tuning flags (defaults in ServerOptions):
//   --threads=N          shared pool width (0 = hardware threads)
//   --max-batch=N        frames drained per dispatch batch
//   --max-pending=N      admission cap on in-flight requests
//   --cert-cache=0|1     shared canonical-form cache
//   --arena=0|1          per-worker arena memory for the refine+IR hot path
//   --deadline-seconds=S default deadline for every compute class
//   --node-budget=N      default leaf IR node budget for every compute class
//   --memory-limit-mib=N default per-run RSS-delta budget
//
// Observability flags (DESIGN.md §12):
//   --request-obs=0|1          per-request pipeline master switch (default 1)
//   --access-log=FILE          JSONL access log (one record per request;
//                              SIGHUP re-opens the path for rotation)
//   --trace=FILE               Chrome trace of the whole daemon, written at
//                              shutdown
//   --metrics=FILE             metrics-registry JSON dump, written at
//                              shutdown (and periodically, see below)
//   --metrics-dump-interval=S  rewrite --metrics every S seconds (atomic
//                              tmp+rename, so readers never see a torn file)
//   --flight-dir=DIR           slow-request flight recorder output directory
//   --slow-request-millis=N    flight trigger: total latency >= N ms
//   --slow-request-nodes=N     flight trigger: leaf IR nodes >= N
//
// The daemon runs until SIGTERM/SIGINT, which stops accepting, gives
// in-flight connections a short grace period, flushes the trace/metrics
// outputs and exits; every connection gets its own serving thread, all
// feeding the one shared pool and cache.

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "server/server.h"

namespace {

using dvicl::server::IsControlPlane;
using dvicl::server::RequestClass;
using dvicl::server::Server;
using dvicl::server::ServerOptions;

// Signal flags: handlers only set these and (for stop) unblock accept().
volatile sig_atomic_t g_stop = 0;
volatile sig_atomic_t g_reopen = 0;
int g_listen_fd = -1;

void HandleStop(int) {
  g_stop = 1;
  // shutdown() is async-signal-safe and makes the blocking accept() return,
  // so the main loop observes g_stop promptly.
  if (g_listen_fd >= 0) shutdown(g_listen_fd, SHUT_RDWR);
}

void HandleHup(int) { g_reopen = 1; }

bool FlagValue(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

uint64_t ParseU64(const std::string& text, const char* what) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    std::fprintf(stderr, "dvicl_server: bad value for %s: %s\n", what,
                 text.c_str());
    std::exit(2);
  }
  return value;
}

int ListenTcp(uint16_t port, uint16_t* bound_port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("dvicl_server: socket");
    std::exit(1);
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::perror("dvicl_server: bind");
    std::exit(1);
  }
  if (listen(fd, 64) != 0) {
    std::perror("dvicl_server: listen");
    std::exit(1);
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    std::perror("dvicl_server: getsockname");
    std::exit(1);
  }
  *bound_port = ntohs(bound.sin_port);
  return fd;
}

// Atomic metrics dump: write to <path>.tmp, then rename over <path>, so a
// concurrent `python3 -m json.tool <path>` (the CI validator, a dashboard
// poller) never reads a half-written file.
void DumpMetrics(Server* server, const std::string& path) {
  const std::string tmp = path + ".tmp";
  if (server->metrics()->WriteJsonFile(tmp)) {
    std::rename(tmp.c_str(), path.c_str());
  }
}

// Final flush of the observability outputs, shared by the stdio and TCP
// exits. The trace write expects quiescence (clients disconnect before the
// daemon is TERMed in the runbook flow); the metrics dump is snapshot-based
// and safe regardless.
void FlushObservability(Server* server, dvicl::obs::TraceRecorder* trace,
                        const std::string& trace_path,
                        const std::string& metrics_path) {
  if (!metrics_path.empty()) DumpMetrics(server, metrics_path);
  if (trace != nullptr && !trace_path.empty()) {
    if (!trace->WriteJsonFile(trace_path)) {
      std::fprintf(stderr, "dvicl_server: failed to write %s\n",
                   trace_path.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  ServerOptions options;
  uint16_t port = 7411;
  bool stdio = false;
  std::string trace_path;
  std::string metrics_path;
  uint64_t metrics_dump_seconds = 0;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--stdio") == 0) {
      stdio = true;
    } else if (FlagValue(arg, "--port", &value)) {
      port = static_cast<uint16_t>(ParseU64(value, "--port"));
    } else if (FlagValue(arg, "--threads", &value)) {
      options.num_threads =
          static_cast<uint32_t>(ParseU64(value, "--threads"));
    } else if (FlagValue(arg, "--max-batch", &value)) {
      options.max_batch =
          static_cast<uint32_t>(ParseU64(value, "--max-batch"));
    } else if (FlagValue(arg, "--max-pending", &value)) {
      options.max_in_flight = ParseU64(value, "--max-pending");
    } else if (FlagValue(arg, "--cert-cache", &value)) {
      options.cert_cache = ParseU64(value, "--cert-cache") != 0;
    } else if (FlagValue(arg, "--arena", &value)) {
      options.arena = ParseU64(value, "--arena") != 0;
    } else if (FlagValue(arg, "--deadline-seconds", &value)) {
      const double seconds = std::strtod(value.c_str(), nullptr);
      for (uint8_t cls = 0; cls < dvicl::server::kNumRequestClasses; ++cls) {
        if (IsControlPlane(static_cast<RequestClass>(cls))) continue;
        options.budgets[cls].deadline_micros =
            static_cast<uint64_t>(seconds * 1e6);
      }
    } else if (FlagValue(arg, "--node-budget", &value)) {
      const uint64_t budget = ParseU64(value, "--node-budget");
      for (uint8_t cls = 0; cls < dvicl::server::kNumRequestClasses; ++cls) {
        options.budgets[cls].node_budget = budget;
      }
    } else if (FlagValue(arg, "--memory-limit-mib", &value)) {
      const auto mib =
          static_cast<uint32_t>(ParseU64(value, "--memory-limit-mib"));
      for (uint8_t cls = 0; cls < dvicl::server::kNumRequestClasses; ++cls) {
        options.budgets[cls].memory_limit_mib = mib;
      }
    } else if (FlagValue(arg, "--request-obs", &value)) {
      options.request_obs = ParseU64(value, "--request-obs") != 0;
    } else if (FlagValue(arg, "--access-log", &value)) {
      options.access_log_path = value;
    } else if (FlagValue(arg, "--trace", &value)) {
      trace_path = value;
    } else if (FlagValue(arg, "--metrics", &value)) {
      metrics_path = value;
    } else if (FlagValue(arg, "--metrics-dump-interval", &value)) {
      metrics_dump_seconds = ParseU64(value, "--metrics-dump-interval");
    } else if (FlagValue(arg, "--flight-dir", &value)) {
      options.flight.dir = value;
    } else if (FlagValue(arg, "--slow-request-millis", &value)) {
      options.flight.latency_threshold_us =
          ParseU64(value, "--slow-request-millis") * 1000;
    } else if (FlagValue(arg, "--slow-request-nodes", &value)) {
      options.flight.node_threshold =
          ParseU64(value, "--slow-request-nodes");
    } else {
      std::fprintf(stderr, "dvicl_server: unknown flag %s\n", arg);
      return 2;
    }
  }

  dvicl::obs::TraceRecorder trace;
  if (!trace_path.empty()) options.trace = &trace;

  Server server(options);
  if (options.request_obs && !options.access_log_path.empty() &&
      (server.access_log() == nullptr || !server.access_log()->ok())) {
    std::fprintf(stderr, "dvicl_server: cannot open access log %s\n",
                 options.access_log_path.c_str());
    return 1;
  }

  if (stdio) {
    server.ServeStream(std::cin, std::cout);
    FlushObservability(&server, options.trace, trace_path, metrics_path);
    return 0;
  }

  uint16_t bound_port = 0;
  const int listen_fd = ListenTcp(port, &bound_port);
  g_listen_fd = listen_fd;

  // No SA_RESTART: SIGHUP must interrupt accept() so the rotation request
  // is honored promptly even on an idle daemon.
  struct sigaction sa = {};
  sa.sa_handler = HandleStop;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  sa.sa_handler = HandleHup;
  sigaction(SIGHUP, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);  // a dying client must not kill the daemon

  // The one line automation depends on: loadgen and the CI smoke job parse
  // the bound port from it (ephemeral --port=0 included).
  std::printf("dvicl_server listening on 127.0.0.1:%u\n", bound_port);
  std::fflush(stdout);

  std::thread dumper;
  if (!metrics_path.empty() && metrics_dump_seconds > 0) {
    dumper = std::thread([&server, metrics_path, metrics_dump_seconds] {
      uint64_t elapsed_ms = 0;
      const uint64_t interval_ms = metrics_dump_seconds * 1000;
      while (g_stop == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        elapsed_ms += 100;
        if (elapsed_ms >= interval_ms) {
          elapsed_ms = 0;
          DumpMetrics(&server, metrics_path);
        }
      }
    });
  }

  std::vector<std::thread> connections;
  while (g_stop == 0) {
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (g_stop != 0) break;
      if (errno == EINTR) {
        if (g_reopen != 0) {
          g_reopen = 0;
          if (server.access_log() != nullptr) server.access_log()->Reopen();
        }
        continue;
      }
      std::perror("dvicl_server: accept");
      break;
    }
    if (g_reopen != 0) {
      g_reopen = 0;
      if (server.access_log() != nullptr) server.access_log()->Reopen();
    }
    connections.emplace_back([&server, fd] {
      server.ServeConnection(fd);
      close(fd);
    });
  }
  close(listen_fd);

  // Graceful-enough shutdown: connections that are already draining get a
  // short grace window, then the observability outputs are flushed and the
  // process exits without joining threads that may be blocked on reads
  // (the access log is flushed per record, so nothing answered is lost).
  if (dumper.joinable()) dumper.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  FlushObservability(&server, options.trace, trace_path, metrics_path);
  std::fflush(nullptr);
  _exit(0);
}
