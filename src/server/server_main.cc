// dvicl_server: the canonicalization-as-a-service daemon (DESIGN.md §11).
//
// Serves the length-prefixed binary protocol of server/protocol.h over TCP
// (127.0.0.1 only) or stdin/stdout:
//
//   dvicl_server --port=7411            # fixed port
//   dvicl_server --port=0               # ephemeral; bound port is printed
//   dvicl_server --stdio                # one connection over stdin/stdout
//
// Tuning flags (defaults in ServerOptions):
//   --threads=N          shared pool width (0 = hardware threads)
//   --max-batch=N        frames drained per dispatch batch
//   --max-pending=N      admission cap on in-flight requests
//   --cert-cache=0|1     shared canonical-form cache
//   --deadline-seconds=S default deadline for every compute class
//   --node-budget=N      default leaf IR node budget for every compute class
//   --memory-limit-mib=N default per-run RSS-delta budget
//
// The daemon runs until killed; every connection gets its own serving
// thread, all feeding the one shared pool and cache.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "server/server.h"

namespace {

using dvicl::server::RequestClass;
using dvicl::server::Server;
using dvicl::server::ServerOptions;

bool FlagValue(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

uint64_t ParseU64(const std::string& text, const char* what) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    std::fprintf(stderr, "dvicl_server: bad value for %s: %s\n", what,
                 text.c_str());
    std::exit(2);
  }
  return value;
}

int ListenTcp(uint16_t port, uint16_t* bound_port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("dvicl_server: socket");
    std::exit(1);
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::perror("dvicl_server: bind");
    std::exit(1);
  }
  if (listen(fd, 64) != 0) {
    std::perror("dvicl_server: listen");
    std::exit(1);
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    std::perror("dvicl_server: getsockname");
    std::exit(1);
  }
  *bound_port = ntohs(bound.sin_port);
  return fd;
}

}  // namespace

int main(int argc, char** argv) {
  ServerOptions options;
  uint16_t port = 7411;
  bool stdio = false;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--stdio") == 0) {
      stdio = true;
    } else if (FlagValue(arg, "--port", &value)) {
      port = static_cast<uint16_t>(ParseU64(value, "--port"));
    } else if (FlagValue(arg, "--threads", &value)) {
      options.num_threads =
          static_cast<uint32_t>(ParseU64(value, "--threads"));
    } else if (FlagValue(arg, "--max-batch", &value)) {
      options.max_batch =
          static_cast<uint32_t>(ParseU64(value, "--max-batch"));
    } else if (FlagValue(arg, "--max-pending", &value)) {
      options.max_in_flight = ParseU64(value, "--max-pending");
    } else if (FlagValue(arg, "--cert-cache", &value)) {
      options.cert_cache = ParseU64(value, "--cert-cache") != 0;
    } else if (FlagValue(arg, "--deadline-seconds", &value)) {
      const double seconds = std::strtod(value.c_str(), nullptr);
      for (uint8_t cls = 0; cls < dvicl::server::kNumRequestClasses; ++cls) {
        if (static_cast<RequestClass>(cls) == RequestClass::kServerStats) {
          continue;
        }
        options.budgets[cls].deadline_micros =
            static_cast<uint64_t>(seconds * 1e6);
      }
    } else if (FlagValue(arg, "--node-budget", &value)) {
      const uint64_t budget = ParseU64(value, "--node-budget");
      for (uint8_t cls = 0; cls < dvicl::server::kNumRequestClasses; ++cls) {
        options.budgets[cls].node_budget = budget;
      }
    } else if (FlagValue(arg, "--memory-limit-mib", &value)) {
      const auto mib =
          static_cast<uint32_t>(ParseU64(value, "--memory-limit-mib"));
      for (uint8_t cls = 0; cls < dvicl::server::kNumRequestClasses; ++cls) {
        options.budgets[cls].memory_limit_mib = mib;
      }
    } else {
      std::fprintf(stderr, "dvicl_server: unknown flag %s\n", arg);
      return 2;
    }
  }

  Server server(options);

  if (stdio) {
    server.ServeStream(std::cin, std::cout);
    return 0;
  }

  uint16_t bound_port = 0;
  const int listen_fd = ListenTcp(port, &bound_port);
  // The one line automation depends on: loadgen and the CI smoke job parse
  // the bound port from it (ephemeral --port=0 included).
  std::printf("dvicl_server listening on 127.0.0.1:%u\n", bound_port);
  std::fflush(stdout);

  std::vector<std::thread> connections;
  for (;;) {
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      std::perror("dvicl_server: accept");
      break;
    }
    connections.emplace_back([&server, fd] {
      server.ServeConnection(fd);
      close(fd);
    });
  }
  for (std::thread& t : connections) t.join();
  close(listen_fd);
  return 0;
}
