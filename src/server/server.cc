#include "server/server.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstring>
#include <exception>
#include <istream>
#include <ostream>
#include <string_view>

#include "common/check.h"
#include "common/failpoint.h"
#include "perm/perm_group.h"
#include "perm/schreier_sims.h"
#include "refine/coloring.h"
#include "ssm/ssm_at.h"

namespace dvicl {
namespace server {

namespace {

Reply ErrorReply(uint64_t id, RequestClass cls, wire::WireStatus status,
                 std::string detail) {
  Reply reply;
  reply.id = id;
  reply.cls = cls;
  reply.status = status;
  reply.detail = std::move(detail);
  return reply;
}

// Best-effort class byte of a possibly-undecodable payload (offset 8, after
// the request id), so error replies echo the class when one is present.
RequestClass PeekClass(std::string_view payload) {
  if (payload.size() < 9) return RequestClass::kCanonicalForm;
  const auto cls = static_cast<uint8_t>(payload[8]);
  if (cls >= kNumRequestClasses) return RequestClass::kCanonicalForm;
  return static_cast<RequestClass>(cls);
}

// Reads exactly `count` bytes; returns bytes read (short only at EOF), or
// -1 on a read error. Retries EINTR.
ssize_t ReadFull(int fd, char* buf, size_t count) {
  size_t got = 0;
  while (got < count) {
    const ssize_t n = read(fd, buf + got, count - got);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    got += static_cast<size_t>(n);
  }
  return static_cast<ssize_t>(got);
}

bool WriteFull(int fd, const char* buf, size_t count) {
  size_t sent = 0;
  while (sent < count) {
    const ssize_t n = write(fd, buf + sent, count - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

uint64_t MicrosBetween(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

}  // namespace

// Per-request batch state: the decoded request, its reply, the
// observability context that follows the request through the pool, and
// (when the flight recorder is armed) the private trace buffer its engine
// spans are captured into.
struct Server::Slot {
  Request request;
  Reply reply;
  RequestContext ctx;
  std::unique_ptr<obs::TraceRecorder> flight_trace;
  bool dispatched = false;  // decoded + admitted, submitted to the pool
  bool done = false;        // reply filled by the task (Wait is the
                            // barrier that publishes it to this thread)
};

// Framing transport: blocking frame read, non-blocking readiness probe
// (the batch drain predicate), ordered frame write.
class Server::Channel {
 public:
  virtual ~Channel() = default;
  // Ok / NotFound (clean EOF at a frame boundary) / IOError (EOF or read
  // error mid-frame) / InvalidArgument (length prefix over the cap; the
  // stream is desynced and must be closed).
  virtual Status ReadFrame(std::string* payload) = 0;
  // True when at least one buffered byte can be read without blocking.
  virtual bool Readable() = 0;
  virtual Status WriteFrame(std::string_view payload) = 0;
  virtual void Flush() {}
};

class Server::FdChannel : public Server::Channel {
 public:
  FdChannel(int fd, size_t max_payload) : fd_(fd), max_payload_(max_payload) {}

  Status ReadFrame(std::string* payload) override {
    char prefix[4];
    const ssize_t got = ReadFull(fd_, prefix, 4);
    if (got == 0) return Status::NotFound("end of stream");
    if (got != 4) {
      return Status::IOError("truncated frame: EOF inside the length prefix");
    }
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(static_cast<uint8_t>(prefix[i])) << (8 * i);
    }
    if (len > max_payload_) {
      return Status::InvalidArgument(
          "frame length prefix " + std::to_string(len) +
          " exceeds the payload cap " + std::to_string(max_payload_));
    }
    payload->resize(len);
    if (len > 0) {
      const ssize_t body = ReadFull(fd_, payload->data(), len);
      if (body != static_cast<ssize_t>(len)) {
        return Status::IOError("truncated frame: EOF inside the payload");
      }
    }
    return Status::Ok();
  }

  bool Readable() override {
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    return poll(&pfd, 1, 0) > 0 && (pfd.revents & POLLIN) != 0;
  }

  Status WriteFrame(std::string_view payload) override {
    std::string frame;
    frame.reserve(payload.size() + 4);
    wire::AppendFrame(payload, &frame);
    if (!WriteFull(fd_, frame.data(), frame.size())) {
      return Status::IOError("frame write failed");
    }
    return Status::Ok();
  }

 private:
  int fd_;
  size_t max_payload_;
};

class Server::StreamChannel : public Server::Channel {
 public:
  StreamChannel(std::istream& in, std::ostream& out, size_t max_payload)
      : in_(in), out_(out), max_payload_(max_payload) {}

  Status ReadFrame(std::string* payload) override {
    return wire::ReadFrame(in_, payload, max_payload_);
  }

  bool Readable() override {
    return in_.good() && in_.rdbuf()->in_avail() > 0;
  }

  Status WriteFrame(std::string_view payload) override {
    return wire::WriteFrame(out_, payload);
  }

  void Flush() override { out_.flush(); }

 private:
  std::istream& in_;
  std::ostream& out_;
  size_t max_payload_;
};

Server::Server(const ServerOptions& options) : options_(options) {
  DVICL_CHECK_LE(options_.max_frame_bytes, wire::kMaxPayloadBytes);
  uint32_t threads = options_.num_threads;
  if (threads == 0) threads = TaskPool::DefaultThreads();
  if (options_.max_batch == 0) options_.max_batch = 1;
  pool_ = std::make_unique<TaskPool>(threads);
  if (options_.cert_cache) {
    CertCacheConfig config;
    config.max_entries = options_.cert_cache_max_entries;
    config.max_bytes = options_.cert_cache_max_bytes;
    cache_ = std::make_unique<CertCache>(config);
  }
  flight_ = std::make_unique<FlightRecorder>(options_.flight);
  if (options_.request_obs) {
    if (!options_.access_log_path.empty()) {
      access_log_ = std::make_unique<AccessLog>(options_.access_log_path);
    }
    // Resolve every per-class handle once; the request path then records
    // with plain atomic adds, never touching the registry lock.
    for (uint8_t cls = 0; cls < kNumRequestClasses; ++cls) {
      const std::string name =
          RequestClassName(static_cast<RequestClass>(cls));
      queue_wait_us_[cls] =
          metrics_.GetHistogram("server.queue_wait_us." + name);
      exec_us_[cls] = metrics_.GetHistogram("server.exec_us." + name);
      total_us_[cls] = metrics_.GetHistogram("server.total_us." + name);
      request_bytes_[cls] =
          metrics_.GetHistogram("server.request_bytes." + name);
      reply_bytes_[cls] = metrics_.GetHistogram("server.reply_bytes." + name);
    }
    batch_depth_ = metrics_.GetHistogram("server.batch_depth");
    in_flight_gauge_ = metrics_.GetGauge("server.in_flight");
    flights_recorded_ = metrics_.GetCounter("server.flights_recorded");
  }
}

Server::~Server() = default;

void Server::ServeConnection(int fd) {
  FdChannel channel(fd, options_.max_frame_bytes);
  Serve(&channel);
}

void Server::ServeStream(std::istream& in, std::ostream& out) {
  StreamChannel channel(in, out, options_.max_frame_bytes);
  Serve(&channel);
}

void Server::Serve(Channel* channel) {
  connections_.fetch_add(1, std::memory_order_relaxed);
  std::string payload;
  for (;;) {
    // Block for the batch's first frame, then drain whatever else is
    // already buffered (up to max_batch) so bursty clients amortize one
    // dispatch barrier over many requests without adding latency to a
    // lone request. Each frame is stamped the moment it is fully read —
    // the `arrival` end of the request lifecycle (DESIGN.md §12).
    Status status = channel->ReadFrame(&payload);
    if (status.code() == Status::Code::kNotFound) return;  // clean EOF
    if (status.code() == Status::Code::kIOError) {         // mid-frame EOF
      frames_truncated_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    bool close = false;
    bool oversized = false;
    std::string oversized_detail;
    std::vector<Incoming> frames;
    if (!status.ok()) {
      oversized = true;
      oversized_detail = status.message();
    } else {
      const bool obs = options_.request_obs;
      frames.push_back(Incoming{
          std::move(payload),
          obs ? std::chrono::steady_clock::now()
              : std::chrono::steady_clock::time_point{}});
      while (frames.size() < options_.max_batch && channel->Readable()) {
        status = channel->ReadFrame(&payload);
        if (status.code() == Status::Code::kNotFound ||
            status.code() == Status::Code::kIOError) {
          if (status.code() == Status::Code::kIOError) {
            frames_truncated_.fetch_add(1, std::memory_order_relaxed);
          }
          close = true;
          break;
        }
        if (!status.ok()) {
          oversized = true;
          oversized_detail = status.message();
          break;
        }
        frames.push_back(Incoming{
            std::move(payload),
            obs ? std::chrono::steady_clock::now()
                : std::chrono::steady_clock::time_point{}});
      }
    }
    if (!frames.empty() && !ProcessBatch(&frames, channel)) return;
    if (oversized) {
      // The declared payload was never consumed, so the stream cannot be
      // resynced: answer with one kMalformedFrame reply and drop the
      // connection (DESIGN.md §11 degradation contract).
      Reply reply = ErrorReply(0, RequestClass::kCanonicalForm,
                               wire::WireStatus::kMalformedFrame,
                               std::move(oversized_detail));
      replies_error_.fetch_add(1, std::memory_order_relaxed);
      std::string out;
      EncodeReply(reply, &out);
      channel->WriteFrame(out);
      channel->Flush();
      return;
    }
    channel->Flush();
    if (close) return;
  }
}

bool Server::TryAdmit() {
  const uint64_t was = in_flight_.fetch_add(1, std::memory_order_relaxed);
  if (was >= options_.max_in_flight) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  if (in_flight_gauge_ != nullptr) {
    in_flight_gauge_->Set(static_cast<double>(was + 1));
  }
  return true;
}

bool Server::ProcessBatch(std::vector<Incoming>* frames, Channel* channel) {
  // Whole-process crash/hang injection for supervised-serving chaos tests
  // (armed pre-fork by the daemon's --failpoint flag, never in-process —
  // see the site docs in failpoint.h). Hang first: a run arming both wants
  // the freeze observable before the kill fires.
  if (DVICL_FAILPOINT(failpoint::sites::kWorkerHang)) raise(SIGSTOP);
  if (DVICL_FAILPOINT(failpoint::sites::kWorkerKill)) raise(SIGKILL);
  batches_.fetch_add(1, std::memory_order_relaxed);
  const bool obs = options_.request_obs;
  if (obs) batch_depth_->Record(frames->size());

  std::vector<Slot> slots(frames->size());
  uint64_t admitted = 0;

  for (size_t i = 0; i < frames->size(); ++i) {
    const std::string& frame = (*frames)[i].payload;
    Slot& slot = slots[i];
    // Every frame — even one that is rejected before decode — gets a rid
    // and a context, so the access log covers overload and malformed
    // traffic too, not just requests that ran.
    slot.ctx.rid = next_rid_.fetch_add(1, std::memory_order_relaxed) + 1;
    slot.ctx.arrival = (*frames)[i].arrival;
    slot.ctx.request_bytes = frame.size();
    slot.ctx.client_id = PeekRequestId(frame);
    slot.ctx.cls = PeekClass(frame);
    if (!TryAdmit()) {
      overloaded_.fetch_add(1, std::memory_order_relaxed);
      slot.reply = ErrorReply(slot.ctx.client_id, slot.ctx.cls,
                              wire::WireStatus::kOverloaded,
                              "server over admission capacity");
      continue;
    }
    ++admitted;
    if (DVICL_FAILPOINT(failpoint::sites::kServerDecode)) {
      slot.reply = ErrorReply(slot.ctx.client_id, slot.ctx.cls,
                              wire::WireStatus::kInternalFault,
                              "injected failpoint fault at server.decode_request");
      continue;
    }
    Status status = DecodeRequest(frame, &slot.request);
    if (!status.ok()) {
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      slot.reply = ErrorReply(slot.ctx.client_id, slot.ctx.cls,
                              wire::WireStatus::kInvalidRequest,
                              status.message());
      continue;
    }
    slot.dispatched = true;
    if (obs) {
      // Engine spans go to the per-request flight buffer when the flight
      // recorder is armed (so a slow request's trace can be persisted in
      // isolation), otherwise to the daemon's global recorder.
      if (flight_->enabled()) slot.flight_trace = flight_->Arm();
      slot.ctx.engine_trace = slot.flight_trace != nullptr
                                  ? slot.flight_trace.get()
                                  : options_.trace;
    }
  }

  {
    TaskGroup group(pool_.get());
    for (Slot& slot : slots) {
      if (!slot.dispatched) continue;
      group.Submit([this, &slot, obs] {
        if (obs) slot.ctx.dequeue = std::chrono::steady_clock::now();
        {
          // The exec span lives on the pool thread's track in the GLOBAL
          // trace, so engine spans recorded there nest under it (each
          // request runs single-threaded). The rid arg is the join key to
          // the access log and flight files.
          obs::TraceSpan span(obs ? options_.trace : nullptr, "server.exec",
                              "server");
          span.AddArg("rid", slot.ctx.rid);
          span.AddArg("class", static_cast<uint64_t>(slot.ctx.cls));
          try {
            if (DVICL_FAILPOINT(failpoint::sites::kServerDispatch)) {
              throw failpoint::InjectedFault(
                  failpoint::sites::kServerDispatch);
            }
            slot.reply = Handle(slot.request, &slot.ctx);
          } catch (const std::exception& e) {
            slot.reply = ErrorReply(slot.request.id, slot.request.cls,
                                    wire::WireStatus::kInternalFault,
                                    e.what());
          }
        }
        if (obs) slot.ctx.done = std::chrono::steady_clock::now();
        slot.done = true;
      });
    }
    // The lambda above swallows its own exceptions, but a fault injected
    // below it (task_pool.run_task fires before the task body runs) still
    // surfaces here; any slot it kept from running gets a structured
    // internal_fault reply and the batch-mates' replies stand.
    std::string dispatch_fault = "batch dispatch aborted";
    try {
      group.Wait();
    } catch (const std::exception& e) {
      dispatch_fault = e.what();
    }
    for (Slot& slot : slots) {
      if (slot.dispatched && !slot.done) {
        slot.reply = ErrorReply(slot.request.id, slot.request.cls,
                                wire::WireStatus::kInternalFault,
                                dispatch_fault);
      }
    }
  }
  const uint64_t now_in_flight =
      in_flight_.fetch_sub(admitted, std::memory_order_relaxed) - admitted;
  if (obs) in_flight_gauge_->Set(static_cast<double>(now_in_flight));

  // Replies go back in request order regardless of completion order: the
  // per-connection byte stream is a deterministic function of the request
  // stream, whatever the pool scheduling did.
  std::string payload;
  for (Slot& slot : slots) {
    if (DVICL_FAILPOINT(failpoint::sites::kServerWriteReply)) {
      slot.reply = ErrorReply(slot.reply.id, slot.reply.cls,
                              wire::WireStatus::kInternalFault,
                              "injected failpoint fault at server.write_reply");
    }
    if (slot.reply.ok()) {
      replies_ok_.fetch_add(1, std::memory_order_relaxed);
    } else {
      replies_error_.fetch_add(1, std::memory_order_relaxed);
    }
    payload.clear();
    EncodeReply(slot.reply, &payload);
    slot.ctx.status = slot.reply.status;
    slot.ctx.reply_bytes = payload.size();
    if (!channel->WriteFrame(payload).ok()) return false;
    if (obs) FinalizeRequest(&slot);
  }
  return true;
}

void Server::FinalizeRequest(Slot* slot) {
  RequestContext& ctx = slot->ctx;
  const auto now = std::chrono::steady_clock::now();
  if (!slot->dispatched) {
    // Rejected before dispatch (overload / injected decode fault / decode
    // error): the request never queued or executed; its whole lifetime is
    // the synchronous batch turnaround.
    ctx.dequeue = ctx.arrival;
    ctx.done = ctx.arrival;
  }
  RequestTimings timings;
  timings.queue_us = MicrosBetween(ctx.arrival, ctx.dequeue);
  timings.exec_us = MicrosBetween(ctx.dequeue, ctx.done);
  timings.total_us = MicrosBetween(ctx.arrival, now);
  timings.arrival_us = MicrosBetween(epoch_, ctx.arrival);
  const auto cls = static_cast<uint8_t>(ctx.cls);
  queue_wait_us_[cls]->Record(timings.queue_us);
  exec_us_[cls]->Record(timings.exec_us);
  total_us_[cls]->Record(timings.total_us);
  request_bytes_[cls]->Record(ctx.request_bytes);
  reply_bytes_[cls]->Record(ctx.reply_bytes);

  obs::TraceRecorder* trace = options_.trace;
  if (trace != nullptr) {
    const uint64_t trace_arrival_us = trace->MicrosAt(ctx.arrival);
    // Request-level spans live on the connection thread's track: the whole
    // request lifetime plus the queue-wait prefix, both tagged with the
    // rid that also names the exec span, the access record and any flight
    // file.
    trace->AddComplete("server.request", "server", trace_arrival_us,
                       timings.total_us,
                       {{"rid", ctx.rid},
                        {"class", static_cast<uint64_t>(ctx.cls)}});
    if (slot->dispatched && timings.queue_us > 0) {
      trace->AddComplete("server.queue_wait", "server", trace_arrival_us,
                         timings.queue_us, {{"rid", ctx.rid}});
    }
  }

  const bool flight_fires =
      slot->flight_trace != nullptr &&
      flight_->ShouldPersist(timings.total_us, ctx.leaf_ir_nodes);
  if (access_log_ != nullptr || flight_fires) {
    const std::string record = AccessRecordJson(ctx, timings);
    if (access_log_ != nullptr) access_log_->Append(record);
    // Safe to serialize the flight buffer here: the slot's pool task was
    // joined by the batch barrier, so the recorder is quiescent.
    if (flight_fires &&
        flight_->Persist(ctx, record, *slot->flight_trace)) {
      flights_recorded_->Add(1);
    }
  }
}

DviclOptions Server::RunOptionsFor(const Request& request,
                                   RequestContext* ctx) const {
  DviclOptions options;
  options.leaf_backend = options_.leaf_backend;
  // Each request runs single-threaded: the pool parallelizes ACROSS
  // requests, and one-thread runs keep every reply bit-identical to a
  // standalone sequential run.
  options.num_threads = 1;
  // Engine spans follow the request's routing decision (flight buffer or
  // global recorder); engine METRICS stay off on the request path — the
  // registry lock is not worth contending per request, and the per-class
  // serving histograms carry the aggregate signal.
  options.trace = ctx != nullptr ? ctx->engine_trace : nullptr;
  const ClassBudget& defaults =
      options_.budgets[static_cast<uint8_t>(request.cls)];
  const uint64_t deadline = request.deadline_micros != 0
                                ? request.deadline_micros
                                : defaults.deadline_micros;
  options.time_limit_seconds = deadline != 0 ? deadline * 1e-6 : 0.0;
  options.leaf_max_tree_nodes =
      request.node_budget != 0 ? request.node_budget : defaults.node_budget;
  options.memory_limit_mib = request.memory_limit_mib != 0
                                 ? request.memory_limit_mib
                                 : defaults.memory_limit_mib;
  options.shared_cert_cache = cache_.get();  // null = cache disabled
  options.arena = options_.arena;
  return options;
}

DviclResult Server::RunLabeling(const Graph& graph,
                                const std::vector<uint32_t>& colors,
                                const Request& request,
                                RequestContext* ctx) const {
  const Coloring initial = colors.empty()
                               ? Coloring::Unit(graph.NumVertices())
                               : Coloring::FromLabels(colors);
  DviclResult result =
      DviclCanonicalLabeling(graph, initial, RunOptionsFor(request, ctx));
  if (ctx != nullptr) {
    // Summed, not assigned: kIsoTest runs the engine twice per request.
    ctx->leaf_ir_nodes += result.stats.leaf_ir.tree_nodes;
    ctx->cache_hits += result.stats.cert_cache.hits;
    ctx->cache_misses += result.stats.cert_cache.misses;
  }
  return result;
}

Reply Server::Handle(const Request& request) {
  return Handle(request, nullptr);
}

Reply Server::Handle(const Request& request, RequestContext* ctx) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  requests_by_class_[static_cast<uint8_t>(request.cls)].fetch_add(
      1, std::memory_order_relaxed);
  if (request.cls == RequestClass::kServerStats) {
    Reply reply;
    reply.id = request.id;
    reply.cls = request.cls;
    reply.status = wire::WireStatus::kOk;
    reply.stats = StatsSnapshot();
    return reply;
  }
  if (request.cls == RequestClass::kServerMetrics) {
    return MetricsReply(request);
  }
  return HandleCompute(request, ctx);
}

Reply Server::MetricsReply(const Request& request) {
  Reply reply;
  reply.id = request.id;
  reply.cls = request.cls;
  reply.status = wire::WireStatus::kOk;
  // Flattened pairs first (clients that only want one number need no JSON
  // parsing): counters verbatim, gauges rounded to the nearest integer,
  // histograms as .count/.sum/.min/.max and rounded .p50/.p90/.p99.
  const obs::RegistrySnapshot snap = metrics_.Snapshot();
  for (const auto& [name, value] : snap.counters) {
    reply.stats.emplace_back(name, value);
  }
  for (const auto& [name, value] : snap.gauges) {
    reply.stats.emplace_back(
        name, value <= 0.0 ? 0 : static_cast<uint64_t>(std::llround(value)));
  }
  for (const auto& [name, histogram] : snap.histograms) {
    reply.stats.emplace_back(name + ".count", histogram.count);
    reply.stats.emplace_back(name + ".sum", histogram.sum);
    reply.stats.emplace_back(name + ".min", histogram.min);
    reply.stats.emplace_back(name + ".max", histogram.max);
    reply.stats.emplace_back(
        name + ".p50",
        static_cast<uint64_t>(std::llround(histogram.Percentile(0.50))));
    reply.stats.emplace_back(
        name + ".p90",
        static_cast<uint64_t>(std::llround(histogram.Percentile(0.90))));
    reply.stats.emplace_back(
        name + ".p99",
        static_cast<uint64_t>(std::llround(histogram.Percentile(0.99))));
  }
  // Plus the full registry dump for consumers that want everything (the
  // loadgen cross-check, the CI artifact).
  reply.metrics_json = metrics_.ToJson();
  return reply;
}

Reply Server::HandleCompute(const Request& request,
                            RequestContext* ctx) const {
  Reply reply;
  reply.id = request.id;
  reply.cls = request.cls;

  // Maps an aborted run onto the reply: WireStatus mirrors the RunOutcome
  // and the detail carries the run's own fault_detail. Per the DviclResult
  // contract the aborted run has an EMPTY certificate/labeling/generator
  // set and never fed the shared cache, so nothing partial can leak here.
  const auto degrade = [&reply](const DviclResult& result) {
    reply.status = wire::FromOutcome(result.outcome);
    reply.detail = !result.fault_detail.empty()
                       ? result.fault_detail
                       : std::string(wire::WireStatusName(reply.status));
  };

  switch (request.cls) {
    case RequestClass::kCanonicalForm: {
      const DviclResult result =
          RunLabeling(request.graph, request.colors, request, ctx);
      if (!result.completed()) {
        degrade(result);
        return reply;
      }
      reply.status = wire::WireStatus::kOk;
      reply.num_vertices = request.graph.NumVertices();
      reply.certificate = result.certificate;
      const auto images = result.canonical_labeling.ImageArray();
      reply.canonical_labeling.assign(images.begin(), images.end());
      return reply;
    }
    case RequestClass::kIsoTest: {
      const VertexId n = request.graph.NumVertices();
      if (n != request.graph2.NumVertices() ||
          request.graph.Edges().size() != request.graph2.Edges().size()) {
        reply.status = wire::WireStatus::kOk;
        reply.isomorphic = false;
        return reply;
      }
      // Colors are semantic (value 3 on g1 corresponds to value 3 on g2):
      // unequal label multisets decide "not isomorphic" without any run.
      std::vector<uint32_t> labels1 =
          request.colors.empty() ? std::vector<uint32_t>(n, 0)
                                 : request.colors;
      std::vector<uint32_t> labels2 =
          request.colors2.empty() ? std::vector<uint32_t>(n, 0)
                                  : request.colors2;
      std::vector<uint32_t> sorted1 = labels1;
      std::vector<uint32_t> sorted2 = labels2;
      std::sort(sorted1.begin(), sorted1.end());
      std::sort(sorted2.begin(), sorted2.end());
      if (sorted1 != sorted2) {
        reply.status = wire::WireStatus::kOk;
        reply.isomorphic = false;
        return reply;
      }
      const DviclResult result1 =
          RunLabeling(request.graph, labels1, request, ctx);
      if (!result1.completed()) {
        degrade(result1);
        return reply;
      }
      const DviclResult result2 =
          RunLabeling(request.graph2, labels2, request, ctx);
      if (!result2.completed()) {
        degrade(result2);
        return reply;
      }
      reply.status = wire::WireStatus::kOk;
      reply.isomorphic = result1.certificate == result2.certificate;
      return reply;
    }
    case RequestClass::kAutOrder: {
      const DviclResult result =
          RunLabeling(request.graph, request.colors, request, ctx);
      if (!result.completed()) {
        degrade(result);
        return reply;
      }
      const VertexId n = request.graph.NumVertices();
      SchreierSims chain(n);
      for (const SparseAut& generator : result.generators) {
        chain.AddGenerator(generator.ToDense(n));
      }
      reply.status = wire::WireStatus::kOk;
      reply.aut_order = chain.Order().ToDecimalString();
      return reply;
    }
    case RequestClass::kOrbits: {
      const DviclResult result =
          RunLabeling(request.graph, request.colors, request, ctx);
      if (!result.completed()) {
        degrade(result);
        return reply;
      }
      const VertexId n = request.graph.NumVertices();
      PermGroup group(n);
      for (const SparseAut& generator : result.generators) {
        group.AddGenerator(generator.ToDense(n));
      }
      reply.status = wire::WireStatus::kOk;
      reply.orbit_ids = group.OrbitIds();
      return reply;
    }
    case RequestClass::kSsmCount: {
      const DviclResult result =
          RunLabeling(request.graph, request.colors, request, ctx);
      if (!result.completed()) {
        degrade(result);
        return reply;
      }
      const SsmIndex index(request.graph, result);
      reply.status = wire::WireStatus::kOk;
      reply.ssm_count =
          index.CountSymmetricImages(request.query).ToDecimalString();
      return reply;
    }
    case RequestClass::kServerStats:
    case RequestClass::kServerMetrics:
      break;  // handled in Handle(); unreachable here
  }
  reply.status = wire::WireStatus::kInternalFault;
  reply.detail = "unhandled request class";
  return reply;
}

std::vector<std::pair<std::string, uint64_t>> Server::StatsSnapshot() const {
  std::vector<std::pair<std::string, uint64_t>> stats;
  stats.reserve(32);
  const auto relaxed = [](const std::atomic<uint64_t>& counter) {
    return counter.load(std::memory_order_relaxed);
  };
  stats.emplace_back("batches", relaxed(batches_));
  stats.emplace_back("connections", relaxed(connections_));
  stats.emplace_back("decode_errors", relaxed(decode_errors_));
  stats.emplace_back("frames_truncated", relaxed(frames_truncated_));
  stats.emplace_back("in_flight", relaxed(in_flight_));
  stats.emplace_back("obs.access_log_records",
                     access_log_ != nullptr ? access_log_->records_written()
                                            : 0);
  stats.emplace_back("obs.flights_recorded",
                     flight_ != nullptr ? flight_->recorded() : 0);
  stats.emplace_back("overloaded", relaxed(overloaded_));
  stats.emplace_back("replies_error", relaxed(replies_error_));
  stats.emplace_back("replies_ok", relaxed(replies_ok_));
  stats.emplace_back("requests", relaxed(requests_));
  for (uint8_t cls = 0; cls < kNumRequestClasses; ++cls) {
    stats.emplace_back(
        std::string("requests.") +
            RequestClassName(static_cast<RequestClass>(cls)),
        relaxed(requests_by_class_[cls]));
  }
  CertCacheStats cache;  // all-zero when the cache is disabled
  if (cache_ != nullptr) cache = cache_->Stats();
  stats.emplace_back("cache.bytes", cache.bytes);
  stats.emplace_back("cache.collisions", cache.collisions);
  stats.emplace_back("cache.entries", cache.entries);
  stats.emplace_back("cache.evictions", cache.evictions);
  stats.emplace_back("cache.hits", cache.hits);
  stats.emplace_back("cache.insertions", cache.insertions);
  stats.emplace_back("cache.misses", cache.misses);
  const TaskPoolStats pool = pool_->GetStats();
  stats.emplace_back("pool.tasks_inline", pool.tasks_inline);
  stats.emplace_back("pool.tasks_queued", pool.tasks_queued);
  stats.emplace_back("pool.tasks_run_local", pool.tasks_run_local);
  stats.emplace_back("pool.tasks_stolen", pool.tasks_stolen);
  stats.emplace_back("pool.threads", pool_->NumThreads());
  return stats;
}

}  // namespace server
}  // namespace dvicl
