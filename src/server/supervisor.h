#ifndef DVICL_SERVER_SUPERVISOR_H_
#define DVICL_SERVER_SUPERVISOR_H_

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/server.h"

// Supervised multi-process serving (DESIGN.md §15). The daemon's
// `--workers=N` mode forks N worker processes, each running the existing
// Server over its own loopback listener, under a single-threaded parent
// that health-checks, restarts and drains them:
//
//  - The parent binds every listener BEFORE forking and keeps its copy of
//    each listen fd open across worker restarts: ports are stable for the
//    daemon's lifetime, and while a worker is down the kernel backlog
//    parks incoming connects until the replacement accepts them — clients
//    see latency, not connection refusal.
//  - Crash isolation: a worker that segfaults, OOMs, or is SIGKILLed takes
//    out only its in-flight requests. The shared CertCache is per-process,
//    so a crashing worker can never corrupt a survivor's state.
//  - Health: waitpid(WNOHANG) catches crashes immediately; a periodic
//    kServerStats heartbeat over a deadline-bounded Client catches hangs
//    (the reply deadline fires even though the parked listener still
//    completes TCP handshakes). Enough missed heartbeats and the worker is
//    SIGKILLed and restarted.
//  - Restart policy: exponential backoff per slot with a stability reset
//    and a circuit breaker — a slot that crash-loops is retired and its
//    listener closed, degrading the fleet to fewer workers (clients fail
//    over on ECONNREFUSED) instead of flapping forever.
//  - Graceful drain: SIGTERM/SIGINT to the parent forwards SIGTERM to the
//    fleet, waits a bounded grace for workers to finish in-flight requests
//    and flush observability, then SIGKILLs stragglers. SIGHUP is
//    forwarded for access-log rotation.

namespace dvicl {
namespace server {

// ---- restart policy (pure state machine, injected clock) -------------------

struct RestartPolicyOptions {
  // Restart delay: initial * 2^consecutive_failures, capped.
  uint64_t backoff_initial_ms = 100;
  uint64_t backoff_max_ms = 5000;
  // A worker that stays up this long resets its slot's failure streak (the
  // next crash restarts at the initial delay again).
  uint64_t stable_after_ms = 10'000;
  // Circuit breaker: this many consecutive failures retires the slot
  // (0 = never retire).
  uint32_t max_consecutive_failures = 8;
};

// Per-slot restart bookkeeping. Time is injected (milliseconds on any
// monotonic clock) so the backoff schedule and circuit breaker are unit
// testable without sleeping.
class RestartPolicy {
 public:
  struct Decision {
    bool restart = false;   // false = slot retired (circuit breaker open)
    uint64_t delay_ms = 0;  // backoff before the restart
  };

  explicit RestartPolicy(const RestartPolicyOptions& options)
      : options_(options) {}

  // The slot's worker started (first launch and every restart).
  void OnStart(uint64_t now_ms);
  // The slot's worker died (crash, hang-kill, nonzero exit). Returns the
  // restart decision; once `restart == false` the slot is permanently
  // retired.
  Decision OnFailure(uint64_t now_ms);

  uint32_t consecutive_failures() const { return consecutive_failures_; }
  bool retired() const { return retired_; }

 private:
  RestartPolicyOptions options_;
  uint64_t last_start_ms_ = 0;
  uint32_t consecutive_failures_ = 0;
  bool started_ = false;
  bool retired_ = false;
};

// ---- shared serving loop ---------------------------------------------------

// Listener on 127.0.0.1:`port` (0 = ephemeral). On success returns the fd
// and stores the bound port; on failure returns a Status naming the errno —
// the daemon reports it and exits nonzero instead of perror+abort.
Result<int> ListenLoopback(uint16_t port, uint16_t* bound_port);

struct ServingLoopOptions {
  // Print the "dvicl_server listening on 127.0.0.1:PORT" line automation
  // parses. On in single-process mode, off in workers (the supervisor
  // prints per-worker lines instead).
  bool announce = false;
  // After stop: bound wait for in-flight connections to finish before the
  // observability flush (0 = no wait).
  uint64_t drain_grace_ms = 2000;
  // Shutdown observability outputs (empty = disabled).
  std::string trace_path;
  std::string metrics_path;
  uint64_t metrics_dump_interval_seconds = 0;  // periodic --metrics rewrite
};

// The accept/serve/drain loop shared by the single-process daemon and every
// forked worker: installs SIGTERM/SIGINT stop + SIGHUP rotate handlers,
// serves until stopped, drains in-flight connections within the grace,
// flushes trace/metrics and returns the exit code. Takes ownership of
// `listen_fd`. Runs on the calling thread until shutdown; the caller is
// expected to _exit with the returned code promptly (connection threads
// may still be parked on idle reads past the grace).
int RunServingLoop(int listen_fd, const ServerOptions& options,
                   const ServingLoopOptions& loop);

// ---- supervisor ------------------------------------------------------------

struct SupervisorOptions {
  uint32_t num_workers = 4;
  // 0 = one ephemeral port per worker; else worker i listens on port + i.
  uint16_t port = 0;
  // Options for each worker's Server. Observability file paths
  // (access_log_path, flight.dir and the loop's trace/metrics paths) are
  // suffixed ".wI" per worker so the processes never write over each other.
  ServerOptions server;
  ServingLoopOptions worker_loop;
  RestartPolicyOptions restart;

  // Heartbeat: every interval, one kServerStats round trip per worker with
  // a `timeout_ms` I/O deadline; `max_missed` consecutive failures = the
  // worker is wedged -> SIGKILL + restart path.
  uint64_t heartbeat_interval_ms = 500;
  uint64_t heartbeat_timeout_ms = 1000;
  uint32_t heartbeat_max_missed = 3;

  // Drain: grace between SIGTERM-ing the fleet and SIGKILL-ing stragglers.
  uint64_t drain_grace_ms = 5000;

  // Lifecycle lines on stdout (workers/ports/restarts; the chaos harness
  // parses these).
  bool verbose = true;
};

// Atomic so tests can poll while Run() executes on another thread.
struct SupervisorStats {
  std::atomic<uint64_t> restarts_total{0};  // launches beyond the initial N
  std::atomic<uint64_t> hung_kills{0};      // SIGKILLs after missed heartbeats
  std::atomic<uint64_t> drain_forced_kills{0};  // SIGKILLs after drain grace
  std::atomic<uint64_t> workers_retired{0};  // circuit-breaker closures
};

// The parent process object. Single-threaded by design: fork() from a
// multi-threaded parent is a glibc minefield, and a tick loop (reap ->
// rotate -> restart -> heartbeat -> sleep) needs no concurrency. The only
// cross-thread members are the two request flags, which signal handlers
// (or a test thread) set via async-signal-safe atomic stores.
class Supervisor {
 public:
  explicit Supervisor(const SupervisorOptions& options);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  // Binds all listeners and forks the initial fleet. On listen failure
  // nothing is forked and the error names the port.
  Status Start();

  // Supervision loop; returns the process exit code after a drain
  // triggered by RequestShutdown() (0) or after every slot was retired by
  // the circuit breaker (1).
  int Run();

  // Async-signal-safe (plain atomic stores): the daemon's SIGTERM/SIGINT
  // and SIGHUP handlers call these; tests call them from other threads.
  void RequestShutdown() { shutdown_requested_.store(1); }
  void RequestLogRotate() { rotate_requested_.store(1); }

  // Bound worker ports, index-aligned with the fleet (valid after Start).
  const std::vector<uint16_t>& ports() const { return ports_; }
  // "127.0.0.1:P1,P2,..." — the --connect spec for ParseEndpoints.
  std::string EndpointSpec() const;
  // pid of worker i, -1 while it is between incarnations (valid after
  // Start; racy against Run's restarts, so tests read it only while Run is
  // quiescent or tolerate staleness).
  pid_t worker_pid(size_t index) const;

  const SupervisorStats& stats() const { return stats_; }

 private:
  struct Slot {
    int listen_fd = -1;
    uint16_t port = 0;
    // Atomic only for worker_pid() readers; all writes happen on the
    // Start/Run thread.
    std::atomic<pid_t> pid{-1};
    RestartPolicy policy;
    uint64_t restart_due_ms = 0;  // scheduled relaunch time while pid < 0
    uint32_t missed_heartbeats = 0;
    bool retired = false;

    explicit Slot(const RestartPolicyOptions& options) : policy(options) {}
  };

  uint64_t NowMs() const;
  // Forks worker `index` (the child never returns: it runs RunServingLoop
  // on its slot's listener and _exits).
  void ForkWorker(size_t index);
  // One waitpid(WNOHANG) sweep; schedules restarts / retires slots.
  void ReapAndSchedule(uint64_t now_ms);
  // One heartbeat round over all live workers.
  void HeartbeatFleet(uint64_t now_ms);
  void RetireSlot(size_t index, const char* why);
  // SIGTERM fleet, bounded wait, SIGKILL stragglers, reap everything.
  void Drain();
  size_t LiveWorkers() const;

  SupervisorOptions options_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<uint16_t> ports_;
  SupervisorStats stats_;
  uint64_t last_heartbeat_ms_ = 0;
  bool started_ = false;

  std::atomic<int> shutdown_requested_{0};
  std::atomic<int> rotate_requested_{0};
};

}  // namespace server
}  // namespace dvicl

#endif  // DVICL_SERVER_SUPERVISOR_H_
