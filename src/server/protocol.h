#ifndef DVICL_SERVER_PROTOCOL_H_
#define DVICL_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/wire.h"
#include "graph/certificate.h"
#include "graph/graph.h"

namespace dvicl {
namespace server {

// Request/reply payload codec of the canonicalization service, layered on
// the framing primitives of common/wire.h (DESIGN.md §11 has the full
// byte-level spec).
//
// Request payload:
//   u64 request_id | u8 class | u8 reserved(0)
//   u64 deadline_micros | u64 node_budget | u32 memory_limit_mib
//   class-specific body:
//     graph       := u32 n | u32 m | m x (u32 u, u32 v) |
//                    u8 has_colors | [n x u32 color]
//     kCanonicalForm / kAutOrder / kOrbits: graph
//     kIsoTest:   graph graph
//     kSsmCount:  graph | u32 k | k x u32 query vertex
//     kServerStats / kServerMetrics: (empty)
//   Trailing bytes after the body are rejected.
//
// Reply payload:
//   u64 request_id | u8 status | u8 class
//   status != kOk: u32 detail_len | detail bytes
//   status == kOk, by class:
//     kCanonicalForm: u32 n | u64 words | words x u64 certificate |
//                     n x u32 canonical label
//     kIsoTest:       u8 isomorphic
//     kAutOrder:      u32 len | decimal |Aut| string
//     kOrbits:        u32 n | n x u32 orbit id (minimum vertex of orbit)
//     kSsmCount:      u32 len | decimal count string
//     kServerStats:   u32 count | count x (u32 name_len | name | u64 value)
//     kServerMetrics: u32 count | count x (u32 name_len | name | u64 value) |
//                     u32 json_len | registry JSON dump
//
// Budgets are 0 = "use the server's per-class default"; a nonzero value
// tightens (replaces) the default for that request only. All decode paths
// are hardened: declared counts are validated against the actual payload
// size before any allocation, edge endpoints and query vertices are
// range-checked eagerly, and every failure is a structured Status — a
// malformed payload can never crash the decoder or commit unbounded
// memory (mirroring the ReadDimacs discipline).

enum class RequestClass : uint8_t {
  kCanonicalForm = 0,  // canonical labeling + certificate
  kIsoTest = 1,        // are two colored graphs isomorphic?
  kAutOrder = 2,       // |Aut(G, pi)| as a decimal string
  kOrbits = 3,         // vertex orbit partition under Aut(G, pi)
  kSsmCount = 4,       // count of symmetric images of a query vertex set
  kServerStats = 5,    // control plane: server counters snapshot
  kServerMetrics = 6,  // control plane: full metrics-registry exposition
};

inline constexpr uint8_t kNumRequestClasses = 7;

// Control-plane classes answer from server state without running the
// engine; budgets and the per-class latency SLO logic do not apply.
inline constexpr bool IsControlPlane(RequestClass cls) {
  return cls == RequestClass::kServerStats ||
         cls == RequestClass::kServerMetrics;
}

// Hard cap on the vertex count a wire graph may declare. The certificate
// reply alone occupies (2 + n + m) u64 words and must itself fit in a
// frame, so nothing above kMaxPayloadBytes / 8 vertices can ever be
// answered. Enforcing it at decode time also bounds the O(n) adjacency
// allocation behind Graph::FromEdges: an isolated-vertex graph is only a
// dozen bytes on the wire, so without this cap a 12-byte frame could
// declare four billion vertices and turn into a ~100 GiB allocation.
inline constexpr uint32_t kMaxWireVertices =
    static_cast<uint32_t>(wire::kMaxPayloadBytes / 8);

const char* RequestClassName(RequestClass cls);

struct Request {
  uint64_t id = 0;
  RequestClass cls = RequestClass::kCanonicalForm;

  // Per-request budget overrides (0 = server default for the class).
  uint64_t deadline_micros = 0;
  uint64_t node_budget = 0;
  uint32_t memory_limit_mib = 0;

  Graph graph;
  std::vector<uint32_t> colors;  // empty = unit coloring

  Graph graph2;  // kIsoTest only
  std::vector<uint32_t> colors2;

  std::vector<VertexId> query;  // kSsmCount only, sorted unique
};

struct Reply {
  uint64_t id = 0;
  wire::WireStatus status = wire::WireStatus::kInternalFault;
  RequestClass cls = RequestClass::kCanonicalForm;

  bool ok() const { return status == wire::WireStatus::kOk; }

  // status != kOk: human-readable cause (RunOutcome fault_detail or the
  // decode error); no other payload is ever attached to an error.
  std::string detail;

  // kCanonicalForm
  uint32_t num_vertices = 0;
  Certificate certificate;
  std::vector<VertexId> canonical_labeling;

  bool isomorphic = false;               // kIsoTest
  std::string aut_order;                 // kAutOrder, decimal
  std::vector<VertexId> orbit_ids;       // kOrbits
  std::string ssm_count;                 // kSsmCount, decimal

  // kServerStats and kServerMetrics: flattened (name, value) pairs. The
  // metrics reply flattens histograms as <name>.count/.sum/.min/.max/.p50/
  // .p90/.p99 so percentile cross-checks need no JSON parsing.
  std::vector<std::pair<std::string, uint64_t>> stats;

  // kServerMetrics only: the full MetricsRegistry JSON dump (counters,
  // gauges, histograms with buckets and percentile estimates).
  std::string metrics_json;
};

// Payload codecs (no frame prefix; pair with wire::AppendFrame /
// wire::ReadFrame).
void EncodeRequest(const Request& request, std::string* payload);
Status DecodeRequest(std::string_view payload, Request* request);

void EncodeReply(const Reply& reply, std::string* payload);
Status DecodeReply(std::string_view payload, Reply* reply);

// Best-effort request id of a payload that may fail full decode: the id
// field sits at a fixed offset, so error replies can still be correlated.
// Returns 0 when the payload is too short to contain an id.
uint64_t PeekRequestId(std::string_view payload);

}  // namespace server
}  // namespace dvicl

#endif  // DVICL_SERVER_PROTOCOL_H_
